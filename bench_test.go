// Package repro_test is the top-level benchmark harness: one benchmark per
// table and figure of the paper (Section VI), plus ablations of the design
// choices called out in DESIGN.md. Each benchmark regenerates its artifact
// at CI scale and reports the headline quantities (virtual-time totals,
// speedups, accuracies) as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Absolute virtual seconds come from the
// simnet calibration; the paper-vs-measured comparison lives in
// EXPERIMENTS.md.
package repro_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/gavcc"
	"repro/internal/lcc"
	"repro/internal/logreg"
	"repro/internal/scenario"
	"repro/internal/scheme"
	"repro/internal/verify"
)

// benchScale is a reduced CI scale so the full suite stays fast.
func benchScale() experiments.Scale {
	sc := experiments.CI()
	sc.Dataset.TrainN, sc.Dataset.TestN = 360, 120
	sc.Dataset.Features, sc.Dataset.Informative = 120, 24
	sc.Train.Iterations = 8
	return sc
}

// --- Fig. 3: convergence under attack (4 panels) ---

func benchFig3(b *testing.B, id string) {
	b.Helper()
	set, err := experiments.Fig3SettingByID(id)
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunFig3(sc, set)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AVCC.FinalAccuracy(), "avcc-acc")
	b.ReportMetric(res.LCC.FinalAccuracy(), "lcc-acc")
	b.ReportMetric(res.Uncoded.FinalAccuracy(), "uncoded-acc")
	b.ReportMetric(res.AVCC.TotalTime()*1e3, "avcc-vms")
	b.ReportMetric(res.LCC.TotalTime()*1e3, "lcc-vms")
	b.ReportMetric(res.Uncoded.TotalTime()*1e3, "uncoded-vms")
}

func BenchmarkFig3a(b *testing.B) { benchFig3(b, "fig3a") }
func BenchmarkFig3b(b *testing.B) { benchFig3(b, "fig3b") }
func BenchmarkFig3c(b *testing.B) { benchFig3(b, "fig3c") }
func BenchmarkFig3d(b *testing.B) { benchFig3(b, "fig3d") }

// --- Table I: end-to-end speedups ---

func BenchmarkTable1(b *testing.B) {
	sc := benchScale()
	var rows []experiments.Table1Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunTable1(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		suffix := r.Setting.Attack
		if r.Setting.S == 2 {
			suffix += "-s2m1"
		} else {
			suffix += "-s1m2"
		}
		b.ReportMetric(r.SpeedupLCC, "x-lcc-"+suffix)
		b.ReportMetric(r.SpeedupUncoded, "x-unc-"+suffix)
	}
}

// --- Fig. 4: per-iteration cost breakdown (3 panels) ---

func benchFig4(b *testing.B, id string) {
	b.Helper()
	set, err := experiments.Fig4SettingByID(id)
	if err != nil {
		b.Fatal(err)
	}
	sc := benchScale()
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunFig4(sc, set)
		if err != nil {
			b.Fatal(err)
		}
	}
	av := res.Breakdown["avcc"]
	b.ReportMetric(av.Compute*1e6, "avcc-compute-vus")
	b.ReportMetric(av.Comm*1e6, "avcc-comm-vus")
	b.ReportMetric(av.Verify*1e6, "avcc-verify-vus")
	b.ReportMetric(av.Decode*1e6, "avcc-decode-vus")
	b.ReportMetric(res.Breakdown["lcc"].Wall*1e6, "lcc-wall-vus")
	b.ReportMetric(res.Breakdown["uncoded"].Wall*1e6, "uncoded-wall-vus")
}

func BenchmarkFig4a(b *testing.B) { benchFig4(b, "fig4a") }
func BenchmarkFig4b(b *testing.B) { benchFig4(b, "fig4b") }
func BenchmarkFig4c(b *testing.B) { benchFig4(b, "fig4c") }

// --- Fig. 5: dynamic vs static coding ---

func BenchmarkFig5(b *testing.B) {
	sc := experiments.CI() // needs compute-dominated scale to amortise
	var res *experiments.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunFig5(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AVCC.TotalTime()*1e3, "avcc-vms")
	b.ReportMetric(res.StaticVCC.TotalTime()*1e3, "static-vms")
	b.ReportMetric(res.RecodeCost*1e3, "recode-cost-vms")
	b.ReportMetric((res.StaticVCC.TotalTime()-res.AVCC.TotalTime())*1e3, "saved-vms")
}

// --- Ablations (DESIGN.md Section 6) ---

// BenchmarkAblationVerifyTrials sweeps the Freivalds amplification factor:
// soundness (1/q)^t versus verification time.
func BenchmarkAblationVerifyTrials(b *testing.B) {
	f := field.Default()
	rng := rand.New(rand.NewSource(1))
	shard := fieldmat.Rand(f, rng, 133, 600)
	x := f.RandVec(rng, 600)
	y := fieldmat.MatVec(f, shard, x)
	for _, trials := range []int{1, 2, 4, 8} {
		key := verify.NewAmplifiedKey(f, verify.Seeded(rng), shard, trials)
		b.Run(map[int]string{1: "t1", 2: "t2", 4: "t4", 8: "t8"}[trials], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !key.Check(x, y) {
					b.Fatal("honest rejected")
				}
			}
		})
	}
}

// BenchmarkAblationRecodeOnset sweeps the iteration at which the Fig.5-style
// fault burst begins: the later the onset, the fewer iterations remain to
// amortise the re-encode, quantifying when dynamic coding pays off.
func BenchmarkAblationRecodeOnset(b *testing.B) {
	f := field.Default()
	sc := experiments.CI()
	ds, err := dataset.Generate(sc.Dataset)
	if err != nil {
		b.Fatal(err)
	}
	x := ds.FieldMatrix(f)
	for _, onset := range []int{1, 5, 10} {
		onset := onset
		b.Run(map[int]string{1: "iter1", 5: "iter5", 10: "iter10"}[onset], func(b *testing.B) {
			var saved float64
			for i := 0; i < b.N; i++ {
				run := func(name string) float64 {
					behaviors := make([]attack.Behavior, 12)
					for j := range behaviors {
						behaviors[j] = attack.Honest{}
					}
					behaviors[11] = attack.ActiveFrom{Inner: attack.ReverseValue{C: 1}, Start: onset}
					stragglers := attack.Phased{
						Before: attack.NoStragglers{},
						After:  attack.NewFixedStragglers(0, 1, 2),
						Switch: onset,
					}
					m, err := scheme.New(name, f, scheme.NewConfig(
						scheme.WithCoding(12, 9),
						scheme.WithBudgets(2, 1, 0),
						scheme.WithSim(sc.Sim),
						scheme.WithSeed(sc.Seed),
						scheme.WithPregeneratedCodings(true),
					), map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}, behaviors, stragglers)
					if err != nil {
						b.Fatal(err)
					}
					series, _, err := logreg.TrainDistributed(context.Background(), f, m, ds, sc.Train)
					if err != nil {
						b.Fatal(err)
					}
					return series.TotalTime()
				}
				saved = run("static-vcc") - run("avcc")
			}
			b.ReportMetric(saved*1e3, "saved-vms")
		})
	}
}

// BenchmarkAblationMatmulPar compares the parallel field matvec against a
// forced-serial loop at worker-shard scale.
func BenchmarkAblationMatmulPar(b *testing.B) {
	f := field.Default()
	rng := rand.New(rand.NewSource(2))
	m := fieldmat.Rand(f, rng, 800, 600)
	x := f.RandVec(rng, 600)
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fieldmat.MatVec(f, m, x)
		}
	})
	b.Run("serial", func(b *testing.B) {
		y := make([]field.Elem, m.Rows)
		for i := 0; i < b.N; i++ {
			for r := 0; r < m.Rows; r++ {
				y[r] = f.Dot(m.Row(r), x)
			}
		}
	})
}

// BenchmarkAblationDecoders quantifies why LCC pays 2M workers per
// Byzantine: erasure-only interpolation versus Berlekamp–Welch error
// decoding at the paper's (12,9) configuration.
func BenchmarkAblationDecoders(b *testing.B) {
	f := field.Default()
	rng := rand.New(rand.NewSource(3))
	code, err := lcc.New(f, 12, 9, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 900, 60)
	w := f.RandVec(rng, 60)
	shards, err := code.EncodeMatrix(x, nil)
	if err != nil {
		b.Fatal(err)
	}
	results := make([][]field.Elem, 11)
	idx := make([]int, 11)
	for i := 0; i < 11; i++ {
		idx[i] = i
		results[i] = fieldmat.MatVec(f, shards[i], w)
	}
	b.Run("erasure-9-verified", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := code.DecodeConcat(idx[:9], results[:9]); err != nil {
				b.Fatal(err)
			}
		}
	})
	corrupted := make([][]field.Elem, 11)
	copy(corrupted, results)
	bad := field.CopyVec(results[4])
	for j := range bad {
		bad[j] = f.Add(bad[j], 3)
	}
	corrupted[4] = bad
	b.Run("berlekamp-welch-11-with-error", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := code.DecodeConcatWithErrors(idx, corrupted, 1, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEncodeKeygen measures the one-time setup costs the paper
// amortises over training: MDS encoding plus Freivalds key generation.
func BenchmarkEncodeKeygen(b *testing.B) {
	f := field.Default()
	rng := rand.New(rand.NewSource(4))
	code, err := lcc.New(f, 12, 9, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 900, 300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards, err := code.EncodeMatrix(x, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, sh := range shards {
			_ = verify.NewKey(f, verify.Seeded(rng), sh)
		}
	}
}

// BenchmarkAblationStragglerFactor sweeps the straggler slowdown multiplier:
// the AVCC-vs-LCC wall-time gap in S=2 settings is a direct function of how
// slow stragglers actually are (the paper's testbed saw milder stragglers
// than the 10x default; this sweep maps the whole curve).
func BenchmarkAblationStragglerFactor(b *testing.B) {
	for _, factor := range []float64{2, 5, 10} {
		factor := factor
		b.Run(map[float64]string{2: "x2", 5: "x5", 10: "x10"}[factor], func(b *testing.B) {
			sc := benchScale()
			sc.Sim.StragglerFactor = factor
			set, err := experiments.Fig3SettingByID("fig3a") // S=2, M=1
			if err != nil {
				b.Fatal(err)
			}
			var res *experiments.Fig3Result
			for i := 0; i < b.N; i++ {
				res, err = experiments.RunFig3(sc, set)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.LCC.TotalTime()/res.AVCC.TotalTime(), "x-avcc-over-lcc")
		})
	}
}

// --- Scenario profiles: per-profile iteration cost across schemes ---

// scenarioBenchRecord is one (profile, scheme) cell of BENCH_scenarios.json.
type scenarioBenchRecord struct {
	Profile string `json:"profile"`
	Scheme  string `json:"scheme"`
	// VirtualMsPerIter is the simulated per-round cost (wall + amortised
	// re-coding), the quantity the paper's figures are made of.
	VirtualMsPerIter float64 `json:"virtual_ms_per_iter"`
	// WallNsPerIter is the host-machine cost of simulating one round.
	WallNsPerIter int64 `json:"wall_ns_per_iter"`
	Rounds        int   `json:"rounds"`
	Recodes       int   `json:"recodes"`
}

// runScenarioBench runs one scheme under one profile and returns the summed
// virtual time (including re-code costs), the re-code count, and the host
// wall time of the rounds loop alone (setup — scenario compilation, master
// construction, encoding — excluded, so the artifact tracks per-round
// simulation cost, not amortised setup).
func runScenarioBench(b *testing.B, profile, name string, rounds int) (virtualSec float64, recodes int, roundsWall time.Duration) {
	b.Helper()
	f := field.Default()
	rng := rand.New(rand.NewSource(11))
	x := fieldmat.Rand(f, rng, 360, 120)
	scn, err := scenario.Profile(profile, 12, 9, 11)
	if err != nil {
		b.Fatal(err)
	}
	sim := experiments.CI().Sim
	m, err := scheme.New(name, f, scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(1, 1, 0),
		scheme.WithSim(sim),
		scheme.WithSeed(11),
		scheme.WithPregeneratedCodings(true),
		scheme.WithScenario(scn),
	), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	w := f.RandVec(rng, 120)
	start := time.Now()
	for iter := 0; iter < rounds; iter++ {
		out, err := m.RunRound(context.Background(), "fwd", w, iter)
		if err != nil {
			b.Fatal(err)
		}
		virtualSec += out.Breakdown.Wall
		cost, recoded := m.FinishIteration(iter)
		virtualSec += cost
		if recoded {
			recodes++
		}
	}
	return virtualSec, recodes, time.Since(start)
}

// BenchmarkScenarioProfiles measures per-profile iteration cost for avcc vs.
// lcc vs. uncoded under every scenario preset and writes the results to
// BENCH_scenarios.json, so the perf trajectory across PRs is recorded in a
// machine-readable artifact.
func BenchmarkScenarioProfiles(b *testing.B) {
	const rounds = 10
	schemes := []string{"avcc", "lcc", "uncoded"}
	var records []scenarioBenchRecord
	for _, profile := range scenario.Profiles() {
		for _, name := range schemes {
			var rec scenarioBenchRecord
			b.Run(profile+"/"+name, func(b *testing.B) {
				var virtualSec float64
				var recodes int
				var roundsWall time.Duration
				for i := 0; i < b.N; i++ {
					virtualSec, recodes, roundsWall = runScenarioBench(b, profile, name, rounds)
				}
				if b.N < 2 {
					// Single-iteration smoke runs (CI `-benchtime 1x`) are
					// too noisy to replace the committed artifact.
					return
				}
				rec = scenarioBenchRecord{
					Profile:          profile,
					Scheme:           name,
					VirtualMsPerIter: virtualSec * 1e3 / rounds,
					WallNsPerIter:    roundsWall.Nanoseconds() / int64(rounds),
					Rounds:           rounds,
					Recodes:          recodes,
				}
				b.ReportMetric(rec.VirtualMsPerIter, "vms/iter")
			})
			if rec.Scheme != "" { // zero when -bench filtered this cell out
				records = append(records, rec)
			}
		}
	}
	// Only a full matrix may replace the committed artifact: a filtered
	// -bench run must not clobber the perf-trajectory record.
	if len(records) < len(scenario.Profiles())*len(schemes) {
		b.Logf("skipping BENCH_scenarios.json: %d of %d cells ran", len(records), len(scenario.Profiles())*len(schemes))
		return
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_scenarios.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGramGeneralizedAVCC exercises the deg-2 Generalized-AVCC round
// end to end (encode once, verified round per iteration).
func BenchmarkGramGeneralizedAVCC(b *testing.B) {
	f := field.Default()
	rng := rand.New(rand.NewSource(5))
	x := fieldmat.Rand(f, rng, 64, 48)
	m, err := scheme.New("gavcc", f, scheme.NewConfig(
		scheme.WithCoding(10, 4),
		scheme.WithBudgets(1, 2, 0),
		scheme.WithSim(experiments.CI().Sim),
		scheme.WithSeed(5),
	), map[string]*fieldmat.Matrix{gavcc.GramKey: x}, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunRound(context.Background(), gavcc.GramKey, nil, i); err != nil {
			b.Fatal(err)
		}
	}
}
