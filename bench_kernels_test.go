package repro_test

// Arithmetic-core microbenchmarks at paper-scale GISETTE dimensions
// (m = 6000 → 6003 padded, d = 5000, (N,K) = (12,9), shard rows 667).
// Every kernel is measured twice in the same run: the production
// Barrett/lazy-reduction implementation ("lazy") and a reference mirroring
// the seed implementation with its per-element hardware divisions ("ref").
// When the full matrix runs (as `go test -bench BenchmarkKernels` does), the
// results — ns/op, allocs/op, and lazy-over-ref speedup — are written to
// BENCH_kernels.json, the committed perf-trajectory artifact for the
// arithmetic core.

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/mds"
	"repro/internal/verify"
)

// --- references: the seed's arithmetic, kept verbatim for comparison ---

// dotSeedRef is the seed field.Dot: one `%` per element for the product,
// accumulated reduced.
func dotSeedRef(q uint64, a, b []field.Elem) field.Elem {
	var acc uint64
	for i := range a {
		acc += a[i] * b[i] % q
	}
	return acc % q
}

// axpySeedRef is the seed field.AXPY: two `%` per element.
func axpySeedRef(q uint64, dst []field.Elem, c field.Elem, a []field.Elem) {
	for i := range a {
		dst[i] = (dst[i] + c*a[i]%q) % q
	}
}

// matVecSeedRef is the seed serial MatVec.
func matVecSeedRef(q uint64, m *fieldmat.Matrix, x, y []field.Elem) {
	for i := 0; i < m.Rows; i++ {
		y[i] = dotSeedRef(q, m.Row(i), x)
	}
}

// matMulSeedRef is the seed MatMul loop body (i-k-j AXPY order), serial.
func matMulSeedRef(q uint64, a, b, c *fieldmat.Matrix) {
	for i := range c.Data {
		c.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow, crow := a.Row(i), c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			axpySeedRef(q, crow, av, b.Row(k))
		}
	}
}

// invSeedRef is Fermat inversion with `%` multiplication.
func invSeedRef(q, a uint64) uint64 {
	result, e := uint64(1), q-2
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = result * a % q
		}
		a = a * a % q
	}
	return result
}

// mdsDecodeSeedRef is the seed MDS decode: select the K×K generator
// submatrix and Gauss–Jordan the augmented system with seed arithmetic.
func mdsDecodeSeedRef(q uint64, gen *fieldmat.Matrix, workers []int, results [][]field.Elem) []field.Elem {
	k := len(workers)
	dim := len(results[0])
	aug := fieldmat.NewMatrix(k, k+dim)
	for r, w := range workers {
		for j := 0; j < k; j++ {
			aug.Set(r, j, gen.At(j, w))
		}
		copy(aug.Row(r)[k:], results[r])
	}
	for col := 0; col < k; col++ {
		pivot := -1
		for r := col; r < k; r++ {
			if aug.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			panic("bench: reference decode singular")
		}
		if pivot != col {
			pr, cr := aug.Row(pivot), aug.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
		}
		inv := invSeedRef(q, aug.At(col, col))
		prow := aug.Row(col)
		for j := col; j < k+dim; j++ {
			prow[j] = prow[j] * inv % q
		}
		for r := 0; r < k; r++ {
			if r == col || aug.At(r, col) == 0 {
				continue
			}
			factor := q - aug.At(r, col)
			row := aug.Row(r)
			for j := col; j < k+dim; j++ {
				row[j] = (row[j] + factor*prow[j]%q) % q
			}
		}
	}
	out := make([]field.Elem, 0, k*dim)
	for j := 0; j < k; j++ {
		out = append(out, aug.Row(j)[k:]...)
	}
	return out
}

// --- harness ---

type kernelBenchRecord struct {
	Kernel  string `json:"kernel"`
	Variant string `json:"variant"` // "lazy" (production) or "ref" (seed)
	// Modulus names the prime field the cell ran on: "paper" (q = 2²⁵−39,
	// Lagrange codecs) or "ntt" (q = 11·2²¹+1, the subgroup fast path in
	// internal/mds). Every cell exists for "paper"; the MDS codec cells run
	// under both so the artifact tracks the two encode pipelines side by
	// side.
	Modulus string `json:"modulus"`
	Dims    string `json:"dims"`
	NsPerOp int64  `json:"ns_per_op"`
	// AllocsPerOp is measured with testing.AllocsPerRun in steady state
	// (pools warm); the MatMul/MatVec/MDSEncode/MDSDecode contract is
	// exactly 0 (the MDS cells measure the Into forms — the seed's
	// EncodeMatrix allocated 44 times per op in SplitRows copies and
	// per-shard matrices).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// SpeedupVsRef = ref ns/op ÷ lazy ns/op, set on "lazy" rows when both
	// variants ran.
	SpeedupVsRef float64 `json:"speedup_vs_ref,omitempty"`
}

// kernelCell runs fn as a sub-benchmark and records ns/op, allocs/op, and
// the iteration count (the artifact-write guard below).
func kernelCell(b *testing.B, records map[string]*kernelBenchRecord, iters map[string]int, kernel, variant, modulus, dims string, fn func()) {
	b.Helper()
	key := kernel + "/" + variant + "/" + modulus
	b.Run(key, func(b *testing.B) {
		fn() // warm pools and caches outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fn()
		}
		b.StopTimer()
		iters[key] = b.N
		records[key] = &kernelBenchRecord{
			Kernel:  kernel,
			Variant: variant,
			Modulus: modulus,
			Dims:    dims,
			NsPerOp: b.Elapsed().Nanoseconds() / int64(b.N),
			// AllocsPerRun briefly pins GOMAXPROCS to 1; the pools are
			// already started at full width by the warm call above.
			AllocsPerOp: testing.AllocsPerRun(3, fn),
		}
	})
}

// mdsCells runs the MDS codec cells at the paper's (12,9) GISETTE shape on
// the given field. The encode cells encode a 6003×1000 matrix into
// caller-owned shards (EncodeMatrixInto: zero steady-state allocations on
// both layouts); the decode cells recover the 9 blocks of a dim-667 round
// from a non-systematic survivor set through the warmed plan cache. On the
// NTT modulus the code MUST take the fast path — a silent fallback would
// record Lagrange numbers under the "ntt" label and poison the artifact.
func mdsCells(b *testing.B, records map[string]*kernelBenchRecord, iters map[string]int, f *field.Field, modulus string, rng *rand.Rand) {
	b.Helper()
	code, err := mds.New(f, 12, 9)
	if err != nil {
		b.Fatal(err)
	}
	if wantFast := modulus == "ntt"; code.NTTAccelerated() != wantFast {
		b.Fatalf("%s modulus: NTTAccelerated = %v, want %v — dispatch guard", modulus, !wantFast, wantFast)
	}
	q := f.Q()
	encData := fieldmat.Rand(f, rng, 6003, 1000)
	shards := make([]*fieldmat.Matrix, 12)
	kernelCell(b, records, iters, "MDSEncode", "lazy", modulus, "(12,9) 6003x1000", func() {
		if err := code.EncodeMatrixInto(shards, encData); err != nil {
			b.Fatal(err)
		}
	})
	gen := code.Generator()
	blocks := fieldmat.SplitRows(encData, 9)
	kernelCell(b, records, iters, "MDSEncode", "ref", modulus, "(12,9) 6003x1000", func() {
		for i := 0; i < 12; i++ {
			sh := fieldmat.NewMatrix(667, 1000)
			for j := 0; j < 9; j++ {
				if coef := gen.At(j, i); coef != 0 {
					axpySeedRef(q, sh.Data, coef, blocks[j].Data)
				}
			}
		}
	})

	// Decode timing is value-independent; random result vectors of the
	// round-1 shape (667 per block) measure exactly what decoded worker
	// outputs would.
	workers := []int{0, 2, 3, 5, 6, 7, 9, 10, 11} // a non-systematic survivor set
	results := make([][]field.Elem, len(workers))
	for r := range results {
		results[r] = f.RandVec(rng, 667)
	}
	decoded := make([]field.Elem, 9*667)
	kernelCell(b, records, iters, "MDSDecode", "lazy", modulus, "(12,9) dim=667", func() {
		if err := code.DecodeConcatInto(decoded, workers, results); err != nil {
			b.Fatal(err)
		}
	})
	kernelCell(b, records, iters, "MDSDecode", "ref", modulus, "(12,9) dim=667", func() {
		_ = mdsDecodeSeedRef(q, gen, workers, results)
	})
}

// BenchmarkKernels is the arithmetic-core suite. Run the whole matrix
// (no sub-bench filter) to refresh BENCH_kernels.json.
func BenchmarkKernels(b *testing.B) {
	f := field.Default()
	q := f.Q()
	rng := rand.New(rand.NewSource(99))
	records := make(map[string]*kernelBenchRecord)
	iters := make(map[string]int)

	const (
		d         = 5000 // GISETTE features
		shardRows = 667  // 6003 padded rows / K=9
		mulCols   = 64   // weight-batch width for the MatMul cell
	)

	// Dot: the Freivalds/round inner product at d = 5000.
	a := f.RandVec(rng, d)
	x := f.RandVec(rng, d)
	var dotSink field.Elem
	kernelCell(b, records, iters, "Dot", "lazy", "paper", "d=5000", func() { dotSink = f.Dot(a, x) })
	kernelCell(b, records, iters, "Dot", "ref", "paper", "d=5000", func() { dotSink = dotSeedRef(q, a, x) })

	// AXPY: the encoder's shard-combination step at d = 5000.
	dst := f.RandVec(rng, d)
	cf := f.RandNonZero(rng)
	kernelCell(b, records, iters, "AXPY", "lazy", "paper", "d=5000", func() { f.AXPY(dst, cf, a) })
	kernelCell(b, records, iters, "AXPY", "ref", "paper", "d=5000", func() { axpySeedRef(q, dst, cf, a) })

	// MatVec: one worker's round-1 product X̃_i·w on a 667×5000 shard.
	shard := fieldmat.Rand(f, rng, shardRows, d)
	y := make([]field.Elem, shardRows)
	kernelCell(b, records, iters, "MatVec", "lazy", "paper", "shard 667x5000", func() { fieldmat.MatVecInto(f, y, shard, x) })
	kernelCell(b, records, iters, "MatVec", "ref", "paper", "shard 667x5000", func() { matVecSeedRef(q, shard, x, y) })

	// MatMul: a shard times a 64-wide weight batch.
	bm := fieldmat.Rand(f, rng, d, mulCols)
	cm := fieldmat.NewMatrix(shardRows, mulCols)
	kernelCell(b, records, iters, "MatMul", "lazy", "paper", "667x5000 x 5000x64", func() { fieldmat.MatMulInto(f, cm, shard, bm) })
	kernelCell(b, records, iters, "MatMul", "ref", "paper", "667x5000 x 5000x64", func() { matMulSeedRef(q, shard, bm, cm) })

	// MDS encode/decode at the paper's (12,9), under BOTH moduli: "paper"
	// exercises the Lagrange layout, "ntt" the subgroup fast path. The lazy
	// cells measure the zero-allocation Into forms (the steady-state shape
	// of a round loop); the ref cells are the seed's per-element-division
	// arithmetic on the same generator.
	mdsCells(b, records, iters, field.Default(), "paper", rng)
	mdsCells(b, records, iters, field.NTTFriendly(), "ntt", rng)

	// Freivalds: one verification of a 667×5000 shard claim (a length-5000
	// and a length-667 inner product).
	key := verify.NewKey(f, verify.Seeded(rng), shard)
	claim := fieldmat.MatVec(f, shard, x)
	kernelCell(b, records, iters, "Freivalds", "lazy", "paper", "shard 667x5000", func() {
		if !key.Check(x, claim) {
			b.Fatal("honest claim rejected")
		}
	})
	r2 := f.RandVec(rng, shardRows)
	s2 := fieldmat.VecMat(f, r2, shard)
	kernelCell(b, records, iters, "Freivalds", "ref", "paper", "shard 667x5000", func() {
		if dotSeedRef(q, s2, x) != dotSeedRef(q, r2, claim) {
			b.Fatal("honest claim rejected by reference check")
		}
	})
	_ = dotSink

	// Only a full matrix may replace the committed artifact (a filtered
	// -bench run must not clobber the trajectory record), speedups are only
	// meaningful when both variants ran in this process, and single-iteration
	// cells (the CI `-benchtime 1x` smoke) are too noisy to record — refresh
	// with `-benchtime 2s` as documented in DESIGN.md §7.
	cells := []struct{ kernel, modulus string }{
		{"Dot", "paper"}, {"AXPY", "paper"}, {"MatVec", "paper"}, {"MatMul", "paper"},
		{"MDSEncode", "paper"}, {"MDSDecode", "paper"},
		{"MDSEncode", "ntt"}, {"MDSDecode", "ntt"},
		{"Freivalds", "paper"},
	}
	out := make([]kernelBenchRecord, 0, 2*len(cells))
	for _, c := range cells {
		id := c.kernel + "/" + c.modulus
		lazy, ref := records[c.kernel+"/lazy/"+c.modulus], records[c.kernel+"/ref/"+c.modulus]
		if lazy == nil || ref == nil {
			b.Logf("skipping BENCH_kernels.json: %s incomplete", id)
			return
		}
		if iters[c.kernel+"/lazy/"+c.modulus] < 2 || iters[c.kernel+"/ref/"+c.modulus] < 2 {
			b.Logf("skipping BENCH_kernels.json: %s ran a single iteration (smoke run)", id)
			return
		}
		if lazy.NsPerOp > 0 {
			lazy.SpeedupVsRef = float64(ref.NsPerOp) / float64(lazy.NsPerOp)
		}
		out = append(out, *lazy, *ref)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_kernels.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
