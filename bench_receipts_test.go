package repro_test

// Receipts-overhead benchmark: the committed-verification plane at GISETTE
// scale (the 2880x96 model of the paper's evaluation), receipt-on vs
// receipt-off on the same AVCC deployment. Three costs are split out:
//
//   - Round latency: host ns per RunRound with and without per-round receipt
//     issuance (worker output commitments + transcript + Merkle openings).
//     The one-time matrix commitment happens at construction, outside the
//     timed region, matching how a serving deployment amortises it.
//   - Receipt size: the encoded bytes a tenant downloads per round.
//   - Verify cost: the tenant-side offline Verify time.
//
// When the full matrix runs (`go test -bench BenchmarkReceipts`), the rows
// are written to BENCH_receipts.json, the committed overhead artifact; 1x
// smoke runs (CI's bench-smoke job) execute every body but skip the write.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
	"repro/internal/simnet"
)

// receiptsRow is one BENCH_receipts.json entry.
type receiptsRow struct {
	Receipts   bool    `json:"receipts"`
	Rounds     int     `json:"rounds"`
	NsPerRound float64 `json:"ns_per_round"`
	// ReceiptBytes and VerifyMs are 0 for the receipt-off arm.
	ReceiptBytes int     `json:"receipt_bytes"`
	VerifyMs     float64 `json:"verify_ms"`
}

var (
	receiptsMu      sync.Mutex
	receiptsResults = map[bool]receiptsRow{}
)

func BenchmarkReceipts(b *testing.B) {
	f := field.Default()
	const rows, cols = 2880, 96

	for _, receipts := range []bool{false, true} {
		b.Run(fmt.Sprintf("receipts=%v", receipts), func(b *testing.B) {
			rng := rand.New(rand.NewSource(42))
			x := fieldmat.Rand(f, rng, rows, cols)
			sim := simnet.DefaultConfig()
			sim.LinkLatency = 1e-5
			m, err := scheme.New("avcc", f, scheme.NewConfig(
				scheme.WithSeed(42),
				scheme.WithSim(sim),
				scheme.WithReceipts(receipts),
				scheme.WithDeterministicKeys(true),
			), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			in := f.RandVec(rng, cols)
			want := fieldmat.MatVec(f, x, in)

			b.ResetTimer()
			start := time.Now()
			var rec *commit.Receipt
			for i := 0; i < b.N; i++ {
				out, err := m.RunRound(context.Background(), "fwd", in, i)
				if err != nil {
					b.Fatal(err)
				}
				rec = out.Receipt
			}
			elapsed := time.Since(start)
			b.StopTimer()

			// The decode must stay exact either way; with receipts on, the
			// last round's receipt must verify — a benchmark that times a
			// broken plane measures nothing.
			out, err := m.RunRound(context.Background(), "fwd", in, b.N)
			if err != nil {
				b.Fatal(err)
			}
			if !field.EqualVec(out.Decoded, want) {
				b.Fatal("decode is not the exact product")
			}
			row := receiptsRow{
				Receipts:   receipts,
				Rounds:     b.N,
				NsPerRound: float64(elapsed.Nanoseconds()) / float64(b.N),
			}
			if receipts {
				if rec == nil {
					b.Fatal("receipts on but the round carried none")
				}
				enc := commit.EncodeReceipt(rec)
				row.ReceiptBytes = len(enc)
				vstart := time.Now()
				if err := rec.Verify(); err != nil {
					b.Fatalf("receipt rejected: %v", err)
				}
				row.VerifyMs = time.Since(vstart).Seconds() * 1e3
				b.ReportMetric(float64(row.ReceiptBytes), "receipt-B")
				b.ReportMetric(row.VerifyMs, "verify-ms")
			}
			if b.N > 1 {
				receiptsMu.Lock()
				receiptsResults[receipts] = row
				receiptsMu.Unlock()
			}
		})
	}

	receiptsMu.Lock()
	defer receiptsMu.Unlock()
	off, okOff := receiptsResults[false]
	on, okOn := receiptsResults[true]
	if !okOff || !okOn {
		b.Log("skipping BENCH_receipts.json: incomplete sweep (smoke run)")
		return
	}
	data, err := json.MarshalIndent(map[string]any{
		"benchmark": "BenchmarkReceipts",
		"workload": fmt.Sprintf("avcc (12,9) virtual executor, %dx%d matvec rounds (compute-bound sim); "+
			"overhead_ratio is receipt-on round latency over receipt-off", rows, cols),
		"overhead_ratio": on.NsPerRound / off.NsPerRound,
		"rows":           []receiptsRow{off, on},
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_receipts.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Log("wrote BENCH_receipts.json")
}
