package repro_test

// Data-plane transport benchmark: the batched coded round over real TCP
// loopback, net/rpc (the legacy executor) vs the framed streaming transport
// that replaced it. The workload is payload-heavy and compute-light — a
// 32-vector batch broadcast to 12 workers with small shards — so the wire
// cost dominates and the comparison isolates exactly what the transport
// rewrite changed: gob reflection vs raw little-endian frames, per-call
// re-encoding vs broadcast-once, N serialisations per round vs one.
//
// Full runs (`go test -bench BenchmarkTransport`) merge a "transport"
// section into BENCH_serving.json next to the serving sweep; 1x smoke runs
// only exercise the round path.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/rpccluster"
)

// transportRow is one BENCH_serving.json transport-axis entry.
type transportRow struct {
	Transport       string  `json:"transport"`
	Workers         int     `json:"workers"`
	Batch           int     `json:"batch"`
	ShardRows       int     `json:"shard_rows"`
	Cols            int     `json:"cols"`
	Rounds          int     `json:"rounds"`
	RoundsPerSec    float64 `json:"rounds_per_sec"`
	PayloadMBPerSec float64 `json:"payload_mb_per_sec"`
}

var (
	transportMu      sync.Mutex
	transportResults = map[string]transportRow{}
)

// The transport workload: 12 workers, a 32-vector batch of width-512
// inputs (1.5 MiB broadcast per round), 16-row shards (50 KiB of results).
const (
	twWorkers   = 12
	twBatch     = 32
	twShardRows = 16
	twCols      = 512
)

type benchExec interface {
	cluster.Executor
	Close()
}

func BenchmarkTransport(b *testing.B) {
	f := field.Default()
	rng := rand.New(rand.NewSource(99))
	workers := make([]*cluster.Worker, twWorkers)
	active := make([]int, twWorkers)
	for i := range workers {
		workers[i] = cluster.NewWorker(i)
		workers[i].Shards["fwd"] = fieldmat.Rand(f, rng, twShardRows, twCols)
		active[i] = i
	}
	packed := f.RandVec(rng, twBatch*twCols)
	// Input broadcast to every worker plus every worker's batched result.
	payloadBytes := twWorkers * 8 * (twBatch*twCols + twBatch*twShardRows)

	arms := []struct {
		name  string
		start func(b *testing.B) benchExec
	}{
		{"netrpc", func(b *testing.B) benchExec {
			addrs := make([]string, twWorkers)
			for i, w := range workers {
				srv, err := rpccluster.Serve("127.0.0.1:0", f, w)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { srv.Close() })
				addrs[i] = srv.Addr
			}
			exec, err := rpccluster.Dial(addrs, nil)
			if err != nil {
				b.Fatal(err)
			}
			return exec
		}},
		{"frames", func(b *testing.B) benchExec {
			addrs := make([]string, twWorkers)
			for i, w := range workers {
				srv, err := rpccluster.ServeFrames("127.0.0.1:0", f, w)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { srv.Close() })
				addrs[i] = srv.Addr
			}
			exec, err := rpccluster.DialFrames(addrs, nil)
			if err != nil {
				b.Fatal(err)
			}
			return exec
		}},
	}

	for _, arm := range arms {
		b.Run("transport="+arm.name, func(b *testing.B) {
			exec := arm.start(b)
			b.Cleanup(exec.Close)
			ctx := context.Background()
			// One warm-up round outside the timer: connections, buffers.
			if res := exec.RunRound(ctx, "fwd", packed, twBatch, 0, active); len(res) != twWorkers {
				b.Fatalf("warm-up round returned %d results", len(res))
			}
			b.SetBytes(int64(payloadBytes))
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res := exec.RunRound(ctx, "fwd", packed, twBatch, i+1, active)
				if len(res) != twWorkers {
					b.Fatalf("round %d returned %d results", i, len(res))
				}
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			elapsed := time.Since(start).Seconds()
			b.StopTimer()
			if b.N > 1 && elapsed > 0 {
				transportMu.Lock()
				transportResults[arm.name] = transportRow{
					Transport:       arm.name,
					Workers:         twWorkers,
					Batch:           twBatch,
					ShardRows:       twShardRows,
					Cols:            twCols,
					Rounds:          b.N,
					RoundsPerSec:    float64(b.N) / elapsed,
					PayloadMBPerSec: float64(b.N) * float64(payloadBytes) / elapsed / (1 << 20),
				}
				transportMu.Unlock()
			}
		})
	}

	transportMu.Lock()
	defer transportMu.Unlock()
	netrpc, okA := transportResults["netrpc"]
	frames, okB := transportResults["frames"]
	if !okA || !okB {
		b.Log("skipping BENCH_serving.json transport section (smoke run)")
		return
	}
	mergeBenchArtifact(b, "BENCH_serving.json", map[string]any{
		"transport": map[string]any{
			"workload": fmt.Sprintf(
				"batched coded round over TCP loopback: %d workers, batch %d, %dx%d shards, %.1f MiB payload per round",
				twWorkers, twBatch, twShardRows, twCols, float64(payloadBytes)/(1<<20)),
			"rows":           []transportRow{netrpc, frames},
			"framed_speedup": frames.RoundsPerSec / netrpc.RoundsPerSec,
		},
	})
	b.Logf("wrote BENCH_serving.json transport axis (framed speedup %.2fx)",
		frames.RoundsPerSec/netrpc.RoundsPerSec)
}

// mergeBenchArtifact read-modify-writes a JSON artifact, replacing only the
// given top-level keys: BenchmarkServing and BenchmarkTransport each own a
// section of BENCH_serving.json, and either may run (and refresh its
// section) without erasing the other's.
func mergeBenchArtifact(tb testing.TB, path string, set map[string]any) {
	tb.Helper()
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			tb.Fatalf("existing %s is not JSON: %v", path, err)
		}
	}
	for k, v := range set {
		doc[k] = v
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		tb.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		tb.Fatal(err)
	}
}
