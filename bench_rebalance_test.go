package repro_test

// Elastic-fleet benchmark: the same degraded-fleet workload as the serving
// soak — four coded groups, half of them slowed 6x partway in, permanently —
// run with the elastic shard plane ON and OFF. The metric is VIRTUAL req/s
// (requests over summed per-round virtual wall): with rebalancing off, the
// static plan pins every round's wall to the degraded groups forever; with
// it on, rows migrate off the slow groups and autoscaling replaces them with
// fresh ones, so the fleet's wall recovers. The two arms are written to the
// "rebalance" section of BENCH_serving.json with their speedup — the
// committed evidence that elasticity beats a frozen plan under degrade.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scenario"
	"repro/internal/scheme"
	"repro/internal/shard"
	"repro/internal/simnet"
)

const (
	rbRows    = 480
	rbCols    = 64
	rbShards  = 4
	rbBatch   = 4
	rbFaultAt = 8 // rounds before half the fleet degrades 6x, permanently
)

// rebalanceRow is one arm of the rebalance axis in BENCH_serving.json.
type rebalanceRow struct {
	Rebalance     bool    `json:"rebalance"`
	Rounds        int     `json:"rounds"`
	Batch         int     `json:"batch"`
	VirtReqPerSec float64 `json:"virt_req_per_sec"`
	// Elastic-policy counters for the on arm (zero when off).
	Moves         uint64 `json:"moves"`
	GroupsAdded   uint64 `json:"groups_added"`
	GroupsRetired uint64 `json:"groups_retired"`
}

var (
	rebalanceMu      sync.Mutex
	rebalanceResults = map[bool]rebalanceRow{}
)

// rbDegrade slows every worker of one 12-worker group by 6x from rbFaultAt on.
func rbDegrade() *scenario.Scenario {
	s := &scenario.Scenario{Name: "degrade", N: 12}
	for w := 0; w < 12; w++ {
		s.Events = append(s.Events, scenario.Event{
			Kind: scenario.Slowdown, Worker: w, From: rbFaultAt, Factor: 6,
		})
	}
	return s
}

func BenchmarkRebalance(b *testing.B) {
	f := field.Default()
	sim := simnet.DefaultConfig()
	sim.LinkLatency = 1e-5 // compute-dominated: the degrade shows up in walls

	for _, elastic := range []bool{false, true} {
		b.Run(fmt.Sprintf("rebalance=%v", elastic), func(b *testing.B) {
			rng := rand.New(rand.NewSource(77))
			x := fieldmat.Rand(f, rng, rbRows, rbCols)
			opts := []scheme.Option{
				scheme.WithSeed(77),
				scheme.WithShards(rbShards),
				scheme.WithSim(sim),
				// Seed slots 0 and 1 carry the fault; fresh slots autoscaling
				// mints are the clean default.
				scheme.WithGroupScenarios(rbDegrade(), rbDegrade()),
			}
			if elastic {
				opts = append(opts, scheme.WithRebalance(shard.RebalanceConfig{
					Alpha: 0.5, Ratio: 1.2, CooldownRounds: 1,
					MinGroups: 2, MaxGroups: 8,
					ScaleUpWall: 1e-9, // constant growth pressure off the virtual walls
				}))
			}
			m, err := scheme.New("avcc", f, scheme.NewConfig(opts...),
				map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			el, _ := m.(scheme.Elastic)
			inputs := make([][]field.Elem, rbBatch)
			for i := range inputs {
				inputs[i] = f.RandVec(rng, x.Cols)
			}

			b.ResetTimer()
			virtWall := 0.0
			for iter := 0; iter < b.N; iter++ {
				out, err := m.RunRoundBatch(context.Background(), "fwd", inputs, iter)
				if err != nil {
					b.Fatal(err)
				}
				virtWall += out.Breakdown.Wall
				m.FinishIteration(iter)
				if elastic {
					if _, err := el.Tick(shard.LoadSignal{}); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()

			// Spot-check the last decode: elasticity must stay exact.
			outLast, err := m.RunRound(context.Background(), "fwd", inputs[0], b.N)
			if err != nil {
				b.Fatal(err)
			}
			if !field.EqualVec(outLast.Decoded, fieldmat.MatVec(f, x, inputs[0])) {
				b.Fatal("decode is not the exact product")
			}

			var virtReqPerSec float64
			if virtWall > 0 {
				virtReqPerSec = float64(b.N*rbBatch) / virtWall
				b.ReportMetric(virtReqPerSec, "virt-req/s")
			}
			row := rebalanceRow{
				Rebalance:     elastic,
				Rounds:        b.N,
				Batch:         rbBatch,
				VirtReqPerSec: virtReqPerSec,
			}
			if elastic {
				st := el.RebalanceStatus()
				row.Moves, row.GroupsAdded, row.GroupsRetired = st.Moves, st.GroupsAdded, st.GroupsRetired
			}
			// The artifact needs the recovered regime to dominate the mean:
			// short calibration runs (and the 1x bench smoke) are not recorded.
			if b.N >= 8*rbFaultAt {
				rebalanceMu.Lock()
				rebalanceResults[elastic] = row
				rebalanceMu.Unlock()
			}
		})
	}

	rebalanceMu.Lock()
	defer rebalanceMu.Unlock()
	off, okOff := rebalanceResults[false]
	on, okOn := rebalanceResults[true]
	if !okOff || !okOn {
		b.Log("skipping BENCH_serving.json rebalance section (smoke run)")
		return
	}
	mergeBenchArtifact(b, "BENCH_serving.json", map[string]any{
		"rebalance": map[string]any{
			"workload": fmt.Sprintf(
				"avcc (12,9) virtual executor, %d shard groups on a %dx%d matvec (compute-bound sim), batch %d; "+
					"seed slots 0-1 degrade 6x at round %d permanently; virt_req_per_sec is requests over summed per-round virtual wall",
				rbShards, rbRows, rbCols, rbBatch, rbFaultAt),
			"rows":            []rebalanceRow{off, on},
			"elastic_speedup": on.VirtReqPerSec / off.VirtReqPerSec,
		},
	})
	b.Logf("wrote BENCH_serving.json rebalance axis (elastic speedup %.2fx)",
		on.VirtReqPerSec/off.VirtReqPerSec)
}
