// Command avcctrain trains distributed logistic regression under one
// scheme and prints the per-iteration convergence trace as CSV.
//
// Usage:
//
//	avcctrain -scheme avcc -attack constant -s 1 -m 2 -iters 25
//	avcctrain -scheme lcc -attack reverse -s 2 -m 1
//	avcctrain -scheme uncoded
//	avcctrain -scheme static-vcc -s 2 -m 1
//
// The output columns are iter,time,accuracy,loss,compute,comm,verify,
// decode,wall; pipe into a plotting tool to reproduce Fig. 3-style curves.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/linreg"
	"repro/internal/logreg"
	"repro/internal/scheme"
)

func main() {
	scheme := flag.String("scheme", "avcc", "avcc | static-vcc | lcc | uncoded")
	task := flag.String("task", "logreg", "logreg | linreg")
	attackName := flag.String("attack", "none", "none | reverse | constant")
	s := flag.Int("s", 1, "straggler count (workers 0..s-1 straggle)")
	m := flag.Int("m", 1, "Byzantine count (workers 3..3+m-1 misbehave)")
	iters := flag.Int("iters", 0, "training iterations (0 = scale default)")
	scale := flag.String("scale", "ci", "workload scale: ci or paper")
	seed := flag.Int64("seed", 17, "seed")
	flag.Parse()

	if err := run(*scheme, *task, *attackName, *s, *m, *iters, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(schemeName, task, attackName string, s, m, iters int, scale string, seed int64) error {
	var sc experiments.Scale
	switch scale {
	case "ci":
		sc = experiments.CI()
	case "paper":
		sc = experiments.Paper()
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	if iters > 0 {
		sc.Train.Iterations = iters
	}
	sc.Seed = seed
	sc.Dataset.Seed = seed

	f := field.Default()
	ds, err := dataset.Generate(sc.Dataset)
	if err != nil {
		return err
	}
	x := ds.FieldMatrix(f)
	data := map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}

	var behavior attack.Behavior = attack.Honest{}
	switch attackName {
	case "none":
	case "reverse":
		behavior = attack.ReverseValue{C: 1}
	case "constant":
		behavior = attack.Constant{V: experiments.ConstantAttackValue}
	default:
		return fmt.Errorf("unknown attack %q", attackName)
	}
	stragglerIDs := make([]int, s)
	for i := range stragglerIDs {
		stragglerIDs[i] = i
	}
	stragglers := attack.NewFixedStragglers(stragglerIDs...)
	mkBehaviors := func(n int) []attack.Behavior {
		bs := make([]attack.Behavior, n)
		for i := range bs {
			bs[i] = attack.Honest{}
		}
		for i := 0; i < m && 3+i < n; i++ {
			bs[3+i] = behavior
		}
		return bs
	}

	// The LCC baseline is always designed at the paper's fixed (S=1, M=1)
	// point regardless of the simulated environment (eq. 1 pins N = 12);
	// the verified schemes budget for the actual environment.
	budgetS, budgetM := s, m
	if schemeName == "lcc" {
		budgetS, budgetM = 1, 1
	}
	cfg := scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(budgetS, budgetM, 0),
		scheme.WithSim(sc.Sim),
		scheme.WithSeed(seed),
		scheme.WithPregeneratedCodings(true),
	)
	workerN, err := scheme.WorkerCount(schemeName, cfg)
	if err != nil {
		return err
	}
	master, err := scheme.New(schemeName, f, cfg, data, mkBehaviors(workerN), stragglers)
	if err != nil {
		return err
	}

	switch task {
	case "logreg":
		series, model, err := logreg.TrainDistributed(context.Background(), f, master, ds, sc.Train)
		if err != nil {
			return err
		}
		fmt.Print(series.CSV())
		fmt.Fprintf(os.Stderr, "final test accuracy %.4f, total virtual time %.4fs\n",
			model.Accuracy(ds.TestX, ds.TestY, ds.TestRows, ds.Cols), series.TotalTime())
	case "linreg":
		cfg := linreg.DefaultTrainConfig()
		if iters > 0 {
			cfg.Iterations = iters
		}
		series, model, err := linreg.TrainDistributed(context.Background(), f, master, ds, cfg)
		if err != nil {
			return err
		}
		fmt.Print(series.CSV())
		fmt.Fprintf(os.Stderr, "final train MSE %.4f, total virtual time %.4fs\n",
			model.MSE(ds.TrainX, ds.TrainY, ds.Rows, ds.Cols), series.TotalTime())
	default:
		return fmt.Errorf("unknown task %q", task)
	}
	return nil
}
