// Command avcclint runs the repo's invariant analyzer suite (internal/lint,
// DESIGN.md §13) over a package pattern set and prints findings in the
// standard file:line:col format. Exit status 1 means findings, 2 means the
// load or an analyzer failed.
//
// Usage:
//
//	go run ./cmd/avcclint ./...
//	go run ./cmd/avcclint -only lazyreduce,noalloc ./internal/field/...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: avcclint [-only names] [packages]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		if len(want) > 0 {
			for name := range want {
				fmt.Fprintf(os.Stderr, "avcclint: unknown analyzer %q\n", name)
			}
			os.Exit(2)
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avcclint: %v\n", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			diags, err := a.RunPackage(pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "avcclint: %s: %v\n", pkg.Path, err)
				os.Exit(2)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				fmt.Printf("%s: [%s] %s\n", pos, a.Name, d.Message)
				found++
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "avcclint: %d finding(s)\n", found)
		os.Exit(1)
	}
}
