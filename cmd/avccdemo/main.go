// Command avccdemo runs the full AVCC protocol over REAL TCP connections:
// it starts 12 worker servers on loopback (one of them Byzantine, per
// -attack), encodes a random matrix with the (12,9) MDS code, ships the
// shards, and drives verified coded matrix-vector rounds through them.
// -transport picks the data plane: the framed streaming transport
// (default) or the legacy net/rpc executor.
//
// This demonstrates that the master logic is transport-agnostic: the same
// code paths that the experiments drive under the virtual-time simulator
// here verify and decode results arriving over actual sockets.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/rpccluster"
	"repro/internal/scheme"
)

func main() {
	rows := flag.Int("rows", 360, "matrix rows")
	cols := flag.Int("cols", 120, "matrix cols")
	rounds := flag.Int("rounds", 3, "number of coded matvec rounds")
	byzantine := flag.Int("byzantine", 5, "worker id to corrupt (-1 for none)")
	attackName := flag.String("attack", "reverse", "reverse | constant")
	transport := flag.String("transport", "frames", "data-plane transport: frames | netrpc")
	fieldName := flag.String("field", "paper", "prime field: paper | ntt | a decimal modulus (ntt unlocks the O(N log N) encode path)")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	if err := run(*rows, *cols, *rounds, *byzantine, *attackName, *transport, *fieldName, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(rows, cols, rounds, byzantine int, attackName, transport, fieldName string, seed int64) error {
	const n, k = 12, 9
	f, err := field.Select(fieldName)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))

	if transport != "frames" && transport != "netrpc" {
		return fmt.Errorf("unknown transport %q (want frames or netrpc)", transport)
	}

	// Master side first: encode and generate keys, so worker endpoints can
	// be fully provisioned (shards, behaviour) BEFORE their servers start
	// accepting — server handlers read worker state without locks.
	x := fieldmat.Rand(f, rng, rows, cols)
	master, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithCoding(n, k),
		scheme.WithBudgets(1, 2, 0),
		scheme.WithSeed(seed),
		scheme.WithModulus(f.Q()),
	), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		return err
	}
	workers := make([]*cluster.Worker, n)
	for i := 0; i < n; i++ {
		workers[i] = cluster.NewWorker(i)
		workers[i].Shards["fwd"] = master.Workers()[i].Shards["fwd"]
	}
	if byzantine >= 0 && byzantine < n {
		switch attackName {
		case "reverse":
			workers[byzantine].Behavior = attack.ReverseValue{C: 1}
		case "constant":
			workers[byzantine].Behavior = attack.Constant{V: 12345}
		default:
			return fmt.Errorf("unknown attack %q", attackName)
		}
		fmt.Printf("worker %d is Byzantine (%s attack)\n", byzantine, attackName)
	}

	// Start the provisioned worker endpoints on loopback.
	fmt.Printf("starting %d worker servers on loopback (%s transport)...\n", n, transport)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		var addr string
		var closer interface{ Close() error }
		if transport == "frames" {
			srv, err := rpccluster.ServeFrames("127.0.0.1:0", f, workers[i])
			if err != nil {
				return err
			}
			addr, closer = srv.Addr, srv
		} else {
			srv, err := rpccluster.Serve("127.0.0.1:0", f, workers[i])
			if err != nil {
				return err
			}
			addr, closer = srv.Addr, srv
		}
		defer closer.Close()
		addrs[i] = addr
		fmt.Printf("  worker %2d listening on %s\n", i, addr)
	}
	var exec cluster.Executor
	if transport == "frames" {
		fe, err := rpccluster.DialFrames(addrs, nil)
		if err != nil {
			return err
		}
		defer fe.Close()
		exec = fe
	} else {
		re, err := rpccluster.Dial(addrs, nil)
		if err != nil {
			return err
		}
		defer re.Close()
		exec = re
	}
	master.SetExecutor(exec)
	fmt.Printf("encoded %dx%d matrix into %d shards ((%d,%d) MDS), keys generated\n",
		rows, cols, n, n, k)

	for iter := 0; iter < rounds; iter++ {
		w := f.RandVec(rng, cols)
		want := fieldmat.MatVec(f, x, w)
		out, err := master.RunRound(context.Background(), "fwd", w, iter)
		if err != nil {
			return err
		}
		ok := field.EqualVec(out.Decoded, want)
		fmt.Printf("round %d: decoded %d values from workers %v, byzantine flagged %v, correct=%v\n",
			iter, len(out.Decoded), out.Used, out.Byzantine, ok)
		if !ok {
			return fmt.Errorf("round %d decoded incorrectly", iter)
		}
		master.FinishIteration(iter)
	}
	if ad, ok := master.(scheme.Adaptive); ok {
		nCur, kCur := ad.Coding()
		fmt.Printf("final coding (%d,%d), active workers %v\n", nCur, kCur, ad.ActiveWorkers())
	}
	fmt.Println("demo complete: all rounds decoded the true product despite the Byzantine worker")
	return nil
}
