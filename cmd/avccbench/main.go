// Command avccbench regenerates the paper's tables and figures.
//
// Usage:
//
//	avccbench -exp fig3a            # one artifact at CI scale
//	avccbench -exp all              # everything
//	avccbench -exp table1 -scale paper   # full GISETTE-sized run (minutes)
//	avccbench -exp fig3c -iters 30 -train-n 2000 -features 1000
//	avccbench -exp scenarios -seed 3     # scheme x fault-profile matrix
//
// Experiment ids: fig3a fig3b fig3c fig3d table1 fig4a fig4b fig4c fig5
// scenarios. See EXPERIMENTS.md for the expected shapes versus the paper's
// results; the scenarios matrix runs every registered backend through every
// fault-injection preset (internal/scenario) and reports cost, adaptation,
// and bit-exactness per cell.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig3a..d, fig4a..c, table1, fig5, all)")
	csvDir := flag.String("csv", "", "directory to additionally write per-series CSV files into")
	scale := flag.String("scale", "ci", "workload scale: ci or paper")
	iters := flag.Int("iters", 0, "override training iterations")
	trainN := flag.Int("train-n", 0, "override training sample count m")
	features := flag.Int("features", 0, "override feature count d")
	seed := flag.Int64("seed", 0, "override experiment seed")
	fieldName := flag.String("field", "paper", "prime field: paper | ntt | a decimal modulus (ntt unlocks the O(N log N) encode path)")
	flag.Parse()

	f, err := field.Select(*fieldName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scale {
	case "ci":
		sc = experiments.CI()
	case "paper":
		sc = experiments.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want ci or paper)\n", *scale)
		os.Exit(2)
	}
	if *iters > 0 {
		sc.Train.Iterations = *iters
	}
	if *trainN > 0 {
		sc.Dataset.TrainN = *trainN
		sc.Dataset.TestN = *trainN / 4
	}
	if *features > 0 {
		sc.Dataset.Features = *features
		sc.Dataset.Informative = *features / 8
	}
	if *seed != 0 {
		sc.Seed = *seed
		sc.Dataset.Seed = *seed
	}
	sc.Modulus = f.Q()

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig3a", "fig3b", "fig3c", "fig3d", "table1", "fig4a", "fig4b", "fig4c", "fig5", "scenarios"}
	}
	for _, id := range ids {
		if err := run(sc, id, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

// writeCSV dumps a series trace to <dir>/<id>-<scheme>.csv for plotting.
func writeCSV(dir, id string, series ...*metrics.Series) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range series {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.csv", id, s.Name))
		if err := os.WriteFile(path, []byte(s.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func run(sc experiments.Scale, id, csvDir string) error {
	switch {
	case strings.HasPrefix(id, "fig3"):
		set, err := experiments.Fig3SettingByID(id)
		if err != nil {
			return err
		}
		res, err := experiments.RunFig3(sc, set)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := writeCSV(csvDir, id, res.AVCC, res.LCC, res.Uncoded); err != nil {
			return err
		}
	case id == "table1":
		rows, err := experiments.RunTable1(sc)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTable1(rows))
	case strings.HasPrefix(id, "fig4"):
		set, err := experiments.Fig4SettingByID(id)
		if err != nil {
			return err
		}
		res, err := experiments.RunFig4(sc, set)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case id == "scenarios":
		rows, err := experiments.RunScenarioMatrix(sc, 10)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderScenarioMatrix(rows))
	case id == "fig5":
		res, err := experiments.RunFig5(sc)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if err := writeCSV(csvDir, id, res.AVCC, res.StaticVCC); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
	return nil
}
