// Command avccload is the open-loop load generator for the serving plane:
// Poisson arrivals — optionally shaped by a scenario preset into bursts,
// ramps, or flash crowds — fired at a serving target independently of how
// fast it answers, reporting goodput, latency quantiles, and the shed
// (503) rate.
//
// Two targets:
//
//	avccload -url http://127.0.0.1:8080 -cols 120 -rate 200 -duration 10s
//	    drives a running avccserve over its public HTTP API.
//
//	avccload -rate 500 -duration 5s -profile flash-crowd
//	    deploys an in-process AVCC service (same substrate avccserve uses,
//	    no HTTP stack) and drives it directly — the self-contained mode CI's
//	    smoke step uses.
//
// -json emits the report as JSON on stdout for scripted consumers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/loadgen"
	"repro/internal/scenario"
	"repro/internal/scheme"
)

func main() {
	url := flag.String("url", "", "base URL of a running avccserve; empty deploys an in-process service")
	tenant := flag.String("tenant", "loadgen", "X-Tenant header for HTTP runs")

	rate := flag.Float64("rate", 200, "base arrival rate, requests/second")
	duration := flag.Duration("duration", 5*time.Second, "offered-load window")
	profile := flag.String("profile", scenario.Steady,
		fmt.Sprintf("arrival-curve preset %v", loadgen.Profiles()))
	timeout := flag.Duration("timeout", 10*time.Second, "per-request deadline")
	seed := flag.Int64("seed", 1, "arrival schedule and input seed")
	asJSON := flag.Bool("json", false, "emit the report as JSON on stdout")

	schemeName := flag.String("scheme", "avcc", "in-process: registered scheme name")
	rows := flag.Int("rows", 360, "in-process: model matrix rows")
	cols := flag.Int("cols", 120, "input width (must match the served matrix's cols)")
	n := flag.Int("n", 12, "in-process: worker count N")
	k := flag.Int("k", 9, "in-process: code dimension K")
	shards := flag.Int("shards", 1, "in-process: independent coded shard groups")
	batch := flag.Int("batch", scheme.DefaultMaxBatch, "in-process: max requests per coded round")
	linger := flag.Duration("linger", scheme.DefaultMaxLinger, "in-process: max wait to fill a round")
	flag.Parse()

	if err := run(*url, *tenant, *rate, *duration, *profile, *timeout, *seed, *asJSON,
		*schemeName, *rows, *cols, *n, *k, *shards, *batch, *linger); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(url, tenant string, rate float64, duration time.Duration, profile string,
	timeout time.Duration, seed int64, asJSON bool,
	schemeName string, rows, cols, n, k, shards, batch int, linger time.Duration) error {
	curve, err := loadgen.CompileProfile(profile, n, k, seed)
	if err != nil {
		return err
	}

	var target loadgen.Target
	if url != "" {
		target = loadgen.HTTPTarget{URL: url, Tenant: tenant}
		fmt.Fprintf(os.Stderr, "avccload: driving %s (profile %s, base %.0f rps, peak %.0f rps) for %v\n",
			url, profile, rate, rate*curve.Peak(), duration)
	} else {
		f := field.Default()
		rng := rand.New(rand.NewSource(seed))
		x := fieldmat.Rand(f, rng, rows, cols)
		master, err := scheme.New(schemeName, f, scheme.NewConfig(
			scheme.WithSeed(seed),
			scheme.WithCoding(n, k),
			scheme.WithShards(shards),
		), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
		if err != nil {
			return err
		}
		svc := scheme.NewService(master, scheme.ServiceConfig{MaxBatch: batch, MaxLinger: linger})
		defer svc.Close(context.Background())
		target = loadgen.ServiceTarget{Svc: svc}
		fmt.Fprintf(os.Stderr, "avccload: in-process %s %dx%d (N=%d K=%d shards=%d batch=%d), "+
			"profile %s, base %.0f rps, peak %.0f rps, %v\n",
			schemeName, rows, cols, n, k, shards, batch, profile, rate, rate*curve.Peak(), duration)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, err := loadgen.Run(ctx, target, loadgen.Config{
		Rate:     rate,
		Duration: duration,
		Curve:    curve,
		Cols:     cols,
		Seed:     seed,
		Timeout:  timeout,
	})
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Println(report)
	return nil
}
