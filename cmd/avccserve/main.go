// Command avccserve is the multi-tenant HTTP serving front end over the
// coded-computing substrate: it deploys one coded master (any registered
// scheme, optionally sharded across independent worker groups) and serves
// concurrent matvec solves through scheme.Service, which coalesces them
// into batched verified rounds.
//
//	avccserve -addr :8080 -scheme avcc -rows 360 -cols 120 -batch 32 -shards 2
//
// Endpoints:
//
//	POST /v1/matvec   {"input": [w_0, ..., w_{cols-1}]}  (field elements)
//	                  → {"output": [...], "used": [...], "byzantine": [...]}
//	                  The tenant is taken from the X-Tenant header. With
//	                  receipts on (default), sending "X-Receipt: 1" adds
//	                  "receipt" (base64 of the round's committed-verification
//	                  receipt) and "receipt_column" (which batch column of it
//	                  this answer is) — verify offline with cmd/avccverify.
//	GET  /healthz     liveness probe
//	GET  /statz       service + per-tenant metrics (incl. receipt counters),
//	                  the public matrix digests receipts are bound to, plus a
//	                  per-shard-group section (seed slot, row span, worker
//	                  count, live coding state, EWMA round wall) and the
//	                  elastic policy counters when the deployment is sharded
//	                  (JSON; snapshotted under the shard master's topology
//	                  lock, so it is consistent against concurrent rebalances)
//
// With -rebalance the shard plane is ELASTIC: rows migrate between adjacent
// groups when their EWMA round walls diverge, and -max-groups > 0 lets the
// fleet add/retire whole groups from serving load:
//
//	avccserve -shards 4 -rebalance -min-groups 2 -max-groups 8 -scale-up-depth 16
//
// SIGINT/SIGTERM drains gracefully: admission stops, queued rounds finish,
// then the process exits.
package main

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	schemeName := flag.String("scheme", "avcc", "registered scheme name")
	rows := flag.Int("rows", 360, "model matrix rows")
	cols := flag.Int("cols", 120, "model matrix cols")
	n := flag.Int("n", 12, "worker count N per shard group")
	k := flag.Int("k", 9, "code dimension K")
	sBudget := flag.Int("s", 1, "straggler budget S")
	mBudget := flag.Int("m", 1, "Byzantine budget M")
	shards := flag.Int("shards", 1, "independent coded shard groups the rows are split across")
	batch := flag.Int("batch", scheme.DefaultMaxBatch, "max requests coalesced per coded round")
	linger := flag.Duration("linger", scheme.DefaultMaxLinger, "max wait to fill a round")
	seed := flag.Int64("seed", 1, "seed for the synthetic model matrix and coding")
	receipts := flag.Bool("receipts", true, "issue and audit committed-verification receipts")
	rebalance := flag.Bool("rebalance", false, "enable runtime row rebalancing across shard groups")
	rebalanceRatio := flag.Float64("rebalance-ratio", shard.DefaultRatio,
		"EWMA-wall imbalance between adjacent groups that triggers a row move")
	minGroups := flag.Int("min-groups", 1, "autoscale floor (with -max-groups)")
	maxGroups := flag.Int("max-groups", 0, "autoscale ceiling; 0 disables group autoscaling")
	scaleUpDepth := flag.Int("scale-up-depth", 0, "admission queue depth that adds a group (0 = off)")
	flag.Parse()

	var rc *shard.RebalanceConfig
	if *rebalance || *maxGroups > 0 {
		c := shard.DefaultRebalanceConfig()
		c.Ratio = *rebalanceRatio
		c.MinGroups, c.MaxGroups = *minGroups, *maxGroups
		c.ScaleUpDepth = *scaleUpDepth
		rc = &c
	}

	if err := run(*addr, *schemeName, *rows, *cols, *n, *k, *sBudget, *mBudget, *shards, *batch, *linger, *seed, *receipts, rc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// server is the HTTP layer over one serving deployment, extracted from run
// so the endpoint behaviour is testable with httptest against any master
// (real, sharded, or scripted).
type server struct {
	svc    *scheme.Service
	master scheme.Master
	f      *field.Field
	cols   int
}

func newServer(svc *scheme.Service, master scheme.Master, f *field.Field, cols int) *server {
	return &server{svc: svc, master: master, f: f, cols: cols}
}

// handler builds the endpoint mux.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matvec", s.matvec)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /statz", s.statz)
	return mux
}

func (s *server) matvec(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Input []field.Elem `json:"input"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Input) != s.cols {
		http.Error(w, fmt.Sprintf("input length %d, want %d", len(req.Input), s.cols), http.StatusBadRequest)
		return
	}
	for i, v := range req.Input {
		if uint64(v) >= s.f.Q() {
			http.Error(w, fmt.Sprintf("input[%d] = %d outside the field", i, v), http.StatusBadRequest)
			return
		}
	}
	ctx := r.Context()
	if tenant := r.Header.Get("X-Tenant"); tenant != "" {
		ctx = scheme.WithTenant(ctx, tenant)
	}
	out, err := s.svc.Submit(ctx, "fwd", req.Input).Wait(ctx)
	switch {
	case errors.Is(err, scheme.ErrServiceClosed), errors.Is(err, scheme.ErrQueueFull):
		// Both are "not now": draining or MaxPending overflow. 503 tells
		// load balancers to back off / retry elsewhere.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := map[string]any{
		"output":    out.Decoded,
		"used":      out.Used,
		"byzantine": out.Byzantine,
		"wall_sec":  out.Breakdown.Wall,
	}
	if r.Header.Get("X-Receipt") == "1" && out.Receipt != nil {
		// The receipt is opt-in per request: it covers the whole coded round
		// and is a few KB, so only tenants that verify should pay the bytes.
		resp["receipt"] = base64.StdEncoding.EncodeToString(commit.EncodeReceipt(out.Receipt))
		resp["receipt_column"] = out.ReceiptColumn
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *server) statz(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"service": s.svc.Stats()}
	if dp, ok := s.master.(commit.DigestProvider); ok {
		if digests := dp.ReceiptDigests(); digests != nil {
			// The folded fingerprint per round key: what a tenant pins and
			// hands to avccverify -digest.
			folded := make(map[string]string, len(digests))
			for key, ds := range digests {
				folded[key] = commit.FoldDigests(ds)
			}
			resp["digests"] = folded
		}
	}
	if sm, ok := s.master.(scheme.Elastic); ok {
		// Snapshot and RebalanceStatus read under the shard master's topology
		// lock: the group list, spans, and coding state are one consistent
		// cut even while a rebalance or group add/retire runs concurrently.
		resp["shards"] = sm.Snapshot()
		resp["rebalance"] = sm.RebalanceStatus()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func run(addr, schemeName string, rows, cols, n, k, sBudget, mBudget, shards, batch int, linger time.Duration, seed int64, receipts bool, rc *shard.RebalanceConfig) error {
	f := field.Default()
	rng := rand.New(rand.NewSource(seed))
	x := fieldmat.Rand(f, rng, rows, cols)

	opts := []scheme.Option{
		scheme.WithCoding(n, k),
		scheme.WithBudgets(sBudget, mBudget, 0),
		scheme.WithSeed(seed),
		scheme.WithShards(shards),
		scheme.WithReceipts(receipts),
	}
	if rc != nil {
		opts = append(opts, scheme.WithRebalance(*rc))
	}
	master, err := scheme.New(schemeName, f, scheme.NewConfig(opts...),
		map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		var cfgErr *scheme.InvalidConfigError
		if errors.As(err, &cfgErr) {
			return fmt.Errorf("bad deployment parameters: %w", err)
		}
		return err
	}
	svc := scheme.NewService(master, scheme.ServiceConfig{MaxBatch: batch, MaxLinger: linger, AuditReceipts: receipts})

	srv := newServer(svc, master, f, cols)
	server := &http.Server{Addr: addr, Handler: srv.handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Printf("avccserve: %s over %q (%d,%d) x %d shard group(s) serving %dx%d matvec on %s (batch <= %d, linger %v)\n",
		master.Name(), schemeName, n, k, max(shards, 1), rows, cols, addr, batch, linger)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("avccserve: %v — draining\n", s)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := svc.Close(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	stats := svc.Stats()
	fmt.Printf("avccserve: drained (%d requests in %d rounds, %.2f req/round)\n",
		stats.Requests, stats.Rounds, float64(stats.Requests)/float64(max(stats.Rounds, 1)))
	return nil
}
