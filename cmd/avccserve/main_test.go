package main

// End-to-end httptest suite for the serving front end: the handler is
// exercised exactly as a client would — JSON over HTTP — against a real
// sharded deployment for the data-path tests and against a scriptable
// gated master for the admission/drain tests (overflow and drain behaviour
// need a round that blocks on demand, which no real executor offers).

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scenario"
	"repro/internal/scheme"
	"repro/internal/shard"
	"repro/internal/simnet"
)

// newTestServer deploys a sharded AVCC master behind the HTTP handler.
func newTestServer(t *testing.T, shards int) (*httptest.Server, *fieldmat.Matrix, *field.Field) {
	return newReceiptTestServer(t, shards, false)
}

// newReceiptTestServer is newTestServer with the committed-verification
// plane switchable.
func newReceiptTestServer(t *testing.T, shards int, receipts bool) (*httptest.Server, *fieldmat.Matrix, *field.Field) {
	t.Helper()
	f := field.Default()
	rng := rand.New(rand.NewSource(5))
	x := fieldmat.Rand(f, rng, 120, 24)
	master, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithSeed(5),
		scheme.WithShards(shards),
		scheme.WithReceipts(receipts),
	), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := scheme.NewService(master, scheme.ServiceConfig{MaxBatch: 8, AuditReceipts: receipts})
	ts := httptest.NewServer(newServer(svc, master, f, x.Cols).handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close(context.Background())
	})
	return ts, x, f
}

func postMatvec(t *testing.T, url, tenant string, input []field.Elem, headers ...string) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string]any{"input": input})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/matvec", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	for i := 0; i+1 < len(headers); i += 2 {
		req.Header.Set(headers[i], headers[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestMatvecRoundTrip(t *testing.T) {
	ts, x, f := newTestServer(t, 2)
	rng := rand.New(rand.NewSource(6))
	in := f.RandVec(rng, x.Cols)

	resp := postMatvec(t, ts.URL, "", in)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Output []field.Elem `json:"output"`
		Used   []int        `json:"used"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Output, fieldmat.MatVec(f, x, in)) {
		t.Fatal("served output is not the exact matvec")
	}
	if len(out.Used) == 0 {
		t.Fatal("response reports no contributing workers")
	}
}

func TestMatvecRejectsBadInputs(t *testing.T) {
	ts, x, f := newTestServer(t, 1)
	short := make([]field.Elem, x.Cols-1)
	if resp := postMatvec(t, ts.URL, "", short); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input: status %d, want 400", resp.StatusCode)
	}
	outside := make([]field.Elem, x.Cols)
	outside[0] = field.Elem(f.Q())
	if resp := postMatvec(t, ts.URL, "", outside); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-field input: status %d, want 400", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/matvec", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

// statzResponse mirrors the /statz JSON shape.
type statzResponse struct {
	Service struct {
		Requests uint64 `json:"Requests"`
		Tenants  []struct {
			Tenant    string `json:"Tenant"`
			Submitted uint64 `json:"Submitted"`
			Completed uint64 `json:"Completed"`
		} `json:"Tenants"`
	} `json:"service"`
	Shards []struct {
		Group   int    `json:"group"`
		Scheme  string `json:"scheme"`
		Workers int    `json:"workers"`
		Coding  []int  `json:"coding"`
	} `json:"shards"`
}

func getStatz(t *testing.T, url string) statzResponse {
	t.Helper()
	resp, err := http.Get(url + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statzResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestStatzIsolatesTenantsAndReportsShards(t *testing.T) {
	ts, x, f := newTestServer(t, 2)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 3; i++ {
		if resp := postMatvec(t, ts.URL, "alpha", f.RandVec(rng, x.Cols)); resp.StatusCode != http.StatusOK {
			t.Fatalf("alpha request %d: status %d", i, resp.StatusCode)
		}
	}
	if resp := postMatvec(t, ts.URL, "beta", f.RandVec(rng, x.Cols)); resp.StatusCode != http.StatusOK {
		t.Fatalf("beta request: status %d", resp.StatusCode)
	}

	stats := getStatz(t, ts.URL)
	counts := map[string][2]uint64{}
	for _, tn := range stats.Service.Tenants {
		counts[tn.Tenant] = [2]uint64{tn.Submitted, tn.Completed}
	}
	if counts["alpha"] != [2]uint64{3, 3} {
		t.Errorf("tenant alpha accounted %v, want 3 submitted / 3 completed", counts["alpha"])
	}
	if counts["beta"] != [2]uint64{1, 1} {
		t.Errorf("tenant beta accounted %v, want 1 submitted / 1 completed", counts["beta"])
	}
	if _, leaked := counts["default"]; leaked {
		t.Error("tenanted traffic leaked into the default tenant")
	}

	if len(stats.Shards) != 2 {
		t.Fatalf("/statz reports %d shard groups, want 2", len(stats.Shards))
	}
	for g, sh := range stats.Shards {
		if sh.Group != g || sh.Scheme != "avcc" || sh.Workers != 12 {
			t.Errorf("shard %d reported as %+v, want group %d, avcc, 12 workers", g, sh, g)
		}
		if len(sh.Coding) != 2 || sh.Coding[0] != 12 || sh.Coding[1] != 9 {
			t.Errorf("shard %d coding %v, want [12 9]", g, sh.Coding)
		}
	}
}

// TestStatzStaysConsistentDuringRebalance serves against an ELASTIC
// deployment whose group 0 is virtually degraded, so rows migrate between
// groups while requests flow — and hammers /statz from pollers the whole
// time. Every poll must see a consistent cut: spans that tile the full
// matrix with no gap, overlap, or stale group count (under -race this also
// pins the snapshot path against concurrent topology changes).
func TestStatzStaysConsistentDuringRebalance(t *testing.T) {
	f := field.Default()
	rng := rand.New(rand.NewSource(11))
	x := fieldmat.Rand(f, rng, 240, 24)
	slow := &scenario.Scenario{Name: "degrade", N: 12}
	for w := 0; w < 12; w++ {
		slow.Events = append(slow.Events, scenario.Event{
			Kind: scenario.Slowdown, Worker: w, From: 0, Factor: 4,
		})
	}
	sim := simnet.DefaultConfig()
	sim.LinkLatency = 1e-5 // compute-dominated: the degrade shows up in walls
	master, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithSeed(11),
		scheme.WithShards(2),
		scheme.WithSim(sim),
		scheme.WithGroupScenarios(slow), // seed slot 0 runs 4x slow
		scheme.WithRebalance(shard.RebalanceConfig{Alpha: 0.5, Ratio: 1.2, CooldownRounds: 1}),
	), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := scheme.NewService(master, scheme.ServiceConfig{MaxBatch: 1})
	ts := httptest.NewServer(newServer(svc, master, f, x.Cols).handler())
	defer func() {
		ts.Close()
		svc.Close(context.Background())
	}()

	type elasticStatz struct {
		Shards []struct {
			Group int `json:"group"`
			Slot  int `json:"slot"`
			Spans map[string]struct {
				Start int `json:"start"`
				Rows  int `json:"rows"`
			} `json:"spans"`
		} `json:"shards"`
		Rebalance struct {
			Enabled bool   `json:"enabled"`
			Moves   uint64 `json:"moves"`
		} `json:"rebalance"`
	}
	getElastic := func() (elasticStatz, error) {
		var st elasticStatz
		resp, err := http.Get(ts.URL + "/statz")
		if err != nil {
			return st, err
		}
		defer resp.Body.Close()
		return st, json.NewDecoder(resp.Body).Decode(&st)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st, err := getElastic()
				if err != nil {
					t.Errorf("poller: %v", err)
					return
				}
				next := 0
				for _, sh := range st.Shards {
					span := sh.Spans["fwd"]
					if span.Start != next || span.Rows < 1 {
						t.Errorf("poller saw a torn plan: %+v", st.Shards)
						return
					}
					next = span.Start + span.Rows
				}
				if next != x.Rows {
					t.Errorf("poller saw spans covering %d of %d rows", next, x.Rows)
					return
				}
			}
		}()
	}

	for i := 0; i < 24; i++ {
		in := f.RandVec(rng, x.Cols)
		resp := postMatvec(t, ts.URL, "", in)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		var out struct {
			Output []field.Elem `json:"output"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if !field.EqualVec(out.Output, fieldmat.MatVec(f, x, in)) {
			t.Fatalf("request %d: served output is not the exact matvec", i)
		}
	}
	close(stop)
	wg.Wait()

	st, err := getElastic()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Rebalance.Enabled || st.Rebalance.Moves < 1 {
		t.Fatalf("the degraded fleet never rebalanced under load (rebalance %+v); the consistency check is vacuous",
			st.Rebalance)
	}
}

// TestServedReceiptVerifiesOffline is the tenant's full journey: request a
// receipt with the response, pin its digest against the deployment's
// published one, and verify it with nothing but the receipt bytes — the
// exact check cmd/avccverify performs.
func TestServedReceiptVerifiesOffline(t *testing.T) {
	ts, x, f := newReceiptTestServer(t, 2, true)
	rng := rand.New(rand.NewSource(9))
	in := f.RandVec(rng, x.Cols)

	resp := postMatvec(t, ts.URL, "gamma", in, "X-Receipt", "1")
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Output        []field.Elem `json:"output"`
		Receipt       string       `json:"receipt"`
		ReceiptColumn int          `json:"receipt_column"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Output, fieldmat.MatVec(f, x, in)) {
		t.Fatal("served output is not the exact matvec")
	}
	if out.Receipt == "" {
		t.Fatal("X-Receipt: 1 response carried no receipt")
	}

	raw, err := base64.StdEncoding.DecodeString(out.Receipt)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := commit.DecodeReceipt(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Offline verification: nothing below this line touches the server.
	if err := rec.Verify(); err != nil {
		t.Fatalf("served receipt rejected: %v", err)
	}
	if len(rec.Groups) != 2 {
		t.Fatalf("receipt has %d groups, want the 2 shard groups", len(rec.Groups))
	}
	// The receipt's decoded output column must be the answer we received…
	col := rec.Groups[0].Outputs[out.ReceiptColumn]
	col = append(append([]field.Elem{}, col...), rec.Groups[1].Outputs[out.ReceiptColumn]...)
	if !field.EqualVec(col, out.Output) {
		t.Fatal("receipt output column differs from the served output")
	}
	// …and our input must be the receipt's embedded broadcast column.
	per := len(rec.Inputs) / rec.Batch
	if !field.EqualVec(rec.Inputs[out.ReceiptColumn*per:(out.ReceiptColumn+1)*per], in) {
		t.Fatal("receipt input column differs from the request input")
	}

	// Digest pinning against the deployment's published fingerprint.
	var statz struct {
		Digests map[string]string `json:"digests"`
		Service struct {
			Tenants []struct {
				Tenant   string `json:"Tenant"`
				Receipts struct {
					Issued   uint64 `json:"Issued"`
					Verified uint64 `json:"Verified"`
					Failed   uint64 `json:"Failed"`
				} `json:"Receipts"`
			} `json:"Tenants"`
		} `json:"service"`
	}
	sresp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	if statz.Digests["fwd"] == "" {
		t.Fatal("/statz publishes no digest for key \"fwd\"")
	}
	if got := rec.FoldedDigest(); got != statz.Digests["fwd"] {
		t.Fatalf("receipt digest %s, deployment publishes %s", got, statz.Digests["fwd"])
	}
	found := false
	for _, tn := range statz.Service.Tenants {
		if tn.Tenant != "gamma" {
			continue
		}
		found = true
		if tn.Receipts.Issued != 1 || tn.Receipts.Verified != 1 || tn.Receipts.Failed != 0 {
			t.Errorf("tenant gamma receipt counters %+v, want 1 issued / 1 verified / 0 failed", tn.Receipts)
		}
	}
	if !found {
		t.Error("tenant gamma missing from /statz")
	}
}

// TestReceiptIsOptIn: without the X-Receipt header the response stays
// receipt-free even when the deployment issues them.
func TestReceiptIsOptIn(t *testing.T) {
	ts, x, f := newReceiptTestServer(t, 1, true)
	rng := rand.New(rand.NewSource(10))
	resp := postMatvec(t, ts.URL, "", f.RandVec(rng, x.Cols))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if _, has := out["receipt"]; has {
		t.Fatal("response carried a receipt without the X-Receipt header")
	}
}

// gatedMaster blocks every round until the gate is released — the scripted
// master behind the overflow and drain tests.
type gatedMaster struct {
	gate    chan struct{}
	started chan struct{}
	release sync.Once
}

// open releases the gate (idempotent).
func (m *gatedMaster) open() { m.release.Do(func() { close(m.gate) }) }

func (m *gatedMaster) Name() string                        { return "gated" }
func (m *gatedMaster) SetExecutor(cluster.Executor)        {}
func (m *gatedMaster) Workers() []*cluster.Worker          { return nil }
func (m *gatedMaster) FinishIteration(int) (float64, bool) { return 0, false }

func (m *gatedMaster) RunRound(ctx context.Context, key string, input []field.Elem, iter int) (*cluster.RoundOutput, error) {
	b, err := m.RunRoundBatch(ctx, key, [][]field.Elem{input}, iter)
	if err != nil {
		return nil, err
	}
	return b.Round(0), nil
}

func (m *gatedMaster) RunRoundBatch(_ context.Context, _ string, inputs [][]field.Elem, _ int) (*cluster.BatchOutput, error) {
	select {
	case m.started <- struct{}{}:
	default:
	}
	<-m.gate
	out := &cluster.BatchOutput{Outputs: make([][]field.Elem, len(inputs))}
	copy(out.Outputs, inputs)
	return out, nil
}

// newGatedServer wires the gated master behind the handler with a
// MaxPending-1 admission queue and no lingering.
func newGatedServer(t *testing.T) (*httptest.Server, *gatedMaster, *scheme.Service) {
	t.Helper()
	m := &gatedMaster{gate: make(chan struct{}), started: make(chan struct{}, 1)}
	svc := scheme.NewService(m, scheme.ServiceConfig{MaxBatch: 1, MaxLinger: -1, MaxPending: 1})
	ts := httptest.NewServer(newServer(svc, m, field.Default(), 4).handler())
	t.Cleanup(ts.Close)
	return ts, m, svc
}

func TestMatvecReturns503OnQueueOverflow(t *testing.T) {
	ts, m, svc := newGatedServer(t)
	defer func() {
		m.open() // drain whatever is still blocked
		svc.Close(context.Background())
	}()
	input := []field.Elem{1, 2, 3, 4}

	// First request: dequeued by the dispatcher, blocked at the gate.
	codes := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		codes <- postMatvec(t, ts.URL, "", input).StatusCode
	}()
	select {
	case <-m.started:
	case <-time.After(10 * time.Second):
		t.Fatal("the gated round never started")
	}
	// Second request: sits in the admission queue, filling it (MaxPending 1).
	wg.Add(1)
	go func() {
		defer wg.Done()
		codes <- postMatvec(t, ts.URL, "", input).StatusCode
	}()
	waitForPending(t, svc, 1)

	// Third request: the queue is full — must be refused with 503.
	if resp := postMatvec(t, ts.URL, "", input); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow request: status %d, want 503", resp.StatusCode)
	}

	// Opening the gate lets the two admitted requests finish normally.
	m.open()
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("admitted request finished with status %d, want 200", code)
		}
	}
}

// waitForPending polls until the service's queue holds n requests.
func waitForPending(t *testing.T, svc *scheme.Service, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if svc.Pending() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d pending requests", n)
}

func TestDrainResolvesInFlightRequests(t *testing.T) {
	ts, m, svc := newGatedServer(t)
	input := []field.Elem{5, 6, 7, 8}

	codes := make(chan int, 1)
	go func() { codes <- postMatvec(t, ts.URL, "", input).StatusCode }()
	select {
	case <-m.started:
	case <-time.After(10 * time.Second):
		t.Fatal("the gated round never started")
	}

	// SIGTERM-style drain: Close stops admission but must let the in-flight
	// round finish and resolve its future. The gate opens only after the
	// drain began, so a drain that abandoned in-flight work would hang or
	// fail the request.
	drainedErr := make(chan error, 1)
	go func() { drainedErr <- svc.Close(context.Background()) }()
	go func() {
		time.Sleep(10 * time.Millisecond)
		m.open()
	}()

	if code := <-codes; code != http.StatusOK {
		t.Fatalf("in-flight request finished with status %d during drain, want 200", code)
	}
	if err := <-drainedErr; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// After the drain, admission is stopped: new requests get 503.
	if resp := postMatvec(t, ts.URL, "", input); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status %d, want 503", resp.StatusCode)
	}
}
