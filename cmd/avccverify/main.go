// Command avccverify checks a committed-verification receipt fully offline:
// no cluster, no master, no network — just the receipt bytes and, to pin the
// data the round claims to have computed on, the deployment's published
// matrix digest.
//
//	# grab a receipt from a serving round and the digest it must bind to
//	curl -s -H 'X-Receipt: 1' -d '{"input": [...]}' host:8080/v1/matvec \
//	    | jq -r .receipt > round.receipt
//	digest=$(curl -s host:8080/statz | jq -r '.digests.fwd')
//
//	# verify it on any machine
//	avccverify -receipt round.receipt -digest "$digest"
//
// Verification replays the receipt's Fiat–Shamir transcript, checks every
// Merkle opening against the embedded digests, and re-runs the
// challenge-masked Freivalds identities on the decoded outputs. -digest
// additionally pins the embedded digests to the trusted published value —
// without it a forged receipt could commit to a different matrix. With
// -input / -expected, the receipt's claimed input and output for one batch
// column (-column) are cross-checked against the caller's own copies, closing
// the loop for a tenant that kept its request and response.
//
// Exit status: 0 when the receipt verifies, 1 when it is rejected (inconsistent
// worker results are listed), 2 on usage errors.
package main

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/commit"
	"repro/internal/field"
)

func main() {
	receiptPath := flag.String("receipt", "", "receipt file: base64 (as served) or raw bytes; '-' reads stdin")
	digest := flag.String("digest", "", "expected folded matrix digest (from the deployment's /statz); empty skips pinning")
	column := flag.Int("column", 0, "batch column -input/-expected refer to")
	inputPath := flag.String("input", "", "optional JSON array of field elements: the input you sent")
	expectedPath := flag.String("expected", "", "optional JSON array of field elements: the output you received")
	quiet := flag.Bool("q", false, "suppress the summary, report through the exit status only")
	flag.Parse()

	if *receiptPath == "" {
		fmt.Fprintln(os.Stderr, "avccverify: -receipt is required")
		flag.Usage()
		os.Exit(2)
	}
	rec, err := loadReceipt(*receiptPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "avccverify: %v\n", err)
		os.Exit(2)
	}

	if !*quiet {
		fmt.Printf("receipt: scheme=%s key=%q iter=%d batch=%d gram=%v groups=%d\n",
			rec.Scheme, rec.RoundKey, rec.Iter, rec.Batch, rec.Gram, len(rec.Groups))
		fmt.Printf("digest:  %s\n", rec.FoldedDigest())
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "avccverify: REJECTED: "+format+"\n", args...)
		os.Exit(1)
	}

	if *digest != "" && !strings.EqualFold(rec.FoldedDigest(), *digest) {
		fail("receipt is bound to digest %s, expected %s — it does not attest the published matrix",
			rec.FoldedDigest(), *digest)
	}
	if err := rec.Verify(); err != nil {
		var bad *commit.BadWorkersError
		if errors.As(err, &bad) {
			fail("%v", bad)
		}
		fail("%v", err)
	}
	if *inputPath != "" {
		vec, err := loadVector(*inputPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avccverify: %v\n", err)
			os.Exit(2)
		}
		if err := checkInputColumn(rec, *column, vec); err != nil {
			fail("%v", err)
		}
	}
	if *expectedPath != "" {
		vec, err := loadVector(*expectedPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avccverify: %v\n", err)
			os.Exit(2)
		}
		if err := checkOutputColumn(rec, *column, vec); err != nil {
			fail("%v", err)
		}
	}
	if !*quiet {
		fmt.Println("OK: receipt verifies — the decoded outputs are what the committed data produces")
	}
}

// loadReceipt reads and decodes a receipt, accepting both the base64 text the
// serving API returns and raw encoded bytes.
func loadReceipt(path string) (*commit.Receipt, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	if raw, b64err := base64.StdEncoding.DecodeString(strings.TrimSpace(string(data))); b64err == nil {
		data = raw
	}
	rec, err := commit.DecodeReceipt(data)
	if err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return rec, nil
}

func loadVector(path string) ([]field.Elem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var vec []field.Elem
	if err := json.Unmarshal(data, &vec); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return vec, nil
}

// checkInputColumn compares the caller's input vector against the receipt's
// embedded broadcast column.
func checkInputColumn(rec *commit.Receipt, column int, vec []field.Elem) error {
	if rec.Gram {
		return fmt.Errorf("gram receipts carry no inputs to cross-check")
	}
	if column < 0 || column >= rec.Batch {
		return fmt.Errorf("column %d outside the receipt's batch of %d", column, rec.Batch)
	}
	per := len(rec.Inputs) / rec.Batch
	if len(vec) != per {
		return fmt.Errorf("your input has %d elements, the round's inputs have %d", len(vec), per)
	}
	got := rec.Inputs[column*per : (column+1)*per]
	for i := range vec {
		if vec[i] != got[i] {
			return fmt.Errorf("receipt input column %d differs from yours at element %d (receipt %d, yours %d)",
				column, i, got[i], vec[i])
		}
	}
	return nil
}

// checkOutputColumn compares the caller's received output against the
// receipt's decoded outputs: the concatenation of the groups' column-c
// vectors, exactly how the shard plane assembles responses.
func checkOutputColumn(rec *commit.Receipt, column int, vec []field.Elem) error {
	col := column
	if rec.Gram {
		col = 0
	}
	if col < 0 || col >= rec.Batch {
		return fmt.Errorf("column %d outside the receipt's batch of %d", col, rec.Batch)
	}
	off := 0
	for gi, g := range rec.Groups {
		out := g.Outputs[col]
		if off+len(out) > len(vec) {
			return fmt.Errorf("receipt outputs have %d+ elements, yours has %d", off+len(out), len(vec))
		}
		for i := range out {
			if vec[off+i] != out[i] {
				return fmt.Errorf("receipt output column %d differs from yours at element %d (group %d: receipt %d, yours %d)",
					col, off+i, gi, out[i], vec[off+i])
			}
		}
		off += len(out)
	}
	if off != len(vec) {
		return fmt.Errorf("receipt outputs have %d elements, yours has %d", off, len(vec))
	}
	return nil
}
