package repro_test

// TestAllocGate pins the committed zero-allocation contract: every "lazy"
// row in BENCH_kernels.json recorded with allocs_per_op = 0 is re-measured
// here with testing.AllocsPerRun and must still be zero. The noalloc static
// analyzer (internal/lint, DESIGN.md §13) enforces the same contract at
// review time from the //avcc:noalloc annotations; this gate enforces it
// dynamically, so a regression that slips past both the analyzer's escape
// hatches and code review still fails CI before a benchmark ever runs.
//
// Shapes are scaled down from the benchmark's paper-scale dimensions but
// stay above fieldmat.ParallelThreshold where the committed rows crossed it,
// so the measured code path (pooled parallel dispatch) is the same one the
// artifact recorded.

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/mds"
	"repro/internal/verify"
)

// gateRecord is the slice of the BENCH_kernels.json schema the gate reads.
type gateRecord struct {
	Kernel      string  `json:"kernel"`
	Variant     string  `json:"variant"`
	Modulus     string  `json:"modulus"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// gateShape holds the shared reduced-shape fixtures.
const (
	gateDim  = 5000 // vector length (matches the bench: GISETTE d)
	gateRows = 96   // 96×5000 = 480k elems ≫ ParallelThreshold
	gateCols = 16   // MatMul weight-batch width
)

// gateKernels returns the measurable steady-state kernels keyed by
// "Kernel/Modulus", matching the artifact rows. Every returned closure is
// safe to call repeatedly; pools and plan caches warm on the first call.
func gateKernels(t *testing.T) map[string]func() {
	t.Helper()
	f := field.Default()
	rng := rand.New(rand.NewSource(7))

	a := f.RandVec(rng, gateDim)
	x := f.RandVec(rng, gateDim)
	dst := f.RandVec(rng, gateDim)
	cf := f.RandNonZero(rng)
	var dotSink field.Elem

	shard := fieldmat.Rand(f, rng, gateRows, gateDim)
	y := make([]field.Elem, gateRows)
	bm := fieldmat.Rand(f, rng, gateDim, gateCols)
	cm := fieldmat.NewMatrix(gateRows, gateCols)

	key := verify.NewKey(f, verify.Seeded(rng), shard)
	claim := fieldmat.MatVec(f, shard, x)

	kernels := map[string]func(){
		"Dot/paper":    func() { dotSink = f.Dot(a, x) },
		"AXPY/paper":   func() { f.AXPY(dst, cf, a) },
		"MatVec/paper": func() { fieldmat.MatVecInto(f, y, shard, x) },
		"MatMul/paper": func() { fieldmat.MatMulInto(f, cm, shard, bm) },
		"Freivalds/paper": func() {
			if !key.Check(x, claim) {
				t.Fatal("honest claim rejected")
			}
		},
	}
	_ = dotSink

	// MDS codec cells under both moduli: "paper" is the Lagrange layout,
	// "ntt" the subgroup fast path — the same split the artifact records.
	for _, mod := range []struct {
		name string
		f    *field.Field
	}{{"paper", field.Default()}, {"ntt", field.NTTFriendly()}} {
		code, err := mds.New(mod.f, 12, 9)
		if err != nil {
			t.Fatalf("mds.New on %s modulus: %v", mod.name, err)
		}
		if wantFast := mod.name == "ntt"; code.NTTAccelerated() != wantFast {
			t.Fatalf("%s modulus: NTTAccelerated = %v, want %v", mod.name, !wantFast, wantFast)
		}
		encData := fieldmat.Rand(mod.f, rng, 9*gateRows, 200)
		shards := make([]*fieldmat.Matrix, 12)
		workers := []int{0, 2, 3, 5, 6, 7, 9, 10, 11}
		results := make([][]field.Elem, len(workers))
		for r := range results {
			results[r] = mod.f.RandVec(rng, gateRows)
		}
		decoded := make([]field.Elem, 9*gateRows)
		kernels["MDSEncode/"+mod.name] = func() {
			if err := code.EncodeMatrixInto(shards, encData); err != nil {
				t.Fatal(err)
			}
		}
		kernels["MDSDecode/"+mod.name] = func() {
			if err := code.DecodeConcatInto(decoded, workers, results); err != nil {
				t.Fatal(err)
			}
		}
	}
	return kernels
}

func TestAllocGate(t *testing.T) {
	data, err := os.ReadFile("BENCH_kernels.json")
	if err != nil {
		t.Fatalf("reading committed artifact: %v", err)
	}
	var records []gateRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("parsing BENCH_kernels.json: %v", err)
	}
	kernels := gateKernels(t)
	gated := 0
	for _, rec := range records {
		if rec.Variant != "lazy" || rec.AllocsPerOp != 0 {
			continue
		}
		id := rec.Kernel + "/" + rec.Modulus
		fn, ok := kernels[id]
		if !ok {
			t.Errorf("%s: committed as 0 allocs/op but the gate has no measurement for it — extend gateKernels", id)
			continue
		}
		gated++
		t.Run(id, func(t *testing.T) {
			fn() // warm pools, plan caches, and shard headers outside the measurement
			if allocs := testing.AllocsPerRun(3, fn); allocs != 0 {
				t.Errorf("%s: %v allocs/op in steady state; the committed contract is 0", id, allocs)
			}
		})
	}
	// The artifact currently commits nine zero-alloc lazy rows; losing rows
	// silently would hollow out the gate.
	if gated < 9 {
		t.Errorf("only %d zero-alloc rows gated; BENCH_kernels.json should commit at least 9", gated)
	}
}
