// Scenario-driven fault injection: AVCC under the churn preset.
//
// A Scenario is a seed-deterministic timeline of environment events —
// crashes, rejoins, slowdown waves, Byzantine flips, link degradation —
// that scheme.WithScenario overlays on any registered backend. The churn
// preset staggers crash/rejoin windows across the redundancy workers while
// a slowdown wave holds three core workers at 12x: more simultaneous
// disturbance than the (12,9) code's slack absorbs, so the adaptive master
// shrinks K mid-run while the static variant keeps paying the tail.
//
// Run: go run ./examples/scenario_churn
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scenario"
	"repro/internal/scheme"
	"repro/internal/simnet"
)

func main() {
	const (
		n, k   = 12, 9
		seed   = 7
		rounds = 10
	)
	f := field.Default()
	rng := rand.New(rand.NewSource(seed))
	x := fieldmat.Rand(f, rng, 720, 120)
	w := f.RandVec(rng, 120)
	want := fieldmat.MatVec(f, x, w)

	scn, err := scenario.Profile(scenario.Churn, n, k, seed)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := scenario.NewEngine(scn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- event trace --")
	fmt.Print(eng.Trace(rounds))

	sim := simnet.DefaultConfig()
	sim.LinkLatency = 1e-5
	for _, name := range []string{"avcc", "static-vcc"} {
		m, err := scheme.New(name, f, scheme.NewConfig(
			scheme.WithCoding(n, k),
			scheme.WithBudgets(1, 1, 0),
			scheme.WithSim(sim),
			scheme.WithSeed(seed),
			scheme.WithPregeneratedCodings(true),
			scheme.WithScenario(scn),
		), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-- %s --\n", name)
		var total float64
		for iter := 0; iter < rounds; iter++ {
			out, err := m.RunRound(context.Background(), "fwd", w, iter)
			if err != nil {
				log.Fatal(err)
			}
			if !field.EqualVec(out.Decoded, want) {
				log.Fatalf("%s iter %d: decode diverged from the reference", name, iter)
			}
			cost, recoded := m.FinishIteration(iter)
			total += out.Breakdown.Wall + cost
			line := fmt.Sprintf("iter %2d: wall %7.3f ms, stragglers observed %d",
				iter, out.Breakdown.Wall*1e3, out.StragglersObserved)
			if recoded {
				nCur, kCur := m.(scheme.Adaptive).Coding()
				line += fmt.Sprintf("  -> re-coded to (%d,%d), one-time cost %.3f ms", nCur, kCur, cost*1e3)
			}
			fmt.Println(line)
		}
		fmt.Printf("total virtual time: %.3f ms (all %d rounds bit-exact)\n", total*1e3, rounds)
	}
}
