// T-private coded computation: Lagrange coding with random masks.
//
// With T = 1, the encoder adds a uniformly random mask block W so that any
// single worker's shard is statistically independent of the data
// (Theorem 1's T-privacy: I(X; X̃_T) = 0 for |T| ≤ T). This example shows
//
//  1. no shard equals (or resembles) any raw data block,
//  2. re-encoding the same data yields completely different shards
//     (the masks dominate), yet
//  3. decoding from any threshold-many worker results is still exact —
//     here for a degree-2 computation (element-wise square) that plain
//     MDS coding could not handle.
//
// Run: go run ./examples/private_matvec
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/lcc"
)

func main() {
	f := field.Default()
	rng := rand.New(rand.NewSource(3))

	// Parameters: K=3 data blocks, T=1 privacy, deg f = 2 (element-wise
	// square). Recovery threshold (K+T-1)·degf + 1 = 7, so N=8 tolerates
	// one straggler.
	const k, t, degF, n = 3, 1, 2, 8
	code, err := lcc.New(f, n, k, t, degF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LCC code: N=%d K=%d T=%d degf=%d, recovery threshold %d\n",
		n, k, t, degF, code.Threshold())

	x := fieldmat.Rand(f, rng, 6, 4)
	blocks := fieldmat.SplitRows(x, k)

	shards1, err := code.EncodeBlocks(blocks, rng)
	if err != nil {
		log.Fatal(err)
	}
	shards2, err := code.EncodeBlocks(blocks, rng) // fresh masks
	if err != nil {
		log.Fatal(err)
	}

	// 1) No shard leaks a raw block; 2) fresh masks change every shard.
	leak := false
	for i := range shards1 {
		for j := range blocks {
			if shards1[i].Equal(blocks[j]) {
				leak = true
			}
		}
	}
	fmt.Printf("any shard equals a raw data block: %v\n", leak)
	fmt.Printf("re-encoding with fresh masks changed shard 0: %v\n", !shards1[0].Equal(shards2[0]))

	// 3) Workers compute the element-wise square of their shard; the
	// master decodes f(X_j) exactly from any 7 of the 8 results (worker 2
	// straggles here).
	square := func(m *fieldmat.Matrix) []field.Elem {
		out := make([]field.Elem, len(m.Data))
		for i, v := range m.Data {
			out[i] = f.Mul(v, v)
		}
		return out
	}
	workers := []int{0, 1, 3, 4, 5, 6, 7}
	results := make([][]field.Elem, len(workers))
	for r, i := range workers {
		results[r] = square(shards1[i])
	}
	decoded, err := code.DecodeVectors(workers, results)
	if err != nil {
		log.Fatal(err)
	}
	exact := true
	for j, b := range blocks {
		if !field.EqualVec(decoded[j], square(b)) {
			exact = false
		}
	}
	fmt.Printf("decoded f(X_j) = X_j∘X_j exactly from 7 of 8 masked shards: %v\n", exact)
}
