// Verified coded matrix-matrix multiplication with Polynomial Codes.
//
// C = A·B is distributed across 8 workers with a (p,q) = (2,3) polynomial
// code (recovery threshold p·q = 6; Yu et al., NeurIPS 2017 — the bilinear
// substrate the paper's Background cites), and each worker's product claim
// is checked with Freivalds' O(surface) test before decoding — the AVCC
// recipe applied to matmul, which the paper names as a natural target.
//
// Run: go run ./examples/coded_matmul
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/polycode"
	"repro/internal/simnet"
)

func main() {
	f := field.Default()
	rng := rand.New(rand.NewSource(21))

	a := fieldmat.Rand(f, rng, 64, 48)
	b := fieldmat.Rand(f, rng, 48, 66)

	opt := polycode.MatMulOptions{
		N: 8, P: 2, Q: 3, S: 1, M: 1,
		Sim: simnet.DefaultConfig(), Seed: 21,
	}
	behaviors := make([]attack.Behavior, opt.N)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	behaviors[3] = attack.ReverseValue{C: 1}
	master, err := polycode.NewMatMulMaster(f, opt, a, b, behaviors, attack.NewFixedStragglers(0))
	if err != nil {
		log.Fatal(err)
	}

	out, err := master.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	want := fieldmat.MatMul(f, a, b)
	fmt.Printf("C is %dx%d, exact: %v\n", out.C.Rows, out.C.Cols, out.C.Equal(want))
	fmt.Printf("workers used:     %v (threshold %d of %d)\n", out.Used, opt.P*opt.Q, opt.N)
	fmt.Printf("byzantine caught: %v\n", out.Byzantine)
	fmt.Printf("round breakdown:  %v\n", out.Breakdown)
}
