// Serving walkthrough: many concurrent tenants, one coded deployment.
//
// The round API answers one caller at a time; a serving system faces
// hundreds of small solves arriving at once. scheme.Service bridges the
// two: concurrent Submits coalesce into batched verified rounds (one
// broadcast, one compute pass per worker, one stacked Freivalds sweep, one
// decode), so the per-round fixed costs are paid once per batch instead of
// once per request — with a Byzantine worker in the cluster the whole time,
// caught by the same verification that guards single-vector rounds.
//
// Run: go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
)

func main() {
	f := field.Default()
	rng := rand.New(rand.NewSource(7))

	// The shared model: a 360x120 matrix, AVCC-encoded once at (12,9).
	// Worker 5 is Byzantine; serving must stay exact regardless.
	x := fieldmat.Rand(f, rng, 360, 120)
	behaviors := make([]attack.Behavior, 12)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	behaviors[5] = attack.ReverseValue{C: 1}
	master, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(1, 2, 0),
		scheme.WithSeed(7),
	), map[string]*fieldmat.Matrix{"fwd": x}, behaviors, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The serving layer: up to 16 requests per coded round, rounds held
	// open at most 2ms waiting to fill.
	svc := scheme.NewService(master, scheme.ServiceConfig{
		MaxBatch:  16,
		MaxLinger: 2 * time.Millisecond,
	})

	// Three tenants fire 40 solves each, concurrently. Every submit gets a
	// Future; nobody coordinates with anybody.
	type result struct {
		tenant string
		in     []field.Elem
		out    []field.Elem
	}
	var wg sync.WaitGroup
	results := make(chan result, 120)
	for _, tenant := range []string{"alice", "bob", "carol"} {
		ctx := scheme.WithTenant(context.Background(), tenant)
		for i := 0; i < 40; i++ {
			in := f.RandVec(rng, 120)
			wg.Add(1)
			go func(tenant string, in []field.Elem) {
				defer wg.Done()
				out, err := svc.Submit(ctx, "fwd", in).Wait(ctx)
				if err != nil {
					log.Fatal(err)
				}
				results <- result{tenant, in, out.Decoded}
			}(tenant, in)
		}
	}
	wg.Wait()
	close(results)

	// Every decode is the exact product — batching is invisible.
	exact := 0
	for r := range results {
		if field.EqualVec(r.out, fieldmat.MatVec(f, x, r.in)) {
			exact++
		}
	}
	fmt.Printf("exact decodes: %d/120 (Byzantine worker 5 in the cluster throughout)\n", exact)

	// Graceful drain, then the per-tenant accounting.
	if err := svc.Close(context.Background()); err != nil {
		log.Fatal(err)
	}
	stats := svc.Stats()
	fmt.Printf("rounds run: %d for %d requests (%.1f requests amortised per coded round)\n",
		stats.Rounds, stats.Requests, float64(stats.Requests)/float64(stats.Rounds))
	for _, ts := range stats.Tenants {
		fmt.Printf("  %-6s submitted=%d completed=%d p50=%.2fms p99=%.2fms\n",
			ts.Tenant, ts.Submitted, ts.Completed, ts.Latency.P50*1e3, ts.Latency.P99*1e3)
	}
}
