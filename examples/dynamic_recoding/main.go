// Dynamic re-coding (the paper's Fig. 5 scenario, live).
//
// The cluster starts healthy at (12,9). At iteration 1, three stragglers
// and one Byzantine appear — more than the (S=2, M=1) budget covers. The
// dynamic master quarantines the Byzantine and re-encodes at (11,8) so the
// remaining 8 fast honest workers suffice to decode; the static variant
// keeps (12,9) and pays a straggler tail every remaining iteration.
//
// Run: go run ./examples/dynamic_recoding
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
	"repro/internal/simnet"
)

func main() {
	f := field.Default()
	rng := rand.New(rand.NewSource(5))
	x := fieldmat.Rand(f, rng, 720, 300)
	w := f.RandVec(rng, 300)
	want := fieldmat.MatVec(f, x, w)

	mkMaster := func(name string) scheme.Master {
		behaviors := make([]attack.Behavior, 12)
		for i := range behaviors {
			behaviors[i] = attack.Honest{}
		}
		behaviors[11] = attack.ActiveFrom{Inner: attack.ReverseValue{C: 1}, Start: 1}
		stragglers := attack.Phased{
			Before: attack.NoStragglers{},
			After:  attack.NewFixedStragglers(0, 1, 2),
			Switch: 1,
		}
		sim := simnet.DefaultConfig()
		sim.LinkLatency = 1e-4
		m, err := scheme.New(name, f, scheme.NewConfig(
			scheme.WithCoding(12, 9),
			scheme.WithBudgets(2, 1, 0),
			scheme.WithSim(sim),
			scheme.WithSeed(9),
			scheme.WithPregeneratedCodings(true),
		), map[string]*fieldmat.Matrix{"fwd": x}, behaviors, stragglers)
		if err != nil {
			log.Fatal(err)
		}
		return m
	}

	for _, name := range []string{"avcc", "static-vcc"} {
		m := mkMaster(name)
		ad := m.(scheme.Adaptive)
		var clock float64
		fmt.Printf("\n=== %s ===\n", m.Name())
		for iter := 0; iter < 10; iter++ {
			out, err := m.RunRound(context.Background(), "fwd", w, iter)
			if err != nil {
				log.Fatal(err)
			}
			if !field.EqualVec(out.Decoded, want) {
				log.Fatalf("iteration %d decoded wrong", iter)
			}
			cost, recoded := m.FinishIteration(iter)
			clock += out.Breakdown.Wall + cost
			n, k := ad.Coding()
			marker := ""
			if recoded {
				marker = fmt.Sprintf("  <-- re-encoded to (%d,%d), one-time cost %.4fs", n, k, cost)
			}
			fmt.Printf("iter %d: wall %.4fs, cumulative %.4fs, coding (%d,%d)%s\n",
				iter, out.Breakdown.Wall, clock, n, k, marker)
		}
	}
}
