// Sharded serving walkthrough: scaling past one coded group.
//
// A single coded group caps serving throughput at one group's N workers no
// matter how many machines exist. scheme.WithShards(g) splits the model
// matrix into g row shards, deploys one independently coded group per shard
// (own executor, own scenario dynamics, own AVCC adaptation state), and
// fans every round out to all groups concurrently — the decoded outputs
// concatenate back into exactly the unsharded answer, so the serving layer
// and every caller work unchanged.
//
// The walkthrough shows the two properties that make sharding safe to turn
// on: (1) bit-exact decodes against the unsharded deployment on the same
// traffic, and (2) fault isolation — a churn scenario confined to one group
// triggers AVCC re-coding in that group alone while the other groups keep
// their original coding.
//
// Run: go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scenario"
	"repro/internal/scheme"
	"repro/internal/shard"
	"repro/internal/simnet"
)

// computeSim is a compute-dominated latency model: shard compute must dwarf
// link time for the churn preset's slowdown wave to register as straggling
// (the scenario conformance suite makes the same choice).
func computeSim() simnet.Config {
	sim := simnet.DefaultConfig()
	sim.LinkLatency = 1e-5
	return sim
}

func main() {
	f := field.Default()
	rng := rand.New(rand.NewSource(21))

	// The shared model: 720x96, served unsharded and at 2 shard groups.
	x := fieldmat.Rand(f, rng, 720, 96)
	data := func() map[string]*fieldmat.Matrix {
		return map[string]*fieldmat.Matrix{"fwd": x}
	}

	single, err := scheme.New("avcc", f, scheme.NewConfig(scheme.WithSeed(21)), data(), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithSeed(21),
		scheme.WithShards(2),
	), data(), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	sm := sharded.(*shard.Master)
	fmt.Printf("deployments: 1 group of 12 workers vs %d groups (%d workers total)\n",
		sm.Groups(), len(sm.Workers()))
	for g := 0; g < sm.Groups(); g++ {
		span := sm.Plan("fwd").Spans[g]
		fmt.Printf("  group %d serves rows [%d, %d)\n", g, span.Start, span.End())
	}

	// 1. Bit-exactness: the same batch through both deployments.
	inputs := make([][]field.Elem, 4)
	for i := range inputs {
		inputs[i] = f.RandVec(rng, x.Cols)
	}
	ctx := context.Background()
	b1, err := single.RunRoundBatch(ctx, "fwd", inputs, 0)
	if err != nil {
		log.Fatal(err)
	}
	b2, err := sharded.RunRoundBatch(ctx, "fwd", inputs, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := range inputs {
		if !field.EqualVec(b1.Outputs[i], b2.Outputs[i]) {
			log.Fatalf("batch entry %d: sharded decode differs from unsharded", i)
		}
	}
	fmt.Printf("bit-exact: %d-entry batch decodes identically on both deployments\n", len(inputs))

	// 2. Fault isolation: churn confined to group 0. Build the groups by
	// hand via shard.NewMaster — group 0 lives under the churn preset,
	// group 1 in the steady world.
	plan, err := shard.EvenPlan(x.Rows, 2)
	if err != nil {
		log.Fatal(err)
	}
	slices, err := plan.Split(x)
	if err != nil {
		log.Fatal(err)
	}
	churn, err := scenario.Profile(scenario.Churn, 12, 9, 21)
	if err != nil {
		log.Fatal(err)
	}
	isolated, err := shard.NewMaster(map[string]*shard.Plan{"fwd": plan},
		func(g int) (shard.GroupMaster, error) {
			opts := []scheme.Option{scheme.WithSeed(21 + int64(g)), scheme.WithSim(computeSim())}
			if g == 0 {
				opts = append(opts, scheme.WithScenario(churn))
			}
			return scheme.New("avcc", f, scheme.NewConfig(opts...),
				map[string]*fieldmat.Matrix{"fwd": slices[g]}, nil, nil)
		})
	if err != nil {
		log.Fatal(err)
	}
	for iter := 0; iter < 8; iter++ {
		in := f.RandVec(rng, x.Cols)
		out, err := isolated.RunRound(ctx, "fwd", in, iter)
		if err != nil {
			log.Fatal(err)
		}
		if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, in)) {
			log.Fatalf("iter %d: decode drifted while group 0 churns", iter)
		}
		if cost, recoded := isolated.FinishIteration(iter); recoded {
			fmt.Printf("iter %d: a group re-coded (one-time cost %.2fs virtual)\n", iter, cost)
		}
	}
	for g := 0; g < isolated.Groups(); g++ {
		ad := isolated.Group(g).(scheme.Adaptive)
		n, k := ad.Coding()
		fmt.Printf("  group %d after churn-in-group-0: coding (%d, %d), %d active workers\n",
			g, n, k, len(ad.ActiveWorkers()))
	}
	fmt.Println("fault isolation: only the churning group adapted; every decode stayed exact")
}
