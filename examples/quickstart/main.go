// Quickstart: verified coded matrix-vector multiplication in ~60 lines.
//
// A master encodes a matrix with a (12,9) MDS code and distributes shards
// to 12 workers. One worker is Byzantine (sends −z, the paper's reverse
// value attack) and one straggles at 10× latency. AVCC decodes the exact
// product anyway, without ever waiting for the straggler, and identifies
// the Byzantine via its Freivalds check.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
)

func main() {
	f := field.Default() // F_q with q = 2^25 - 39, as in the paper
	rng := rand.New(rand.NewSource(1))

	// The data: a 900x300 matrix over the field.
	x := fieldmat.Rand(f, rng, 900, 300)

	// Worker 3 is Byzantine, worker 0 is a straggler.
	behaviors := make([]attack.Behavior, 12)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	behaviors[3] = attack.ReverseValue{C: 1}
	stragglers := attack.NewFixedStragglers(0)

	// AVCC master: (N,K) = (12,9), budgets S=1 straggler and M=2 Byzantine
	// (eq. 2: 12 >= 9 + 1 + 2). Encoding, Freivalds key generation and the
	// simulated cluster wiring all happen here, behind the unified scheme
	// registry — swap "avcc" for "lcc" or "uncoded" to compare backends.
	master, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(1, 2, 0),
		scheme.WithSeed(42),
	), map[string]*fieldmat.Matrix{"fwd": x}, behaviors, stragglers)
	if err != nil {
		log.Fatal(err)
	}

	// One verified coded round: compute y = X·w.
	w := f.RandVec(rng, 300)
	out, err := master.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		log.Fatal(err)
	}

	want := fieldmat.MatVec(f, x, w)
	fmt.Printf("decoded %d values, exact: %v\n", len(out.Decoded), field.EqualVec(out.Decoded, want))
	fmt.Printf("workers used:       %v\n", out.Used)
	fmt.Printf("byzantine caught:   %v\n", out.Byzantine)
	fmt.Printf("stragglers skipped: %d\n", out.StragglersObserved)
	fmt.Printf("round breakdown:    %v\n", out.Breakdown)
}
