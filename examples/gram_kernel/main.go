// Generalized AVCC (paper Section IV-B): a degree-2 computation — the
// per-block Gram matrices G_j = X_j·X_jᵀ — run as verified coded computing.
//
// MDS coding cannot handle this (the computation is nonlinear in the coded
// shard), so the master uses Lagrange coding with deg f = 2 and the
// recovery threshold 2(K−1)+1. Verification uses Freivalds' matrix-product
// check at O(b²) per result versus the O(b²·d) the worker spent. A
// Byzantine still costs one extra worker (eq. 2 with deg f = 2).
//
// Run: go run ./examples/gram_kernel
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/gavcc"
	"repro/internal/scheme"
)

func main() {
	f := field.Default()
	rng := rand.New(rand.NewSource(11))

	// 64 samples, 48 features, K = 4 blocks of 16 rows.
	x := fieldmat.Rand(f, rng, 64, 48)

	// N = 10 workers: threshold 7, budget S = 1 straggler + M = 2 Byzantine.
	behaviors := make([]attack.Behavior, 10)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	behaviors[2] = attack.ReverseValue{C: 1}
	behaviors[7] = attack.Constant{V: 1234}
	master, err := scheme.New("gavcc", f, scheme.NewConfig(
		scheme.WithCoding(10, 4),
		scheme.WithBudgets(1, 2, 0),
		scheme.WithSeed(11),
	), map[string]*fieldmat.Matrix{gavcc.GramKey: x}, behaviors, attack.NewFixedStragglers(0))
	if err != nil {
		log.Fatal(err)
	}

	out, err := master.RunRound(context.Background(), gavcc.GramKey, nil, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the direct computation: Decoded holds the K Gram
	// blocks flattened, b×b each (scheme.Blocked exposes b).
	b := master.(scheme.Blocked).BlockRows()
	blocks := fieldmat.SplitRows(x, 4)
	exact := true
	for j, blk := range blocks {
		got := out.Decoded[j*b*b : (j+1)*b*b]
		if !field.EqualVec(got, fieldmat.MatMul(f, blk, blk.Transpose()).Data) {
			exact = false
		}
	}
	fmt.Printf("decoded %d Gram blocks (%dx%d each), exact: %v\n",
		len(blocks), b, b, exact)
	fmt.Printf("workers used:     %v\n", out.Used)
	fmt.Printf("byzantine caught: %v\n", out.Byzantine)
	fmt.Printf("round breakdown:  %v\n", out.Breakdown)
}
