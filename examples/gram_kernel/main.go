// Generalized AVCC (paper Section IV-B): a degree-2 computation — the
// per-block Gram matrices G_j = X_j·X_jᵀ — run as verified coded computing.
//
// MDS coding cannot handle this (the computation is nonlinear in the coded
// shard), so the master uses Lagrange coding with deg f = 2 and the
// recovery threshold 2(K−1)+1. Verification uses Freivalds' matrix-product
// check at O(b²) per result versus the O(b²·d) the worker spent. A
// Byzantine still costs one extra worker (eq. 2 with deg f = 2).
//
// Run: go run ./examples/gram_kernel
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/gavcc"
	"repro/internal/simnet"
)

func main() {
	f := field.Default()
	rng := rand.New(rand.NewSource(11))

	// 64 samples, 48 features, K = 4 blocks of 16 rows.
	x := fieldmat.Rand(f, rng, 64, 48)

	// N = 10 workers: threshold 7, budget S = 1 straggler + M = 2 Byzantine.
	opt := gavcc.Options{N: 10, K: 4, S: 1, M: 2, T: 0, Sim: simnet.DefaultConfig(), Seed: 11}
	behaviors := make([]attack.Behavior, opt.N)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	behaviors[2] = attack.ReverseValue{C: 1}
	behaviors[7] = attack.Constant{V: 1234}
	master, err := gavcc.NewMaster(f, opt, x, behaviors, attack.NewFixedStragglers(0))
	if err != nil {
		log.Fatal(err)
	}

	out, err := master.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the direct computation.
	blocks := fieldmat.SplitRows(x, 4)
	exact := true
	for j, b := range blocks {
		if !out.Blocks[j].Equal(fieldmat.MatMul(f, b, b.Transpose())) {
			exact = false
		}
	}
	fmt.Printf("decoded %d Gram blocks (%dx%d each), exact: %v\n",
		len(out.Blocks), master.BlockRows(), master.BlockRows(), exact)
	fmt.Printf("workers used:     %v\n", out.Used)
	fmt.Printf("byzantine caught: %v\n", out.Byzantine)
	fmt.Printf("round breakdown:  %v\n", out.Breakdown)
}
