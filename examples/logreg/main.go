// Distributed logistic regression under attack — the paper's headline
// workload (Section IV-A) end to end.
//
// Three systems train the same model on the same GISETTE-like dataset
// while two Byzantine workers mount the constant attack and one worker
// straggles:
//
//   - AVCC verifies every result, quarantines the Byzantines after the
//     first iteration, and converges cleanly;
//   - the LCC baseline (designed for M=1) is overwhelmed and degrades;
//   - the uncoded baseline has no defence at all.
//
// Run: go run ./examples/logreg
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/logreg"
	"repro/internal/scheme"
)

func main() {
	f := field.Default()
	cfg := dataset.DefaultConfig()
	cfg.TrainN, cfg.TestN, cfg.Features, cfg.Informative = 720, 240, 300, 40
	ds, err := dataset.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	x := ds.FieldMatrix(f)
	mkData := func() map[string]*fieldmat.Matrix {
		return map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}
	}

	// Environment: workers 3 and 4 run the constant attack; worker 0
	// straggles.
	mkBehaviors := func(n int) []attack.Behavior {
		bs := make([]attack.Behavior, n)
		for i := range bs {
			bs[i] = attack.Honest{}
		}
		bs[3] = attack.Constant{V: experiments.ConstantAttackValue}
		bs[4] = attack.Constant{V: experiments.ConstantAttackValue}
		return bs
	}
	stragglers := attack.NewFixedStragglers(0)
	sim := experiments.CI().Sim

	// One registry call per scheme; only the budgets differ (AVCC budgets
	// for the actual M=2 environment, LCC is stuck at its M=1 design point).
	mkMaster := func(name string, s, m int) scheme.Master {
		cfg := scheme.NewConfig(
			scheme.WithCoding(12, 9),
			scheme.WithBudgets(s, m, 0),
			scheme.WithSim(sim),
			scheme.WithSeed(7),
			scheme.WithPregeneratedCodings(true),
		)
		workerN, err := scheme.WorkerCount(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		master, err := scheme.New(name, f, cfg, mkData(), mkBehaviors(workerN), stragglers)
		if err != nil {
			log.Fatal(err)
		}
		return master
	}

	train := logreg.DefaultTrainConfig()
	train.Iterations = 15
	for _, master := range []scheme.Master{
		mkMaster("avcc", 1, 2),
		mkMaster("lcc", 1, 1),
		mkMaster("uncoded", 0, 0),
	} {
		series, model, err := logreg.TrainDistributed(context.Background(), f, master, ds, train)
		if err != nil {
			log.Fatal(err)
		}
		acc := model.Accuracy(ds.TestX, ds.TestY, ds.TestRows, ds.Cols)
		fmt.Printf("%-10s final accuracy %.4f, total virtual time %.4fs, byzantine caught iter0: %v\n",
			master.Name(), acc, series.TotalTime(), series.Records[0].ByzantineCaught)
	}
}
