// Package quant converts between real-valued training quantities and the
// finite field, following Section V of the paper ("Quantization and
// Parameter Selection"): x is mapped to round(2^l·x) (eq. 21), embedded in
// F_q via two's-complement-style centering, and results are scaled back by
// 2^-l after the field computation.
//
// The critical correctness condition is *no wrap-around*: a field inner
// product equals the true integer inner product only while the true value
// stays within (-(q-1)/2, (q-1)/2]. The paper chooses q = 2^25−39 and l = 5
// so a GISETTE row (d = 5000 non-negative integer features) dotted with a
// quantized weight vector stays in range, and additionally requires
// d·(q−1)² ≤ 2^63−1 so the *machine* accumulation cannot overflow 64-bit
// arithmetic on the workers. Both checks are exposed here so experiments
// fail loudly instead of silently corrupting gradients.
package quant

import (
	"fmt"
	"math"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

// Quantizer scales by 2^l and embeds into F_q. The zero value is unusable;
// construct with New.
type Quantizer struct {
	f     *field.Field
	l     uint
	scale float64
}

// New returns a quantizer with precision parameter l (the paper uses l = 5
// for weights and l = 0 for the already-integer dataset).
func New(f *field.Field, l uint) *Quantizer {
	if l > 30 {
		panic("quant: precision parameter unreasonably large")
	}
	return &Quantizer{f: f, l: l, scale: math.Exp2(float64(l))}
}

// L returns the precision parameter.
func (q *Quantizer) L() uint { return q.l }

// Scale returns 2^l.
func (q *Quantizer) Scale() float64 { return q.scale }

// Quantize maps x to round(2^l·x) in F_q.
func (q *Quantizer) Quantize(x float64) field.Elem {
	return q.f.FromInt64(int64(math.Round(x * q.scale)))
}

// Dequantize lifts a field element back to a real number at this
// quantizer's scale.
func (q *Quantizer) Dequantize(e field.Elem) float64 {
	return float64(q.f.ToInt64(e)) / q.scale
}

// DequantizeAt lifts a field element whose effective scale is 2^(l·mult) —
// the scale of a product of mult quantized factors (e.g. X quantized at
// l_x=0 times w at l_w=5 yields scale 2^5, mult is tracked by the caller).
func (q *Quantizer) DequantizeAt(e field.Elem, totalL uint) float64 {
	return float64(q.f.ToInt64(e)) / math.Exp2(float64(totalL))
}

// QuantizeVec maps a real vector into F_q.
func (q *Quantizer) QuantizeVec(xs []float64) []field.Elem {
	out := make([]field.Elem, len(xs))
	for i, x := range xs {
		out[i] = q.Quantize(x)
	}
	return out
}

// DequantizeVec lifts a field vector at this quantizer's scale.
func (q *Quantizer) DequantizeVec(es []field.Elem) []float64 {
	out := make([]float64, len(es))
	for i, e := range es {
		out[i] = q.Dequantize(e)
	}
	return out
}

// QuantizeMatrix maps a row-major real matrix into a field matrix.
func (q *Quantizer) QuantizeMatrix(rows, cols int, data []float64) *fieldmat.Matrix {
	if len(data) != rows*cols {
		panic("quant: matrix data length mismatch")
	}
	m := fieldmat.NewMatrix(rows, cols)
	for i, x := range data {
		m.Data[i] = q.Quantize(x)
	}
	return m
}

// CheckMachineOverflow verifies the paper's worst-case machine-arithmetic
// condition d·(q−1)² ≤ 2^63−1 for inner products of length d. (Our field
// kernels actually reduce every product immediately, which is safe for any
// q < 2^32, but the experiments keep the paper's condition so the chosen
// parameters match the evaluated system.)
func CheckMachineOverflow(f *field.Field, d int) error {
	qm1 := f.Q() - 1
	// Compare in big-ish arithmetic: d·(q−1)² ≤ 2^63−1 ⟺ (q−1)² ≤ (2^63−1)/d.
	if d <= 0 {
		return fmt.Errorf("quant: nonpositive dimension %d", d)
	}
	limit := uint64(math.MaxInt64) / uint64(d)
	if qm1 > math.MaxUint32 || qm1*qm1 > limit {
		return fmt.Errorf("quant: d(q-1)^2 exceeds 2^63-1 for d=%d, q=%d", d, f.Q())
	}
	return nil
}

// CheckWrapAround verifies that an inner product of d terms, each a product
// of factors bounded by maxA and maxB in absolute value (post-quantization
// integers), cannot leave the representable window (-(q-1)/2, (q-1)/2].
// Encoding multiplies data by generator coefficients, which are full-range
// field elements, so this bound applies to the *decoded, systematic* values
// the master interprets — exactly where the paper applies it.
func CheckWrapAround(f *field.Field, d int, maxA, maxB float64) error {
	if d <= 0 || maxA < 0 || maxB < 0 {
		return fmt.Errorf("quant: invalid bound inputs (d=%d, maxA=%g, maxB=%g)", d, maxA, maxB)
	}
	worst := float64(d) * maxA * maxB
	window := float64((f.Q() - 1) / 2)
	if worst > window {
		return fmt.Errorf("quant: worst-case inner product %.3g exceeds field window %.3g (d=%d)",
			worst, window, d)
	}
	return nil
}
