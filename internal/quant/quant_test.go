package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

var f = field.Default()

func TestQuantizeRoundTrip(t *testing.T) {
	q := New(f, 5)
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.25, -3.25, 100.03125}
	for _, x := range cases {
		got := q.Dequantize(q.Quantize(x))
		if math.Abs(got-x) > 1.0/64.0+1e-12 { // half-ULP of 2^-5 rounding
			t.Errorf("round trip %g -> %g", x, got)
		}
	}
}

func TestQuantizeRoundTripQuick(t *testing.T) {
	q := New(f, 5)
	if err := quick.Check(func(raw float64) bool {
		x := math.Mod(raw, 1000) // keep well inside the field window
		if math.IsNaN(x) {
			return true
		}
		return math.Abs(q.Dequantize(q.Quantize(x))-x) <= 1.0/64.0+1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizationErrorBound(t *testing.T) {
	// |dequant(quant(x)) - x| <= 2^-(l+1) for all in-range x.
	for _, l := range []uint{0, 3, 5, 8} {
		q := New(f, l)
		rng := rand.New(rand.NewSource(int64(l)))
		bound := math.Exp2(-float64(l)-1) + 1e-12
		for i := 0; i < 200; i++ {
			x := rng.Float64()*200 - 100
			if err := math.Abs(q.Dequantize(q.Quantize(x)) - x); err > bound {
				t.Fatalf("l=%d: error %g exceeds %g", l, err, bound)
			}
		}
	}
}

func TestLZeroIsIntegerRounding(t *testing.T) {
	q := New(f, 0)
	if q.Quantize(7.4) != 7 || q.Dequantize(7) != 7 {
		t.Fatal("l=0 should round to integers with scale 1")
	}
	if q.f.ToInt64(q.Quantize(-2.6)) != -3 {
		t.Fatal("l=0 negative rounding wrong")
	}
}

func TestFieldProductScales(t *testing.T) {
	// Integer data (l=0) times l=5 weights: field product dequantizes at
	// total scale 2^5 — the exact pipeline of logreg round 1.
	qx := New(f, 0)
	qw := New(f, 5)
	x, w := 37.0, -1.375 // -1.375 = -44/32 exactly representable at l=5
	prod := f.Mul(qx.Quantize(x), qw.Quantize(w))
	got := qw.DequantizeAt(prod, 5)
	if math.Abs(got-x*w) > 1e-9 {
		t.Fatalf("scaled product = %g, want %g", got, x*w)
	}
}

func TestVecHelpers(t *testing.T) {
	q := New(f, 5)
	xs := []float64{1.5, -2.25, 0, 10}
	back := q.DequantizeVec(q.QuantizeVec(xs))
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > 1.0/64 {
			t.Fatalf("vec round trip idx %d: %g vs %g", i, back[i], xs[i])
		}
	}
}

func TestQuantizeMatrix(t *testing.T) {
	q := New(f, 2)
	m := q.QuantizeMatrix(2, 2, []float64{1, 2.25, -1, 0})
	want := fieldmat.FromRows([][]field.Elem{
		{4, 9},
		{f.FromInt64(-4), 0},
	})
	if !m.Equal(want) {
		t.Fatalf("QuantizeMatrix = %v, want %v", m, want)
	}
}

func TestQuantizeMatrixLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(f, 1).QuantizeMatrix(2, 2, []float64{1, 2, 3})
}

func TestCheckMachineOverflowPaperParams(t *testing.T) {
	// The paper's exact justification: d = 5000, q = 2^25-39 passes; a
	// 32-bit field at the same d must fail.
	if err := CheckMachineOverflow(f, 5000); err != nil {
		t.Fatalf("paper parameters rejected: %v", err)
	}
	big := field.MustNew(4294967291)
	if err := CheckMachineOverflow(big, 5000); err == nil {
		t.Fatal("32-bit field at d=5000 should violate the 2^63-1 bound")
	}
	if err := CheckMachineOverflow(f, 0); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestCheckWrapAround(t *testing.T) {
	// GISETTE-style: d=5000, |x| <= 999, |w_quant| <= 2^5·|w|; with |w| <= 0.1
	// the worst case 5000·999·3.2 ≈ 1.6e7 fits in (q-1)/2 ≈ 1.7e7.
	if err := CheckWrapAround(f, 5000, 999, 3.2); err != nil {
		t.Fatalf("in-range case rejected: %v", err)
	}
	if err := CheckWrapAround(f, 5000, 999, 100); err == nil {
		t.Fatal("out-of-range case accepted")
	}
	if err := CheckWrapAround(f, -1, 1, 1); err == nil {
		t.Fatal("negative d accepted")
	}
}

func TestNewPanicsOnHugeL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(f, 31)
}

func TestEndToEndDotProductThroughField(t *testing.T) {
	// Quantize a vector pair, compute the dot product in the field, and
	// compare against the float dot product — the elementary correctness
	// fact behind coded logistic regression.
	rng := rand.New(rand.NewSource(120))
	qx := New(f, 0)
	qw := New(f, 5)
	d := 100
	xs := make([]float64, d)
	ws := make([]float64, d)
	for i := range xs {
		xs[i] = float64(rng.Intn(100))       // integer features
		ws[i] = (rng.Float64() - 0.5) * 0.25 // small weights
	}
	fx := qx.QuantizeVec(xs)
	fw := qw.QuantizeVec(ws)
	got := qw.DequantizeAt(f.Dot(fx, fw), 5)
	var want float64
	for i := range xs {
		// Compare against the dot product of the *quantized* weights to
		// isolate field correctness from rounding.
		want += xs[i] * math.Round(ws[i]*32) / 32
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("field dot = %g, float dot = %g", got, want)
	}
}
