package metrics

import (
	"math"
	"strings"
	"testing"
)

func record(iter int, time, acc float64) IterationRecord {
	return IterationRecord{Iter: iter, Time: time, TestAccuracy: acc}
}

func TestBreakdownAddScale(t *testing.T) {
	a := Breakdown{Compute: 1, Comm: 2, Verify: 3, Decode: 4, Wall: 10}
	b := Breakdown{Compute: 1, Comm: 1, Verify: 1, Decode: 1, Wall: 1}
	a.Add(b)
	if a.Compute != 2 || a.Comm != 3 || a.Verify != 4 || a.Decode != 5 || a.Wall != 11 {
		t.Fatalf("Add wrong: %+v", a)
	}
	s := a.Scale(2)
	if s.Compute != 1 || s.Wall != 5.5 {
		t.Fatalf("Scale wrong: %+v", s)
	}
	if z := a.Scale(0); z.Wall != 0 {
		t.Fatal("Scale(0) should zero out")
	}
}

func TestBreakdownString(t *testing.T) {
	s := Breakdown{Compute: 0.5}.String()
	if !strings.Contains(s, "compute=0.5") {
		t.Fatalf("String() = %q", s)
	}
}

func TestSeriesAccessorsEmpty(t *testing.T) {
	s := &Series{Name: "x"}
	if s.FinalAccuracy() != 0 || s.TotalTime() != 0 {
		t.Fatal("empty series accessors should be zero")
	}
	if _, ok := s.TimeToAccuracy(0.5); ok {
		t.Fatal("empty series cannot reach accuracy")
	}
	if b := s.MeanBreakdown(); b.Wall != 0 {
		t.Fatal("empty mean breakdown should be zero")
	}
}

func TestTimeToAccuracy(t *testing.T) {
	s := &Series{Records: []IterationRecord{
		record(0, 1.0, 0.5),
		record(1, 2.0, 0.8),
		record(2, 3.0, 0.7), // dips
		record(3, 4.0, 0.9),
	}}
	if tt, ok := s.TimeToAccuracy(0.8); !ok || tt != 2.0 {
		t.Fatalf("TimeToAccuracy(0.8) = %v,%v", tt, ok)
	}
	if tt, ok := s.TimeToAccuracy(0.85); !ok || tt != 4.0 {
		t.Fatalf("TimeToAccuracy(0.85) = %v,%v", tt, ok)
	}
	if _, ok := s.TimeToAccuracy(0.95); ok {
		t.Fatal("unreachable accuracy reported as reached")
	}
	if s.FinalAccuracy() != 0.9 || s.TotalTime() != 4.0 {
		t.Fatal("final accessors wrong")
	}
}

func TestSpeedup(t *testing.T) {
	fast := &Series{Records: []IterationRecord{record(0, 1, 0.9), record(1, 2, 0.95)}}
	slow := &Series{Records: []IterationRecord{record(0, 5, 0.9), record(1, 10, 0.95)}}
	if sp := Speedup(fast, slow, 0.9); sp != 5 {
		t.Fatalf("speedup = %v, want 5", sp)
	}
	// Baseline never reaches the target: fall back to total-time ratio.
	never := &Series{Records: []IterationRecord{record(0, 5, 0.5), record(1, 10, 0.5)}}
	if sp := Speedup(fast, never, 0.9); sp != 5 {
		t.Fatalf("fallback speedup = %v, want 5", sp)
	}
	empty := &Series{}
	if sp := Speedup(empty, slow, 0.9); sp != 0 {
		t.Fatalf("degenerate speedup = %v, want 0", sp)
	}
}

func TestMeanBreakdown(t *testing.T) {
	s := &Series{Records: []IterationRecord{
		{Breakdown: Breakdown{Compute: 2, Wall: 4}},
		{Breakdown: Breakdown{Compute: 4, Wall: 8}},
	}}
	m := s.MeanBreakdown()
	if m.Compute != 3 || m.Wall != 6 {
		t.Fatalf("mean = %+v", m)
	}
}

func TestCSV(t *testing.T) {
	s := &Series{Name: "avcc", Records: []IterationRecord{
		{Iter: 0, Time: 1.5, TestAccuracy: 0.75, TrainLoss: 0.3,
			Breakdown: Breakdown{Compute: 0.1, Comm: 0.2, Verify: 0.01, Decode: 0.02, Wall: 0.5}},
	}}
	out := s.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "iter,time,accuracy") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,1.500000,0.750000") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestSpeedupSymmetryProperty(t *testing.T) {
	// speedup(a,b) * speedup(b,a) == 1 when both reach the target.
	a := &Series{Records: []IterationRecord{record(0, 2, 0.9)}}
	b := &Series{Records: []IterationRecord{record(0, 3, 0.9)}}
	prod := Speedup(a, b, 0.9) * Speedup(b, a, 0.9)
	if math.Abs(prod-1) > 1e-12 {
		t.Fatalf("speedup product = %v", prod)
	}
}
