package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should read as zeros")
	}
	snap := h.Snapshot()
	if snap.Count != 0 || snap.P50 != 0 || snap.P99 != 0 || snap.Min != 0 || snap.Max != 0 {
		t.Fatalf("empty snapshot %+v", snap)
	}
}

func TestHistogramQuantilesWithinBucketError(t *testing.T) {
	// The geometric buckets grow by 2^(1/4) ≈ 1.19 per step, so any
	// quantile estimate must land within ~19% of the true order statistic.
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	samples := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.NormFloat64()) * 1e-3 // log-normal around 1ms
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		if got < want/1.25 || got > want*1.25 {
			t.Fatalf("q=%g: histogram %g vs exact %g (off by more than a bucket)", q, got, want)
		}
	}
	snap := h.Snapshot()
	if snap.Count != 10000 {
		t.Fatalf("count %d", snap.Count)
	}
	if snap.P50 > snap.P90 || snap.P90 > snap.P99 || snap.P99 > snap.Max {
		t.Fatalf("quantiles not monotone: %+v", snap)
	}
	if snap.Min <= 0 || snap.Max <= snap.Min {
		t.Fatalf("min/max implausible: %+v", snap)
	}
}

func TestHistogramIgnoresGarbage(t *testing.T) {
	h := NewHistogram()
	h.Observe(-1)
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatal("negative/NaN samples recorded")
	}
	h.Observe(0) // zero is a legitimate (sub-resolution) sample
	if h.Count() != 1 {
		t.Fatal("zero sample dropped")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g+1) * 1e-4)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d, want 8000", h.Count())
	}
}

func TestHistogramIgnoresInfinity(t *testing.T) {
	h := NewHistogram()
	h.Observe(math.Inf(1))
	if h.Count() != 0 {
		t.Fatal("+Inf sample recorded")
	}
	h.Observe(1e-3)
	if got := h.Mean(); math.IsInf(got, 0) || got != 1e-3 {
		t.Fatalf("mean %g after an ignored Inf", got)
	}
}
