// Package metrics holds the per-iteration cost accounting used to reproduce
// Fig. 4 of the paper, which breaks iteration time into four categories:
// worker compute, communication, master verification, and master decoding.
// Times are virtual seconds from the simnet latency model (or measured
// seconds in real-transport runs — the arithmetic is agnostic).
package metrics

import (
	"fmt"
	"strings"
)

// Breakdown is the per-iteration cost split of the paper's Fig. 4.
type Breakdown struct {
	// Compute is the worst-case worker compute latency among the results
	// the master actually waited for (paper: "the worst-case latency for
	// performing the matrix operations at any worker node").
	Compute float64
	// Comm is the worst-case round-trip communication latency among the
	// used results.
	Comm float64
	// Verify is the total master-side verification time this iteration.
	// Zero for LCC and uncoded (LCC couples detection into decoding).
	Verify float64
	// Decode is the master-side decode time. Zero for uncoded.
	Decode float64
	// Wall is the end-to-end iteration latency (≥ the max of the phases;
	// phases overlap, e.g. verification of early arrivals happens while
	// stragglers are still computing).
	Wall float64
}

// Add accumulates another breakdown (used for run totals).
func (b *Breakdown) Add(o Breakdown) {
	b.Compute += o.Compute
	b.Comm += o.Comm
	b.Verify += o.Verify
	b.Decode += o.Decode
	b.Wall += o.Wall
}

// Scale divides every phase by n (used for per-iteration averages).
func (b Breakdown) Scale(n float64) Breakdown {
	if n == 0 {
		return Breakdown{}
	}
	return Breakdown{
		Compute: b.Compute / n,
		Comm:    b.Comm / n,
		Verify:  b.Verify / n,
		Decode:  b.Decode / n,
		Wall:    b.Wall / n,
	}
}

// String renders the breakdown as a single line.
func (b Breakdown) String() string {
	return fmt.Sprintf("compute=%.4gs comm=%.4gs verify=%.4gs decode=%.4gs wall=%.4gs",
		b.Compute, b.Comm, b.Verify, b.Decode, b.Wall)
}

// ReceiptCounters tracks the committed-verification plane for one tenant:
// how many round receipts were issued with its outputs, and — when the
// serving layer audits them — how many verified or failed. Verified+Failed
// can trail Issued when auditing is off.
type ReceiptCounters struct {
	Issued   uint64
	Verified uint64
	Failed   uint64
}

// Add accumulates another set of counters.
func (c *ReceiptCounters) Add(o ReceiptCounters) {
	c.Issued += o.Issued
	c.Verified += o.Verified
	c.Failed += o.Failed
}

// IterationRecord captures one training iteration of one scheme.
type IterationRecord struct {
	Iter int
	// Time is the cumulative virtual time at the END of this iteration.
	Time float64
	// TestAccuracy is the model's test accuracy after this iteration
	// (NaN-free; 0 when not evaluated).
	TestAccuracy float64
	// TrainLoss is the training cross-entropy after this iteration.
	TrainLoss float64
	// Breakdown is this iteration's cost split.
	Breakdown Breakdown
	// ByzantineCaught lists workers whose results failed verification.
	ByzantineCaught []int
	// Recode indicates the dynamic-coding path re-encoded after this
	// iteration, and RecodeCost its one-time virtual cost.
	Recode     bool
	RecodeCost float64
}

// Series is a named sequence of iteration records (one training run).
type Series struct {
	Name    string
	Records []IterationRecord
}

// FinalAccuracy returns the last recorded test accuracy, or 0.
func (s *Series) FinalAccuracy() float64 {
	if len(s.Records) == 0 {
		return 0
	}
	return s.Records[len(s.Records)-1].TestAccuracy
}

// TotalTime returns the cumulative time of the last record, or 0.
func (s *Series) TotalTime() float64 {
	if len(s.Records) == 0 {
		return 0
	}
	return s.Records[len(s.Records)-1].Time
}

// TimeToAccuracy returns the earliest cumulative time at which the series
// reached the target accuracy, and ok=false if it never did. This is the
// measure behind the paper's "AVCC reaches the accuracy level faster than
// LCC" claims and Table I speedups.
func (s *Series) TimeToAccuracy(target float64) (float64, bool) {
	for _, r := range s.Records {
		if r.TestAccuracy >= target {
			return r.Time, true
		}
	}
	return 0, false
}

// MeanBreakdown averages the per-iteration breakdowns.
func (s *Series) MeanBreakdown() Breakdown {
	var total Breakdown
	for _, r := range s.Records {
		total.Add(r.Breakdown)
	}
	return total.Scale(float64(len(s.Records)))
}

// CSV renders the series in a machine-readable form (one row per
// iteration) for plotting.
func (s *Series) CSV() string {
	var sb strings.Builder
	sb.WriteString("iter,time,accuracy,loss,compute,comm,verify,decode,wall\n")
	for _, r := range s.Records {
		fmt.Fprintf(&sb, "%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
			r.Iter, r.Time, r.TestAccuracy, r.TrainLoss,
			r.Breakdown.Compute, r.Breakdown.Comm, r.Breakdown.Verify,
			r.Breakdown.Decode, r.Breakdown.Wall)
	}
	return sb.String()
}

// Speedup returns how much faster a is than b to reach the target accuracy;
// when either never reaches it, it falls back to total-time ratio.
func Speedup(a, b *Series, target float64) float64 {
	ta, oka := a.TimeToAccuracy(target)
	tb, okb := b.TimeToAccuracy(target)
	if oka && okb && ta > 0 {
		return tb / ta
	}
	if a.TotalTime() > 0 {
		return b.TotalTime() / a.TotalTime()
	}
	return 0
}
