package metrics

import (
	"fmt"
	"math"
	"sync"
)

// Histogram is a thread-safe log-bucketed latency histogram built for the
// serving layer's per-tenant percentile accounting: Observe is O(1) and
// lock-cheap, Quantile interpolates within the matched bucket, and the
// bucket layout (geometric, factor 2^(1/4) from 1µs to ~17min) keeps the
// worst-case quantile error under ~19% — plenty for p50/p99 dashboards
// while storing nothing per sample.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// histBase is the lower bound of the first bucket (seconds).
const histBase = 1e-6

// histGrowth is the per-bucket geometric growth factor.
var histGrowth = math.Pow(2, 0.25)

// histBuckets spans histBase·growth^i up to ~1000s.
const histBuckets = 120

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets+2), min: math.Inf(1), max: math.Inf(-1)}
}

// bucketOf maps a sample (seconds) to its bucket index; index 0 is the
// underflow bucket, histBuckets+1 the overflow bucket.
func bucketOf(v float64) int {
	if v < histBase {
		return 0
	}
	i := int(math.Log(v/histBase)/math.Log(histGrowth)) + 1
	if i > histBuckets+1 {
		i = histBuckets + 1
	}
	return i
}

// bucketUpper returns the upper bound (seconds) of bucket i.
func bucketUpper(i int) float64 {
	if i <= 0 {
		return histBase
	}
	return histBase * math.Pow(histGrowth, float64(i))
}

// Observe records one sample, in seconds. Negative, NaN and infinite
// samples are dropped — they cannot be latencies, and letting them in
// would poison the sum or index past the bucket table.
func (h *Histogram) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) || math.IsInf(seconds, 1) {
		return
	}
	h.mu.Lock()
	h.counts[bucketOf(seconds)]++
	h.count++
	h.sum += seconds
	if seconds < h.min {
		h.min = seconds
	}
	if seconds > h.max {
		h.max = seconds
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// quantileFromCounts is the shared bucket-walk: the q-th quantile of a
// count vector by linear interpolation inside the matched bucket, clamped
// to the observed [min, max] so p0/p100 are exact. count must be > 0.
func quantileFromCounts(counts []uint64, count uint64, min, max, q float64) float64 {
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := q * float64(count)
	var seen float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo, hi := bucketUpper(i-1), bucketUpper(i)
			if i == 0 {
				lo = 0
			}
			v := lo + (rank-seen)/float64(c)*(hi-lo)
			return math.Min(math.Max(v, min), max)
		}
		seen += float64(c)
	}
	return max
}

// Quantile returns the q-th quantile (q in [0,1]); see quantileFromCounts.
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return quantileFromCounts(h.counts, h.count, h.min, h.max, q)
}

// Snapshot returns a consistent copy of the headline statistics.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	snap := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	h.mu.Unlock()
	if snap.Count == 0 {
		snap.Min, snap.Max = 0, 0
		return snap
	}
	snap.P50 = quantileFromCounts(counts, snap.Count, snap.Min, snap.Max, 0.50)
	snap.P90 = quantileFromCounts(counts, snap.Count, snap.Min, snap.Max, 0.90)
	snap.P99 = quantileFromCounts(counts, snap.Count, snap.Min, snap.Max, 0.99)
	return snap
}

// HistogramSnapshot is a point-in-time view of a Histogram.
type HistogramSnapshot struct {
	Count         uint64
	Sum           float64
	Min, Max      float64
	P50, P90, P99 float64
}

// String renders the snapshot as one line (times in milliseconds).
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.3fms p50=%.3fms p90=%.3fms p99=%.3fms max=%.3fms",
		s.Count, s.meanMs(), s.P50*1e3, s.P90*1e3, s.P99*1e3, s.Max*1e3)
}

func (s HistogramSnapshot) meanMs() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count) * 1e3
}
