package fieldmat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

var f = field.Default()

func TestMatVecSmallKnown(t *testing.T) {
	m := FromRows([][]field.Elem{
		{1, 2},
		{3, 4},
		{5, 6},
	})
	got := MatVec(f, m, []field.Elem{10, 100})
	want := []field.Elem{210, 430, 650}
	if !field.EqualVec(got, want) {
		t.Fatalf("MatVec = %v, want %v", got, want)
	}
}

func TestMatVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	// Large enough to cross the parallel threshold.
	m := Rand(f, rng, 300, 300)
	x := f.RandVec(rng, 300)
	got := MatVec(f, m, x)
	want := make([]field.Elem, m.Rows)
	for i := 0; i < m.Rows; i++ {
		want[i] = f.Dot(m.Row(i), x)
	}
	if !field.EqualVec(got, want) {
		t.Fatal("parallel MatVec disagrees with serial")
	}
}

func TestMatMulSmallKnown(t *testing.T) {
	a := FromRows([][]field.Elem{{1, 2}, {3, 4}})
	b := FromRows([][]field.Elem{{5, 6}, {7, 8}})
	got := MatMul(f, a, b)
	want := FromRows([][]field.Elem{{19, 22}, {43, 50}})
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v want %v", got, want)
	}
}

func TestMatMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := Rand(f, rng, 7, 5)
	b := Rand(f, rng, 5, 9)
	c := Rand(f, rng, 9, 4)
	left := MatMul(f, MatMul(f, a, b), c)
	right := MatMul(f, a, MatMul(f, b, c))
	if !left.Equal(right) {
		t.Fatal("(ab)c != a(bc)")
	}
}

func TestMatMulMatchesMatVecColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := Rand(f, rng, 6, 8)
	x := f.RandVec(rng, 8)
	xcol := NewMatrix(8, 1)
	for i, v := range x {
		xcol.Set(i, 0, v)
	}
	viaMul := MatMul(f, a, xcol)
	viaVec := MatVec(f, a, x)
	for i := range viaVec {
		if viaMul.At(i, 0) != viaVec[i] {
			t.Fatal("MatMul and MatVec disagree")
		}
	}
}

func TestVecMatIsTransposedMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := Rand(f, rng, 6, 9)
	r := f.RandVec(rng, 6)
	got := VecMat(f, r, m)
	want := MatVec(f, m.Transpose(), r)
	if !field.EqualVec(got, want) {
		t.Fatal("VecMat != (mᵀ)·r")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := Rand(f, rng, 5, 11)
	if !m.Transpose().Transpose().Equal(m) {
		t.Fatal("transpose is not an involution")
	}
}

func TestSplitRowsVStackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	m := Rand(f, rng, 12, 7)
	for _, k := range []int{1, 2, 3, 4, 6, 12} {
		blocks := SplitRows(m, k)
		if len(blocks) != k {
			t.Fatalf("SplitRows(%d) returned %d blocks", k, len(blocks))
		}
		if !VStack(blocks).Equal(m) {
			t.Fatalf("VStack(SplitRows(%d)) != m", k)
		}
	}
}

func TestSplitRowsIndivisiblePanics(t *testing.T) {
	m := NewMatrix(10, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SplitRows(m, 3)
}

func TestMatrixAXPYAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := Rand(f, rng, 4, 4)
	b := Rand(f, rng, 4, 4)
	c := f.Rand(rng)
	got := a.Clone()
	got.AXPY(f, c, b)
	for i := range got.Data {
		if got.Data[i] != f.Add(a.Data[i], f.Mul(c, b.Data[i])) {
			t.Fatal("matrix AXPY mismatch")
		}
	}
	s := a.Clone()
	s.Scale(f, c)
	for i := range s.Data {
		if s.Data[i] != f.Mul(c, a.Data[i]) {
			t.Fatal("matrix Scale mismatch")
		}
	}
}

func TestLinearityOfMatVecQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := Rand(f, r, rows, cols)
		x := f.RandVec(r, cols)
		y := f.RandVec(r, cols)
		c := f.Rand(r)
		// m(x + cy) == mx + c·my
		xcy := make([]field.Elem, cols)
		f.ScaleVec(xcy, c, y)
		f.AddVec(xcy, xcy, x)
		left := MatVec(f, m, xcy)
		mx := MatVec(f, m, x)
		my := MatVec(f, m, y)
		right := make([]field.Elem, rows)
		f.ScaleVec(right, c, my)
		f.AddVec(right, right, mx)
		return field.EqualVec(left, right)
	}, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	a := NewMatrix(3, 4)
	for name, fn := range map[string]func(){
		"MatVec": func() { MatVec(f, a, make([]field.Elem, 5)) },
		"MatMul": func() { MatMul(f, a, NewMatrix(5, 2)) },
		"VecMat": func() { VecMat(f, make([]field.Elem, 4), a) },
		"VStack": func() { VStack([]*Matrix{NewMatrix(2, 3), NewMatrix(2, 4)}) },
		"AXPY":   func() { a.Clone().AXPY(f, 1, NewMatrix(2, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPadRows(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	m := Rand(f, rng, 7, 3)

	p := PadRows(m, 3)
	if p.Rows != 9 || p.Cols != 3 {
		t.Fatalf("PadRows(7x3, 3) = %dx%d, want 9x3", p.Rows, p.Cols)
	}
	if !field.EqualVec(p.Data[:len(m.Data)], m.Data) {
		t.Fatal("padding altered the original rows")
	}
	for _, v := range p.Data[len(m.Data):] {
		if v != 0 {
			t.Fatal("padding rows must be zero")
		}
	}

	// Identity when already divisible: same object, no copy.
	if q := PadRows(m, 7); q != m {
		t.Fatal("PadRows should return the input when rows divide evenly")
	}
	if q := PadRows(m, 1); q != m {
		t.Fatal("PadRows with k=1 should be the identity")
	}

	defer func() {
		if recover() == nil {
			t.Error("PadRows with k=0 did not panic")
		}
	}()
	PadRows(m, 0)
}

func BenchmarkMatVec1200x600(b *testing.B) {
	rng := rand.New(rand.NewSource(28))
	m := Rand(f, rng, 1200, 600)
	x := f.RandVec(rng, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatVec(f, m, x)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	x := Rand(f, rng, 128, 128)
	y := Rand(f, rng, 128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(f, x, y)
	}
}
