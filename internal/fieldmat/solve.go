package fieldmat

import (
	"errors"

	"repro/internal/field"
)

// Linear solving over F_q. The MDS decoder inverts the K×K submatrix of the
// generator formed by the columns of the K verified workers; over a prime
// field plain Gauss–Jordan with any nonzero pivot is exact, so no pivoting
// strategy beyond "first nonzero in column" is needed.

// ErrSingular reports a rank-deficient system. For MDS generator submatrices
// this is impossible by construction (any K columns of a K×N Cauchy/
// Vandermonde-style generator are independent); seeing it means corrupted
// inputs rather than bad luck.
var ErrSingular = errors.New("fieldmat: singular matrix")

// Inverse returns m⁻¹ for a square matrix, or ErrSingular.
func Inverse(f *field.Field, m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("fieldmat: Inverse of non-square matrix")
	}
	n := m.Rows
	// Augment [m | I] and reduce to [I | m⁻¹].
	aug := NewMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:n], m.Row(i))
		aug.Set(i, n+i, 1)
	}
	if err := gaussJordan(f, aug, n); err != nil {
		return nil, err
	}
	inv := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(inv.Row(i), aug.Row(i)[n:])
	}
	return inv, nil
}

// Solve returns the unique x with a·x = b for square a, or ErrSingular.
func Solve(f *field.Field, a *Matrix, b []field.Elem) ([]field.Elem, error) {
	if a.Rows != a.Cols {
		panic("fieldmat: Solve with non-square matrix")
	}
	if len(b) != a.Rows {
		panic("fieldmat: Solve dimension mismatch")
	}
	n := a.Rows
	aug := NewMatrix(n, n+1)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:n], a.Row(i))
		aug.Set(i, n, b[i])
	}
	if err := gaussJordan(f, aug, n); err != nil {
		return nil, err
	}
	x := make([]field.Elem, n)
	for i := 0; i < n; i++ {
		x[i] = aug.At(i, n)
	}
	return x, nil
}

// SolveMatrix returns the unique X with a·X = b for square a. The MDS
// decoder uses this with b holding one verified worker result per row-group,
// solving for all output columns at once.
func SolveMatrix(f *field.Field, a, b *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		panic("fieldmat: SolveMatrix with non-square matrix")
	}
	if b.Rows != a.Rows {
		panic("fieldmat: SolveMatrix dimension mismatch")
	}
	n := a.Rows
	aug := NewMatrix(n, n+b.Cols)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:n], a.Row(i))
		copy(aug.Row(i)[n:], b.Row(i))
	}
	if err := gaussJordan(f, aug, n); err != nil {
		return nil, err
	}
	x := NewMatrix(n, b.Cols)
	for i := 0; i < n; i++ {
		copy(x.Row(i), aug.Row(i)[n:])
	}
	return x, nil
}

// gaussJordan reduces the left n×n block of aug to the identity in place.
func gaussJordan(f *field.Field, aug *Matrix, n int) error {
	for col := 0; col < n; col++ {
		// Find a nonzero pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if aug.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return ErrSingular
		}
		if pivot != col {
			pr, cr := aug.Row(pivot), aug.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
		}
		// Normalise the pivot row.
		inv := f.Inv(aug.At(col, col))
		f.ScaleVec(aug.Row(col)[col:], inv, aug.Row(col)[col:])
		// Eliminate the column everywhere else.
		prow := aug.Row(col)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := aug.At(r, col)
			if factor == 0 {
				continue
			}
			f.AXPY(aug.Row(r)[col:], f.Neg(factor), prow[col:])
		}
	}
	return nil
}
