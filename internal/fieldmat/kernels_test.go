package fieldmat

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/field"
)

// Naive reference kernels mirroring the seed implementations (one or two
// hardware `%` per element, no blocking, no pool). The production kernels
// must stay bit-exact with these.

func matVecRef(f *field.Field, m *Matrix, x []field.Elem) []field.Elem {
	q := f.Q()
	y := make([]field.Elem, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var acc uint64
		row := m.Row(i)
		for j := range row {
			acc = (acc + row[j]*x[j]%q) % q
		}
		y[i] = acc
	}
	return y
}

func matMulRef(f *field.Field, a, b *Matrix) *Matrix {
	q := f.Q()
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow, crow := a.Row(i), c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				crow[j] = (crow[j] + av*brow[j]%q) % q
			}
		}
	}
	return c
}

func vecMatRef(f *field.Field, x []field.Elem, m *Matrix) []field.Elem {
	q := f.Q()
	y := make([]field.Elem, m.Cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j := range row {
			y[j] = (y[j] + xi*row[j]%q) % q
		}
	}
	return y
}

// kernelFields covers the lazy-reduction regimes: batch 1 (reduce every
// term), batch 2, the paper's batch-8192 field, and a clamped tiny modulus.
func kernelFields() []*field.Field {
	return []*field.Field{
		field.MustNew(4294967291),
		field.MustNew(2147483647),
		field.Default(),
		field.MustNew(97),
	}
}

func TestMatVecMatchesRefAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, fld := range kernelFields() {
		for _, shape := range [][2]int{{0, 3}, {1, 1}, {3, 0}, {5, 7}, {64, 65}, {130, 127}} {
			m := Rand(fld, rng, shape[0], shape[1])
			x := fld.RandVec(rng, shape[1])
			if !field.EqualVec(MatVec(fld, m, x), matVecRef(fld, m, x)) {
				t.Fatalf("q=%d %dx%d: MatVec diverges from reference", fld.Q(), shape[0], shape[1])
			}
		}
	}
}

func TestMatMulMatchesRefAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, fld := range kernelFields() {
		// Inner dims straddle the lazy batch for the batch-1 and batch-2
		// moduli; outer shapes cover empty, single and odd sizes.
		for _, shape := range [][3]int{{0, 4, 3}, {1, 1, 1}, {3, 1, 2}, {5, 2, 9}, {7, 3, 5}, {9, 17, 11}, {33, 40, 29}} {
			a := Rand(fld, rng, shape[0], shape[1])
			b := Rand(fld, rng, shape[1], shape[2])
			if !MatMul(fld, a, b).Equal(matMulRef(fld, a, b)) {
				t.Fatalf("q=%d (%dx%d)x(%dx%d): MatMul diverges from reference",
					fld.Q(), shape[0], shape[1], shape[1], shape[2])
			}
		}
	}
}

// TestMatMulWorstCaseEntries feeds all-(q−1) matrices — maximal raw products
// in every accumulator slot — across the batch-boundary moduli, the shapes a
// lazy-reduction overflow would corrupt first.
func TestMatMulWorstCaseEntries(t *testing.T) {
	for _, fld := range kernelFields() {
		inner := 3*fld.LazyBatch() + 1
		if inner > 256 {
			inner = 256
		}
		a := NewMatrix(3, inner)
		b := NewMatrix(inner, 5)
		for i := range a.Data {
			a.Data[i] = fld.Q() - 1
		}
		for i := range b.Data {
			b.Data[i] = fld.Q() - 1
		}
		if !MatMul(fld, a, b).Equal(matMulRef(fld, a, b)) {
			t.Fatalf("q=%d: worst-case MatMul diverges from reference", fld.Q())
		}
	}
}

func TestVecMatMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, fld := range kernelFields() {
		rows := 2*fld.LazyBatch() + 3
		if rows > 300 {
			rows = 300
		}
		m := Rand(fld, rng, rows, 17)
		x := fld.RandVec(rng, rows)
		if !field.EqualVec(VecMat(fld, x, m), vecMatRef(fld, x, m)) {
			t.Fatalf("q=%d: VecMat diverges from reference", fld.Q())
		}
	}
}

// TestParallelThresholdBoundary pins the serial/parallel cut: shapes one
// element below and above ParallelThreshold must produce identical,
// reference-exact results. This is the satellite replacing the seed's magic
// 1<<14 with a tested constant.
func TestParallelThresholdBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rows := 128
	for _, cols := range []int{ParallelThreshold/rows - 1, ParallelThreshold / rows, ParallelThreshold/rows + 1} {
		m := Rand(f, rng, rows, cols)
		x := f.RandVec(rng, cols)
		if !field.EqualVec(MatVec(f, m, x), matVecRef(f, m, x)) {
			t.Fatalf("MatVec at %dx%d (threshold boundary) diverges", rows, cols)
		}
	}
	// MatMul counts a + b elements: pick b so the sum straddles.
	a := Rand(f, rng, 64, 120) // 7680 elements
	for _, bcols := range []int{(ParallelThreshold - 7680) / 120, (ParallelThreshold-7680)/120 + 1} {
		b := Rand(f, rng, 120, bcols)
		if !MatMul(f, a, b).Equal(matMulRef(f, a, b)) {
			t.Fatalf("MatMul at threshold boundary (bcols=%d) diverges", bcols)
		}
	}
}

func TestPoolSizedFromGOMAXPROCS(t *testing.T) {
	ensurePool()
	if poolSize != runtime.GOMAXPROCS(0) {
		t.Fatalf("pool size = %d, want GOMAXPROCS = %d", poolSize, runtime.GOMAXPROCS(0))
	}
}

// TestKernelsConcurrentCallers hammers the shared pool from many goroutines
// at once — the Go executor's access pattern (one matvec per worker) — and
// checks every result. Run under -race in CI.
func TestKernelsConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := Rand(f, rng, 200, 96)
	x := f.RandVec(rng, 96)
	want := matVecRef(f, m, x)
	a := Rand(f, rng, 40, 150)
	b := Rand(f, rng, 150, 60)
	wantMul := matMulRef(f, a, b)

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 8; it++ {
				if g%2 == 0 {
					if !field.EqualVec(MatVec(f, m, x), want) {
						errs <- "concurrent MatVec diverged"
						return
					}
				} else if !MatMul(f, a, b).Equal(wantMul) {
					errs <- "concurrent MatMul diverged"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestKernelsDoNotAllocate is the steady-state allocation contract behind
// the BENCH_kernels.json allocs/op column: the Into kernels, serial or
// parallel, perform zero heap allocations once the pools are warm.
func TestKernelsDoNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	rng := rand.New(rand.NewSource(45))
	big := Rand(f, rng, 256, 256) // 65536 elements: parallel path
	small := Rand(f, rng, 24, 24) // serial path
	x := f.RandVec(rng, 256)
	xs := f.RandVec(rng, 24)
	y := make([]field.Elem, 256)
	ys := make([]field.Elem, 24)
	cBig := NewMatrix(256, 256)
	cSmall := NewMatrix(24, 24)

	cases := map[string]func(){
		"MatVecInto/parallel": func() { MatVecInto(f, y, big, x) },
		"MatVecInto/serial":   func() { MatVecInto(f, ys, small, xs) },
		"MatMulInto/parallel": func() { MatMulInto(f, cBig, big, big) },
		"MatMulInto/serial":   func() { MatMulInto(f, cSmall, small, small) },
		"VecMatInto":          func() { VecMatInto(f, y, x, big) },
	}
	for name, fn := range cases {
		fn() // warm the task/acc pools and start the workers
		if av := testing.AllocsPerRun(10, fn); av != 0 {
			t.Errorf("%s: %v allocs/op in steady state, want 0", name, av)
		}
	}
}

func TestIntoVariantShapePanics(t *testing.T) {
	m := NewMatrix(3, 4)
	for name, fn := range map[string]func(){
		"MatVecInto-out": func() { MatVecInto(f, make([]field.Elem, 2), m, make([]field.Elem, 4)) },
		"MatMulInto-out": func() { MatMulInto(f, NewMatrix(3, 3), m, NewMatrix(4, 2)) },
		"VecMatInto-out": func() { VecMatInto(f, make([]field.Elem, 3), make([]field.Elem, 3), m) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
