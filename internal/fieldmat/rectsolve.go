package fieldmat

import (
	"errors"

	"repro/internal/field"
)

// ErrInconsistent reports an overdetermined system with no solution. The
// Berlekamp–Welch decoder sees this when it guesses too large an error count
// and retries with a smaller one.
var ErrInconsistent = errors.New("fieldmat: inconsistent linear system")

// SolveAny returns some solution x of a·x = b for a general (possibly
// rectangular, possibly rank-deficient) matrix, setting free variables to
// zero. It returns ErrInconsistent when no solution exists.
//
// This is the workhorse of the Berlekamp–Welch key equation
// Q(x_i) = y_i·E(x_i): n equations in k+2e unknowns where extra equations
// are consistent by construction whenever the error bound holds.
func SolveAny(f *field.Field, a *Matrix, b []field.Elem) ([]field.Elem, error) {
	if len(b) != a.Rows {
		panic("fieldmat: SolveAny dimension mismatch")
	}
	rows, cols := a.Rows, a.Cols
	aug := NewMatrix(rows, cols+1)
	for i := 0; i < rows; i++ {
		copy(aug.Row(i)[:cols], a.Row(i))
		aug.Set(i, cols, b[i])
	}

	// Forward elimination with column pivoting record.
	pivotCol := make([]int, 0, cols) // pivotCol[r] = column of pivot in row r
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		pivot := -1
		for i := r; i < rows; i++ {
			if aug.At(i, c) != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		if pivot != r {
			pr, rr := aug.Row(pivot), aug.Row(r)
			for j := range pr {
				pr[j], rr[j] = rr[j], pr[j]
			}
		}
		inv := f.Inv(aug.At(r, c))
		f.ScaleVec(aug.Row(r)[c:], inv, aug.Row(r)[c:])
		for i := 0; i < rows; i++ {
			if i == r {
				continue
			}
			factor := aug.At(i, c)
			if factor == 0 {
				continue
			}
			f.AXPY(aug.Row(i)[c:], f.Neg(factor), aug.Row(r)[c:])
		}
		pivotCol = append(pivotCol, c)
		r++
	}

	// Any all-zero row with nonzero RHS means inconsistency.
	for i := r; i < rows; i++ {
		if aug.At(i, cols) != 0 {
			return nil, ErrInconsistent
		}
	}

	x := make([]field.Elem, cols)
	for row, c := range pivotCol {
		x[c] = aug.At(row, cols)
	}
	return x, nil
}
