//go:build !race

package fieldmat

// raceEnabled reports whether the race detector is active; the strict
// zero-allocation assertions only run without it (the detector's
// instrumentation perturbs allocation accounting).
const raceEnabled = false
