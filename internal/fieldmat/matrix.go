// Package fieldmat provides dense vectors and matrices over a prime field,
// the data plane of the whole AVCC stack: data shards X_i, coded shards X̃_i,
// worker products X̃_i·w and X̃_iᵀ·e, Freivalds key rows r·X̃_i, and the
// K×K MDS decode systems all live here.
//
// Matrices are row-major over a single backing slice. The multiply kernels
// split work across goroutines by row blocks because worker compute time —
// matrix-vector products over shards of thousands of rows — dominates every
// experiment in the paper.
package fieldmat

import (
	"fmt"
	"math/rand"

	"repro/internal/field"
)

// Matrix is a dense rows×cols matrix over F_q, stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []field.Elem
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("fieldmat: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]field.Elem, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows (copied).
func FromRows(rows [][]field.Elem) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("fieldmat: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []field.Elem {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) field.Elem { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v field.Elem) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Equal reports element-wise equality including shape.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	return field.EqualVec(m.Data, o.Data)
}

// String renders small matrices for test failure messages.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 256 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += fmt.Sprintln(m.Row(i))
	}
	return s
}

// Transpose returns a fresh mᵀ. The second logistic-regression round
// computes X̃ᵀe, so workers hold transposed shards too.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// VStack concatenates matrices with equal column counts vertically — the
// decode step reassembles Y = [Y_1ᵀ … Y_Kᵀ]ᵀ this way.
func VStack(blocks []*Matrix) *Matrix {
	if len(blocks) == 0 {
		return NewMatrix(0, 0)
	}
	cols := blocks[0].Cols
	rows := 0
	for _, b := range blocks {
		if b.Cols != cols {
			panic("fieldmat: VStack column mismatch")
		}
		rows += b.Rows
	}
	out := NewMatrix(rows, cols)
	at := 0
	for _, b := range blocks {
		copy(out.Data[at:at+len(b.Data)], b.Data)
		at += len(b.Data)
	}
	return out
}

// PadRows returns m extended with zero rows to the next multiple of k
// (identity when already divisible). The paper pads GISETTE the same way
// before splitting it into K coded blocks.
func PadRows(m *Matrix, k int) *Matrix {
	if k <= 0 {
		panic(fmt.Sprintf("fieldmat: cannot pad to a multiple of %d rows", k))
	}
	if m.Rows%k == 0 {
		return m
	}
	rows := ((m.Rows + k - 1) / k) * k
	out := NewMatrix(rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SplitRows splits m into k consecutive row blocks. The paper requires K to
// divide m (it pads otherwise); we enforce divisibility and let callers pad.
func SplitRows(m *Matrix, k int) []*Matrix {
	if k <= 0 || m.Rows%k != 0 {
		panic(fmt.Sprintf("fieldmat: cannot split %d rows into %d equal blocks", m.Rows, k))
	}
	per := m.Rows / k
	out := make([]*Matrix, k)
	for i := range out {
		b := NewMatrix(per, m.Cols)
		copy(b.Data, m.Data[i*per*m.Cols:(i+1)*per*m.Cols])
		out[i] = b
	}
	return out
}

// Rand fills a fresh matrix with uniform field elements.
func Rand(f *field.Field, rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = f.Rand(rng)
	}
	return m
}

// MatVec computes y = m·x over F_q, parallelised across row blocks on the
// package worker pool when the matrix touches at least ParallelThreshold
// elements.
func MatVec(f *field.Field, m *Matrix, x []field.Elem) []field.Elem {
	y := make([]field.Elem, m.Rows)
	MatVecInto(f, y, m, x)
	return y
}

// MatVecInto computes y = m·x into a caller-owned slice: the steady-state
// form (zero heap allocations) for round loops that reuse their output rows.
//
//avcc:noalloc
func MatVecInto(f *field.Field, y []field.Elem, m *Matrix, x []field.Elem) {
	if len(x) != m.Cols {
		panic("fieldmat: MatVec dimension mismatch")
	}
	if len(y) != m.Rows {
		panic("fieldmat: MatVec output length mismatch")
	}
	if m.Rows*m.Cols < ParallelThreshold || m.Rows < 2 {
		matVecRows(f, y, m, x, 0, m.Rows)
		return
	}
	//avcc:alloc-ok proto task never escapes dispatch (copied into pooled tasks); measured 0 allocs/op
	dispatch(m.Rows, &task{run: runMatVec, f: f, a: m, x: x, y: y})
}

//avcc:noalloc

func runMatVec(t *task) { matVecRows(t.f, t.y, t.a, t.x, t.lo, t.hi) }

//avcc:noalloc

func matVecRows(f *field.Field, y []field.Elem, m *Matrix, x []field.Elem, lo, hi int) {
	for i := lo; i < hi; i++ {
		y[i] = f.Dot(m.Row(i), x)
	}
}

// MatMul computes c = a·b over F_q.
func MatMul(f *field.Field, a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	MatMulInto(f, c, a, b)
	return c
}

// MatMulInto computes c = a·b into a caller-owned matrix (zero heap
// allocations in steady state). c must not alias a or b.
//
// The kernel is blocked for the lazy-reduction contract (DESIGN.md §7): each
// output row streams rows of b through a pooled uint64 accumulator row in
// LazyBatch-sized k-tiles — raw multiply-adds inside a tile, one Barrett
// reduction per accumulator entry per tile, instead of the seed's two
// divisions per multiply-add. Row blocks run on the package worker pool.
//
//avcc:noalloc
func MatMulInto(f *field.Field, c, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic("fieldmat: MatMul dimension mismatch")
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic("fieldmat: MatMul output shape mismatch")
	}
	if a.Rows*a.Cols+b.Rows*b.Cols < ParallelThreshold || a.Rows < 2 {
		buf := getAcc(b.Cols)
		matMulRows(f, c, a, b, 0, a.Rows, buf.s)
		putAcc(buf)
		return
	}
	//avcc:alloc-ok proto task never escapes dispatch (copied into pooled tasks); measured 0 allocs/op
	dispatch(a.Rows, &task{run: runMatMul, f: f, a: a, b: b, c: c})
}

//avcc:noalloc

func runMatMul(t *task) {
	buf := getAcc(t.b.Cols)
	matMulRows(t.f, t.c, t.a, t.b, t.lo, t.hi, buf.s)
	putAcc(buf)
}

// matMulRows is the blocked row kernel; acc is a zeroed scratch row of
// length b.Cols, returned zeroed (Flush) for pooling. Rows of b stream
// through the accumulator with field.LazyAcc enforcing the one-reduction-
// per-LazyBatch-rows contract.
//
//avcc:noalloc
func matMulRows(f *field.Field, c, a, b *Matrix, lo, hi int, acc []uint64) {
	for i := lo; i < hi; i++ {
		la := f.NewLazyAcc(acc)
		for k, av := range a.Row(i) {
			if av != 0 {
				la.AXPY(av, b.Row(k))
			}
		}
		la.Flush(c.Row(i))
	}
}

// VecMat computes y = xᵀ·m (a row vector times a matrix); the Freivalds key
// s = r·X̃ is exactly this shape.
func VecMat(f *field.Field, x []field.Elem, m *Matrix) []field.Elem {
	y := make([]field.Elem, m.Cols)
	VecMatInto(f, y, x, m)
	return y
}

// VecMatInto computes y = xᵀ·m into a caller-owned slice through a pooled
// lazy accumulator row: one reduction pass per LazyBatch matrix rows.
//
//avcc:noalloc
func VecMatInto(f *field.Field, y []field.Elem, x []field.Elem, m *Matrix) {
	if len(x) != m.Rows {
		panic("fieldmat: VecMat dimension mismatch")
	}
	if len(y) != m.Cols {
		panic("fieldmat: VecMat output length mismatch")
	}
	buf := getAcc(m.Cols)
	la := f.NewLazyAcc(buf.s)
	for i, xi := range x {
		if xi != 0 {
			la.AXPY(xi, m.Row(i))
		}
	}
	la.Flush(y)
	putAcc(buf)
}

// Scale multiplies every element in place by c.
func (m *Matrix) Scale(f *field.Field, c field.Elem) {
	f.ScaleVec(m.Data, c, m.Data)
}

// AddInPlace sets m += o.
func (m *Matrix) AddInPlace(f *field.Field, o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("fieldmat: AddInPlace shape mismatch")
	}
	f.AddVec(m.Data, m.Data, o.Data)
}

// AXPY sets m += c·o, the shard-combination step of every encoder.
func (m *Matrix) AXPY(f *field.Field, c field.Elem, o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("fieldmat: AXPY shape mismatch")
	}
	f.AXPY(m.Data, c, o.Data)
}
