// Package fieldmat provides dense vectors and matrices over a prime field,
// the data plane of the whole AVCC stack: data shards X_i, coded shards X̃_i,
// worker products X̃_i·w and X̃_iᵀ·e, Freivalds key rows r·X̃_i, and the
// K×K MDS decode systems all live here.
//
// Matrices are row-major over a single backing slice. The multiply kernels
// split work across goroutines by row blocks because worker compute time —
// matrix-vector products over shards of thousands of rows — dominates every
// experiment in the paper.
package fieldmat

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/field"
)

// Matrix is a dense rows×cols matrix over F_q, stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []field.Elem
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("fieldmat: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]field.Elem, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows (copied).
func FromRows(rows [][]field.Elem) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("fieldmat: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []field.Elem {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) field.Elem { return m.Data[i*m.Cols+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v field.Elem) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Equal reports element-wise equality including shape.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	return field.EqualVec(m.Data, o.Data)
}

// String renders small matrices for test failure messages.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 256 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += fmt.Sprintln(m.Row(i))
	}
	return s
}

// Transpose returns a fresh mᵀ. The second logistic-regression round
// computes X̃ᵀe, so workers hold transposed shards too.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// VStack concatenates matrices with equal column counts vertically — the
// decode step reassembles Y = [Y_1ᵀ … Y_Kᵀ]ᵀ this way.
func VStack(blocks []*Matrix) *Matrix {
	if len(blocks) == 0 {
		return NewMatrix(0, 0)
	}
	cols := blocks[0].Cols
	rows := 0
	for _, b := range blocks {
		if b.Cols != cols {
			panic("fieldmat: VStack column mismatch")
		}
		rows += b.Rows
	}
	out := NewMatrix(rows, cols)
	at := 0
	for _, b := range blocks {
		copy(out.Data[at:at+len(b.Data)], b.Data)
		at += len(b.Data)
	}
	return out
}

// PadRows returns m extended with zero rows to the next multiple of k
// (identity when already divisible). The paper pads GISETTE the same way
// before splitting it into K coded blocks.
func PadRows(m *Matrix, k int) *Matrix {
	if k <= 0 {
		panic(fmt.Sprintf("fieldmat: cannot pad to a multiple of %d rows", k))
	}
	if m.Rows%k == 0 {
		return m
	}
	rows := ((m.Rows + k - 1) / k) * k
	out := NewMatrix(rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SplitRows splits m into k consecutive row blocks. The paper requires K to
// divide m (it pads otherwise); we enforce divisibility and let callers pad.
func SplitRows(m *Matrix, k int) []*Matrix {
	if k <= 0 || m.Rows%k != 0 {
		panic(fmt.Sprintf("fieldmat: cannot split %d rows into %d equal blocks", m.Rows, k))
	}
	per := m.Rows / k
	out := make([]*Matrix, k)
	for i := range out {
		b := NewMatrix(per, m.Cols)
		copy(b.Data, m.Data[i*per*m.Cols:(i+1)*per*m.Cols])
		out[i] = b
	}
	return out
}

// Rand fills a fresh matrix with uniform field elements.
func Rand(f *field.Field, rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = f.Rand(rng)
	}
	return m
}

// MatVec computes y = m·x over F_q, parallelised across row blocks when the
// matrix is large enough to amortise goroutine startup.
func MatVec(f *field.Field, m *Matrix, x []field.Elem) []field.Elem {
	if len(x) != m.Cols {
		panic("fieldmat: MatVec dimension mismatch")
	}
	y := make([]field.Elem, m.Rows)
	const parallelThreshold = 1 << 16 // elements touched
	if m.Rows*m.Cols < parallelThreshold {
		for i := 0; i < m.Rows; i++ {
			y[i] = f.Dot(m.Row(i), x)
		}
		return y
	}
	parallelRows(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = f.Dot(m.Row(i), x)
		}
	})
	return y
}

// MatMul computes c = a·b over F_q with an i-k-j loop order (streaming rows
// of b) and row-block parallelism.
func MatMul(f *field.Field, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("fieldmat: MatMul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	work := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				f.AXPY(crow, av, b.Row(k))
			}
		}
	}
	const parallelThreshold = 1 << 14
	if a.Rows*a.Cols+b.Rows*b.Cols < parallelThreshold {
		work(0, a.Rows)
	} else {
		parallelRows(a.Rows, work)
	}
	return c
}

// VecMat computes y = xᵀ·m (a row vector times a matrix); the Freivalds key
// s = r·X̃ is exactly this shape.
func VecMat(f *field.Field, x []field.Elem, m *Matrix) []field.Elem {
	if len(x) != m.Rows {
		panic("fieldmat: VecMat dimension mismatch")
	}
	y := make([]field.Elem, m.Cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		f.AXPY(y, xi, m.Row(i))
	}
	return y
}

// Scale multiplies every element in place by c.
func (m *Matrix) Scale(f *field.Field, c field.Elem) {
	f.ScaleVec(m.Data, c, m.Data)
}

// AddInPlace sets m += o.
func (m *Matrix) AddInPlace(f *field.Field, o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("fieldmat: AddInPlace shape mismatch")
	}
	f.AddVec(m.Data, m.Data, o.Data)
}

// AXPY sets m += c·o, the shard-combination step of every encoder.
func (m *Matrix) AXPY(f *field.Field, c field.Elem, o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("fieldmat: AXPY shape mismatch")
	}
	f.AXPY(m.Data, c, o.Data)
}

// parallelRows splits [0, n) across NumCPU goroutines.
func parallelRows(n int, fn func(lo, hi int)) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	per := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
