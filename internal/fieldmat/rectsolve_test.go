package fieldmat

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/field"
)

func TestSolveAnySquareMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(8)
		a := Rand(f, rng, n, n)
		x := f.RandVec(rng, n)
		b := MatVec(f, a, x)
		got, err := SolveAny(f, a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Verify a·got = b (got may differ from x only if a is singular).
		if !field.EqualVec(MatVec(f, a, got), b) {
			t.Fatal("SolveAny solution does not satisfy the system")
		}
	}
}

func TestSolveAnyOverdeterminedConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	// 8 equations, 4 unknowns, consistent by construction.
	a := Rand(f, rng, 8, 4)
	x := f.RandVec(rng, 4)
	b := MatVec(f, a, x)
	got, err := SolveAny(f, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(MatVec(f, a, got), b) {
		t.Fatal("overdetermined solution does not satisfy all equations")
	}
}

func TestSolveAnyInconsistent(t *testing.T) {
	a := FromRows([][]field.Elem{
		{1, 0},
		{1, 0},
	})
	b := []field.Elem{1, 2}
	if _, err := SolveAny(f, a, b); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("expected ErrInconsistent, got %v", err)
	}
}

func TestSolveAnyUnderdeterminedFreeVarsZero(t *testing.T) {
	// x0 + x1 = 5 has many solutions; free variable must be set to 0.
	a := FromRows([][]field.Elem{{1, 1}})
	got, err := SolveAny(f, a, []field.Elem{5})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 || got[1] != 0 {
		t.Fatalf("got %v, want [5 0]", got)
	}
}

func TestSolveAnyZeroMatrixZeroRHS(t *testing.T) {
	a := NewMatrix(3, 2)
	got, err := SolveAny(f, a, make([]field.Elem, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 0 {
		t.Fatal("expected zero solution")
	}
}

func TestSolveAnyZeroMatrixNonzeroRHS(t *testing.T) {
	a := NewMatrix(2, 2)
	if _, err := SolveAny(f, a, []field.Elem{1, 0}); !errors.Is(err, ErrInconsistent) {
		t.Fatal("expected ErrInconsistent")
	}
}
