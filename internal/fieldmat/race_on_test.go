//go:build race

package fieldmat

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
