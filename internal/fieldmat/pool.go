package fieldmat

// Persistent worker pool and pooled scratch for the matrix kernels.
//
// The seed spawned runtime.NumCPU() goroutines per MatMul/MatVec call; at
// the paper's round rate (every worker of every scheme does a shard matvec
// per iteration) that is thousands of goroutine start/stops per simulated
// second. The pool below starts GOMAXPROCS workers once and feeds them
// row-range tasks through a channel; tasks and their WaitGroups come from
// sync.Pools, so a steady-state kernel call performs zero heap allocations
// (verified by TestKernelsDoNotAllocate and the committed BENCH_kernels.json
// allocs/op column).
//
// Tasks never submit sub-tasks, so the pool cannot deadlock on itself: every
// task runs straight-line kernel code over its row range.

import (
	"runtime"
	"sync"

	"repro/internal/field"
)

// ParallelThreshold is the minimum number of elements a kernel call must
// touch before the work is split across the pool: below it the channel
// handoff (~1µs per task) costs more than the arithmetic saves. 2^14
// multiply-adds is a few microseconds of single-core work at the lazy
// kernels' throughput, which is where fan-out starts to win on commodity
// core counts; TestParallelThresholdBoundary pins bit-exactness on both
// sides of the cut. MatVec counts rows·cols, MatMul counts the elements of
// both operands.
const ParallelThreshold = 1 << 14

// task is one row-range of a kernel call. run is always a static function
// (no captured state) so tasks are reusable and allocation-free; the slots
// cover the union of what the kernels need.
type task struct {
	run     func(*task)
	f       *field.Field
	a, b, c *Matrix
	x, y    []field.Elem
	lo, hi  int
	wg      *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan *task
	poolSize  int

	taskPool = sync.Pool{New: func() any { return new(task) }}
	wgPool   = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

// ensurePool starts the workers on first use, sized from GOMAXPROCS (the
// scheduler's actual parallelism budget) rather than NumCPU.
func ensurePool() {
	poolOnce.Do(func() {
		poolSize = runtime.GOMAXPROCS(0)
		if poolSize < 1 {
			poolSize = 1
		}
		poolTasks = make(chan *task, 4*poolSize)
		for w := 0; w < poolSize; w++ {
			go func() {
				for t := range poolTasks {
					t.run(t)
					wg := t.wg
					*t = task{} // drop references before pooling
					taskPool.Put(t)
					wg.Done()
				}
			}()
		}
	})
}

// dispatch splits [0, n) into one contiguous block per pool worker and
// blocks until all blocks complete. proto supplies the kernel and operands;
// it is copied into pooled tasks, never retained. Safe for concurrent use
// from many goroutines (the Go executor runs one matvec per worker at once).
func dispatch(n int, proto *task) {
	ensurePool()
	workers := poolSize
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Run inline, but still through a pooled copy: passing proto itself
		// into the indirect call would make it escape and cost the callers
		// their zero-allocation guarantee.
		t := taskPool.Get().(*task)
		*t = *proto
		t.lo, t.hi = 0, n
		t.run(t)
		*t = task{}
		taskPool.Put(t)
		return
	}
	wg := wgPool.Get().(*sync.WaitGroup)
	per := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		t := taskPool.Get().(*task)
		*t = *proto
		t.lo, t.hi = lo, hi
		t.wg = wg
		wg.Add(1)
		poolTasks <- t
	}
	wg.Wait()
	wgPool.Put(wg)
}

// accBuf wraps a reusable uint64 accumulator row. The resting invariant —
// every pooled backing array is all-zero — holds because the kernels only
// dirty acc[0:len) and always FlushAcc (which re-zeroes) before putAcc, so
// getAcc never needs to clear.
type accBuf struct{ s []uint64 }

var accPool = sync.Pool{New: func() any { return new(accBuf) }}

// getAcc returns a zeroed accumulator row of length n.
//
//avcc:noalloc
func getAcc(n int) *accBuf {
	b := accPool.Get().(*accBuf)
	if cap(b.s) < n {
		b.s = make([]uint64, n) //avcc:alloc-ok pool-miss refill: first use per size class only
	}
	b.s = b.s[:n]
	return b
}

// putAcc returns a row to the pool. The caller must have flushed it (all
// entries zero) — see accBuf.
//avcc:noalloc

func putAcc(b *accBuf) { accPool.Put(b) }
