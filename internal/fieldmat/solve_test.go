package fieldmat

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/field"
)

func identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

func TestInverseOfIdentity(t *testing.T) {
	inv, err := Inverse(f, identity(5))
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equal(identity(5)) {
		t.Fatal("I⁻¹ != I")
	}
}

func TestInverseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(12)
		var m *Matrix
		var inv *Matrix
		var err error
		for {
			m = Rand(f, rng, n, n)
			inv, err = Inverse(f, m)
			if err == nil {
				break
			}
			// A uniform random matrix is singular with probability ~1/q;
			// retry (and exercise the error path while we're at it).
			if !errors.Is(err, ErrSingular) {
				t.Fatal(err)
			}
		}
		if !MatMul(f, m, inv).Equal(identity(n)) {
			t.Fatal("m·m⁻¹ != I")
		}
		if !MatMul(f, inv, m).Equal(identity(n)) {
			t.Fatal("m⁻¹·m != I")
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m := FromRows([][]field.Elem{
		{1, 2, 3},
		{2, 4, 6}, // 2× row 0
		{5, 1, 2},
	})
	if _, err := Inverse(f, m); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestInverseZeroPivotNeedsSwap(t *testing.T) {
	// Leading zero forces a row swap inside Gauss-Jordan.
	m := FromRows([][]field.Elem{
		{0, 1},
		{1, 0},
	})
	inv, err := Inverse(f, m)
	if err != nil {
		t.Fatal(err)
	}
	if !MatMul(f, m, inv).Equal(identity(2)) {
		t.Fatal("swap-requiring inverse is wrong")
	}
}

func TestSolveMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(10)
		a := Rand(f, rng, n, n)
		if _, err := Inverse(f, a); err != nil {
			continue // singular draw; skip
		}
		x := f.RandVec(rng, n)
		b := MatVec(f, a, x)
		got, err := Solve(f, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !field.EqualVec(got, x) {
			t.Fatal("Solve did not recover x")
		}
	}
}

func TestSolveMatrixRecoversBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n, cols := 6, 9
	a := Rand(f, rng, n, n)
	if _, err := Inverse(f, a); err != nil {
		t.Skip("singular draw")
	}
	x := Rand(f, rng, n, cols)
	b := MatMul(f, a, x)
	got, err := SolveMatrix(f, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x) {
		t.Fatal("SolveMatrix did not recover X")
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]field.Elem{
		{1, 1},
		{2, 2},
	})
	if _, err := Solve(f, a, []field.Elem{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestSolveNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Solve(f, NewMatrix(2, 3), make([]field.Elem, 2))
}

func TestVandermondeInvertible(t *testing.T) {
	// Any square Vandermonde on distinct points must be invertible — this is
	// the algebraic fact the MDS "any K of N" property rests on.
	for _, n := range []int{2, 5, 9, 12} {
		pts := f.DistinctPoints(n, 3)
		v := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			p := field.Elem(1)
			for j := 0; j < n; j++ {
				v.Set(i, j, p)
				p = f.Mul(p, pts[i])
			}
		}
		if _, err := Inverse(f, v); err != nil {
			t.Fatalf("Vandermonde(%d) singular: %v", n, err)
		}
	}
}

func BenchmarkInverse9(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	m := Rand(f, rng, 9, 9)
	if _, err := Inverse(f, m); err != nil {
		b.Skip("singular draw")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Inverse(f, m)
	}
}
