package lint

// seedsource enforces reproducible entropy: every randomized component in
// the repo (straggler injection, load-harness arrival processes, Freivalds
// verification keys, fuzz corpora) draws from an explicitly seeded
// *rand.Rand so runs replay bit-for-bit from a logged seed. The math/rand
// package-level functions draw from the shared default source, which cannot
// be re-seeded per-component and (since Go 1.20) self-seeds randomly —
// using one silently breaks replayability.
//
// Constructors (rand.New, rand.NewSource, rand.NewZipf, and the v2
// rand.NewPCG / rand.NewChaCha8) are the fix, not the problem, and are
// allowed. Test files are exempt wholesale; a deliberate default-source use
// carries //avcc:rand-ok <reason> on its line.

import (
	"go/ast"
	"go/types"
	"strings"
)

// defaultSourceOK lists the math/rand functions that do NOT touch the
// default source: they construct independent, seedable generators.
var defaultSourceOK = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// SeedSource is the seeded-entropy analyzer.
var SeedSource = &Analyzer{
	Name: "seedsource",
	Doc:  "flag math/rand default-source usage outside test files; use a seeded rand.New(...)",
	Run:  runSeedSource,
}

func runSeedSource(pass *Pass) error {
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true // types (rand.Source, rand.Zipf) are fine
			}
			if defaultSourceOK[sel.Sel.Name] {
				return true
			}
			if pass.allowedAt(file, sel.Pos(), "rand-ok") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s draws from the unseeded default source; use a seeded rand.New(...) so runs replay (or annotate //avcc:rand-ok with a reason)",
				id.Name, sel.Sel.Name)
			return true
		})
	}
	return nil
}
