// Package seedsource is the violation corpus for the seedsource analyzer.
package seedsource

import "math/rand"

// BadJitter draws from the shared default source: not replayable.
func BadJitter() int {
	return rand.Intn(100) // want "draws from the unseeded default source"
}

// BadShuffle has the same problem through a different entry point.
func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "draws from the unseeded default source"
}

// GoodSeeded replays bit-for-bit from a logged seed. The constructors and
// the methods on the seeded generator are the fix, not the problem.
func GoodSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}

// GoodAnnotated documents a deliberate default-source use in place.
func GoodAnnotated() int {
	return rand.Int() //avcc:rand-ok one-shot demo entropy, never replayed
}

// Type and interface references are not draws.
var _ rand.Source
