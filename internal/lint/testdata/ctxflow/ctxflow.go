// Package ctxflow is the violation corpus for the ctxflow analyzer. The
// contract types come from the real cluster package so the implements-check
// runs against the genuine interfaces.
package ctxflow

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/field"
)

// DetachedExec implements cluster.Executor but re-roots its context,
// severing the master's per-round deadline, and never consults ctx at all.
type DetachedExec struct{}

func (DetachedExec) RunRound(ctx context.Context, key string, input []field.Elem, batch, iter int, active []int) []cluster.Result { // want "never uses its ctx parameter"
	rctx := context.Background() // want "severs the caller's cancellation chain"
	_ = rctx
	return nil
}

// DropExec discards its context outright.
type DropExec struct{}

func (DropExec) RunRound(_ context.Context, key string, input []field.Elem, batch, iter int, active []int) []cluster.Result { // want "discards its context.Context parameter"
	return nil
}

// ThreadedExec threads its context correctly. Clean.
type ThreadedExec struct{}

func (ThreadedExec) RunRound(ctx context.Context, key string, input []field.Elem, batch, iter int, active []int) []cluster.Result {
	select {
	case <-ctx.Done():
		return nil
	default:
	}
	return nil
}

// fetch is not a contract method, but rule 1 still applies: once a function
// receives a ctx it must not re-root.
func fetch(ctx context.Context) error {
	c2 := context.TODO() // want "severs the caller's cancellation chain"
	_ = c2
	<-ctx.Done()
	return nil
}

// relay passes a nil Context down a ctx-carrying chain.
func relay(ctx context.Context) {
	use(nil) // want "nil Context passed"
	use(ctx)
}

func use(ctx context.Context) { _ = ctx }

// spawnRound deliberately detaches: the shared round must outlive any one
// caller, and says so in place.
func spawnRound(ctx context.Context) context.Context {
	_ = ctx
	rctx := context.Background() //avcc:ctx-ok shared round outlives any single caller by design
	return rctx
}

// freestanding has no ctx parameter, so Background here is the legitimate
// root of a new chain. Clean.
func freestanding() context.Context {
	return context.Background()
}
