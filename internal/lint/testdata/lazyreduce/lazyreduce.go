// Package lazyreduce is the violation corpus for the lazyreduce analyzer.
// It mirrors the field package's idioms on a self-contained mini Field so
// the corpus exercises the analyzer's structural rules, not the real
// kernels (the real tree is gated separately by TestTreeIsClean).
package lazyreduce

type Field struct {
	q         uint64
	lazyBatch int
}

func (f *Field) barrett(x uint64) uint64 { return x % f.q }

// Reduce canonicalises a single raw value.
func (f *Field) Reduce(x uint64) uint64 { return x % f.q }

// ReduceAcc partially reduces every accumulator entry.
func (f *Field) ReduceAcc(acc []uint64) {
	for i := range acc {
		acc[i] %= f.q
	}
}

// LazyBatch is the documented accumulation budget.
func (f *Field) LazyBatch() int { return f.lazyBatch }

// AXPYLazy adds one raw product to every accumulator entry; the CALLER owns
// the budget. The per-entry accumulation advances with the loop, so the
// analyzer accepts the body, and acc is a parameter, so handing it back raw
// is the contract rather than an escape.
func (f *Field) AXPYLazy(acc []uint64, c uint64, a []uint64) {
	for i, ai := range a {
		acc[i] += c * ai
	}
}

// BadDot accumulates raw products over an arbitrary-length input with no
// interleaved reduction and no batch-derived bound.
func BadDot(f *Field, a, b []uint64) uint64 {
	var s uint64
	for i := range a {
		s += a[i] * b[i] // want "raw uint64 accumulation in BadDot"
	}
	return s // want "raw .unreduced. uint64 accumulator s escapes exported function BadDot"
}

// BatchedDot mirrors the real kernel: tiles clamped to the batch budget,
// one Barrett reduction per tile. Clean.
func BatchedDot(f *Field, a, b []uint64) uint64 {
	var s uint64
	for len(a) > 0 {
		n := len(a)
		if n > f.lazyBatch {
			n = f.lazyBatch
		}
		ah, bh := a[:n], b[:n]
		for i, ai := range ah {
			s += ai * bh[i]
		}
		s = f.barrett(s)
		a, b = a[n:], b[n:]
	}
	return s
}

// StraddleDot runs exactly one product past the batch budget: the overflow
// proof is void on the final iteration, so the bound does not count.
func StraddleDot(f *Field, a, b []uint64) uint64 {
	var s uint64
	for j := 0; j < f.lazyBatch+1; j++ {
		s += a[j] * b[j] // want "raw uint64 accumulation in StraddleDot"
	}
	return f.barrett(s)
}

// ExactDot sits exactly at the budget — the largest structurally safe tile.
func ExactDot(f *Field, a, b []uint64) uint64 {
	var s uint64
	for j := 0; j < f.lazyBatch; j++ {
		s += a[j] * b[j]
	}
	return f.barrett(s)
}

// MinClampDot derives its bound through min(), which can only shrink it.
func MinClampDot(f *Field, a, b []uint64) uint64 {
	var s uint64
	n := min(len(a), f.LazyBatch())
	for j := 0; j < n; j++ {
		s += a[j] * b[j]
	}
	return f.barrett(s)
}

// LeakAcc bounds its loop correctly but returns the accumulator raw.
func LeakAcc(f *Field, a, b []uint64) uint64 {
	var s uint64
	n := min(len(a), f.LazyBatch())
	for j := 0; j < n; j++ {
		s += a[j] * b[j]
	}
	return s // want "raw .unreduced. uint64 accumulator s escapes exported function LeakAcc"
}

// leakAccInternal hands a raw accumulator to package-internal callers, who
// own the remaining budget; unexported escapes are allowed.
func leakAccInternal(f *Field, a, b []uint64) uint64 {
	var s uint64
	n := min(len(a), f.LazyBatch())
	for j := 0; j < n; j++ {
		s += a[j] * b[j]
	}
	return s
}

// BadCombine stacks one raw product onto every accumulator entry per
// source, with nothing limiting the source count.
func BadCombine(f *Field, acc []uint64, coeffs []uint64, srcs [][]uint64) {
	for i, src := range srcs {
		f.AXPYLazy(acc, coeffs[i], src) // want "raw uint64 accumulation in BadCombine"
	}
}

// GoodCombine interleaves a partial reduction per source. Clean.
func GoodCombine(f *Field, acc []uint64, coeffs []uint64, srcs [][]uint64) {
	for i, src := range srcs {
		f.AXPYLazy(acc, coeffs[i], src)
		f.ReduceAcc(acc)
	}
}

// CallerBounded is hand-verified: its caller guarantees len(srcs) is at
// most LazyBatch (the fused-combine contract), so it opts out explicitly.
//
//avcc:lazy-ok caller enforces len(srcs) <= LazyBatch before dispatching here
func CallerBounded(f *Field, acc []uint64, coeffs []uint64, srcs [][]uint64) {
	for i, src := range srcs {
		for j, v := range src {
			acc[j] += coeffs[i] * v
		}
	}
}
