// Package typederr is the violation corpus for the typederr analyzer. The
// error types mirror the module's own (the loader assigns this corpus a
// lintcheck/ pseudo-path, which the analyzer treats as module-local).
package typederr

import (
	"errors"
	"fmt"
)

// NTTSizeError mirrors the module's typed errors.
type NTTSizeError struct{ Size int }

func (e *NTTSizeError) Error() string { return fmt.Sprintf("bad ntt size %d", e.Size) }

// ErrQueueFull mirrors the module's exported sentinels.
var ErrQueueFull = errors.New("queue full")

// BadAssert stops matching the moment anyone wraps the error.
func BadAssert(err error) bool {
	_, ok := err.(*NTTSizeError) // want "use errors.As"
	return ok
}

// BadTypeSwitch has the same blindness, one case at a time.
func BadTypeSwitch(err error) int {
	switch err.(type) {
	case *NTTSizeError: // want "use errors.As"
		return 1
	case nil:
		return 0
	}
	return -1
}

// BadCompare misses fmt.Errorf("...: %w", ErrQueueFull).
func BadCompare(err error) bool {
	return err == ErrQueueFull // want "use errors.Is"
}

// BadSwitch compiles to the same == comparison.
func BadSwitch(err error) int {
	switch err {
	case ErrQueueFull: // want "use errors.Is"
		return 1
	case nil:
		return 0
	}
	return -1
}

// OKNil: nil comparisons are exact by definition.
func OKNil(err error) bool {
	return err == nil || err != nil
}

// OKIsAs is the fixed idiom.
func OKIsAs(err error) (int, bool) {
	var sizeErr *NTTSizeError
	if errors.As(err, &sizeErr) {
		return sizeErr.Size, true
	}
	return 0, errors.Is(err, ErrQueueFull)
}

// OKForeignAssert asserts to an interface the module does not own; the
// net-style Timeout check is outside the contract.
func OKForeignAssert(err error) bool {
	t, ok := err.(interface{ Timeout() bool })
	return ok && t.Timeout()
}

// OKConcrete asserts a non-error value; wrapping cannot hide anything.
func OKConcrete(v any) bool {
	_, ok := v.(*fmt.Stringer)
	return ok
}
