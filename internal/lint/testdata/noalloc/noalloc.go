// Package noalloc is the violation corpus for the noalloc analyzer.
package noalloc

type vec struct{ buf []uint64 }

func sink(any)   {}
func helper()    {}
func take(n int) {}

// BadMake allocates a fresh buffer on the hot path.
//
//avcc:noalloc
func BadMake(n int) {
	buf := make([]uint64, n) // want "make allocates"
	_ = buf
}

// BadAppend may grow and reallocate.
//
//avcc:noalloc
func BadAppend(dst []uint64, x uint64) []uint64 {
	return append(dst, x) // want "append may grow and reallocate"
}

// BadNew heap-allocates a struct.
//
//avcc:noalloc
func BadNew() *vec {
	return new(vec) // want "new allocates"
}

// BadClosure captures n into a heap closure.
//
//avcc:noalloc
func BadClosure(n int) func() int {
	f := func() int { return n } // want "func literal may allocate a closure"
	return f
}

// BadGo spawns a goroutine.
//
//avcc:noalloc
func BadGo() {
	go helper() // want "go statement allocates a goroutine"
}

// BadBox wraps a uint64 in an interface word.
//
//avcc:noalloc
func BadBox(v uint64) {
	sink(v) // want "boxing uint64 into .* allocates"
}

// BadCompositeLits allocate backing stores.
//
//avcc:noalloc
func BadCompositeLits() {
	p := &vec{}            // want "&composite literal may allocate"
	s := []uint64{1, 2, 3} // want "slice literal allocates"
	_, _ = p, s
}

// BadConcat builds a fresh string.
//
//avcc:noalloc
func BadConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// BadConvert copies the string into a fresh byte slice.
//
//avcc:noalloc
func BadConvert(s string) []byte {
	return []byte(s) // want "conversion between string and byte/rune slice allocates"
}

// OKArithmetic touches no allocator.
//
//avcc:noalloc
func OKArithmetic(a, b []uint64) uint64 {
	var s uint64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// OKConstBox passes constants: the compiler materialises them statically.
//
//avcc:noalloc
func OKConstBox() {
	sink(42)
	sink("static")
}

// OKPointerBox passes a pointer-shaped value: stored inline in the
// interface word, no box.
//
//avcc:noalloc
func OKPointerBox(v *vec) {
	sink(v)
}

// OKEscapeHatch documents a deliberate cold-path allocation in place.
//
//avcc:noalloc
func OKEscapeHatch(n int) []uint64 {
	//avcc:alloc-ok pool-miss refill; cold path, measured 0 allocs/op steady-state
	buf := make([]uint64, n)
	return buf
}

// FreeToAlloc carries no contract; nothing here is flagged.
func FreeToAlloc(n int) []uint64 {
	return make([]uint64, n)
}
