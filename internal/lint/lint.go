// Package lint is the repo's machine-checked invariant suite: custom static
// analyzers enforcing the arithmetic, allocation, concurrency, error-handling
// and entropy contracts the optimized kernels and the round machinery are
// built on (DESIGN.md §13). It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer/Pass/Diagnostic, one Run per
// package — so the suite can migrate onto the upstream framework mechanically
// if the dependency policy ever admits it; until then the loader (load.go)
// and the multichecker (cmd/avcclint) stand in on the standard library alone.
//
// Analyzers:
//
//	lazyreduce — Barrett lazy-reduction overflow bounds in the field kernels
//	noalloc    — //avcc:noalloc functions contain no heap-allocating constructs
//	ctxflow    — context.Context threads through every ctx-carrying call chain
//	typederr   — typed errors are matched with errors.Is/errors.As, never
//	             direct assertions or == on possibly-wrapped values
//	seedsource — no math/rand default-source entropy outside tests
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Run is invoked once per loaded
// package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	// Scope restricts which import paths the multichecker applies the
	// analyzer to; nil means every loaded package. Tests bypass Scope by
	// invoking Run directly.
	Scope func(pkgPath string) bool
	Run   func(*Pass) error
}

// Diagnostic is one finding, positioned in the loaded file set.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass couples one analyzer invocation with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic

	directives map[*ast.File]map[int][]string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run executes the analyzer over pkg and returns its findings sorted by
// position.
func (a *Analyzer) RunPackage(pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %v", a.Name, err)
	}
	sort.Slice(pass.diags, func(i, j int) bool { return pass.diags[i].Pos < pass.diags[j].Pos })
	return pass.diags, nil
}

// ---- directive comments ----
//
// The suite's annotations are machine-readable comments in the //avcc:
// namespace:
//
//	//avcc:noalloc   (function doc)  — the function promises zero
//	                                   heap-allocating constructs
//	//avcc:alloc-ok <reason>  (line) — exempts the allocating construct on
//	                                   this or the next line inside a noalloc
//	                                   function (cold error paths, pool-miss
//	                                   refills, proven-non-escaping literals)
//	//avcc:lazy-ok <reason>   (doc or line) — exempts a hand-verified kernel
//	                                   or loop from the lazyreduce bound proof
//	//avcc:ctx-ok <reason>    (line) — exempts a deliberate context detach
//
// A line directive applies to the source line it sits on and to the line
// immediately below it (so it can ride above a flagged statement).

// directive returns the //avcc: directive name of a comment ("noalloc",
// "alloc-ok", ...) or "".
func directive(c *ast.Comment) string {
	text, ok := strings.CutPrefix(c.Text, "//avcc:")
	if !ok {
		return ""
	}
	name, _, _ := strings.Cut(text, " ")
	return strings.TrimSpace(name)
}

// funcDirective reports whether fn's doc comment carries the named
// //avcc: directive.
func funcDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if directive(c) == name {
			return true
		}
	}
	return false
}

// lineDirectives lazily builds, per file, the map from line number to the
// //avcc: directives present on that line.
func (p *Pass) lineDirectives(file *ast.File) map[int][]string {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]string)
	}
	if m, ok := p.directives[file]; ok {
		return m
	}
	m := make(map[int][]string)
	for _, group := range file.Comments {
		for _, c := range group.List {
			if d := directive(c); d != "" {
				line := p.Fset.Position(c.Pos()).Line
				m[line] = append(m[line], d)
			}
		}
	}
	p.directives[file] = m
	return m
}

// allowedAt reports whether a //avcc:<name> directive covers pos: same line,
// or the line directly above.
func (p *Pass) allowedAt(file *ast.File, pos token.Pos, name string) bool {
	m := p.lineDirectives(file)
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range m[l] {
			if d == name {
				return true
			}
		}
	}
	return false
}

// ---- shared type helpers ----

// isUint64 reports whether t's underlying type is uint64 (field.Elem is a
// uint64 alias, so raw accumulators and canonical elements share it).
func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isErrorInterface reports whether t is the universe error interface.
func isErrorInterface(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeName returns the bare selector or identifier name of a call's
// function expression ("Reduce" for f.Reduce(...) and for Reduce(...)).
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// exprMentions reports whether any identifier inside e resolves (via Info)
// to one of the given objects.
func exprMentions(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	if e == nil || len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// pathIn reports whether pkgPath is one of the listed import paths.
func pathIn(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(pkgPath string) bool { return set[pkgPath] }
}
