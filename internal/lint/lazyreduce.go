package lint

// lazyreduce encodes the Barrett lazy-reduction overflow proof (DESIGN.md §7,
// §13) as a static check. The arithmetic core accumulates raw products of
// canonical elements in plain uint64s; soundness requires that at most
// LazyBatch = ⌊(2⁶³−1)/(q−1)²⌋ products join an accumulator entry before a
// reduction, because (q−1) + LazyBatch·(q−1)² < 2⁶⁴. The kernels make that
// bound structural — tile loops are sized from f.lazyBatch — and this
// analyzer rejects any accumulation loop where the structure is missing:
//
//	rule 1 (loop bound): a loop that adds raw products into an accumulator
//	entry that does not advance with the loop must either contain an
//	interleaved reduction (Reduce/ReduceAcc/FlushAcc/Flush/barrett) or be
//	bounded by an expression derived from LazyBatch.
//
//	rule 2 (escape): an exported function must not return a locally
//	accumulated raw uint64 (scalar or row) that was never reduced — raw
//	accumulators may only cross exported boundaries as explicit parameters,
//	where the caller owns the budget (AXPYLazy's contract).
//
// Hand-verified kernels whose bound lives at the call site (the fused
// three-destination combine, whose caller enforces len(srcs) ≤ LazyBatch)
// opt out with //avcc:lazy-ok and a stated reason.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// reducerNames are the calls that bring an accumulator back to canonical
// form. LazyAcc.AXPY is deliberately absent: it guards itself (budget
// tracking), so it never appears as a raw accumulation in the first place.
var reducerNames = map[string]bool{
	"Reduce":    true,
	"ReduceAcc": true,
	"FlushAcc":  true,
	"Flush":     true,
	"barrett":   true,
}

// LazyReduce is the lazy-reduction bound analyzer.
var LazyReduce = &Analyzer{
	Name: "lazyreduce",
	Doc:  "flag raw uint64 product accumulation that can exceed the LazyBatch overflow bound",
	Scope: pathIn(
		"repro/internal/field",
		"repro/internal/poly",
		"repro/internal/mds",
		"repro/internal/fieldmat",
	),
	Run: runLazyReduce,
}

// rawSite is one raw-accumulation statement: a `+=` of a product into a
// uint64 target, or an AXPYLazy call (one raw product into every entry of
// its accumulator row).
type rawSite struct {
	node ast.Node
	// base is the accumulator's root object (s in `s += a*b`, acc in
	// `acc[i] += ...` and `f.AXPYLazy(acc, ...)`); nil when unresolvable.
	base types.Object
	// index is the index expression of an indexed target, nil for scalars
	// and AXPYLazy rows.
	index ast.Expr
}

func runLazyReduce(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if funcDirective(fn, "lazy-ok") {
				continue
			}
			tainted := batchTainted(pass, fn.Body)
			sites := rawSites(pass, fn.Body)
			checkLoopBounds(pass, file, fn, sites, tainted)
			if fn.Name.IsExported() {
				checkRawEscape(pass, fn, sites)
			}
		}
	}
	return nil
}

// isBatchSelector reports whether e is exactly the batch bound itself:
// the f.lazyBatch field, the LazyBatch method value, or a LazyBatch()
// method call. Arithmetic around the bound (lazyBatch+1, 2*lazyBatch) is
// deliberately NOT a bound — a loop straddling the budget by even one
// product voids the overflow proof.
func isBatchSelector(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name == "lazyBatch" || e.Sel.Name == "LazyBatch"
	case *ast.CallExpr:
		return isBatchSelector(e.Fun)
	}
	return false
}

// batchTainted computes the set of objects whose value is AT MOST the
// field's lazy batch bound, by fixpoint over the function's assignments.
// Taint flows only through clamping shapes — exact copies, slices whose
// high bound is tainted, and min() with a tainted argument — never through
// enlarging arithmetic, so a tainted loop bound really is ≤ LazyBatch.
func batchTainted(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	// taintedExpr: exactly the bound, or exactly a tainted identifier.
	taintedExpr := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		e = ast.Unparen(e)
		if isBatchSelector(e) {
			return true
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.Uses[id]
		return obj != nil && tainted[obj]
	}
	// seedIn: shapes whose value cannot exceed a tainted input.
	seedIn := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			return taintedExpr(e.High) // len(x[l:t]) ≤ t
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "min" {
				if _, builtin := pass.Info.Uses[id].(*types.Builtin); builtin {
					for _, arg := range e.Args {
						if taintedExpr(arg) {
							return true
						}
					}
				}
			}
			return taintedExpr(e)
		default:
			return taintedExpr(e)
		}
	}
	taintLHS := func(lhs ast.Expr) bool {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		if obj == nil || tainted[obj] {
			return false
		}
		tainted[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if seedIn(rhs) && taintLHS(n.Lhs[i]) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, v := range n.Values {
						if seedIn(v) && taintLHS(n.Names[i]) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return tainted
}

// rawSites collects the raw-accumulation statements in a function body.
func rawSites(pass *Pass, body *ast.BlockStmt) []rawSite {
	var sites []rawSite
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN || len(n.Lhs) != 1 {
				return true
			}
			lhs := n.Lhs[0]
			t := pass.Info.Types[lhs].Type
			if t == nil || !isUint64(t) || !containsMul(n.Rhs[0]) {
				return true
			}
			site := rawSite{node: n, base: baseObject(pass, lhs)}
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				site.index = idx.Index
			}
			sites = append(sites, site)
		case *ast.CallExpr:
			if calleeName(n) == "AXPYLazy" && len(n.Args) > 0 {
				sites = append(sites, rawSite{node: n, base: baseObject(pass, n.Args[0])})
			}
		}
		return true
	})
	return sites
}

// containsMul reports whether e contains an integer multiplication — the
// signature of a raw product joining an accumulator.
func containsMul(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.MUL {
			found = true
		}
		return !found
	})
	return found
}

// baseObject resolves the root identifier of an lvalue chain
// (acc, acc[i], acc.a0[i], (acc)[i] ...) to its object.
func baseObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return pass.Info.Defs[x]
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// loopInfo is one enclosing loop on the walk stack.
type loopInfo struct {
	node ast.Node
	vars map[types.Object]bool
}

// checkLoopBounds enforces rule 1: walk every raw site's chain of enclosing
// loops from the inside out; each loop whose iteration re-accumulates into
// the same entry must carry a reduction, a LazyBatch-derived bound, or an
// explicit //avcc:lazy-ok.
func checkLoopBounds(pass *Pass, file *ast.File, fn *ast.FuncDecl, sites []rawSite, tainted map[types.Object]bool) {
	if len(sites) == 0 {
		return
	}
	siteAt := make(map[ast.Node]*rawSite, len(sites))
	for i := range sites {
		siteAt[sites[i].node] = &sites[i]
	}
	var stack []loopInfo
	var walk func(root ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			switch l := n.(type) {
			case *ast.ForStmt:
				stack = append(stack, loopInfo{node: l, vars: loopVars(pass, l)})
				// Header expressions (init/cond/post) are not accumulation
				// context; only the body runs per iteration.
				walk(l.Body)
				stack = stack[:len(stack)-1]
				return false
			case *ast.RangeStmt:
				stack = append(stack, loopInfo{node: l, vars: loopVars(pass, l)})
				walk(l.Body)
				stack = stack[:len(stack)-1]
				return false
			}
			if site, ok := siteAt[n]; ok {
				checkSite(pass, file, fn, site, stack, tainted)
			}
			return true
		})
	}
	walk(fn.Body)
}

// checkSite audits one raw accumulation against its enclosing loops
// (innermost last in stack). Loops whose iteration advances the target
// entry contribute one accumulation step per ENTRY, not per entry-visit,
// and are exempt; the first enclosing loop that re-visits the same entry
// must be guarded. A loop containing a reduction call also guards every
// loop around it (the reduction runs at least once per outer iteration),
// so the audit stops at the first reducing level.
func checkSite(pass *Pass, file *ast.File, fn *ast.FuncDecl, site *rawSite, stack []loopInfo, tainted map[types.Object]bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		l := stack[i]
		if site.index != nil && exprMentions(pass.Info, site.index, l.vars) {
			// The accumulator entry advances with this loop: one raw
			// product per entry per full sweep. Outer loops can still
			// revisit entries, so keep walking out.
			continue
		}
		body := loopBody(l.node)
		if containsReducer(body) {
			return
		}
		if loopBatchBounded(pass, l.node, tainted) {
			continue
		}
		if pass.allowedAt(file, l.node.Pos(), "lazy-ok") {
			continue
		}
		pass.Reportf(site.node.Pos(),
			"raw uint64 accumulation in %s can exceed the LazyBatch overflow bound: the enclosing loop (line %d) has no interleaved Reduce/ReduceAcc/FlushAcc and no LazyBatch-derived bound",
			fn.Name.Name, pass.Fset.Position(l.node.Pos()).Line)
		return
	}
}

// loopBody returns a loop's body block.
func loopBody(loop ast.Node) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// containsReducer reports whether the block calls one of the canonicalising
// reductions.
func containsReducer(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && reducerNames[calleeName(call)] {
			found = true
		}
		return !found
	})
	return found
}

// loopBatchBounded reports whether the loop's trip count is structurally
// ≤ LazyBatch: `for i := 0; i < bound; i++` with bound exactly the batch
// selector or a batch-tainted variable, or `range x` over a batch-tainted
// slice. Strict-less-than and exact expressions only — `i < lazyBatch+1`
// or `i <= lazyBatch` straddle the budget and stay flagged.
func loopBatchBounded(pass *Pass, loop ast.Node, tainted map[types.Object]bool) bool {
	exact := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		e = ast.Unparen(e)
		if isBatchSelector(e) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && tainted[obj] {
				return true
			}
		}
		return false
	}
	switch l := loop.(type) {
	case *ast.ForStmt:
		cond, ok := l.Cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		return cond.Op == token.LSS && exact(cond.Y) ||
			cond.Op == token.GTR && exact(cond.X)
	case *ast.RangeStmt:
		return exact(l.X)
	}
	return false
}

// checkRawEscape enforces rule 2: an exported function must not return a
// locally accumulated raw uint64 value that no reduction ever touched.
// Parameters are exempt — a raw accumulator received from outside is the
// caller's budget (the AXPYLazy contract) — and so is any local that appears
// as an argument to a reduction call anywhere in the function.
func checkRawEscape(pass *Pass, fn *ast.FuncDecl, sites []rawSite) {
	locals := make(map[types.Object]bool)
	for _, site := range sites {
		if site.base == nil {
			continue
		}
		v, ok := site.base.(*types.Var)
		if !ok || isParam(fn, site.base) {
			continue
		}
		locals[v] = true
	}
	if len(locals) == 0 {
		return
	}
	// Drop every accumulator a reduction call references.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !reducerNames[calleeName(call)] {
			return true
		}
		for _, arg := range call.Args {
			if obj := baseObject(pass, arg); obj != nil {
				delete(locals, obj)
			}
		}
		return true
	})
	if len(locals) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if obj := baseObject(pass, res); obj != nil && locals[obj] {
				pass.Reportf(ret.Pos(),
					"raw (unreduced) uint64 accumulator %s escapes exported function %s: reduce it before returning",
					obj.Name(), fn.Name.Name)
				delete(locals, obj) // one report per accumulator
			}
		}
		return true
	})
}

// isParam reports whether obj is one of fn's parameters, results or
// receiver (declared in the signature rather than the body).
func isParam(fn *ast.FuncDecl, obj types.Object) bool {
	pos := obj.Pos()
	return pos >= fn.Type.Pos() && pos < fn.Type.End() ||
		fn.Recv != nil && pos >= fn.Recv.Pos() && pos < fn.Recv.End()
}

// loopVars returns the objects a loop advances each iteration: range
// key/value variables, and identifiers assigned in a for statement's init
// and post clauses.
func loopVars(pass *Pass, loop ast.Node) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	switch l := loop.(type) {
	case *ast.RangeStmt:
		add(l.Key)
		add(l.Value)
	case *ast.ForStmt:
		for _, clause := range []ast.Stmt{l.Init, l.Post} {
			switch s := clause.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					add(lhs)
				}
			case *ast.IncDecStmt:
				add(s.X)
			}
		}
	}
	return vars
}
