package lint

// All returns the full analyzer suite in stable (report) order.
func All() []*Analyzer {
	return []*Analyzer{
		LazyReduce,
		NoAlloc,
		CtxFlow,
		TypedErr,
		SeedSource,
	}
}
