package lint

// Package loading without golang.org/x/tools: the analyzers need fully
// type-checked syntax trees, which go/packages would normally provide, but
// this module is dependency-free by policy (ROADMAP: the container bakes no
// module proxy). The Loader below reimplements the slice of go/packages the
// multichecker needs on the standard library alone:
//
//   - one `go list -deps -json` invocation resolves import paths, build-tag
//     file selection and dependency metadata for an arbitrary pattern set;
//   - every package, including standard-library dependencies, is parsed and
//     type-checked from source in dependency order (the same strategy as the
//     standard library's own go/internal/srcimporter, which the Go project
//     tests against the entire std tree);
//   - the stdlib's vendored packages (net → golang.org/x/net/...) are
//     re-mapped through the `vendor/` prefix the go command reports them
//     under.
//
// Target packages (the ones analyzers run on) keep full *ast.File syntax
// with comments — the directive system (//avcc:noalloc, //avcc:alloc-ok,
// //avcc:lazy-ok, //avcc:ctx-ok) is comment-driven — and a fully populated
// types.Info. Dependencies are type-checked without comments or Info, which
// keeps a whole-tree load under a few seconds.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one fully loaded target package, ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listMeta is the subset of `go list -json` output the loader consumes.
type listMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *listError
}

type listError struct {
	Err string
}

// Loader resolves, parses and type-checks packages. It caches dependency
// type information, so one Loader amortises across many Load/LoadDir calls
// (the analyzer test suite shares a single process-wide instance). Safe for
// use from one goroutine at a time.
type Loader struct {
	// ModDir is the directory `go list` runs in; the zero value uses the
	// current working directory (any directory inside the module works).
	ModDir string

	fset *token.FileSet
	mu   sync.Mutex
	meta map[string]*listMeta
	deps map[string]*types.Package
}

// NewLoader returns a Loader rooted at modDir ("" = current directory).
func NewLoader(modDir string) *Loader {
	return &Loader{
		ModDir: modDir,
		fset:   token.NewFileSet(),
		meta:   make(map[string]*listMeta),
		deps:   make(map[string]*types.Package),
	}
}

// goList runs `go list -deps -json` on the given patterns and merges the
// metadata into the cache, returning the import paths matched directly by
// the patterns (DepOnly = false) in listing order.
func (l *Loader) goList(patterns ...string) ([]string, error) {
	args := append([]string{
		"list", "-e", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,Standard,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var targets []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		m := new(listMeta)
		if err := dec.Decode(m); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if m.Error != nil {
			return nil, fmt.Errorf("lint: go list %s: %s", m.ImportPath, m.Error.Err)
		}
		if _, seen := l.meta[m.ImportPath]; !seen {
			l.meta[m.ImportPath] = m
		}
		if !m.DepOnly {
			targets = append(targets, m.ImportPath)
		}
	}
	return targets, nil
}

// Import implements types.Importer over the metadata cache, type-checking
// dependencies from source on first use. Unknown paths trigger a fresh
// `go list` resolution (the LoadDir path, whose imports were never listed).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	m, ok := l.meta[path]
	if !ok {
		// The standard library vendors golang.org/x dependencies; the go
		// command lists them under a vendor/ prefix while their importers
		// name the unprefixed path.
		if v, okv := l.meta["vendor/"+path]; okv {
			m = v
		} else {
			if _, err := l.goList(path); err != nil {
				return nil, err
			}
			if m, ok = l.meta[path]; !ok {
				if m, ok = l.meta["vendor/"+path]; !ok {
					return nil, fmt.Errorf("lint: package %q not found", path)
				}
			}
		}
	}
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(m.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing dependency %s: %v", path, err)
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		// Dependencies occasionally carry platform-conditional code paths
		// the pure-Go file set cannot fully resolve; soft errors in deps
		// must not block analysis of the target packages.
		Error: func(error) {},
	}
	pkg, err := conf.Check(m.ImportPath, l.fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("lint: type-checking dependency %s: %v", path, err)
	}
	l.deps[path] = pkg
	if m.ImportPath != path {
		l.deps[m.ImportPath] = pkg
	}
	return pkg, nil
}

// newInfo returns a fully populated types.Info for a target package.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// checkTarget parses (with comments) and type-checks one target package.
func (l *Loader) checkTarget(path, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name),
			nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	var errs []error
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		if len(errs) > 0 {
			err = errs[0]
		}
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load resolves the patterns and returns every directly matched package
// fully loaded, sorted by import path. Dependencies are type-checked as
// needed but not returned.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	targets, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	sort.Strings(targets)
	pkgs := make([]*Package, 0, len(targets))
	for _, path := range targets {
		m := l.meta[path]
		if len(m.GoFiles) == 0 {
			continue
		}
		pkg, err := l.checkTarget(m.ImportPath, m.Dir, m.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the single package rooted at dir — a directory of Go files
// that need not be visible to `go list` (the analyzer test corpus lives
// under testdata/, which the go tool ignores by design). Files are listed
// directly; imports resolve through the shared dependency cache.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, m := range matches {
		name := filepath.Base(m)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		goFiles = append(goFiles, name)
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(goFiles)
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.checkTarget("lintcheck/"+filepath.Base(abs), abs, goFiles)
}
