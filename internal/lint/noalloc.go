package lint

// noalloc enforces the zero-allocation contract of the hot kernels: a
// function whose doc comment carries //avcc:noalloc (MatMulInto, MatVecInto,
// EncodeMatrixInto, DecodeVectorsInto, FusedCombineInto, the NTT transforms,
// and the leaf vector kernels they compose) must contain no heap-allocating
// construct:
//
//   - make / new / append (growth can reallocate)
//   - func literals (captured variables force a heap closure when it escapes)
//   - go statements (a goroutine is an allocation)
//   - &CompositeLit and slice/map composite literals
//   - string concatenation and string<->[]byte/[]rune conversions
//   - implicit boxing of a non-pointer-shaped value into an interface
//     (constants are exempt: the compiler materialises them statically)
//
// Deliberate exceptions — cold error paths, pool-miss refills, first-call
// lazies, literals proven by escape analysis to stay on the stack — are
// annotated in place with //avcc:alloc-ok <reason>, which exempts the line
// it sits on and the line below. The committed BENCH_kernels.json allocs/op
// column and the CI alloc gate (TestAllocGate) measure the same contract
// dynamically; this analyzer pins it at review time, before a benchmark
// ever runs.
//
// The check is intraprocedural by design: each annotated function vouches
// for its own body, and the helpers it composes (matMulRows, Dot, AXPYLazy,
// the pool plumbing) carry their own annotations.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc is the //avcc:noalloc contract analyzer.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "flag heap-allocating constructs inside //avcc:noalloc functions",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcDirective(fn, "noalloc") {
				continue
			}
			checkNoAlloc(pass, file, fn)
		}
	}
	return nil
}

func checkNoAlloc(pass *Pass, file *ast.File, fn *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		if !pass.allowedAt(file, pos, "alloc-ok") {
			msg := "//avcc:noalloc function " + fn.Name.Name + ": " + format
			pass.Reportf(pos, msg, args...)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCallAlloc(pass, n, report)
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.FuncLit:
			report(n.Pos(), "func literal may allocate a closure")
			return false // don't double-report the literal's own body
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal may allocate")
				}
			}
		case *ast.CompositeLit:
			if t := pass.Info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "%s literal allocates", typeKindName(t))
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.Info.Types[n].Type; t != nil && isString(t) {
					report(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			checkAssignBoxing(pass, n, report)
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, fn, n, report)
		}
		return true
	})
}

// checkCallAlloc flags allocating builtins, allocating conversions, and
// interface boxing at call boundaries.
func checkCallAlloc(pass *Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				report(call.Pos(), "make allocates")
				return
			case "new":
				report(call.Pos(), "new allocates")
				return
			case "append":
				report(call.Pos(), "append may grow and reallocate")
				// fall through: spread arguments still box below
			}
		}
	}
	// Conversions: string([]byte), []byte(string), []rune(string), string
	// builds allocate; numeric conversions don't.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.Info.Types[call.Args[0]].Type
		if to != nil && from != nil && allocatingConversion(to, from) {
			report(call.Pos(), "conversion between string and byte/rune slice allocates")
		}
		return
	}
	// Interface boxing of call arguments.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call)
		if pt == nil {
			continue
		}
		checkBoxing(pass, arg, pt, report)
	}
}

// callSignature resolves the *types.Signature of a call, nil for builtins,
// conversions and unresolvable callees.
func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramTypeAt returns the declared parameter type receiving argument i,
// unwrapping the variadic element type.
func paramTypeAt(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if call.Ellipsis.IsValid() {
			return params.At(n - 1).Type() // passed as a slice, no per-arg boxing
		}
		s, ok := params.At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return s.Elem()
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

// checkAssignBoxing flags non-pointer-shaped values assigned into
// interface-typed destinations.
func checkAssignBoxing(pass *Pass, stmt *ast.AssignStmt, report func(token.Pos, string, ...any)) {
	if len(stmt.Lhs) != len(stmt.Rhs) {
		return
	}
	for i, rhs := range stmt.Rhs {
		lt := pass.Info.Types[stmt.Lhs[i]].Type
		if lt == nil && stmt.Tok == token.DEFINE {
			continue // inferred type: no conversion happens
		}
		if lt != nil {
			checkBoxing(pass, rhs, lt, report)
		}
	}
}

// checkReturnBoxing flags boxing at return boundaries.
func checkReturnBoxing(pass *Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt, report func(token.Pos, string, ...any)) {
	results := fn.Type.Results
	if results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, field := range results.List {
		t := pass.Info.Types[field.Type].Type
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return // multi-value call forwarding; conversion-free
	}
	for i, res := range ret.Results {
		if resultTypes[i] != nil {
			checkBoxing(pass, res, resultTypes[i], report)
		}
	}
}

// checkBoxing reports expr if storing it into destination type dst wraps a
// non-pointer-shaped concrete value in an interface at runtime. Pointer-
// shaped values (pointers, channels, maps, funcs, unsafe pointers) fit the
// interface data word directly; constants are materialised statically.
func checkBoxing(pass *Pass, expr ast.Expr, dst types.Type, report func(token.Pos, string, ...any)) {
	if !types.IsInterface(dst) {
		return
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil || tv.IsNil() {
		return // constants and nil convert without allocating
	}
	if types.IsInterface(tv.Type) {
		return // interface-to-interface: no box
	}
	if pointerShaped(tv.Type) {
		return
	}
	report(expr.Pos(), "boxing %s into %s allocates", tv.Type, dst)
}

// pointerShaped reports whether values of t occupy exactly one pointer word
// (so interface conversion stores them inline).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// allocatingConversion reports string<->[]byte/[]rune conversions.
func allocatingConversion(to, from types.Type) bool {
	return isString(to) && isByteOrRuneSlice(from) || isString(from) && isByteOrRuneSlice(to)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// typeKindName names a composite-literal kind for diagnostics.
func typeKindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
