package lint

// The analyzer test harness mirrors golang.org/x/tools/go/analysis/analysistest
// on the standard library: each analyzer has a testdata/<name> package whose
// source is annotated with `// want "regexp"` comments; the harness loads the
// package (testdata is invisible to the go tool, so the violation corpus never
// breaks `go build ./...` or the tree-wide avcclint run), runs the analyzer,
// and requires an exact match between reported and expected diagnostics —
// every want must be hit, every diagnostic must be wanted.

import (
	"go/token"
	"regexp"
	"sync"
	"testing"
)

// sharedLoader amortises dependency type-checking across all analyzer tests
// in the process.
var sharedLoader = sync.OnceValue(func() *Loader { return NewLoader("") })

// expectation is one `// want "re"` annotation.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants scans the package's comments for want annotations.
func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, arg[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runAnalyzerTest loads testdata/<dir> and checks the analyzer's diagnostics
// against the package's want annotations.
func runAnalyzerTest(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkg, err := sharedLoader().LoadDir("testdata/" + dir)
	if err != nil {
		t.Fatalf("loading testdata/%s: %v", dir, err)
	}
	diags, err := a.RunPackage(pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, pkg)
	match := func(pos token.Position, msg string) bool {
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
				w.hit = true
				return true
			}
		}
		return false
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !match(pos, d.Message) {
			t.Errorf("unexpected diagnostic at %s: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestLazyReduce(t *testing.T) { runAnalyzerTest(t, LazyReduce, "lazyreduce") }
func TestNoAlloc(t *testing.T)    { runAnalyzerTest(t, NoAlloc, "noalloc") }
func TestCtxFlow(t *testing.T)    { runAnalyzerTest(t, CtxFlow, "ctxflow") }
func TestTypedErr(t *testing.T)   { runAnalyzerTest(t, TypedErr, "typederr") }
func TestSeedSource(t *testing.T) { runAnalyzerTest(t, SeedSource, "seedsource") }

// TestTreeIsClean is the self-gate: the analyzer suite must exit clean on
// the repo's own tree (the same invariant CI enforces via cmd/avcclint).
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole tree; skipped in -short")
	}
	pkgs, err := sharedLoader().Load("repro/...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	for _, pkg := range pkgs {
		for _, a := range All() {
			if a.Scope != nil && !a.Scope(pkg.Path) {
				continue
			}
			diags, err := a.RunPackage(pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), a.Name, d.Message)
			}
		}
	}
}
