package lint

// ctxflow enforces the cancellation contract introduced by the async round
// machinery (DESIGN.md §8): once a call chain carries a context.Context,
// every blocking callee must receive it — a context.Background() or
// context.TODO() in the middle of the chain severs the caller's deadline
// and cancellation from everything below it, which is exactly the bug class
// the per-call RPC deadline work eliminated.
//
//	rule 1 (no detach): a function that receives a context.Context must not
//	call context.Background() or context.TODO(), and must not pass a nil
//	Context, anywhere in its body. Deliberate detaches (a shared round that
//	must survive a single caller's cancellation) carry //avcc:ctx-ok with a
//	reason.
//
//	rule 2 (no drop): an exported ctx-carrying method on a cluster.Master or
//	cluster.Executor implementation, or on scheme.Service, must actually use
//	its ctx — a ctx parameter that never flows anywhere means every blocking
//	callee below runs detached.

import (
	"go/ast"
	"go/types"
)

// CtxFlow is the context-threading analyzer.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag severed or dropped context.Context threading in ctx-carrying call chains",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	masters := contractInterfaces(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fn)
			if len(ctxParams) == 0 {
				continue
			}
			checkNoDetach(pass, file, fn)
			if fn.Name.IsExported() && fn.Recv != nil && implementsContract(pass, fn, masters) {
				checkCtxUsed(pass, fn, ctxParams)
			}
		}
	}
	return nil
}

// contextParams returns the objects of fn's context.Context parameters.
func contextParams(pass *Pass, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		t := pass.Info.Types[field.Type].Type
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, nil) // blank ctx param: discarded outright
				continue
			}
			if obj := pass.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed ctx param: cannot be used at all
		}
	}
	return out
}

// checkNoDetach flags context.Background()/TODO() calls and nil Context
// arguments inside a ctx-carrying function.
func checkNoDetach(pass *Pass, file *ast.File, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if name := sel.Sel.Name; name == "Background" || name == "TODO" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if pkg, ok := pass.Info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "context" {
						if !pass.allowedAt(file, call.Pos(), "ctx-ok") {
							pass.Reportf(call.Pos(),
								"context.%s() inside ctx-carrying %s severs the caller's cancellation chain: thread the ctx parameter (or annotate //avcc:ctx-ok with a reason)",
								name, fn.Name.Name)
						}
					}
				}
			}
		}
		// A literal nil passed where the callee expects a Context is the
		// same severed chain with extra nil-dereference risk.
		sig := callSignature(pass, call)
		if sig == nil {
			return true
		}
		for i, arg := range call.Args {
			tv, ok := pass.Info.Types[arg]
			if !ok || !tv.IsNil() {
				continue
			}
			if pt := paramTypeAt(sig, i, call); pt != nil && isContextType(pt) {
				if !pass.allowedAt(file, arg.Pos(), "ctx-ok") {
					pass.Reportf(arg.Pos(),
						"nil Context passed inside ctx-carrying %s: thread the ctx parameter",
						fn.Name.Name)
				}
			}
		}
		return true
	})
}

// checkCtxUsed flags contract methods whose ctx parameter never flows into
// the body.
func checkCtxUsed(pass *Pass, fn *ast.FuncDecl, ctxParams []types.Object) {
	for _, obj := range ctxParams {
		if obj == nil || obj.Name() == "_" {
			pass.Reportf(fn.Pos(),
				"exported contract method %s discards its context.Context parameter: every blocking callee below it runs detached",
				fn.Name.Name)
			continue
		}
		used := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				used = true
			}
			return !used
		})
		if !used {
			pass.Reportf(fn.Pos(),
				"exported contract method %s never uses its ctx parameter %s: every blocking callee below it runs detached",
				fn.Name.Name, obj.Name())
		}
	}
}

// contractInterfaces resolves the interfaces whose implementations owe the
// full ctx-threading contract: cluster.Master and cluster.Executor. They
// are looked up through the package's import graph, so the analyzer needs
// no compile-time dependency on the cluster package.
func contractInterfaces(pass *Pass) []*types.Interface {
	var out []*types.Interface
	for _, pkg := range append([]*types.Package{pass.Pkg}, allImports(pass.Pkg)...) {
		if pkg.Path() != "repro/internal/cluster" {
			continue
		}
		for _, name := range []string{"Master", "Executor"} {
			if obj, ok := pkg.Scope().Lookup(name).(*types.TypeName); ok {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					out = append(out, iface)
				}
			}
		}
		break
	}
	return out
}

// allImports returns the transitive imports of pkg.
func allImports(pkg *types.Package) []*types.Package {
	seen := make(map[*types.Package]bool)
	var out []*types.Package
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if !seen[imp] {
				seen[imp] = true
				out = append(out, imp)
				visit(imp)
			}
		}
	}
	visit(pkg)
	return out
}

// implementsContract reports whether fn's receiver type implements one of
// the contract interfaces, or is scheme.Service itself.
func implementsContract(pass *Pass, fn *ast.FuncDecl, ifaces []*types.Interface) bool {
	if len(fn.Recv.List) == 0 {
		return false
	}
	rt := pass.Info.Types[fn.Recv.List[0].Type].Type
	if rt == nil {
		return false
	}
	if named := namedOf(rt); named != nil {
		obj := named.Obj()
		if obj.Name() == "Service" && obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/scheme" {
			return true
		}
	}
	for _, iface := range ifaces {
		if types.Implements(rt, iface) {
			return true
		}
		if ptr, ok := rt.(*types.Pointer); !ok {
			if types.Implements(types.NewPointer(rt), iface) {
				return true
			}
		} else {
			_ = ptr
		}
	}
	return false
}

// namedOf unwraps pointers to the named type, nil if unnamed.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
