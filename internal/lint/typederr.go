package lint

// typederr enforces the error-matching contract: the module's typed errors
// (*field.NTTSizeError, *scheme.InvalidConfigError, *mds.BadWorkersError,
// transport's ErrQueueFull, ...) travel through fmt.Errorf("%w") wrapping at
// every layer boundary, so a direct type assertion or a == comparison on a
// possibly-wrapped error silently stops matching the moment anyone adds
// context to the chain. errors.Is and errors.As unwrap; nothing else does.
//
//	rule 1: a type assertion or type-switch case asserting an interface-typed
//	        error value to a module-defined error type must be errors.As.
//	rule 2: ==/!= (and switch-case equality) against a module-defined exported
//	        Err* sentinel must be errors.Is. Comparisons against nil are fine.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TypedErr is the wrapped-error matching analyzer.
var TypedErr = &Analyzer{
	Name: "typederr",
	Doc:  "flag type assertions and == comparisons on possibly-wrapped module errors; use errors.Is/errors.As",
	Run:  runTypedErr,
}

func runTypedErr(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				if n.Type == nil {
					return true // x.(type) inside a type switch; handled below
				}
				checkErrAssert(pass, n.X, n.Type)
			case *ast.TypeSwitchStmt:
				if x, clauses := typeSwitchParts(n); x != nil {
					for _, t := range clauses {
						checkErrAssert(pass, x, t)
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkSentinelCompare(pass, n.X, n.Y, n.OpPos)
				}
			case *ast.SwitchStmt:
				checkSentinelSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrAssert reports x.(T) when x is interface-typed (so a wrapper can
// hide the concrete error) and T is a module-defined error type.
func checkErrAssert(pass *Pass, x ast.Expr, typeExpr ast.Expr) {
	xt := pass.Info.Types[x].Type
	if xt == nil || !types.IsInterface(xt) || !implementsError(xt) {
		return
	}
	tt := pass.Info.Types[typeExpr].Type
	if tt == nil || !isModuleErrorType(tt) {
		return
	}
	pass.Reportf(typeExpr.Pos(),
		"type assertion to %s misses wrapped errors: use errors.As", tt)
}

// typeSwitchParts extracts the switched expression and the per-case type
// expressions from a type switch.
func typeSwitchParts(n *ast.TypeSwitchStmt) (ast.Expr, []ast.Expr) {
	var assert *ast.TypeAssertExpr
	switch s := n.Assign.(type) {
	case *ast.ExprStmt:
		assert, _ = ast.Unparen(s.X).(*ast.TypeAssertExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			assert, _ = ast.Unparen(s.Rhs[0]).(*ast.TypeAssertExpr)
		}
	}
	if assert == nil {
		return nil, nil
	}
	var clauses []ast.Expr
	for _, stmt := range n.Body.List {
		if cc, ok := stmt.(*ast.CaseClause); ok {
			clauses = append(clauses, cc.List...)
		}
	}
	return assert.X, clauses
}

// checkSentinelCompare reports x ==/!= sentinel (either side).
func checkSentinelCompare(pass *Pass, x, y ast.Expr, pos token.Pos) {
	for _, pair := range [][2]ast.Expr{{x, y}, {y, x}} {
		val, sentinel := pair[0], pair[1]
		obj := sentinelObject(pass, sentinel)
		if obj == nil {
			continue
		}
		if tv, ok := pass.Info.Types[val]; ok && tv.IsNil() {
			continue
		}
		pass.Reportf(pos,
			"comparison with %s misses wrapped errors: use errors.Is", obj.Name())
		return
	}
}

// checkSentinelSwitch reports switch err { case ErrX: } — the cases compile
// to == and inherit its wrapped-error blindness.
func checkSentinelSwitch(pass *Pass, n *ast.SwitchStmt) {
	if n.Tag == nil {
		return
	}
	tt := pass.Info.Types[n.Tag].Type
	if tt == nil || !types.IsInterface(tt) || !implementsError(tt) {
		return
	}
	for _, stmt := range n.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if obj := sentinelObject(pass, e); obj != nil {
				pass.Reportf(e.Pos(),
					"switch case on %s misses wrapped errors: use errors.Is", obj.Name())
			}
		}
	}
}

// sentinelObject resolves e to a module-defined exported Err* package-level
// variable of error type, nil otherwise.
func sentinelObject(pass *Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || !inModule(obj.Pkg().Path()) {
		return nil
	}
	if obj.Parent() != obj.Pkg().Scope() || !strings.HasPrefix(obj.Name(), "Err") {
		return nil
	}
	if !implementsError(obj.Type()) {
		return nil
	}
	return obj
}

// isModuleErrorType reports whether t (possibly *T) is a named type defined
// in this module that implements error.
func isModuleErrorType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !inModule(pkg.Path()) {
		return false
	}
	return implementsError(t)
}

// implementsError reports whether t satisfies the universe error interface.
func implementsError(t types.Type) bool {
	iface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return iface != nil && types.Implements(t, iface)
}

// inModule reports whether pkgPath belongs to this module or to a test
// corpus package loaded under the lintcheck/ pseudo-prefix.
func inModule(pkgPath string) bool {
	return pkgPath == "repro" ||
		strings.HasPrefix(pkgPath, "repro/") ||
		strings.HasPrefix(pkgPath, "lintcheck/")
}
