// Package gavcc implements Generalized AVCC (paper Section IV-B): the AVCC
// recipe — Lagrange coding for stragglers and privacy, orthogonal
// per-worker verification for Byzantines — applied to a computation of
// polynomial degree HIGHER than the matrix-vector products of the
// logistic-regression evaluation.
//
// The computation is the Gram matrix f(X_j) = X_j·X_jᵀ for each data block,
// a deg-f = 2 polynomial in the coded shard (kernel methods, covariance
// estimation, and the Hessian computations the paper cites motivate it).
// Its pieces:
//
//   - encoding: internal/lcc with deg f = 2, so the recovery threshold is
//     2(K+T−1)+1 evaluations, and T > 0 adds privacy masks;
//   - workers: compute G̃_i = X̃_i·X̃_iᵀ (cluster.GramOp);
//   - verification: verify.GramKey — Freivalds' matrix-product check
//     G̃_i·r == X̃_i·(X̃_iᵀ·r) at O(b²) per check versus the worker's
//     O(b²·d), with the reference vector precomputed at key-generation;
//   - decode: interpolate the matrix-valued polynomial f(u(z)) from the
//     first threshold verified results and evaluate at the data points.
//
// Eq. (2) holds verbatim with deg f = 2: N ≥ 2(K+T−1) + S + M + 1, and a
// Byzantine still costs one worker, not two.
package gavcc

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/lcc"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/verify"
)

// GramKey is the single protocol round key this master serves.
const GramKey = "gram"

// Options configure a Gram-computation deployment.
type Options struct {
	// N, K, S, M, T as in the AVCC master; deg f is fixed at 2.
	N, K, S, M, T int
	// Sim is the latency model.
	Sim simnet.Config
	// Seed drives masks, keys and jitter.
	Seed int64
	// Receipts turns on the committed-verification plane (requires T == 0,
	// as in the AVCC master).
	Receipts bool
	// DeterministicKeys derives the secret Freivalds vectors from Seed
	// instead of the crypto/rand default — tests and benchmarks only.
	DeterministicKeys bool
}

// Feasible reports eq. (2) at deg f = 2.
func (o Options) Feasible() bool {
	return o.N >= lcc.RequiredWorkersAVCC(o.K, o.T, o.S, o.M, 2)
}

// Master runs verified coded Gram computations.
type Master struct {
	f       *field.Field
	opt     Options
	code    *lcc.Code
	workers []*cluster.Worker
	exec    cluster.Executor
	keys    []*verify.GramKey
	// blockRows is the padded per-block row count b; results are b×b.
	blockRows int
	origRows  int
	blocks    []*fieldmat.Matrix // the true data blocks (for sizing/tests)
	// issuer builds round receipts when Options.Receipts is set.
	issuer *commit.Issuer
}

// Result is one completed Gram round.
type Result struct {
	// Blocks holds G_j = X_j·X_jᵀ for each of the K data blocks (padded
	// rows included; padding rows/cols of the Gram matrices are zero).
	Blocks []*fieldmat.Matrix
	// Breakdown, Used, Byzantine as in the AVCC master.
	Breakdown metrics.Breakdown
	Used      []int
	Byzantine []int
	// Receipt is the round's committed-verification receipt (nil when
	// receipts are disabled).
	Receipt *commit.Receipt
}

// NewMaster encodes x (split into K row blocks, zero-padded to
// divisibility) at deg f = 2 and generates Gram verification keys.
func NewMaster(f *field.Field, opt Options, x *fieldmat.Matrix,
	behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (*Master, error) {
	if !opt.Feasible() {
		return nil, fmt.Errorf("gavcc: params %+v violate N >= 2(K+T-1)+S+M+1 = %d",
			opt, lcc.RequiredWorkersAVCC(opt.K, opt.T, opt.S, opt.M, 2))
	}
	if behaviors != nil && len(behaviors) != opt.N {
		return nil, fmt.Errorf("gavcc: %d behaviours for %d workers", len(behaviors), opt.N)
	}
	if !opt.Sim.Validate() {
		return nil, fmt.Errorf("gavcc: invalid latency model")
	}
	code, err := lcc.New(f, opt.N, opt.K, opt.T, 2)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	blocks := fieldmat.SplitRows(fieldmat.PadRows(x, opt.K), opt.K)
	shards, err := code.EncodeBlocks(blocks, rng)
	if err != nil {
		return nil, err
	}
	m := &Master{
		f:         f,
		opt:       opt,
		code:      code,
		workers:   make([]*cluster.Worker, opt.N),
		keys:      make([]*verify.GramKey, opt.N),
		blockRows: blocks[0].Rows,
		origRows:  x.Rows,
		blocks:    blocks,
	}
	if opt.Receipts {
		if opt.T > 0 {
			return nil, fmt.Errorf("gavcc: receipts require T == 0 (got T = %d)", opt.T)
		}
		m.issuer = commit.NewIssuer(f, m.Name())
		m.issuer.Commit(GramKey, x)
	}
	keySrc := verify.Source(verify.Crypto())
	if opt.DeterministicKeys {
		keySrc = verify.Seeded(rng)
	}
	for i := range m.workers {
		w := cluster.NewWorker(i)
		w.Shards[GramKey] = shards[i]
		w.Ops[GramKey] = cluster.GramOp{}
		if behaviors != nil {
			w.Behavior = behaviors[i]
		}
		m.workers[i] = w
		m.keys[i] = verify.NewGramKey(f, keySrc, shards[i])
	}
	ve := cluster.NewVirtualExecutor(f, opt.Sim, m.workers, stragglers, opt.Seed+1)
	ve.CommitOutputs = opt.Receipts
	m.exec = ve
	return m, nil
}

// ReceiptDigests implements commit.DigestProvider (nil when receipts are
// disabled).
func (m *Master) ReceiptDigests() map[string][]commit.Digest {
	if m.issuer == nil {
		return nil
	}
	return m.issuer.Digests()
}

// SetExecutor swaps the executor (real-transport runs).
func (m *Master) SetExecutor(e cluster.Executor) { m.exec = e }

// Workers exposes the master's worker objects so real-transport deployments
// can ship the encoded shards to the matching remote endpoints.
func (m *Master) Workers() []*cluster.Worker { return m.workers }

// BlockRows returns the padded per-block row count b.
func (m *Master) BlockRows() int { return m.blockRows }

// Name implements cluster.Master.
func (m *Master) Name() string { return "gavcc" }

// RunRound implements cluster.Master for the unified scheme API. The only
// round key is "gram" and the round takes no input (each worker computes the
// Gram matrix of its own shard); Decoded is the K decoded b×b Gram blocks
// flattened in block order, reshapeable via BlockRows. Callers that want the
// blocks as matrices use Run directly.
func (m *Master) RunRound(ctx context.Context, key string, input []field.Elem, iter int) (*cluster.RoundOutput, error) {
	if key != GramKey {
		return nil, fmt.Errorf("gavcc: unknown round key %q (the only round is %q)", key, GramKey)
	}
	if len(input) != 0 {
		return nil, fmt.Errorf("gavcc: the %q round takes no input", GramKey)
	}
	res, err := m.Run(ctx, iter)
	if err != nil {
		return nil, err
	}
	out := &cluster.RoundOutput{
		Decoded:   make([]field.Elem, 0, m.opt.K*m.blockRows*m.blockRows),
		Breakdown: res.Breakdown,
		Used:      res.Used,
		Byzantine: res.Byzantine,
		Receipt:   res.Receipt,
	}
	for _, g := range res.Blocks {
		out.Decoded = append(out.Decoded, g.Data...)
	}
	return out, nil
}

// RunRoundBatch implements cluster.Master. The Gram round is input-free —
// every batch entry asks for the identical computation — so the batch is
// served by ONE coded round whose decoded output is shared by (not recomputed
// for) every entry. Entries must all be empty, as in RunRound.
func (m *Master) RunRoundBatch(ctx context.Context, key string, inputs [][]field.Elem, iter int) (*cluster.BatchOutput, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("gavcc: empty batch")
	}
	for i, in := range inputs {
		if len(in) != 0 {
			return nil, fmt.Errorf("gavcc: the %q round takes no input (batch entry %d has %d elems)",
				GramKey, i, len(in))
		}
	}
	round, err := m.RunRound(ctx, key, nil, iter)
	if err != nil {
		return nil, err
	}
	out := &cluster.BatchOutput{
		Outputs:            make([][]field.Elem, len(inputs)),
		Breakdown:          round.Breakdown,
		Used:               round.Used,
		Byzantine:          round.Byzantine,
		StragglersObserved: round.StragglersObserved,
		Receipt:            round.Receipt,
	}
	// Each entry gets its own copy: Decoded is caller-private per the
	// Future/RoundOutput contract (only the accounting slices are shared),
	// so one caller post-processing its result in place must not corrupt
	// what its batch neighbours read.
	out.Outputs[0] = round.Decoded
	for i := 1; i < len(out.Outputs); i++ {
		out.Outputs[i] = field.CopyVec(round.Decoded)
	}
	return out, nil
}

// FinishIteration implements cluster.Master; the Gram master never re-codes.
func (m *Master) FinishIteration(int) (float64, bool) { return 0, false }

// Run executes one verified coded Gram round.
func (m *Master) Run(ctx context.Context, iter int) (*Result, error) {
	active := make([]int, m.opt.N)
	for i := range active {
		active[i] = i
	}
	results := m.exec.RunRound(ctx, GramKey, nil, 1, iter, active)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gavcc: round cancelled: %w", err)
	}
	threshold := m.code.Threshold()

	out := &Result{}
	var masterFree float64
	var verifiedWorkers []int
	var verifiedOutputs [][]field.Elem
	var verifiedCommits [][]byte
	var maxCompute, maxComm float64
	b := m.blockRows

	for _, r := range results {
		if len(verifiedWorkers) == threshold {
			break
		}
		if r.Err != nil {
			return nil, fmt.Errorf("gavcc: worker %d failed: %w", r.Worker, r.Err)
		}
		start := r.ArriveAt
		if masterFree > start {
			start = masterFree
		}
		// Gram check cost: b dot products of length b.
		checkTime := m.opt.Sim.MasterTime(float64(b) * float64(b))
		masterFree = start + checkTime
		out.Breakdown.Verify += checkTime

		if m.keys[r.Worker].Check(r.Output) {
			verifiedWorkers = append(verifiedWorkers, r.Worker)
			verifiedOutputs = append(verifiedOutputs, r.Output)
			verifiedCommits = append(verifiedCommits, r.Commit)
			if r.ComputeSec > maxCompute {
				maxCompute = r.ComputeSec
			}
			if r.CommSec > maxComm {
				maxComm = r.CommSec
			}
		} else {
			out.Byzantine = append(out.Byzantine, r.Worker)
		}
	}
	if len(verifiedWorkers) < threshold {
		return nil, fmt.Errorf("gavcc: only %d verified results, need %d", len(verifiedWorkers), threshold)
	}

	decoded, err := m.code.DecodeVectors(verifiedWorkers, verifiedOutputs)
	if err != nil {
		return nil, fmt.Errorf("gavcc: decode: %w", err)
	}
	decodeOps := float64(threshold)*float64(m.opt.K*b*b) + float64(threshold*threshold)
	decodeTime := m.opt.Sim.MasterTime(decodeOps)

	out.Blocks = make([]*fieldmat.Matrix, m.opt.K)
	for j, flat := range decoded {
		g := fieldmat.NewMatrix(b, b)
		copy(g.Data, flat)
		out.Blocks[j] = g
	}
	out.Used = verifiedWorkers

	if m.issuer != nil {
		flat := make([]field.Elem, 0, m.opt.K*b*b)
		for _, blk := range decoded {
			flat = append(flat, blk...)
		}
		// Worker IDs ARE code positions here (the Gram master never
		// re-codes), so each worker's evaluation point is Alphas()[id].
		alphas := m.code.Alphas()
		rw := make([]commit.RoundWorker, len(verifiedWorkers))
		for i, id := range verifiedWorkers {
			rw[i] = commit.RoundWorker{
				ID:     id,
				Alpha:  alphas[id],
				Output: verifiedOutputs[i],
				Commit: verifiedCommits[i],
			}
		}
		rec, rerr := m.issuer.Issue(commit.Round{
			Key: GramKey, Iter: iter, Batch: 1, Gram: true,
			K: m.opt.K, BlockRows: b,
			Outputs: [][]field.Elem{flat}, Workers: rw,
		})
		if rerr != nil {
			return nil, fmt.Errorf("gavcc: receipt: %w", rerr)
		}
		out.Receipt = rec
	}

	out.Breakdown.Compute = maxCompute
	out.Breakdown.Comm = maxComm
	out.Breakdown.Decode = decodeTime
	out.Breakdown.Wall = masterFree + decodeTime
	return out, nil
}
