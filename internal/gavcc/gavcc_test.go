package gavcc

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/simnet"
)

var f = field.Default()

func quietSim() simnet.Config {
	c := simnet.DefaultConfig()
	c.JitterFrac = 0
	c.LinkLatency = 1e-5
	return c
}

// opts16 is a deg-2 feasible configuration: K=4, threshold 2·3+1=7,
// N = 7 + S + M (+1 headroom).
func opts16(s, m, t int) Options {
	return Options{N: 7 + 2*t + s + m, K: 4, S: s, M: m, T: t, Sim: quietSim(), Seed: 5}
}

func gramOf(b *fieldmat.Matrix) *fieldmat.Matrix {
	return fieldmat.MatMul(f, b, b.Transpose())
}

func TestFeasibility(t *testing.T) {
	// Threshold for K=4, T=0, deg f=2 is 2·3+1 = 7; eq. (2) needs 7+S+M.
	if (Options{N: 8, K: 4, S: 1, M: 1}).Feasible() {
		t.Fatal("N=8 cannot host K=4 deg-2 with S=M=1 (needs 7+1+1=9)")
	}
	if !(Options{N: 9, K: 4, S: 1, M: 1}).Feasible() {
		t.Fatal("N=9 should be feasible")
	}
}

func TestValidation(t *testing.T) {
	x := fieldmat.NewMatrix(8, 4)
	if _, err := NewMaster(f, Options{N: 8, K: 4, S: 1, M: 1, Sim: quietSim()}, x, nil, nil); err == nil {
		t.Fatal("infeasible accepted")
	}
	if _, err := NewMaster(f, opts16(1, 1, 0), x, make([]attack.Behavior, 2), nil); err == nil {
		t.Fatal("behaviour mismatch accepted")
	}
	bad := opts16(1, 1, 0)
	bad.Sim = simnet.Config{}
	if _, err := NewMaster(f, bad, x, nil, nil); err == nil {
		t.Fatal("bad sim accepted")
	}
}

func TestHonestGramDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(310))
	x := fieldmat.Rand(f, rng, 16, 6)
	m, err := NewMaster(f, opts16(1, 1, 0), x, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blocks := fieldmat.SplitRows(x, 4)
	for j, b := range blocks {
		if !out.Blocks[j].Equal(gramOf(b)) {
			t.Fatalf("block %d Gram decode wrong", j)
		}
	}
	if len(out.Used) != 7 {
		t.Fatalf("used %d results, want threshold 7", len(out.Used))
	}
}

func TestGramWithByzantine(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	x := fieldmat.Rand(f, rng, 16, 6)
	opt := opts16(1, 2, 0) // N = 10
	behaviors := make([]attack.Behavior, opt.N)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	behaviors[2] = attack.ReverseValue{C: 1}
	behaviors[6] = attack.Constant{V: 99}
	m, err := NewMaster(f, opt, x, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	blocks := fieldmat.SplitRows(x, 4)
	for j, b := range blocks {
		if !out.Blocks[j].Equal(gramOf(b)) {
			t.Fatalf("block %d corrupted despite verification", j)
		}
	}
	caught := map[int]bool{}
	for _, id := range out.Byzantine {
		caught[id] = true
	}
	if !caught[2] || !caught[6] {
		t.Fatalf("Byzantines flagged %v, want {2,6}", out.Byzantine)
	}
	for _, id := range out.Used {
		if id == 2 || id == 6 {
			t.Fatal("Byzantine result used in decode")
		}
	}
}

func TestGramWithStragglerSkipped(t *testing.T) {
	rng := rand.New(rand.NewSource(312))
	x := fieldmat.Rand(f, rng, 32, 40) // compute-heavy enough to separate
	opt := opts16(1, 0, 0)             // N = 8, threshold 7
	m, err := NewMaster(f, opt, x, nil, attack.NewFixedStragglers(0))
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range out.Used {
		if id == 0 {
			t.Fatal("straggler on the critical path")
		}
	}
	blocks := fieldmat.SplitRows(x, 4)
	for j, b := range blocks {
		if !out.Blocks[j].Equal(gramOf(b)) {
			t.Fatalf("block %d wrong", j)
		}
	}
}

func TestGramWithPrivacyMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	x := fieldmat.Rand(f, rng, 16, 5)
	opt := opts16(1, 1, 1) // T = 1: threshold 2(4+1-1)+1 = 9, N = 12
	m, err := NewMaster(f, opt, x, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// With T=1 no worker shard may equal a raw block.
	blocks := fieldmat.SplitRows(x, 4)
	for _, w := range m.workers {
		sh := w.Shards[GramKey]
		for j, b := range blocks {
			if sh.Equal(b) {
				t.Fatalf("worker %d holds raw block %d despite masking", w.ID, j)
			}
		}
	}
	out, err := m.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, b := range blocks {
		if !out.Blocks[j].Equal(gramOf(b)) {
			t.Fatalf("masked Gram decode wrong at block %d", j)
		}
	}
}

func TestGramPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	x := fieldmat.Rand(f, rng, 14, 5) // 14 % 4 != 0 → pad to 16
	m, err := NewMaster(f, opts16(1, 1, 0), x, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.BlockRows() != 4 {
		t.Fatalf("block rows %d, want 4", m.BlockRows())
	}
	out, err := m.Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The last block's padding rows must yield zero Gram rows/cols.
	last := out.Blocks[3]
	for j := 0; j < 4; j++ {
		if last.At(3, j) != 0 || last.At(j, 3) != 0 {
			t.Fatal("padding rows produced nonzero Gram entries")
		}
	}
}

func TestGramTooManyByzantineFails(t *testing.T) {
	rng := rand.New(rand.NewSource(315))
	x := fieldmat.Rand(f, rng, 16, 5)
	opt := opts16(0, 1, 0) // N = 8, threshold 7: 2 Byzantines leave only 6 honest
	behaviors := make([]attack.Behavior, opt.N)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	behaviors[1] = attack.Constant{V: 1}
	behaviors[3] = attack.Constant{V: 2}
	m, err := NewMaster(f, opt, x, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), 0); err == nil {
		t.Fatal("round succeeded without enough honest workers")
	}
}

func BenchmarkGramRound(b *testing.B) {
	rng := rand.New(rand.NewSource(316))
	x := fieldmat.Rand(f, rng, 64, 48)
	m, err := NewMaster(f, opts16(1, 1, 0), x, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(context.Background(), i); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunRoundBatchOutputsAreIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x := fieldmat.Rand(f, rng, 8, 6)
	m, err := NewMaster(f, Options{N: 10, K: 4, S: 1, M: 1, Sim: simnet.DefaultConfig(), Seed: 2}, x, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.RunRoundBatch(context.Background(), GramKey, [][]field.Elem{nil, nil}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Outputs[0], out.Outputs[1]) {
		t.Fatal("gram batch entries should hold the same values")
	}
	// Decoded is caller-private: corrupting one entry must not leak into
	// the other (they are coalesced strangers in the serving layer).
	out.Outputs[0][0]++
	if field.EqualVec(out.Outputs[0], out.Outputs[1]) {
		t.Fatal("batch entries alias one backing array")
	}
}
