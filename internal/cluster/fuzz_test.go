package cluster

import (
	"testing"

	"repro/internal/field"
)

// FuzzPackSplit pins the batched-round packing layout: for any batch shape
// the fuzzer produces, SplitPacked(PackInputs(inputs)) must reproduce the
// inputs exactly, the packed length must be batch*per, and ragged batches
// must be rejected with the offending entry named — the serving layer
// relies on admission-time eviction instead of pack-time surprises.
func FuzzPackSplit(fz *testing.F) {
	fz.Add(3, 5, uint64(1))
	fz.Add(1, 0, uint64(0))
	fz.Add(16, 1, uint64(42))
	fz.Add(2, 64, uint64(7))
	fz.Fuzz(func(t *testing.T, batch, per int, seed uint64) {
		if batch < 0 || batch > 64 || per < 0 || per > 256 {
			t.Skip()
		}
		f := field.Default()
		inputs := make([][]field.Elem, batch)
		for i := range inputs {
			inputs[i] = make([]field.Elem, per)
			for j := range inputs[i] {
				inputs[i][j] = f.Reduce(seed + uint64(i)*2654435761 + uint64(j)*40503)
			}
		}
		packed, gotPer, err := PackInputs(inputs)
		if batch == 0 {
			if err == nil {
				t.Fatal("empty batch packed without error")
			}
			return
		}
		if err != nil {
			t.Fatalf("PackInputs(%dx%d): %v", batch, per, err)
		}
		if gotPer != per || len(packed) != batch*per {
			t.Fatalf("PackInputs(%dx%d) = %d elements, per %d", batch, per, len(packed), gotPer)
		}
		split := SplitPacked(packed, batch)
		if len(split) != batch {
			t.Fatalf("SplitPacked returned %d vectors, want %d", len(split), batch)
		}
		for i := range split {
			if !field.EqualVec(split[i], inputs[i]) {
				t.Fatalf("entry %d does not round-trip", i)
			}
		}

		// A ragged batch (one entry a row longer) must fail with the entry
		// index in the error, and must never silently truncate.
		if batch >= 2 {
			ragged := make([][]field.Elem, batch)
			copy(ragged, inputs)
			ragged[batch-1] = append(append([]field.Elem(nil), inputs[batch-1]...), 1)
			if _, _, err := PackInputs(ragged); err == nil {
				t.Fatal("ragged batch packed without error")
			}
		}
	})
}
