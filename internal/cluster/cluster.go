// Package cluster provides the distributed-execution substrate: worker
// state (coded shards + adversarial behaviour) and executors that run one
// protocol round across all workers and deliver results in arrival order.
//
// Two executors are provided:
//
//   - VirtualExecutor: workers compute for real, arrival times come from the
//     simnet latency model. Deterministic given a seed; powers every
//     experiment (see DESIGN.md on the testbed substitution).
//   - GoExecutor: workers are goroutines, times are wall-clock, straggling
//     is injected as sleeps. Used by examples and the integration tests
//     that exercise real concurrency.
//
// Masters (internal/avcc, internal/baseline) are written against the
// Executor interface so the same protocol logic runs on either.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/simnet"
)

// Op is the polynomial computation a worker applies to its coded shard.
// The default is the matrix-vector product of the logistic-regression
// rounds (deg f = 1); Generalized AVCC (paper Section IV-B) plugs in
// higher-degree polynomials such as the Gram computation f(X) = X·Xᵀ
// (deg f = 2), which Lagrange coding decodes and Freivalds-style checks
// verify.
type Op interface {
	// Apply computes f on the shard (input is the broadcast operand;
	// degree-only-in-X computations may ignore it). It returns the
	// flattened result and the honest multiply-accumulate count.
	Apply(f *field.Field, shard *fieldmat.Matrix, input []field.Elem) (out []field.Elem, ops float64, err error)
	// Degree returns deg f for recovery-threshold accounting.
	Degree() int
}

// MatVecOp is the default degree-1 operation y = X̃·input.
type MatVecOp struct{}

// Apply implements Op.
func (MatVecOp) Apply(f *field.Field, shard *fieldmat.Matrix, input []field.Elem) ([]field.Elem, float64, error) {
	if len(input) != shard.Cols {
		return nil, 0, fmt.Errorf("cluster: matvec expects input length %d, got %d", shard.Cols, len(input))
	}
	return fieldmat.MatVec(f, shard, input), float64(shard.Rows) * float64(shard.Cols), nil
}

// Degree implements Op.
func (MatVecOp) Degree() int { return 1 }

// BatchOp is the optional interface of operations that can compute a whole
// batch of packed inputs in one pass (input i at input[i*per : (i+1)*per],
// output i at out[i*rows : (i+1)*rows]). Ops without it are applied once per
// batch entry by Worker.Compute.
type BatchOp interface {
	ApplyBatch(f *field.Field, shard *fieldmat.Matrix, input []field.Elem, batch int) (out []field.Elem, ops float64, err error)
}

// ApplyBatch implements BatchOp: batch stacked matrix-vector products
// Y = X̃·[w_1 … w_B] in one pass over the packed inputs, each through the
// blocked zero-alloc kernel.
func (MatVecOp) ApplyBatch(f *field.Field, shard *fieldmat.Matrix, input []field.Elem, batch int) ([]field.Elem, float64, error) {
	if batch < 1 || len(input) != batch*shard.Cols {
		return nil, 0, fmt.Errorf("cluster: batched matvec expects %d x %d inputs, got length %d",
			batch, shard.Cols, len(input))
	}
	out := make([]field.Elem, batch*shard.Rows)
	for i := 0; i < batch; i++ {
		fieldmat.MatVecInto(f, out[i*shard.Rows:(i+1)*shard.Rows], shard, input[i*shard.Cols:(i+1)*shard.Cols])
	}
	return out, float64(batch) * float64(shard.Rows) * float64(shard.Cols), nil
}

// GramOp is the degree-2 operation G = X̃·X̃ᵀ, flattened row-major. The
// broadcast input is ignored.
type GramOp struct{}

// Apply implements Op.
func (GramOp) Apply(f *field.Field, shard *fieldmat.Matrix, _ []field.Elem) ([]field.Elem, float64, error) {
	g := fieldmat.MatMul(f, shard, shard.Transpose())
	ops := float64(shard.Rows) * float64(shard.Rows) * float64(shard.Cols)
	return g.Data, ops, nil
}

// Degree implements Op.
func (GramOp) Degree() int { return 2 }

// Worker holds a node's coded shards, keyed by round name (the logistic-
// regression protocol uses "fwd" for X̃ and "bwd" for the transposed-shard
// X̃'), plus the behaviour that decides what it actually sends. Ops maps a
// round key to a non-default operation; absent keys use MatVecOp.
type Worker struct {
	ID       int
	Shards   map[string]*fieldmat.Matrix
	Ops      map[string]Op
	Behavior attack.Behavior
}

// NewWorker returns an honest worker with no shards.
func NewWorker(id int) *Worker {
	return &Worker{
		ID:       id,
		Shards:   make(map[string]*fieldmat.Matrix),
		Ops:      make(map[string]Op),
		Behavior: attack.Honest{},
	}
}

// op resolves the operation for a round key.
func (w *Worker) op(key string) Op {
	if o, ok := w.Ops[key]; ok && o != nil {
		return o
	}
	return MatVecOp{}
}

// Compute performs the worker's coded computation f(X̃) for the given round
// key and passes it through the worker's behaviour. The returned ops count
// is the honest computation's multiply-accumulate count — Byzantine workers
// burn the same time; sending garbage is not faster.
//
// batch > 1 means input packs that many equal-length vectors (a batched
// round); the op computes all of them in one pass — natively when it
// implements BatchOp, otherwise entry by entry — and the packed result goes
// through the behaviour once, as one message. batch <= 0 is treated as 1.
func (w *Worker) Compute(f *field.Field, key string, input []field.Elem, batch, iter int) (out []field.Elem, ops float64, err error) {
	shard, ok := w.Shards[key]
	if !ok {
		return nil, 0, fmt.Errorf("cluster: worker %d has no shard %q", w.ID, key)
	}
	op := w.op(key)
	var honest []field.Elem
	if batch <= 1 {
		honest, ops, err = op.Apply(f, shard, input)
	} else if bop, ok := op.(BatchOp); ok {
		honest, ops, err = bop.ApplyBatch(f, shard, input, batch)
	} else if len(input)%batch != 0 {
		err = fmt.Errorf("cluster: packed input length %d not divisible by batch %d", len(input), batch)
	} else {
		per := len(input) / batch
		for i := 0; i < batch; i++ {
			part, partOps, perr := op.Apply(f, shard, input[i*per:(i+1)*per])
			if perr != nil {
				err = perr
				break
			}
			honest = append(honest, part...)
			ops += partOps
		}
	}
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: worker %d shard %q: %w", w.ID, key, err)
	}
	return w.Behavior.Apply(f, iter, honest), ops, nil
}

// Result is one worker's response to a round, with its timing breakdown.
type Result struct {
	Worker int
	Output []field.Elem
	// Commit is the worker's Merkle commitment to Output (commit.OutputRoot),
	// present only when the executor runs with output commitments enabled.
	Commit []byte
	// ComputeSec is the worker's compute time (virtual or measured).
	ComputeSec float64
	// CommSec is the total link time (input broadcast + result return).
	CommSec float64
	// ArriveAt is when the master can first see this result, measured in
	// seconds from the round start.
	ArriveAt float64
	// Err carries worker-side failures (missing shard etc.).
	Err error
}

// Executor runs one round across the given active workers and returns
// results ordered by arrival. Workers that are crashed or whose messages
// are lost (time-varying scenario state) simply have no result: erasures,
// exactly what the codes are there to absorb.
//
// batch is the number of equal-length vectors packed into input (1 for a
// plain round); every worker computes the whole batch in one pass and
// returns one packed result. ctx bounds the round: once it is cancelled the
// executor stops scheduling further work and returns whatever results have
// already landed — the master turns the cancellation into its round error.
type Executor interface {
	RunRound(ctx context.Context, key string, input []field.Elem, batch, iter int, active []int) []Result
}

// VirtualExecutor computes results eagerly and timestamps them with the
// simnet model. It is deterministic given its seed.
type VirtualExecutor struct {
	F          *field.Field
	Cfg        simnet.Config
	Workers    []*Worker
	Stragglers attack.StragglerSchedule
	Rng        *rand.Rand
	// Dynamics overlays time-varying environment state (per-worker rate
	// curves, link degradation, crashes, drops); nil means the steady
	// world.
	Dynamics simnet.Dynamics
	// CommitOutputs makes every worker ship a Merkle commitment to its
	// output alongside the result (the committed-verification plane).
	CommitOutputs bool
}

// NewVirtualExecutor wires up a virtual cluster. stragglers may be nil for
// a straggler-free environment.
func NewVirtualExecutor(f *field.Field, cfg simnet.Config, workers []*Worker, stragglers attack.StragglerSchedule, seed int64) *VirtualExecutor {
	if stragglers == nil {
		stragglers = attack.NoStragglers{}
	}
	return &VirtualExecutor{
		F: f, Cfg: cfg, Workers: workers, Stragglers: stragglers,
		Rng: rand.New(rand.NewSource(seed)),
	}
}

// RunRound implements Executor in virtual time. Crashed workers are skipped
// outright; dropped results enter the event queue (the loss happens at what
// would have been the arrival instant) but are filtered out of the returned
// results, so both read as erasures to the master. Cancelling ctx stops the
// eager per-worker computation early; already-computed results still drain
// in arrival order (the master surfaces the cancellation itself).
func (e *VirtualExecutor) RunRound(ctx context.Context, key string, input []field.Elem, batch, iter int, active []int) []Result {
	dyn := e.Dynamics
	q := simnet.NewQueue()
	var dropped map[int]bool
	for _, id := range active {
		if ctx.Err() != nil {
			break
		}
		if dyn != nil && dyn.Crashed(id, iter) {
			continue
		}
		w := e.Workers[id]
		out, ops, err := w.Compute(e.F, key, input, batch, iter)
		sendIn := e.Cfg.CommTime(len(input))
		var compute, sendOut float64
		if err == nil {
			compute = e.Cfg.ComputeTime(ops, e.Stragglers.IsStraggler(id, iter), e.Rng)
			sendOut = e.Cfg.CommTime(len(out))
		}
		if dyn != nil {
			compute *= dyn.ComputeFactor(id, iter)
			link := dyn.LinkFactor(id, iter)
			sendIn *= link
			sendOut *= link
			if dyn.Dropped(id, iter) {
				if dropped == nil {
					dropped = make(map[int]bool)
				}
				dropped[id] = true
				out = nil
			}
		}
		res := Result{
			Worker:     id,
			Output:     out,
			ComputeSec: compute,
			CommSec:    sendIn + sendOut,
			ArriveAt:   sendIn + compute + sendOut,
			Err:        err,
		}
		if e.CommitOutputs && err == nil {
			res.Commit = commit.OutputRoot(out)
		}
		q.Push(res.ArriveAt, id, res)
	}
	results := make([]Result, 0, len(active))
	for {
		a, ok := q.Pop()
		if !ok {
			break
		}
		if dropped[a.Worker] {
			continue // the loss event: the message vanishes at arrival time
		}
		results = append(results, a.Payload.(Result))
	}
	return results
}

// GoExecutor runs workers as goroutines with wall-clock timing. Straggling
// workers sleep for StragglerDelay before responding; scenario slowdowns
// and link degradation sleep proportionally (StragglerDelay x (factor-1)
// each), so StragglerDelay is the executor's unit of slowness.
type GoExecutor struct {
	F              *field.Field
	Workers        []*Worker
	Stragglers     attack.StragglerSchedule
	StragglerDelay time.Duration
	// Dynamics overlays time-varying environment state; nil means the
	// steady world. Crashed workers spawn no goroutine; dropped results are
	// computed but never delivered.
	Dynamics simnet.Dynamics
	// CommitOutputs makes every worker ship a Merkle commitment to its
	// output alongside the result.
	CommitOutputs bool
}

// RunRound implements Executor with real concurrency; results are ordered
// by actual completion time. Cancelling ctx returns immediately with the
// results that have already landed; late workers finish in the background
// and their results are discarded.
func (e *GoExecutor) RunRound(ctx context.Context, key string, input []field.Elem, batch, iter int, active []int) []Result {
	stragglers := e.Stragglers
	if stragglers == nil {
		stragglers = attack.NoStragglers{}
	}
	dyn := e.Dynamics
	start := time.Now()
	var mu sync.Mutex
	results := make([]Result, 0, len(active))
	var wg sync.WaitGroup
	for _, id := range active {
		if dyn != nil && dyn.Crashed(id, iter) {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := e.Workers[id]
			t0 := time.Now()
			out, _, err := w.Compute(e.F, key, input, batch, iter)
			if stragglers.IsStraggler(id, iter) {
				if !sleepCtx(ctx, e.StragglerDelay) {
					return
				}
			}
			if dyn != nil {
				// Compute slowdown and link degradation both stretch this
				// worker's wall time; StragglerDelay is the unit for each.
				slow := (dyn.ComputeFactor(id, iter) - 1) + (dyn.LinkFactor(id, iter) - 1)
				if slow > 0 {
					if !sleepCtx(ctx, time.Duration(float64(e.StragglerDelay)*slow)) {
						return
					}
				}
				if dyn.Dropped(id, iter) {
					return // computed, but the message never arrives
				}
			}
			var root []byte
			if e.CommitOutputs && err == nil {
				root = commit.OutputRoot(out)
			}
			elapsed := time.Since(t0).Seconds()
			mu.Lock()
			results = append(results, Result{
				Worker:     id,
				Output:     out,
				Commit:     root,
				ComputeSec: elapsed,
				ArriveAt:   time.Since(start).Seconds(),
				Err:        err,
			})
			mu.Unlock()
		}(id)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
	}
	mu.Lock()
	snapshot := append([]Result(nil), results...)
	mu.Unlock()
	sort.Slice(snapshot, func(i, j int) bool { return snapshot[i].ArriveAt < snapshot[j].ArriveAt })
	return snapshot
}

// sleepCtx sleeps for d, returning false early if ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
