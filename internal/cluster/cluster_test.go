package cluster

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/simnet"
)

var f = field.Default()

func buildWorkers(t *testing.T, rng *rand.Rand, n, rows, cols int) ([]*Worker, []*fieldmat.Matrix) {
	t.Helper()
	workers := make([]*Worker, n)
	shards := make([]*fieldmat.Matrix, n)
	for i := range workers {
		workers[i] = NewWorker(i)
		shards[i] = fieldmat.Rand(f, rng, rows, cols)
		workers[i].Shards["fwd"] = shards[i]
	}
	return workers, shards
}

func TestWorkerComputeHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	w := NewWorker(0)
	shard := fieldmat.Rand(f, rng, 5, 7)
	w.Shards["fwd"] = shard
	in := f.RandVec(rng, 7)
	out, ops, err := w.Compute(f, "fwd", in, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 35 {
		t.Fatalf("ops = %g, want 35", ops)
	}
	if !field.EqualVec(out, fieldmat.MatVec(f, shard, in)) {
		t.Fatal("honest compute wrong")
	}
}

func TestWorkerComputeErrors(t *testing.T) {
	w := NewWorker(0)
	w.Shards["fwd"] = fieldmat.NewMatrix(2, 3)
	if _, _, err := w.Compute(f, "missing", make([]field.Elem, 3), 1, 0); err == nil {
		t.Fatal("missing shard accepted")
	}
	if _, _, err := w.Compute(f, "fwd", make([]field.Elem, 4), 1, 0); err == nil {
		t.Fatal("wrong input length accepted")
	}
}

func TestWorkerByzantineBehaviourApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	w := NewWorker(3)
	shard := fieldmat.Rand(f, rng, 4, 4)
	w.Shards["fwd"] = shard
	w.Behavior = attack.Constant{V: 8}
	out, _, err := w.Compute(f, "fwd", f.RandVec(rng, 4), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 8 {
			t.Fatal("behaviour not applied")
		}
	}
}

func TestVirtualExecutorArrivalOrderAndCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	workers, shards := buildWorkers(t, rng, 6, 10, 8)
	cfg := simnet.DefaultConfig()
	cfg.JitterFrac = 0 // deterministic times for the assertion below
	ex := NewVirtualExecutor(f, cfg, workers, attack.NewFixedStragglers(2), 1)
	in := f.RandVec(rng, 8)
	active := []int{0, 1, 2, 3, 4, 5}
	results := ex.RunRound(context.Background(), "fwd", in, 1, 0, active)
	if len(results) != 6 {
		t.Fatalf("got %d results", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].ArriveAt < results[i-1].ArriveAt {
			t.Fatal("results out of arrival order")
		}
	}
	// The straggler must arrive last: same work, 10x slower.
	if results[len(results)-1].Worker != 2 {
		t.Fatalf("straggler arrived at position != last (last = worker %d)", results[len(results)-1].Worker)
	}
	// Outputs must be the true products.
	for _, r := range results {
		want := fieldmat.MatVec(f, shards[r.Worker], in)
		if !field.EqualVec(r.Output, want) {
			t.Fatalf("worker %d output wrong", r.Worker)
		}
	}
}

func TestVirtualExecutorDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	workers, _ := buildWorkers(t, rng, 5, 6, 6)
	in := f.RandVec(rng, 6)
	run := func() []Result {
		ex := NewVirtualExecutor(f, simnet.DefaultConfig(), workers, nil, 99)
		return ex.RunRound(context.Background(), "fwd", in, 1, 0, []int{0, 1, 2, 3, 4})
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Worker != b[i].Worker || a[i].ArriveAt != b[i].ArriveAt {
			t.Fatal("virtual executor not deterministic under a fixed seed")
		}
	}
}

func TestVirtualExecutorActiveSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	workers, _ := buildWorkers(t, rng, 6, 4, 4)
	ex := NewVirtualExecutor(f, simnet.DefaultConfig(), workers, nil, 7)
	results := ex.RunRound(context.Background(), "fwd", f.RandVec(rng, 4), 1, 0, []int{1, 3, 5})
	if len(results) != 3 {
		t.Fatalf("got %d results for 3 active workers", len(results))
	}
	seen := map[int]bool{}
	for _, r := range results {
		seen[r.Worker] = true
	}
	if !seen[1] || !seen[3] || !seen[5] {
		t.Fatal("wrong workers responded")
	}
}

func TestVirtualExecutorTimingComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(135))
	workers, _ := buildWorkers(t, rng, 2, 8, 8)
	cfg := simnet.DefaultConfig()
	cfg.JitterFrac = 0
	ex := NewVirtualExecutor(f, cfg, workers, nil, 1)
	in := f.RandVec(rng, 8)
	results := ex.RunRound(context.Background(), "fwd", in, 1, 0, []int{0, 1})
	for _, r := range results {
		wantArrive := r.ComputeSec + r.CommSec
		if diff := r.ArriveAt - wantArrive; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("arrival %g != compute+comm %g", r.ArriveAt, wantArrive)
		}
	}
}

func TestVirtualExecutorWorkerError(t *testing.T) {
	workers := []*Worker{NewWorker(0)} // no shards at all
	ex := NewVirtualExecutor(f, simnet.DefaultConfig(), workers, nil, 1)
	results := ex.RunRound(context.Background(), "fwd", []field.Elem{1}, 1, 0, []int{0})
	if len(results) != 1 || results[0].Err == nil {
		t.Fatal("worker error not propagated")
	}
}

func TestGoExecutorMatchesVirtualOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(136))
	workers, shards := buildWorkers(t, rng, 4, 6, 6)
	in := f.RandVec(rng, 6)
	ex := &GoExecutor{F: f, Workers: workers}
	results := ex.RunRound(context.Background(), "fwd", in, 1, 0, []int{0, 1, 2, 3})
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !field.EqualVec(r.Output, fieldmat.MatVec(f, shards[r.Worker], in)) {
			t.Fatalf("worker %d output wrong under real concurrency", r.Worker)
		}
	}
	for i := 1; i < len(results); i++ {
		if results[i].ArriveAt < results[i-1].ArriveAt {
			t.Fatal("GoExecutor results not sorted by completion")
		}
	}
}

func TestGoExecutorStragglerDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	workers, _ := buildWorkers(t, rng, 3, 4, 4)
	ex := &GoExecutor{
		F: f, Workers: workers,
		Stragglers:     attack.NewFixedStragglers(1),
		StragglerDelay: 50 * time.Millisecond,
	}
	results := ex.RunRound(context.Background(), "fwd", f.RandVec(rng, 4), 1, 0, []int{0, 1, 2})
	if results[len(results)-1].Worker != 1 {
		t.Fatalf("delayed worker should arrive last, got order ending in %d", results[len(results)-1].Worker)
	}
	if results[len(results)-1].ArriveAt < 0.045 {
		t.Fatal("straggler delay not applied")
	}
}

// scriptedDynamics is a hand-written simnet.Dynamics for executor tests.
type scriptedDynamics struct {
	crashed map[int]bool
	dropped map[int]bool
	rate    map[int]float64
	link    map[int]float64
}

func (d scriptedDynamics) ComputeFactor(w, _ int) float64 {
	if f, ok := d.rate[w]; ok {
		return f
	}
	return 1
}

func (d scriptedDynamics) LinkFactor(w, _ int) float64 {
	if f, ok := d.link[w]; ok {
		return f
	}
	return 1
}

func (d scriptedDynamics) Crashed(w, _ int) bool { return d.crashed[w] }
func (d scriptedDynamics) Dropped(w, _ int) bool { return d.dropped[w] }

func TestVirtualExecutorDynamics(t *testing.T) {
	rng := rand.New(rand.NewSource(138))
	workers, _ := buildWorkers(t, rng, 5, 8, 8)
	cfg := simnet.DefaultConfig()
	cfg.JitterFrac = 0
	ex := NewVirtualExecutor(f, cfg, workers, nil, 1)
	ex.Dynamics = scriptedDynamics{
		crashed: map[int]bool{0: true},
		dropped: map[int]bool{1: true},
		rate:    map[int]float64{2: 8},
		link:    map[int]float64{3: 5},
	}
	in := f.RandVec(rng, 8)
	results := ex.RunRound(context.Background(), "fwd", in, 1, 0, []int{0, 1, 2, 3, 4})
	// Crashed and dropped workers are erasures: absent from the results.
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3 (one crash, one drop)", len(results))
	}
	byWorker := map[int]Result{}
	for _, r := range results {
		byWorker[r.Worker] = r
	}
	if _, ok := byWorker[0]; ok {
		t.Fatal("crashed worker returned a result")
	}
	if _, ok := byWorker[1]; ok {
		t.Fatal("dropped worker's result reached the master")
	}
	base := byWorker[4]
	slow := byWorker[2]
	if got, want := slow.ComputeSec, 8*base.ComputeSec; !approx(got, want) {
		t.Errorf("rate curve not applied: compute %g, want %g", got, want)
	}
	degraded := byWorker[3]
	if got, want := degraded.CommSec, 5*base.CommSec; !approx(got, want) {
		t.Errorf("link factor not applied: comm %g, want %g", got, want)
	}
}

func approx(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff <= 1e-12*(1+b)
}

func TestGoExecutorDynamics(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	workers, _ := buildWorkers(t, rng, 4, 4, 4)
	ex := &GoExecutor{
		F: f, Workers: workers,
		StragglerDelay: 30 * time.Millisecond,
		Dynamics: scriptedDynamics{
			crashed: map[int]bool{0: true},
			dropped: map[int]bool{1: true},
			rate:    map[int]float64{2: 2}, // sleeps StragglerDelay x (2-1)
			link:    map[int]float64{2: 2}, // and StragglerDelay x (2-1) more
		},
	}
	results := ex.RunRound(context.Background(), "fwd", f.RandVec(rng, 4), 1, 0, []int{0, 1, 2, 3})
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (one crash, one drop)", len(results))
	}
	if results[len(results)-1].Worker != 2 {
		t.Fatalf("slowed worker should finish last, got %d", results[len(results)-1].Worker)
	}
	if results[len(results)-1].ArriveAt < 0.055 {
		t.Fatal("scenario slowdown + link-degradation sleeps not applied")
	}
}

func TestMatVecOpExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	shard := fieldmat.Rand(f, rng, 5, 4)
	in := f.RandVec(rng, 4)
	out, ops, err := MatVecOp{}.Apply(f, shard, in)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 20 {
		t.Fatalf("ops = %g", ops)
	}
	if !field.EqualVec(out, fieldmat.MatVec(f, shard, in)) {
		t.Fatal("MatVecOp wrong")
	}
	if (MatVecOp{}).Degree() != 1 {
		t.Fatal("MatVecOp degree wrong")
	}
	if _, _, err := (MatVecOp{}).Apply(f, shard, in[:2]); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestGramOpExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	shard := fieldmat.Rand(f, rng, 4, 6)
	out, ops, err := GramOp{}.Apply(f, shard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 4*4*6 {
		t.Fatalf("ops = %g", ops)
	}
	want := fieldmat.MatMul(f, shard, shard.Transpose())
	if !field.EqualVec(out, want.Data) {
		t.Fatal("GramOp wrong")
	}
	if (GramOp{}).Degree() != 2 {
		t.Fatal("GramOp degree wrong")
	}
}

func TestWorkerCustomOpDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	w := NewWorker(0)
	shard := fieldmat.Rand(f, rng, 3, 5)
	w.Shards["gram"] = shard
	w.Ops["gram"] = GramOp{}
	out, _, err := w.Compute(f, "gram", nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 9 {
		t.Fatalf("gram output length %d, want 9", len(out))
	}
	// Keys without a registered op default to matvec.
	w.Shards["fwd"] = shard
	if _, _, err := w.Compute(f, "fwd", f.RandVec(rng, 5), 1, 0); err != nil {
		t.Fatal("default matvec dispatch broken:", err)
	}
}

func TestPackInputsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	inputs := make([][]field.Elem, 4)
	for i := range inputs {
		inputs[i] = f.RandVec(rng, 6)
	}
	packed, per, err := PackInputs(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if per != 6 || len(packed) != 24 {
		t.Fatalf("packed (per=%d, len=%d), want (6, 24)", per, len(packed))
	}
	back := SplitPacked(packed, 4)
	for i := range inputs {
		if !field.EqualVec(back[i], inputs[i]) {
			t.Fatalf("entry %d did not round-trip", i)
		}
	}
	// A batch of one broadcasts the input slice itself, no copy.
	single, _, err := PackInputs(inputs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if &single[0] != &inputs[0][0] {
		t.Fatal("batch-of-one should alias the input")
	}
}

func TestPackInputsRejectsEmptyAndRagged(t *testing.T) {
	if _, _, err := PackInputs(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	ragged := [][]field.Elem{make([]field.Elem, 3), make([]field.Elem, 2)}
	if _, _, err := PackInputs(ragged); err == nil {
		t.Fatal("ragged batch accepted")
	}
}

func TestMatVecOpApplyBatchMatchesPerVector(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	shard := fieldmat.Rand(f, rng, 7, 5)
	inputs := make([][]field.Elem, 3)
	for i := range inputs {
		inputs[i] = f.RandVec(rng, 5)
	}
	packed, _, err := PackInputs(inputs)
	if err != nil {
		t.Fatal(err)
	}
	out, ops, err := MatVecOp{}.ApplyBatch(f, shard, packed, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 3*7*5 {
		t.Fatalf("ops = %g, want %d", ops, 3*7*5)
	}
	for i, in := range inputs {
		want := fieldmat.MatVec(f, shard, in)
		if !field.EqualVec(out[i*7:(i+1)*7], want) {
			t.Fatalf("batched column %d differs from its matvec", i)
		}
	}
	if _, _, err := (MatVecOp{}).ApplyBatch(f, shard, packed[:14], 3); err == nil {
		t.Fatal("short packed input accepted")
	}
}

func TestWorkerComputeBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(145))
	w := NewWorker(0)
	shard := fieldmat.Rand(f, rng, 4, 6)
	w.Shards["fwd"] = shard
	inputs := [][]field.Elem{f.RandVec(rng, 6), f.RandVec(rng, 6)}
	packed, _, err := PackInputs(inputs)
	if err != nil {
		t.Fatal(err)
	}
	out, ops, err := w.Compute(f, "fwd", packed, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 2*4*6 {
		t.Fatalf("ops = %g", ops)
	}
	for i, in := range inputs {
		if !field.EqualVec(out[i*4:(i+1)*4], fieldmat.MatVec(f, shard, in)) {
			t.Fatalf("batched worker output %d wrong", i)
		}
	}
}

func TestVirtualExecutorBatchedRound(t *testing.T) {
	rng := rand.New(rand.NewSource(146))
	workers, shards := buildWorkers(t, rng, 3, 5, 4)
	ex := NewVirtualExecutor(f, simnet.DefaultConfig(), workers, nil, 9)
	inputs := [][]field.Elem{f.RandVec(rng, 4), f.RandVec(rng, 4), f.RandVec(rng, 4)}
	packed, _, err := PackInputs(inputs)
	if err != nil {
		t.Fatal(err)
	}
	results := ex.RunRound(context.Background(), "fwd", packed, 3, 0, []int{0, 1, 2})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		for c, in := range inputs {
			want := fieldmat.MatVec(f, shards[r.Worker], in)
			if !field.EqualVec(r.Output[c*5:(c+1)*5], want) {
				t.Fatalf("worker %d batch entry %d wrong", r.Worker, c)
			}
		}
	}
}

func TestVirtualExecutorCancelledContextStopsScheduling(t *testing.T) {
	rng := rand.New(rand.NewSource(147))
	workers, _ := buildWorkers(t, rng, 4, 4, 4)
	ex := NewVirtualExecutor(f, simnet.DefaultConfig(), workers, nil, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := ex.RunRound(ctx, "fwd", f.RandVec(rng, 4), 1, 0, []int{0, 1, 2, 3})
	if len(results) != 0 {
		t.Fatalf("a pre-cancelled round computed %d results", len(results))
	}
}

func TestGoExecutorCancelledContextReturnsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(148))
	workers, _ := buildWorkers(t, rng, 3, 4, 4)
	ex := &GoExecutor{
		F: f, Workers: workers,
		Stragglers:     attack.NewFixedStragglers(0, 1, 2),
		StragglerDelay: 10 * time.Second,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	results := ex.RunRound(ctx, "fwd", f.RandVec(rng, 4), 1, 0, []int{0, 1, 2})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled GoExecutor round took %v", elapsed)
	}
	if len(results) != 0 {
		t.Fatalf("got %d results from a round whose workers all sleep 10s", len(results))
	}
}
