package cluster

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/metrics"
)

// errEmptyBatch rejects batched rounds with nothing to compute.
var errEmptyBatch = errors.New("cluster: empty batch")

func raggedBatchError(i, got, want int) error {
	return fmt.Errorf("cluster: batch input %d has length %d, want %d", i, got, want)
}

// RoundOutput is what any master (AVCC, LCC baseline, uncoded baseline)
// returns from one coded computation round.
type RoundOutput struct {
	// Decoded is the recovered computation output, trimmed to the original
	// (un-padded) length.
	Decoded []field.Elem
	// Breakdown is the round's cost split (virtual seconds).
	Breakdown metrics.Breakdown
	// Used lists the workers whose results contributed to the decode.
	Used []int
	// Byzantine lists workers that failed verification this round (always
	// empty for masters without per-worker verification).
	Byzantine []int
	// StragglersObserved counts active workers the master did not need to
	// wait for (their results were still in flight when decoding started).
	StragglersObserved int
	// Receipt is the round's committed-verification receipt (nil when the
	// master runs with receipts disabled). A batched round issues ONE receipt
	// covering the whole batch; ReceiptColumn says which receipt batch column
	// this output is (always 0 for Gram rounds, whose single decode is shared
	// by every batch entry).
	Receipt       *commit.Receipt
	ReceiptColumn int
}

// BatchOutput is what a master returns from one batched round: the decoded
// output for every input vector in the batch, plus the round's shared cost
// and membership accounting. The batch runs as ONE protocol round — one
// broadcast, one compute pass per worker, one verification sweep, one decode
// — so Breakdown, Used, Byzantine and StragglersObserved describe the round
// as a whole, not any single request.
type BatchOutput struct {
	// Outputs[i] is the recovered computation output for the i-th input
	// vector, trimmed to the original (un-padded) length. Bit-exact with
	// what a dedicated RunRound over the same input would decode.
	Outputs [][]field.Elem
	// Breakdown is the round's cost split (virtual seconds), shared by the
	// whole batch.
	Breakdown metrics.Breakdown
	// Used lists the workers whose results contributed to the decode.
	Used []int
	// Byzantine lists workers that failed verification this round.
	Byzantine []int
	// StragglersObserved counts active workers the master did not need to
	// wait for.
	StragglersObserved int
	// Receipt is the round's committed-verification receipt, covering every
	// batch column at once (nil when receipts are disabled).
	Receipt *commit.Receipt
}

// Round projects one batch entry into a stand-alone RoundOutput. The shared
// accounting slices (and the receipt) are aliased, not copied: treat them as
// read-only.
func (b *BatchOutput) Round(i int) *RoundOutput {
	out := &RoundOutput{
		Decoded:            b.Outputs[i],
		Breakdown:          b.Breakdown,
		Used:               b.Used,
		Byzantine:          b.Byzantine,
		StragglersObserved: b.StragglersObserved,
		Receipt:            b.Receipt,
	}
	// An input-free Gram round serves the whole batch from one decode: its
	// receipt has Batch == 1 and every entry reads column 0.
	if b.Receipt != nil && i < b.Receipt.Batch {
		out.ReceiptColumn = i
	}
	return out
}

// Master is the protocol-side interface the application layer (logistic
// regression, the experiment harness, the serving layer, the examples)
// drives. One training iteration issues one RunRound per protocol round and
// then calls FinishIteration so adaptive masters can re-code.
//
// Context contract: every round honours ctx uniformly — cancellation or a
// deadline expiry makes the round return ctx's error promptly (virtual-time
// executors stop scheduling further workers; real-transport executors abort
// in-flight calls). A round that returns a non-nil output always observed
// ctx.Err() == nil after its executor pass.
type Master interface {
	// Name identifies the scheme in experiment tables ("avcc", "lcc",
	// "uncoded", "static-vcc").
	Name() string
	// RunRound broadcasts input for the given round key (e.g. "fwd" for
	// X̃·w, "bwd" for X̃'·e) and returns the decoded result.
	RunRound(ctx context.Context, key string, input []field.Elem, iter int) (*RoundOutput, error)
	// RunRoundBatch runs ONE coded round over a whole batch of same-length
	// input vectors: the inputs are packed into a single broadcast, each
	// worker computes the full batch against its shard in one pass, the
	// master verifies once over the stacked result and decodes once.
	// Outputs[i] is bit-exact with RunRound(ctx, key, inputs[i], iter).
	RunRoundBatch(ctx context.Context, key string, inputs [][]field.Elem, iter int) (*BatchOutput, error)
	// FinishIteration lets the master adapt between iterations (dynamic
	// coding). It returns the one-time virtual cost incurred (0 when no
	// re-coding happened) and whether a re-code took place.
	FinishIteration(iter int) (recodeCost float64, recoded bool)
}

// PackInputs concatenates a batch of equal-length vectors into the single
// broadcast slice of a batched round (entry i occupies
// packed[i*len : (i+1)*len]). It returns the packed slice and the common
// vector length, erroring on an empty batch or ragged lengths.
func PackInputs(inputs [][]field.Elem) (packed []field.Elem, per int, err error) {
	if len(inputs) == 0 {
		return nil, 0, errEmptyBatch
	}
	per = len(inputs[0])
	if len(inputs) == 1 {
		return inputs[0], per, nil // a batch of one broadcasts as-is (aliased)
	}
	packed = make([]field.Elem, 0, per*len(inputs))
	for i, in := range inputs {
		if len(in) != per {
			return nil, 0, raggedBatchError(i, len(in), per)
		}
		packed = append(packed, in...)
	}
	return packed, per, nil
}

// SplitPacked is the inverse of PackInputs: it splits a packed slice into
// batch equal-length views (aliases into packed, not copies).
func SplitPacked(packed []field.Elem, batch int) [][]field.Elem {
	per := len(packed) / batch
	out := make([][]field.Elem, batch)
	for i := range out {
		out[i] = packed[i*per : (i+1)*per]
	}
	return out
}

// UnpackBlocks stitches a batched decode back into per-vector outputs. Each
// decoded block holds its rows for vector 0, then vector 1, ... (the layout
// worker-side batching produces — see MatVecOp.ApplyBatch); the result's
// entry c is block 0's slice for vector c, then block 1's, ..., trimmed to
// origRows. This is the ONE inverse of the batch packing layout, shared by
// every decoding master so the decode paths cannot drift apart.
func UnpackBlocks(blocks [][]field.Elem, batch, origRows int) [][]field.Elem {
	shardRows := len(blocks[0]) / batch
	outputs := make([][]field.Elem, batch)
	for c := 0; c < batch; c++ {
		full := make([]field.Elem, 0, len(blocks)*shardRows)
		for _, blk := range blocks {
			full = append(full, blk[c*shardRows:(c+1)*shardRows]...)
		}
		outputs[c] = full[:origRows]
	}
	return outputs
}
