package cluster

import (
	"repro/internal/field"
	"repro/internal/metrics"
)

// RoundOutput is what any master (AVCC, LCC baseline, uncoded baseline)
// returns from one coded computation round.
type RoundOutput struct {
	// Decoded is the recovered computation output, trimmed to the original
	// (un-padded) length.
	Decoded []field.Elem
	// Breakdown is the round's cost split (virtual seconds).
	Breakdown metrics.Breakdown
	// Used lists the workers whose results contributed to the decode.
	Used []int
	// Byzantine lists workers that failed verification this round (always
	// empty for masters without per-worker verification).
	Byzantine []int
	// StragglersObserved counts active workers the master did not need to
	// wait for (their results were still in flight when decoding started).
	StragglersObserved int
}

// Master is the protocol-side interface the application layer (logistic
// regression, the experiment harness, the examples) drives. One training
// iteration issues one RunRound per protocol round and then calls
// FinishIteration so adaptive masters can re-code.
type Master interface {
	// Name identifies the scheme in experiment tables ("avcc", "lcc",
	// "uncoded", "static-vcc").
	Name() string
	// RunRound broadcasts input for the given round key (e.g. "fwd" for
	// X̃·w, "bwd" for X̃'·e) and returns the decoded result.
	RunRound(key string, input []field.Elem, iter int) (*RoundOutput, error)
	// FinishIteration lets the master adapt between iterations (dynamic
	// coding). It returns the one-time virtual cost incurred (0 when no
	// re-coding happened) and whether a re-code took place.
	FinishIteration(iter int) (recodeCost float64, recoded bool)
}
