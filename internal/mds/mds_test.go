package mds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

var f = field.Default()

func TestNewRejectsBadParams(t *testing.T) {
	for _, c := range []struct{ n, k int }{{2, 3}, {0, 0}, {5, 0}, {-1, -1}} {
		if _, err := New(f, c.n, c.k); err == nil {
			t.Errorf("New(%d,%d) accepted invalid params", c.n, c.k)
		}
	}
	small := field.MustNew(7)
	if _, err := New(small, 7, 2); err == nil {
		t.Error("New accepted N >= q")
	}
}

func TestSystematic(t *testing.T) {
	// The first K shards must equal the data blocks (X̃_i = X_i, i <= K).
	rng := rand.New(rand.NewSource(70))
	code, err := New(f, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 18, 5)
	blocks := fieldmat.SplitRows(x, 9)
	shards, err := code.EncodeBlocks(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 12 {
		t.Fatalf("got %d shards", len(shards))
	}
	for i := 0; i < 9; i++ {
		if !shards[i].Equal(blocks[i]) {
			t.Fatalf("shard %d is not systematic", i)
		}
	}
}

func TestFig1Example(t *testing.T) {
	// The paper's Fig. 1: (3,2) code, worker 1 straggles, workers 2 and 3
	// suffice to recover X·b.
	rng := rand.New(rand.NewSource(71))
	code, err := New(f, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 4, 6)
	b := f.RandVec(rng, 6)
	shards, err := code.EncodeMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	want := fieldmat.MatVec(f, x, b)
	// Workers compute X̃_i·b; only workers 1 and 2 (0-indexed) return.
	res := [][]field.Elem{
		fieldmat.MatVec(f, shards[1], b),
		fieldmat.MatVec(f, shards[2], b),
	}
	got, err := code.DecodeConcat([]int{1, 2}, res)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(got, want) {
		t.Fatal("Fig.1 decode did not recover X·b")
	}
}

func TestAnyKofNDecodes(t *testing.T) {
	// The defining MDS property, exhaustively for (5,3): every 3-subset of
	// workers decodes correctly.
	rng := rand.New(rand.NewSource(72))
	code, err := New(f, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 6, 4)
	w := f.RandVec(rng, 4)
	shards, err := code.EncodeMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	want := fieldmat.MatVec(f, x, w)
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			for c := b + 1; c < 5; c++ {
				idx := []int{a, b, c}
				res := make([][]field.Elem, 3)
				for r, i := range idx {
					res[r] = fieldmat.MatVec(f, shards[i], w)
				}
				got, err := code.DecodeConcat(idx, res)
				if err != nil {
					t.Fatalf("subset %v: %v", idx, err)
				}
				if !field.EqualVec(got, want) {
					t.Fatalf("subset %v decoded wrong result", idx)
				}
			}
		}
	}
}

func TestDecodeOrderInvariance(t *testing.T) {
	// Results arriving in any order must decode identically — the master
	// consumes workers in verification-completion order.
	rng := rand.New(rand.NewSource(73))
	code, _ := New(f, 6, 4)
	x := fieldmat.Rand(f, rng, 8, 3)
	w := f.RandVec(rng, 3)
	shards, _ := code.EncodeMatrix(x)
	want := fieldmat.MatVec(f, x, w)
	idx := []int{5, 0, 3, 2} // deliberately shuffled
	res := make([][]field.Elem, 4)
	for r, i := range idx {
		res[r] = fieldmat.MatVec(f, shards[i], w)
	}
	got, err := code.DecodeConcat(idx, res)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(got, want) {
		t.Fatal("shuffled decode failed")
	}
}

func TestDecodeTransposedRound(t *testing.T) {
	// Round 2 of logreg: encode Xᵀ row blocks, workers compute X̃'_i·e,
	// decode g = Xᵀe.
	rng := rand.New(rand.NewSource(74))
	code, _ := New(f, 12, 9)
	x := fieldmat.Rand(f, rng, 18, 27)
	xt := x.Transpose() // 27×18
	e := f.RandVec(rng, 18)
	shards, err := code.EncodeMatrix(xt)
	if err != nil {
		t.Fatal(err)
	}
	want := fieldmat.MatVec(f, xt, e)
	idx := []int{0, 2, 3, 4, 6, 7, 8, 10, 11}
	res := make([][]field.Elem, len(idx))
	for r, i := range idx {
		res[r] = fieldmat.MatVec(f, shards[i], e)
	}
	got, err := code.DecodeConcat(idx, res)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(got, want) {
		t.Fatal("transposed-round decode failed")
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	code, _ := New(f, 4, 2)
	good := [][]field.Elem{{1, 2}, {3, 4}}
	cases := []struct {
		name    string
		workers []int
		res     [][]field.Elem
	}{
		{"too few", []int{0}, good[:1]},
		{"duplicate worker", []int{1, 1}, good},
		{"out of range", []int{0, 7}, good},
		{"negative", []int{-1, 0}, good},
		{"ragged", []int{0, 1}, [][]field.Elem{{1, 2}, {3}}},
	}
	for _, c := range cases {
		if _, err := code.DecodeVectors(c.workers, c.res); err == nil {
			t.Errorf("%s: decode accepted bad input", c.name)
		}
	}
}

func TestEncodeMatrixIndivisible(t *testing.T) {
	code, _ := New(f, 4, 3)
	if _, err := code.EncodeMatrix(fieldmat.NewMatrix(10, 2)); err == nil {
		t.Fatal("EncodeMatrix accepted indivisible rows")
	}
}

func TestEncodeBlocksShapeChecks(t *testing.T) {
	code, _ := New(f, 4, 2)
	if _, err := code.EncodeBlocks([]*fieldmat.Matrix{fieldmat.NewMatrix(2, 2)}); err == nil {
		t.Fatal("accepted wrong block count")
	}
	if _, err := code.EncodeBlocks([]*fieldmat.Matrix{
		fieldmat.NewMatrix(2, 2), fieldmat.NewMatrix(3, 2),
	}); err == nil {
		t.Fatal("accepted unequal block shapes")
	}
}

func TestEncodeLinearity(t *testing.T) {
	// Encoding is linear: encode(X + Y) = encode(X) + encode(Y), shard-wise.
	// This is what lets workers compute on coded data at all.
	rng := rand.New(rand.NewSource(75))
	code, _ := New(f, 5, 3)
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := fieldmat.Rand(f, r, 6, 3)
		y := fieldmat.Rand(f, r, 6, 3)
		sum := x.Clone()
		sum.AddInPlace(f, y)
		sx, _ := code.EncodeMatrix(x)
		sy, _ := code.EncodeMatrix(y)
		ss, _ := code.EncodeMatrix(sum)
		for i := range ss {
			both := sx[i].Clone()
			both.AddInPlace(f, sy[i])
			if !ss[i].Equal(both) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorAllKSubmatricesInvertible(t *testing.T) {
	// Spot-check the MDS property at the paper's (12,9) configuration with
	// random K-subsets (exhaustive is 220 subsets for (12,9); we do all of
	// them — it is cheap).
	code, err := New(f, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	gen := code.Generator()
	var rec func(start int, chosen []int)
	checked := 0
	rec = func(start int, chosen []int) {
		if len(chosen) == 9 {
			sub := fieldmat.NewMatrix(9, 9)
			for r, w := range chosen {
				for j := 0; j < 9; j++ {
					sub.Set(r, j, gen.At(j, w))
				}
			}
			if _, err := fieldmat.Inverse(f, sub); err != nil {
				t.Fatalf("submatrix %v singular", chosen)
			}
			checked++
			return
		}
		for i := start; i < 12; i++ {
			rec(i+1, append(chosen, i))
		}
	}
	rec(0, nil)
	if checked != 220 {
		t.Fatalf("checked %d subsets, want 220", checked)
	}
}

// decodeRef is the seed decoder: build the K×K generator submatrix selected
// by the workers and solve A·Y = R by Gauss–Jordan. The interpolation-plan
// decoder must stay bit-exact with it for every worker subset.
func decodeRef(t *testing.T, code *Code, workers []int, results [][]field.Elem) [][]field.Elem {
	t.Helper()
	k := code.K()
	dim := len(results[0])
	a := fieldmat.NewMatrix(k, k)
	rmat := fieldmat.NewMatrix(k, dim)
	gen := code.Generator()
	for r, w := range workers {
		for j := 0; j < k; j++ {
			a.Set(r, j, gen.At(j, w))
		}
		copy(rmat.Row(r), results[r])
	}
	y, err := fieldmat.SolveMatrix(code.Field(), a, rmat)
	if err != nil {
		t.Fatalf("reference decode singular: %v", err)
	}
	out := make([][]field.Elem, k)
	for j := 0; j < k; j++ {
		out[j] = field.CopyVec(y.Row(j))
	}
	return out
}

// TestDecodePlanMatchesSolveReference checks the cached interpolation-plan
// decode against the linear-solve reference over every 9-subset of the
// paper's (12,9) code — all 220 survivor sets, repeated to exercise cache
// hits, plus permuted worker orderings.
func TestDecodePlanMatchesSolveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	code, err := New(f, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 36, 7)
	w := f.RandVec(rng, 7)
	shards, err := code.EncodeMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]field.Elem, 12)
	for i, sh := range shards {
		results[i] = fieldmat.MatVec(f, sh, w)
	}
	check := func(chosen []int) {
		res := make([][]field.Elem, len(chosen))
		for r, i := range chosen {
			res[r] = results[i]
		}
		want := decodeRef(t, code, chosen, res)
		for pass := 0; pass < 2; pass++ { // second pass hits the plan cache
			got, err := code.DecodeVectors(chosen, res)
			if err != nil {
				t.Fatalf("decode %v: %v", chosen, err)
			}
			for j := range want {
				if !field.EqualVec(got[j], want[j]) {
					t.Fatalf("decode %v pass %d: block %d diverges from solve reference", chosen, pass, j)
				}
			}
		}
	}
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) == 9 {
			check(append([]int(nil), chosen...))
			return
		}
		for i := start; i < 12; i++ {
			rec(i+1, append(chosen, i))
		}
	}
	rec(0, nil)
	// Order matters to the plan keying: a shuffled worker list must still
	// decode correctly (weights align with the shuffled results).
	perm := []int{8, 2, 11, 0, 5, 9, 1, 4, 7}
	check(perm)
}

// TestDecodePlanCacheSurvivesManyWorkerSets cycles through more survivor
// sets than the cache cap to exercise the reset path.
func TestDecodePlanCacheSurvivesManyWorkerSets(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	code, err := New(f, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 9, 4)
	w := f.RandVec(rng, 4)
	shards, err := code.EncodeMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	want := fieldmat.MatVec(f, x, w)
	results := make([][]field.Elem, 16)
	for i, sh := range shards {
		results[i] = fieldmat.MatVec(f, sh, w)
	}
	sets := 0
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			for c := b + 1; c < 16; c++ {
				chosen := []int{a, b, c}
				res := [][]field.Elem{results[a], results[b], results[c]}
				got, err := code.DecodeConcat(chosen, res)
				if err != nil {
					t.Fatalf("decode %v: %v", chosen, err)
				}
				if !field.EqualVec(got, want) {
					t.Fatalf("decode %v wrong", chosen)
				}
				sets++
			}
		}
	}
	if sets != 560 { // 16 choose 3 — ~4.4x the 128-entry cache cap
		t.Fatalf("covered %d worker sets, want 560", sets)
	}
}

func BenchmarkEncode12x9(b *testing.B) {
	rng := rand.New(rand.NewSource(76))
	code, _ := New(f, 12, 9)
	x := fieldmat.Rand(f, rng, 900, 120)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.EncodeMatrix(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode12x9(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	code, _ := New(f, 12, 9)
	x := fieldmat.Rand(f, rng, 900, 120)
	w := f.RandVec(rng, 120)
	shards, _ := code.EncodeMatrix(x)
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	res := make([][]field.Elem, len(idx))
	for r, i := range idx {
		res[r] = fieldmat.MatVec(f, shards[i], w)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.DecodeConcat(idx, res); err != nil {
			b.Fatal(err)
		}
	}
}
