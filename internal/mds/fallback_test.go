package mds

// Regression tests for the typed-error gate on the NTT→Lagrange fallback in
// New: the poly layer wraps the field's *NTTSizeError with context, so the
// fallback criterion must be errors.As — a bare type assertion (or the old
// err == nil blanket fallback) either stops matching or swallows real
// failures.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/poly"
)

// TestSubgroupErrorIsWrapped pins the poly-layer contract the fallback gate
// depends on: the size error arrives wrapped (context attached), so only
// errors.As can see it — a direct type assertion no longer matches.
func TestSubgroupErrorIsWrapped(t *testing.T) {
	f := field.MustNew(field.QDefault) // 2-adicity 3: caps transforms at size 8
	_, err := poly.NewSubgroup(f, 12, 9)
	if err == nil {
		t.Fatal("NewSubgroup(12, 9) over QDefault should fail: needs a size-16 domain")
	}
	var sizeErr *field.NTTSizeError
	if !errors.As(err, &sizeErr) {
		t.Fatalf("errors.As should find *field.NTTSizeError in %v", err)
	}
	if sizeErr.Size != 16 {
		t.Fatalf("size error for nextpow2(12) = 16, got %d", sizeErr.Size)
	}
	if _, bare := err.(*field.NTTSizeError); bare {
		t.Fatal("error should be wrapped with poly context, not returned bare")
	}
}

// TestWrappedSizeErrorTriggersFallback is the regression: a wrapped
// *NTTSizeError must still put New on the Lagrange layout, exactly as the
// unwrapped error did before the poly layer added context.
func TestWrappedSizeErrorTriggersFallback(t *testing.T) {
	f := field.MustNew(field.QDefault)
	c, err := New(f, 12, 9)
	if err != nil {
		t.Fatalf("New(12, 9) over QDefault should fall back to Lagrange, got error: %v", err)
	}
	if c.NTTAccelerated() {
		t.Fatal("QDefault cannot host a size-16 domain; code must be on the Lagrange layout")
	}
	// The fallback code must actually work end to end.
	data := make([]field.Elem, 9)
	for i := range data {
		data[i] = field.Elem(i + 1)
	}
	shards, err := c.EncodeMatrix(rowVec(data))
	if err != nil {
		t.Fatalf("encoding on the fallback layout: %v", err)
	}
	workers := []int{11, 2, 7, 5, 3, 9, 0, 10, 6}
	results := make([][]field.Elem, len(workers))
	for r, w := range workers {
		results[r] = shards[w].Data
	}
	out, err := c.DecodeVectors(workers, results)
	if err != nil {
		t.Fatalf("decoding on the fallback layout: %v", err)
	}
	for j := 0; j < 9; j++ {
		if len(out[j]) != 1 || out[j][0] != data[j] {
			t.Fatalf("block %d decoded to %v, want %d", j, out[j], data[j])
		}
	}
}

// TestUnexpectedSubgroupErrorPropagates closes the other half of the gate:
// an error that is NOT an NTT size error must surface from the fallback
// decision, not be silently absorbed into the Lagrange path. The gate logic
// is exercised exactly as New runs it.
func TestUnexpectedSubgroupErrorPropagates(t *testing.T) {
	cause := fmt.Errorf("poly: corrupted twiddle cache: %w", errors.New("disk error"))
	var sizeErr *field.NTTSizeError
	if errors.As(cause, &sizeErr) {
		t.Fatal("test premise: cause must not be an NTT size error")
	}
	// New's gate: anything errors.As cannot identify as a size error is a
	// real failure.
	if gateTakesFallback(cause) {
		t.Fatal("non-size errors must propagate, not trigger the Lagrange fallback")
	}
	wrapped := fmt.Errorf("outer: %w", &field.NTTSizeError{Q: field.QDefault, TwoAdicity: 3, Size: 16})
	if !gateTakesFallback(wrapped) {
		t.Fatal("wrapped size errors must take the fallback")
	}
}

// gateTakesFallback mirrors New's fallback criterion.
func gateTakesFallback(err error) bool {
	var sizeErr *field.NTTSizeError
	return errors.As(err, &sizeErr)
}

// rowVec wraps a vector as a len×1 matrix (one row per data block).
func rowVec(data []field.Elem) *fieldmat.Matrix {
	rows := make([][]field.Elem, len(data))
	for i, v := range data {
		rows[i] = []field.Elem{v}
	}
	return fieldmat.FromRows(rows)
}
