package mds

// Differential suite pinning the NTT fast path to the Lagrange formulas:
// the subgroup-domain generator, encoder, and decoder must be bit-exact
// with dense Lagrange arithmetic over the SAME evaluation points, for
// power-of-two and non-power-of-two k, including the all-(q−1) worst case
// that stresses the fused kernel's lazy accumulators.

import (
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/poly"
)

var nttDiffShapes = []struct{ n, k int }{
	{12, 9}, {4, 2}, {16, 8}, {12, 7}, {8, 8}, {16, 15},
}

// TestNTTAcceleratedGuard pins the dispatch criterion: the fast path engages
// exactly when the modulus' 2-adicity hosts nextpow2(N) points. A silent
// fallback on the NTT modulus at the paper's shape would be a perf
// regression invisible to correctness tests — this is the guard.
func TestNTTAcceleratedGuard(t *testing.T) {
	cases := []struct {
		name string
		f    *field.Field
		n, k int
		want bool
	}{
		{"ntt modulus paper shape", field.NTTFriendly(), 12, 9, true},
		{"ntt modulus large", field.NTTFriendly(), 1 << 10, 700, true},
		{"paper modulus paper shape", field.Default(), 12, 9, false},
		{"paper modulus within adicity", field.Default(), 8, 5, true},
		{"paper modulus just beyond adicity", field.Default(), 9, 5, false},
		{"q=97 paper shape", field.MustNew(97), 12, 9, true}, // 96 = 2^5·3
	}
	for _, c := range cases {
		code, err := New(c.f, c.n, c.k)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := code.NTTAccelerated(); got != c.want {
			t.Errorf("%s: NTTAccelerated = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSubgroupGeneratorMatchesLagrange rebuilds the fast-path generator with
// poly.InterpWeightsBatch over the SAME subgroup points: by uniqueness of
// the interpolant the transform pipeline must reproduce ℓ_j(α_i) bit-exactly,
// and the systematic columns must be exact unit vectors (the property the
// zero-copy shards rely on).
func TestSubgroupGeneratorMatchesLagrange(t *testing.T) {
	f := field.NTTFriendly()
	for _, sh := range nttDiffShapes {
		code, err := New(f, sh.n, sh.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", sh.n, sh.k, err)
		}
		if !code.NTTAccelerated() {
			t.Fatalf("(%d,%d): expected the fast path", sh.n, sh.k)
		}
		gen := code.Generator()
		ref := poly.InterpWeightsBatch(f, code.alphas[:sh.k], code.alphas)
		for i := 0; i < sh.n; i++ {
			for j := 0; j < sh.k; j++ {
				if gen.At(j, i) != ref[i][j] {
					t.Fatalf("(%d,%d): gen[%d][%d] = %d, Lagrange says %d",
						sh.n, sh.k, j, i, gen.At(j, i), ref[i][j])
				}
			}
		}
		for i := 0; i < sh.k; i++ {
			for j := 0; j < sh.k; j++ {
				want := field.Elem(0)
				if i == j {
					want = 1
				}
				if gen.At(j, i) != want {
					t.Fatalf("(%d,%d): systematic column %d is not a unit vector", sh.n, sh.k, i)
				}
			}
		}
	}
}

// naiveEncode is the reference encoder: per-element Σ_j gen[j][i]·block_j
// with immediate modular arithmetic — no lazy accumulation, no fused
// kernel, no transforms.
func naiveEncode(f *field.Field, gen *fieldmat.Matrix, blocks []*fieldmat.Matrix, n int) []*fieldmat.Matrix {
	out := make([]*fieldmat.Matrix, n)
	for i := 0; i < n; i++ {
		sh := fieldmat.NewMatrix(blocks[0].Rows, blocks[0].Cols)
		for j, b := range blocks {
			coef := gen.At(j, i)
			for e, v := range b.Data {
				sh.Data[e] = f.Add(sh.Data[e], f.Mul(coef, v))
			}
		}
		out[i] = sh
	}
	return out
}

// TestNTTEncodeMatchesNaiveReference drives the full fast-path encoder
// (zero-copy shards + fused parity kernel) against the naive reference,
// including a matrix of all q−1 values — the lazy-accumulator worst case.
func TestNTTEncodeMatchesNaiveReference(t *testing.T) {
	f := field.NTTFriendly()
	rng := rand.New(rand.NewSource(91))
	for _, sh := range nttDiffShapes {
		code, err := New(f, sh.n, sh.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", sh.n, sh.k, err)
		}
		for trial := 0; trial < 2; trial++ {
			x := fieldmat.Rand(f, rng, 3*sh.k, 17)
			if trial == 1 {
				for e := range x.Data {
					x.Data[e] = f.Q() - 1
				}
			}
			blocks := fieldmat.SplitRows(x, sh.k)
			want := naiveEncode(f, code.Generator(), blocks, sh.n)
			got, err := code.EncodeMatrix(x)
			if err != nil {
				t.Fatalf("(%d,%d) trial %d: %v", sh.n, sh.k, trial, err)
			}
			for i := range got {
				if !got[i].Equal(want[i]) {
					t.Fatalf("(%d,%d) trial %d: shard %d diverges from naive reference",
						sh.n, sh.k, trial, i)
				}
			}
		}
	}
}

// TestNTTEncodeDecodeRoundTrip closes the loop on the fast path: encode,
// compute per-shard results, decode from assorted K-subsets (and a shuffled
// ordering), recover the direct product.
func TestNTTEncodeDecodeRoundTrip(t *testing.T) {
	f := field.NTTFriendly()
	rng := rand.New(rand.NewSource(92))
	code, err := New(f, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !code.NTTAccelerated() {
		t.Fatal("expected the fast path")
	}
	x := fieldmat.Rand(f, rng, 27, 8)
	w := f.RandVec(rng, 8)
	shards, err := code.EncodeMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	want := fieldmat.MatVec(f, x, w)
	results := make([][]field.Elem, 12)
	for i, s := range shards {
		results[i] = fieldmat.MatVec(f, s, w)
	}
	for _, idx := range [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7, 8},
		{3, 4, 5, 6, 7, 8, 9, 10, 11},
		{0, 2, 4, 6, 8, 9, 10, 11, 1},
		{11, 0, 9, 2, 7, 4, 5, 6, 3},
	} {
		res := make([][]field.Elem, len(idx))
		for r, i := range idx {
			res[r] = results[i]
		}
		got, err := code.DecodeConcat(idx, res)
		if err != nil {
			t.Fatalf("decode %v: %v", idx, err)
		}
		if !field.EqualVec(got, want) {
			t.Fatalf("decode %v did not recover X·w", idx)
		}
	}
}

// TestEncodeMatrixZeroCopyViews checks the fast path's aliasing contract:
// the first K shards share x's backing storage, byte for byte.
func TestEncodeMatrixZeroCopyViews(t *testing.T) {
	f := field.NTTFriendly()
	rng := rand.New(rand.NewSource(93))
	code, err := New(f, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 18, 4)
	shards, err := code.EncodeMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	width := (x.Rows / 9) * x.Cols
	for i := 0; i < 9; i++ {
		if &shards[i].Data[0] != &x.Data[i*width] {
			t.Fatalf("shard %d does not view x's block %d", i, i)
		}
	}
	for i := 9; i < 12; i++ {
		if len(shards[i].Data) != width {
			t.Fatalf("parity shard %d has width %d, want %d", i, len(shards[i].Data), width)
		}
	}
}

// TestEncodeMatrixIntoAllocs pins the steady-state allocation count of the
// Into form to zero on both paths — the satellite fix for the seed
// encoder's 44 allocs/op (SplitRows copies plus per-shard matrices).
func TestEncodeMatrixIntoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for _, tc := range []struct {
		name string
		f    *field.Field
	}{
		{"ntt path", field.NTTFriendly()},
		{"lagrange path", field.Default()},
	} {
		code, err := New(tc.f, 12, 9)
		if err != nil {
			t.Fatal(err)
		}
		x := fieldmat.Rand(tc.f, rng, 36, 7)
		shards := make([]*fieldmat.Matrix, 12)
		if err := code.EncodeMatrixInto(shards, x); err != nil { // warm: allocate shard storage
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(20, func() {
			if err := code.EncodeMatrixInto(shards, x); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%s: EncodeMatrixInto allocates %.1f/op in steady state, want 0", tc.name, avg)
		}
	}
}

// TestDecodeIntoAllocs pins the steady-state decode to zero allocations on
// plan-cache hits (the round loop's common case).
func TestDecodeIntoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	f := field.NTTFriendly()
	code, err := New(f, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 27, 6)
	w := f.RandVec(rng, 6)
	shards, err := code.EncodeMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{0, 2, 3, 5, 6, 7, 9, 10, 11}
	res := make([][]field.Elem, len(idx))
	for r, i := range idx {
		res[r] = fieldmat.MatVec(f, shards[i], w)
	}
	dst := make([][]field.Elem, 9)
	for j := range dst {
		dst[j] = make([]field.Elem, 3)
	}
	flat := make([]field.Elem, 27)
	if err := code.DecodeVectorsInto(dst, idx, res); err != nil { // warm the plan cache
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(20, func() {
		if err := code.DecodeVectorsInto(dst, idx, res); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("DecodeVectorsInto allocates %.1f/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		if err := code.DecodeConcatInto(flat, idx, res); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("DecodeConcatInto allocates %.1f/op in steady state, want 0", avg)
	}
	want := fieldmat.MatVec(f, x, w)
	if !field.EqualVec(flat, want) {
		t.Fatal("DecodeConcatInto result diverges")
	}
}

// TestLagrangePathUnchangedByRefactor cross-checks the Into refactor on the
// paper modulus at the paper shape: the new EncodeMatrix (no SplitRows
// copy) must reproduce the seed's EncodeBlocks∘SplitRows composition.
func TestLagrangePathUnchangedByRefactor(t *testing.T) {
	f := field.Default()
	rng := rand.New(rand.NewSource(96))
	code, err := New(f, 12, 9)
	if err != nil {
		t.Fatal(err)
	}
	if code.NTTAccelerated() {
		t.Fatal("paper modulus at (12,9) must take the Lagrange path")
	}
	x := fieldmat.Rand(f, rng, 36, 11)
	viaBlocks, err := code.EncodeBlocks(fieldmat.SplitRows(x, 9))
	if err != nil {
		t.Fatal(err)
	}
	viaMatrix, err := code.EncodeMatrix(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaBlocks {
		if !viaBlocks[i].Equal(viaMatrix[i]) {
			t.Fatalf("shard %d: EncodeMatrix diverges from EncodeBlocks∘SplitRows", i)
		}
	}
}
