// Package mds implements the (N,K) systematic MDS row-block code AVCC uses
// for linear computations (deg f = 1, T = 0), per Section IV-A of the paper.
//
// The dataset X is split into K equal row blocks X_1..X_K and the i-th
// worker receives X̃_i = Σ_j G[j][i]·X_j. The generator is built from
// Lagrange basis polynomials on distinct points, G[j][i] = ℓ_j(α_i) with the
// data points β_j = α_j for j ≤ K, which makes the code systematic
// (X̃_i = X_i for i ≤ K, exactly the (3,2) example in the paper's Fig. 1:
// X̃_1 = X_1, X̃_2 = X_2, X̃_3 = X_1 + X_2 up to the choice of points) and
// guarantees the defining MDS property: any K columns of G are linearly
// independent, so the master can decode from ANY K verified worker results.
//
// The same code encodes Xᵀ row-blocks for the second logistic-regression
// round (g = Xᵀe); the codec is agnostic to which matrix it shards.
package mds

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/poly"
)

// Code is an immutable (N,K) systematic MDS code over a prime field.
type Code struct {
	f *field.Field
	n int
	k int
	// gen is the K×N generator matrix; column i holds the combination
	// coefficients of worker i's shard.
	gen *fieldmat.Matrix
	// alphas are the evaluation points the generator was built from: worker
	// i holds the value at alphas[i], block j lives at alphas[j] (the
	// systematic property). Decode interpolates between them.
	alphas []field.Elem
	// plans memoizes decode weights per verified-worker set: the churn and
	// degrade scenarios decode the same survivor set every round, so the
	// weight computation (with its batched inversions) amortises to a map
	// lookup. See DESIGN.md §7 for the keying.
	plans *poly.DecodePlans
}

// New constructs an (n, k) code. It requires 1 ≤ k ≤ n and n < q (distinct
// evaluation points must exist).
func New(f *field.Field, n, k int) (*Code, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("mds: invalid parameters (N,K) = (%d,%d)", n, k)
	}
	if uint64(n) >= f.Q() {
		return nil, fmt.Errorf("mds: N = %d does not fit in field of size %d", n, f.Q())
	}
	alphas := f.DistinctPoints(n, 1) // α_i = i+1; β_j = α_j for j < k
	betas := alphas[:k]
	gen := fieldmat.NewMatrix(k, n)
	// Column i is ℓ_·(α_i); the batch shares one denominator inversion over
	// the betas across all N columns.
	for i, col := range poly.InterpWeightsBatch(f, betas, alphas) {
		for j, w := range col {
			gen.Set(j, i, w)
		}
	}
	return &Code{f: f, n: n, k: k, gen: gen, alphas: alphas,
		plans: poly.NewDecodePlans(f, betas)}, nil
}

// N returns the code length (number of workers).
func (c *Code) N() int { return c.n }

// K returns the code dimension (number of data blocks).
func (c *Code) K() int { return c.k }

// Field returns the underlying field.
func (c *Code) Field() *field.Field { return c.f }

// Generator returns a copy of the K×N generator matrix.
func (c *Code) Generator() *fieldmat.Matrix { return c.gen.Clone() }

// EncodeBlocks maps K equal-shape data blocks to N coded shards.
func (c *Code) EncodeBlocks(blocks []*fieldmat.Matrix) ([]*fieldmat.Matrix, error) {
	if len(blocks) != c.k {
		return nil, fmt.Errorf("mds: got %d blocks, code dimension is %d", len(blocks), c.k)
	}
	rows, cols := blocks[0].Rows, blocks[0].Cols
	for _, b := range blocks {
		if b.Rows != rows || b.Cols != cols {
			return nil, fmt.Errorf("mds: blocks have unequal shapes")
		}
	}
	shards := make([]*fieldmat.Matrix, c.n)
	for i := 0; i < c.n; i++ {
		sh := fieldmat.NewMatrix(rows, cols)
		for j := 0; j < c.k; j++ {
			coef := c.gen.At(j, i)
			if coef == 0 {
				continue
			}
			sh.AXPY(c.f, coef, blocks[j])
		}
		shards[i] = sh
	}
	return shards, nil
}

// EncodeMatrix splits x into K row blocks and encodes them. The row count
// must be divisible by K (callers pad if needed; the experiment harness
// always picks divisible shapes, as the paper does with m = 6000, K = 9 via
// padding to 6003 — see internal/dataset).
func (c *Code) EncodeMatrix(x *fieldmat.Matrix) ([]*fieldmat.Matrix, error) {
	if x.Rows%c.k != 0 {
		return nil, fmt.Errorf("mds: %d rows not divisible by K = %d", x.Rows, c.k)
	}
	return c.EncodeBlocks(fieldmat.SplitRows(x, c.k))
}

// DecodeVectors recovers the K per-block results Y_1..Y_K from exactly K
// verified worker results: results[r] = Σ_j G[j][workers[r]]·Y_j. This is
// the paper's step 4. Because G[j][i] = ℓ_j(α_i) over the data points, the
// results are evaluations at {α_workers[r]} of the degree-(K−1) vector
// polynomial whose value at β_j is Y_j — so decoding is interpolation, not
// linear solving: Y_j = Σ_r W[j][r]·results[r] with interpolation weights
// W[j][r] = ℓ'_r(β_j) over the points {α_workers[r]}. The weight matrix
// depends only on the worker set and is memoized (decodePlan), so repeated
// decodes from the same survivors — every steady round of every scenario —
// cost one lazy weighted pass per block and nothing else.
func (c *Code) DecodeVectors(workers []int, results [][]field.Elem) ([][]field.Elem, error) {
	if len(workers) != c.k || len(results) != c.k {
		return nil, fmt.Errorf("mds: decode needs exactly K = %d results, got %d", c.k, len(workers))
	}
	seen := make(map[int]bool, c.k)
	dim := len(results[0])
	for r, w := range workers {
		if w < 0 || w >= c.n {
			return nil, fmt.Errorf("mds: worker index %d out of range [0,%d)", w, c.n)
		}
		if seen[w] {
			return nil, fmt.Errorf("mds: duplicate worker index %d", w)
		}
		seen[w] = true
		if len(results[r]) != dim {
			return nil, fmt.Errorf("mds: ragged result vectors")
		}
	}
	xs := make([]field.Elem, len(workers))
	for r, w := range workers {
		xs[r] = c.alphas[w]
	}
	weights := c.plans.Weights(xs)
	out := make([][]field.Elem, c.k)
	for j := 0; j < c.k; j++ {
		out[j] = poly.CombineVectors(c.f, weights[j], results)
	}
	return out, nil
}

// DecodeConcat decodes like DecodeVectors and concatenates the block results
// into one vector — the shape the logistic-regression master consumes
// (z = Xw as a single length-m vector).
func (c *Code) DecodeConcat(workers []int, results [][]field.Elem) ([]field.Elem, error) {
	blocks, err := c.DecodeVectors(workers, results)
	if err != nil {
		return nil, err
	}
	out := make([]field.Elem, 0, len(blocks)*len(blocks[0]))
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out, nil
}
