// Package mds implements the (N,K) systematic MDS row-block code AVCC uses
// for linear computations (deg f = 1, T = 0), per Section IV-A of the paper.
//
// The dataset X is split into K equal row blocks X_1..X_K and the i-th
// worker receives X̃_i = Σ_j G[j][i]·X_j. The generator is built from
// Lagrange basis polynomials on distinct points, G[j][i] = ℓ_j(α_i) with the
// data points β_j = α_j for j ≤ K, which makes the code systematic
// (X̃_i = X_i for i ≤ K, exactly the (3,2) example in the paper's Fig. 1:
// X̃_1 = X_1, X̃_2 = X_2, X̃_3 = X_1 + X_2 up to the choice of points) and
// guarantees the defining MDS property: any K columns of G are linearly
// independent, so the master can decode from ANY K verified worker results.
//
// Two evaluation-point layouts coexist behind one Code type (DESIGN.md §12):
//
//   - Subgroup domain (the NTT fast path): when the field's 2-adicity hosts
//     a size-nextpow2(N) transform, the α_i are laid out inside a
//     power-of-two multiplicative subgroup of F_q* (poly.Subgroup). The
//     generator columns come from O(N log N) transforms, the systematic
//     property G[j][i] = δ_ij for i < K holds exactly — so the first K
//     shards are zero-copy views of the data — and the N−K parity shards
//     are produced by one fused weighted-combination kernel
//     (field.FusedCombineInto).
//   - Lagrange domain (the paper's modulus): α_i = i+1 via
//     field.DistinctPoints and dense interpolation weights, exactly the
//     committed trajectory. Selecting it keeps every byte of the artifact
//     history reproducible.
//
// Both layouts produce codes that are bit-exact evaluations of the same
// degree-<K interpolant over their respective point sets; the differential
// suite in ntt_diff_test.go pins the fast path to the Lagrange formulas on a
// shared point set.
//
// The same code encodes Xᵀ row-blocks for the second logistic-regression
// round (g = Xᵀe); the codec is agnostic to which matrix it shards.
package mds

import (
	"errors"
	"fmt"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/poly"
)

// Code is an immutable (N,K) systematic MDS code over a prime field.
type Code struct {
	f *field.Field
	n int
	k int
	// gen is the K×N generator matrix; column i holds the combination
	// coefficients of worker i's shard.
	gen *fieldmat.Matrix
	// alphas are the evaluation points the generator was built from: worker
	// i holds the value at alphas[i], block j lives at alphas[j] (the
	// systematic property). Decode interpolates between them.
	alphas []field.Elem
	// plans memoizes decode weights per verified-worker set: the churn and
	// degrade scenarios decode the same survivor set every round, so the
	// weight computation (with its batched inversions) amortises to a map
	// lookup. See DESIGN.md §7 for the keying.
	plans *poly.DecodePlans
	// domain is the subgroup evaluation/interpolation domain of the NTT
	// fast path, nil when the field's 2-adicity cannot host nextpow2(N)
	// points and the code runs on the Lagrange layout instead.
	domain *poly.Subgroup
	// parityW holds, fast path only, the N−K parity weight rows:
	// shard_{K+p} = Σ_j parityW[p][j]·block_j. These are the non-trivial
	// generator columns (the first K are unit vectors), extracted row-major
	// for the fused combine kernel.
	parityW [][]field.Elem
}

// New constructs an (n, k) code. It requires 1 ≤ k ≤ n and n < q (distinct
// evaluation points must exist). The evaluation-point layout is picked per
// (field, n, k): if the modulus hosts a size-nextpow2(n) NTT the subgroup
// fast path is used, otherwise the Lagrange layout — the paper's modulus
// (2-adicity 3) always takes the latter beyond n = 8.
func New(f *field.Field, n, k int) (*Code, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("mds: invalid parameters (N,K) = (%d,%d)", n, k)
	}
	if uint64(n) >= f.Q() {
		return nil, fmt.Errorf("mds: N = %d does not fit in field of size %d", n, f.Q())
	}
	sg, err := poly.NewSubgroup(f, n, k)
	if err == nil {
		return newSubgroupCode(f, n, k, sg), nil
	}
	// Fall back to the Lagrange layout only on the one expected failure:
	// the field's 2-adicity cannot host the domain (*field.NTTSizeError,
	// possibly wrapped with context by the poly layer — hence errors.As,
	// not a type assertion). Anything else is a real error and propagates.
	var sizeErr *field.NTTSizeError
	if !errors.As(err, &sizeErr) {
		return nil, fmt.Errorf("mds: building (%d,%d) subgroup domain: %w", n, k, err)
	}
	alphas := f.DistinctPoints(n, 1) // α_i = i+1; β_j = α_j for j < k
	betas := alphas[:k]
	gen := fieldmat.NewMatrix(k, n)
	// Column i is ℓ_·(α_i); the batch shares one denominator inversion over
	// the betas across all N columns.
	for i, col := range poly.InterpWeightsBatch(f, betas, alphas) {
		for j, w := range col {
			gen.Set(j, i, w)
		}
	}
	return &Code{f: f, n: n, k: k, gen: gen, alphas: alphas,
		plans: poly.NewDecodePlans(f, betas)}, nil
}

// newSubgroupCode builds the NTT-fast-path code: the generator columns are
// the subgroup-domain encodings of the unit data vectors, which by
// uniqueness of the degree-<k interpolant equal the Lagrange basis values
// ℓ_j(α_i) over the same points — bit-exactly, since both are exact field
// arithmetic.
func newSubgroupCode(f *field.Field, n, k int, sg *poly.Subgroup) *Code {
	alphas := sg.Points()
	gen := fieldmat.NewMatrix(k, n)
	y := make([]field.Elem, k)
	out := make([]field.Elem, n)
	for j := 0; j < k; j++ {
		clear(y)
		y[j] = 1
		sg.Encode(y, out)
		for i, v := range out {
			gen.Set(j, i, v)
		}
	}
	parityW := make([][]field.Elem, n-k)
	for p := range parityW {
		row := make([]field.Elem, k)
		for j := range row {
			row[j] = gen.At(j, k+p)
		}
		parityW[p] = row
	}
	return &Code{f: f, n: n, k: k, gen: gen, alphas: alphas,
		plans: poly.NewDecodePlans(f, alphas[:k]), domain: sg, parityW: parityW}
}

// N returns the code length (number of workers).
func (c *Code) N() int { return c.n }

// K returns the code dimension (number of data blocks).
func (c *Code) K() int { return c.k }

// Field returns the underlying field.
func (c *Code) Field() *field.Field { return c.f }

// NTTAccelerated reports whether this code runs on the subgroup fast path:
// O(N log N) generator construction, zero-copy systematic shards, and the
// fused parity kernel. False means the Lagrange layout (the paper's modulus
// beyond its 2-adicity, or any field without room for nextpow2(N) points).
func (c *Code) NTTAccelerated() bool { return c.domain != nil }

// Generator returns a copy of the K×N generator matrix.
func (c *Code) Generator() *fieldmat.Matrix { return c.gen.Clone() }

// EncodeBlocks maps K equal-shape data blocks to N coded shards.
//
// On the NTT fast path the first K shards ARE the input blocks (the
// systematic columns of the generator are exact unit vectors, so the copy
// the Lagrange path performs would be the identity): callers that mutate
// blocks after encoding must clone first. The Lagrange path returns fresh
// matrices throughout, as the seed did.
func (c *Code) EncodeBlocks(blocks []*fieldmat.Matrix) ([]*fieldmat.Matrix, error) {
	if len(blocks) != c.k {
		return nil, fmt.Errorf("mds: got %d blocks, code dimension is %d", len(blocks), c.k)
	}
	rows, cols := blocks[0].Rows, blocks[0].Cols
	for _, b := range blocks {
		if b.Rows != rows || b.Cols != cols {
			return nil, fmt.Errorf("mds: blocks have unequal shapes")
		}
	}
	shards := make([]*fieldmat.Matrix, c.n)
	if c.domain != nil {
		copy(shards, blocks) // zero-copy systematic shards
		if c.n > c.k {
			dsts := make([][]field.Elem, c.n-c.k)
			srcs := make([][]field.Elem, c.k)
			for j, b := range blocks {
				srcs[j] = b.Data
			}
			for p := range dsts {
				sh := fieldmat.NewMatrix(rows, cols)
				shards[c.k+p] = sh
				dsts[p] = sh.Data
			}
			c.f.FusedCombineInto(dsts, c.parityW, srcs)
		}
		return shards, nil
	}
	for i := 0; i < c.n; i++ {
		sh := fieldmat.NewMatrix(rows, cols)
		for j := 0; j < c.k; j++ {
			coef := c.gen.At(j, i)
			if coef == 0 {
				continue
			}
			sh.AXPY(c.f, coef, blocks[j])
		}
		shards[i] = sh
	}
	return shards, nil
}

// EncodeMatrix splits x into K row blocks and encodes them. The row count
// must be divisible by K (callers pad if needed; the experiment harness
// always picks divisible shapes, as the paper does with m = 6000, K = 9 via
// padding to 6003 — see internal/dataset).
//
// On the NTT fast path the first K shards are views into x's backing slice
// (zero-copy systematic property); see EncodeMatrixInto.
func (c *Code) EncodeMatrix(x *fieldmat.Matrix) ([]*fieldmat.Matrix, error) {
	shards := make([]*fieldmat.Matrix, c.n)
	if err := c.EncodeMatrixInto(shards, x); err != nil {
		return nil, err
	}
	return shards, nil
}

// EncodeMatrixInto encodes x into caller-owned shards: the steady-state form
// with zero heap allocations once the shard headers exist. shards must have
// length N; nil entries are allocated, non-nil entries are resized and
// overwritten in place when their backing capacity already fits.
//
// On the NTT fast path the first K shards become views of x's row blocks
// (their Data fields alias x.Data — the systematic generator columns are
// unit vectors, so materialising them would copy the identity) and only the
// N−K parity shards own storage, written by one fused combine pass. On the
// Lagrange path every shard owns storage and is accumulated with the
// clear+AXPY structure of the committed trajectory, minus the seed's
// intermediate SplitRows copy — the sharded AXPY reads straight out of x.
//
//avcc:noalloc
func (c *Code) EncodeMatrixInto(shards []*fieldmat.Matrix, x *fieldmat.Matrix) error {
	if x.Rows%c.k != 0 {
		//avcc:alloc-ok cold misuse path
		return fmt.Errorf("mds: %d rows not divisible by K = %d", x.Rows, c.k)
	}
	if len(shards) != c.n {
		//avcc:alloc-ok cold misuse path
		return fmt.Errorf("mds: got %d shard slots, code length is %d", len(shards), c.n)
	}
	per := x.Rows / c.k
	width := per * x.Cols
	//avcc:alloc-ok stack closure (called directly, never escapes); shard refills inside run on first use only
	own := func(i int) *fieldmat.Matrix { // shard i with owned, right-sized storage
		sh := shards[i]
		if sh == nil {
			sh = new(fieldmat.Matrix)
			shards[i] = sh
		}
		sh.Rows, sh.Cols = per, x.Cols
		if len(sh.Data) != width {
			sh.Data = make([]field.Elem, width)
		}
		return sh
	}
	if c.domain != nil {
		for i := 0; i < c.k; i++ {
			sh := shards[i]
			if sh == nil {
				sh = new(fieldmat.Matrix) //avcc:alloc-ok first-use shard-header fill; steady state reuses it
				shards[i] = sh
			}
			sh.Rows, sh.Cols = per, x.Cols
			sh.Data = x.Data[i*width : (i+1)*width : (i+1)*width]
		}
		if c.n == c.k {
			return nil
		}
		var dstArr, srcArr [64][]field.Elem
		dsts, srcs := dstArr[:0], srcArr[:0]
		if c.n-c.k > len(dstArr) {
			dsts = make([][]field.Elem, 0, c.n-c.k) //avcc:alloc-ok beyond the 64-shard stack arrays only
		}
		if c.k > len(srcArr) {
			srcs = make([][]field.Elem, 0, c.k) //avcc:alloc-ok beyond the 64-shard stack arrays only
		}
		for p := c.k; p < c.n; p++ {
			dsts = append(dsts, own(p).Data) //avcc:alloc-ok capacity reserved above (stack array or exact-cap make); cannot grow
		}
		for j := 0; j < c.k; j++ {
			srcs = append(srcs, x.Data[j*width:(j+1)*width]) //avcc:alloc-ok capacity reserved above (stack array or exact-cap make); cannot grow
		}
		c.f.FusedCombineInto(dsts, c.parityW, srcs)
		return nil
	}
	for i := 0; i < c.n; i++ {
		sh := own(i)
		clear(sh.Data)
		for j := 0; j < c.k; j++ {
			if coef := c.gen.At(j, i); coef != 0 {
				c.f.AXPY(sh.Data, coef, x.Data[j*width:(j+1)*width])
			}
		}
	}
	return nil
}

// DecodeVectors recovers the K per-block results Y_1..Y_K from exactly K
// verified worker results: results[r] = Σ_j G[j][workers[r]]·Y_j. This is
// the paper's step 4. Because G[j][i] = ℓ_j(α_i) over the data points, the
// results are evaluations at {α_workers[r]} of the degree-(K−1) vector
// polynomial whose value at β_j is Y_j — so decoding is interpolation, not
// linear solving: Y_j = Σ_r W[j][r]·results[r] with interpolation weights
// W[j][r] = ℓ'_r(β_j) over the points {α_workers[r]}. The weight matrix
// depends only on the worker set and is memoized (decodePlan), so repeated
// decodes from the same survivors — every steady round of every scenario —
// cost one lazy weighted pass per block and nothing else.
func (c *Code) DecodeVectors(workers []int, results [][]field.Elem) ([][]field.Elem, error) {
	dim, err := c.checkDecodeArgs(workers, results)
	if err != nil {
		return nil, err
	}
	out := make([][]field.Elem, c.k)
	for j := range out {
		out[j] = make([]field.Elem, dim)
	}
	if err := c.DecodeVectorsInto(out, workers, results); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeVectorsInto decodes into caller-owned block rows — the zero-
// -allocation steady-state form (on decode-plan cache hits, the round loop's
// common case). dst must have K rows matching the result dimension; rows are
// overwritten and must not alias the results.
//
//avcc:noalloc
func (c *Code) DecodeVectorsInto(dst [][]field.Elem, workers []int, results [][]field.Elem) error {
	dim, err := c.checkDecodeArgs(workers, results)
	if err != nil {
		return err
	}
	if len(dst) != c.k {
		//avcc:alloc-ok cold misuse path
		return fmt.Errorf("mds: got %d output rows, code dimension is %d", len(dst), c.k)
	}
	for _, d := range dst {
		if len(d) != dim {
			//avcc:alloc-ok cold misuse path
			return fmt.Errorf("mds: output rows do not match result dimension %d", dim)
		}
	}
	weights := c.weightsFor(workers)
	for j := 0; j < c.k; j++ {
		poly.CombineVectorsInto(c.f, dst[j], weights[j], results)
	}
	return nil
}

// DecodeConcat decodes like DecodeVectors and concatenates the block results
// into one vector — the shape the logistic-regression master consumes
// (z = Xw as a single length-m vector).
func (c *Code) DecodeConcat(workers []int, results [][]field.Elem) ([]field.Elem, error) {
	dim, err := c.checkDecodeArgs(workers, results)
	if err != nil {
		return nil, err
	}
	out := make([]field.Elem, c.k*dim)
	if err := c.DecodeConcatInto(out, workers, results); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeConcatInto is DecodeConcat writing into a caller-owned vector of
// length K·dim — zero heap allocations on decode-plan cache hits.
//
//avcc:noalloc
func (c *Code) DecodeConcatInto(dst []field.Elem, workers []int, results [][]field.Elem) error {
	dim, err := c.checkDecodeArgs(workers, results)
	if err != nil {
		return err
	}
	if len(dst) != c.k*dim {
		//avcc:alloc-ok cold misuse path
		return fmt.Errorf("mds: got output length %d, want K·dim = %d", len(dst), c.k*dim)
	}
	weights := c.weightsFor(workers)
	for j := 0; j < c.k; j++ {
		poly.CombineVectorsInto(c.f, dst[j*dim:(j+1)*dim], weights[j], results)
	}
	return nil
}

// checkDecodeArgs validates a decode request and returns the result
// dimension. The duplicate-worker scan is O(K²) on purpose: K is a worker
// count (a dozen or two), and the quadratic scan beats allocating a map on
// every round-loop decode.
func (c *Code) checkDecodeArgs(workers []int, results [][]field.Elem) (int, error) {
	if len(workers) != c.k || len(results) != c.k {
		return 0, fmt.Errorf("mds: decode needs exactly K = %d results, got %d", c.k, len(workers))
	}
	dim := len(results[0])
	for r, w := range workers {
		if w < 0 || w >= c.n {
			return 0, fmt.Errorf("mds: worker index %d out of range [0,%d)", w, c.n)
		}
		for _, prev := range workers[:r] {
			if prev == w {
				return 0, fmt.Errorf("mds: duplicate worker index %d", w)
			}
		}
		if len(results[r]) != dim {
			return 0, fmt.Errorf("mds: ragged result vectors")
		}
	}
	return dim, nil
}

// weightsFor maps a validated worker set to its memoized interpolation
// weight matrix. The point-set key is assembled on the stack for worker
// counts up to 64, so cache hits allocate nothing.
func (c *Code) weightsFor(workers []int) [][]field.Elem {
	var arr [64]field.Elem
	xs := arr[:0]
	if c.k > len(arr) {
		xs = make([]field.Elem, 0, c.k)
	}
	for _, w := range workers {
		xs = append(xs, c.alphas[w])
	}
	return c.plans.Weights(xs)
}
