// Package mds implements the (N,K) systematic MDS row-block code AVCC uses
// for linear computations (deg f = 1, T = 0), per Section IV-A of the paper.
//
// The dataset X is split into K equal row blocks X_1..X_K and the i-th
// worker receives X̃_i = Σ_j G[j][i]·X_j. The generator is built from
// Lagrange basis polynomials on distinct points, G[j][i] = ℓ_j(α_i) with the
// data points β_j = α_j for j ≤ K, which makes the code systematic
// (X̃_i = X_i for i ≤ K, exactly the (3,2) example in the paper's Fig. 1:
// X̃_1 = X_1, X̃_2 = X_2, X̃_3 = X_1 + X_2 up to the choice of points) and
// guarantees the defining MDS property: any K columns of G are linearly
// independent, so the master can decode from ANY K verified worker results.
//
// The same code encodes Xᵀ row-blocks for the second logistic-regression
// round (g = Xᵀe); the codec is agnostic to which matrix it shards.
package mds

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

// Code is an immutable (N,K) systematic MDS code over a prime field.
type Code struct {
	f *field.Field
	n int
	k int
	// gen is the K×N generator matrix; column i holds the combination
	// coefficients of worker i's shard.
	gen *fieldmat.Matrix
}

// New constructs an (n, k) code. It requires 1 ≤ k ≤ n and n < q (distinct
// evaluation points must exist).
func New(f *field.Field, n, k int) (*Code, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("mds: invalid parameters (N,K) = (%d,%d)", n, k)
	}
	if uint64(n) >= f.Q() {
		return nil, fmt.Errorf("mds: N = %d does not fit in field of size %d", n, f.Q())
	}
	alphas := f.DistinctPoints(n, 1) // α_i = i+1; β_j = α_j for j < k
	betas := alphas[:k]
	gen := fieldmat.NewMatrix(k, n)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			gen.Set(j, i, lagrangeCoeff(f, betas, j, alphas[i]))
		}
	}
	return &Code{f: f, n: n, k: k, gen: gen}, nil
}

// lagrangeCoeff evaluates ℓ_j(z) over the points in betas.
func lagrangeCoeff(f *field.Field, betas []field.Elem, j int, z field.Elem) field.Elem {
	num := field.Elem(1)
	den := field.Elem(1)
	for m, bm := range betas {
		if m == j {
			continue
		}
		num = f.Mul(num, f.Sub(z, bm))
		den = f.Mul(den, f.Sub(betas[j], bm))
	}
	return f.Div(num, den)
}

// N returns the code length (number of workers).
func (c *Code) N() int { return c.n }

// K returns the code dimension (number of data blocks).
func (c *Code) K() int { return c.k }

// Field returns the underlying field.
func (c *Code) Field() *field.Field { return c.f }

// Generator returns a copy of the K×N generator matrix.
func (c *Code) Generator() *fieldmat.Matrix { return c.gen.Clone() }

// EncodeBlocks maps K equal-shape data blocks to N coded shards.
func (c *Code) EncodeBlocks(blocks []*fieldmat.Matrix) ([]*fieldmat.Matrix, error) {
	if len(blocks) != c.k {
		return nil, fmt.Errorf("mds: got %d blocks, code dimension is %d", len(blocks), c.k)
	}
	rows, cols := blocks[0].Rows, blocks[0].Cols
	for _, b := range blocks {
		if b.Rows != rows || b.Cols != cols {
			return nil, fmt.Errorf("mds: blocks have unequal shapes")
		}
	}
	shards := make([]*fieldmat.Matrix, c.n)
	for i := 0; i < c.n; i++ {
		sh := fieldmat.NewMatrix(rows, cols)
		for j := 0; j < c.k; j++ {
			coef := c.gen.At(j, i)
			if coef == 0 {
				continue
			}
			sh.AXPY(c.f, coef, blocks[j])
		}
		shards[i] = sh
	}
	return shards, nil
}

// EncodeMatrix splits x into K row blocks and encodes them. The row count
// must be divisible by K (callers pad if needed; the experiment harness
// always picks divisible shapes, as the paper does with m = 6000, K = 9 via
// padding to 6003 — see internal/dataset).
func (c *Code) EncodeMatrix(x *fieldmat.Matrix) ([]*fieldmat.Matrix, error) {
	if x.Rows%c.k != 0 {
		return nil, fmt.Errorf("mds: %d rows not divisible by K = %d", x.Rows, c.k)
	}
	return c.EncodeBlocks(fieldmat.SplitRows(x, c.k))
}

// DecodeVectors recovers the K per-block results Y_1..Y_K from exactly K
// verified worker results: results[r] = Σ_j G[j][workers[r]]·Y_j. This is
// the paper's step 4 — multiply by the inverse of the K×K submatrix of the
// generator selected by the verified workers' indices.
func (c *Code) DecodeVectors(workers []int, results [][]field.Elem) ([][]field.Elem, error) {
	if len(workers) != c.k || len(results) != c.k {
		return nil, fmt.Errorf("mds: decode needs exactly K = %d results, got %d", c.k, len(workers))
	}
	seen := make(map[int]bool, c.k)
	dim := len(results[0])
	for r, w := range workers {
		if w < 0 || w >= c.n {
			return nil, fmt.Errorf("mds: worker index %d out of range [0,%d)", w, c.n)
		}
		if seen[w] {
			return nil, fmt.Errorf("mds: duplicate worker index %d", w)
		}
		seen[w] = true
		if len(results[r]) != dim {
			return nil, fmt.Errorf("mds: ragged result vectors")
		}
	}
	// A[r][j] = G[j][workers[r]]; R = A·Y.
	a := fieldmat.NewMatrix(c.k, c.k)
	rmat := fieldmat.NewMatrix(c.k, dim)
	for r, w := range workers {
		for j := 0; j < c.k; j++ {
			a.Set(r, j, c.gen.At(j, w))
		}
		copy(rmat.Row(r), results[r])
	}
	y, err := fieldmat.SolveMatrix(c.f, a, rmat)
	if err != nil {
		// Any K columns of the generator are independent by construction,
		// so this indicates corrupted inputs, not bad luck.
		return nil, fmt.Errorf("mds: decode system singular (corrupted inputs?): %w", err)
	}
	out := make([][]field.Elem, c.k)
	for j := 0; j < c.k; j++ {
		out[j] = field.CopyVec(y.Row(j))
	}
	return out, nil
}

// DecodeConcat decodes like DecodeVectors and concatenates the block results
// into one vector — the shape the logistic-regression master consumes
// (z = Xw as a single length-m vector).
func (c *Code) DecodeConcat(workers []int, results [][]field.Elem) ([]field.Elem, error) {
	blocks, err := c.DecodeVectors(workers, results)
	if err != nil {
		return nil, err
	}
	out := make([]field.Elem, 0, len(blocks)*len(blocks[0]))
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out, nil
}
