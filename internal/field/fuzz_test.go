package field

import "testing"

// Native fuzz targets: the seed corpus runs as part of `go test`, and
// `go test -fuzz=FuzzX` explores further. Both target the invariants the
// protocol's correctness rests on.

// FuzzSignedEmbedding checks the two's-complement-style embedding round
// trip and its additive homomorphism for arbitrary in-window integers.
func FuzzSignedEmbedding(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(1), int64(-1))
	f.Add(int64(16777196), int64(-16777196)) // ±(q-1)/2
	f.Add(int64(12345), int64(-54321))
	fd := Default()
	half := int64((fd.Q() - 1) / 2)
	f.Fuzz(func(t *testing.T, a, b int64) {
		a %= half / 2
		b %= half / 2
		if fd.ToInt64(fd.FromInt64(a)) != a {
			t.Fatalf("round trip failed for %d", a)
		}
		sum := fd.ToInt64(fd.Add(fd.FromInt64(a), fd.FromInt64(b)))
		if sum != a+b {
			t.Fatalf("homomorphism failed: %d + %d -> %d", a, b, sum)
		}
	})
}

// FuzzFieldInverse checks x·x⁻¹ = 1 for arbitrary nonzero elements across
// two moduli.
func FuzzFieldInverse(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(2))
	f.Add(uint64(33554392))
	f.Add(uint64(987654321))
	fd := Default()
	small := MustNew(97)
	f.Fuzz(func(t *testing.T, raw uint64) {
		for _, fld := range []*Field{fd, small} {
			x := raw % fld.Q()
			if x == 0 {
				continue
			}
			if fld.Mul(x, fld.Inv(x)) != 1 {
				t.Fatalf("q=%d: inverse of %d wrong", fld.Q(), x)
			}
		}
	})
}
