package field

import (
	"math/rand"
	"testing"
)

// naiveCombine is the obvious reference: canonical multiply-add per term.
func naiveCombine(f *Field, w [][]Elem, srcs [][]Elem, width int) [][]Elem {
	out := make([][]Elem, len(w))
	for p := range w {
		out[p] = make([]Elem, width)
		for i := range out[p] {
			var acc Elem
			for j := range srcs {
				acc = f.MulAdd(acc, w[p][j], srcs[j][i])
			}
			out[p][i] = acc
		}
	}
	return out
}

// TestFusedCombineMatchesNaive sweeps destination/source counts across the
// kernel's dispatch boundaries (head sizes 1–3, middle groups, the final
// fused group, the <4-source and remainder-destination LazyAcc paths) and
// row lengths across the tile boundary, on both moduli, including the
// worst case of every operand at q−1.
func TestFusedCombineMatchesNaive(t *testing.T) {
	shapes := []struct{ p, k int }{
		{3, 9}, {3, 4}, {3, 5}, {3, 6}, {3, 7}, {3, 12},
		{1, 2}, {2, 3}, {4, 9}, {5, 9}, {6, 4}, {2, 9}, {3, 1}, {3, 3}, {1, 1},
	}
	widths := []int{1, 7, fusedTile - 1, fusedTile, fusedTile + 5, 3*fusedTile + 11}
	for _, f := range []*Field{Default(), NTTFriendly()} {
		rng := rand.New(rand.NewSource(31))
		for _, sh := range shapes {
			for _, width := range widths {
				if width > fusedTile && sh != (struct{ p, k int }{3, 9}) {
					continue // multi-tile sweep only at the hot shape
				}
				srcs := make([][]Elem, sh.k)
				for j := range srcs {
					srcs[j] = f.RandVec(rng, width)
				}
				w := make([][]Elem, sh.p)
				dsts := make([][]Elem, sh.p)
				for p := range w {
					w[p] = f.RandVec(rng, sh.k)
					dsts[p] = make([]Elem, width)
				}
				want := naiveCombine(f, w, srcs, width)
				f.FusedCombineInto(dsts, w, srcs)
				for p := range dsts {
					if !EqualVec(dsts[p], want[p]) {
						t.Fatalf("q=%d shape (%d dsts × %d srcs) width %d: row %d diverges",
							f.Q(), sh.p, sh.k, width, p)
					}
				}
			}
		}
		// Worst case: every source element and weight at q−1 must not
		// overflow the structural lazy bound.
		const width = fusedTile + 3
		srcs := make([][]Elem, 9)
		w := make([][]Elem, 3)
		dsts := make([][]Elem, 3)
		for j := range srcs {
			srcs[j] = make([]Elem, width)
			for i := range srcs[j] {
				srcs[j][i] = f.Q() - 1
			}
		}
		for p := range w {
			w[p] = make([]Elem, 9)
			for j := range w[p] {
				w[p][j] = f.Q() - 1
			}
			dsts[p] = make([]Elem, width)
		}
		want := naiveCombine(f, w, srcs, width)
		f.FusedCombineInto(dsts, w, srcs)
		for p := range dsts {
			if !EqualVec(dsts[p], want[p]) {
				t.Fatalf("q=%d: all-(q−1) worst case diverges on row %d", f.Q(), p)
			}
		}
	}
}

func TestFusedCombineZeroSources(t *testing.T) {
	f := Default()
	dsts := [][]Elem{{1, 2, 3}, {4, 5, 6}}
	f.FusedCombineInto(dsts, [][]Elem{{}, {}}, nil)
	for _, d := range dsts {
		for _, v := range d {
			if v != 0 {
				t.Fatal("zero-source combine must clear the destinations")
			}
		}
	}
	f.FusedCombineInto(nil, nil, nil) // no destinations: a no-op
}

// TestFusedCombineBeyondLazyBatch forces more sources than the lazy budget,
// which must take the reducing LazyAcc path and stay exact.
func TestFusedCombineBeyondLazyBatch(t *testing.T) {
	f := Default()
	k := f.LazyBatch() + 3
	const width = 4
	srcs := make([][]Elem, k)
	for j := range srcs {
		srcs[j] = []Elem{f.Q() - 1, f.Q() - 1, uint64(j) % f.Q(), 1}
	}
	w := make([][]Elem, 3)
	dsts := make([][]Elem, 3)
	for p := range w {
		w[p] = make([]Elem, k)
		for j := range w[p] {
			w[p][j] = f.Q() - 1 - uint64(p)
		}
		dsts[p] = make([]Elem, width)
	}
	want := naiveCombine(f, w, srcs, width)
	f.FusedCombineInto(dsts, w, srcs)
	for p := range dsts {
		if !EqualVec(dsts[p], want[p]) {
			t.Fatalf("row %d diverges beyond the lazy batch", p)
		}
	}
}

// BenchmarkFusedCombineParity is the paper-shape parity computation: 3
// parity rows from 9 source blocks of 667×1000 elements (the (12,9) code at
// GISETTE scale). The artifact row lives in BENCH_kernels.json (MDSEncode).
func BenchmarkFusedCombineParity(b *testing.B) {
	f := NTTFriendly()
	rng := rand.New(rand.NewSource(33))
	const width = 667 * 1000
	srcs := make([][]Elem, 9)
	for j := range srcs {
		srcs[j] = f.RandVec(rng, width)
	}
	w := make([][]Elem, 3)
	dsts := make([][]Elem, 3)
	for p := range w {
		w[p] = f.RandVec(rng, 9)
		dsts[p] = make([]Elem, width)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FusedCombineInto(dsts, w, srcs)
	}
}

func TestFusedCombineZeroAllocs(t *testing.T) {
	f := NTTFriendly()
	rng := rand.New(rand.NewSource(32))
	srcs := make([][]Elem, 9)
	for j := range srcs {
		srcs[j] = f.RandVec(rng, 2*fusedTile+9)
	}
	w := make([][]Elem, 3)
	dsts := make([][]Elem, 3)
	for p := range w {
		w[p] = f.RandVec(rng, 9)
		dsts[p] = make([]Elem, 2*fusedTile+9)
	}
	run := func() { f.FusedCombineInto(dsts, w, srcs) }
	run() // warm the accumulator pool
	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Fatalf("FusedCombineInto allocates %.0f per op in steady state, want 0", allocs)
	}
}
