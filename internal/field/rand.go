package field

import "math/rand"

// Randomness over F_q. Three call sites need uniform field elements:
//
//  1. Freivalds verification keys r (soundness 1/q per trial hinges on
//     uniformity),
//  2. the LCC privacy masks W_{K+1..K+T} (T-privacy hinges on uniformity),
//  3. tests and workload generators.
//
// All three draw through a caller-supplied *rand.Rand so experiments are
// reproducible from a single seed; the package never touches global state.

// Rand returns a uniform element of [0, q) using rejection sampling, which
// removes the modulo bias a bare Int63n-style draw would carry into the
// verification-soundness and privacy arguments.
func (f *Field) Rand(rng *rand.Rand) Elem {
	// Largest multiple of q below 2^63 (rand.Int63 yields 63 uniform bits).
	limit := (uint64(1) << 63) / f.q * f.q
	for {
		v := uint64(rng.Int63())
		if v < limit {
			return v % f.q
		}
	}
}

// RandVec fills and returns a fresh uniform vector of length n.
func (f *Field) RandVec(rng *rand.Rand, n int) []Elem {
	out := make([]Elem, n)
	for i := range out {
		out[i] = f.Rand(rng)
	}
	return out
}

// RandNonZero returns a uniform element of [1, q).
func (f *Field) RandNonZero(rng *rand.Rand) Elem {
	for {
		if v := f.Rand(rng); v != 0 {
			return v
		}
	}
}

// DistinctPoints returns n distinct field elements starting from a small
// deterministic sequence 1, 2, 3, ... — the evaluation points α_i and β_j of
// the MDS/Lagrange codes do not need to be random, only distinct (and the
// paper additionally requires A ∩ B = ∅ when T > 0, which callers obtain by
// carving disjoint ranges out of this sequence).
func (f *Field) DistinctPoints(n int, start uint64) []Elem {
	if uint64(n) >= f.q {
		panic("field: more distinct points requested than field elements")
	}
	out := make([]Elem, n)
	for i := range out {
		out[i] = (start + uint64(i)) % f.q
	}
	return out
}
