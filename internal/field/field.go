// Package field implements arithmetic over a prime finite field F_q.
//
// The AVCC paper (Tang et al., IPDPS 2022) performs all coded computation,
// Freivalds verification and Lagrange/MDS coding over F_q with
// q = 2^25 - 39, the largest 25-bit prime. That choice guarantees that the
// worst-case inner product of a GISETTE-sized row (d = 5000) with a
// quantized weight vector fits in a signed 64-bit accumulator:
// d·(q-1)^2 ≤ 2^63 - 1.
//
// This package supports any prime modulus q < 2^32 so products of two
// canonical representatives fit in a uint64 without overflow. Elements are
// plain uint64 values in [0, q); all operations are methods on *Field so the
// modulus travels with the arithmetic and multiple fields can coexist (the
// dynamic-coding path re-encodes under the same field, but tests exercise
// several moduli).
package field

import (
	"fmt"
	"math/bits"
	"strconv"
	"sync"
)

// QDefault is the field size used throughout the paper's evaluation:
// 2^25 - 39 = 33554393, the largest 25-bit prime.
const QDefault uint64 = 1<<25 - 39

// QNTT is the NTT-friendly companion modulus: 23068673 = 11·2^21 + 1, a
// 25-bit prime whose multiplicative group contains subgroups of every
// power-of-two order up to 2^21. Like QDefault it is sized so the lazy
// reduction batch stays large (⌊(2^63−1)/(q−1)²⌋ = 17331 ≥ the d = 5000
// worst-case inner product the paper's field was chosen for), but unlike
// QDefault — whose q−1 = 2^3·7·599099 caps transforms at size 8 — it
// admits radix-2 NTTs at every code length this system deploys. See
// DESIGN.md §12.
const QNTT uint64 = 11<<21 + 1

// Elem is a canonical representative of a field element, always in [0, q).
// It is a bare integer rather than a struct so that large matrices of
// elements are dense and copy-friendly.
type Elem = uint64

// Field is an immutable description of F_q. The zero value is invalid; use
// New or MustNew.
type Field struct {
	q uint64
	// halfQ caches (q-1)/2, the threshold separating non-negative from
	// negative values in the two's-complement-style signed embedding.
	halfQ uint64
	// mu is the Barrett constant ⌊2^64/q⌋: for any x < 2^64 the quotient
	// estimate t = ⌊x·mu/2^64⌋ satisfies ⌊x/q⌋−1 ≤ t ≤ ⌊x/q⌋, so
	// x − t·q < 2q and one conditional subtraction yields x mod q. This
	// turns every reduction into a high-multiply plus a compare — no
	// hardware division on the hot path.
	mu uint64
	// lazyBatch is the delayed-reduction bound: the largest d with
	// d·(q−1)² ≤ 2^63−1, clamped to [1, 2^30]. A uint64 accumulator that
	// is canonical (< q) can absorb lazyBatch raw products of canonical
	// operands before a reduction is forced, because
	// (q−1) + d·(q−1)² ≤ (q−1) + 2^63−1 < 2^64. For the paper's
	// q = 2^25−39 this is 8192 — one reduction per 8192 multiply-adds,
	// exactly the headroom the paper chose the field for.
	lazyBatch int

	// NTT state, built lazily under nttMu: the cached primitive root of
	// F_q* (0 until first use) and one transform plan per power-of-two
	// size. Twiddle tables are pure functions of (q, size), so caching
	// them on the Field keeps every code and every column of a round
	// sharing one table set. See ntt.go.
	nttMu    sync.Mutex
	nttRoot  Elem
	nttPlans map[int]*NTTPlan
}

// lazyBatchCap bounds lazyBatch so chunk arithmetic stays in comfortable int
// range even for tiny moduli (where the true bound approaches 2^61).
const lazyBatchCap = 1 << 30

// New returns the field F_q. It returns an error unless q is an odd prime
// below 2^32 (the bound that keeps a single multiplication inside uint64).
func New(q uint64) (*Field, error) {
	if q >= 1<<32 {
		return nil, fmt.Errorf("field: modulus %d does not fit the q < 2^32 requirement", q)
	}
	if q < 3 {
		return nil, fmt.Errorf("field: modulus %d is too small", q)
	}
	if !isPrime(q) {
		return nil, fmt.Errorf("field: modulus %d is not prime", q)
	}
	f := &Field{q: q, halfQ: (q - 1) / 2}
	f.mu, _ = bits.Div64(1, 0, q) // ⌊2^64/q⌋
	batch := (uint64(1)<<63 - 1) / ((q - 1) * (q - 1))
	if batch < 1 {
		batch = 1
	}
	if batch > lazyBatchCap {
		batch = lazyBatchCap
	}
	f.lazyBatch = int(batch)
	return f, nil
}

// MustNew is New for known-good constants; it panics on error.
func MustNew(q uint64) *Field {
	f, err := New(q)
	if err != nil {
		panic(err)
	}
	return f
}

// The two shipped moduli are process-wide shared instances: a Field is safe
// for concurrent use (its NTT-plan cache is mutex-guarded, everything else
// is immutable), and sharing lets every caller reuse the same cached
// transform plans instead of rebuilding root-of-unity tables per call site.
var (
	defaultField     = MustNew(QDefault)
	nttFriendlyField = MustNew(QNTT)
)

// Default returns F_q for q = 2^25 - 39, the paper's field.
func Default() *Field { return defaultField }

// NTTFriendly returns F_q for q = QNTT = 11·2^21 + 1, the NTT-friendly
// companion modulus that unlocks the O(N log N) encode path (ntt.go).
func NTTFriendly() *Field { return nttFriendlyField }

// Select resolves a CLI -field flag value: "paper" (or "default") is the
// paper's q = 2^25−39, "ntt" is the NTT-friendly QNTT, and anything else
// must parse as a decimal prime modulus accepted by New.
func Select(name string) (*Field, error) {
	switch name {
	case "paper", "default":
		return Default(), nil
	case "ntt":
		return NTTFriendly(), nil
	}
	q, err := strconv.ParseUint(name, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("field: unknown field %q (want paper, ntt, or a decimal prime modulus)", name)
	}
	return New(q)
}

// Q returns the modulus.
func (f *Field) Q() uint64 { return f.q }

// LazyBatch returns the delayed-reduction bound: how many raw products of
// canonical elements a canonical uint64 accumulator can absorb before a
// reduction is required (see the lazyBatch field and DESIGN.md §7).
func (f *Field) LazyBatch() int { return f.lazyBatch }

// barrett reduces an arbitrary uint64 to canonical form via the precomputed
// Barrett constant: one 64×64→128 multiply, one multiply-subtract, one
// conditional subtraction. Exact for all x < 2^64 (see mu).
func (f *Field) barrett(x uint64) Elem {
	t, _ := bits.Mul64(x, f.mu)
	r := x - t*f.q
	if r >= f.q {
		r -= f.q
	}
	return r
}

// Reduce maps an arbitrary uint64 into canonical form.
func (f *Field) Reduce(x uint64) Elem { return f.barrett(x) }

// Add returns a + b mod q.
func (f *Field) Add(a, b Elem) Elem {
	s := a + b
	if s >= f.q {
		s -= f.q
	}
	return s
}

// Sub returns a - b mod q.
func (f *Field) Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + f.q - b
}

// Neg returns -a mod q.
func (f *Field) Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return f.q - a
}

// Mul returns a·b mod q. Both operands are canonical (< q < 2^32) so the
// product fits in uint64; the reduction is a Barrett multiply-shift, not a
// hardware division.
func (f *Field) Mul(a, b Elem) Elem { return f.barrett(a * b) }

// MulAdd returns acc + a·b mod q for canonical acc, a, b — the fused step of
// every inner product in the codebase. acc + a·b ≤ (q−1) + (q−1)² < 2^64, so
// a single Barrett reduction suffices.
func (f *Field) MulAdd(acc, a, b Elem) Elem {
	return f.barrett(acc + a*b)
}

// Exp returns a^e mod q by square-and-multiply.
func (f *Field) Exp(a Elem, e uint64) Elem {
	a %= f.q
	result := Elem(1)
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = f.Mul(result, a)
		}
		a = f.Mul(a, a)
	}
	return result
}

// Inv returns the multiplicative inverse a^(q-2) mod q. It panics on a == 0,
// which always indicates a programming error (singular decode matrix,
// repeated evaluation point) rather than a recoverable condition.
func (f *Field) Inv(a Elem) Elem {
	if a%f.q == 0 {
		panic("field: inverse of zero")
	}
	return f.Exp(a, f.q-2)
}

// Div returns a·b^(-1) mod q and panics when b == 0.
func (f *Field) Div(a, b Elem) Elem { return f.Mul(a, f.Inv(b)) }

// FromInt64 embeds a signed integer into F_q using the centered
// (two's-complement style) representation the paper uses for quantized
// weights: non-negative x maps to x mod q, negative x maps to q - (|x| mod q).
func (f *Field) FromInt64(x int64) Elem {
	if x >= 0 {
		return uint64(x) % f.q
	}
	m := uint64(-x) % f.q
	if m == 0 {
		return 0
	}
	return f.q - m
}

// ToInt64 is the inverse of FromInt64: values above (q-1)/2 are interpreted
// as negative. This is the "subtract q from all elements larger than
// (q-1)/2" step of the paper's dequantization.
func (f *Field) ToInt64(a Elem) int64 {
	a %= f.q
	if a > f.halfQ {
		return int64(a) - int64(f.q)
	}
	return int64(a)
}

// isPrime is a deterministic Miller–Rabin test, exact for all inputs below
// 2^64 with the witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := expMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = mulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// mulMod computes a·b mod m without overflow for arbitrary uint64 operands
// (needed only by the primality test, which must handle moduli near 2^32).
func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

func expMod(a, e, m uint64) uint64 {
	a %= m
	result := uint64(1)
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = mulMod(result, a, m)
		}
		a = mulMod(a, a, m)
	}
	return result
}
