package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var testFields = []*Field{
	Default(),
	MustNew(97),
	MustNew(7),
	MustNew(2147483647), // 2^31 - 1, Mersenne prime near the top of the range
	MustNew(4294967291), // largest prime below 2^32
}

func TestNewRejectsBadModuli(t *testing.T) {
	cases := []struct {
		q    uint64
		name string
	}{
		{0, "zero"},
		{1, "one"},
		{2, "two (even)"},
		{4, "composite small"},
		{1 << 25, "power of two"},
		{33554393 * 2, "even composite"},
		{1 << 32, "too large"},
		{1<<32 + 15, "too large prime"},
		{33554395, "composite near default"},
	}
	for _, c := range cases {
		if _, err := New(c.q); err == nil {
			t.Errorf("New(%d) (%s) accepted an invalid modulus", c.q, c.name)
		}
	}
}

func TestNewAcceptsKnownPrimes(t *testing.T) {
	for _, q := range []uint64{3, 5, 7, 97, QDefault, 2147483647, 4294967291} {
		if _, err := New(q); err != nil {
			t.Errorf("New(%d): %v", q, err)
		}
	}
}

func TestDefaultIsPaperField(t *testing.T) {
	f := Default()
	if f.Q() != 33554393 {
		t.Fatalf("default modulus = %d, want 33554393 (2^25-39)", f.Q())
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	for _, f := range testFields {
		f := f
		elem := func(x uint64) Elem { return x % f.Q() }

		if err := quick.Check(func(a, b, c uint64) bool {
			x, y, z := elem(a), elem(b), elem(c)
			// Commutativity.
			if f.Add(x, y) != f.Add(y, x) || f.Mul(x, y) != f.Mul(y, x) {
				return false
			}
			// Associativity.
			if f.Add(f.Add(x, y), z) != f.Add(x, f.Add(y, z)) {
				return false
			}
			if f.Mul(f.Mul(x, y), z) != f.Mul(x, f.Mul(y, z)) {
				return false
			}
			// Distributivity.
			if f.Mul(x, f.Add(y, z)) != f.Add(f.Mul(x, y), f.Mul(x, z)) {
				return false
			}
			// Identities and inverses for addition.
			if f.Add(x, 0) != x || f.Add(x, f.Neg(x)) != 0 {
				return false
			}
			// Subtraction is addition of the negation.
			if f.Sub(x, y) != f.Add(x, f.Neg(y)) {
				return false
			}
			return true
		}, nil); err != nil {
			t.Errorf("q=%d: %v", f.Q(), err)
		}
	}
}

func TestMultiplicativeInverseQuick(t *testing.T) {
	for _, f := range testFields {
		f := f
		if err := quick.Check(func(a uint64) bool {
			x := a % f.Q()
			if x == 0 {
				return true // no inverse; covered by TestInvZeroPanics
			}
			return f.Mul(x, f.Inv(x)) == 1
		}, nil); err != nil {
			t.Errorf("q=%d: %v", f.Q(), err)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Default().Inv(0)
}

func TestExpMatchesRepeatedMul(t *testing.T) {
	f := MustNew(97)
	for a := uint64(0); a < 97; a += 7 {
		want := Elem(1)
		for e := uint64(0); e < 20; e++ {
			if got := f.Exp(a, e); got != want {
				t.Fatalf("Exp(%d,%d) = %d, want %d", a, e, got, want)
			}
			want = f.Mul(want, a)
		}
	}
}

func TestFermatLittleTheorem(t *testing.T) {
	f := Default()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := f.RandNonZero(rng)
		if f.Exp(a, f.Q()-1) != 1 {
			t.Fatalf("a^(q-1) != 1 for a=%d", a)
		}
	}
}

func TestSignedEmbeddingRoundTrip(t *testing.T) {
	f := Default()
	half := int64((f.Q() - 1) / 2)
	cases := []int64{0, 1, -1, 42, -42, half, -half, half - 1, -(half - 1)}
	for _, x := range cases {
		if got := f.ToInt64(f.FromInt64(x)); got != x {
			t.Errorf("round trip %d -> %d", x, got)
		}
	}
}

func TestSignedEmbeddingQuick(t *testing.T) {
	f := Default()
	half := int64((f.Q() - 1) / 2)
	if err := quick.Check(func(raw int64) bool {
		x := raw % (half + 1) // clamp into the representable window
		return f.ToInt64(f.FromInt64(x)) == x
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedEmbeddingArithmetic(t *testing.T) {
	// Sums and products of small signed integers must survive the field
	// round trip — this is exactly the property the paper's overflow bound
	// d(q-1)^2 <= 2^63-1 protects during logistic regression.
	f := Default()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a := rng.Int63n(1000) - 500
		b := rng.Int63n(1000) - 500
		sum := f.ToInt64(f.Add(f.FromInt64(a), f.FromInt64(b)))
		if sum != a+b {
			t.Fatalf("field sum of %d,%d = %d", a, b, sum)
		}
		prod := f.ToInt64(f.Mul(f.FromInt64(a), f.FromInt64(b)))
		if prod != a*b {
			t.Fatalf("field product of %d,%d = %d", a, b, prod)
		}
	}
}

func TestReduce(t *testing.T) {
	f := MustNew(97)
	if f.Reduce(97) != 0 || f.Reduce(98) != 1 || f.Reduce(96) != 96 {
		t.Fatal("Reduce is wrong")
	}
}

func TestMulAddMatchesComposition(t *testing.T) {
	f := Default()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		acc, a, b := f.Rand(rng), f.Rand(rng), f.Rand(rng)
		if f.MulAdd(acc, a, b) != f.Add(acc, f.Mul(a, b)) {
			t.Fatal("MulAdd mismatch")
		}
	}
}

func TestDivIsMulByInverse(t *testing.T) {
	f := MustNew(97)
	for a := uint64(0); a < 97; a++ {
		for b := uint64(1); b < 97; b++ {
			if f.Mul(f.Div(a, b), b) != a {
				t.Fatalf("Div(%d,%d) does not invert", a, b)
			}
		}
	}
}
