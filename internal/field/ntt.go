package field

// Number-theoretic transforms over F_q — the O(N log N) substrate of the
// subgroup Reed–Solomon codec (internal/poly, internal/mds).
//
// A radix-2 NTT of size n exists exactly when n is a power of two dividing
// q−1, i.e. n ≤ 2^v₂(q−1) where v₂ is the 2-adic valuation. The paper's
// q = 2^25−39 has v₂(q−1) = 3 (transforms cap at size 8, useless beyond toy
// codes); the companion modulus QNTT = 11·2^21+1 has v₂(q−1) = 21. Plans —
// bit-reversal permutation plus per-stage twiddle tables for both
// directions — are pure functions of (q, n) and are cached on the Field,
// keyed by size, so every code over the same field shares one table set.
//
// The butterflies use the same Barrett reduction as the rest of the
// arithmetic core (one high-multiply per modular multiply, no hardware
// division); no Montgomery domain is introduced, so transform outputs are
// canonical elements interchangeable with every other kernel's.

import (
	"fmt"
	"math/bits"
)

// TwoAdicity returns v₂(q−1), the largest e with 2^e | q−1 — the log₂ of
// the largest power-of-two subgroup of F_q*, and therefore the upper bound
// on radix-2 transform sizes over this field.
func (f *Field) TwoAdicity() int {
	return bits.TrailingZeros64(f.q - 1)
}

// NTTSizeError reports a transform size the field cannot host: either the
// size is not a positive power of two, or the field's 2-adicity does not
// admit a subgroup that large. It is a typed error so modulus-selection
// layers (scheme config validation, CLIs) can distinguish "pick a bigger
// modulus" from programming errors.
type NTTSizeError struct {
	Q          uint64 // the modulus
	TwoAdicity int    // v₂(q−1)
	Size       int    // the rejected transform size
}

// Error implements error.
func (e *NTTSizeError) Error() string {
	if e.Size < 1 || e.Size&(e.Size-1) != 0 {
		return fmt.Sprintf("field: NTT size %d is not a positive power of two", e.Size)
	}
	return fmt.Sprintf("field: modulus %d has 2-adicity %d — transforms cap at size %d, cannot host size %d",
		e.Q, e.TwoAdicity, 1<<e.TwoAdicity, e.Size)
}

// NTTSupported reports whether a size-n radix-2 NTT exists over F_q:
// n is a positive power of two with n ≤ 2^v₂(q−1).
func (f *Field) NTTSupported(n int) bool {
	return n >= 1 && n&(n-1) == 0 && n <= 1<<f.TwoAdicity()
}

// NewNTT returns the field F_q after validating that it can host radix-2
// transforms up to the given size: on top of New's primality checks, q−1
// must have 2-adic valuation ≥ log₂ size. Rejections are a typed
// *NTTSizeError, so callers enumerating candidate moduli can report the
// exact 2-adicity shortfall.
func NewNTT(q uint64, size int) (*Field, error) {
	f, err := New(q)
	if err != nil {
		return nil, err
	}
	if !f.NTTSupported(size) {
		return nil, &NTTSizeError{Q: q, TwoAdicity: f.TwoAdicity(), Size: size}
	}
	return f, nil
}

// NTTPlan is a cached size-n transform: the primitive n-th root of unity,
// the bit-reversal permutation, and flat per-stage twiddle tables for the
// forward and inverse directions. Plans are immutable after construction
// and safe for concurrent use.
type NTTPlan struct {
	f *Field
	n int
	// rev[i] is i with its log₂(n) bits reversed; the pre-permutation that
	// makes the iterative Cooley–Tukey butterflies read and write in order.
	rev []int
	// tw and twInv hold all stages' twiddles in one flat slice of length n:
	// the stage with half-size m2 owns tw[m2:2·m2], whose j-th entry is
	// ω_{2m2}^j (resp. its inverse). Index 0 is unused. One slice per
	// direction keeps the whole table set at 2n elements and the stage
	// lookup a single slice expression.
	tw, twInv []Elem
	// omega is the primitive n-th root of unity the plan evaluates at;
	// invN is n⁻¹, the inverse transform's final scaling.
	omega Elem
	invN  Elem
}

// NTT returns the cached size-n transform plan, building it on first use.
// It fails with a *NTTSizeError when the field cannot host the size.
func (f *Field) NTT(n int) (*NTTPlan, error) {
	if !f.NTTSupported(n) {
		return nil, &NTTSizeError{Q: f.q, TwoAdicity: f.TwoAdicity(), Size: n}
	}
	f.nttMu.Lock()
	defer f.nttMu.Unlock()
	if p, ok := f.nttPlans[n]; ok {
		return p, nil
	}
	if f.nttPlans == nil {
		f.nttPlans = make(map[int]*NTTPlan)
	}
	if f.nttRoot == 0 {
		f.nttRoot = f.primitiveRoot()
	}
	p := f.buildPlan(n, f.Exp(f.nttRoot, (f.q-1)/uint64(n)))
	f.nttPlans[n] = p
	return p, nil
}

// buildPlan assembles the permutation and twiddle tables for size n with
// primitive n-th root omega.
func (f *Field) buildPlan(n int, omega Elem) *NTTPlan {
	p := &NTTPlan{f: f, n: n, omega: omega, invN: f.Inv(Elem(uint64(n) % f.q))}
	logN := bits.TrailingZeros(uint(n))
	p.rev = make([]int, n)
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> (64 - logN))
	}
	if n == 1 {
		return p
	}
	p.tw = make([]Elem, n)
	p.twInv = make([]Elem, n)
	omegaInv := f.Inv(omega)
	for m2 := 1; m2 < n; m2 <<= 1 {
		// Stage root ω_{2m2} = ω^(n/(2m2)) and its inverse.
		wm := f.Exp(omega, uint64(n/(2*m2)))
		wmInv := f.Exp(omegaInv, uint64(n/(2*m2)))
		w, wi := Elem(1), Elem(1)
		for j := 0; j < m2; j++ {
			p.tw[m2+j] = w
			p.twInv[m2+j] = wi
			w = f.Mul(w, wm)
			wi = f.Mul(wi, wmInv)
		}
	}
	return p
}

// Size returns the transform length n.
func (p *NTTPlan) Size() int { return p.n }

// Root returns the primitive n-th root of unity ω the plan evaluates at:
// Forward maps coefficients c to values c(ω^i) in natural order of i.
func (p *NTTPlan) Root() Elem { return p.omega }

// Forward transforms a in place from coefficient form to evaluations:
// a[i] ← Σ_j a[j]·ω^(ij). len(a) must equal Size.
//
//avcc:noalloc
func (p *NTTPlan) Forward(a []Elem) { p.transform(a, p.tw) }

// Inverse transforms a in place from evaluations back to coefficients:
// a[j] ← n⁻¹·Σ_i a[i]·ω^(−ij), the exact inverse of Forward.
//
//avcc:noalloc
func (p *NTTPlan) Inverse(a []Elem) {
	p.transform(a, p.twInv)
	for i, v := range a {
		a[i] = p.f.Mul(v, p.invN)
	}
}

// transform runs the iterative radix-2 Cooley–Tukey (decimation-in-time)
// butterflies: bit-reverse the input, then log₂ n stages of
// (u, v) → (u + w·v, u − w·v). Natural-order input yields natural-order
// output.
//
//avcc:noalloc
func (p *NTTPlan) transform(a []Elem, tw []Elem) {
	if len(a) != p.n {
		//avcc:alloc-ok fatal-misuse path; never taken on the hot path
		panic(fmt.Sprintf("field: NTT length %d on a size-%d plan", len(a), p.n))
	}
	f := p.f
	for i, r := range p.rev {
		if i < r {
			a[i], a[r] = a[r], a[i]
		}
	}
	for m2 := 1; m2 < p.n; m2 <<= 1 {
		stage := tw[m2 : 2*m2]
		for base := 0; base < p.n; base += m2 << 1 {
			for j, w := range stage {
				u := a[base+j]
				v := f.Mul(a[base+j+m2], w)
				a[base+j] = f.Add(u, v)
				a[base+j+m2] = f.Sub(u, v)
			}
		}
	}
}

// primitiveRoot returns a generator of F_q*: the smallest g whose order is
// exactly q−1, certified by checking g^((q−1)/p) ≠ 1 for every prime
// factor p of q−1. q < 2^32 keeps the trial-division factoring below 2^16
// steps; the search runs once per Field and is cached.
func (f *Field) primitiveRoot() Elem {
	factors := distinctPrimeFactors(f.q - 1)
	for g := Elem(2); ; g++ {
		ok := true
		for _, p := range factors {
			if f.Exp(g, (f.q-1)/p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
}

// distinctPrimeFactors factors m < 2^32 by trial division.
func distinctPrimeFactors(m uint64) []uint64 {
	var out []uint64
	for d := uint64(2); d*d <= m; d++ {
		if m%d == 0 {
			out = append(out, d)
			for m%d == 0 {
				m /= d
			}
		}
	}
	if m > 1 {
		out = append(out, m)
	}
	return out
}
