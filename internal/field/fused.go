package field

// The fused weighted-combination kernel behind the NTT fast-path encoder
// (internal/mds): dsts[p] = Σ_j w[p][j]·srcs[j] over long rows.
//
// The naive shape — one AXPY pass per (destination, source) pair — streams
// every destination row through memory once per source, and at parity
// shapes (3 destinations × 9 sources × 667k elements) that DRAM traffic is
// the whole cost. This kernel restructures the computation so each element
// is touched a minimal number of times:
//
//   - destinations are processed three at a time, so every source element
//     loaded from memory feeds three multiply-adds (registers, not memory);
//   - rows are tiled (fusedTile) so the three uint64 accumulator strips
//     stay in cache across all source groups;
//   - sources are consumed in groups of three with the loads shared across
//     the three accumulators, the FIRST group writing the accumulators
//     directly (no zeroing pass), and the LAST group folding the Barrett
//     reduction into its loop so the canonical result goes straight to the
//     destination (no separate flush pass).
//
// The lazy-reduction contract is structural: accumulators start from pure
// products and absorb at most len(srcs) ≤ f.LazyBatch() raw products of
// canonical operands, so no intermediate reduction is ever needed; shapes
// with more sources than the batch bound take the LazyAcc fallback, which
// reduces on budget exhaustion. The kernel lives in this package so the
// Barrett constants hoist into registers instead of reloading through the
// Field pointer on every element.

import (
	"math/bits"
	"sync"
)

// fusedTile is the accumulator strip length: 3 strips × 2048 × 8 bytes =
// 48 KiB, small enough to stay cache-hot across all source groups while the
// source tiles stream past. Measured fastest among {512, 1024, 2048, 4096,
// 16384} at the paper's (12,9) GISETTE shape.
const fusedTile = 2048

type fusedAcc struct{ a0, a1, a2 [fusedTile]uint64 }

var fusedAccPool = sync.Pool{New: func() any { return new(fusedAcc) }}

// FusedCombineInto computes dsts[p] = Σ_j w[p][j]·srcs[j] (mod q) for every
// destination row p. All rows must share one length; w must have one
// weight row per destination, each len(srcs) long. Destinations are
// overwritten and must not alias any source. Zero steady-state allocations
// (accumulator strips are pooled).
//
//avcc:noalloc
func (f *Field) FusedCombineInto(dsts [][]Elem, w [][]Elem, srcs [][]Elem) {
	if len(w) != len(dsts) {
		panic("field: FusedCombineInto needs one weight row per destination")
	}
	if len(dsts) == 0 {
		return
	}
	width := len(dsts[0])
	for _, d := range dsts {
		if len(d) != width {
			panic("field: FusedCombineInto ragged destinations")
		}
	}
	for _, s := range srcs {
		if len(s) != width {
			panic("field: FusedCombineInto source/destination length mismatch")
		}
	}
	for _, wr := range w {
		if len(wr) != len(srcs) {
			panic("field: FusedCombineInto weight row length mismatch")
		}
	}
	if len(srcs) == 0 {
		for _, d := range dsts {
			clear(d)
		}
		return
	}
	// The unrolled kernel needs ≥ 4 sources (distinct init and final
	// groups) and the structural lazy bound; everything else — including
	// the remainder destinations when len(dsts) % 3 != 0 — takes the
	// LazyAcc path, which is exact for any shape.
	p := 0
	if len(srcs) >= 4 && len(srcs) <= f.lazyBatch {
		for ; p+3 <= len(dsts); p += 3 {
			f.fused3Into(dsts[p], dsts[p+1], dsts[p+2], w[p], w[p+1], w[p+2], srcs)
		}
	}
	for ; p < len(dsts); p++ {
		clear(dsts[p])
		la := f.NewLazyAcc(dsts[p])
		for j, s := range srcs {
			if c := w[p][j]; c != 0 {
				la.AXPY(c, s)
			}
		}
		la.Reduce()
	}
}

// fused3Into is the hand-unrolled three-destination kernel. len(srcs) must
// be in [4, f.lazyBatch]. Sources split into a head group of 1–3
// (accumulator stores, no read-back), middle groups of 3, and a final
// group of 3 that fuses the Barrett reduction with the destination store.
//
//avcc:lazy-ok caller enforces 4 <= len(srcs) <= f.lazyBatch, so the strips absorb at most LazyBatch raw products
//avcc:noalloc
func (f *Field) fused3Into(d0, d1, d2 []Elem, w0, w1, w2 []Elem, srcs [][]Elem) {
	k := len(srcs)
	head := (k-4)%3 + 1 // leaves k − head ≥ 3 and divisible by 3
	mu, q := f.mu, f.q  // hoisted Barrett constants
	acc := fusedAccPool.Get().(*fusedAcc)
	defer fusedAccPool.Put(acc)
	for lo := 0; lo < len(d0); lo += fusedTile {
		hi := min(lo+fusedTile, len(d0))
		a0, a1, a2 := acc.a0[:hi-lo], acc.a1[:hi-lo], acc.a2[:hi-lo]
		switch head { // init: store pure products, no zeroing pass
		case 1:
			s := srcs[0][lo:hi:hi]
			c0, c1, c2 := w0[0], w1[0], w2[0]
			a0, a1, a2 := a0[:len(s)], a1[:len(s)], a2[:len(s)]
			for i, v := range s {
				a0[i] = c0 * v
				a1[i] = c1 * v
				a2[i] = c2 * v
			}
		case 2:
			s, t := srcs[0][lo:hi:hi], srcs[1][lo:hi:hi]
			c0, c1, c2 := w0[0], w1[0], w2[0]
			e0, e1, e2 := w0[1], w1[1], w2[1]
			t = t[:len(s)]
			a0, a1, a2 := a0[:len(s)], a1[:len(s)], a2[:len(s)]
			for i, v := range s {
				u := t[i]
				a0[i] = c0*v + e0*u
				a1[i] = c1*v + e1*u
				a2[i] = c2*v + e2*u
			}
		case 3:
			s, t, r := srcs[0][lo:hi:hi], srcs[1][lo:hi:hi], srcs[2][lo:hi:hi]
			c0, c1, c2 := w0[0], w1[0], w2[0]
			e0, e1, e2 := w0[1], w1[1], w2[1]
			g0, g1, g2 := w0[2], w1[2], w2[2]
			t, r = t[:len(s)], r[:len(s)]
			a0, a1, a2 := a0[:len(s)], a1[:len(s)], a2[:len(s)]
			for i, v := range s {
				u, x := t[i], r[i]
				a0[i] = c0*v + e0*u + g0*x
				a1[i] = c1*v + e1*u + g1*x
				a2[i] = c2*v + e2*u + g2*x
			}
		}
		for j := head; j < k-3; j += 3 { // middle groups: accumulate
			s, t, r := srcs[j][lo:hi:hi], srcs[j+1][lo:hi:hi], srcs[j+2][lo:hi:hi]
			c0, c1, c2 := w0[j], w1[j], w2[j]
			e0, e1, e2 := w0[j+1], w1[j+1], w2[j+1]
			g0, g1, g2 := w0[j+2], w1[j+2], w2[j+2]
			t, r = t[:len(s)], r[:len(s)]
			a0, a1, a2 := a0[:len(s)], a1[:len(s)], a2[:len(s)]
			for i, v := range s {
				u, x := t[i], r[i]
				a0[i] += c0*v + e0*u + g0*x
				a1[i] += c1*v + e1*u + g1*x
				a2[i] += c2*v + e2*u + g2*x
			}
		}
		{ // final group: fold the Barrett reduction into the store
			j := k - 3
			s, t, r := srcs[j][lo:hi:hi], srcs[j+1][lo:hi:hi], srcs[j+2][lo:hi:hi]
			c0, c1, c2 := w0[j], w1[j], w2[j]
			e0, e1, e2 := w0[j+1], w1[j+1], w2[j+1]
			g0, g1, g2 := w0[j+2], w1[j+2], w2[j+2]
			o0, o1, o2 := d0[lo:hi], d1[lo:hi], d2[lo:hi]
			t, r = t[:len(s)], r[:len(s)]
			a0, a1, a2 := a0[:len(s)], a1[:len(s)], a2[:len(s)]
			o0, o1, o2 = o0[:len(s)], o1[:len(s)], o2[:len(s)]
			for i, v := range s {
				u, x := t[i], r[i]
				r0 := a0[i] + c0*v + e0*u + g0*x
				r1 := a1[i] + c1*v + e1*u + g1*x
				r2 := a2[i] + c2*v + e2*u + g2*x
				t0, _ := bits.Mul64(r0, mu)
				t1, _ := bits.Mul64(r1, mu)
				t2, _ := bits.Mul64(r2, mu)
				r0 -= t0 * q
				r1 -= t1 * q
				r2 -= t2 * q
				if r0 >= q {
					r0 -= q
				}
				if r1 >= q {
					r1 -= q
				}
				if r2 >= q {
					r2 -= q
				}
				o0[i] = r0
				o1[i] = r1
				o2[i] = r2
			}
		}
	}
}
