package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecOpsMatchScalarOps(t *testing.T) {
	f := Default()
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(64)
		a := f.RandVec(rng, n)
		b := f.RandVec(rng, n)
		c := f.Rand(rng)

		sum := make([]Elem, n)
		f.AddVec(sum, a, b)
		diff := make([]Elem, n)
		f.SubVec(diff, a, b)
		scaled := make([]Elem, n)
		f.ScaleVec(scaled, c, a)
		axpy := CopyVec(b)
		f.AXPY(axpy, c, a)

		for i := 0; i < n; i++ {
			if sum[i] != f.Add(a[i], b[i]) {
				t.Fatal("AddVec mismatch")
			}
			if diff[i] != f.Sub(a[i], b[i]) {
				t.Fatal("SubVec mismatch")
			}
			if scaled[i] != f.Mul(c, a[i]) {
				t.Fatal("ScaleVec mismatch")
			}
			if axpy[i] != f.Add(b[i], f.Mul(c, a[i])) {
				t.Fatal("AXPY mismatch")
			}
		}
	}
}

func TestVecOpsAliasSafe(t *testing.T) {
	f := Default()
	rng := rand.New(rand.NewSource(11))
	a := f.RandVec(rng, 32)
	b := f.RandVec(rng, 32)
	want := make([]Elem, 32)
	f.AddVec(want, a, b)
	got := CopyVec(a)
	f.AddVec(got, got, b) // dst aliases a
	if !EqualVec(got, want) {
		t.Fatal("AddVec is not alias-safe")
	}
}

func TestDotMatchesNaive(t *testing.T) {
	f := Default()
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		a := f.RandVec(rng, n)
		b := f.RandVec(rng, n)
		var want Elem
		for i := 0; i < n; i++ {
			want = f.Add(want, f.Mul(a[i], b[i]))
		}
		if got := f.Dot(a, b); got != want {
			t.Fatalf("Dot = %d, want %d", got, want)
		}
	}
}

func TestDotBilinearQuick(t *testing.T) {
	f := Default()
	rng := rand.New(rand.NewSource(13))
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		a := f.RandVec(r, n)
		b := f.RandVec(r, n)
		c := f.RandVec(r, n)
		// <a+b, c> == <a,c> + <b,c>
		ab := make([]Elem, n)
		f.AddVec(ab, a, b)
		return f.Dot(ab, c) == f.Add(f.Dot(a, c), f.Dot(b, c))
	}, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	f := Default()
	for name, fn := range map[string]func(){
		"AddVec":   func() { f.AddVec(make([]Elem, 2), make([]Elem, 3), make([]Elem, 3)) },
		"SubVec":   func() { f.SubVec(make([]Elem, 3), make([]Elem, 3), make([]Elem, 2)) },
		"ScaleVec": func() { f.ScaleVec(make([]Elem, 2), 1, make([]Elem, 3)) },
		"AXPY":     func() { f.AXPY(make([]Elem, 2), 1, make([]Elem, 3)) },
		"Dot":      func() { f.Dot(make([]Elem, 2), make([]Elem, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestInt64VecRoundTrip(t *testing.T) {
	f := Default()
	xs := []int64{0, 1, -1, 1000, -1000, 123456, -123456}
	if got := f.ToInt64Vec(f.FromInt64Vec(xs)); len(got) != len(xs) {
		t.Fatal("length changed")
	} else {
		for i := range xs {
			if got[i] != xs[i] {
				t.Fatalf("round trip xs[%d]=%d -> %d", i, xs[i], got[i])
			}
		}
	}
}

func TestRandIsCanonicalAndCoversField(t *testing.T) {
	f := MustNew(7)
	rng := rand.New(rand.NewSource(14))
	seen := map[Elem]bool{}
	for i := 0; i < 500; i++ {
		v := f.Rand(rng)
		if v >= 7 {
			t.Fatalf("Rand produced non-canonical %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Rand covered %d of 7 elements in 500 draws", len(seen))
	}
}

func TestRandNonZero(t *testing.T) {
	f := MustNew(3)
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 100; i++ {
		if f.RandNonZero(rng) == 0 {
			t.Fatal("RandNonZero returned 0")
		}
	}
}

func TestDistinctPoints(t *testing.T) {
	f := Default()
	pts := f.DistinctPoints(24, 1)
	seen := map[Elem]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate point %d", p)
		}
		seen[p] = true
	}
	if pts[0] != 1 || pts[23] != 24 {
		t.Fatal("points are not the expected sequence")
	}
}

func TestDistinctPointsTooManyPanics(t *testing.T) {
	f := MustNew(7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.DistinctPoints(7, 0)
}

func BenchmarkDot(b *testing.B) {
	f := Default()
	rng := rand.New(rand.NewSource(16))
	x := f.RandVec(rng, 4096)
	y := f.RandVec(rng, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Dot(x, y)
	}
}

func BenchmarkAXPY(b *testing.B) {
	f := Default()
	rng := rand.New(rand.NewSource(17))
	x := f.RandVec(rng, 4096)
	y := f.RandVec(rng, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AXPY(y, 3, x)
	}
}
