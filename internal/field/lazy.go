package field

// Lazy-reduction accumulator rows and batch inversion — the primitives the
// blocked matrix kernels (internal/fieldmat) and the cached decode plans
// (internal/mds, internal/lcc) are built from.
//
// An accumulator row is a plain []uint64 holding *unreduced* sums of raw
// products. The safety contract, shared with Dot (see LazyBatch): starting
// from canonical entries (< q), at most LazyBatch raw products of canonical
// operands may be added per entry before ReduceAcc/FlushAcc must run,
// because (q−1) + LazyBatch·(q−1)² ≤ (q−1) + 2^63−1 < 2^64. Callers count
// accumulation steps; the kernels in fieldmat tile their loops in
// LazyBatch-sized chunks so the count is structural, not per-element.

// AXPYLazy adds c·a element-wise into the raw accumulator row acc WITHOUT
// reducing: one multiply and one add per element. It counts as one
// accumulation step toward the LazyBatch bound.
//
//avcc:noalloc
func (f *Field) AXPYLazy(acc []uint64, c Elem, a []Elem) {
	if len(acc) != len(a) {
		panic("field: AXPYLazy length mismatch")
	}
	for i, ai := range a {
		acc[i] += c * ai
	}
}

// ReduceAcc reduces every accumulator entry to canonical form in place,
// resetting the lazy-step budget to LazyBatch.
//
//avcc:noalloc
func (f *Field) ReduceAcc(acc []uint64) {
	for i, v := range acc {
		acc[i] = f.barrett(v)
	}
}

// FlushAcc reduces acc into dst and zeroes acc, leaving it ready for the
// next row of a blocked kernel. dst and acc must not alias unless identical.
//
//avcc:noalloc
func (f *Field) FlushAcc(dst []Elem, acc []uint64) {
	if len(dst) != len(acc) {
		panic("field: FlushAcc length mismatch")
	}
	for i, v := range acc {
		dst[i] = f.barrett(v)
		acc[i] = 0
	}
}

// LazyAcc couples an accumulator row with its remaining lazy-step budget, so
// the overflow-safety contract above lives in one place instead of being
// hand-counted at every call site. The zero value is invalid; use NewLazyAcc.
type LazyAcc struct {
	f      *Field
	acc    []uint64
	budget int
}

// NewLazyAcc wraps an accumulator row whose entries are canonical (freshly
// zeroed scratch, or a reduced row being extended).
func (f *Field) NewLazyAcc(acc []uint64) LazyAcc {
	return LazyAcc{f: f, acc: acc, budget: f.lazyBatch}
}

// AXPY adds c·row into the accumulator, reducing first if the budget is
// spent. Callers may skip zero coefficients entirely — skipped rows add no
// terms and need no budget.
//
//avcc:noalloc
func (a *LazyAcc) AXPY(c Elem, row []Elem) {
	if a.budget == 0 {
		a.f.ReduceAcc(a.acc)
		a.budget = a.f.lazyBatch
	}
	a.f.AXPYLazy(a.acc, c, row)
	a.budget--
}

// Reduce brings every entry to canonical form in place (for accumulators
// that double as the output row) and restores the full budget.
//
//avcc:noalloc
func (a *LazyAcc) Reduce() {
	a.f.ReduceAcc(a.acc)
	a.budget = a.f.lazyBatch
}

// Flush reduces the accumulator into dst and zeroes it for reuse. dst must
// not alias the accumulator row.
//
//avcc:noalloc
func (a *LazyAcc) Flush(dst []Elem) {
	a.f.FlushAcc(dst, a.acc)
	a.budget = a.f.lazyBatch
}

// InvMany returns the element-wise inverses of xs using Montgomery's trick:
// one Fermat inversion (an Exp costing ~2·log₂ q multiplies) plus 3(n−1)
// multiplies, instead of n full inversions. It panics on any zero input,
// matching Inv. The decode plans batch all their Lagrange denominators
// through this.
func (f *Field) InvMany(xs []Elem) []Elem {
	n := len(xs)
	out := make([]Elem, n)
	if n == 0 {
		return out
	}
	// out[i] = x_0·x_1·…·x_{i−1} (prefix products; out[0] = 1).
	run := Elem(1)
	for i, x := range xs {
		x = f.barrett(x) // tolerate non-canonical inputs, like Inv
		if x == 0 {
			panic("field: inverse of zero")
		}
		out[i] = run
		run = f.Mul(run, x)
	}
	inv := f.Inv(run) // (x_0·…·x_{n−1})⁻¹
	for i := n - 1; i >= 0; i-- {
		out[i] = f.Mul(out[i], inv)
		inv = f.Mul(inv, f.barrett(xs[i]))
	}
	return out
}
