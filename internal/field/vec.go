package field

// Vector helpers over F_q. These are the hot loops of both the workers'
// coded computation and the master's O(m+d) Freivalds checks, so they are
// written over raw []Elem slices with the reduction hoisted where safe.

// AddVec stores a+b element-wise into dst. All three slices must have equal
// length; dst may alias a or b.
func (f *Field) AddVec(dst, a, b []Elem) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("field: AddVec length mismatch")
	}
	for i := range a {
		s := a[i] + b[i]
		if s >= f.q {
			s -= f.q
		}
		dst[i] = s
	}
}

// SubVec stores a-b element-wise into dst.
func (f *Field) SubVec(dst, a, b []Elem) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("field: SubVec length mismatch")
	}
	for i := range a {
		if a[i] >= b[i] {
			dst[i] = a[i] - b[i]
		} else {
			dst[i] = a[i] + f.q - b[i]
		}
	}
}

// ScaleVec stores c·a element-wise into dst.
func (f *Field) ScaleVec(dst []Elem, c Elem, a []Elem) {
	if len(dst) != len(a) {
		panic("field: ScaleVec length mismatch")
	}
	for i := range a {
		dst[i] = c * a[i] % f.q
	}
}

// AXPY stores dst += c·a, the accumulation step of encoding: every coded
// shard is a linear (or Lagrange-monomial) combination of data shards.
func (f *Field) AXPY(dst []Elem, c Elem, a []Elem) {
	if len(dst) != len(a) {
		panic("field: AXPY length mismatch")
	}
	for i := range a {
		dst[i] = (dst[i] + c*a[i]%f.q) % f.q
	}
}

// Dot returns the inner product <a, b> over F_q.
//
// The accumulator strategy exploits q < 2^32: each product is reduced to
// < q ≤ 2^32-1 and up to 2^31 such terms can be summed in a uint64 before a
// reduction is forced, so for all realistic vector lengths the loop performs
// one modulo per element (for the product) plus one final reduction.
func (f *Field) Dot(a, b []Elem) Elem {
	if len(a) != len(b) {
		panic("field: Dot length mismatch")
	}
	const batch = 1 << 31 // safe count of < 2^32 terms in a uint64
	var acc uint64
	n := 0
	for i := range a {
		acc += a[i] * b[i] % f.q
		n++
		if n == batch {
			acc %= f.q
			n = 0
		}
	}
	return acc % f.q
}

// EqualVec reports whether two vectors are element-wise identical (both are
// assumed canonical).
func EqualVec(a, b []Elem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CopyVec returns a fresh copy of a.
func CopyVec(a []Elem) []Elem {
	out := make([]Elem, len(a))
	copy(out, a)
	return out
}

// FromInt64Vec embeds a signed integer vector into F_q.
func (f *Field) FromInt64Vec(xs []int64) []Elem {
	out := make([]Elem, len(xs))
	for i, x := range xs {
		out[i] = f.FromInt64(x)
	}
	return out
}

// ToInt64Vec lifts a field vector back to centered signed integers.
func (f *Field) ToInt64Vec(as []Elem) []int64 {
	out := make([]int64, len(as))
	for i, a := range as {
		out[i] = f.ToInt64(a)
	}
	return out
}
