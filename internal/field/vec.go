package field

// Vector helpers over F_q. These are the hot loops of both the workers'
// coded computation and the master's O(m+d) Freivalds checks, so they are
// written over raw []Elem slices with the reduction hoisted where safe.

// AddVec stores a+b element-wise into dst. All three slices must have equal
// length; dst may alias a or b.
//
//avcc:noalloc
func (f *Field) AddVec(dst, a, b []Elem) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("field: AddVec length mismatch")
	}
	for i := range a {
		s := a[i] + b[i]
		if s >= f.q {
			s -= f.q
		}
		dst[i] = s
	}
}

// SubVec stores a-b element-wise into dst.
//
//avcc:noalloc
func (f *Field) SubVec(dst, a, b []Elem) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("field: SubVec length mismatch")
	}
	for i := range a {
		if a[i] >= b[i] {
			dst[i] = a[i] - b[i]
		} else {
			dst[i] = a[i] + f.q - b[i]
		}
	}
}

// ScaleVec stores c·a element-wise into dst.
//
//avcc:noalloc
func (f *Field) ScaleVec(dst []Elem, c Elem, a []Elem) {
	if len(dst) != len(a) {
		panic("field: ScaleVec length mismatch")
	}
	for i := range a {
		dst[i] = f.barrett(c * a[i])
	}
}

// AXPY stores dst += c·a, the accumulation step of encoding: every coded
// shard is a linear (or Lagrange-monomial) combination of data shards.
// dst[i] + c·a[i] ≤ (q−1) + (q−1)² < 2^64, so each element costs one raw
// multiply-add and one Barrett reduction — no division. For long chains of
// AXPYs into the same destination, AXPYLazy amortises even the Barrett step.
//
//avcc:noalloc
func (f *Field) AXPY(dst []Elem, c Elem, a []Elem) {
	if len(dst) != len(a) {
		panic("field: AXPY length mismatch")
	}
	for i := range a {
		dst[i] = f.barrett(dst[i] + c*a[i])
	}
}

// Dot returns the inner product <a, b> over F_q by delayed reduction: raw
// products a[i]·b[i] ≤ (q−1)² accumulate unreduced in a uint64 and a single
// Barrett reduction fires once per LazyBatch terms. For the paper's
// q = 2^25−39 that is one reduction per 8192 multiply-adds — the inner loop
// is a bare IMUL+ADD, which is the whole point of the 25-bit field choice
// (d·(q−1)² ≤ 2^63−1 for GISETTE's d = 5000).
//
//avcc:noalloc
func (f *Field) Dot(a, b []Elem) Elem {
	return f.DotAcc(0, a, b)
}

// DotAcc returns (acc + <a, b>) mod q for canonical acc: a running inner
// product, the primitive the column-tiled matrix kernels chain across tiles.
//
//avcc:noalloc
func (f *Field) DotAcc(acc Elem, a, b []Elem) Elem {
	if len(a) != len(b) {
		panic("field: Dot length mismatch")
	}
	s := uint64(acc)
	for len(a) > 0 {
		n := len(a)
		if n > f.lazyBatch {
			n = f.lazyBatch
		}
		ah, bh := a[:n], b[:n:n]
		for i, ai := range ah {
			s += ai * bh[i]
		}
		s = f.barrett(s)
		a, b = a[n:], b[n:]
	}
	return s // canonical: acc was canonical and every chunk ends reduced
}

// EqualVec reports whether two vectors are element-wise identical (both are
// assumed canonical).
func EqualVec(a, b []Elem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CopyVec returns a fresh copy of a.
func CopyVec(a []Elem) []Elem {
	out := make([]Elem, len(a))
	copy(out, a)
	return out
}

// FromInt64Vec embeds a signed integer vector into F_q.
func (f *Field) FromInt64Vec(xs []int64) []Elem {
	out := make([]Elem, len(xs))
	for i, x := range xs {
		out[i] = f.FromInt64(x)
	}
	return out
}

// ToInt64Vec lifts a field vector back to centered signed integers.
func (f *Field) ToInt64Vec(as []Elem) []int64 {
	out := make([]int64, len(as))
	for i, a := range as {
		out[i] = f.ToInt64(a)
	}
	return out
}
