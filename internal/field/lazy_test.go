package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Naive reference kernels: the seed implementations with one or two hardware
// `%` per element. The Barrett/lazy kernels must stay bit-exact with these
// for every modulus and every length, including lengths straddling the
// lazy-reduction batch boundary.

func mulRef(f *Field, a, b Elem) Elem { return a * b % f.q }

func dotRef(f *Field, a, b []Elem) Elem {
	var acc uint64
	for i := range a {
		acc = (acc + a[i]*b[i]%f.q) % f.q
	}
	return acc
}

func axpyRef(f *Field, dst []Elem, c Elem, a []Elem) {
	for i := range a {
		dst[i] = (dst[i] + c*a[i]%f.q) % f.q
	}
}

// boundaryLens returns adversarial vector lengths for f: empty, single,
// straddling the lazy batch bound, and a couple of odd sizes. For moduli so
// small the bound is clamped (2^30) the straddle is capped to keep tests fast.
func boundaryLens(f *Field) []int {
	b := f.LazyBatch()
	if b > 1<<13 {
		// Clamped-batch moduli can't be straddled in reasonable time; the
		// boundary itself is covered by the small-batch moduli below.
		b = 1 << 13
	}
	return []int{0, 1, 2, 7, b - 1, b, b + 1, 2*b + 3}
}

// smallBatchFields picks moduli whose lazy batch is tiny so the reduction
// boundary is actually crossed in-test: q near 2^32 gives batch 1, the
// Mersenne prime 2^31-1 gives batch 2, and the paper's field gives 8192.
func smallBatchFields(t *testing.T) []*Field {
	t.Helper()
	fs := []*Field{
		MustNew(4294967291), // batch 1
		MustNew(2147483647), // batch 2
		MustNew(1073741789), // prime near 2^30, batch 8
		Default(),           // batch 8192 (the paper's bound)
		MustNew(97),         // clamped batch
		MustNew(7),          // clamped batch
	}
	for _, f := range fs {
		got := uint64(f.LazyBatch())
		// The safety bound d·(q−1)² ≤ 2^63−1 must hold whenever the batch
		// exceeds its floor of 1 (batch 1 means "reduce every term", which is
		// safe for any q < 2^32: (q−1) + (q−1)² < 2^64).
		if got < 1 || (got > 1 && got < lazyBatchCap && got*(f.q-1)*(f.q-1) > 1<<63-1) {
			t.Fatalf("q=%d: lazy batch %d violates d(q-1)^2 <= 2^63-1", f.q, got)
		}
	}
	return fs
}

func TestLazyBatchValues(t *testing.T) {
	cases := map[uint64]int{
		QDefault:   8192, // the paper's ~8192 products of headroom
		4294967291: 1,
		2147483647: 2,
		97:         lazyBatchCap,
	}
	for q, want := range cases {
		if got := MustNew(q).LazyBatch(); got != want {
			t.Errorf("q=%d: LazyBatch = %d, want %d", q, got, want)
		}
	}
}

func TestBarrettReduceMatchesMod(t *testing.T) {
	for _, f := range testFields {
		f := f
		// Deterministic edges first: 0, q-1, q, q+1, multiples of q, 2^64-1.
		edges := []uint64{0, f.q - 1, f.q, f.q + 1, 2 * f.q, f.q * f.q, ^uint64(0), ^uint64(0) - f.q}
		for _, x := range edges {
			if f.Reduce(x) != x%f.q {
				t.Fatalf("q=%d: Reduce(%d) = %d, want %d", f.q, x, f.Reduce(x), x%f.q)
			}
		}
		if err := quick.Check(func(x uint64) bool {
			return f.Reduce(x) == x%f.q
		}, nil); err != nil {
			t.Errorf("q=%d: %v", f.q, err)
		}
	}
}

func TestMulMatchesRef(t *testing.T) {
	for _, f := range testFields {
		f := f
		if err := quick.Check(func(a, b uint64) bool {
			x, y := a%f.q, b%f.q
			return f.Mul(x, y) == mulRef(f, x, y)
		}, nil); err != nil {
			t.Errorf("q=%d: %v", f.q, err)
		}
	}
}

func TestDotMatchesRefAcrossBatchBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, f := range smallBatchFields(t) {
		for _, n := range boundaryLens(f) {
			a := f.RandVec(rng, n)
			b := f.RandVec(rng, n)
			if got, want := f.Dot(a, b), dotRef(f, a, b); got != want {
				t.Fatalf("q=%d n=%d: Dot = %d, want %d", f.q, n, got, want)
			}
		}
	}
}

// TestDotWorstCaseNoOverflow feeds all-(q-1) vectors — the maximal raw
// product — at lengths exactly at and just past the lazy batch bound, the
// inputs a uint64 overflow would corrupt first.
func TestDotWorstCaseNoOverflow(t *testing.T) {
	for _, f := range smallBatchFields(t) {
		for _, n := range boundaryLens(f) {
			a := make([]Elem, n)
			for i := range a {
				a[i] = f.q - 1
			}
			if got, want := f.Dot(a, a), dotRef(f, a, a); got != want {
				t.Fatalf("q=%d n=%d: worst-case Dot = %d, want %d", f.q, n, got, want)
			}
		}
	}
}

func TestDotAccChainsAcrossTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, f := range smallBatchFields(t) {
		n := 3*f.LazyBatch() + 5
		if n > 1<<13 {
			n = 1<<13 + 5
		}
		a := f.RandVec(rng, n)
		b := f.RandVec(rng, n)
		// Splitting the dot product at arbitrary tile edges and chaining via
		// DotAcc must agree with the one-shot reference.
		for _, cut := range []int{0, 1, n / 3, n / 2, n - 1, n} {
			acc := f.Dot(a[:cut], b[:cut])
			if got, want := f.DotAcc(acc, a[cut:], b[cut:]), dotRef(f, a, b); got != want {
				t.Fatalf("q=%d cut=%d: DotAcc = %d, want %d", f.q, cut, got, want)
			}
		}
	}
}

func TestAXPYAndScaleVecMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, f := range smallBatchFields(t) {
		n := 257
		a := f.RandVec(rng, n)
		c := f.Rand(rng)
		dst := f.RandVec(rng, n)
		want := CopyVec(dst)
		axpyRef(f, want, c, a)
		f.AXPY(dst, c, a)
		if !EqualVec(dst, want) {
			t.Fatalf("q=%d: AXPY diverges from reference", f.q)
		}
		got := make([]Elem, n)
		wantScale := make([]Elem, n)
		for i := range a {
			wantScale[i] = mulRef(f, c, a[i])
		}
		f.ScaleVec(got, c, a)
		if !EqualVec(got, wantScale) {
			t.Fatalf("q=%d: ScaleVec diverges from reference", f.q)
		}
	}
}

// TestLazyAccumulatorContract drives AXPYLazy through exactly LazyBatch
// worst-case accumulation steps — the documented safety limit — reduces,
// continues, and checks the flushed row against the reference.
func TestLazyAccumulatorContract(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, f := range smallBatchFields(t) {
		steps := 2*f.LazyBatch() + 1
		if steps > 50 {
			steps = 50 // clamped-batch fields: partial coverage is fine
		}
		width := 17
		rows := make([][]Elem, steps)
		coefs := make([]Elem, steps)
		for s := range rows {
			// Adversarial: maximal coefficients and entries on even steps.
			if s%2 == 0 {
				coefs[s] = f.q - 1
				rows[s] = make([]Elem, width)
				for i := range rows[s] {
					rows[s][i] = f.q - 1
				}
			} else {
				coefs[s] = f.Rand(rng)
				rows[s] = f.RandVec(rng, width)
			}
		}
		want := make([]Elem, width)
		for s := range rows {
			axpyRef(f, want, coefs[s], rows[s])
		}

		acc := make([]uint64, width)
		budget := 0
		for s := range rows {
			if budget == f.LazyBatch() {
				f.ReduceAcc(acc)
				budget = 0
			}
			f.AXPYLazy(acc, coefs[s], rows[s])
			budget++
		}
		dst := make([]Elem, width)
		f.FlushAcc(dst, acc)
		if !EqualVec(dst, want) {
			t.Fatalf("q=%d: lazy accumulator diverges from reference", f.q)
		}
		for _, v := range acc {
			if v != 0 {
				t.Fatalf("q=%d: FlushAcc did not zero the accumulator", f.q)
			}
		}
	}
}

func TestInvManyMatchesInv(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, f := range testFields {
		for _, n := range []int{0, 1, 2, 7, 64} {
			xs := make([]Elem, n)
			for i := range xs {
				xs[i] = f.RandNonZero(rng)
			}
			if n > 2 {
				xs[0], xs[1] = 1, f.q-1 // pin the edges
			}
			got := f.InvMany(xs)
			for i, x := range xs {
				if got[i] != f.Inv(x) {
					t.Fatalf("q=%d: InvMany[%d] = %d, want Inv(%d) = %d", f.q, i, got[i], x, f.Inv(x))
				}
			}
		}
	}
}

func TestInvManyZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InvMany with a zero did not panic")
		}
	}()
	Default().InvMany([]Elem{3, 0, 5})
}

// FuzzDotLazyVsRef cross-checks the lazy dot against the per-element
// reference on fuzzer-chosen lengths and seeds across the boundary moduli.
func FuzzDotLazyVsRef(fz *testing.F) {
	fz.Add(uint16(0), int64(1))
	fz.Add(uint16(1), int64(2))
	fz.Add(uint16(8192), int64(3))
	fz.Add(uint16(8193), int64(4))
	fields := []*Field{Default(), MustNew(2147483647), MustNew(4294967291), MustNew(97)}
	fz.Fuzz(func(t *testing.T, nRaw uint16, seed int64) {
		n := int(nRaw) % 9000
		rng := rand.New(rand.NewSource(seed))
		for _, f := range fields {
			a := f.RandVec(rng, n)
			b := f.RandVec(rng, n)
			if f.Dot(a, b) != dotRef(f, a, b) {
				t.Fatalf("q=%d n=%d: Dot diverges from reference", f.q, n)
			}
		}
	})
}
