package field

import "encoding/binary"

// Hash-to-field support for the Fiat–Shamir transcripts of internal/commit:
// deterministic byte streams (hash outputs) are mapped to uniform field
// elements with the same rejection-sampling discipline Rand uses for seeded
// streams, so transcript-derived challenges carry the full 1/q soundness of
// honestly random ones.

// uniform64Limit returns the largest multiple of q representable in uint64;
// values below it reduce to exactly uniform residues.
func (f *Field) uniform64Limit() uint64 {
	return ^uint64(0) / f.q * f.q
}

// FromUniform64 maps a uniform uint64 draw to a field element by rejection
// sampling: ok reports whether v was accepted. Rejections happen with
// probability < q/2^64 (< 2^-39 for any q < 2^25), so callers simply move to
// the next draw.
func (f *Field) FromUniform64(v uint64) (Elem, bool) {
	if v >= f.uniform64Limit() {
		return 0, false
	}
	return v % f.q, true
}

// FromUniformBytes interprets b as a little-endian uint64 and rejection-
// samples it into the field (see FromUniform64).
func (f *Field) FromUniformBytes(b [8]byte) (Elem, bool) {
	return f.FromUniform64(binary.LittleEndian.Uint64(b[:]))
}
