package field

import (
	"errors"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n²) reference: out[i] = Σ_j a[j]·ω^(ij).
func naiveDFT(f *Field, omega Elem, a []Elem) []Elem {
	out := make([]Elem, len(a))
	for i := range out {
		var acc Elem
		for j, aj := range a {
			acc = f.Add(acc, f.Mul(aj, f.Exp(omega, uint64(i*j))))
		}
		out[i] = acc
	}
	return out
}

func TestQNTTProperties(t *testing.T) {
	f, err := New(QNTT)
	if err != nil {
		t.Fatalf("QNTT rejected: %v", err)
	}
	if got := f.TwoAdicity(); got != 21 {
		t.Fatalf("QNTT 2-adicity = %d, want 21", got)
	}
	// The companion modulus must keep the lazy batch useful: at least the
	// d = 5000 worst-case inner product the paper sized its field for.
	if f.LazyBatch() < 5000 {
		t.Fatalf("QNTT lazy batch %d is below the d = 5000 bound", f.LazyBatch())
	}
	if got := Default().TwoAdicity(); got != 3 {
		t.Fatalf("QDefault 2-adicity = %d, want 3 (2^25-40 = 2^3·7·599099)", got)
	}
}

// TestNewNTTAcceptReject enumerates the validation matrix: sizes within the
// modulus' 2-adicity are accepted, oversized or non-power-of-two sizes are
// rejected with a typed *NTTSizeError carrying the exact shortfall, and
// non-prime moduli fail the base validation before any NTT check runs.
func TestNewNTTAcceptReject(t *testing.T) {
	cases := []struct {
		name   string
		q      uint64
		size   int
		accept bool
	}{
		{"qntt max size", QNTT, 1 << 21, true},
		{"qntt small", QNTT, 16, true},
		{"qntt size 1", QNTT, 1, true},
		{"qntt oversized", QNTT, 1 << 22, false},
		{"paper field size 8", QDefault, 8, true},
		{"paper field size 16", QDefault, 16, false},
		{"non power of two", QNTT, 12, false},
		{"zero size", QNTT, 0, false},
		{"negative size", QNTT, -4, false},
		{"q=97 size 32", 97, 32, true}, // 96 = 2^5·3
		{"q=97 size 64", 97, 64, false},
	}
	for _, c := range cases {
		f, err := NewNTT(c.q, c.size)
		if c.accept {
			if err != nil {
				t.Errorf("%s: rejected: %v", c.name, err)
				continue
			}
			if !f.NTTSupported(c.size) {
				t.Errorf("%s: accepted but NTTSupported is false", c.name)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted q=%d size=%d", c.name, c.q, c.size)
			continue
		}
		var sizeErr *NTTSizeError
		if !errors.As(err, &sizeErr) {
			t.Errorf("%s: error is %T, want *NTTSizeError", c.name, err)
			continue
		}
		if sizeErr.Q != c.q || sizeErr.Size != c.size {
			t.Errorf("%s: error fields (q=%d, size=%d), want (%d, %d)",
				c.name, sizeErr.Q, sizeErr.Size, c.q, c.size)
		}
	}
	// A composite modulus fails New's primality check, not the NTT check.
	if _, err := NewNTT(1<<20, 16); err == nil {
		t.Error("NewNTT accepted a composite modulus")
	} else {
		var sizeErr *NTTSizeError
		if errors.As(err, &sizeErr) {
			t.Error("composite modulus reported as an NTT size error")
		}
	}
}

func TestNTTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range []struct {
		f    *Field
		size int
	}{
		{NTTFriendly(), 1}, {NTTFriendly(), 2}, {NTTFriendly(), 4},
		{NTTFriendly(), 16}, {NTTFriendly(), 64}, {NTTFriendly(), 256},
		{Default(), 8}, {MustNew(97), 32},
	} {
		p, err := tc.f.NTT(tc.size)
		if err != nil {
			t.Fatalf("q=%d size=%d: %v", tc.f.Q(), tc.size, err)
		}
		// ω must have exact order n.
		if got := tc.f.Exp(p.Root(), uint64(tc.size)); got != 1 {
			t.Fatalf("q=%d size=%d: ω^n = %d, want 1", tc.f.Q(), tc.size, got)
		}
		if tc.size > 1 {
			if got := tc.f.Exp(p.Root(), uint64(tc.size/2)); got == 1 {
				t.Fatalf("q=%d size=%d: ω has order below n", tc.f.Q(), tc.size)
			}
		}
		a := tc.f.RandVec(rng, tc.size)
		want := naiveDFT(tc.f, p.Root(), a)
		got := CopyVec(a)
		p.Forward(got)
		if !EqualVec(got, want) {
			t.Fatalf("q=%d size=%d: Forward diverges from naive DFT", tc.f.Q(), tc.size)
		}
		p.Inverse(got)
		if !EqualVec(got, a) {
			t.Fatalf("q=%d size=%d: Inverse∘Forward is not the identity", tc.f.Q(), tc.size)
		}
	}
}

func TestNTTPlanCached(t *testing.T) {
	f := NTTFriendly()
	p1, err := f.NTT(64)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := f.NTT(64)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("NTT(64) rebuilt the plan instead of returning the cached one")
	}
}

// FuzzNTTRoundTrip hunts panics and round-trip violations: for any size,
// requesting a plan must either fail with a typed error (never panic) or
// yield a transform whose Inverse∘Forward is the identity on arbitrary
// input, over both the paper modulus and the NTT-friendly one.
func FuzzNTTRoundTrip(fz *testing.F) {
	fz.Add(int(16), int64(1), false)
	fz.Add(int(8), int64(2), true)
	fz.Add(int(0), int64(3), false)
	fz.Add(int(-1), int64(4), true)
	fz.Add(int(12), int64(5), false)
	fz.Add(int(1<<30), int64(6), false)
	fz.Fuzz(func(t *testing.T, size int, seed int64, paper bool) {
		f := NTTFriendly()
		if paper {
			f = Default()
		}
		if f.NTTSupported(size) && size > 1<<12 {
			return // valid but too large to build under the fuzzer's budget
		}
		p, err := f.NTT(size)
		if err != nil {
			var sizeErr *NTTSizeError
			if !errors.As(err, &sizeErr) {
				t.Fatalf("NTT(%d) returned an untyped error: %v", size, err)
			}
			if f.NTTSupported(size) {
				t.Fatalf("NTT(%d) rejected a supported size", size)
			}
			return
		}
		a := f.RandVec(rand.New(rand.NewSource(seed)), size)
		got := CopyVec(a)
		p.Forward(got)
		p.Inverse(got)
		if !EqualVec(got, a) {
			t.Fatalf("q=%d size=%d: Inverse∘Forward is not the identity", f.Q(), size)
		}
	})
}
