package baseline

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/simnet"
)

// UncodedOptions configure the conventional distributed baseline.
type UncodedOptions struct {
	// K is the number of participating workers; each holds 1/K of the
	// uncoded rows. The paper runs K = 9 of the 12 available nodes.
	K int
	// Sim is the latency model.
	Sim simnet.Config
	// Seed feeds the executor's jitter stream.
	Seed int64
	// Receipts turns on the committed-verification plane: workers commit to
	// their outputs and every round carries a tenant-verifiable receipt. The
	// uncoded split is the systematic K-block code (worker i evaluates at
	// point i+1), so the same receipt protocol covers it unchanged — and
	// since the scheme itself never verifies anything, the receipt is the
	// ONLY way a tenant catches a Byzantine worker here.
	Receipts bool
}

// UncodedMaster is the conventional scheme: no redundancy, so the master
// must wait for ALL K workers (every straggler is on the critical path),
// and no verification, so Byzantine results flow straight into the output —
// both effects the paper's figures show.
type UncodedMaster struct {
	f        *field.Field
	opt      UncodedOptions
	workers  []*cluster.Worker
	exec     cluster.Executor
	origRows map[string]int
	// blockRows[key] is the padded per-worker row count, needed to stitch
	// results back in worker order.
	blockRows map[string]int
	issuer    *commit.Issuer
}

// NewUncodedMaster splits each data matrix into K contiguous uncoded row
// blocks, one per worker.
func NewUncodedMaster(f *field.Field, opt UncodedOptions, data map[string]*fieldmat.Matrix,
	behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (*UncodedMaster, error) {
	if opt.K < 1 {
		return nil, fmt.Errorf("baseline: uncoded needs K >= 1")
	}
	if behaviors != nil && len(behaviors) != opt.K {
		return nil, fmt.Errorf("baseline: %d behaviours for %d workers", len(behaviors), opt.K)
	}
	if !opt.Sim.Validate() {
		return nil, fmt.Errorf("baseline: invalid latency model")
	}
	m := &UncodedMaster{
		f:         f,
		opt:       opt,
		workers:   make([]*cluster.Worker, opt.K),
		origRows:  make(map[string]int, len(data)),
		blockRows: make(map[string]int, len(data)),
	}
	for i := range m.workers {
		m.workers[i] = cluster.NewWorker(i)
		if behaviors != nil {
			m.workers[i].Behavior = behaviors[i]
		}
	}
	if opt.Receipts {
		m.issuer = commit.NewIssuer(f, m.Name())
	}
	for key, x := range data {
		m.origRows[key] = x.Rows
		if m.issuer != nil {
			m.issuer.Commit(key, x)
		}
		padded := fieldmat.PadRows(x, opt.K)
		blocks := fieldmat.SplitRows(padded, opt.K)
		m.blockRows[key] = blocks[0].Rows
		for i, b := range blocks {
			m.workers[i].Shards[key] = b
		}
	}
	ve := cluster.NewVirtualExecutor(f, opt.Sim, m.workers, stragglers, opt.Seed+1)
	ve.CommitOutputs = opt.Receipts
	m.exec = ve
	return m, nil
}

// ReceiptDigests implements commit.DigestProvider: the public digest of
// every committed round key (nil when receipts are disabled).
func (m *UncodedMaster) ReceiptDigests() map[string][]commit.Digest {
	if m.issuer == nil {
		return nil
	}
	return m.issuer.Digests()
}

// SetExecutor swaps the executor (tests and real-transport runs).
func (m *UncodedMaster) SetExecutor(e cluster.Executor) { m.exec = e }

// Workers exposes the master's worker objects so real-transport deployments
// can ship the uncoded blocks to the matching remote endpoints.
func (m *UncodedMaster) Workers() []*cluster.Worker { return m.workers }

// Name implements cluster.Master.
func (m *UncodedMaster) Name() string { return "uncoded" }

// RunRound implements cluster.Master: wait for every worker and concatenate
// their block results in worker order. It is the batch-of-one projection of
// RunRoundBatch.
func (m *UncodedMaster) RunRound(ctx context.Context, key string, input []field.Elem, iter int) (*cluster.RoundOutput, error) {
	b, err := m.RunRoundBatch(ctx, key, [][]field.Elem{input}, iter)
	if err != nil {
		return nil, err
	}
	return b.Round(0), nil
}

// RunRoundBatch implements cluster.Master: one broadcast of the packed
// inputs; every worker returns its block's results for the whole batch and
// the master stitches them back per vector in worker order.
func (m *UncodedMaster) RunRoundBatch(ctx context.Context, key string, inputs [][]field.Elem, iter int) (*cluster.BatchOutput, error) {
	if _, ok := m.origRows[key]; !ok {
		return nil, fmt.Errorf("baseline: unknown round key %q", key)
	}
	packed, _, err := cluster.PackInputs(inputs)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	batch := len(inputs)
	active := make([]int, m.opt.K)
	for i := range active {
		active[i] = i
	}
	results := m.exec.RunRound(ctx, key, packed, batch, iter, active)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("baseline: round cancelled: %w", err)
	}
	// No redundancy means no erasure tolerance: a crashed worker's block is
	// simply gone. Fail loudly rather than silently zero-filling the output.
	if len(results) < m.opt.K {
		return nil, fmt.Errorf("baseline: uncoded round got %d of %d worker results (a worker crashed or its message was lost; the uncoded scheme cannot recover)",
			len(results), m.opt.K)
	}

	out := &cluster.BatchOutput{}
	blockLen := m.blockRows[key]
	out.Outputs = make([][]field.Elem, batch)
	concat := make([][]field.Elem, batch)
	for c := range concat {
		concat[c] = make([]field.Elem, m.opt.K*blockLen)
	}
	var lastArrival, maxCompute, maxComm float64
	var rw []commit.RoundWorker
	var alphas []field.Elem
	if m.issuer != nil {
		// The uncoded split IS the systematic part of the block code: worker
		// i holds block i, i.e. the evaluation at interpolation point i+1.
		alphas = m.f.DistinctPoints(m.opt.K, 1)
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("baseline: worker %d failed: %w", r.Worker, r.Err)
		}
		if len(r.Output) != batch*blockLen {
			return nil, fmt.Errorf("baseline: worker %d returned %d values, want %d",
				r.Worker, len(r.Output), batch*blockLen)
		}
		for c := 0; c < batch; c++ {
			copy(concat[c][r.Worker*blockLen:], r.Output[c*blockLen:(c+1)*blockLen])
		}
		if m.issuer != nil {
			rw = append(rw, commit.RoundWorker{
				ID: r.Worker, Alpha: alphas[r.Worker], Output: r.Output, Commit: r.Commit,
			})
		}
		out.Used = append(out.Used, r.Worker)
		if r.ArriveAt > lastArrival {
			lastArrival = r.ArriveAt
		}
		if r.ComputeSec > maxCompute {
			maxCompute = r.ComputeSec
		}
		if r.CommSec > maxComm {
			maxComm = r.CommSec
		}
	}
	for c := 0; c < batch; c++ {
		out.Outputs[c] = concat[c][:m.origRows[key]]
	}
	if m.issuer != nil {
		rec, rerr := m.issuer.Issue(commit.Round{
			Key: key, Iter: iter, Batch: batch,
			K: m.opt.K, BlockRows: blockLen,
			Inputs: packed, Outputs: out.Outputs, Workers: rw,
		})
		if rerr != nil {
			return nil, fmt.Errorf("baseline: receipt: %w", rerr)
		}
		out.Receipt = rec
	}
	out.Breakdown.Compute = maxCompute
	out.Breakdown.Comm = maxComm
	out.Breakdown.Wall = lastArrival // no verify, no decode
	return out, nil
}

// FinishIteration implements cluster.Master; the uncoded scheme never adapts.
func (m *UncodedMaster) FinishIteration(int) (float64, bool) { return 0, false }
