package baseline

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/simnet"
)

var f = field.Default()

func quietSim() simnet.Config {
	c := simnet.DefaultConfig()
	c.JitterFrac = 0
	c.LinkLatency = 1e-5
	return c
}

func testData(rng *rand.Rand, m, d int) (map[string]*fieldmat.Matrix, *fieldmat.Matrix) {
	x := fieldmat.Rand(f, rng, m, d)
	return map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}, x
}

func honestWith(n int, byz map[int]attack.Behavior) []attack.Behavior {
	bs := make([]attack.Behavior, n)
	for i := range bs {
		bs[i] = attack.Honest{}
	}
	for i, b := range byz {
		bs[i] = b
	}
	return bs
}

func lccOpts(s, m int) LCCOptions {
	return LCCOptions{N: 12, K: 9, S: s, M: m, DegF: 1, Sim: quietSim(), Seed: 3}
}

func TestLCCValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	data, _ := testData(rng, 18, 6)
	// (12,9,S=1,M=1) satisfies eq. (1) exactly: 9+1+2+1 = 13? No: (K+T-1)degF
	// + S + 2M + 1 = 8+1+2+1 = 12. OK.
	if _, err := NewLCCMaster(f, lccOpts(1, 1), data, nil, nil); err != nil {
		t.Fatalf("paper LCC config rejected: %v", err)
	}
	if _, err := NewLCCMaster(f, lccOpts(2, 1), data, nil, nil); err == nil {
		t.Fatal("S=2,M=1 at N=12 violates eq. (1) but was accepted")
	}
	if _, err := NewLCCMaster(f, lccOpts(1, 1), data, make([]attack.Behavior, 2), nil); err == nil {
		t.Fatal("behaviour count mismatch accepted")
	}
}

func TestLCCHonestDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	data, x := testData(rng, 18, 6)
	m, err := NewLCCMaster(f, lccOpts(1, 1), data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("LCC honest decode wrong")
	}
	// LCC waits for N-S = 11 workers.
	if len(out.Used) != 11 {
		t.Fatalf("LCC used %d results, want 11", len(out.Used))
	}
	if out.StragglersObserved != 1 {
		t.Fatalf("LCC observed %d stragglers, want 1", out.StragglersObserved)
	}
}

func TestLCCOneByzantineCorrected(t *testing.T) {
	// Within its M=1 budget LCC corrects the error inside decoding.
	rng := rand.New(rand.NewSource(172))
	data, x := testData(rng, 18, 6)
	behaviors := honestWith(12, map[int]attack.Behavior{5: attack.Constant{V: 3}})
	m, err := NewLCCMaster(f, lccOpts(1, 1), data, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("LCC failed to correct one Byzantine")
	}
	if len(out.Byzantine) != 1 || out.Byzantine[0] != 5 {
		t.Fatalf("LCC identified %v, want [5]", out.Byzantine)
	}
}

func TestLCCTwoByzantinesSilentlyCorrupt(t *testing.T) {
	// The paper's Fig. 3(b)/(d) mechanism: two Byzantines against an M=1
	// design overwhelm Reed-Solomon decoding; the fallback erasure decode
	// lets corruption through (which is why LCC's accuracy degrades).
	rng := rand.New(rand.NewSource(173))
	data, x := testData(rng, 18, 6)
	behaviors := honestWith(12, map[int]attack.Behavior{
		2: attack.Constant{V: 3},
		6: attack.Constant{V: 4},
	})
	m, err := NewLCCMaster(f, lccOpts(1, 1), data, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("LCC should NOT decode correctly with 2 Byzantines at M=1 (that would beat its own bound)")
	}
	if len(out.Byzantine) != 0 {
		t.Fatal("over-budget fallback should not claim identifications")
	}
}

func TestLCCWaitsForStragglersBeyondBudget(t *testing.T) {
	// With 2 stragglers against an S=1 design, LCC must wait for the faster
	// of the two stragglers (the paper: "LCC is bound to suffer tail
	// latency from the faster of the two stragglers").
	rng := rand.New(rand.NewSource(174))
	data, _ := testData(rng, 900, 120)
	m, err := NewLCCMaster(f, lccOpts(1, 1), data, nil, attack.NewFixedStragglers(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.RunRound(context.Background(), "fwd", f.RandVec(rng, 120), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wall must be at least one straggler's compute time (~10x honest).
	honest := quietSim().ComputeTime(100*120, false, nil)
	if out.Breakdown.Wall < 8*honest {
		t.Fatalf("LCC wall %.6f did not include straggler tail (honest=%.6f)", out.Breakdown.Wall, honest)
	}
	usedStragglers := 0
	for _, id := range out.Used {
		if id == 0 || id == 1 {
			usedStragglers++
		}
	}
	if usedStragglers != 1 {
		t.Fatalf("LCC used %d stragglers, want exactly the faster one", usedStragglers)
	}
}

func TestLCCVerifyPhaseIsZero(t *testing.T) {
	// Fig. 4's note: LCC has no separate verification cost.
	rng := rand.New(rand.NewSource(175))
	data, _ := testData(rng, 18, 6)
	m, _ := NewLCCMaster(f, lccOpts(1, 1), data, nil, nil)
	out, err := m.RunRound(context.Background(), "fwd", f.RandVec(rng, 6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Breakdown.Verify != 0 {
		t.Fatal("LCC should have no verify phase")
	}
	if out.Breakdown.Decode <= 0 {
		t.Fatal("LCC decode phase missing")
	}
}

func TestLCCNeverAdapts(t *testing.T) {
	rng := rand.New(rand.NewSource(176))
	data, _ := testData(rng, 18, 6)
	m, _ := NewLCCMaster(f, lccOpts(1, 1), data, nil, nil)
	if m.Name() != "lcc" {
		t.Fatalf("Name = %q", m.Name())
	}
	if cost, recoded := m.FinishIteration(0); recoded || cost != 0 {
		t.Fatal("LCC must not adapt")
	}
}

func TestLCCUnknownKey(t *testing.T) {
	rng := rand.New(rand.NewSource(177))
	data, _ := testData(rng, 18, 6)
	m, _ := NewLCCMaster(f, lccOpts(1, 1), data, nil, nil)
	if _, err := m.RunRound(context.Background(), "nope", f.RandVec(rng, 6), 0); err == nil {
		t.Fatal("unknown key accepted")
	}
}

func TestUncodedHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(178))
	data, x := testData(rng, 18, 6)
	m, err := NewUncodedMaster(f, UncodedOptions{K: 9, Sim: quietSim(), Seed: 5}, data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("uncoded honest result wrong")
	}
	if len(out.Used) != 9 {
		t.Fatalf("uncoded used %d workers, want all 9", len(out.Used))
	}
	if out.Breakdown.Verify != 0 || out.Breakdown.Decode != 0 {
		t.Fatal("uncoded must have no verify/decode phases")
	}
}

func TestUncodedByzantineCorruptsOutput(t *testing.T) {
	// No verification: corruption lands in exactly the Byzantine worker's
	// block of the output.
	rng := rand.New(rand.NewSource(179))
	data, x := testData(rng, 18, 6)
	behaviors := honestWith(9, map[int]attack.Behavior{4: attack.Constant{V: 1}})
	m, err := NewUncodedMaster(f, UncodedOptions{K: 9, Sim: quietSim(), Seed: 5}, data, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fieldmat.MatVec(f, x, w)
	if field.EqualVec(out.Decoded, want) {
		t.Fatal("uncoded output should be corrupted")
	}
	// Blocks: 18 rows / 9 workers = 2 rows each; rows 8,9 belong to worker 4.
	for i := 0; i < 18; i++ {
		inBad := i >= 8 && i < 10
		if inBad && out.Decoded[i] != 1 {
			t.Fatalf("row %d should be the constant attack value", i)
		}
		if !inBad && out.Decoded[i] != want[i] {
			t.Fatalf("row %d corrupted outside the Byzantine block", i)
		}
	}
}

func TestUncodedWaitsForEveryStraggler(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	data, _ := testData(rng, 900, 120)
	m, err := NewUncodedMaster(f, UncodedOptions{K: 9, Sim: quietSim(), Seed: 5}, data, nil,
		attack.NewFixedStragglers(3))
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.RunRound(context.Background(), "fwd", f.RandVec(rng, 120), 0)
	if err != nil {
		t.Fatal(err)
	}
	honest := quietSim().ComputeTime(100*120, false, nil)
	if out.Breakdown.Wall < 8*honest {
		t.Fatal("uncoded wall time did not include the straggler")
	}
}

func TestUncodedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	data, _ := testData(rng, 18, 6)
	if _, err := NewUncodedMaster(f, UncodedOptions{K: 0, Sim: quietSim()}, data, nil, nil); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewUncodedMaster(f, UncodedOptions{K: 9, Sim: quietSim()}, data, make([]attack.Behavior, 2), nil); err == nil {
		t.Fatal("behaviour mismatch accepted")
	}
	m, _ := NewUncodedMaster(f, UncodedOptions{K: 9, Sim: quietSim()}, data, nil, nil)
	if _, err := m.RunRound(context.Background(), "nope", f.RandVec(rng, 6), 0); err == nil {
		t.Fatal("unknown key accepted")
	}
	if m.Name() != "uncoded" {
		t.Fatalf("Name = %q", m.Name())
	}
	if cost, recoded := m.FinishIteration(0); recoded || cost != 0 {
		t.Fatal("uncoded must not adapt")
	}
}

func TestUncodedPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	x := fieldmat.Rand(f, rng, 20, 5) // 20 % 9 != 0
	data := map[string]*fieldmat.Matrix{"fwd": x}
	m, err := NewUncodedMaster(f, UncodedOptions{K: 9, Sim: quietSim(), Seed: 5}, data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 5)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Decoded) != 20 {
		t.Fatalf("decoded %d rows, want 20", len(out.Decoded))
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("padded uncoded result wrong")
	}
}

// deadExecutor returns no results at all: every worker crashed or dropped.
type deadExecutor struct{}

func (deadExecutor) RunRound(context.Context, string, []field.Elem, int, int, []int) []cluster.Result {
	return nil
}

func TestLCCZeroArrivalsErrorsInsteadOfPanicking(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	x := fieldmat.Rand(f, rng, 36, 6)
	m, err := NewLCCMaster(f, LCCOptions{N: 12, K: 9, S: 1, M: 1, Sim: simnet.DefaultConfig(), Seed: 1},
		map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetExecutor(deadExecutor{})
	if _, err := m.RunRound(context.Background(), "fwd", f.RandVec(rng, 6), 0); err == nil {
		t.Fatal("a round with zero arrivals must error, not decode")
	}
}
