// Package baseline implements the two comparison systems of the paper's
// evaluation: the state-of-the-art LCC master (coded redundancy with
// Reed–Solomon error correction, eq. 1) and the conventional uncoded master
// (no redundancy, no detection).
package baseline

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/lcc"
	"repro/internal/simnet"
)

// LCCOptions configure the LCC baseline master.
type LCCOptions struct {
	// N, K, S, M, T are the coding parameters; the design point must
	// satisfy eq. (1): N ≥ (K+T−1)·deg f + S + 2M + 1.
	N, K, S, M, T int
	// DegF is the computation degree (1 for the logreg rounds).
	DegF int
	// Sim is the latency model.
	Sim simnet.Config
	// Seed drives privacy masks and the error-locating projection.
	Seed int64
	// Receipts turns on the committed-verification plane: workers commit to
	// their outputs and every round carries a tenant-verifiable receipt.
	// Requires T == 0 (masked shards are not openable against the public
	// matrix digest) and DegF == 1.
	Receipts bool
}

// LCCMaster is the paper's baseline: it waits for N−S results (it cannot
// verify early arrivals individually — Byzantine identification is coupled
// into Reed–Solomon decoding), then decodes correcting up to M errors.
//
// When more than M results are corrupted (the paper's Fig. 3(b)/(d)
// scenario: two Byzantines against an M=1 design), error decoding fails and
// the master falls back to erasure-only decoding over the fastest results —
// the corrupted contributions flow into the output, which is exactly the
// accuracy degradation the paper reports for overloaded LCC.
type LCCMaster struct {
	f        *field.Field
	opt      LCCOptions
	rng      *rand.Rand
	code     *lcc.Code
	workers  []*cluster.Worker
	exec     cluster.Executor
	origRows map[string]int
	issuer   *commit.Issuer
}

// NewLCCMaster encodes data at (N, K, T) and wires up the virtual cluster.
func NewLCCMaster(f *field.Field, opt LCCOptions, data map[string]*fieldmat.Matrix,
	behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (*LCCMaster, error) {
	if opt.DegF < 1 {
		opt.DegF = 1
	}
	if opt.N < lcc.RequiredWorkersLCC(opt.K, opt.T, opt.S, opt.M, opt.DegF) {
		return nil, fmt.Errorf("baseline: LCC params violate N >= (K+T-1)degF+S+2M+1 = %d",
			lcc.RequiredWorkersLCC(opt.K, opt.T, opt.S, opt.M, opt.DegF))
	}
	if behaviors != nil && len(behaviors) != opt.N {
		return nil, fmt.Errorf("baseline: %d behaviours for %d workers", len(behaviors), opt.N)
	}
	if !opt.Sim.Validate() {
		return nil, fmt.Errorf("baseline: invalid latency model")
	}
	code, err := lcc.New(f, opt.N, opt.K, opt.T, opt.DegF)
	if err != nil {
		return nil, err
	}
	m := &LCCMaster{
		f:        f,
		opt:      opt,
		rng:      rand.New(rand.NewSource(opt.Seed)),
		code:     code,
		workers:  make([]*cluster.Worker, opt.N),
		origRows: make(map[string]int, len(data)),
	}
	if opt.Receipts {
		if opt.T > 0 {
			return nil, fmt.Errorf("baseline: receipts require T == 0 (got T = %d)", opt.T)
		}
		if opt.DegF != 1 {
			return nil, fmt.Errorf("baseline: receipts require DegF == 1 (got DegF = %d)", opt.DegF)
		}
		m.issuer = commit.NewIssuer(f, m.Name())
	}
	for i := range m.workers {
		m.workers[i] = cluster.NewWorker(i)
		if behaviors != nil {
			m.workers[i].Behavior = behaviors[i]
		}
	}
	for key, x := range data {
		m.origRows[key] = x.Rows
		if m.issuer != nil {
			m.issuer.Commit(key, x)
		}
		padded := fieldmat.PadRows(x, opt.K)
		shards, err := code.EncodeMatrix(padded, m.rng)
		if err != nil {
			return nil, fmt.Errorf("baseline: encode %q: %w", key, err)
		}
		for i, sh := range shards {
			m.workers[i].Shards[key] = sh
		}
	}
	ve := cluster.NewVirtualExecutor(f, opt.Sim, m.workers, stragglers, opt.Seed+1)
	ve.CommitOutputs = opt.Receipts
	m.exec = ve
	return m, nil
}

// ReceiptDigests implements commit.DigestProvider: the public digest of
// every committed round key (nil when receipts are disabled).
func (m *LCCMaster) ReceiptDigests() map[string][]commit.Digest {
	if m.issuer == nil {
		return nil
	}
	return m.issuer.Digests()
}

// SetExecutor swaps the executor (tests and real-transport runs).
func (m *LCCMaster) SetExecutor(e cluster.Executor) { m.exec = e }

// Workers exposes the master's worker objects so real-transport deployments
// can ship the encoded shards to the matching remote endpoints.
func (m *LCCMaster) Workers() []*cluster.Worker { return m.workers }

// Name implements cluster.Master.
func (m *LCCMaster) Name() string { return "lcc" }

// RunRound implements cluster.Master: wait for the first N−S arrivals, then
// decode with an M-error budget. It is the batch-of-one projection of
// RunRoundBatch.
func (m *LCCMaster) RunRound(ctx context.Context, key string, input []field.Elem, iter int) (*cluster.RoundOutput, error) {
	b, err := m.RunRoundBatch(ctx, key, [][]field.Elem{input}, iter)
	if err != nil {
		return nil, err
	}
	return b.Round(0), nil
}

// RunRoundBatch implements cluster.Master: one broadcast of the packed
// inputs, one Reed–Solomon decode over the stacked results (the
// error-locating projection sees every vector of the batch at once, so a
// worker corrupting ANY column is located by the same single solve).
func (m *LCCMaster) RunRoundBatch(ctx context.Context, key string, inputs [][]field.Elem, iter int) (*cluster.BatchOutput, error) {
	if _, ok := m.origRows[key]; !ok {
		return nil, fmt.Errorf("baseline: unknown round key %q", key)
	}
	packed, _, err := cluster.PackInputs(inputs)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	batch := len(inputs)
	active := make([]int, m.opt.N)
	for i := range active {
		active[i] = i
	}
	results := m.exec.RunRound(ctx, key, packed, batch, iter, active)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("baseline: round cancelled: %w", err)
	}
	wait := m.opt.N - m.opt.S
	if wait > len(results) {
		wait = len(results)
	}
	if wait == 0 {
		return nil, fmt.Errorf("baseline: no worker results arrived (all %d active workers crashed or dropped)", m.opt.N)
	}
	used := results[:wait]

	out := &cluster.BatchOutput{StragglersObserved: len(results) - wait}
	var lastArrival, maxCompute, maxComm float64
	workers := make([]int, wait)
	outputs := make([][]field.Elem, wait)
	commits := make([][]byte, wait)
	for i, r := range used {
		if r.Err != nil {
			return nil, fmt.Errorf("baseline: worker %d failed: %w", r.Worker, r.Err)
		}
		workers[i] = r.Worker
		outputs[i] = r.Output
		commits[i] = r.Commit
		if r.ArriveAt > lastArrival {
			lastArrival = r.ArriveAt
		}
		if r.ComputeSec > maxCompute {
			maxCompute = r.ComputeSec
		}
		if r.CommSec > maxComm {
			maxComm = r.CommSec
		}
	}

	blocks, bad, err := m.code.DecodeWithErrors(workers, outputs, m.opt.M, m.rng)
	threshold := m.code.Threshold()
	// Reed–Solomon decode cost: one projection pass over all results, the
	// Berlekamp–Welch solve (cubic in wait), and the interpolation pass.
	decodeOps := float64(wait)*float64(len(outputs[0])) + // projection
		float64(wait*wait*wait) + // BW linear system
		float64(threshold)*float64(batch*m.origRows[key]+threshold) // interpolation
	fellBack := false
	if err != nil {
		// Over-budget corruption: fall back to erasure-only decoding on the
		// fastest threshold results. Byzantine contributions pass through.
		blocks, err = m.code.DecodeVectors(workers[:threshold], outputs[:threshold])
		if err != nil {
			return nil, fmt.Errorf("baseline: fallback decode: %w", err)
		}
		bad = nil
		fellBack = true
	}
	decodeTime := m.opt.Sim.MasterTime(decodeOps)

	out.Outputs = cluster.UnpackBlocks(blocks, batch, m.origRows[key])
	out.Used = workers
	for _, pos := range bad {
		out.Byzantine = append(out.Byzantine, workers[pos])
	}

	if m.issuer != nil {
		// The receipt attests exactly the contributions the decode consumed.
		// On the corrected path the located-bad workers were excluded by the
		// Reed–Solomon solve, so they are excluded here too; on the
		// over-budget fallback the corrupt outputs DID flow into the decode,
		// so they stay in the receipt — and receipt verification is what
		// exposes them to the tenant.
		recWorkers, recOutputs, recCommits := workers, outputs, commits
		if fellBack {
			recWorkers = workers[:threshold]
			recOutputs = outputs[:threshold]
			recCommits = commits[:threshold]
		}
		located := make(map[int]bool, len(bad))
		for _, pos := range bad {
			located[pos] = true
		}
		alphas := m.code.Alphas()
		rw := make([]commit.RoundWorker, 0, len(recWorkers))
		for i, id := range recWorkers {
			if located[i] {
				continue
			}
			rw = append(rw, commit.RoundWorker{
				ID: id, Alpha: alphas[id], Output: recOutputs[i], Commit: recCommits[i],
			})
		}
		rec, rerr := m.issuer.Issue(commit.Round{
			Key: key, Iter: iter, Batch: batch,
			K: m.opt.K, BlockRows: (m.origRows[key] + m.opt.K - 1) / m.opt.K,
			Inputs: packed, Outputs: out.Outputs, Workers: rw,
		})
		if rerr != nil {
			return nil, fmt.Errorf("baseline: receipt: %w", rerr)
		}
		out.Receipt = rec
	}
	out.Breakdown.Compute = maxCompute
	out.Breakdown.Comm = maxComm
	out.Breakdown.Decode = decodeTime
	out.Breakdown.Wall = lastArrival + decodeTime
	return out, nil
}

// FinishIteration implements cluster.Master; LCC never adapts.
func (m *LCCMaster) FinishIteration(int) (float64, bool) { return 0, false }
