// Package dataset generates the synthetic GISETTE-like binary
// classification workload used by every training experiment.
//
// The paper trains on GISETTE (Guyon et al., NIPS 2003): m = 6000 samples,
// d = 5000 non-negative integer pixel-derived features, two classes. That
// dataset cannot ship with this repository, so we substitute a generator
// with the properties the experiments actually depend on (see DESIGN.md):
//
//   - non-negative integer features (so, like the paper, the data needs no
//     quantization and embeds directly into F_q),
//   - a linearly separable-ish signal carried by a subset of "informative"
//     features (GISETTE is a feature-selection benchmark: most features are
//     distractors),
//   - magnitudes bounded so the no-wrap-around condition of
//     internal/quant holds at the chosen field and precision.
//
// Sizes default to a CI-friendly scale (m = 1200, d = 600) and accept the
// paper's full (6000, 5000) via flags on the cmd/ tools.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

// Config controls generation.
type Config struct {
	// TrainN and TestN are the sample counts.
	TrainN, TestN int
	// Features is the total feature count d (including distractors, NOT
	// including the bias column appended automatically).
	Features int
	// Informative is how many features carry class signal.
	Informative int
	// MaxValue bounds feature magnitudes (inclusive); GISETTE's are < 1000,
	// the CI default is 99 to keep wrap-around margins comfortable.
	MaxValue int
	// Density is the fraction of nonzero entries per feature column.
	// GISETTE is sparse (~13% nonzero), and that sparsity is load-bearing:
	// it bounds the row/column L1 norms that decide whether quantized
	// inner products stay inside the field's no-wrap-around window.
	Density float64
	// Separation scales the class mean gap in informative features,
	// in units of the noise standard deviation.
	Separation float64
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultConfig is the CI-scale workload.
func DefaultConfig() Config {
	return Config{
		TrainN:      1200,
		TestN:       300,
		Features:    600,
		Informative: 60,
		MaxValue:    99,
		Density:     0.2,
		Separation:  0.6,
		Seed:        7,
	}
}

// Data is a generated dataset. Features are stored in float64 row-major
// form (they hold exact small integers); FieldMatrix embeds them into F_q
// on demand.
type Data struct {
	// TrainX is TrainN×(Features+1) row-major, the last column the bias 1.
	TrainX []float64
	// TrainY holds 0/1 labels.
	TrainY []float64
	// TestX is TestN×(Features+1) row-major.
	TestX []float64
	// TestY holds 0/1 labels.
	TestY []float64
	// Rows/Cols describe TrainX; the test split shares Cols.
	Rows, Cols int
	// TestRows describes TestX.
	TestRows int
	// MaxValue echoes the generating config for overflow checks.
	MaxValue int
}

// Generate draws a dataset.
func Generate(cfg Config) (*Data, error) {
	if cfg.TrainN < 2 || cfg.TestN < 1 {
		return nil, fmt.Errorf("dataset: need at least 2 train and 1 test samples")
	}
	if cfg.Features < 1 || cfg.Informative < 1 || cfg.Informative > cfg.Features {
		return nil, fmt.Errorf("dataset: invalid feature counts (%d informative of %d)",
			cfg.Informative, cfg.Features)
	}
	if cfg.MaxValue < 1 {
		return nil, fmt.Errorf("dataset: MaxValue must be positive")
	}
	if cfg.Separation <= 0 {
		return nil, fmt.Errorf("dataset: Separation must be positive")
	}
	if cfg.Density <= 0 || cfg.Density > 1 {
		return nil, fmt.Errorf("dataset: Density must be in (0, 1]")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.Features
	cols := d + 1 // + bias

	// Class means: a shared base level plus a per-class offset on the
	// informative features. Feature scale lives around MaxValue/2.
	base := float64(cfg.MaxValue) / 2
	sigma := float64(cfg.MaxValue) / 8
	offset := make([]float64, cfg.Informative)
	for j := range offset {
		// Alternate direction so the signal is not a single mean shift.
		dir := 1.0
		if j%2 == 1 {
			dir = -1
		}
		offset[j] = dir * cfg.Separation * sigma * (0.5 + rng.Float64())
	}

	sample := func(n int) ([]float64, []float64) {
		xs := make([]float64, n*cols)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			label := float64(i % 2) // balanced classes
			ys[i] = label
			row := xs[i*cols : (i+1)*cols]
			for j := 0; j < d; j++ {
				mean := base
				if j < cfg.Informative {
					// Informative features are dense (GISETTE's real
					// pixel-derived features); distractor "probes" are
					// sparse at the configured density.
					if label == 1 {
						mean += offset[j] / 2
					} else {
						mean -= offset[j] / 2
					}
				} else if rng.Float64() >= cfg.Density {
					continue
				}
				v := math.Round(mean + rng.NormFloat64()*sigma)
				if v < 1 {
					v = 1 // a present feature is nonzero
				}
				if v > float64(cfg.MaxValue) {
					v = float64(cfg.MaxValue)
				}
				row[j] = v
			}
			row[d] = 1 // bias column
		}
		return xs, ys
	}

	trainX, trainY := sample(cfg.TrainN)
	testX, testY := sample(cfg.TestN)
	return &Data{
		TrainX: trainX, TrainY: trainY,
		TestX: testX, TestY: testY,
		Rows: cfg.TrainN, Cols: cols, TestRows: cfg.TestN,
		MaxValue: cfg.MaxValue,
	}, nil
}

// FieldMatrix embeds the training features into F_q (they are exact
// non-negative integers, so the embedding is lossless — the paper's "no
// quantization is necessary" observation).
func (d *Data) FieldMatrix(f *field.Field) *fieldmat.Matrix {
	m := fieldmat.NewMatrix(d.Rows, d.Cols)
	for i, v := range d.TrainX {
		m.Data[i] = f.FromInt64(int64(v))
	}
	return m
}

// MaxRowL1 returns the largest row L1 norm of the training features — the
// worst-case magnitude multiplier of round-1 inner products x·w, which the
// training loop checks against the field's no-wrap-around window.
func (d *Data) MaxRowL1() float64 {
	var best float64
	for i := 0; i < d.Rows; i++ {
		var s float64
		for _, v := range d.TrainRow(i) {
			s += math.Abs(v)
		}
		if s > best {
			best = s
		}
	}
	return best
}

// MaxColL1 returns the largest column L1 norm — the round-2 analogue for
// gradient entries g_j = Σ_i x_ij·e_i.
func (d *Data) MaxColL1() float64 {
	sums := make([]float64, d.Cols)
	for i := 0; i < d.Rows; i++ {
		row := d.TrainRow(i)
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	var best float64
	for _, s := range sums {
		if s > best {
			best = s
		}
	}
	return best
}

// TrainRow returns row i of the training features.
func (d *Data) TrainRow(i int) []float64 { return d.TrainX[i*d.Cols : (i+1)*d.Cols] }

// TestRow returns row i of the test features.
func (d *Data) TestRow(i int) []float64 { return d.TestX[i*d.Cols : (i+1)*d.Cols] }
