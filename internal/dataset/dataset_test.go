package dataset

import (
	"testing"

	"repro/internal/field"
)

func TestGenerateShapes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainN, cfg.TestN, cfg.Features, cfg.Informative = 100, 40, 50, 10
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rows != 100 || d.TestRows != 40 || d.Cols != 51 {
		t.Fatalf("shapes (%d,%d,%d)", d.Rows, d.TestRows, d.Cols)
	}
	if len(d.TrainX) != 100*51 || len(d.TestX) != 40*51 {
		t.Fatal("feature buffer sizes wrong")
	}
	if len(d.TrainY) != 100 || len(d.TestY) != 40 {
		t.Fatal("label sizes wrong")
	}
}

func TestFeaturesAreBoundedIntegers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainN, cfg.TestN, cfg.Features, cfg.Informative = 80, 20, 30, 5
	cfg.MaxValue = 99
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.TrainX {
		if v != float64(int64(v)) || v < 0 || v > 99 {
			t.Fatalf("feature %v not an integer in [0,99]", v)
		}
	}
}

func TestBiasColumnIsOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainN, cfg.TestN, cfg.Features, cfg.Informative = 50, 10, 20, 4
	d, _ := Generate(cfg)
	for i := 0; i < d.Rows; i++ {
		if d.TrainRow(i)[d.Cols-1] != 1 {
			t.Fatal("bias column missing")
		}
	}
	for i := 0; i < d.TestRows; i++ {
		if d.TestRow(i)[d.Cols-1] != 1 {
			t.Fatal("test bias column missing")
		}
	}
}

func TestLabelsBalanced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainN, cfg.TestN = 100, 50
	d, _ := Generate(cfg)
	ones := 0
	for _, y := range d.TrainY {
		if y == 1 {
			ones++
		} else if y != 0 {
			t.Fatalf("label %v not in {0,1}", y)
		}
	}
	if ones != 50 {
		t.Fatalf("%d positive of 100, want 50", ones)
	}
}

func TestDeterministicFromSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainN, cfg.TestN, cfg.Features, cfg.Informative = 60, 10, 25, 5
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	for i := range a.TrainX {
		if a.TrainX[i] != b.TrainX[i] {
			t.Fatal("same seed produced different data")
		}
	}
	cfg.Seed++
	c, _ := Generate(cfg)
	same := true
	for i := range a.TrainX {
		if a.TrainX[i] != c.TrainX[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSignalExists(t *testing.T) {
	// The informative features must separate the classes: class-conditional
	// means of feature 0 should differ by a few sigma.
	cfg := DefaultConfig()
	cfg.TrainN, cfg.TestN, cfg.Features, cfg.Informative = 400, 10, 20, 10
	d, _ := Generate(cfg)
	var m0, m1 float64
	var n0, n1 int
	for i := 0; i < d.Rows; i++ {
		if d.TrainY[i] == 0 {
			m0 += d.TrainRow(i)[0]
			n0++
		} else {
			m1 += d.TrainRow(i)[0]
			n1++
		}
	}
	m0 /= float64(n0)
	m1 /= float64(n1)
	gap := m1 - m0
	if gap < 0 {
		gap = -gap
	}
	sigma := float64(cfg.MaxValue) / 8
	if gap < 0.5*sigma {
		t.Fatalf("class gap %.2f too small vs sigma %.2f — no learnable signal", gap, sigma)
	}
}

func TestFieldMatrixLossless(t *testing.T) {
	f := field.Default()
	cfg := DefaultConfig()
	cfg.TrainN, cfg.TestN, cfg.Features, cfg.Informative = 30, 5, 10, 3
	d, _ := Generate(cfg)
	m := d.FieldMatrix(f)
	if m.Rows != d.Rows || m.Cols != d.Cols {
		t.Fatal("field matrix shape wrong")
	}
	for i, v := range d.TrainX {
		if f.ToInt64(m.Data[i]) != int64(v) {
			t.Fatal("field embedding not lossless")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{TrainN: 1, TestN: 1, Features: 5, Informative: 2, MaxValue: 9, Separation: 1},
		{TrainN: 10, TestN: 0, Features: 5, Informative: 2, MaxValue: 9, Separation: 1},
		{TrainN: 10, TestN: 1, Features: 0, Informative: 0, MaxValue: 9, Separation: 1},
		{TrainN: 10, TestN: 1, Features: 5, Informative: 6, MaxValue: 9, Separation: 1},
		{TrainN: 10, TestN: 1, Features: 5, Informative: 2, MaxValue: 0, Separation: 1},
		{TrainN: 10, TestN: 1, Features: 5, Informative: 2, MaxValue: 9, Separation: 0},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestL1NormHelpers(t *testing.T) {
	d := &Data{
		TrainX: []float64{
			1, 2, 1,
			3, 0, 1,
		},
		Rows: 2, Cols: 3,
	}
	if got := d.MaxRowL1(); got != 4 {
		t.Fatalf("MaxRowL1 = %v, want 4 (row 1: 3+0+1)", got)
	}
	if got := d.MaxColL1(); got != 4 {
		t.Fatalf("MaxColL1 = %v, want 4 (col 0: 1+3)", got)
	}
}

func TestDensityControlsSparsity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainN, cfg.TestN, cfg.Features, cfg.Informative = 200, 10, 100, 5
	cfg.Density = 0.1
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count zeros among distractor columns only (informative are dense).
	zeros, total := 0, 0
	for i := 0; i < d.Rows; i++ {
		row := d.TrainRow(i)
		for j := cfg.Informative; j < cfg.Features; j++ {
			total++
			if row[j] == 0 {
				zeros++
			}
		}
	}
	frac := float64(zeros) / float64(total)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("distractor zero fraction %.3f, want ~0.9 at density 0.1", frac)
	}
	if _, err := Generate(Config{TrainN: 10, TestN: 2, Features: 5, Informative: 2,
		MaxValue: 9, Separation: 1, Density: 1.5}); err == nil {
		t.Fatal("density > 1 accepted")
	}
}
