package experiments

import (
	"testing"

	"repro/internal/scenario"
	"repro/internal/scheme"
)

func TestScenarioMatrixCoversEverySchemeAndProfile(t *testing.T) {
	sc := CI()
	sc.Dataset.TrainN, sc.Dataset.Features = 360, 120
	rows, err := RunScenarioMatrix(sc, 6)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(scheme.Names()) * len(scenario.Profiles()); len(rows) != want {
		t.Fatalf("matrix has %d rows, want %d (schemes x profiles)", len(rows), want)
	}
	var avccChurnRecodes int
	for _, r := range rows {
		if !r.Exact {
			t.Errorf("%s under %s: decode not bit-exact", r.Scheme, r.Profile)
		}
		if r.Scheme == "avcc" && r.Profile == scenario.Churn {
			avccChurnRecodes = r.Recodes
		}
		if r.Profile == scenario.Steady && r.Recodes != 0 {
			t.Errorf("%s re-coded in the steady profile", r.Scheme)
		}
	}
	if avccChurnRecodes == 0 {
		t.Error("avcc under churn never re-coded")
	}
	if out := RenderScenarioMatrix(rows); len(out) == 0 {
		t.Error("empty render")
	}
}
