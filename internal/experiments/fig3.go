package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Fig3Setting identifies one of the four convergence plots of Fig. 3.
type Fig3Setting struct {
	ID     string
	Attack string // "reverse" or "constant"
	S, M   int
}

// Fig3Settings enumerates the paper's four panels.
var Fig3Settings = []Fig3Setting{
	{ID: "fig3a", Attack: "reverse", S: 2, M: 1},
	{ID: "fig3b", Attack: "reverse", S: 1, M: 2},
	{ID: "fig3c", Attack: "constant", S: 2, M: 1},
	{ID: "fig3d", Attack: "constant", S: 1, M: 2},
}

// Fig3SettingByID looks a panel up by id ("fig3a".."fig3d").
func Fig3SettingByID(id string) (Fig3Setting, error) {
	for _, s := range Fig3Settings {
		if s.ID == id {
			return s, nil
		}
	}
	return Fig3Setting{}, fmt.Errorf("experiments: unknown fig3 panel %q", id)
}

// Fig3Result holds the three convergence traces of one panel.
type Fig3Result struct {
	Setting Fig3Setting
	AVCC    *metrics.Series
	LCC     *metrics.Series
	Uncoded *metrics.Series
}

// RunFig3 regenerates one panel of Fig. 3: test accuracy versus (virtual)
// training time for AVCC, LCC, and uncoded under the given attack and
// straggler/Byzantine population.
func RunFig3(sc Scale, set Fig3Setting) (*Fig3Result, error) {
	env, err := mkEnvironment(set.Attack, set.S, set.M)
	if err != nil {
		return nil, err
	}
	masters, ds, err := systems(sc, env)
	if err != nil {
		return nil, err
	}
	series, err := trainAll(sc, masters, ds)
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		Setting: set,
		AVCC:    series["avcc"],
		LCC:     series["lcc"],
		Uncoded: series["uncoded"],
	}, nil
}

// Render prints the accuracy-vs-time series of each scheme, the form the
// paper plots.
func (r *Fig3Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 3 (%s): %s attack, S=%d, M=%d\n",
		r.Setting.ID, r.Setting.Attack, r.Setting.S, r.Setting.M)
	fmt.Fprintf(&sb, "%-8s %12s %12s %10s\n", "scheme", "time(s)", "accuracy", "iter")
	for _, s := range []*metrics.Series{r.AVCC, r.LCC, r.Uncoded} {
		for _, rec := range s.Records {
			fmt.Fprintf(&sb, "%-8s %12.4f %12.4f %10d\n", s.Name, rec.Time, rec.TestAccuracy, rec.Iter)
		}
	}
	fmt.Fprintf(&sb, "final: avcc=%.4f lcc=%.4f uncoded=%.4f | total time: avcc=%.3fs lcc=%.3fs uncoded=%.3fs\n",
		r.AVCC.FinalAccuracy(), r.LCC.FinalAccuracy(), r.Uncoded.FinalAccuracy(),
		r.AVCC.TotalTime(), r.LCC.TotalTime(), r.Uncoded.TotalTime())
	return sb.String()
}
