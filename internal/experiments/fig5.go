package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/fieldmat"
	"repro/internal/logreg"
	"repro/internal/metrics"
	"repro/internal/scheme"
)

// Fig5Result compares dynamic AVCC against Static VCC in the paper's
// exemplary adaptation scenario: the system starts at (12, 9, S=2, M=1);
// at iteration 1 three stragglers and one Byzantine node appear. AVCC
// quarantines the Byzantine and re-encodes at (11, 8), paying a one-time
// redistribution cost that the remaining iterations amortise; Static VCC
// keeps the (12, 9) code and eats the third straggler's tail latency every
// iteration.
type Fig5Result struct {
	AVCC      *metrics.Series
	StaticVCC *metrics.Series
	// RecodeIter is the iteration at which AVCC re-coded (-1 if never).
	RecodeIter int
	// RecodeCost is the one-time cost it paid.
	RecodeCost float64
}

// RunFig5 regenerates Fig. 5.
func RunFig5(sc Scale) (*Fig5Result, error) {
	f, err := sc.Field()
	if err != nil {
		return nil, err
	}
	ds, err := dataset.Generate(sc.Dataset)
	if err != nil {
		return nil, err
	}
	x := ds.FieldMatrix(f)
	mkData := func() map[string]*fieldmat.Matrix {
		return map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}
	}
	// Three stragglers and one Byzantine appear at iteration 1.
	stragglers := attack.Phased{
		Before: attack.NoStragglers{},
		After:  attack.NewFixedStragglers(0, 1, 2),
		Switch: 1,
	}
	behaviors := func() []attack.Behavior {
		bs := make([]attack.Behavior, topologyN)
		for i := range bs {
			bs[i] = attack.Honest{}
		}
		bs[11] = attack.ActiveFrom{Inner: attack.ReverseValue{C: 1}, Start: 1}
		return bs
	}

	run := func(dynamic bool) (*metrics.Series, error) {
		name := "avcc"
		if !dynamic {
			name = "static-vcc"
		}
		m, err := scheme.New(name, f, scheme.NewConfig(
			scheme.WithCoding(topologyN, topologyK),
			scheme.WithBudgets(2, 1, 0),
			scheme.WithSim(sc.Sim),
			scheme.WithSeed(sc.Seed),
			scheme.WithModulus(sc.Modulus),
			scheme.WithPregeneratedCodings(true),
		), mkData(), behaviors(), stragglers)
		if err != nil {
			return nil, err
		}
		series, _, err := logreg.TrainDistributed(context.Background(), f, m, ds, sc.Train)
		return series, err
	}

	dynamicSeries, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5 dynamic: %w", err)
	}
	staticSeries, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5 static: %w", err)
	}
	res := &Fig5Result{AVCC: dynamicSeries, StaticVCC: staticSeries, RecodeIter: -1}
	for _, r := range dynamicSeries.Records {
		if r.Recode {
			res.RecodeIter = r.Iter
			res.RecodeCost = r.RecodeCost
			break
		}
	}
	return res, nil
}

// Render prints the cumulative execution time of both variants per
// iteration, the series Fig. 5 plots.
func (r *Fig5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig. 5: AVCC vs Static VCC cumulative execution time\n")
	fmt.Fprintf(&sb, "%-6s %14s %14s\n", "iter", "avcc(s)", "static-vcc(s)")
	for i := range r.AVCC.Records {
		fmt.Fprintf(&sb, "%-6d %14.4f %14.4f\n",
			i, r.AVCC.Records[i].Time, r.StaticVCC.Records[i].Time)
	}
	fmt.Fprintf(&sb, "recode at iteration %d, one-time cost %.4fs; final: avcc=%.4fs static=%.4fs (saved %.4fs)\n",
		r.RecodeIter, r.RecodeCost, r.AVCC.TotalTime(), r.StaticVCC.TotalTime(),
		r.StaticVCC.TotalTime()-r.AVCC.TotalTime())
	return sb.String()
}
