package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Fig4Setting identifies one of the three per-iteration cost panels.
type Fig4Setting struct {
	ID   string
	S, M int
	// Attack is the Byzantine behaviour ("reverse" in the paper's shown
	// panels; "none" for the straggler-free baseline panel).
	Attack string
}

// Fig4Settings enumerates the paper's three panels.
var Fig4Settings = []Fig4Setting{
	{ID: "fig4a", S: 0, M: 0, Attack: "none"},
	{ID: "fig4b", S: 1, M: 2, Attack: "reverse"},
	{ID: "fig4c", S: 2, M: 1, Attack: "reverse"},
}

// Fig4SettingByID looks a panel up by id.
func Fig4SettingByID(id string) (Fig4Setting, error) {
	for _, s := range Fig4Settings {
		if s.ID == id {
			return s, nil
		}
	}
	return Fig4Setting{}, fmt.Errorf("experiments: unknown fig4 panel %q", id)
}

// Fig4Result holds the mean per-iteration cost breakdown of each scheme.
type Fig4Result struct {
	Setting   Fig4Setting
	Breakdown map[string]metrics.Breakdown
	// FinalAcc mirrors the accuracy annotations in the paper's captions.
	FinalAcc map[string]float64
}

// RunFig4 regenerates one panel of Fig. 4: the per-iteration runtime split
// (compute / communication / verification / decoding) of AVCC, LCC and
// uncoded under the given straggler and Byzantine population.
func RunFig4(sc Scale, set Fig4Setting) (*Fig4Result, error) {
	env, err := mkEnvironment(set.Attack, set.S, set.M)
	if err != nil {
		return nil, err
	}
	masters, ds, err := systems(sc, env)
	if err != nil {
		return nil, err
	}
	series, err := trainAll(sc, masters, ds)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{
		Setting:   set,
		Breakdown: make(map[string]metrics.Breakdown, len(series)),
		FinalAcc:  make(map[string]float64, len(series)),
	}
	for name, s := range series {
		res.Breakdown[name] = s.MeanBreakdown()
		res.FinalAcc[name] = s.FinalAccuracy()
	}
	return res, nil
}

// Render prints the per-iteration breakdown table (the paper's stacked
// log-scale bars, as numbers).
func (r *Fig4Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 4 (%s): per-iteration cost, S=%d, M=%d, attack=%s\n",
		r.Setting.ID, r.Setting.S, r.Setting.M, r.Setting.Attack)
	fmt.Fprintf(&sb, "%-8s %12s %12s %12s %12s %12s %10s\n",
		"scheme", "compute(s)", "comm(s)", "verify(s)", "decode(s)", "wall(s)", "accuracy")
	for _, name := range []string{"avcc", "lcc", "uncoded"} {
		b := r.Breakdown[name]
		fmt.Fprintf(&sb, "%-8s %12.6f %12.6f %12.6f %12.6f %12.6f %10.4f\n",
			name, b.Compute, b.Comm, b.Verify, b.Decode, b.Wall, r.FinalAcc[name])
	}
	return sb.String()
}
