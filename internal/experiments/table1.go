package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/metrics"
)

// Table1Row is one row of the paper's Table I: end-to-end speedups of AVCC
// over LCC and the uncoded scheme in one (attack, S, M) setting.
type Table1Row struct {
	Setting Fig3Setting
	// SpeedupLCC is AVCC's speedup over the LCC baseline.
	SpeedupLCC float64
	// SpeedupUncoded is AVCC's speedup over the uncoded baseline.
	SpeedupUncoded float64
	// FinalAcc* record the convergence endpoints behind the speedups.
	FinalAccAVCC, FinalAccLCC, FinalAccUncoded float64
}

// RunTable1 regenerates Table I by running all four Fig. 3 settings and
// measuring time-to-accuracy speedups (falling back to total-time ratios
// when a baseline never reaches AVCC's accuracy level — exactly the
// settings where the paper's accuracy-improvement claims apply).
func RunTable1(sc Scale) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(Fig3Settings))
	for _, set := range Fig3Settings {
		res, err := RunFig3(sc, set)
		if err != nil {
			return nil, err
		}
		// Per-pair target: 98% of the accuracy level BOTH schemes reach —
		// the paper's speedups are times to a common accuracy level (a
		// baseline that converges lower is compared at its own ceiling,
		// which is also where its accuracy-improvement column applies).
		targetLCC := 0.98 * math.Min(res.AVCC.FinalAccuracy(), res.LCC.FinalAccuracy())
		targetUnc := 0.98 * math.Min(res.AVCC.FinalAccuracy(), res.Uncoded.FinalAccuracy())
		rows = append(rows, Table1Row{
			Setting:         set,
			SpeedupLCC:      metrics.Speedup(res.AVCC, res.LCC, targetLCC),
			SpeedupUncoded:  metrics.Speedup(res.AVCC, res.Uncoded, targetUnc),
			FinalAccAVCC:    res.AVCC.FinalAccuracy(),
			FinalAccLCC:     res.LCC.FinalAccuracy(),
			FinalAccUncoded: res.Uncoded.FinalAccuracy(),
		})
	}
	return rows, nil
}

// RenderTable1 prints the table in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table I: speedups of AVCC over LCC and the uncoded scheme\n")
	fmt.Fprintf(&sb, "%-28s %10s %10s | %8s %8s %8s\n",
		"setting", "vs LCC", "vs uncoded", "accAVCC", "accLCC", "accUnc")
	for _, r := range rows {
		name := fmt.Sprintf("%s attack S=%d, M=%d", r.Setting.Attack, r.Setting.S, r.Setting.M)
		fmt.Fprintf(&sb, "%-28s %9.2fx %9.2fx | %8.4f %8.4f %8.4f\n",
			name, r.SpeedupLCC, r.SpeedupUncoded,
			r.FinalAccAVCC, r.FinalAccLCC, r.FinalAccUncoded)
	}
	return sb.String()
}
