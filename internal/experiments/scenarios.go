package experiments

// The scenario matrix is the robustness counterpart to the paper's figures:
// every registered backend runs through every scenario preset on one shared
// seed, and the table reports how each scheme's cost and adaptation respond
// to the drifting environment — while every decoded output is checked
// bit-exact against an independently computed reference. This is the
// substrate future scale work (sharding, batching, async masters) is
// validated against: a new backend registered with the scheme package is
// automatically a row in this matrix.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/gavcc"
	"repro/internal/scenario"
	"repro/internal/scheme"
)

// ScenarioRow is one (scheme, profile) cell of the matrix.
type ScenarioRow struct {
	Scheme  string
	Profile string
	// Rounds is how many protocol rounds ran.
	Rounds int
	// VirtualSec is the summed per-round wall time plus re-coding costs.
	VirtualSec float64
	// Recodes counts dynamic re-codes (AVCC only, by design).
	Recodes int
	// ByzantineFlagged counts per-round Byzantine detections, summed.
	ByzantineFlagged int
	// StragglersObserved sums the per-round straggler observations.
	StragglersObserved int
	// Exact reports that every round decoded bit-exact against the
	// reference computation.
	Exact bool
}

// scenarioTopology returns the (n, k) deployment a scheme uses in the
// matrix: the paper's (12, 9) for degree-1 backends, the smallest feasible
// S = M = 1 topology (10, 4) for the degree-2 Gram backend.
func scenarioTopology(name string) (n, k int) {
	if name == "gavcc" {
		return 10, 4
	}
	return 12, 9
}

// RunScenarioMatrix runs every registered scheme through every scenario
// preset for the given number of rounds, deterministically from sc.Seed.
func RunScenarioMatrix(sc Scale, rounds int) ([]ScenarioRow, error) {
	f, err := sc.Field()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sc.Seed))
	matvecX := fieldmat.Rand(f, rng, sc.Dataset.TrainN, sc.Dataset.Features)
	gramX := fieldmat.Rand(f, rng, 64, 48)

	var rows []ScenarioRow
	for _, name := range scheme.Names() {
		for _, profile := range scenario.Profiles() {
			row, err := runScenarioCell(f, sc, name, profile, rounds, matvecX, gramX)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s under %s: %w", name, profile, err)
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func runScenarioCell(f *field.Field, sc Scale, name, profile string, rounds int,
	matvecX, gramX *fieldmat.Matrix) (*ScenarioRow, error) {
	n, k := scenarioTopology(name)
	scn, err := scenario.Profile(profile, n, k, sc.Seed)
	if err != nil {
		return nil, err
	}

	key, x := "fwd", matvecX
	if name == "gavcc" {
		key, x = gavcc.GramKey, gramX
	}
	m, err := scheme.New(name, f, scheme.NewConfig(
		scheme.WithCoding(n, k),
		scheme.WithBudgets(1, 1, 0),
		scheme.WithSim(sc.Sim),
		scheme.WithSeed(sc.Seed),
		scheme.WithModulus(sc.Modulus),
		scheme.WithPregeneratedCodings(true),
		scheme.WithScenario(scn),
	), map[string]*fieldmat.Matrix{key: x}, nil, nil)
	if err != nil {
		return nil, err
	}

	var gramRef []field.Elem
	if name == "gavcc" {
		blocks := fieldmat.SplitRows(fieldmat.PadRows(x, k), k)
		for _, b := range blocks {
			gramRef = append(gramRef, fieldmat.MatMul(f, b, b.Transpose()).Data...)
		}
	}

	row := &ScenarioRow{Scheme: name, Profile: profile, Rounds: rounds, Exact: true}
	inRng := rand.New(rand.NewSource(sc.Seed + 2))
	for iter := 0; iter < rounds; iter++ {
		var in, want []field.Elem
		if name == "gavcc" {
			want = gramRef
		} else {
			in = f.RandVec(inRng, x.Cols)
			want = fieldmat.MatVec(f, x, in)
		}
		out, err := m.RunRound(context.Background(), key, in, iter)
		if err != nil {
			return nil, fmt.Errorf("iter %d: %w", iter, err)
		}
		if !field.EqualVec(out.Decoded, want) {
			row.Exact = false
		}
		row.VirtualSec += out.Breakdown.Wall
		row.ByzantineFlagged += len(out.Byzantine)
		row.StragglersObserved += out.StragglersObserved
		cost, recoded := m.FinishIteration(iter)
		row.VirtualSec += cost
		if recoded {
			row.Recodes++
		}
	}
	return row, nil
}

// RenderScenarioMatrix formats the matrix as a fixed-width table.
func RenderScenarioMatrix(rows []ScenarioRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-17s %7s %12s %8s %5s %11s %6s\n",
		"scheme", "profile", "rounds", "virtual-ms", "recodes", "byz", "stragglers", "exact")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-17s %7d %12.3f %8d %5d %11d %6v\n",
			r.Scheme, r.Profile, r.Rounds, r.VirtualSec*1e3, r.Recodes,
			r.ByzantineFlagged, r.StragglersObserved, r.Exact)
	}
	return b.String()
}
