// Package experiments reproduces every table and figure of the paper's
// evaluation (Section VI). Each Run* function builds the workload, wires the
// three systems (AVCC, the LCC baseline, the uncoded baseline) onto the same
// simulated cluster conditions, trains logistic regression, and returns the
// series the corresponding figure plots. See EXPERIMENTS.md for paper-vs-
// measured results and the calibration caveats.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/logreg"
	"repro/internal/metrics"
	"repro/internal/scheme"
	"repro/internal/simnet"
)

// Scale bundles a workload size with its latency model so experiments can
// run both at CI size and (via cmd flags) at the paper's full size.
type Scale struct {
	Dataset dataset.Config
	Train   logreg.TrainConfig
	Sim     simnet.Config
	Seed    int64
	// Modulus selects the prime field every system runs on; 0 means the
	// paper's default q = 2²⁵−39. field.QNTT turns on the NTT-accelerated
	// encode path (cmd flag -field ntt).
	Modulus uint64
}

// Field resolves sc.Modulus to the field instance all systems of a run
// share.
func (sc Scale) Field() (*field.Field, error) {
	return scheme.FieldFor(scheme.Config{Modulus: sc.Modulus})
}

// CI returns a laptop-scale configuration: the full 12-worker topology and
// all protocol machinery, with m = 720, d = 300 and 15 iterations so every
// figure regenerates in seconds.
func CI() Scale {
	ds := dataset.DefaultConfig()
	ds.TrainN, ds.TestN = 720, 240
	ds.Features, ds.Informative = 300, 40
	tr := logreg.DefaultTrainConfig()
	tr.Iterations = 15
	sim := simnet.DefaultConfig()
	sim.LinkLatency = 1e-4
	return Scale{Dataset: ds, Train: tr, Sim: sim, Seed: 17}
}

// Paper returns the full GISETTE-sized configuration of Section V:
// (m, d) = (6000, 5000), 50 iterations, error precision l = 5 as in the
// paper. Expect minutes of runtime per panel.
func Paper() Scale {
	ds := dataset.DefaultConfig()
	ds.TrainN, ds.TestN = 6000, 1000
	ds.Features, ds.Informative = 5000, 400
	tr := logreg.DefaultTrainConfig()
	tr.Iterations = 50
	tr.LearningRate = 1e-5 // rescaled for the 16x larger feature count
	tr.ErrorBits = 5       // the paper's l; keeps m-term gradient sums in-field
	return Scale{Dataset: ds, Train: tr, Sim: simnet.DefaultConfig(), Seed: 17}
}

// Topology is the paper's cluster: 12 workers, K = 9. The LCC baseline is
// always *designed* for (S=1, M=1) — eq. (1) pins that at N = 12 — even
// when the environment contains more stragglers or Byzantines; AVCC adapts
// within the same 12 workers (Section V).
const (
	topologyN = 12
	topologyK = 9
)

// ConstantAttackValue is the vector value Byzantine workers send under the
// constant attack. Large enough to saturate the sigmoid after de-scaling.
const ConstantAttackValue = 100000

// mkAttack maps an attack name from the paper to a behaviour.
func mkAttack(name string) (attack.Behavior, error) {
	switch name {
	case "reverse":
		return attack.ReverseValue{C: 1}, nil
	case "constant":
		return attack.Constant{V: ConstantAttackValue}, nil
	case "none":
		return attack.Honest{}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown attack %q", name)
	}
}

// environment describes who misbehaves: the first S workers straggle, the
// M workers starting at index 3 are Byzantine (disjoint sets for S ≤ 3;
// both ranges fall inside the uncoded scheme's 9 workers so all three
// systems face the same adversaries, as on the paper's shared testbed).
type environment struct {
	stragglers attack.StragglerSchedule
	behaviors  func(n int) []attack.Behavior
	s, m       int
}

func mkEnvironment(attackName string, s, m int) (*environment, error) {
	if s+m+3 > topologyN {
		return nil, fmt.Errorf("experiments: S=%d, M=%d do not fit the topology", s, m)
	}
	behavior, err := mkAttack(attackName)
	if err != nil {
		return nil, err
	}
	stragglerIDs := make([]int, s)
	for i := range stragglerIDs {
		stragglerIDs[i] = i
	}
	byzStart := 3
	return &environment{
		stragglers: attack.NewFixedStragglers(stragglerIDs...),
		behaviors: func(n int) []attack.Behavior {
			bs := make([]attack.Behavior, n)
			for i := range bs {
				bs[i] = attack.Honest{}
			}
			for i := 0; i < m && byzStart+i < n; i++ {
				bs[byzStart+i] = behavior
			}
			return bs
		},
		s: s, m: m,
	}, nil
}

// systems builds the three masters over one dataset and one environment.
func systems(sc Scale, env *environment) (map[string]cluster.Master, *dataset.Data, error) {
	f, err := sc.Field()
	if err != nil {
		return nil, nil, err
	}
	ds, err := dataset.Generate(sc.Dataset)
	if err != nil {
		return nil, nil, err
	}
	x := ds.FieldMatrix(f)
	mk := func() map[string]*fieldmat.Matrix {
		return map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}
	}

	avccM, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithCoding(topologyN, topologyK),
		scheme.WithBudgets(env.s, env.m, 0),
		scheme.WithSim(sc.Sim),
		scheme.WithSeed(sc.Seed),
		scheme.WithModulus(sc.Modulus),
		// The paper's stated deployment strategy: encoded datasets and
		// verification keys for alternative (N,K) configurations are
		// generated offline, so a re-code pays only redistribution.
		scheme.WithPregeneratedCodings(true),
	), mk(), env.behaviors(topologyN), env.stragglers)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: avcc: %w", err)
	}
	lccM, err := scheme.New("lcc", f, scheme.NewConfig(
		scheme.WithCoding(topologyN, topologyK),
		scheme.WithBudgets(1, 1, 0), // the paper's fixed LCC design point
		scheme.WithSim(sc.Sim),
		scheme.WithSeed(sc.Seed),
		scheme.WithModulus(sc.Modulus),
	), mk(), env.behaviors(topologyN), env.stragglers)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: lcc: %w", err)
	}
	uncodedM, err := scheme.New("uncoded", f, scheme.NewConfig(
		scheme.WithCoding(topologyN, topologyK),
		scheme.WithSim(sc.Sim),
		scheme.WithSeed(sc.Seed),
		scheme.WithModulus(sc.Modulus),
	), mk(), env.behaviors(topologyK), env.stragglers)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: uncoded: %w", err)
	}
	return map[string]cluster.Master{"avcc": avccM, "lcc": lccM, "uncoded": uncodedM}, ds, nil
}

// trainAll trains each system on the same data and returns its series.
func trainAll(sc Scale, masters map[string]cluster.Master, ds *dataset.Data) (map[string]*metrics.Series, error) {
	f, err := sc.Field()
	if err != nil {
		return nil, err
	}
	out := make(map[string]*metrics.Series, len(masters))
	for name, m := range masters {
		series, _, err := logreg.TrainDistributed(context.Background(), f, m, ds, sc.Train)
		if err != nil {
			return nil, fmt.Errorf("experiments: training %s: %w", name, err)
		}
		out[name] = series
	}
	return out, nil
}
