package experiments

import (
	"strings"
	"testing"
)

// tiny returns a scale small enough for unit tests while keeping the full
// 12-worker topology and all protocol machinery.
func tiny() Scale {
	sc := CI()
	sc.Dataset.TrainN, sc.Dataset.TestN = 360, 120
	sc.Dataset.Features, sc.Dataset.Informative = 120, 24
	sc.Train.Iterations = 8
	return sc
}

func TestMkAttack(t *testing.T) {
	for _, name := range []string{"reverse", "constant", "none"} {
		if _, err := mkAttack(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := mkAttack("nope"); err == nil {
		t.Error("unknown attack accepted")
	}
}

func TestFig3SettingLookup(t *testing.T) {
	for _, s := range Fig3Settings {
		got, err := Fig3SettingByID(s.ID)
		if err != nil || got.ID != s.ID {
			t.Errorf("lookup %s failed", s.ID)
		}
	}
	if _, err := Fig3SettingByID("fig3z"); err == nil {
		t.Error("bogus id accepted")
	}
	if _, err := Fig4SettingByID("fig4z"); err == nil {
		t.Error("bogus fig4 id accepted")
	}
}

func TestEnvironmentValidation(t *testing.T) {
	if _, err := mkEnvironment("reverse", 6, 6); err == nil {
		t.Error("oversized environment accepted")
	}
	env, err := mkEnvironment("reverse", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Stragglers are workers 0..S-1; Byzantine starts at 3.
	if !env.stragglers.IsStraggler(0, 0) || !env.stragglers.IsStraggler(1, 0) || env.stragglers.IsStraggler(2, 0) {
		t.Error("straggler placement wrong")
	}
	bs := env.behaviors(12)
	if bs[3].Name() == "honest" {
		t.Error("Byzantine placement wrong")
	}
	if bs[0].Name() != "honest" || bs[4].Name() != "honest" {
		t.Error("honest placement wrong")
	}
}

func TestFig3ShapeReverseS2M1(t *testing.T) {
	// Paper Fig. 3(a): AVCC and LCC converge to the same accuracy (LCC's
	// M=1 budget covers the single Byzantine), AVCC gets there in less
	// total time, uncoded is degraded by the undetected attack.
	res, err := RunFig3(tiny(), Fig3Settings[0])
	if err != nil {
		t.Fatal(err)
	}
	a, l, u := res.AVCC.FinalAccuracy(), res.LCC.FinalAccuracy(), res.Uncoded.FinalAccuracy()
	if a < 0.75 {
		t.Fatalf("AVCC accuracy %.3f too low — training broken", a)
	}
	if diff := a - l; diff > 0.05 || diff < -0.05 {
		t.Fatalf("AVCC (%.3f) and LCC (%.3f) should converge similarly when M=1", a, l)
	}
	if res.AVCC.TotalTime() >= res.LCC.TotalTime() {
		t.Fatalf("AVCC total %.3fs not faster than LCC %.3fs", res.AVCC.TotalTime(), res.LCC.TotalTime())
	}
	// The reverse attack is the paper's *weak* attack; at CI scale the
	// uncoded accuracy hit can be small, but uncoded must never win.
	if u > a+0.02 {
		t.Fatalf("uncoded (%.3f) beat AVCC (%.3f)", u, a)
	}
	// And uncoded must be far slower: it waits for both stragglers.
	if res.Uncoded.TotalTime() < 1.5*res.AVCC.TotalTime() {
		t.Fatalf("uncoded total %.4fs should be ≫ AVCC %.4fs with 2 stragglers",
			res.Uncoded.TotalTime(), res.AVCC.TotalTime())
	}
}

func TestFig3ShapeConstantS1M2(t *testing.T) {
	// Paper Fig. 3(d): two constant-attack Byzantines overwhelm LCC's M=1
	// design; AVCC converges to higher accuracy; uncoded is worst.
	res, err := RunFig3(tiny(), Fig3Settings[3])
	if err != nil {
		t.Fatal(err)
	}
	a, l, u := res.AVCC.FinalAccuracy(), res.LCC.FinalAccuracy(), res.Uncoded.FinalAccuracy()
	if a < 0.75 {
		t.Fatalf("AVCC accuracy %.3f too low", a)
	}
	if l >= a {
		t.Fatalf("LCC (%.3f) should be degraded below AVCC (%.3f) with M=2 > budget", l, a)
	}
	if u > a {
		t.Fatalf("uncoded (%.3f) should not beat AVCC (%.3f)", u, a)
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := RunTable1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Uncoded has a straggler on its critical path in every setting.
		if r.SpeedupUncoded < 1.2 {
			t.Errorf("%s S=%d M=%d: AVCC vs uncoded only %.2fx",
				r.Setting.Attack, r.Setting.S, r.Setting.M, r.SpeedupUncoded)
		}
		if r.Setting.S > r.Setting.M {
			// S=2,M=1 rows: LCC's design (S=1) leaves a straggler on its
			// critical path; AVCC skips it → the paper's time headline.
			if r.SpeedupLCC < 1.2 {
				t.Errorf("%s S=%d M=%d: AVCC vs LCC only %.2fx, straggler tail missing",
					r.Setting.Attack, r.Setting.S, r.Setting.M, r.SpeedupLCC)
			}
		} else {
			// S=1,M=2 rows: both avoid the single straggler; AVCC's win is
			// accuracy (the paper's "up to 5.1% accuracy improvement") and
			// it must not be meaningfully slower despite paying for
			// verification.
			if r.SpeedupLCC < 0.9 {
				t.Errorf("%s S=%d M=%d: AVCC vs LCC %.2fx, verification overhead too heavy",
					r.Setting.Attack, r.Setting.S, r.Setting.M, r.SpeedupLCC)
			}
			if r.FinalAccAVCC < r.FinalAccLCC+0.05 {
				t.Errorf("%s S=%d M=%d: AVCC accuracy %.3f not above overwhelmed LCC %.3f",
					r.Setting.Attack, r.Setting.S, r.Setting.M, r.FinalAccAVCC, r.FinalAccLCC)
			}
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "reverse attack S=2, M=1") {
		t.Error("table rendering incomplete")
	}
}

func TestFig4StragglerFree(t *testing.T) {
	// Paper Fig. 4(a): without stragglers, AVCC's verify+decode is pure
	// overhead — uncoded has the lowest wall time; AVCC's verify and decode
	// phases are nonzero while uncoded's are zero.
	res, err := RunFig4(tiny(), Fig4Settings[0])
	if err != nil {
		t.Fatal(err)
	}
	av, un, lc := res.Breakdown["avcc"], res.Breakdown["uncoded"], res.Breakdown["lcc"]
	if av.Verify <= 0 || av.Decode <= 0 {
		t.Fatal("AVCC phases missing")
	}
	if un.Verify != 0 || un.Decode != 0 {
		t.Fatal("uncoded must have no verify/decode")
	}
	if lc.Verify != 0 {
		t.Fatal("LCC must have no separate verify phase")
	}
	if un.Wall > av.Wall {
		t.Fatalf("straggler-free uncoded (%.6f) should not be slower than AVCC (%.6f)", un.Wall, av.Wall)
	}
}

func TestFig4StragglersDominanceShape(t *testing.T) {
	// Paper Fig. 4(c): with stragglers present, AVCC's verify+decode
	// overhead is dwarfed by straggler latency, and uncoded's wall time
	// (which must wait for every straggler) exceeds AVCC's.
	res, err := RunFig4(tiny(), Fig4Settings[2])
	if err != nil {
		t.Fatal(err)
	}
	av, un := res.Breakdown["avcc"], res.Breakdown["uncoded"]
	if un.Wall <= av.Wall {
		t.Fatalf("uncoded wall %.6f should exceed AVCC %.6f when stragglers exist", un.Wall, av.Wall)
	}
	overhead := av.Verify + av.Decode
	if overhead*5 > un.Wall {
		t.Fatalf("AVCC overhead %.6f not dwarfed by straggler latency %.6f", overhead, un.Wall)
	}
}

func TestFig5Shape(t *testing.T) {
	// Fig. 5 needs a compute-dominated scale AND enough iterations for the
	// one-time redistribution cost to amortise (the paper's break-even is
	// ~21 iterations of a 50-iteration run; CI scale breaks even at ~9).
	sc := CI()
	res, err := RunFig5(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecodeIter < 1 {
		t.Fatalf("AVCC should have re-coded at iteration >= 1, got %d", res.RecodeIter)
	}
	if res.RecodeCost <= 0 {
		t.Fatal("re-code must have a positive one-time cost")
	}
	// The paper's headline: despite the one-time cost, AVCC finishes ahead.
	if res.AVCC.TotalTime() >= res.StaticVCC.TotalTime() {
		t.Fatalf("AVCC total %.4fs not below Static VCC %.4fs",
			res.AVCC.TotalTime(), res.StaticVCC.TotalTime())
	}
	// Immediately after the recode iteration AVCC may be BEHIND (it just
	// paid the cost); the crossover must happen before the end.
	ri := res.RecodeIter
	if ri+1 < len(res.AVCC.Records) {
		crossed := false
		for i := ri; i < len(res.AVCC.Records); i++ {
			if res.AVCC.Records[i].Time < res.StaticVCC.Records[i].Time {
				crossed = true
				break
			}
		}
		if !crossed {
			t.Fatal("AVCC never crossed below Static VCC after re-coding")
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Fig. 5") {
		t.Error("render incomplete")
	}
}

func TestRenderFig3AndFig4(t *testing.T) {
	sc := tiny()
	sc.Train.Iterations = 3
	res3, err := RunFig3(sc, Fig3Settings[0])
	if err != nil {
		t.Fatal(err)
	}
	if out := res3.Render(); !strings.Contains(out, "fig3a") || !strings.Contains(out, "avcc") {
		t.Error("fig3 render incomplete")
	}
	res4, err := RunFig4(sc, Fig4Settings[1])
	if err != nil {
		t.Fatal(err)
	}
	if out := res4.Render(); !strings.Contains(out, "fig4b") || !strings.Contains(out, "verify") {
		t.Error("fig4 render incomplete")
	}
}
