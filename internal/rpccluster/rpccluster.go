// Package rpccluster runs the worker side of the protocol as real network
// services: each worker is a net/rpc server over TCP, and RPCExecutor makes
// any master (AVCC or baseline) drive those remote workers instead of the
// virtual-time simulator.
//
// This is the "it actually distributes" path: the algebra, verification and
// decode logic are byte-identical to the simulated runs; only arrival times
// become wall-clock measurements. cmd/avccdemo wires a full master + 12
// worker processes-worth of servers over loopback.
package rpccluster

import (
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/field"
)

// ComputeArgs is the RPC request: apply the worker's shard for the round
// key to the input vector.
type ComputeArgs struct {
	Key   string
	Input []field.Elem
	Iter  int
}

// ComputeReply is the RPC response.
type ComputeReply struct {
	Output []field.Elem
}

// WorkerService is the RPC-exposed wrapper around a cluster.Worker.
type WorkerService struct {
	f *field.Field
	w *cluster.Worker
}

// Compute implements the RPC method. Byzantine behaviour (if the worker is
// configured with one) is applied server-side, exactly as a compromised
// machine would.
func (s *WorkerService) Compute(args *ComputeArgs, reply *ComputeReply) error {
	out, _, err := s.w.Compute(s.f, args.Key, args.Input, args.Iter)
	if err != nil {
		return err
	}
	reply.Output = out
	return nil
}

// Server is one running worker endpoint.
type Server struct {
	Addr     string
	listener net.Listener
	wg       sync.WaitGroup
}

// Serve starts a worker RPC server on addr (use "127.0.0.1:0" to pick a
// free port). Close the returned server to stop it.
func Serve(addr string, f *field.Field, w *cluster.Worker) (*Server, error) {
	srv := rpc.NewServer()
	// Register under a worker-unique name so multiple workers can share a
	// process in tests and the demo binary.
	name := fmt.Sprintf("Worker%d", w.ID)
	if err := srv.RegisterName(name, &WorkerService{f: f, w: w}); err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: l.Addr().String(), listener: l}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	return s, nil
}

// Close stops accepting connections and waits for the accept loop to exit.
func (s *Server) Close() error {
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// RPCExecutor implements cluster.Executor against remote workers.
type RPCExecutor struct {
	clients []*rpc.Client
	ids     []int
}

// Dial connects to worker endpoints. addrs[i] must host the worker whose
// ID is ids[i] (or 0..len-1 when ids is nil).
func Dial(addrs []string, ids []int) (*RPCExecutor, error) {
	if ids == nil {
		ids = make([]int, len(addrs))
		for i := range ids {
			ids[i] = i
		}
	}
	if len(ids) != len(addrs) {
		return nil, fmt.Errorf("rpccluster: %d ids for %d addrs", len(ids), len(addrs))
	}
	e := &RPCExecutor{ids: ids}
	for _, a := range addrs {
		c, err := rpc.Dial("tcp", a)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("rpccluster: dial %s: %w", a, err)
		}
		e.clients = append(e.clients, c)
	}
	return e, nil
}

// Close tears down all client connections.
func (e *RPCExecutor) Close() {
	for _, c := range e.clients {
		if c != nil {
			c.Close()
		}
	}
}

// RunRound implements cluster.Executor: issue all calls concurrently and
// order results by real completion time.
func (e *RPCExecutor) RunRound(key string, input []field.Elem, iter int, active []int) []cluster.Result {
	idx := make(map[int]int, len(e.ids))
	for i, id := range e.ids {
		idx[id] = i
	}
	start := time.Now()
	var mu sync.Mutex
	results := make([]cluster.Result, 0, len(active))
	var wg sync.WaitGroup
	for _, id := range active {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res := cluster.Result{Worker: id}
			ci, ok := idx[id]
			if !ok {
				res.Err = fmt.Errorf("rpccluster: no connection for worker %d", id)
			} else {
				t0 := time.Now()
				var reply ComputeReply
				err := e.clients[ci].Call(fmt.Sprintf("Worker%d.Compute", id),
					&ComputeArgs{Key: key, Input: input, Iter: iter}, &reply)
				res.ComputeSec = time.Since(t0).Seconds()
				res.Output = reply.Output
				res.Err = err
			}
			res.ArriveAt = time.Since(start).Seconds()
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].ArriveAt < results[j].ArriveAt })
	return results
}
