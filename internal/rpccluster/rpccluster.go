// Package rpccluster runs the worker side of the protocol as real network
// services, and gives masters (AVCC or baseline) executors that drive those
// remote workers instead of the virtual-time simulator.
//
// Two transports are provided, with identical cluster.Executor semantics
// (deadline ∧ context, transport failure ⇒ erasure, server-side error ⇒
// Result.Err) so the conformance suites run against either:
//
//   - FrameExecutor / FrameServer: the streaming binary transport
//     (frame.go) — length-prefixed frames over persistent connections,
//     explicit request IDs with immediate reaping of abandoned calls,
//     zero-copy []field.Elem payloads, and broadcast-once rounds. This is
//     the deployment data plane.
//   - RPCExecutor / Server: the legacy net/rpc path, kept as the
//     comparison baseline, with its abandoned-call leak fixed by
//     connection recycling (see rpcEndpoint).
//
// This is the "it actually distributes" path: the algebra, verification and
// decode logic are byte-identical to the simulated runs; only arrival times
// become wall-clock measurements. cmd/avccdemo wires a full master + 12
// worker processes-worth of servers over loopback.
package rpccluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/field"
)

// ComputeArgs is the RPC request: apply the worker's shard for the round
// key to the input vector. Batch > 1 means Input packs that many
// equal-length vectors and the reply packs the matching outputs (a batched
// round); 0 is read as 1 for wire-compatibility with single-vector clients.
type ComputeArgs struct {
	Key   string
	Input []field.Elem
	Batch int
	Iter  int
	// Commit asks the worker to ship a Merkle commitment to its output
	// (commit.OutputRoot) alongside the result. Absent/false keeps the wire
	// format cost-free for receipt-less deployments.
	Commit bool
}

// ComputeReply is the RPC response.
type ComputeReply struct {
	Output []field.Elem
	// Commit is the worker's output commitment when the request asked for
	// one, nil otherwise.
	Commit []byte
}

// WorkerService is the RPC-exposed wrapper around a cluster.Worker.
type WorkerService struct {
	f *field.Field
	w *cluster.Worker
}

// Compute implements the RPC method. Byzantine behaviour (if the worker is
// configured with one) is applied server-side, exactly as a compromised
// machine would.
func (s *WorkerService) Compute(args *ComputeArgs, reply *ComputeReply) error {
	batch := args.Batch
	if batch < 1 {
		batch = 1
	}
	out, _, err := s.w.Compute(s.f, args.Key, args.Input, batch, args.Iter)
	if err != nil {
		return err
	}
	reply.Output = out
	if args.Commit {
		// The commitment covers what the worker actually sends — behaviour
		// included — exactly like the virtual executors: a Byzantine worker
		// commits to its lie, it does not get to lie about its commitment.
		reply.Commit = commit.OutputRoot(out)
	}
	return nil
}

// Server is one running worker endpoint. Close tears down the listener AND
// every established connection, so closing a server mid-round behaves like
// the machine dying: in-flight calls fail at the client instead of hanging.
type Server struct {
	Addr     string
	listener net.Listener
	wg       sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts a worker RPC server on addr (use "127.0.0.1:0" to pick a
// free port). Close the returned server to stop it.
func Serve(addr string, f *field.Field, w *cluster.Worker) (*Server, error) {
	srv := rpc.NewServer()
	// Register under a worker-unique name so multiple workers can share a
	// process in tests and the demo binary.
	name := fmt.Sprintf("Worker%d", w.ID)
	if err := srv.RegisterName(name, &WorkerService{f: f, w: w}); err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: l.Addr().String(), listener: l, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			if !s.track(conn) {
				conn.Close()
				return
			}
			go func() {
				defer s.untrack(conn)
				srv.ServeConn(conn)
			}()
		}
	}()
	return s, nil
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Close stops accepting connections, severs all established connections
// (failing any in-flight calls), and waits for the accept loop to exit.
func (s *Server) Close() error {
	err := s.listener.Close()
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// DefaultCallTimeout bounds each worker RPC unless the caller overrides
// Timeout. A crashed or wedged endpoint costs one timeout, not a wedged
// round: coded computing treats the worker as missing (an erasure) and
// decodes from the survivors.
const DefaultCallTimeout = 30 * time.Second

// rpcEndpoint wraps one net/rpc client connection with the recycling that
// keeps the legacy path leak-free. net/rpc offers no way to cancel a
// pending call: an abandoned (timed-out, cancelled) call's entry sits in
// the client's pending map — pinning its arguments and reply — until the
// server eventually answers or the connection closes. A wedged server
// therefore used to leak every abandoned call for the executor's lifetime.
// Recycling closes the connection the moment a call is abandoned on it
// (freeing everything pending) and redials lazily on the next call.
type rpcEndpoint struct {
	addr string

	mu     sync.Mutex
	client *rpc.Client
	gen    int // increments per recycle, so stale abandons can't close a fresh client
	closed bool
	// recycles counts connection replacements; the wedged-server soak
	// asserts abandoned calls trigger them instead of accumulating.
	recycles int
}

// get returns the live client, redialling if the previous connection was
// recycled or died. The generation identifies the returned client for a
// later recycle call.
func (ep *rpcEndpoint) get() (*rpc.Client, int, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return nil, 0, errConnClosed
	}
	if ep.client == nil {
		c, err := rpc.Dial("tcp", ep.addr)
		if err != nil {
			return nil, 0, err
		}
		ep.client = c
	}
	return ep.client, ep.gen, nil
}

// recycle retires the client a call was abandoned on. Closing it releases
// every entry in its pending map (net/rpc fails them with ErrShutdown), so
// nothing stays pinned; concurrent calls still in flight on the same
// connection fail as transport errors, which the caller already absorbs as
// erasures. A stale generation (the client was already replaced) is a no-op.
func (ep *rpcEndpoint) recycle(gen int) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.client == nil || ep.gen != gen {
		return
	}
	ep.client.Close()
	ep.client = nil
	ep.gen++
	ep.recycles++
}

func (ep *rpcEndpoint) close() {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.closed = true
	if ep.client != nil {
		ep.client.Close()
		ep.client = nil
	}
}

// RPCExecutor implements cluster.Executor against remote workers over
// net/rpc. It is the legacy transport — FrameExecutor is the streaming
// replacement — kept as the comparison baseline and for wire compatibility
// with existing worker fleets, with its data-plane leaks fixed by
// connection recycling (see rpcEndpoint).
type RPCExecutor struct {
	endpoints []*rpcEndpoint
	ids       []int
	// idx and methods are precomputed at Dial so the per-round hot path
	// does not rebuild the id→client map or re-Sprintf the service method
	// name on every call.
	idx     map[int]int
	methods []string
	// Timeout is the per-call deadline CAP. The effective deadline of each
	// worker call derives from the round's context first: a caller deadline
	// tighter than Timeout wins, and cancelling the context aborts every
	// in-flight call of the round immediately. A call that exceeds its
	// deadline — or fails at the transport layer (dead endpoint, severed
	// connection) — yields no Result at all: the worker is reported missing,
	// an erasure the master's code absorbs, exactly as the virtual executor
	// models crashed workers. Worker-side application errors (e.g. a missing
	// shard) still surface as Result.Err: the endpoint is alive and
	// answered, so hiding its answer would mask deployment bugs. Zero means
	// DefaultCallTimeout; negative leaves only the caller's context
	// governing the call.
	Timeout time.Duration
	// CommitOutputs makes every call request an output commitment from the
	// worker (the committed-verification plane).
	CommitOutputs bool
}

// Dial connects to worker endpoints. addrs[i] must host the worker whose
// ID is ids[i] (or 0..len-1 when ids is nil).
func Dial(addrs []string, ids []int) (*RPCExecutor, error) {
	if ids == nil {
		ids = make([]int, len(addrs))
		for i := range ids {
			ids[i] = i
		}
	}
	if len(ids) != len(addrs) {
		return nil, fmt.Errorf("rpccluster: %d ids for %d addrs", len(ids), len(addrs))
	}
	e := &RPCExecutor{ids: ids, idx: make(map[int]int, len(ids)), methods: make([]string, len(ids))}
	for i, id := range ids {
		e.idx[id] = i
		e.methods[i] = fmt.Sprintf("Worker%d.Compute", id)
	}
	for _, a := range addrs {
		ep := &rpcEndpoint{addr: a}
		if _, _, err := ep.get(); err != nil {
			e.Close()
			return nil, fmt.Errorf("rpccluster: dial %s: %w", a, err)
		}
		e.endpoints = append(e.endpoints, ep)
	}
	return e, nil
}

// Close tears down all client connections.
func (e *RPCExecutor) Close() {
	for _, ep := range e.endpoints {
		ep.close()
	}
}

// recycles sums connection replacements across endpoints (test hook).
func (e *RPCExecutor) recycleCount() int {
	n := 0
	for _, ep := range e.endpoints {
		ep.mu.Lock()
		n += ep.recycles
		ep.mu.Unlock()
	}
	return n
}

// errCallTimeout marks a call that outlived the per-call deadline.
var errCallTimeout = errors.New("rpccluster: call deadline exceeded")

// effectiveTimeout resolves the per-call deadline shared by both transports:
// the configured cap (with 0 meaning DefaultCallTimeout and negative
// meaning no cap) tightened by whatever deadline the round's context
// carries. The boolean reports whether any deadline applies at all.
func effectiveTimeout(cap time.Duration, ctx context.Context) (time.Duration, bool) {
	limit := cap
	has := true
	switch {
	case limit == 0:
		limit = DefaultCallTimeout
	case limit < 0:
		limit, has = 0, false
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); !has || rem < limit {
			limit, has = rem, true
		}
	}
	return limit, has
}

// call issues one worker RPC under the effective deadline (configured cap ∧
// context deadline) and aborts on context cancellation. An abandoned call
// (timeout or cancellation) recycles its connection so nothing stays pinned
// in net/rpc's pending map; the caller treats the worker as missing.
func (e *RPCExecutor) call(ctx context.Context, ci int, args *ComputeArgs, reply *ComputeReply) error {
	timeout, has := effectiveTimeout(e.Timeout, ctx)
	if has && timeout <= 0 {
		// The caller's deadline had already passed before the call could go
		// out: attribute it to the context, not to a slow worker — callers
		// must be able to distinguish their own cancellation from a wedged
		// endpoint. (This used to return errCallTimeout.)
		if err := ctx.Err(); err != nil {
			return err
		}
		return context.DeadlineExceeded
	}
	client, gen, err := e.endpoints[ci].get()
	if err != nil {
		return err
	}
	c := client.Go(e.methods[ci], args, reply, make(chan *rpc.Call, 1))
	if !has {
		select {
		case <-c.Done:
			return c.Error
		case <-ctx.Done():
			e.endpoints[ci].recycle(gen)
			return ctx.Err()
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-c.Done:
		return c.Error
	case <-timer.C:
		e.endpoints[ci].recycle(gen)
		return errCallTimeout
	case <-ctx.Done():
		e.endpoints[ci].recycle(gen)
		return ctx.Err()
	}
}

// RunRound implements cluster.Executor: issue all calls concurrently under
// per-call deadlines derived from the caller's context and order results by
// real completion time. Workers whose calls time out or fail at the
// transport layer are omitted from the results — erasures, matching the
// virtual executor's crash semantics — so a dead endpoint costs the master
// one deadline instead of a hung round, and cancelling ctx releases the
// whole round at once (the master reports the cancellation; the abandoned
// replies are discarded).
func (e *RPCExecutor) RunRound(ctx context.Context, key string, input []field.Elem, batch, iter int, active []int) []cluster.Result {
	start := time.Now()
	var mu sync.Mutex
	results := make([]cluster.Result, 0, len(active))
	var wg sync.WaitGroup
	for _, id := range active {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res := cluster.Result{Worker: id}
			ci, ok := e.idx[id]
			if !ok {
				res.Err = fmt.Errorf("rpccluster: no connection for worker %d", id)
			} else {
				t0 := time.Now()
				var reply ComputeReply
				err := e.call(ctx, ci,
					&ComputeArgs{Key: key, Input: input, Batch: batch, Iter: iter, Commit: e.CommitOutputs}, &reply)
				var serverErr rpc.ServerError
				if err != nil && !errors.As(err, &serverErr) {
					// Timeout, cancellation or transport failure: the
					// endpoint is gone as far as this round is concerned.
					// Report the worker missing rather than poisoning the
					// round with an error the master cannot act on.
					return
				}
				res.ComputeSec = time.Since(t0).Seconds()
				res.Output = reply.Output
				res.Commit = reply.Commit
				res.Err = err
			}
			res.ArriveAt = time.Since(start).Seconds()
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].ArriveAt < results[j].ArriveAt })
	return results
}
