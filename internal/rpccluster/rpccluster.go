// Package rpccluster runs the worker side of the protocol as real network
// services: each worker is a net/rpc server over TCP, and RPCExecutor makes
// any master (AVCC or baseline) drive those remote workers instead of the
// virtual-time simulator.
//
// This is the "it actually distributes" path: the algebra, verification and
// decode logic are byte-identical to the simulated runs; only arrival times
// become wall-clock measurements. cmd/avccdemo wires a full master + 12
// worker processes-worth of servers over loopback.
package rpccluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/field"
)

// ComputeArgs is the RPC request: apply the worker's shard for the round
// key to the input vector. Batch > 1 means Input packs that many
// equal-length vectors and the reply packs the matching outputs (a batched
// round); 0 is read as 1 for wire-compatibility with single-vector clients.
type ComputeArgs struct {
	Key   string
	Input []field.Elem
	Batch int
	Iter  int
	// Commit asks the worker to ship a Merkle commitment to its output
	// (commit.OutputRoot) alongside the result. Absent/false keeps the wire
	// format cost-free for receipt-less deployments.
	Commit bool
}

// ComputeReply is the RPC response.
type ComputeReply struct {
	Output []field.Elem
	// Commit is the worker's output commitment when the request asked for
	// one, nil otherwise.
	Commit []byte
}

// WorkerService is the RPC-exposed wrapper around a cluster.Worker.
type WorkerService struct {
	f *field.Field
	w *cluster.Worker
}

// Compute implements the RPC method. Byzantine behaviour (if the worker is
// configured with one) is applied server-side, exactly as a compromised
// machine would.
func (s *WorkerService) Compute(args *ComputeArgs, reply *ComputeReply) error {
	batch := args.Batch
	if batch < 1 {
		batch = 1
	}
	out, _, err := s.w.Compute(s.f, args.Key, args.Input, batch, args.Iter)
	if err != nil {
		return err
	}
	reply.Output = out
	if args.Commit {
		// The commitment covers what the worker actually sends — behaviour
		// included — exactly like the virtual executors: a Byzantine worker
		// commits to its lie, it does not get to lie about its commitment.
		reply.Commit = commit.OutputRoot(out)
	}
	return nil
}

// Server is one running worker endpoint. Close tears down the listener AND
// every established connection, so closing a server mid-round behaves like
// the machine dying: in-flight calls fail at the client instead of hanging.
type Server struct {
	Addr     string
	listener net.Listener
	wg       sync.WaitGroup

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Serve starts a worker RPC server on addr (use "127.0.0.1:0" to pick a
// free port). Close the returned server to stop it.
func Serve(addr string, f *field.Field, w *cluster.Worker) (*Server, error) {
	srv := rpc.NewServer()
	// Register under a worker-unique name so multiple workers can share a
	// process in tests and the demo binary.
	name := fmt.Sprintf("Worker%d", w.ID)
	if err := srv.RegisterName(name, &WorkerService{f: f, w: w}); err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: l.Addr().String(), listener: l, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			if !s.track(conn) {
				conn.Close()
				return
			}
			go func() {
				defer s.untrack(conn)
				srv.ServeConn(conn)
			}()
		}
	}()
	return s, nil
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Close stops accepting connections, severs all established connections
// (failing any in-flight calls), and waits for the accept loop to exit.
func (s *Server) Close() error {
	err := s.listener.Close()
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// DefaultCallTimeout bounds each worker RPC unless the caller overrides
// Timeout. A crashed or wedged endpoint costs one timeout, not a wedged
// round: coded computing treats the worker as missing (an erasure) and
// decodes from the survivors.
const DefaultCallTimeout = 30 * time.Second

// RPCExecutor implements cluster.Executor against remote workers.
type RPCExecutor struct {
	clients []*rpc.Client
	ids     []int
	// Timeout is the per-call deadline CAP. The effective deadline of each
	// worker call derives from the round's context first: a caller deadline
	// tighter than Timeout wins, and cancelling the context aborts every
	// in-flight call of the round immediately. A call that exceeds its
	// deadline — or fails at the transport layer (dead endpoint, severed
	// connection) — yields no Result at all: the worker is reported missing,
	// an erasure the master's code absorbs, exactly as the virtual executor
	// models crashed workers. Worker-side application errors (e.g. a missing
	// shard) still surface as Result.Err: the endpoint is alive and
	// answered, so hiding its answer would mask deployment bugs. Zero means
	// DefaultCallTimeout; negative leaves only the caller's context
	// governing the call.
	Timeout time.Duration
	// CommitOutputs makes every call request an output commitment from the
	// worker (the committed-verification plane).
	CommitOutputs bool
}

// Dial connects to worker endpoints. addrs[i] must host the worker whose
// ID is ids[i] (or 0..len-1 when ids is nil).
func Dial(addrs []string, ids []int) (*RPCExecutor, error) {
	if ids == nil {
		ids = make([]int, len(addrs))
		for i := range ids {
			ids[i] = i
		}
	}
	if len(ids) != len(addrs) {
		return nil, fmt.Errorf("rpccluster: %d ids for %d addrs", len(ids), len(addrs))
	}
	e := &RPCExecutor{ids: ids}
	for _, a := range addrs {
		c, err := rpc.Dial("tcp", a)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("rpccluster: dial %s: %w", a, err)
		}
		e.clients = append(e.clients, c)
	}
	return e, nil
}

// Close tears down all client connections.
func (e *RPCExecutor) Close() {
	for _, c := range e.clients {
		if c != nil {
			c.Close()
		}
	}
}

// errCallTimeout marks a call that outlived the per-call deadline.
var errCallTimeout = errors.New("rpccluster: call deadline exceeded")

// callTimeout resolves the effective per-call deadline: the configured cap
// (Timeout, with 0 meaning DefaultCallTimeout and negative meaning no cap)
// tightened by whatever deadline the round's context carries. The boolean
// reports whether any deadline applies at all.
func (e *RPCExecutor) callTimeout(ctx context.Context) (time.Duration, bool) {
	limit := e.Timeout
	has := true
	switch {
	case limit == 0:
		limit = DefaultCallTimeout
	case limit < 0:
		limit, has = 0, false
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); !has || rem < limit {
			limit, has = rem, true
		}
	}
	return limit, has
}

// call issues one worker RPC under the effective deadline (configured cap ∧
// context deadline) and aborts on context cancellation. On timeout or
// cancellation the pending call is abandoned (net/rpc keeps the goroutine
// until the client closes); the caller treats the worker as missing.
func (e *RPCExecutor) call(ctx context.Context, ci, id int, args *ComputeArgs, reply *ComputeReply) error {
	c := e.clients[ci].Go(fmt.Sprintf("Worker%d.Compute", id), args, reply, make(chan *rpc.Call, 1))
	timeout, has := e.callTimeout(ctx)
	if !has {
		select {
		case <-c.Done:
			return c.Error
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if timeout <= 0 {
		return errCallTimeout // deadline already in the past
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-c.Done:
		return c.Error
	case <-timer.C:
		return errCallTimeout
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RunRound implements cluster.Executor: issue all calls concurrently under
// per-call deadlines derived from the caller's context and order results by
// real completion time. Workers whose calls time out or fail at the
// transport layer are omitted from the results — erasures, matching the
// virtual executor's crash semantics — so a dead endpoint costs the master
// one deadline instead of a hung round, and cancelling ctx releases the
// whole round at once (the master reports the cancellation; the abandoned
// replies are discarded).
func (e *RPCExecutor) RunRound(ctx context.Context, key string, input []field.Elem, batch, iter int, active []int) []cluster.Result {
	idx := make(map[int]int, len(e.ids))
	for i, id := range e.ids {
		idx[id] = i
	}
	start := time.Now()
	var mu sync.Mutex
	results := make([]cluster.Result, 0, len(active))
	var wg sync.WaitGroup
	for _, id := range active {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res := cluster.Result{Worker: id}
			ci, ok := idx[id]
			if !ok {
				res.Err = fmt.Errorf("rpccluster: no connection for worker %d", id)
			} else {
				t0 := time.Now()
				var reply ComputeReply
				err := e.call(ctx, ci, id,
					&ComputeArgs{Key: key, Input: input, Batch: batch, Iter: iter, Commit: e.CommitOutputs}, &reply)
				var serverErr rpc.ServerError
				if err != nil && !errors.As(err, &serverErr) {
					// Timeout, cancellation or transport failure: the
					// endpoint is gone as far as this round is concerned.
					// Report the worker missing rather than poisoning the
					// round with an error the master cannot act on.
					return
				}
				res.ComputeSec = time.Since(t0).Seconds()
				res.Output = reply.Output
				res.Commit = reply.Commit
				res.Err = err
			}
			res.ArriveAt = time.Since(start).Seconds()
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].ArriveAt < results[j].ArriveAt })
	return results
}
