package rpccluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/field"
)

// FrameServer is one worker endpoint speaking the framed wire protocol. It
// mirrors the net/rpc Server's lifecycle contract: Close tears down the
// listener AND every established connection, so closing a server mid-round
// behaves like the machine dying — in-flight calls fail at the client
// instead of hanging.
type FrameServer struct {
	Addr     string
	listener net.Listener
	wg       sync.WaitGroup

	f       *field.Field
	workers map[int]*cluster.Worker

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// ServeFrames starts a framed worker endpoint on addr (use "127.0.0.1:0"
// to pick a free port) hosting the given workers, keyed by their IDs. One
// server can host many workers — tests and the demo binary colocate them —
// and a request naming a worker the server does not host is answered with
// an application error, exactly like net/rpc's unknown-service reply.
func ServeFrames(addr string, f *field.Field, workers ...*cluster.Worker) (*FrameServer, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("rpccluster: ServeFrames needs at least one worker")
	}
	byID := make(map[int]*cluster.Worker, len(workers))
	for _, w := range workers {
		if _, dup := byID[w.ID]; dup {
			return nil, fmt.Errorf("rpccluster: duplicate worker ID %d", w.ID)
		}
		byID[w.ID] = w
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &FrameServer{
		Addr:     l.Addr().String(),
		listener: l,
		f:        f,
		workers:  byID,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			if !s.track(conn) {
				conn.Close()
				return
			}
			go func() {
				defer s.untrack(conn)
				s.serveConn(conn)
			}()
		}
	}()
	return s, nil
}

func (s *FrameServer) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *FrameServer) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Close stops accepting connections, severs all established connections
// (failing any in-flight calls), and waits for the accept loop to exit.
func (s *FrameServer) Close() error {
	err := s.listener.Close()
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// serveConn reads request frames until the connection dies or a frame is
// malformed (at which point the stream cannot be re-framed and the
// connection is closed). Each request computes in its own goroutine so a
// slow round does not head-of-line-block later requests multiplexed on the
// same connection; responses are serialised by a write lock.
func (s *FrameServer) serveConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	var wmu sync.Mutex
	var pending sync.WaitGroup
	defer pending.Wait()
	for {
		req, err := readRequest(br)
		if err != nil {
			return
		}
		pending.Add(1)
		go func() {
			defer pending.Done()
			resp := s.handle(req)
			head, elems, tail := encodeResponseParts(resp)
			bufs := net.Buffers{head}
			if elems != nil {
				bufs = append(bufs, elems)
			}
			if tail != nil {
				bufs = append(bufs, tail)
			}
			wmu.Lock()
			_, _ = bufs.WriteTo(conn) // a write error kills the conn; the reader sees it
			wmu.Unlock()
		}()
	}
}

// handle runs one worker computation. Byzantine behaviour (if the worker is
// configured with one) is applied server-side, exactly as a compromised
// machine would; the output commitment covers what the worker actually
// sends, behaviour included — a Byzantine worker commits to its lie, it
// does not get to lie about its commitment.
func (s *FrameServer) handle(req *requestFrame) *responseFrame {
	resp := &responseFrame{ID: req.ID}
	w, ok := s.workers[req.Worker]
	if !ok {
		resp.Err = fmt.Sprintf("rpccluster: server does not host worker %d", req.Worker)
		return resp
	}
	batch := req.Batch
	if batch < 1 {
		batch = 1
	}
	out, _, err := w.Compute(s.f, req.Key, req.Input, batch, req.Iter)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Output = out
	if req.Commit {
		resp.Commit = commit.OutputRoot(out)
	}
	return resp
}
