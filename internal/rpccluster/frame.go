// The framed wire protocol: the purpose-built replacement for net/rpc on
// the data plane.
//
// net/rpc cost this path three ways. Every call re-encoded its arguments
// with gob — reflection over []uint64 payloads that are already in wire
// shape. A round broadcasting one input to N workers paid that encoding N
// times. And an abandoned call (timeout, cancellation) stayed pinned in the
// client's pending map until the server eventually answered or the
// connection closed — a wedged server leaked every abandoned call for the
// executor's lifetime.
//
// The framed protocol fixes all three structurally:
//
//   - Length-prefixed binary frames with explicit little-endian layout: no
//     reflection, no per-call encoder state.
//   - []field.Elem payloads travel as their raw backing bytes (field.Elem
//     is uint64): on little-endian hosts the vector's memory is written
//     directly to the socket and read directly into the result slice —
//     zero copies, zero transformations. Big-endian hosts byte-swap.
//   - The request body is split into a 17-byte per-call header (length,
//     type, request ID, worker ID) and a shared tail (key, batch, iter,
//     commit flag, input vector). A round encodes the tail ONCE and writes
//     header+tail to every worker with one writev each.
//   - Responses carry the request ID they answer. A caller that gives up
//     removes its pending entry immediately (the reap); when the late
//     frame finally arrives it matches nothing and is discarded. Nothing
//     is ever pinned by a slow server.
//
// Frame layout (all integers little-endian):
//
//	frame    := u32 length | u8 type | u64 requestID | body
//	             (length covers everything after the length field)
//	request  := u32 worker | u32 batch | i32 iter | u8 commit
//	          | u32 keyLen | key | u64 elems | input[elems]
//	response := u64 elems | output[elems] | u32 commitLen | commit   (typeOK)
//	response := u32 msgLen | msg                                     (typeErr)
package rpccluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"

	"repro/internal/field"
)

// Frame types.
const (
	typeRequest byte = 1
	typeOK      byte = 2
	typeErr     byte = 3
)

// maxFrameBytes bounds a frame's declared length so a corrupt or hostile
// peer cannot make the reader allocate unbounded memory. 1 GiB comfortably
// covers the largest coded round this repository ships (a 4096-vector batch
// of GISETTE-width inputs is still an order of magnitude smaller).
const maxFrameBytes = 1 << 30

// fixed per-frame sizes.
const (
	frameHeadLen   = 4 + 1 + 8        // length + type + requestID
	requestHeadLen = frameHeadLen + 4 // + worker ID, the non-shared request prefix
)

// hostLittleEndian reports whether the running machine's native byte order
// matches the wire's. When it does, element vectors cross the unsafe.Slice
// boundary instead of a conversion loop.
var hostLittleEndian = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// elemsWire returns the wire bytes of v. On little-endian hosts this is the
// vector's own backing array (zero-copy: the caller must finish writing
// before mutating v); otherwise a byte-swapped copy.
func elemsWire(v []field.Elem) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
	}
	out := make([]byte, len(v)*8)
	for i, e := range v {
		binary.LittleEndian.PutUint64(out[i*8:], e)
	}
	return out
}

// readElems reads count elements from r directly into a fresh vector: on
// little-endian hosts the socket bytes land in the []field.Elem backing
// array with no intermediate buffer. The vector grows chunk by chunk as
// bytes actually arrive, so a frame header lying about a huge payload runs
// the stream dry after one chunk instead of forcing a giant allocation.
func readElems(r io.Reader, count int) ([]field.Elem, error) {
	if count == 0 {
		return nil, nil
	}
	const chunk = 1 << 16 // elements per growth step (512 KiB)
	v := make([]field.Elem, 0, min(count, chunk))
	for len(v) < count {
		n := min(count-len(v), chunk)
		start := len(v)
		v = append(v, make([]field.Elem, n)...)
		buf := unsafe.Slice((*byte)(unsafe.Pointer(&v[start])), n*8)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if !hostLittleEndian {
			for i := start; i < len(v); i++ {
				v[i] = binary.LittleEndian.Uint64(buf[(i-start)*8:])
			}
		}
	}
	return v, nil
}

// readBytes is readElems's plain-bytes sibling for the variable-length
// string fields (key, commit, error message): chunked growth, never
// allocating far ahead of what the stream has delivered.
func readBytes(r io.Reader, n int) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	const chunk = 1 << 19 // 512 KiB
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		c := min(n-len(buf), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// requestFrame is one decoded worker call.
type requestFrame struct {
	ID     uint64
	Worker int
	Key    string
	Batch  int
	Iter   int
	Commit bool
	Input  []field.Elem
}

// responseFrame is one decoded worker answer. A non-empty Err is a
// server-side application error (the endpoint is alive and answered): the
// executor surfaces it as Result.Err, never as an erasure.
type responseFrame struct {
	ID     uint64
	Err    string
	Output []field.Elem
	Commit []byte
}

// encodeRequestTail encodes the worker-independent part of a request frame
// — everything after the worker ID. A broadcast encodes this once and
// shares the buffer across every worker's writev.
func encodeRequestTail(key string, batch, iter int, commit bool, input []field.Elem) []byte {
	tail := make([]byte, 0, 4+4+1+4+len(key)+8+len(input)*8)
	tail = binary.LittleEndian.AppendUint32(tail, uint32(batch))
	tail = binary.LittleEndian.AppendUint32(tail, uint32(int32(iter)))
	if commit {
		tail = append(tail, 1)
	} else {
		tail = append(tail, 0)
	}
	tail = binary.LittleEndian.AppendUint32(tail, uint32(len(key)))
	tail = append(tail, key...)
	tail = binary.LittleEndian.AppendUint64(tail, uint64(len(input)))
	tail = append(tail, elemsWire(input)...)
	return tail
}

// requestHead fills the per-call request prefix: frame length, type,
// request ID, worker ID. tailLen is the shared tail's byte length.
func requestHead(head *[requestHeadLen]byte, id uint64, worker, tailLen int) {
	binary.LittleEndian.PutUint32(head[0:], uint32(1+8+4+tailLen))
	head[4] = typeRequest
	binary.LittleEndian.PutUint64(head[5:], id)
	binary.LittleEndian.PutUint32(head[13:], uint32(worker))
}

// encodeRequest returns the full wire bytes of one request frame. The
// executor's hot path uses requestHead + encodeRequestTail with writev
// instead; this form serves the server loopback tests and the fuzz target.
func encodeRequest(rf *requestFrame) []byte {
	tail := encodeRequestTail(rf.Key, rf.Batch, rf.Iter, rf.Commit, rf.Input)
	var head [requestHeadLen]byte
	requestHead(&head, rf.ID, rf.Worker, len(tail))
	return append(head[:], tail...)
}

// encodeResponseParts returns the three writev segments of a response
// frame: a fixed head, the output vector's wire bytes (zero-copy on
// little-endian hosts), and the commit tail. Concatenated they form the
// full frame.
func encodeResponseParts(rf *responseFrame) (head, elems, tail []byte) {
	if rf.Err != "" {
		head = make([]byte, 0, frameHeadLen+4+len(rf.Err))
		head = binary.LittleEndian.AppendUint32(head, uint32(1+8+4+len(rf.Err)))
		head = append(head, typeErr)
		head = binary.LittleEndian.AppendUint64(head, rf.ID)
		head = binary.LittleEndian.AppendUint32(head, uint32(len(rf.Err)))
		head = append(head, rf.Err...)
		return head, nil, nil
	}
	elems = elemsWire(rf.Output)
	head = make([]byte, 0, frameHeadLen+8)
	head = binary.LittleEndian.AppendUint32(head, uint32(1+8+8+len(elems)+4+len(rf.Commit)))
	head = append(head, typeOK)
	head = binary.LittleEndian.AppendUint64(head, rf.ID)
	head = binary.LittleEndian.AppendUint64(head, uint64(len(rf.Output)))
	tail = make([]byte, 0, 4+len(rf.Commit))
	tail = binary.LittleEndian.AppendUint32(tail, uint32(len(rf.Commit)))
	tail = append(tail, rf.Commit...)
	return head, elems, tail
}

// encodeResponse returns the full wire bytes of one response frame.
func encodeResponse(rf *responseFrame) []byte {
	head, elems, tail := encodeResponseParts(rf)
	out := make([]byte, 0, len(head)+len(elems)+len(tail))
	out = append(out, head...)
	out = append(out, elems...)
	return append(out, tail...)
}

// frameError is a protocol violation: the connection that produced it is
// beyond trusting and must be closed.
type frameError struct{ msg string }

func (e *frameError) Error() string { return "rpccluster: bad frame: " + e.msg }

func badFrame(format string, args ...any) error {
	return &frameError{msg: fmt.Sprintf(format, args...)}
}

// readFrameHead reads the length prefix, type and request ID, returning the
// body length still on the wire (frame length minus type and ID).
func readFrameHead(br *bufio.Reader) (ftype byte, id uint64, bodyLen int, err error) {
	var head [frameHeadLen]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return 0, 0, 0, err
	}
	length := binary.LittleEndian.Uint32(head[0:])
	if length < 1+8 || length > maxFrameBytes {
		return 0, 0, 0, badFrame("frame length %d", length)
	}
	return head[4], binary.LittleEndian.Uint64(head[5:]), int(length) - 1 - 8, nil
}

// readRequest reads one request frame. Any protocol violation returns a
// *frameError; the caller must close the connection on it (the stream can
// no longer be framed).
func readRequest(br *bufio.Reader) (*requestFrame, error) {
	ftype, id, left, err := readFrameHead(br)
	if err != nil {
		return nil, err
	}
	if ftype != typeRequest {
		return nil, badFrame("type %d where a request was expected", ftype)
	}
	const fixed = 4 + 4 + 4 + 1 + 4 // worker, batch, iter, commit, keyLen
	if left < fixed {
		return nil, badFrame("request body %d bytes, need at least %d", left, fixed)
	}
	var buf [fixed]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return nil, err
	}
	if buf[12] > 1 {
		// Canonical booleans only: anything else would re-encode
		// differently than it arrived.
		return nil, badFrame("commit flag %d is not 0 or 1", buf[12])
	}
	rf := &requestFrame{
		ID:     id,
		Worker: int(int32(binary.LittleEndian.Uint32(buf[0:]))),
		Batch:  int(int32(binary.LittleEndian.Uint32(buf[4:]))),
		Iter:   int(int32(binary.LittleEndian.Uint32(buf[8:]))),
		Commit: buf[12] == 1,
	}
	keyLen := int(binary.LittleEndian.Uint32(buf[13:]))
	left -= fixed
	if keyLen > left-8 {
		return nil, badFrame("key length %d exceeds remaining body %d", keyLen, left)
	}
	key, err := readBytes(br, keyLen)
	if err != nil {
		return nil, err
	}
	rf.Key = string(key)
	left -= keyLen
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, err
	}
	left -= 8
	elems := binary.LittleEndian.Uint64(cnt[:])
	if elems > math.MaxInt/8 || int(elems)*8 != left {
		return nil, badFrame("input count %d does not match remaining body %d", elems, left)
	}
	if rf.Input, err = readElems(br, int(elems)); err != nil {
		return nil, err
	}
	return rf, nil
}

// readResponse reads one response frame. Protocol violations return a
// *frameError (close the connection); server-side application errors come
// back as a frame with Err set, not as a read error.
func readResponse(br *bufio.Reader) (*responseFrame, error) {
	ftype, id, left, err := readFrameHead(br)
	if err != nil {
		return nil, err
	}
	rf := &responseFrame{ID: id}
	switch ftype {
	case typeErr:
		if left < 4 {
			return nil, badFrame("error body %d bytes", left)
		}
		var n [4]byte
		if _, err := io.ReadFull(br, n[:]); err != nil {
			return nil, err
		}
		msgLen := int(binary.LittleEndian.Uint32(n[:]))
		if msgLen != left-4 {
			return nil, badFrame("error length %d does not match body %d", msgLen, left)
		}
		msg, err := readBytes(br, msgLen)
		if err != nil {
			return nil, err
		}
		rf.Err = string(msg)
		if rf.Err == "" {
			return nil, badFrame("error frame with empty message")
		}
		return rf, nil
	case typeOK:
		if left < 8+4 {
			return nil, badFrame("response body %d bytes", left)
		}
		var cnt [8]byte
		if _, err := io.ReadFull(br, cnt[:]); err != nil {
			return nil, err
		}
		left -= 8
		elems := binary.LittleEndian.Uint64(cnt[:])
		if elems > math.MaxInt/8 || int(elems)*8 > left-4 {
			return nil, badFrame("output count %d exceeds remaining body %d", elems, left)
		}
		if rf.Output, err = readElems(br, int(elems)); err != nil {
			return nil, err
		}
		left -= int(elems) * 8
		var n [4]byte
		if _, err := io.ReadFull(br, n[:]); err != nil {
			return nil, err
		}
		commitLen := int(binary.LittleEndian.Uint32(n[:]))
		if commitLen != left-4 {
			return nil, badFrame("commit length %d does not match remaining body %d", commitLen, left)
		}
		if commitLen > 0 {
			if rf.Commit, err = readBytes(br, commitLen); err != nil {
				return nil, err
			}
		}
		return rf, nil
	default:
		return nil, badFrame("type %d where a response was expected", ftype)
	}
}
