package rpccluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/field"
)

// frameDialTimeout bounds (re)connection attempts: a dead endpoint costs
// one refused/timed-out dial, an erasure, not a wedged round.
const frameDialTimeout = 5 * time.Second

// errConnClosed rejects calls after Close.
var errConnClosed = errors.New("rpccluster: connection closed")

// errConnFailed marks a call whose connection died before its response
// arrived — a transport failure the caller reads as an erasure.
var errConnFailed = errors.New("rpccluster: connection failed")

// WorkerError is a server-side application error relayed over the framed
// transport — the framed analogue of rpc.ServerError. The endpoint is alive
// and answered, so the executor surfaces it as Result.Err rather than
// hiding the worker behind an erasure.
type WorkerError string

// Error implements error.
func (e WorkerError) Error() string { return string(e) }

// frameConn is one persistent framed connection to a worker endpoint. Every
// in-flight call owns an entry in pending keyed by its request ID; a caller
// that gives up (timeout, cancellation) reaps its entry immediately, so the
// late response frame matches nothing on arrival and is discarded — nothing
// a slow server does can pin client memory. A severed connection fails all
// its pending calls at once and is redialled lazily by the next call.
type frameConn struct {
	addr string

	mu      sync.Mutex
	conn    net.Conn
	pending map[uint64]chan *responseFrame
	closed  bool

	// wmu serialises frame writes; writes happen outside mu so a reap never
	// waits behind a large payload hitting the socket.
	wmu sync.Mutex
}

func newFrameConn(addr string) *frameConn {
	return &frameConn{addr: addr, pending: make(map[uint64]chan *responseFrame)}
}

// connect eagerly establishes the connection (DialFrames' fail-fast path).
func (c *frameConn) connect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ensureLocked()
}

// ensureLocked dials and starts the read loop if no connection is live.
// Callers hold c.mu.
func (c *frameConn) ensureLocked() error {
	if c.closed {
		return errConnClosed
	}
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, frameDialTimeout)
	if err != nil {
		return err
	}
	c.conn = conn
	go c.readLoop(conn)
	return nil
}

// attach registers a pending call and returns the connection to write it
// to, redialling first if the previous connection died.
func (c *frameConn) attach(id uint64, ch chan *responseFrame) (net.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ensureLocked(); err != nil {
		return nil, err
	}
	c.pending[id] = ch
	return c.conn, nil
}

// reap abandons a pending call: the entry is removed NOW, so the response —
// if it ever arrives — is discarded at the read loop instead of pinning the
// entry until the executor closes (the net/rpc failure mode this transport
// exists to fix).
func (c *frameConn) reap(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// fail severs conn (if it is still the live one) and fails every call
// pending on it by closing their channels.
func (c *frameConn) fail(conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	if c.conn != conn {
		c.mu.Unlock()
		return
	}
	c.conn = nil
	failed := c.pending
	c.pending = make(map[uint64]chan *responseFrame)
	c.mu.Unlock()
	for _, ch := range failed {
		close(ch)
	}
}

// readLoop delivers response frames to their pending calls until the
// connection dies or a frame is malformed.
func (c *frameConn) readLoop(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	for {
		resp, err := readResponse(br)
		if err != nil {
			c.fail(conn)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks the loop
		}
		// A frame matching nothing answers a reaped call: discarded.
	}
}

// pendingCount reports the live pending-call entries (soak tests assert it
// returns to zero after rounds full of abandoned calls).
func (c *frameConn) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// close tears the connection down and fails anything in flight.
func (c *frameConn) close() {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.conn = nil
	failed := c.pending
	c.pending = make(map[uint64]chan *responseFrame)
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, ch := range failed {
		close(ch)
	}
}

// call issues one framed request under the effective deadline (configured
// cap ∧ context deadline) and aborts on context cancellation. Give-ups reap
// the pending entry immediately.
func (c *frameConn) call(ctx context.Context, cap time.Duration, id uint64, worker int, tail []byte) (*responseFrame, error) {
	timeout, has := effectiveTimeout(cap, ctx)
	if has && timeout <= 0 {
		// The caller's deadline had already passed before the call could go
		// out: attribute it to the context, not to a slow worker.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.DeadlineExceeded
	}
	ch := make(chan *responseFrame, 1)
	conn, err := c.attach(id, ch)
	if err != nil {
		return nil, err
	}
	var head [requestHeadLen]byte
	requestHead(&head, id, worker, len(tail))
	bufs := net.Buffers{head[:], tail}
	c.wmu.Lock()
	_, werr := bufs.WriteTo(conn)
	c.wmu.Unlock()
	if werr != nil {
		c.fail(conn) // clears our pending entry with everyone else's
		return nil, werr
	}
	if !has {
		select {
		case resp, ok := <-ch:
			if !ok {
				return nil, errConnFailed
			}
			return resp, nil
		case <-ctx.Done():
			c.reap(id)
			return nil, ctx.Err()
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, errConnFailed
		}
		return resp, nil
	case <-timer.C:
		c.reap(id)
		return nil, errCallTimeout
	case <-ctx.Done():
		c.reap(id)
		return nil, ctx.Err()
	}
}

// FrameExecutor implements cluster.Executor over the framed transport:
// persistent per-worker connections, explicit request IDs with immediate
// reaping of abandoned calls, zero-copy element payloads, and a broadcast
// path that encodes the round's input once for all workers.
type FrameExecutor struct {
	conns  []*frameConn
	ids    []int
	idx    map[int]int
	nextID atomic.Uint64
	// Timeout is the per-call deadline cap, with exactly RPCExecutor's
	// semantics: the effective deadline is Timeout ∧ the context's deadline,
	// 0 means DefaultCallTimeout, negative leaves only the context
	// governing. A call that exceeds its deadline or fails at the transport
	// layer yields no Result (an erasure); a server-side application error
	// surfaces as Result.Err.
	Timeout time.Duration
	// CommitOutputs makes every call request an output commitment from the
	// worker (the committed-verification plane).
	CommitOutputs bool
}

// DialFrames connects to framed worker endpoints. addrs[i] must host the
// worker whose ID is ids[i] (or 0..len-1 when ids is nil). All endpoints
// are dialled eagerly so a bad address fails deployment, not a round; a
// connection that later dies is redialled lazily, costing the round it
// failed in one erasure.
func DialFrames(addrs []string, ids []int) (*FrameExecutor, error) {
	if ids == nil {
		ids = make([]int, len(addrs))
		for i := range ids {
			ids[i] = i
		}
	}
	if len(ids) != len(addrs) {
		return nil, fmt.Errorf("rpccluster: %d ids for %d addrs", len(ids), len(addrs))
	}
	e := &FrameExecutor{ids: ids, idx: make(map[int]int, len(ids))}
	for i, id := range ids {
		e.idx[id] = i
	}
	for _, a := range addrs {
		c := newFrameConn(a)
		if err := c.connect(); err != nil {
			e.Close()
			return nil, fmt.Errorf("rpccluster: dial %s: %w", a, err)
		}
		e.conns = append(e.conns, c)
	}
	return e, nil
}

// Close tears down all connections.
func (e *FrameExecutor) Close() {
	for _, c := range e.conns {
		c.close()
	}
}

// pendingCalls sums the live pending-call entries across all connections.
// The wedged-server soak asserts it returns to zero once every abandoned
// call has been reaped.
func (e *FrameExecutor) pendingCalls() int {
	n := 0
	for _, c := range e.conns {
		n += c.pendingCount()
	}
	return n
}

// RunRound implements cluster.Executor with the same result semantics as
// the net/rpc executor — workers whose calls time out or fail at the
// transport layer are omitted (erasures), server-side errors surface as
// Result.Err, results are ordered by real completion time — but encodes the
// round's broadcast input ONCE and writes it to every worker, instead of
// re-serialising the full coded payload per call.
func (e *FrameExecutor) RunRound(ctx context.Context, key string, input []field.Elem, batch, iter int, active []int) []cluster.Result {
	tail := encodeRequestTail(key, batch, iter, e.CommitOutputs, input)
	start := time.Now()
	var mu sync.Mutex
	results := make([]cluster.Result, 0, len(active))
	var wg sync.WaitGroup
	for _, id := range active {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			res := cluster.Result{Worker: id}
			ci, ok := e.idx[id]
			if !ok {
				res.Err = fmt.Errorf("rpccluster: no connection for worker %d", id)
			} else {
				t0 := time.Now()
				resp, err := e.conns[ci].call(ctx, e.Timeout, e.nextID.Add(1), id, tail)
				if err != nil {
					// Timeout, cancellation or transport failure: the
					// endpoint is gone as far as this round is concerned.
					// Report the worker missing rather than poisoning the
					// round with an error the master cannot act on.
					return
				}
				res.ComputeSec = time.Since(t0).Seconds()
				res.Output = resp.Output
				res.Commit = resp.Commit
				if resp.Err != "" {
					res.Err = WorkerError(resp.Err)
				}
			}
			res.ArriveAt = time.Since(start).Seconds()
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	sort.Slice(results, func(i, j int) bool { return results[i].ArriveAt < results[j].ArriveAt })
	return results
}
