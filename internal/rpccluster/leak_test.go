package rpccluster

import (
	"context"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
)

// wedgeServer accepts connections and reads (discarding) forever without
// ever replying — the pathological endpoint that used to leak every
// abandoned call into net/rpc's pending map for the executor's lifetime.
func wedgeServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(io.Discard, conn)
			}()
		}
	}()
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

func heapInuse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// waitGoroutines polls until the goroutine count drops to at most want, or
// fails after two seconds. Abandoned calls spin up per-call goroutines and
// connection readers; all of them must wind down once the calls are reaped
// or their connections recycled.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines still alive, want at most %d", n, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

const (
	soakRounds    = 32
	soakElems     = 128 << 10 // 1 MiB per round's input
	soakLeakFloor = 16 << 20  // half of what leaking every round would pin
)

// TestRPCExecutorAbandonedCallsDoNotAccumulate is the regression for the
// net/rpc data-plane leak: fire rounds at a wedged server with a short call
// deadline. Before connection recycling, every abandoned call's args (the
// 1 MiB input) and reply stayed pinned in the rpc.Client's pending map —
// ~32 MiB across this soak — and a reader goroutine per call hung around.
// With recycling, each abandoned call closes its connection, releasing the
// pending entries, and both heap and goroutine counts return to baseline.
func TestRPCExecutorAbandonedCallsDoNotAccumulate(t *testing.T) {
	addr := wedgeServer(t)
	exec, err := Dial([]string{addr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	exec.Timeout = 10 * time.Millisecond

	rng := rand.New(rand.NewSource(300))
	baseHeap := heapInuse()
	baseGo := runtime.NumGoroutine()
	for i := 0; i < soakRounds; i++ {
		in := f.RandVec(rng, soakElems)
		if res := exec.RunRound(context.Background(), "fwd", in, 1, i, []int{0}); len(res) != 0 {
			t.Fatalf("round %d: wedged server produced %d results", i, len(res))
		}
	}
	if got := exec.recycleCount(); got < soakRounds {
		t.Fatalf("only %d recycles across %d abandoned rounds: abandoned calls are accumulating", got, soakRounds)
	}
	waitGoroutines(t, baseGo+2)
	if grew := int64(heapInuse()) - int64(baseHeap); grew > soakLeakFloor {
		t.Fatalf("heap grew %d bytes across the soak: abandoned calls are pinned", grew)
	}
}

// TestFrameExecutorReapsAbandonedCalls is the same soak over the framed
// transport, where the fix is structural: a caller that gives up deletes its
// pending entry immediately, so the count is verifiably zero after every
// round — no connection churn required.
func TestFrameExecutorReapsAbandonedCalls(t *testing.T) {
	addr := wedgeServer(t)
	exec, err := DialFrames([]string{addr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	exec.Timeout = 10 * time.Millisecond

	rng := rand.New(rand.NewSource(301))
	baseHeap := heapInuse()
	baseGo := runtime.NumGoroutine()
	for i := 0; i < soakRounds; i++ {
		in := f.RandVec(rng, soakElems)
		if res := exec.RunRound(context.Background(), "fwd", in, 1, i, []int{0}); len(res) != 0 {
			t.Fatalf("round %d: wedged server produced %d results", i, len(res))
		}
		if n := exec.pendingCalls(); n != 0 {
			t.Fatalf("round %d: %d calls still pending after the round ended", i, n)
		}
	}
	waitGoroutines(t, baseGo+2)
	if grew := int64(heapInuse()) - int64(baseHeap); grew > soakLeakFloor {
		t.Fatalf("heap grew %d bytes across the soak: abandoned calls are pinned", grew)
	}
}

// adjustableStall is a stall whose delay can be changed mid-test under a
// lock: the worker is fully configured BEFORE its server starts (server
// handler goroutines read worker state with no synchronisation of their
// own), and the mutex gives the later delay change a happens-before edge.
type adjustableStall struct {
	mu    sync.Mutex
	delay time.Duration
}

func (s *adjustableStall) Apply(_ *field.Field, _ int, honest []field.Elem) []field.Elem {
	s.mu.Lock()
	d := s.delay
	s.mu.Unlock()
	time.Sleep(d)
	return honest
}

func (s *adjustableStall) Name() string { return "adjustable-stall" }

func (s *adjustableStall) set(d time.Duration) {
	s.mu.Lock()
	s.delay = d
	s.mu.Unlock()
}

// TestFrameExecutorDiscardsLateReplies wedges a server that eventually DOES
// answer, after the caller has long given up: the late frames must be
// discarded by request-ID mismatch (the entries were reaped), never
// delivered to a later call, and never accumulate.
func TestFrameExecutorDiscardsLateReplies(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	w := cluster.NewWorker(0)
	shard := fieldmat.Rand(f, rng, 2, 4)
	w.Shards["fwd"] = shard
	slow := &adjustableStall{delay: 300 * time.Millisecond}
	w.Behavior = slow
	srv, err := ServeFrames("127.0.0.1:0", f, w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	fe, err := DialFrames([]string{srv.Addr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fe.Close)
	fe.Timeout = 20 * time.Millisecond

	in := f.RandVec(rng, 4)
	for i := 0; i < 3; i++ {
		if res := fe.RunRound(context.Background(), "fwd", in, 1, i, []int{0}); len(res) != 0 {
			t.Fatalf("round %d beat a 300ms stall with a 20ms deadline", i)
		}
		if n := fe.pendingCalls(); n != 0 {
			t.Fatalf("round %d left %d pending entries", i, n)
		}
	}
	// Let the stalled replies land; the read loop must drop them silently
	// and the connection must remain usable for a fresh, healthy round.
	time.Sleep(400 * time.Millisecond)
	slow.set(0)
	fe.Timeout = 5 * time.Second
	res := fe.RunRound(context.Background(), "fwd", in, 1, 9, []int{0})
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("connection unusable after late replies: results %+v", res)
	}
	if !field.EqualVec(res[0].Output, fieldmat.MatVec(f, shard, in)) {
		t.Fatal("a late reply was delivered to the wrong call")
	}
}
