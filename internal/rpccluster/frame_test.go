package rpccluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"

	"repro/internal/field"
)

func TestFrameRequestRoundTrip(t *testing.T) {
	cases := []*requestFrame{
		{ID: 1, Worker: 0, Key: "fwd", Batch: 1, Iter: 0, Input: []field.Elem{1, 2, 3}},
		{ID: 1<<64 - 1, Worker: 4095, Key: "", Batch: 0, Iter: -1, Input: nil},
		{ID: 42, Worker: 7, Key: "bwd", Batch: 32, Iter: 999, Commit: true,
			Input: []field.Elem{0, 1<<64 - 1, 0x0123456789abcdef}},
	}
	for _, rf := range cases {
		wire := encodeRequest(rf)
		got, err := readRequest(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("%+v: %v", rf, err)
		}
		if !reflect.DeepEqual(got, rf) {
			t.Fatalf("request round trip:\n got %+v\nwant %+v", got, rf)
		}
		// Decoding must consume exactly the frame: a second frame appended
		// to the stream still reads cleanly.
		double := bufio.NewReader(bytes.NewReader(append(append([]byte{}, wire...), wire...)))
		for i := 0; i < 2; i++ {
			if _, err := readRequest(double); err != nil {
				t.Fatalf("frame %d of a back-to-back stream: %v", i, err)
			}
		}
	}
}

func TestFrameResponseRoundTrip(t *testing.T) {
	cases := []*responseFrame{
		{ID: 9, Output: []field.Elem{5, 6, 7}},
		{ID: 0, Output: nil},
		{ID: 3, Output: []field.Elem{8}, Commit: []byte{0xde, 0xad, 0xbe, 0xef}},
		{ID: 77, Err: "rpccluster: no shard for key \"x\""},
	}
	for _, rf := range cases {
		wire := encodeResponse(rf)
		got, err := readResponse(bufio.NewReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("%+v: %v", rf, err)
		}
		if !reflect.DeepEqual(got, rf) {
			t.Fatalf("response round trip:\n got %+v\nwant %+v", got, rf)
		}
	}
}

func TestFrameWritevPartsMatchWholeEncoding(t *testing.T) {
	// The server's writev path (head, elems, tail) must concatenate to the
	// canonical encoding byte for byte.
	rf := &responseFrame{ID: 11, Output: []field.Elem{1, 2, 3}, Commit: []byte{4, 5}}
	head, elems, tail := encodeResponseParts(rf)
	joined := append(append(append([]byte{}, head...), elems...), tail...)
	if !bytes.Equal(joined, encodeResponse(rf)) {
		t.Fatal("writev parts do not concatenate to the canonical frame")
	}
	// Same for the client's request path.
	req := &requestFrame{ID: 12, Worker: 3, Key: "fwd", Batch: 2, Iter: 5, Input: []field.Elem{9}}
	reqTail := encodeRequestTail(req.Key, req.Batch, req.Iter, req.Commit, req.Input)
	var reqHead [requestHeadLen]byte
	requestHead(&reqHead, req.ID, req.Worker, len(reqTail))
	if !bytes.Equal(append(reqHead[:], reqTail...), encodeRequest(req)) {
		t.Fatal("request head+tail do not concatenate to the canonical frame")
	}
}

func TestFrameRejectsMalformedInput(t *testing.T) {
	valid := encodeRequest(&requestFrame{ID: 1, Key: "k", Batch: 1, Input: []field.Elem{1}})
	cases := map[string][]byte{
		"empty":                  {},
		"truncated head":         valid[:7],
		"truncated body":         valid[:len(valid)-3],
		"zero length":            {0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0},
		"huge length":            {0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 0, 0, 0, 0, 0},
		"response where request": encodeResponse(&responseFrame{ID: 1, Output: []field.Elem{1}}),
		"unknown type": func() []byte {
			b := append([]byte{}, valid...)
			b[4] = 9
			return b
		}(),
		"key length past body": func() []byte {
			b := append([]byte{}, valid...)
			binary.LittleEndian.PutUint32(b[frameHeadLen+13:], 1<<30)
			return b
		}(),
		"element count mismatch": func() []byte {
			b := append([]byte{}, valid...)
			binary.LittleEndian.PutUint64(b[len(b)-16:], 7)
			return b
		}(),
		"non-canonical commit flag": func() []byte {
			// Any byte but 0/1 would re-encode differently than it arrived
			// (fuzzer find).
			b := append([]byte{}, valid...)
			b[frameHeadLen+12] = 0x30
			return b
		}(),
	}
	for name, wire := range cases {
		if _, err := readRequest(bufio.NewReader(bytes.NewReader(wire))); err == nil {
			t.Errorf("%s: readRequest accepted a malformed frame", name)
		}
	}

	validResp := encodeResponse(&responseFrame{ID: 1, Output: []field.Elem{1}, Commit: []byte{2}})
	respCases := map[string][]byte{
		"empty":              {},
		"truncated":          validResp[:len(validResp)-2],
		"request where resp": valid,
		"empty error message": func() []byte {
			// msgLen 0 with a consistent frame length: rejected, because an
			// empty Err would be indistinguishable from success.
			b := []byte{0, 0, 0, 0, typeErr, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
			binary.LittleEndian.PutUint32(b, uint32(1+8+4))
			return b
		}(),
		"commit length mismatch": func() []byte {
			b := append([]byte{}, validResp...)
			binary.LittleEndian.PutUint32(b[len(b)-5:], 99)
			return b
		}(),
	}
	for name, wire := range respCases {
		if _, err := readResponse(bufio.NewReader(bytes.NewReader(wire))); err == nil {
			t.Errorf("%s: readResponse accepted a malformed frame", name)
		}
	}
}

// FuzzFrameRoundTrip throws arbitrary bytes at both frame readers: they must
// never panic, and any stream they DO accept must re-encode byte-identically
// (the codec has exactly one wire form per frame).
func FuzzFrameRoundTrip(fz *testing.F) {
	fz.Add(encodeRequest(&requestFrame{ID: 3, Worker: 1, Key: "fwd", Batch: 2, Iter: 1,
		Commit: true, Input: []field.Elem{1, 2, 3}}))
	fz.Add(encodeResponse(&responseFrame{ID: 4, Output: []field.Elem{7, 8}, Commit: []byte{9}}))
	fz.Add(encodeResponse(&responseFrame{ID: 5, Err: "boom"}))
	fz.Add([]byte{0, 0, 0, 0})
	fz.Fuzz(func(t *testing.T, wire []byte) {
		if req, err := readRequest(bufio.NewReader(bytes.NewReader(wire))); err == nil {
			re := encodeRequest(req)
			if !bytes.Equal(re, wire[:len(re)]) {
				t.Fatalf("accepted request does not re-encode to its own wire form")
			}
			back, err := readRequest(bufio.NewReader(bytes.NewReader(re)))
			if err != nil || !reflect.DeepEqual(back, req) {
				t.Fatalf("re-encoded request does not round-trip: %v", err)
			}
		}
		if resp, err := readResponse(bufio.NewReader(bytes.NewReader(wire))); err == nil {
			re := encodeResponse(resp)
			if !bytes.Equal(re, wire[:len(re)]) {
				t.Fatalf("accepted response does not re-encode to its own wire form")
			}
			back, err := readResponse(bufio.NewReader(bytes.NewReader(re)))
			if err != nil || !reflect.DeepEqual(back, resp) {
				t.Fatalf("re-encoded response does not round-trip: %v", err)
			}
		}
	})
}

// TestFrameReaderStopsAtFrameBoundary guards the zero-copy read path: the
// element reader must take exactly count*8 bytes and leave the rest.
func TestFrameReaderStopsAtFrameBoundary(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(elemsWire([]field.Elem{10, 20}))
	buf.WriteString("leftover")
	r := bufio.NewReader(&buf)
	v, err := readElems(r, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 10 || v[1] != 20 {
		t.Fatalf("readElems decoded %v", v)
	}
	rest, _ := io.ReadAll(r)
	if string(rest) != "leftover" {
		t.Fatalf("readElems consumed past its elements; %q left", rest)
	}
}
