package rpccluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
)

var f = field.Default()

// stall is a worker behaviour that blocks for Delay before responding —
// the RPC-level stand-in for a wedged or dying machine.
type stall struct {
	Delay time.Duration
}

func (s stall) Apply(_ *field.Field, _ int, honest []field.Elem) []field.Elem {
	time.Sleep(s.Delay)
	return honest
}

func (stall) Name() string { return "stall" }

// tunableExec is the transport-independent executor surface the conformance
// suite drives: both RPCExecutor and FrameExecutor satisfy it.
type tunableExec interface {
	cluster.Executor
	Close()
	setTimeout(time.Duration)
	setCommit(bool)
}

func (e *RPCExecutor) setTimeout(d time.Duration)   { e.Timeout = d }
func (e *RPCExecutor) setCommit(on bool)            { e.CommitOutputs = on }
func (e *FrameExecutor) setTimeout(d time.Duration) { e.Timeout = d }
func (e *FrameExecutor) setCommit(on bool)          { e.CommitOutputs = on }

// transport abstracts serve+dial so every regression test runs over BOTH
// the legacy net/rpc path and the framed streaming transport: the two must
// keep bit-exact cluster.Executor semantics (deadline ∧ ctx, transport
// failure ⇒ erasure, server error ⇒ Result.Err) or the conformance suites
// lose their meaning.
type transport struct {
	name  string
	serve func(f *field.Field, w *cluster.Worker) (addr string, closer func() error, err error)
	dial  func(addrs []string, ids []int) (tunableExec, error)
}

var transports = []transport{
	{
		name: "netrpc",
		serve: func(f *field.Field, w *cluster.Worker) (string, func() error, error) {
			s, err := Serve("127.0.0.1:0", f, w)
			if err != nil {
				return "", nil, err
			}
			return s.Addr, s.Close, nil
		},
		dial: func(addrs []string, ids []int) (tunableExec, error) { return Dial(addrs, ids) },
	},
	{
		name: "frames",
		serve: func(f *field.Field, w *cluster.Worker) (string, func() error, error) {
			s, err := ServeFrames("127.0.0.1:0", f, w)
			if err != nil {
				return "", nil, err
			}
			return s.Addr, s.Close, nil
		},
		dial: func(addrs []string, ids []int) (tunableExec, error) { return DialFrames(addrs, ids) },
	},
}

func forEachTransport(t *testing.T, fn func(t *testing.T, tr transport)) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) { fn(t, tr) })
	}
}

// startServers spins n worker endpoints on loopback over the given
// transport, returning the workers, their addresses, and per-server
// closers (for kill-mid-round tests). Servers not closed by the test are
// closed at cleanup.
//
// Worker state (shards, behaviours) must be configured in prepare, which
// runs BEFORE any server goroutine exists: server handlers read worker
// fields with no locking of their own, so the only sound ordering is
// configure-then-serve — exactly the deployment-time contract. A test
// that must flip behaviour mid-run needs a self-synchronising Behavior
// (see adjustableStall in leak_test.go).
func startServers(t *testing.T, tr transport, n int, prepare func(workers []*cluster.Worker)) ([]*cluster.Worker, []string, []func() error) {
	t.Helper()
	workers := make([]*cluster.Worker, n)
	for i := 0; i < n; i++ {
		workers[i] = cluster.NewWorker(i)
	}
	if prepare != nil {
		prepare(workers)
	}
	addrs := make([]string, n)
	closers := make([]func() error, n)
	for i := 0; i < n; i++ {
		addr, closer, err := tr.serve(f, workers[i])
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		closers[i] = closer
		t.Cleanup(func() { closer() })
	}
	return workers, addrs, closers
}

// startCluster is startServers plus a connected executor.
func startCluster(t *testing.T, tr transport, n int, prepare func(workers []*cluster.Worker)) ([]*cluster.Worker, tunableExec) {
	t.Helper()
	workers, addrs, _ := startServers(t, tr, n, prepare)
	exec, err := tr.dial(addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	return workers, exec
}

func TestRPCRoundTrip(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(200))
		shards := make([]*fieldmat.Matrix, 4)
		_, exec := startCluster(t, tr, 4, func(workers []*cluster.Worker) {
			for i, w := range workers {
				shards[i] = fieldmat.Rand(f, rng, 6, 8)
				w.Shards["fwd"] = shards[i]
			}
		})
		in := f.RandVec(rng, 8)
		results := exec.RunRound(context.Background(), "fwd", in, 1, 0, []int{0, 1, 2, 3})
		if len(results) != 4 {
			t.Fatalf("got %d results", len(results))
		}
		seen := map[int]bool{}
		for _, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			want := fieldmat.MatVec(f, shards[r.Worker], in)
			if !field.EqualVec(r.Output, want) {
				t.Fatalf("worker %d returned wrong product over the wire", r.Worker)
			}
			seen[r.Worker] = true
		}
		if len(seen) != 4 {
			t.Fatal("duplicate/missing workers")
		}
	})
}

func TestRPCWorkerErrorPropagates(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport) {
		_, exec := startCluster(t, tr, 1, nil) // worker 0 has no shards
		results := exec.RunRound(context.Background(), "missing", []field.Elem{1}, 1, 0, []int{0})
		if len(results) != 1 || results[0].Err == nil {
			t.Fatal("expected a wire-propagated worker error")
		}
	})
}

func TestRPCByzantineAppliedServerSide(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(201))
		_, exec := startCluster(t, tr, 2, func(workers []*cluster.Worker) {
			for _, w := range workers {
				w.Shards["fwd"] = fieldmat.Rand(f, rng, 3, 3)
			}
			workers[1].Behavior = attack.Constant{V: 7}
		})
		results := exec.RunRound(context.Background(), "fwd", f.RandVec(rng, 3), 1, 0, []int{0, 1})
		for _, r := range results {
			if r.Worker == 1 {
				for _, v := range r.Output {
					if v != 7 {
						t.Fatal("server-side Byzantine behaviour missing")
					}
				}
			}
		}
	})
}

func TestRPCDialUnknownAddress(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport) {
		if _, err := tr.dial([]string{"127.0.0.1:1"}, nil); err == nil {
			t.Fatal("dialing a dead port should fail")
		}
		if _, err := tr.dial([]string{"127.0.0.1:1", "127.0.0.1:2"}, []int{0}); err == nil {
			t.Fatal("id/addr mismatch accepted")
		}
	})
}

func TestRPCMissingWorkerConnection(t *testing.T) {
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(202))
		_, exec := startCluster(t, tr, 1, func(workers []*cluster.Worker) {
			workers[0].Shards["fwd"] = fieldmat.Rand(f, rng, 2, 2)
		})
		results := exec.RunRound(context.Background(), "fwd", f.RandVec(rng, 2), 1, 0, []int{0, 5})
		var missingErr bool
		for _, r := range results {
			if r.Worker == 5 && r.Err != nil {
				missingErr = true
			}
		}
		if !missingErr {
			t.Fatal("missing connection should surface as an error result")
		}
	})
}

func TestRPCCommitShipping(t *testing.T) {
	// The committed-verification plane rides the wire: with CommitOutputs
	// set, every result carries the worker's Merkle commitment to exactly
	// the output it sent — over either transport.
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(211))
		_, exec := startCluster(t, tr, 2, func(workers []*cluster.Worker) {
			for _, w := range workers {
				w.Shards["fwd"] = fieldmat.Rand(f, rng, 3, 4)
			}
			workers[1].Behavior = attack.Constant{V: 9} // commits to its lie
		})
		exec.setCommit(true)
		results := exec.RunRound(context.Background(), "fwd", f.RandVec(rng, 4), 1, 0, []int{0, 1})
		if len(results) != 2 {
			t.Fatalf("got %d results", len(results))
		}
		for _, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			want := commit.OutputRoot(r.Output)
			if string(r.Commit) != string(want) {
				t.Fatalf("worker %d commitment does not cover its shipped output", r.Worker)
			}
		}
		// And without the flag the wire stays commitment-free.
		exec.setCommit(false)
		for _, r := range exec.RunRound(context.Background(), "fwd", f.RandVec(rng, 4), 1, 0, []int{0, 1}) {
			if r.Commit != nil {
				t.Fatal("commitment shipped without being requested")
			}
		}
	})
}

func TestRPCCallDeadlineReportsWorkerMissing(t *testing.T) {
	// Regression: RunRound used to have no call deadline, so a wedged
	// worker blocked the round forever. A call that outlives Timeout must
	// be reported as an erasure — no result for that worker — while the
	// healthy workers' results come back.
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(204))
		_, exec := startCluster(t, tr, 3, func(workers []*cluster.Worker) {
			for _, w := range workers {
				w.Shards["fwd"] = fieldmat.Rand(f, rng, 2, 2)
			}
			workers[1].Behavior = stall{Delay: 5 * time.Second}
		})
		exec.setTimeout(100 * time.Millisecond)

		start := time.Now()
		results := exec.RunRound(context.Background(), "fwd", f.RandVec(rng, 2), 1, 0, []int{0, 1, 2})
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("round took %v: the deadline did not bound the wedged call", elapsed)
		}
		if len(results) != 2 {
			t.Fatalf("got %d results, want 2 (the wedged worker is an erasure)", len(results))
		}
		for _, r := range results {
			if r.Worker == 1 {
				t.Fatal("the wedged worker must be missing, not present")
			}
			if r.Err != nil {
				t.Fatalf("healthy worker %d errored: %v", r.Worker, r.Err)
			}
		}
	})
}

func TestRPCServerKilledMidRoundBecomesErasure(t *testing.T) {
	// Regression: kill a worker's server while its call is in flight. The
	// severed connection must surface as an erasure — the master decodes
	// from the survivors — not as a round-poisoning error or a hang.
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(205))
		_, addrs, closers := startServers(t, tr, 3, func(workers []*cluster.Worker) {
			for _, w := range workers {
				w.Shards["fwd"] = fieldmat.Rand(f, rng, 2, 2)
			}
			// Worker 2 stalls long enough for the kill to land mid-call.
			workers[2].Behavior = stall{Delay: 2 * time.Second}
		})
		exec, err := tr.dial(addrs, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(exec.Close)
		exec.setTimeout(5 * time.Second)

		go func() {
			time.Sleep(100 * time.Millisecond)
			closers[2]()
		}()

		start := time.Now()
		results := exec.RunRound(context.Background(), "fwd", f.RandVec(rng, 2), 1, 0, []int{0, 1, 2})
		if elapsed := time.Since(start); elapsed > 4*time.Second {
			t.Fatalf("round took %v after the mid-round kill", elapsed)
		}
		if len(results) != 2 {
			t.Fatalf("got %d results, want 2 (the killed worker is an erasure)", len(results))
		}
		for _, r := range results {
			if r.Worker == 2 {
				t.Fatal("the killed worker must be missing from the results")
			}
			if r.Err != nil {
				t.Fatalf("surviving worker %d errored: %v", r.Worker, r.Err)
			}
		}
	})
}

func TestAVCCDecodesAroundAWorkerDiesIn(t *testing.T) {
	// End to end: a worker process dies mid-training; the AVCC master sees
	// an erasure, decodes from the survivors, and the output stays exact.
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(206))
		x := fieldmat.Rand(f, rng, 36, 10)
		master, err := scheme.New("avcc", f, scheme.NewConfig(
			scheme.WithCoding(12, 9),
			scheme.WithBudgets(1, 2, 0),
			scheme.WithSeed(43),
		), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, addrs, closers := startServers(t, tr, 12, func(workers []*cluster.Worker) {
			for i, w := range master.Workers() {
				workers[i].Shards["fwd"] = w.Shards["fwd"]
			}
		})
		exec, err := tr.dial(addrs, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(exec.Close)
		exec.setTimeout(5 * time.Second)
		master.SetExecutor(exec)

		w := f.RandVec(rng, 10)
		want := fieldmat.MatVec(f, x, w)
		if out, err := master.RunRound(context.Background(), "fwd", w, 0); err != nil {
			t.Fatal(err)
		} else if !field.EqualVec(out.Decoded, want) {
			t.Fatal("pre-crash round decoded wrong")
		}
		closers[7]() // the machine dies between rounds
		out, err := master.RunRound(context.Background(), "fwd", w, 1)
		if err != nil {
			t.Fatalf("round with a dead worker must still decode: %v", err)
		}
		if !field.EqualVec(out.Decoded, want) {
			t.Fatal("post-crash round decoded wrong")
		}
		for _, id := range out.Used {
			if id == 7 {
				t.Fatal("dead worker contributed to the decode")
			}
		}
		if out.StragglersObserved < 1 {
			t.Error("the dead worker should be observed as a straggler (an erasure)")
		}
	})
}

func TestRPCCancelMidRoundReleasesTheRound(t *testing.T) {
	// Regression: the executor used to bound calls only by its private
	// Timeout (default 30s) — a caller cancelling its context mid-round
	// still waited out the full deadline. The per-call deadline must derive
	// from the caller's context: cancellation releases the round
	// immediately and the master reports the cancellation.
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(207))
		_, exec := startCluster(t, tr, 3, func(workers []*cluster.Worker) {
			for _, w := range workers {
				w.Shards["fwd"] = fieldmat.Rand(f, rng, 2, 2)
				// All three workers wedge; only the context can end this
				// round.
				w.Behavior = stall{Delay: 20 * time.Second}
			}
		})
		// Deliberately long private timeout: proof the context governs.
		exec.setTimeout(30 * time.Second)

		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(50 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		results := exec.RunRound(ctx, "fwd", f.RandVec(rng, 2), 1, 0, []int{0, 1, 2})
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("cancelled round took %v: context cancellation did not release it", elapsed)
		}
		if len(results) != 0 {
			t.Fatalf("got %d results from a round cancelled before any reply", len(results))
		}
	})
}

func TestRPCContextDeadlineTightensPrivateTimeout(t *testing.T) {
	// A caller deadline tighter than the configured Timeout must win.
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(208))
		_, exec := startCluster(t, tr, 2, func(workers []*cluster.Worker) {
			for _, w := range workers {
				w.Shards["fwd"] = fieldmat.Rand(f, rng, 2, 2)
			}
			workers[1].Behavior = stall{Delay: 20 * time.Second}
		})
		exec.setTimeout(30 * time.Second)

		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		start := time.Now()
		results := exec.RunRound(ctx, "fwd", f.RandVec(rng, 2), 1, 0, []int{0, 1})
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("round took %v: the context deadline did not tighten the 30s timeout", elapsed)
		}
		// The healthy worker answered inside the deadline; the wedged one is
		// an erasure.
		if len(results) != 1 || results[0].Worker != 0 {
			t.Fatalf("want only worker 0's result, got %+v", results)
		}
	})
}

func TestExpiredContextAttributedToCaller(t *testing.T) {
	// Regression: a context whose deadline had ALREADY passed used to
	// return errCallTimeout, so callers could not distinguish their own
	// expiry from a slow worker. Both transports must attribute it to the
	// context — and must not put a doomed call on the wire at all (the
	// legacy path used to send it and pin the pending entry forever).
	t.Run("netrpc", func(t *testing.T) {
		_, exec := startCluster(t, transports[0], 1, nil)
		e := exec.(*RPCExecutor)
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		err := e.call(ctx, 0, &ComputeArgs{Key: "fwd", Input: []field.Elem{1}}, &ComputeReply{})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("call error = %v, want the context's deadline error", err)
		}
	})
	t.Run("frames", func(t *testing.T) {
		_, exec := startCluster(t, transports[1], 1, nil)
		e := exec.(*FrameExecutor)
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		_, err := e.conns[0].call(ctx, 0, 1, 0, encodeRequestTail("fwd", 1, 0, false, []field.Elem{1}))
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("call error = %v, want the context's deadline error", err)
		}
		if n := e.pendingCalls(); n != 0 {
			t.Fatalf("%d pending entries after an expired-deadline call that never went out", n)
		}
	})
}

func TestAVCCCancelMidRoundSurfacesContextError(t *testing.T) {
	// End to end through the master: cancelling the caller's context while
	// every worker is wedged must surface ctx's error from RunRound, fast.
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(209))
		x := fieldmat.Rand(f, rng, 36, 10)
		master, err := scheme.New("avcc", f, scheme.NewConfig(
			scheme.WithCoding(12, 9),
			scheme.WithBudgets(1, 2, 0),
			scheme.WithSeed(44),
		), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, exec := startCluster(t, tr, 12, func(workers []*cluster.Worker) {
			for i, w := range master.Workers() {
				workers[i].Shards["fwd"] = w.Shards["fwd"]
				workers[i].Behavior = stall{Delay: 20 * time.Second}
			}
		})
		master.SetExecutor(exec)
		exec.setTimeout(30 * time.Second)

		// Explicit cancellation (not a deadline): once cancel() ran,
		// ctx.Err() is set before any call can unblock on ctx.Done, so the
		// master must deterministically report the cancellation.
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(100 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err = master.RunRound(ctx, "fwd", f.RandVec(rng, 10), 0)
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("cancelled master round took %v", elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("master round error = %v, want the context's cancellation error", err)
		}
	})
}

func TestRPCBatchedRoundMatchesSequential(t *testing.T) {
	// The batch field must round-trip: a batched call returns the packed
	// per-vector products, byte-identical to per-vector calls.
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(210))
		shards := make([]*fieldmat.Matrix, 2)
		_, exec := startCluster(t, tr, 2, func(workers []*cluster.Worker) {
			for i, w := range workers {
				shards[i] = fieldmat.Rand(f, rng, 4, 6)
				w.Shards["fwd"] = shards[i]
			}
		})
		const batch = 3
		inputs := make([][]field.Elem, batch)
		var packed []field.Elem
		for c := range inputs {
			inputs[c] = f.RandVec(rng, 6)
			packed = append(packed, inputs[c]...)
		}
		results := exec.RunRound(context.Background(), "fwd", packed, batch, 0, []int{0, 1})
		if len(results) != 2 {
			t.Fatalf("got %d results", len(results))
		}
		for _, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			var want []field.Elem
			for _, in := range inputs {
				want = append(want, fieldmat.MatVec(f, shards[r.Worker], in)...)
			}
			if !field.EqualVec(r.Output, want) {
				t.Fatalf("worker %d batched output differs from sequential products", r.Worker)
			}
		}
	})
}

func TestAVCCMasterOverRealTCP(t *testing.T) {
	// Full integration: AVCC master encodes, remote workers compute over
	// TCP (one of them Byzantine), master verifies and decodes correctly.
	forEachTransport(t, func(t *testing.T, tr transport) {
		rng := rand.New(rand.NewSource(203))
		x := fieldmat.Rand(f, rng, 36, 10)
		data := map[string]*fieldmat.Matrix{"fwd": x}
		master, err := scheme.New("avcc", f, scheme.NewConfig(
			scheme.WithCoding(12, 9),
			scheme.WithBudgets(1, 2, 0),
			scheme.WithSeed(42),
		), data, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Mirror the master's shard assignment onto the remote workers: the
		// master encoded into its own in-process worker objects; copy shards.
		_, exec := startCluster(t, tr, 12, func(workers []*cluster.Worker) {
			for i, w := range master.Workers() {
				workers[i].Shards["fwd"] = w.Shards["fwd"]
			}
			workers[5].Behavior = attack.ReverseValue{C: 1}
		})
		master.SetExecutor(exec)

		w := f.RandVec(rng, 10)
		want := fieldmat.MatVec(f, x, w)
		for iter := 0; iter < 3; iter++ {
			out, err := master.RunRound(context.Background(), "fwd", w, iter)
			if err != nil {
				t.Fatal(err)
			}
			if !field.EqualVec(out.Decoded, want) {
				t.Fatalf("iter %d: decode over real TCP wrong", iter)
			}
			// The Byzantine may arrive after the threshold (real arrival
			// order is nondeterministic), in which case it is simply unused;
			// if it WAS processed it must have been rejected. Either way it
			// must never contribute to the decode.
			for _, id := range out.Used {
				if id == 5 {
					t.Fatalf("iter %d: Byzantine worker used in decode", iter)
				}
			}
		}
	})
}

// TestFrameServerHostsManyWorkers: one framed server can colocate several
// workers (tests and the demo binary do), dispatching by the request's
// worker ID; asking for a worker it does not host is an application error,
// not an erasure.
func TestFrameServerHostsManyWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	w0, w1 := cluster.NewWorker(0), cluster.NewWorker(1)
	shards := []*fieldmat.Matrix{fieldmat.Rand(f, rng, 3, 4), fieldmat.Rand(f, rng, 3, 4)}
	w0.Shards["fwd"], w1.Shards["fwd"] = shards[0], shards[1]
	srv, err := ServeFrames("127.0.0.1:0", f, w0, w1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	exec, err := DialFrames([]string{srv.Addr, srv.Addr, srv.Addr}, []int{0, 1, 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	in := f.RandVec(rng, 4)
	results := exec.RunRound(context.Background(), "fwd", in, 1, 0, []int{0, 1, 9})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		switch r.Worker {
		case 9:
			var we WorkerError
			if !errors.As(r.Err, &we) {
				t.Fatalf("unhosted worker: err = %v, want a WorkerError", r.Err)
			}
		default:
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if !field.EqualVec(r.Output, fieldmat.MatVec(f, shards[r.Worker], in)) {
				t.Fatalf("worker %d computed the wrong product", r.Worker)
			}
		}
	}
}
