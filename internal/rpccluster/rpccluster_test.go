package rpccluster

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
)

var f = field.Default()

// startCluster spins n worker RPC servers on loopback and returns a
// connected executor plus the shard-holding workers (so the test can attach
// shards after master-side encoding).
func startCluster(t *testing.T, n int) ([]*cluster.Worker, *RPCExecutor) {
	t.Helper()
	workers := make([]*cluster.Worker, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		workers[i] = cluster.NewWorker(i)
		srv, err := Serve("127.0.0.1:0", f, workers[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr
	}
	exec, err := Dial(addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	return workers, exec
}

func TestRPCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	workers, exec := startCluster(t, 4)
	shards := make([]*fieldmat.Matrix, 4)
	for i, w := range workers {
		shards[i] = fieldmat.Rand(f, rng, 6, 8)
		w.Shards["fwd"] = shards[i]
	}
	in := f.RandVec(rng, 8)
	results := exec.RunRound("fwd", in, 0, []int{0, 1, 2, 3})
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	seen := map[int]bool{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		want := fieldmat.MatVec(f, shards[r.Worker], in)
		if !field.EqualVec(r.Output, want) {
			t.Fatalf("worker %d returned wrong product over RPC", r.Worker)
		}
		seen[r.Worker] = true
	}
	if len(seen) != 4 {
		t.Fatal("duplicate/missing workers")
	}
}

func TestRPCWorkerErrorPropagates(t *testing.T) {
	_, exec := startCluster(t, 1) // worker 0 has no shards
	results := exec.RunRound("missing", []field.Elem{1}, 0, []int{0})
	if len(results) != 1 || results[0].Err == nil {
		t.Fatal("expected an RPC-propagated worker error")
	}
}

func TestRPCByzantineAppliedServerSide(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	workers, exec := startCluster(t, 2)
	for _, w := range workers {
		w.Shards["fwd"] = fieldmat.Rand(f, rng, 3, 3)
	}
	workers[1].Behavior = attack.Constant{V: 7}
	results := exec.RunRound("fwd", f.RandVec(rng, 3), 0, []int{0, 1})
	for _, r := range results {
		if r.Worker == 1 {
			for _, v := range r.Output {
				if v != 7 {
					t.Fatal("server-side Byzantine behaviour missing")
				}
			}
		}
	}
}

func TestRPCDialUnknownAddress(t *testing.T) {
	if _, err := Dial([]string{"127.0.0.1:1"}, nil); err == nil {
		t.Fatal("dialing a dead port should fail")
	}
	if _, err := Dial([]string{"127.0.0.1:1", "127.0.0.1:2"}, []int{0}); err == nil {
		t.Fatal("id/addr mismatch accepted")
	}
}

func TestRPCMissingWorkerConnection(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	workers, exec := startCluster(t, 1)
	workers[0].Shards["fwd"] = fieldmat.Rand(f, rng, 2, 2)
	results := exec.RunRound("fwd", f.RandVec(rng, 2), 0, []int{0, 5})
	var missingErr bool
	for _, r := range results {
		if r.Worker == 5 && r.Err != nil {
			missingErr = true
		}
	}
	if !missingErr {
		t.Fatal("missing connection should surface as an error result")
	}
}

func TestAVCCMasterOverRealTCP(t *testing.T) {
	// Full integration: AVCC master encodes, remote workers compute over
	// TCP (one of them Byzantine), master verifies and decodes correctly.
	rng := rand.New(rand.NewSource(203))
	workers, exec := startCluster(t, 12)
	workers[5].Behavior = attack.ReverseValue{C: 1}

	x := fieldmat.Rand(f, rng, 36, 10)
	data := map[string]*fieldmat.Matrix{"fwd": x}
	master, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(1, 2, 0),
		scheme.WithSeed(42),
	), data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the master's shard assignment onto the remote workers: the
	// master encoded into its own in-process worker objects; copy shards.
	for i, w := range master.Workers() {
		workers[i].Shards["fwd"] = w.Shards["fwd"]
	}
	master.SetExecutor(exec)

	w := f.RandVec(rng, 10)
	want := fieldmat.MatVec(f, x, w)
	for iter := 0; iter < 3; iter++ {
		out, err := master.RunRound("fwd", w, iter)
		if err != nil {
			t.Fatal(err)
		}
		if !field.EqualVec(out.Decoded, want) {
			t.Fatalf("iter %d: decode over real TCP wrong", iter)
		}
		// The Byzantine may arrive after the threshold (real arrival order
		// is nondeterministic), in which case it is simply unused; if it
		// WAS processed it must have been rejected. Either way it must
		// never contribute to the decode.
		for _, id := range out.Used {
			if id == 5 {
				t.Fatalf("iter %d: Byzantine worker used in decode", iter)
			}
		}
	}
}
