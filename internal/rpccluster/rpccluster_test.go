package rpccluster

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
)

var f = field.Default()

// stall is a worker behaviour that blocks for Delay before responding —
// the RPC-level stand-in for a wedged or dying machine.
type stall struct {
	Delay time.Duration
}

func (s stall) Apply(_ *field.Field, _ int, honest []field.Elem) []field.Elem {
	time.Sleep(s.Delay)
	return honest
}

func (stall) Name() string { return "stall" }

// startCluster spins n worker RPC servers on loopback and returns a
// connected executor plus the shard-holding workers (so the test can attach
// shards after master-side encoding).
func startCluster(t *testing.T, n int) ([]*cluster.Worker, *RPCExecutor) {
	t.Helper()
	workers := make([]*cluster.Worker, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		workers[i] = cluster.NewWorker(i)
		srv, err := Serve("127.0.0.1:0", f, workers[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr
	}
	exec, err := Dial(addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	return workers, exec
}

func TestRPCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	workers, exec := startCluster(t, 4)
	shards := make([]*fieldmat.Matrix, 4)
	for i, w := range workers {
		shards[i] = fieldmat.Rand(f, rng, 6, 8)
		w.Shards["fwd"] = shards[i]
	}
	in := f.RandVec(rng, 8)
	results := exec.RunRound(context.Background(), "fwd", in, 1, 0, []int{0, 1, 2, 3})
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	seen := map[int]bool{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		want := fieldmat.MatVec(f, shards[r.Worker], in)
		if !field.EqualVec(r.Output, want) {
			t.Fatalf("worker %d returned wrong product over RPC", r.Worker)
		}
		seen[r.Worker] = true
	}
	if len(seen) != 4 {
		t.Fatal("duplicate/missing workers")
	}
}

func TestRPCWorkerErrorPropagates(t *testing.T) {
	_, exec := startCluster(t, 1) // worker 0 has no shards
	results := exec.RunRound(context.Background(), "missing", []field.Elem{1}, 1, 0, []int{0})
	if len(results) != 1 || results[0].Err == nil {
		t.Fatal("expected an RPC-propagated worker error")
	}
}

func TestRPCByzantineAppliedServerSide(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	workers, exec := startCluster(t, 2)
	for _, w := range workers {
		w.Shards["fwd"] = fieldmat.Rand(f, rng, 3, 3)
	}
	workers[1].Behavior = attack.Constant{V: 7}
	results := exec.RunRound(context.Background(), "fwd", f.RandVec(rng, 3), 1, 0, []int{0, 1})
	for _, r := range results {
		if r.Worker == 1 {
			for _, v := range r.Output {
				if v != 7 {
					t.Fatal("server-side Byzantine behaviour missing")
				}
			}
		}
	}
}

func TestRPCDialUnknownAddress(t *testing.T) {
	if _, err := Dial([]string{"127.0.0.1:1"}, nil); err == nil {
		t.Fatal("dialing a dead port should fail")
	}
	if _, err := Dial([]string{"127.0.0.1:1", "127.0.0.1:2"}, []int{0}); err == nil {
		t.Fatal("id/addr mismatch accepted")
	}
}

func TestRPCMissingWorkerConnection(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	workers, exec := startCluster(t, 1)
	workers[0].Shards["fwd"] = fieldmat.Rand(f, rng, 2, 2)
	results := exec.RunRound(context.Background(), "fwd", f.RandVec(rng, 2), 1, 0, []int{0, 5})
	var missingErr bool
	for _, r := range results {
		if r.Worker == 5 && r.Err != nil {
			missingErr = true
		}
	}
	if !missingErr {
		t.Fatal("missing connection should surface as an error result")
	}
}

func TestRPCCallDeadlineReportsWorkerMissing(t *testing.T) {
	// Regression: RunRound used to have no call deadline, so a wedged
	// worker blocked the round forever. A call that outlives Timeout must
	// be reported as an erasure — no result for that worker — while the
	// healthy workers' results come back.
	rng := rand.New(rand.NewSource(204))
	workers, exec := startCluster(t, 3)
	for _, w := range workers {
		w.Shards["fwd"] = fieldmat.Rand(f, rng, 2, 2)
	}
	workers[1].Behavior = stall{Delay: 5 * time.Second}
	exec.Timeout = 100 * time.Millisecond

	start := time.Now()
	results := exec.RunRound(context.Background(), "fwd", f.RandVec(rng, 2), 1, 0, []int{0, 1, 2})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("round took %v: the deadline did not bound the wedged call", elapsed)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (the wedged worker is an erasure)", len(results))
	}
	for _, r := range results {
		if r.Worker == 1 {
			t.Fatal("the wedged worker must be missing, not present")
		}
		if r.Err != nil {
			t.Fatalf("healthy worker %d errored: %v", r.Worker, r.Err)
		}
	}
}

func TestRPCServerKilledMidRoundBecomesErasure(t *testing.T) {
	// Regression: kill a worker's server while its call is in flight. The
	// severed connection must surface as an erasure — the master decodes
	// from the survivors — not as a round-poisoning error or a hang.
	rng := rand.New(rand.NewSource(205))
	workers := make([]*cluster.Worker, 3)
	addrs := make([]string, 3)
	servers := make([]*Server, 3)
	for i := range workers {
		workers[i] = cluster.NewWorker(i)
		workers[i].Shards["fwd"] = fieldmat.Rand(f, rng, 2, 2)
		srv, err := Serve("127.0.0.1:0", f, workers[i])
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		addrs[i] = srv.Addr
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	exec, err := Dial(addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	exec.Timeout = 5 * time.Second

	// Worker 2 stalls long enough for the kill to land mid-call.
	workers[2].Behavior = stall{Delay: 2 * time.Second}
	go func() {
		time.Sleep(100 * time.Millisecond)
		servers[2].Close()
	}()

	start := time.Now()
	results := exec.RunRound(context.Background(), "fwd", f.RandVec(rng, 2), 1, 0, []int{0, 1, 2})
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("round took %v after the mid-round kill", elapsed)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (the killed worker is an erasure)", len(results))
	}
	for _, r := range results {
		if r.Worker == 2 {
			t.Fatal("the killed worker must be missing from the results")
		}
		if r.Err != nil {
			t.Fatalf("surviving worker %d errored: %v", r.Worker, r.Err)
		}
	}
}

func TestAVCCDecodesAroundAWorkerDiesIn(t *testing.T) {
	// End to end: a worker process dies mid-training; the AVCC master sees
	// an erasure, decodes from the survivors, and the output stays exact.
	rng := rand.New(rand.NewSource(206))
	workers := make([]*cluster.Worker, 12)
	addrs := make([]string, 12)
	servers := make([]*Server, 12)
	for i := range workers {
		workers[i] = cluster.NewWorker(i)
		srv, err := Serve("127.0.0.1:0", f, workers[i])
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = srv
		addrs[i] = srv.Addr
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	exec, err := Dial(addrs, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exec.Close)
	exec.Timeout = 5 * time.Second

	x := fieldmat.Rand(f, rng, 36, 10)
	master, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(1, 2, 0),
		scheme.WithSeed(43),
	), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range master.Workers() {
		workers[i].Shards["fwd"] = w.Shards["fwd"]
	}
	master.SetExecutor(exec)

	w := f.RandVec(rng, 10)
	want := fieldmat.MatVec(f, x, w)
	if out, err := master.RunRound(context.Background(), "fwd", w, 0); err != nil {
		t.Fatal(err)
	} else if !field.EqualVec(out.Decoded, want) {
		t.Fatal("pre-crash round decoded wrong")
	}
	servers[7].Close() // the machine dies between rounds
	out, err := master.RunRound(context.Background(), "fwd", w, 1)
	if err != nil {
		t.Fatalf("round with a dead worker must still decode: %v", err)
	}
	if !field.EqualVec(out.Decoded, want) {
		t.Fatal("post-crash round decoded wrong")
	}
	for _, id := range out.Used {
		if id == 7 {
			t.Fatal("dead worker contributed to the decode")
		}
	}
	if out.StragglersObserved < 1 {
		t.Error("the dead worker should be observed as a straggler (an erasure)")
	}
}

func TestRPCCancelMidRoundReleasesTheRound(t *testing.T) {
	// Regression: the executor used to bound calls only by its private
	// Timeout (default 30s) — a caller cancelling its context mid-round
	// still waited out the full deadline. The per-call deadline must derive
	// from the caller's context: cancellation releases the round
	// immediately and the master reports the cancellation.
	rng := rand.New(rand.NewSource(207))
	workers, exec := startCluster(t, 3)
	for _, w := range workers {
		w.Shards["fwd"] = fieldmat.Rand(f, rng, 2, 2)
	}
	// All three workers wedge; only the context can end this round.
	for _, w := range workers {
		w.Behavior = stall{Delay: 20 * time.Second}
	}
	// Deliberately long private timeout: proof the context governs.
	exec.Timeout = 30 * time.Second

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results := exec.RunRound(ctx, "fwd", f.RandVec(rng, 2), 1, 0, []int{0, 1, 2})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled round took %v: context cancellation did not release it", elapsed)
	}
	if len(results) != 0 {
		t.Fatalf("got %d results from a round cancelled before any reply", len(results))
	}
}

func TestRPCContextDeadlineTightensPrivateTimeout(t *testing.T) {
	// A caller deadline tighter than the configured Timeout must win.
	rng := rand.New(rand.NewSource(208))
	workers, exec := startCluster(t, 2)
	for _, w := range workers {
		w.Shards["fwd"] = fieldmat.Rand(f, rng, 2, 2)
	}
	workers[1].Behavior = stall{Delay: 20 * time.Second}
	exec.Timeout = 30 * time.Second

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	results := exec.RunRound(ctx, "fwd", f.RandVec(rng, 2), 1, 0, []int{0, 1})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("round took %v: the context deadline did not tighten the 30s timeout", elapsed)
	}
	// The healthy worker answered inside the deadline; the wedged one is an
	// erasure.
	if len(results) != 1 || results[0].Worker != 0 {
		t.Fatalf("want only worker 0's result, got %+v", results)
	}
}

func TestAVCCCancelMidRoundSurfacesContextError(t *testing.T) {
	// End to end through the master: cancelling the caller's context while
	// every worker is wedged must surface ctx's error from RunRound, fast.
	rng := rand.New(rand.NewSource(209))
	workers, exec := startCluster(t, 12)
	x := fieldmat.Rand(f, rng, 36, 10)
	master, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(1, 2, 0),
		scheme.WithSeed(44),
	), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range master.Workers() {
		workers[i].Shards["fwd"] = w.Shards["fwd"]
		workers[i].Behavior = stall{Delay: 20 * time.Second}
	}
	master.SetExecutor(exec)
	exec.Timeout = 30 * time.Second

	// Explicit cancellation (not a deadline): once cancel() ran, ctx.Err()
	// is set before any call can unblock on ctx.Done, so the master must
	// deterministically report the cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = master.RunRound(ctx, "fwd", f.RandVec(rng, 10), 0)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancelled master round took %v", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("master round error = %v, want the context's cancellation error", err)
	}
}

func TestRPCBatchedRoundMatchesSequential(t *testing.T) {
	// The Batch RPC field must round-trip: a batched call returns the
	// packed per-vector products, byte-identical to per-vector calls.
	rng := rand.New(rand.NewSource(210))
	workers, exec := startCluster(t, 2)
	shards := make([]*fieldmat.Matrix, 2)
	for i, w := range workers {
		shards[i] = fieldmat.Rand(f, rng, 4, 6)
		w.Shards["fwd"] = shards[i]
	}
	const batch = 3
	inputs := make([][]field.Elem, batch)
	var packed []field.Elem
	for c := range inputs {
		inputs[c] = f.RandVec(rng, 6)
		packed = append(packed, inputs[c]...)
	}
	results := exec.RunRound(context.Background(), "fwd", packed, batch, 0, []int{0, 1})
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		var want []field.Elem
		for _, in := range inputs {
			want = append(want, fieldmat.MatVec(f, shards[r.Worker], in)...)
		}
		if !field.EqualVec(r.Output, want) {
			t.Fatalf("worker %d batched RPC output differs from sequential products", r.Worker)
		}
	}
}

func TestAVCCMasterOverRealTCP(t *testing.T) {
	// Full integration: AVCC master encodes, remote workers compute over
	// TCP (one of them Byzantine), master verifies and decodes correctly.
	rng := rand.New(rand.NewSource(203))
	workers, exec := startCluster(t, 12)
	workers[5].Behavior = attack.ReverseValue{C: 1}

	x := fieldmat.Rand(f, rng, 36, 10)
	data := map[string]*fieldmat.Matrix{"fwd": x}
	master, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(1, 2, 0),
		scheme.WithSeed(42),
	), data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the master's shard assignment onto the remote workers: the
	// master encoded into its own in-process worker objects; copy shards.
	for i, w := range master.Workers() {
		workers[i].Shards["fwd"] = w.Shards["fwd"]
	}
	master.SetExecutor(exec)

	w := f.RandVec(rng, 10)
	want := fieldmat.MatVec(f, x, w)
	for iter := 0; iter < 3; iter++ {
		out, err := master.RunRound(context.Background(), "fwd", w, iter)
		if err != nil {
			t.Fatal(err)
		}
		if !field.EqualVec(out.Decoded, want) {
			t.Fatalf("iter %d: decode over real TCP wrong", iter)
		}
		// The Byzantine may arrive after the threshold (real arrival order
		// is nondeterministic), in which case it is simply unused; if it
		// WAS processed it must have been rejected. Either way it must
		// never contribute to the decode.
		for _, id := range out.Used {
			if id == 5 {
				t.Fatalf("iter %d: Byzantine worker used in decode", iter)
			}
		}
	}
}
