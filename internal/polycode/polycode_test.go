package polycode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

var f = field.Default()

func TestNewValidation(t *testing.T) {
	if _, err := New(f, 5, 2, 3); err == nil {
		t.Fatal("N below pq accepted")
	}
	if _, err := New(f, 6, 0, 3); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := New(f, 6, 2, 3); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	code, err := New(f, 8, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := fieldmat.Rand(f, rng, 6, 5) // p=2 → blocks 3×5
	b := fieldmat.Rand(f, rng, 5, 9) // q=3 → blocks 5×3
	shards, err := code.Encode(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 8 {
		t.Fatalf("%d shards", len(shards))
	}
	want := fieldmat.MatMul(f, a, b)
	// Any pq = 6 of the 8 workers decode; use a shuffled subset.
	workers := []int{7, 1, 4, 0, 6, 2}
	results := make([][]field.Elem, len(workers))
	for r, w := range workers {
		results[r] = fieldmat.MatMul(f, shards[w].A, shards[w].B).Data
	}
	got, err := code.Decode(workers, results, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("polynomial-code decode != A·B")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := 1+r.Intn(3), 1+r.Intn(3)
		n := p*q + r.Intn(3)
		code, err := New(f, n, p, q)
		if err != nil {
			return false
		}
		br, inner, bc := 1+r.Intn(3), 1+r.Intn(4), 1+r.Intn(3)
		a := fieldmat.Rand(f, r, p*br, inner)
		b := fieldmat.Rand(f, r, inner, q*bc)
		shards, err := code.Encode(a, b)
		if err != nil {
			return false
		}
		perm := r.Perm(n)[:p*q]
		results := make([][]field.Elem, len(perm))
		for i, w := range perm {
			results[i] = fieldmat.MatMul(f, shards[w].A, shards[w].B).Data
		}
		got, err := code.Decode(perm, results, br, bc)
		if err != nil {
			return false
		}
		return got.Equal(fieldmat.MatMul(f, a, b))
	}, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestEncodeValidation(t *testing.T) {
	code, _ := New(f, 6, 2, 3)
	if _, err := code.Encode(fieldmat.NewMatrix(4, 3), fieldmat.NewMatrix(4, 6)); err == nil {
		t.Fatal("inner mismatch accepted")
	}
	if _, err := code.Encode(fieldmat.NewMatrix(5, 3), fieldmat.NewMatrix(3, 6)); err == nil {
		t.Fatal("indivisible rows accepted")
	}
	if _, err := code.Encode(fieldmat.NewMatrix(4, 3), fieldmat.NewMatrix(3, 7)); err == nil {
		t.Fatal("indivisible cols accepted")
	}
}

func TestDecodeValidation(t *testing.T) {
	code, _ := New(f, 6, 2, 2)
	good := make([][]field.Elem, 4)
	for i := range good {
		good[i] = make([]field.Elem, 4)
	}
	if _, err := code.Decode([]int{0, 1, 2}, good[:3], 2, 2); err == nil {
		t.Fatal("below threshold accepted")
	}
	if _, err := code.Decode([]int{0, 1, 2, 2}, good, 2, 2); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := code.Decode([]int{0, 1, 2, 9}, good, 2, 2); err == nil {
		t.Fatal("out of range accepted")
	}
	bad := [][]field.Elem{good[0], good[1], good[2], make([]field.Elem, 3)}
	if _, err := code.Decode([]int{0, 1, 2, 3}, bad, 2, 2); err == nil {
		t.Fatal("ragged results accepted")
	}
}

func TestProductKey(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	code, _ := New(f, 6, 2, 2)
	a := fieldmat.Rand(f, rng, 4, 5)
	b := fieldmat.Rand(f, rng, 5, 4)
	shards, err := code.Encode(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards {
		key := NewProductKey(f, rng, sh)
		honest := fieldmat.MatMul(f, sh.A, sh.B).Data
		if !key.Check(honest) {
			t.Fatal("honest product rejected")
		}
		badVec := field.CopyVec(honest)
		badVec[rng.Intn(len(badVec))] = f.Add(badVec[0], 1)
		if field.EqualVec(badVec, honest) {
			continue
		}
		if key.Check(badVec) {
			t.Fatal("corrupted product accepted")
		}
		if key.Check(honest[:len(honest)-1]) {
			t.Fatal("short claim accepted")
		}
	}
}
