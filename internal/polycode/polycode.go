// Package polycode implements Polynomial Codes (Yu, Maddah-Ali, Avestimehr,
// NeurIPS 2017) — the coded-computing substrate the paper's Background
// (Section II-A) cites for straggler-tolerant *bilinear* computations — and
// an AVCC-style verified master for distributed matrix-matrix
// multiplication C = A·B, which the paper names as a computation AVCC is
// "particularly suitable" for.
//
// Encoding: split A into p row blocks A_0..A_{p−1} and B into q column
// blocks B_0..B_{q−1}. Worker i at evaluation point α_i receives
//
//	Ã_i = Σ_j A_j·α_i^j        (degree p−1 in α)
//	B̃_i = Σ_k B_k·α_i^{p·k}   (degree p(q−1) in α)
//
// and computes C̃_i = Ã_i·B̃_i = Σ_{j,k} A_j·B_k·α_i^{j+p·k}. The exponents
// j + p·k are distinct over j<p, k<q, so C̃ is the evaluation of a
// polynomial whose p·q matrix coefficients are exactly the products
// A_j·B_k; the blocks C_{j,k} = A_j·B_k of C are recovered by polynomial
// interpolation from ANY p·q worker results — the optimal recovery
// threshold for this bilinear problem.
//
// Verification (the AVCC twist): the master generated Ã_i and B̃_i itself,
// so Freivalds' product check applies per worker: draw secret r, accept
// C̃_i iff C̃_i·r == Ã_i·(B̃_i·r), at O(matrix surface) cost versus the
// worker's O(volume) — a Byzantine therefore costs 1 extra worker here too.
package polycode

import (
	"fmt"
	"math/rand"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

// Code is an immutable (N; p, q) polynomial code.
type Code struct {
	f      *field.Field
	n      int
	p, q   int
	alphas []field.Elem
	// vinv is the precomputed pq×pq inverse Vandermonde over the first
	// threshold alphas — decode against arbitrary worker subsets builds its
	// own system; this one serves the common fast path and tests.
}

// New constructs a polynomial code for p row blocks of A and q column
// blocks of B across n workers. Requires n ≥ p·q.
func New(f *field.Field, n, p, q int) (*Code, error) {
	if p < 1 || q < 1 {
		return nil, fmt.Errorf("polycode: invalid split (p,q) = (%d,%d)", p, q)
	}
	if n < p*q {
		return nil, fmt.Errorf("polycode: N = %d below recovery threshold pq = %d", n, p*q)
	}
	if uint64(n) >= f.Q() {
		return nil, fmt.Errorf("polycode: N = %d does not fit the field", n)
	}
	return &Code{f: f, n: n, p: p, q: q, alphas: f.DistinctPoints(n, 1)}, nil
}

// N returns the number of workers.
func (c *Code) N() int { return c.n }

// Threshold returns the recovery threshold p·q.
func (c *Code) Threshold() int { return c.p * c.q }

// Shard is one worker's coded input pair.
type Shard struct {
	A *fieldmat.Matrix // (rowsA/p) × inner
	B *fieldmat.Matrix // inner × (colsB/q)
}

// Encode splits a (rows×inner) and b (inner×cols) and produces the N coded
// pairs. rows must divide by p and cols by q (callers pad).
func (c *Code) Encode(a, b *fieldmat.Matrix) ([]Shard, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("polycode: inner dimensions %d and %d differ", a.Cols, b.Rows)
	}
	if a.Rows%c.p != 0 {
		return nil, fmt.Errorf("polycode: %d rows of A not divisible by p = %d", a.Rows, c.p)
	}
	if b.Cols%c.q != 0 {
		return nil, fmt.Errorf("polycode: %d cols of B not divisible by q = %d", b.Cols, c.q)
	}
	aBlocks := fieldmat.SplitRows(a, c.p)
	// Column blocks of B = row blocks of Bᵀ, transposed back.
	btBlocks := fieldmat.SplitRows(b.Transpose(), c.q)
	bBlocks := make([]*fieldmat.Matrix, c.q)
	for k, bt := range btBlocks {
		bBlocks[k] = bt.Transpose()
	}
	shards := make([]Shard, c.n)
	for i := 0; i < c.n; i++ {
		alpha := c.alphas[i]
		at := fieldmat.NewMatrix(aBlocks[0].Rows, a.Cols)
		pow := field.Elem(1)
		for j := 0; j < c.p; j++ {
			at.AXPY(c.f, pow, aBlocks[j])
			pow = c.f.Mul(pow, alpha)
		}
		bt := fieldmat.NewMatrix(b.Rows, bBlocks[0].Cols)
		alphaP := c.f.Exp(alpha, uint64(c.p))
		pow = 1
		for k := 0; k < c.q; k++ {
			bt.AXPY(c.f, pow, bBlocks[k])
			pow = c.f.Mul(pow, alphaP)
		}
		shards[i] = Shard{A: at, B: bt}
	}
	return shards, nil
}

// Decode recovers the p·q blocks C_{j,k} = A_j·B_k from at least
// threshold-many worker results. results[r] is worker workers[r]'s flattened
// C̃ = Ã·B̃ (row-major, shape (rowsA/p)×(colsB/q)). The returned matrix is
// the assembled rows×cols product C.
func (c *Code) Decode(workers []int, results [][]field.Elem, blockRows, blockCols int) (*fieldmat.Matrix, error) {
	th := c.Threshold()
	if len(workers) < th {
		return nil, fmt.Errorf("polycode: %d results below threshold %d", len(workers), th)
	}
	if len(workers) != len(results) {
		return nil, fmt.Errorf("polycode: workers/results length mismatch")
	}
	seen := map[int]bool{}
	for _, w := range workers {
		if w < 0 || w >= c.n {
			return nil, fmt.Errorf("polycode: worker %d out of range", w)
		}
		if seen[w] {
			return nil, fmt.Errorf("polycode: duplicate worker %d", w)
		}
		seen[w] = true
	}
	dim := blockRows * blockCols
	for _, r := range results {
		if len(r) != dim {
			return nil, fmt.Errorf("polycode: result length %d, want %d", len(r), dim)
		}
	}
	workers = workers[:th]
	results = results[:th]

	// Vandermonde system: results[r] = Σ_t coeff_t · α_{w_r}^t.
	v := fieldmat.NewMatrix(th, th)
	rhs := fieldmat.NewMatrix(th, dim)
	for r, w := range workers {
		pow := field.Elem(1)
		for t := 0; t < th; t++ {
			v.Set(r, t, pow)
			pow = c.f.Mul(pow, c.alphas[w])
		}
		copy(rhs.Row(r), results[r])
	}
	coeffs, err := fieldmat.SolveMatrix(c.f, v, rhs)
	if err != nil {
		return nil, fmt.Errorf("polycode: decode system singular: %w", err)
	}

	// Coefficient t = j + p·k is block C_{j,k}; assemble C.
	out := fieldmat.NewMatrix(c.p*blockRows, c.q*blockCols)
	for t := 0; t < th; t++ {
		j := t % c.p
		k := t / c.p
		flat := coeffs.Row(t)
		for br := 0; br < blockRows; br++ {
			dst := out.Row(j*blockRows + br)[k*blockCols : (k+1)*blockCols]
			copy(dst, flat[br*blockCols:(br+1)*blockCols])
		}
	}
	return out, nil
}

// ProductKey is the per-worker Freivalds key for verifying C̃ = Ã·B̃.
type ProductKey struct {
	f *field.Field
	r []field.Elem // secret, length = B̃ cols
	v []field.Elem // precomputed Ã·(B̃·r), length = Ã rows
}

// NewProductKey precomputes the reference product for one shard.
func NewProductKey(f *field.Field, rng *rand.Rand, sh Shard) *ProductKey {
	r := f.RandVec(rng, sh.B.Cols)
	br := fieldmat.MatVec(f, sh.B, r)
	v := fieldmat.MatVec(f, sh.A, br)
	return &ProductKey{f: f, r: r, v: v}
}

// Check reports whether the flattened claimed product is consistent.
func (k *ProductKey) Check(cFlat []field.Elem) bool {
	rows, cols := len(k.v), len(k.r)
	if len(cFlat) != rows*cols {
		return false
	}
	for i := 0; i < rows; i++ {
		if k.f.Dot(cFlat[i*cols:(i+1)*cols], k.r) != k.v[i] {
			return false
		}
	}
	return true
}
