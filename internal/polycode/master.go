package polycode

import (
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// MatMulMaster runs AVCC-style verified coded matrix multiplication: encode
// A and B with a polynomial code, verify each arriving C̃_i with a Freivalds
// product check, decode C = A·B from the first p·q verified results. The
// eq.-2 economics carry over unchanged: N ≥ p·q + S + M workers tolerate S
// stragglers and M Byzantines.
type MatMulMaster struct {
	f         *field.Field
	code      *Code
	opt       MatMulOptions
	shards    []Shard
	keys      []*ProductKey
	behaviors []attack.Behavior
	straggler attack.StragglerSchedule
	rng       *rand.Rand
	blockRows int
	blockCols int
	origRows  int
	origCols  int
}

// MatMulOptions configure a verified matmul deployment.
type MatMulOptions struct {
	// N workers; P×Q split; S/M budgets (informational — the master simply
	// waits for the threshold of verified results, trading S for M exactly
	// as the AVCC master does).
	N, P, Q, S, M int
	// Sim is the latency model.
	Sim simnet.Config
	// Seed drives keys and jitter.
	Seed int64
}

// Feasible reports N ≥ P·Q + S + M.
func (o MatMulOptions) Feasible() bool { return o.N >= o.P*o.Q+o.S+o.M }

// MatMulResult is one completed verified multiplication.
type MatMulResult struct {
	// C is the assembled product, trimmed to the original shape.
	C *fieldmat.Matrix
	// Breakdown, Used, Byzantine as elsewhere.
	Breakdown metrics.Breakdown
	Used      []int
	Byzantine []int
}

// NewMatMulMaster encodes a·b across N workers. Dimensions are zero-padded
// to divisibility internally and trimmed on decode.
func NewMatMulMaster(f *field.Field, opt MatMulOptions, a, b *fieldmat.Matrix,
	behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (*MatMulMaster, error) {
	if !opt.Feasible() {
		return nil, fmt.Errorf("polycode: options %+v violate N >= PQ+S+M = %d", opt, opt.P*opt.Q+opt.S+opt.M)
	}
	if behaviors != nil && len(behaviors) != opt.N {
		return nil, fmt.Errorf("polycode: %d behaviours for %d workers", len(behaviors), opt.N)
	}
	if !opt.Sim.Validate() {
		return nil, fmt.Errorf("polycode: invalid latency model")
	}
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("polycode: inner dimensions differ")
	}
	code, err := New(f, opt.N, opt.P, opt.Q)
	if err != nil {
		return nil, err
	}
	ap := fieldmat.PadRows(a, opt.P)
	bp := padCols(b, opt.Q)
	shards, err := code.Encode(ap, bp)
	if err != nil {
		return nil, err
	}
	if stragglers == nil {
		stragglers = attack.NoStragglers{}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	m := &MatMulMaster{
		f:         f,
		code:      code,
		opt:       opt,
		shards:    shards,
		keys:      make([]*ProductKey, opt.N),
		behaviors: behaviors,
		straggler: stragglers,
		rng:       rng,
		blockRows: ap.Rows / opt.P,
		blockCols: bp.Cols / opt.Q,
		origRows:  a.Rows,
		origCols:  b.Cols,
	}
	for i := range m.keys {
		m.keys[i] = NewProductKey(f, rng, shards[i])
	}
	return m, nil
}

// Run executes one verified multiplication round in virtual time.
func (m *MatMulMaster) Run(iter int) (*MatMulResult, error) {
	q := simnet.NewQueue()
	for i := 0; i < m.opt.N; i++ {
		sh := m.shards[i]
		honest := fieldmat.MatMul(m.f, sh.A, sh.B)
		outVec := honest.Data
		if m.behaviors != nil {
			outVec = m.behaviors[i].Apply(m.f, iter, honest.Data)
		}
		ops := float64(sh.A.Rows) * float64(sh.A.Cols) * float64(sh.B.Cols)
		compute := m.opt.Sim.ComputeTime(ops, m.straggler.IsStraggler(i, iter), m.rng)
		comm := m.opt.Sim.CommTime(len(sh.A.Data)+len(sh.B.Data)) + m.opt.Sim.CommTime(len(outVec))
		q.Push(comm+compute, i, payload{out: outVec, compute: compute, comm: comm})
	}

	threshold := m.code.Threshold()
	res := &MatMulResult{}
	var masterFree, maxCompute, maxComm float64
	var usedWorkers []int
	var usedOutputs [][]field.Elem
	for {
		arr, ok := q.Pop()
		if !ok || len(usedWorkers) == threshold {
			break
		}
		p := arr.Payload.(payload)
		start := arr.At
		if masterFree > start {
			start = masterFree
		}
		checkTime := m.opt.Sim.MasterTime(float64(m.blockRows)*float64(m.blockCols) +
			float64(m.blockRows) + float64(m.blockCols))
		masterFree = start + checkTime
		res.Breakdown.Verify += checkTime
		if m.keys[arr.Worker].Check(p.out) {
			usedWorkers = append(usedWorkers, arr.Worker)
			usedOutputs = append(usedOutputs, p.out)
			if p.compute > maxCompute {
				maxCompute = p.compute
			}
			if p.comm > maxComm {
				maxComm = p.comm
			}
		} else {
			res.Byzantine = append(res.Byzantine, arr.Worker)
		}
	}
	if len(usedWorkers) < threshold {
		return nil, fmt.Errorf("polycode: only %d verified results, need %d", len(usedWorkers), threshold)
	}
	c, err := m.code.Decode(usedWorkers, usedOutputs, m.blockRows, m.blockCols)
	if err != nil {
		return nil, err
	}
	decodeOps := float64(threshold)*float64(m.blockRows*m.blockCols) + float64(threshold*threshold*threshold)
	decodeTime := m.opt.Sim.MasterTime(decodeOps)

	res.C = trim(c, m.origRows, m.origCols)
	res.Used = usedWorkers
	res.Breakdown.Compute = maxCompute
	res.Breakdown.Comm = maxComm
	res.Breakdown.Decode = decodeTime
	res.Breakdown.Wall = masterFree + decodeTime
	return res, nil
}

type payload struct {
	out     []field.Elem
	compute float64
	comm    float64
}

func padCols(x *fieldmat.Matrix, q int) *fieldmat.Matrix {
	if x.Cols%q == 0 {
		return x
	}
	cols := ((x.Cols + q - 1) / q) * q
	out := fieldmat.NewMatrix(x.Rows, cols)
	for i := 0; i < x.Rows; i++ {
		copy(out.Row(i)[:x.Cols], x.Row(i))
	}
	return out
}

func trim(x *fieldmat.Matrix, rows, cols int) *fieldmat.Matrix {
	if x.Rows == rows && x.Cols == cols {
		return x
	}
	out := fieldmat.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		copy(out.Row(i), x.Row(i)[:cols])
	}
	return out
}
