package polycode

import (
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/fieldmat"
	"repro/internal/simnet"
)

func quietSim() simnet.Config {
	c := simnet.DefaultConfig()
	c.JitterFrac = 0
	c.LinkLatency = 1e-5
	return c
}

func mmOpts(s, m int) MatMulOptions {
	return MatMulOptions{N: 6 + s + m, P: 2, Q: 3, S: s, M: m, Sim: quietSim(), Seed: 9}
}

func TestMatMulMasterHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(610))
	a := fieldmat.Rand(f, rng, 8, 6)
	b := fieldmat.Rand(f, rng, 6, 9)
	m, err := NewMatMulMaster(f, mmOpts(1, 1), a, b, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.C.Equal(fieldmat.MatMul(f, a, b)) {
		t.Fatal("verified matmul wrong")
	}
	if len(out.Used) != 6 {
		t.Fatalf("used %d, want threshold 6", len(out.Used))
	}
}

func TestMatMulMasterByzantine(t *testing.T) {
	rng := rand.New(rand.NewSource(611))
	a := fieldmat.Rand(f, rng, 8, 6)
	b := fieldmat.Rand(f, rng, 6, 9)
	opt := mmOpts(0, 2)
	behaviors := make([]attack.Behavior, opt.N)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	behaviors[1] = attack.ReverseValue{C: 1}
	behaviors[4] = attack.Constant{V: 77}
	m, err := NewMatMulMaster(f, opt, a, b, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.C.Equal(fieldmat.MatMul(f, a, b)) {
		t.Fatal("matmul corrupted by Byzantines")
	}
	caught := map[int]bool{}
	for _, id := range out.Byzantine {
		caught[id] = true
	}
	if !caught[1] || !caught[4] {
		t.Fatalf("flags %v, want {1,4}", out.Byzantine)
	}
}

func TestMatMulMasterStraggler(t *testing.T) {
	rng := rand.New(rand.NewSource(612))
	a := fieldmat.Rand(f, rng, 32, 40)
	b := fieldmat.Rand(f, rng, 40, 33)
	m, err := NewMatMulMaster(f, mmOpts(1, 0), a, b, nil, attack.NewFixedStragglers(2))
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range out.Used {
		if id == 2 {
			t.Fatal("straggler on critical path")
		}
	}
	if !out.C.Equal(fieldmat.MatMul(f, a, b)) {
		t.Fatal("result wrong")
	}
}

func TestMatMulMasterPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(613))
	a := fieldmat.Rand(f, rng, 7, 5) // 7 % 2 != 0
	b := fieldmat.Rand(f, rng, 5, 8) // 8 % 3 != 0
	m, err := NewMatMulMaster(f, mmOpts(1, 1), a, b, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if out.C.Rows != 7 || out.C.Cols != 8 {
		t.Fatalf("shape (%d,%d), want (7,8)", out.C.Rows, out.C.Cols)
	}
	if !out.C.Equal(fieldmat.MatMul(f, a, b)) {
		t.Fatal("padded matmul wrong")
	}
}

func TestMatMulMasterValidation(t *testing.T) {
	a := fieldmat.NewMatrix(4, 3)
	b := fieldmat.NewMatrix(3, 6)
	bad := mmOpts(1, 1)
	bad.N = 6 // needs 8
	if _, err := NewMatMulMaster(f, bad, a, b, nil, nil); err == nil {
		t.Fatal("infeasible accepted")
	}
	if _, err := NewMatMulMaster(f, mmOpts(1, 1), a, fieldmat.NewMatrix(4, 6), nil, nil); err == nil {
		t.Fatal("inner mismatch accepted")
	}
	if _, err := NewMatMulMaster(f, mmOpts(1, 1), a, b, make([]attack.Behavior, 1), nil); err == nil {
		t.Fatal("behaviour mismatch accepted")
	}
}

func TestMatMulMasterTooManyByzantine(t *testing.T) {
	rng := rand.New(rand.NewSource(614))
	a := fieldmat.Rand(f, rng, 4, 3)
	b := fieldmat.Rand(f, rng, 3, 6)
	opt := mmOpts(0, 1) // N = 7, threshold 6
	behaviors := make([]attack.Behavior, opt.N)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	behaviors[0] = attack.Constant{V: 1}
	behaviors[3] = attack.Constant{V: 2}
	m, err := NewMatMulMaster(f, opt, a, b, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(0); err == nil {
		t.Fatal("succeeded without enough honest workers")
	}
}

func BenchmarkMatMulMasterRound(b *testing.B) {
	rng := rand.New(rand.NewSource(615))
	am := fieldmat.Rand(f, rng, 64, 64)
	bm := fieldmat.Rand(f, rng, 64, 66)
	m, err := NewMatMulMaster(f, mmOpts(1, 1), am, bm, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(i); err != nil {
			b.Fatal(err)
		}
	}
}
