// Package logreg implements the paper's evaluation application: quantized
// distributed logistic regression (Section IV-A).
//
// Training minimises the cross entropy (eq. 4) by full-batch gradient
// descent (eq. 5), with each iteration run as the paper's two-round coded
// protocol:
//
//	round 1 ("fwd"):  z = X·w      computed distributed over coded shards,
//	master locally:   e = h(z) − y with h the sigmoid,
//	round 2 ("bwd"):  g = Xᵀ·e     computed distributed over coded shards,
//	master locally:   w ← w − (η/m)·g.
//
// The dataset is integer-valued and embeds into F_q losslessly; the weight
// and error vectors are quantized at l bits (eq. 21, paper uses l = 5)
// before each round and results are de-scaled after decoding.
package logreg

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/quant"
)

// Sigmoid is the logistic function h(θ) = 1/(1+e^{−θ}).
func Sigmoid(x float64) float64 {
	// Split the branches for numerical stability at large |x|.
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// Model is a trained weight vector (bias folded into the last weight, as in
// the paper).
type Model struct {
	W []float64
}

// PredictProb returns h(x·w).
func (m *Model) PredictProb(x []float64) float64 {
	var dot float64
	for i, v := range x {
		dot += v * m.W[i]
	}
	return Sigmoid(dot)
}

// Accuracy returns the 0/1 accuracy over a row-major feature block.
func (m *Model) Accuracy(x []float64, y []float64, rows, cols int) float64 {
	if rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < rows; i++ {
		p := m.PredictProb(x[i*cols : (i+1)*cols])
		pred := 0.0
		if p >= 0.5 {
			pred = 1
		}
		if pred == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(rows)
}

// CrossEntropy returns the mean cross-entropy loss (eq. 4), clamping
// probabilities away from {0,1} to keep the loss finite.
func (m *Model) CrossEntropy(x []float64, y []float64, rows, cols int) float64 {
	if rows == 0 {
		return 0
	}
	const eps = 1e-12
	var sum float64
	for i := 0; i < rows; i++ {
		p := m.PredictProb(x[i*cols : (i+1)*cols])
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		sum += -y[i]*math.Log(p) - (1-y[i])*math.Log(1-p)
	}
	return sum / float64(rows)
}

// TrainConfig controls a training run.
type TrainConfig struct {
	// Iterations is the gradient-descent step count (paper: 50).
	Iterations int
	// LearningRate is η in eq. 5.
	LearningRate float64
	// WeightBits is the quantization parameter l for the weight vector.
	// It must be fine enough that a gradient step moves the quantized
	// weights (2^-l below the typical update), and coarse enough that the
	// worst-case x·w_q stays inside the field window — the trade-off the
	// paper describes as "the trade-off between the rounding and the
	// overflow error" when it selects l = 5 for GISETTE-scale weights.
	WeightBits uint
	// ErrorBits is the quantization parameter for the round-2 error vector
	// e = h(z) − y ∈ (−1, 1).
	ErrorBits uint
	// InitialWeight seeds every weight coordinate (0 is the usual choice).
	InitialWeight float64
}

// DefaultTrainConfig is calibrated for the CI-scale sparse dataset
// (values ≤ 99, density 0.2): useful weights live around 1e-3, so they
// need 15 fractional bits; errors are O(1), so 7 bits suffice.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Iterations:    25,
		LearningRate:  3e-5,
		WeightBits:    15,
		ErrorBits:     7,
		InitialWeight: 0,
	}
}

// TrainDistributed runs quantized logistic regression against any master
// (AVCC, LCC, uncoded) and records the per-iteration convergence trace.
// The master must have been constructed with data {"fwd": X, "bwd": Xᵀ}
// over the same dataset (field-embedded). ctx bounds the whole run: both
// coded rounds of every iteration inherit it, so cancelling it stops
// training at the next round boundary with ctx's error.
func TrainDistributed(ctx context.Context, f *field.Field, master cluster.Master, ds *dataset.Data, cfg TrainConfig) (*metrics.Series, *Model, error) {
	if cfg.Iterations < 1 {
		return nil, nil, fmt.Errorf("logreg: need at least one iteration")
	}
	qw := quant.New(f, cfg.WeightBits)
	qe := quant.New(f, cfg.ErrorBits)
	// No-wrap-around guard, using the dataset's actual L1 geometry rather
	// than the dense worst case (GISETTE-like sparsity is what makes the
	// paper's field size work):
	//   round 1: |z_q| ≤ maxRowL1 · max|w_q|,
	//   round 2: |g_q| ≤ maxColL1 · max|e_q|, |e_q| ≤ 2^ErrorBits.
	window := float64((f.Q() - 1) / 2)
	weightCap := window / (ds.MaxRowL1() * qw.Scale()) // max permissible |w|
	if weightCap <= 0 {
		return nil, nil, fmt.Errorf("logreg: degenerate dataset geometry")
	}
	if worst := ds.MaxColL1() * qe.Scale(); worst > window {
		return nil, nil, fmt.Errorf("logreg: round-2 worst case %.3g exceeds field window %.3g — lower ErrorBits or shrink the dataset", worst, window)
	}

	model := &Model{W: make([]float64, ds.Cols)}
	for i := range model.W {
		model.W[i] = cfg.InitialWeight
	}
	series := &metrics.Series{Name: master.Name()}
	var clock float64

	for iter := 0; iter < cfg.Iterations; iter++ {
		// Round 1: z = X·w over the coded cluster. Weights are projected
		// onto the wrap-safe cap first (inert in practice; a hard guarantee
		// in adversarial corner cases).
		for i, w := range model.W {
			if w > weightCap {
				model.W[i] = weightCap
			} else if w < -weightCap {
				model.W[i] = -weightCap
			}
		}
		wq := qw.QuantizeVec(model.W)
		zOut, err := master.RunRound(ctx, "fwd", wq, iter)
		if err != nil {
			return nil, nil, fmt.Errorf("logreg: iter %d round 1: %w", iter, err)
		}
		if len(zOut.Decoded) != ds.Rows {
			return nil, nil, fmt.Errorf("logreg: round 1 returned %d values, want %d", len(zOut.Decoded), ds.Rows)
		}
		// e = h(z) − y in the real domain, then re-quantize.
		e := make([]float64, ds.Rows)
		for i, zq := range zOut.Decoded {
			z := qw.Dequantize(zq) // scale 2^WeightBits from the quantized weights
			e[i] = Sigmoid(z) - ds.TrainY[i]
		}
		eq := qe.QuantizeVec(e)

		// Round 2: g = Xᵀ·e over the coded cluster.
		gOut, err := master.RunRound(ctx, "bwd", eq, iter)
		if err != nil {
			return nil, nil, fmt.Errorf("logreg: iter %d round 2: %w", iter, err)
		}
		if len(gOut.Decoded) != ds.Cols {
			return nil, nil, fmt.Errorf("logreg: round 2 returned %d values, want %d", len(gOut.Decoded), ds.Cols)
		}
		step := cfg.LearningRate / float64(ds.Rows)
		for i, gq := range gOut.Decoded {
			model.W[i] -= step * qe.Dequantize(gq)
		}

		recodeCost, recoded := master.FinishIteration(iter)

		var b metrics.Breakdown
		b.Add(zOut.Breakdown)
		b.Add(gOut.Breakdown)
		clock += b.Wall + recodeCost

		byz := append([]int(nil), zOut.Byzantine...)
		byz = append(byz, gOut.Byzantine...)
		series.Records = append(series.Records, metrics.IterationRecord{
			Iter:            iter,
			Time:            clock,
			TestAccuracy:    model.Accuracy(ds.TestX, ds.TestY, ds.TestRows, ds.Cols),
			TrainLoss:       model.CrossEntropy(ds.TrainX, ds.TrainY, ds.Rows, ds.Cols),
			Breakdown:       b,
			ByzantineCaught: dedupInts(byz),
			Recode:          recoded,
			RecodeCost:      recodeCost,
		})
	}
	return series, model, nil
}

// TrainLocal is the single-node floating-point reference implementation —
// ground truth for integration tests and the quantization-loss ablation.
func TrainLocal(ds *dataset.Data, cfg TrainConfig) (*Model, error) {
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("logreg: need at least one iteration")
	}
	model := &Model{W: make([]float64, ds.Cols)}
	for i := range model.W {
		model.W[i] = cfg.InitialWeight
	}
	g := make([]float64, ds.Cols)
	for iter := 0; iter < cfg.Iterations; iter++ {
		for i := range g {
			g[i] = 0
		}
		for i := 0; i < ds.Rows; i++ {
			row := ds.TrainRow(i)
			e := model.PredictProb(row) - ds.TrainY[i]
			for j, v := range row {
				g[j] += v * e
			}
		}
		step := cfg.LearningRate / float64(ds.Rows)
		for j := range model.W {
			model.W[j] -= step * g[j]
		}
	}
	return model, nil
}

func dedupInts(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
