package logreg

import (
	"context"
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
	"repro/internal/simnet"
)

var f = field.Default()

func quietSim() simnet.Config {
	c := simnet.DefaultConfig()
	c.JitterFrac = 0
	c.LinkLatency = 1e-5
	return c
}

// smallData is a fast dataset for protocol-level tests.
func smallData(t *testing.T) *dataset.Data {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.TrainN, cfg.TestN, cfg.Features, cfg.Informative = 180, 60, 40, 16
	cfg.Separation = 1.2 // small samples need a stronger signal
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func roundData(ds *dataset.Data) map[string]*fieldmat.Matrix {
	x := ds.FieldMatrix(f)
	return map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}
}

func avccMaster(t *testing.T, ds *dataset.Data, s, m int, behaviors []attack.Behavior, st attack.StragglerSchedule) cluster.Master {
	t.Helper()
	mm, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(s, m, 0),
		scheme.WithSim(quietSim()),
		scheme.WithSeed(11),
	), roundData(ds), behaviors, st)
	if err != nil {
		t.Fatal(err)
	}
	return mm
}

func TestSigmoid(t *testing.T) {
	if Sigmoid(0) != 0.5 {
		t.Fatal("h(0) != 0.5")
	}
	if Sigmoid(100) <= 0.999 || Sigmoid(-100) >= 0.001 {
		t.Fatal("saturation wrong")
	}
	if s := Sigmoid(2) + Sigmoid(-2); math.Abs(s-1) > 1e-12 {
		t.Fatal("sigmoid not symmetric")
	}
	// No NaNs at extreme inputs.
	for _, x := range []float64{-1e9, 1e9, -745, 745} {
		if v := Sigmoid(x); math.IsNaN(v) || v < 0 || v > 1 {
			t.Fatalf("Sigmoid(%g) = %v", x, v)
		}
	}
}

func TestModelAccuracyAndLoss(t *testing.T) {
	m := &Model{W: []float64{1, 0}}
	x := []float64{5, 1, -5, 1} // two rows, bias column
	y := []float64{1, 0}
	if acc := m.Accuracy(x, y, 2, 2); acc != 1 {
		t.Fatalf("accuracy %v, want 1", acc)
	}
	yWrong := []float64{0, 1}
	if acc := m.Accuracy(x, yWrong, 2, 2); acc != 0 {
		t.Fatalf("accuracy %v, want 0", acc)
	}
	if l := m.CrossEntropy(x, y, 2, 2); l <= 0 || math.IsInf(l, 0) || math.IsNaN(l) {
		t.Fatalf("loss %v", l)
	}
	lossRight := m.CrossEntropy(x, y, 2, 2)
	lossWrong := m.CrossEntropy(x, yWrong, 2, 2)
	if lossWrong <= lossRight {
		t.Fatal("wrong labels should have higher loss")
	}
}

func TestTrainLocalLearns(t *testing.T) {
	ds := smallData(t)
	cfg := DefaultTrainConfig()
	model, err := TrainLocal(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := model.Accuracy(ds.TestX, ds.TestY, ds.TestRows, ds.Cols)
	if acc < 0.8 {
		t.Fatalf("local reference accuracy %.3f < 0.8 — workload not learnable", acc)
	}
}

func TestDistributedMatchesLocalReference(t *testing.T) {
	// Honest AVCC training must track the float reference closely: the only
	// divergence source is l-bit quantization.
	ds := smallData(t)
	cfg := DefaultTrainConfig()
	cfg.Iterations = 10
	master := avccMaster(t, ds, 1, 1, nil, nil)
	series, distModel, err := TrainDistributed(context.Background(), f, master, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	localModel, err := TrainLocal(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Records) != 10 {
		t.Fatalf("%d records", len(series.Records))
	}
	// Weight vectors should agree to quantization precision levels.
	var maxDiff float64
	for i := range distModel.W {
		d := math.Abs(distModel.W[i] - localModel.W[i])
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.02 {
		t.Fatalf("distributed weights diverge from reference by %.4f", maxDiff)
	}
	distAcc := distModel.Accuracy(ds.TestX, ds.TestY, ds.TestRows, ds.Cols)
	localAcc := localModel.Accuracy(ds.TestX, ds.TestY, ds.TestRows, ds.Cols)
	if math.Abs(distAcc-localAcc) > 0.05 {
		t.Fatalf("accuracy gap %.3f vs %.3f", distAcc, localAcc)
	}
}

func TestDistributedUnderAttackStillLearns(t *testing.T) {
	// Two constant-attack Byzantines with AVCC (S=1, M=2): verification
	// must keep training clean.
	ds := smallData(t)
	behaviors := make([]attack.Behavior, 12)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	behaviors[2] = attack.Constant{V: 123}
	behaviors[8] = attack.Constant{V: 77}
	master := avccMaster(t, ds, 1, 2, behaviors, nil)
	cfg := DefaultTrainConfig()
	cfg.Iterations = 10
	series, model, err := TrainDistributed(context.Background(), f, master, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := model.Accuracy(ds.TestX, ds.TestY, ds.TestRows, ds.Cols)
	if acc < 0.8 {
		t.Fatalf("AVCC under attack reached only %.3f accuracy", acc)
	}
	// The Byzantines must have been caught in iteration 0 and quarantined
	// afterwards (no repeated flags).
	if len(series.Records[0].ByzantineCaught) != 2 {
		t.Fatalf("iteration 0 caught %v", series.Records[0].ByzantineCaught)
	}
	for _, r := range series.Records[2:] {
		if len(r.ByzantineCaught) != 0 {
			t.Fatalf("iteration %d still catching %v after quarantine", r.Iter, r.ByzantineCaught)
		}
	}
}

func TestUncodedUnderAttackDegrades(t *testing.T) {
	// The paper's Fig. 3 observation: without detection, Byzantine workers
	// drag accuracy below the protected schemes.
	ds := smallData(t)
	cfg := DefaultTrainConfig()
	cfg.Iterations = 10

	uncodedCfg := scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithSim(quietSim()),
		scheme.WithSeed(5),
	)
	clean, err := scheme.New("uncoded", f, uncodedCfg, roundData(ds), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, cleanModel, err := TrainDistributed(context.Background(), f, clean, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	behaviors := make([]attack.Behavior, 9)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	// Large enough that the dequantized z saturates the sigmoid (scale is
	// 2^WeightBits): the corrupted blocks train on e ≈ ±1 every iteration.
	behaviors[3] = attack.Constant{V: 5_000_000}
	behaviors[6] = attack.Constant{V: 5_000_000}
	attacked, err := scheme.New("uncoded", f, uncodedCfg, roundData(ds), behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, attackedModel, err := TrainDistributed(context.Background(), f, attacked, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cleanAcc := cleanModel.Accuracy(ds.TestX, ds.TestY, ds.TestRows, ds.Cols)
	attackedAcc := attackedModel.Accuracy(ds.TestX, ds.TestY, ds.TestRows, ds.Cols)
	if attackedAcc >= cleanAcc {
		t.Fatalf("uncoded under attack (%.3f) not worse than clean (%.3f)", attackedAcc, cleanAcc)
	}
}

func TestSeriesTimingMonotone(t *testing.T) {
	ds := smallData(t)
	master := avccMaster(t, ds, 1, 1, nil, nil)
	cfg := DefaultTrainConfig()
	cfg.Iterations = 5
	series, _, err := TrainDistributed(context.Background(), f, master, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, r := range series.Records {
		if r.Time <= prev {
			t.Fatal("cumulative time not strictly increasing")
		}
		prev = r.Time
		if r.Breakdown.Wall <= 0 {
			t.Fatal("missing wall time")
		}
	}
}

func TestTrainValidation(t *testing.T) {
	ds := smallData(t)
	master := avccMaster(t, ds, 1, 1, nil, nil)
	if _, _, err := TrainDistributed(context.Background(), f, master, ds, TrainConfig{Iterations: 0}); err == nil {
		t.Fatal("0 iterations accepted")
	}
	if _, err := TrainLocal(ds, TrainConfig{Iterations: 0}); err == nil {
		t.Fatal("local 0 iterations accepted")
	}
}
