package commit

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

// receiptDomain separates this protocol's transcripts from any other use of
// the Transcript type; bump the version on any change to the absorb
// schedule, the challenge schedule, or the receipt layout.
const receiptDomain = "avcc/commit/receipt/v1"

// Soundness knobs. Each sampled column catches an inconsistent opened
// linear combination with probability ≥ 1/2 (the rate-1/2 row code has
// distance Cols+1 > Ext/2), so ColumnSamples = 20 bounds that escape route
// by 2⁻²⁰; the challenge combinations themselves miss a corruption with
// probability ≤ (K·Batch+K+Batch)/q ≈ 2⁻²⁰ at the repo's default shapes.
const (
	// ColumnSamples is the number of Merkle-opened matrix columns per group.
	ColumnSamples = 20
	// LeafSamples is the number of Merkle-opened output entries per worker,
	// binding each worker's commitment root to actual committed leaves.
	LeafSamples = 4
)

// ColumnOpening is one Merkle-authenticated committed matrix column.
type ColumnOpening struct {
	// Index is the committed column index in [0, Digest.Ext).
	Index int
	// Values are the column's Digest.Rows entries.
	Values []field.Elem
	// Path authenticates ColumnLeaf(Index, Values) against Digest.Root.
	Path []Hash
}

// LeafOpening is one Merkle-authenticated entry of a worker's committed
// output.
type LeafOpening struct {
	Index int
	Value field.Elem
	Path  []Hash
}

// WorkerOpening is one worker's contribution to a group receipt.
type WorkerOpening struct {
	// ID is the worker's (group-local) identifier.
	ID int
	// Alpha is the worker's Lagrange evaluation point in the round's code
	// (for the uncoded baseline, the systematic point of its block).
	Alpha field.Elem
	// Root is the Merkle root the worker committed its coded output under.
	Root Hash
	// OutLen is the committed output length (leaf count of Root's tree).
	OutLen int
	// Aggregates are the φ-masked linear aggregates of the worker's actual
	// output — one per batch column (one total for Gram rounds). The
	// verifier recomputes the expected value of each from the digest-bound
	// openings; a mismatch identifies this worker as inconsistent.
	Aggregates []field.Elem
	// Leaves are spot openings of the committed output at
	// transcript-derived indices.
	Leaves []LeafOpening
}

// GroupReceipt is the proof for one shard group's round.
type GroupReceipt struct {
	// Digest identifies the group's committed data matrix.
	Digest Digest
	// K is the data-split count and BlockRows the padded per-block row
	// count b of the round that produced this receipt (⌈Rows/K⌉; AVCC
	// re-coding changes these per receipt while Digest stays fixed).
	K, BlockRows int
	// Outputs are the round's decoded outputs, one vector of Digest.Rows
	// entries per batch column (for Gram rounds: one vector of K·b² entries
	// holding the K decoded b×b blocks).
	Outputs [][]field.Elem
	// Workers lists the results the decode consumed.
	Workers []WorkerOpening
	// U[k] = r̃_kᵀ·X_k and V[k] = φᵀ·X_k are the challenge linear
	// combinations of data block k's rows, each of length Digest.Cols,
	// bound to Digest by the Columns spot checks. U2/V2 are the second
	// challenge pair Gram rounds additionally need (nil otherwise).
	U, V, U2, V2 [][]field.Elem
	// Columns are the Merkle-opened matrix columns at the
	// transcript-derived sample indices.
	Columns []ColumnOpening
}

// Receipt is the tenant-verifiable proof for one round: Verify() checks it
// against nothing but its embedded digests — no cluster, no master secrets
// — and cmd/avccverify additionally pins the digests to a trusted value.
type Receipt struct {
	// Scheme and RoundKey identify the deployment round that issued this.
	Scheme   string
	RoundKey string
	// Iter is the round's iteration number; Batch the number of inputs the
	// coalesced round carried (1 for Gram rounds, which are input-free).
	Iter  int
	Batch int
	// Gram marks a degree-2 Gram round (outputs are block Gram matrices).
	Gram bool
	// Inputs is the packed broadcast input: batch column c occupies
	// Inputs[c·Cols:(c+1)·Cols]. Empty for Gram rounds. Inputs are public
	// (they are broadcast to every worker); a tenant checks its own column.
	Inputs []field.Elem
	// Groups holds one proof per shard group, in shard-plan order.
	Groups []*GroupReceipt
}

// FoldedDigest returns the FoldDigests fingerprint of this receipt's group
// digests — the value to compare against the deployment's published one.
func (r *Receipt) FoldedDigest() string {
	ds := make([]Digest, len(r.Groups))
	for i, g := range r.Groups {
		ds[i] = g.Digest
	}
	return FoldDigests(ds)
}

// transcriptPrelude replays the first half of the Fiat–Shamir schedule:
// everything known before any challenge is drawn. Issuer and verifier both
// call it, so the challenges are recomputed, never transported.
func (g *GroupReceipt) transcriptPrelude(r *Receipt) *Transcript {
	t := NewTranscript(receiptDomain)
	t.AbsorbString("scheme", r.Scheme)
	t.AbsorbString("round", r.RoundKey)
	t.AbsorbInt("iter", uint64(r.Iter))
	t.AbsorbInt("batch", uint64(r.Batch))
	gram := uint64(0)
	if r.Gram {
		gram = 1
	}
	t.AbsorbInt("gram", gram)
	t.AbsorbHash("digest-root", g.Digest.Root)
	t.AbsorbInt("digest-rows", uint64(g.Digest.Rows))
	t.AbsorbInt("digest-cols", uint64(g.Digest.Cols))
	t.AbsorbInt("digest-ext", uint64(g.Digest.Ext))
	t.AbsorbInt("digest-q", g.Digest.Q)
	t.AbsorbInt("k", uint64(g.K))
	t.AbsorbInt("block-rows", uint64(g.BlockRows))
	t.AbsorbElems("inputs", r.Inputs)
	for _, out := range g.Outputs {
		t.AbsorbElems("output", out)
	}
	t.AbsorbInt("workers", uint64(len(g.Workers)))
	for _, w := range g.Workers {
		t.AbsorbInt("worker-id", uint64(w.ID))
		t.AbsorbInt("worker-alpha", uint64(w.Alpha))
		t.AbsorbInt("worker-outlen", uint64(w.OutLen))
		t.AbsorbHash("worker-root", w.Root)
	}
	return t
}

// drawChallenges squeezes the round's challenge vectors in schedule order.
func (g *GroupReceipt) drawChallenges(t *Transcript, f *field.Field, gram bool) (rT, phi, chi, phi2 []field.Elem) {
	kb := g.K * g.BlockRows
	rT = t.ChallengeElems(f, "r", kb)
	phi = t.ChallengeElems(f, "phi", g.BlockRows)
	if gram {
		chi = t.ChallengeElems(f, "chi", kb)
		phi2 = t.ChallengeElems(f, "phi2", g.BlockRows)
	}
	return
}

// transcriptOpenings replays the second half of the schedule — absorbing
// the opened combinations and aggregates, then deriving which columns and
// which output leaves must be opened.
func (g *GroupReceipt) transcriptOpenings(t *Transcript) (cols []int, leaves [][]int) {
	for _, u := range g.U {
		t.AbsorbElems("u", u)
	}
	for _, v := range g.V {
		t.AbsorbElems("v", v)
	}
	for _, u := range g.U2 {
		t.AbsorbElems("u2", u)
	}
	for _, v := range g.V2 {
		t.AbsorbElems("v2", v)
	}
	for _, w := range g.Workers {
		t.AbsorbElems("aggregates", w.Aggregates)
	}
	cols = t.ChallengeIndices("columns", ColumnSamples, g.Digest.Ext)
	leaves = make([][]int, len(g.Workers))
	for i, w := range g.Workers {
		leaves[i] = t.ChallengeIndices("leaves", LeafSamples, w.OutLen)
	}
	return cols, leaves
}

// RoundWorker is one consumed worker result handed to Issue.
type RoundWorker struct {
	ID     int
	Alpha  field.Elem
	Output []field.Elem
	// Commit is the root the worker shipped alongside its output (nil when
	// the transport did not carry one).
	Commit []byte
}

// Round is everything a master knows about one finished round when it asks
// the Issuer for a receipt.
type Round struct {
	Key   string
	Iter  int
	Batch int
	Gram  bool
	// K and BlockRows are the split parameters of the code that ran the
	// round (the CURRENT ones, for adaptive masters).
	K, BlockRows int
	// Inputs is the packed broadcast (empty for Gram rounds).
	Inputs []field.Elem
	// Outputs are the decoded, padding-trimmed outputs per batch column
	// (for Gram rounds: the single flattened K·b² block sequence).
	Outputs [][]field.Elem
	// Workers are the results the decode consumed.
	Workers []RoundWorker
}

// Issuer builds receipts for one master's committed round keys. Build it at
// master construction, Commit every data matrix once, then Issue per round.
type Issuer struct {
	f      *field.Field
	scheme string
	mcs    map[string]*MatrixCommitment
}

// NewIssuer creates an issuer for the named scheme.
func NewIssuer(f *field.Field, scheme string) *Issuer {
	return &Issuer{f: f, scheme: scheme, mcs: make(map[string]*MatrixCommitment)}
}

// Commit commits the (unpadded) data matrix for a round key and returns its
// public digest. Committing a key twice replaces the previous commitment.
func (is *Issuer) Commit(key string, x *fieldmat.Matrix) Digest {
	mc := CommitMatrix(is.f, x)
	is.mcs[key] = mc
	return mc.Digest()
}

// Digests returns the public digest of every committed key as one-group
// slices (the shard plane concatenates per-group slices into the same
// shape).
func (is *Issuer) Digests() map[string][]Digest {
	out := make(map[string][]Digest, len(is.mcs))
	for key, mc := range is.mcs {
		out[key] = []Digest{mc.Digest()}
	}
	return out
}

// blockCombo accumulates coeff(p)·row_p over block k's real rows (padding
// rows are zero and contribute nothing, so the issuer never materialises
// them).
func blockCombo(f *field.Field, x *fieldmat.Matrix, k, b int, coeff func(p int) field.Elem) []field.Elem {
	lo, hi := k*b, (k+1)*b
	if hi > x.Rows {
		hi = x.Rows
	}
	acc := f.NewLazyAcc(make([]uint64, x.Cols))
	for p := lo; p < hi; p++ {
		acc.AXPY(coeff(p), x.Row(p))
	}
	out := make([]field.Elem, x.Cols)
	acc.Flush(out)
	return out
}

// Issue builds the receipt for one finished round of the committed key.
func (is *Issuer) Issue(rd Round) (*Receipt, error) {
	mc, ok := is.mcs[rd.Key]
	if !ok {
		return nil, fmt.Errorf("commit: round key %q was never committed", rd.Key)
	}
	f := is.f
	rows, cols := mc.x.Rows, mc.x.Cols
	k, b := rd.K, rd.BlockRows
	if k < 1 || b < 1 || k*b < rows {
		return nil, fmt.Errorf("commit: split %d blocks x %d rows cannot cover %d data rows", k, b, rows)
	}
	batch := rd.Batch
	wantOut := batch * b
	if rd.Gram {
		if batch != 1 {
			return nil, fmt.Errorf("commit: gram receipts carry one shared output, got batch %d", batch)
		}
		if len(rd.Inputs) != 0 {
			return nil, fmt.Errorf("commit: gram rounds take no input, got %d elems", len(rd.Inputs))
		}
		if len(rd.Outputs) != 1 || len(rd.Outputs[0]) != k*b*b {
			return nil, fmt.Errorf("commit: gram round wants one %d-elem output", k*b*b)
		}
		wantOut = b * b
	} else {
		if batch < 1 || len(rd.Inputs) != batch*cols {
			return nil, fmt.Errorf("commit: packed inputs have %d elems, want %d x %d", len(rd.Inputs), batch, cols)
		}
		if len(rd.Outputs) != batch {
			return nil, fmt.Errorf("commit: %d decoded outputs for batch %d", len(rd.Outputs), batch)
		}
		for c, out := range rd.Outputs {
			if len(out) != rows {
				return nil, fmt.Errorf("commit: decoded output %d has %d elems, want %d", c, len(out), rows)
			}
		}
	}
	if len(rd.Workers) == 0 {
		return nil, fmt.Errorf("commit: round consumed no workers")
	}

	g := &GroupReceipt{
		Digest:    mc.digest,
		K:         k,
		BlockRows: b,
		Outputs:   make([][]field.Elem, len(rd.Outputs)),
		Workers:   make([]WorkerOpening, len(rd.Workers)),
	}
	for c, out := range rd.Outputs {
		g.Outputs[c] = field.CopyVec(out)
	}
	trees := make([]*Tree, len(rd.Workers))
	seenAlpha := make(map[field.Elem]bool, len(rd.Workers))
	for i, rw := range rd.Workers {
		if len(rw.Output) != wantOut {
			return nil, fmt.Errorf("commit: worker %d output has %d elems, want %d", rw.ID, len(rw.Output), wantOut)
		}
		if seenAlpha[rw.Alpha] {
			return nil, fmt.Errorf("commit: duplicate evaluation point %d among consumed workers", rw.Alpha)
		}
		seenAlpha[rw.Alpha] = true
		// The receipt binds the output the decode actually consumed: the
		// tree is rebuilt from it, and a shipped commitment that disagrees
		// (a worker lying about its own commitment) is superseded rather
		// than letting it poison an otherwise-correct round — the worker's
		// OUTPUT is what the orthogonal Freivalds layer polices. Matching
		// shipments (the honest case) are identical to the rebuild.
		tree := outputTree(rw.Output)
		root := tree.Root()
		if rw.Commit != nil && len(rw.Commit) != HashSize {
			return nil, fmt.Errorf("commit: worker %d shipped a %d-byte commitment, want %d", rw.ID, len(rw.Commit), HashSize)
		}
		trees[i] = tree
		g.Workers[i] = WorkerOpening{ID: rw.ID, Alpha: rw.Alpha, Root: root, OutLen: wantOut}
	}

	rec := &Receipt{
		Scheme:   is.scheme,
		RoundKey: rd.Key,
		Iter:     rd.Iter,
		Batch:    batch,
		Gram:     rd.Gram,
		Inputs:   field.CopyVec(rd.Inputs),
		Groups:   []*GroupReceipt{g},
	}

	t := g.transcriptPrelude(rec)
	rT, phi, chi, phi2 := g.drawChallenges(t, f, rd.Gram)

	g.U = make([][]field.Elem, k)
	g.V = make([][]field.Elem, k)
	for kk := 0; kk < k; kk++ {
		lo := kk * b
		g.U[kk] = blockCombo(f, mc.x, kk, b, func(p int) field.Elem { return rT[p] })
		g.V[kk] = blockCombo(f, mc.x, kk, b, func(p int) field.Elem { return phi[p-lo] })
	}
	if rd.Gram {
		g.U2 = make([][]field.Elem, k)
		g.V2 = make([][]field.Elem, k)
		for kk := 0; kk < k; kk++ {
			lo := kk * b
			g.U2[kk] = blockCombo(f, mc.x, kk, b, func(p int) field.Elem { return chi[p] })
			g.V2[kk] = blockCombo(f, mc.x, kk, b, func(p int) field.Elem { return phi2[p-lo] })
		}
	}

	// Claimed aggregates: the φ-mask of each worker's ACTUAL output. For an
	// honest worker these equal the digest-derived expectation the verifier
	// recomputes; for a corrupted output they differ w.p. ≥ 1 − 1/q.
	for i, rw := range rd.Workers {
		if rd.Gram {
			tmp := make([]field.Elem, b)
			for p := 0; p < b; p++ {
				tmp[p] = f.Dot(rw.Output[p*b:(p+1)*b], phi2)
			}
			g.Workers[i].Aggregates = []field.Elem{f.Dot(phi, tmp)}
		} else {
			agg := make([]field.Elem, batch)
			for c := 0; c < batch; c++ {
				agg[c] = f.Dot(phi, rw.Output[c*b:(c+1)*b])
			}
			g.Workers[i].Aggregates = agg
		}
	}

	colIdx, leafIdx := g.transcriptOpenings(t)
	g.Columns = make([]ColumnOpening, len(colIdx))
	for i, e := range colIdx {
		g.Columns[i] = mc.OpenColumn(e)
	}
	for i := range g.Workers {
		opens := make([]LeafOpening, len(leafIdx[i]))
		for j, idx := range leafIdx[i] {
			opens[j] = LeafOpening{
				Index: idx,
				Value: rd.Workers[i].Output[idx],
				Path:  trees[i].Path(idx),
			}
		}
		g.Workers[i].Leaves = opens
	}
	return rec, nil
}

// FoldReceipts merges per-group receipts of one sharded round into a single
// receipt whose Groups follow the given order. All inputs must describe the
// same round (scheme, key, iteration, batch, inputs).
func FoldReceipts(rs []*Receipt) (*Receipt, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("commit: nothing to fold")
	}
	head := rs[0]
	out := &Receipt{
		Scheme:   head.Scheme,
		RoundKey: head.RoundKey,
		Iter:     head.Iter,
		Batch:    head.Batch,
		Gram:     head.Gram,
		Inputs:   head.Inputs,
	}
	for i, r := range rs {
		if r.Scheme != head.Scheme || r.RoundKey != head.RoundKey || r.Iter != head.Iter ||
			r.Batch != head.Batch || r.Gram != head.Gram || !field.EqualVec(r.Inputs, head.Inputs) {
			return nil, fmt.Errorf("commit: group receipt %d describes a different round", i)
		}
		out.Groups = append(out.Groups, r.Groups...)
	}
	return out, nil
}
