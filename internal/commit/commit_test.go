package commit

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/poly"
)

// codedShard returns the Lagrange-coded shard of x for evaluation point
// alpha: Σ_k ℓ_k(alpha)·X_k over the padded split into k blocks — the same
// encoding every master in this repo hands its workers.
func codedShard(f *field.Field, x *fieldmat.Matrix, k int, alpha field.Elem) *fieldmat.Matrix {
	blocks := fieldmat.SplitRows(fieldmat.PadRows(x, k), k)
	wt := poly.InterpWeights(f, f.DistinctPoints(k, 1), alpha)
	shard := fieldmat.NewMatrix(blocks[0].Rows, x.Cols)
	for kk := range blocks {
		shard.AXPY(f, wt[kk], blocks[kk])
	}
	return shard
}

// honestMatVec builds an issuer plus a fully honest matvec round: n coded
// workers, a correct decode, outputs trimmed to the unpadded row count.
func honestMatVec(seed int64, rows, cols, k, n, batch int) (*Issuer, Round) {
	f := field.Default()
	rng := rand.New(rand.NewSource(seed))
	x := fieldmat.Rand(f, rng, rows, cols)
	is := NewIssuer(f, "test")
	is.Commit("w", x)

	b := (rows + k - 1) / k
	alphas := f.DistinctPoints(n, 1)
	inputs := f.RandVec(rng, batch*cols)
	outputs := make([][]field.Elem, batch)
	for c := 0; c < batch; c++ {
		outputs[c] = fieldmat.MatVec(f, x, inputs[c*cols:(c+1)*cols])
	}
	workers := make([]RoundWorker, n)
	for i := range workers {
		shard := codedShard(f, x, k, alphas[i])
		out := make([]field.Elem, 0, batch*b)
		for c := 0; c < batch; c++ {
			out = append(out, fieldmat.MatVec(f, shard, inputs[c*cols:(c+1)*cols])...)
		}
		workers[i] = RoundWorker{ID: i, Alpha: alphas[i], Output: out, Commit: OutputRoot(out)}
	}
	return is, Round{
		Key: "w", Iter: 3, Batch: batch, K: k, BlockRows: b,
		Inputs: inputs, Outputs: outputs, Workers: workers,
	}
}

// honestGram builds an issuer plus an honest Gram round: workers compute
// X̃·X̃ᵀ of their coded shard, the decode recovers the K block Grams X_k·X_kᵀ.
func honestGram(seed int64, rows, cols, k, n int) (*Issuer, Round) {
	f := field.Default()
	rng := rand.New(rand.NewSource(seed))
	x := fieldmat.Rand(f, rng, rows, cols)
	is := NewIssuer(f, "test-gram")
	is.Commit("g", x)

	blocks := fieldmat.SplitRows(fieldmat.PadRows(x, k), k)
	b := blocks[0].Rows
	decoded := make([]field.Elem, 0, k*b*b)
	for kk := range blocks {
		decoded = append(decoded, fieldmat.MatMul(f, blocks[kk], blocks[kk].Transpose()).Data...)
	}
	alphas := f.DistinctPoints(n, 1)
	workers := make([]RoundWorker, n)
	for i := range workers {
		shard := codedShard(f, x, k, alphas[i])
		out := fieldmat.MatMul(f, shard, shard.Transpose()).Data
		workers[i] = RoundWorker{ID: i, Alpha: alphas[i], Output: out, Commit: OutputRoot(out)}
	}
	return is, Round{
		Key: "g", Iter: 0, Batch: 1, Gram: true, K: k, BlockRows: b,
		Outputs: [][]field.Elem{decoded}, Workers: workers,
	}
}

func mustIssue(t *testing.T, is *Issuer, rd Round) *Receipt {
	t.Helper()
	rec, err := is.Issue(rd)
	if err != nil {
		t.Fatalf("Issue: %v", err)
	}
	return rec
}

func TestMerkleTreePaths(t *testing.T) {
	for n := 1; n <= 9; n++ {
		vals := make([]field.Elem, n)
		leaves := make([]Hash, n)
		for i := range vals {
			vals[i] = field.Elem(100*n + i)
			leaves[i] = OutputLeaf(i, vals[i])
		}
		tree := NewTree(leaves)
		for i := 0; i < n; i++ {
			if !VerifyPath(tree.Root(), n, i, leaves[i], tree.Path(i)) {
				t.Fatalf("n=%d: honest path for leaf %d rejected", n, i)
			}
			if VerifyPath(tree.Root(), n, i, OutputLeaf(i, vals[i]+1), tree.Path(i)) {
				t.Fatalf("n=%d: flipped leaf %d accepted", n, i)
			}
			if i != n-1 && VerifyPath(tree.Root(), n, i+1, leaves[i], tree.Path(i)) {
				t.Fatalf("n=%d: leaf %d accepted at wrong index", n, i)
			}
			if p := tree.Path(i); len(p) > 0 && VerifyPath(tree.Root(), n, i, leaves[i], p[:len(p)-1]) {
				t.Fatalf("n=%d: truncated path for leaf %d accepted", n, i)
			}
		}
	}
}

func TestTranscriptDeterministic(t *testing.T) {
	f := field.Default()
	mk := func() *Transcript {
		tr := NewTranscript("test/domain")
		tr.AbsorbString("label", "payload")
		tr.AbsorbInt("count", 42)
		return tr
	}
	a, b := mk(), mk()
	ea := a.ChallengeElems(f, "c", 33)
	eb := b.ChallengeElems(f, "c", 33)
	if !field.EqualVec(ea, eb) {
		t.Fatal("identical transcripts squeezed different challenges")
	}
	// The draw itself advances the state: a second draw under the same label
	// must be independent of the first.
	ea2 := a.ChallengeElems(f, "c", 33)
	eb2 := b.ChallengeElems(f, "c", 33)
	if field.EqualVec(ea, ea2) {
		t.Fatal("repeated draw under the same label did not advance the state")
	}
	if !field.EqualVec(ea2, eb2) {
		t.Fatal("identical transcripts diverged on the second draw")
	}
	ia := a.ChallengeIndices("idx", 64, 7)
	ib := b.ChallengeIndices("idx", 64, 7)
	for i, v := range ia {
		if v < 0 || v >= 7 {
			t.Fatalf("challenge index %d out of bounds", v)
		}
		if v != ib[i] {
			t.Fatal("identical transcripts squeezed different indices")
		}
	}
	// Diverging absorbs must diverge the stream.
	c := NewTranscript("test/domain")
	c.AbsorbString("label", "payload!")
	c.AbsorbInt("count", 42)
	if field.EqualVec(mkChallenges(f, c), eb) {
		t.Fatal("different absorbs produced identical challenges")
	}
}

func mkChallenges(f *field.Field, tr *Transcript) []field.Elem {
	return tr.ChallengeElems(f, "c", 33)
}

func TestMatVecReceiptVerifies(t *testing.T) {
	is, rd := honestMatVec(1, 18, 7, 3, 5, 2)
	rec := mustIssue(t, is, rd)
	if err := rec.Verify(); err != nil {
		t.Fatalf("honest receipt rejected: %v", err)
	}
	if got := rec.FoldedDigest(); got != FoldDigests([]Digest{rec.Groups[0].Digest}) {
		t.Fatalf("folded digest mismatch: %s", got)
	}
}

func TestUnevenSplitAndBatchOne(t *testing.T) {
	// 10 rows over 4 blocks: last block is half padding.
	is, rd := honestMatVec(2, 10, 5, 4, 6, 1)
	rec := mustIssue(t, is, rd)
	if err := rec.Verify(); err != nil {
		t.Fatalf("uneven-split receipt rejected: %v", err)
	}
}

func TestGramReceiptVerifies(t *testing.T) {
	is, rd := honestGram(3, 12, 6, 3, 5)
	rec := mustIssue(t, is, rd)
	if err := rec.Verify(); err != nil {
		t.Fatalf("honest gram receipt rejected: %v", err)
	}
}

func TestFoldedReceiptVerifies(t *testing.T) {
	// Two shard groups of the same round: same scheme/key/iter/inputs,
	// different committed matrices.
	isA, rdA := honestMatVec(4, 16, 6, 2, 4, 2)
	isB, rdB := honestMatVec(5, 9, 6, 3, 4, 2)
	rdB.Inputs = rdA.Inputs
	// Group B's outputs must match ITS matrix under group A's inputs.
	xB := isB.mcs["w"].Matrix()
	for c := 0; c < rdB.Batch; c++ {
		rdB.Outputs[c] = fieldmat.MatVec(isB.f, xB, rdB.Inputs[c*xB.Cols:(c+1)*xB.Cols])
	}
	for i, w := range rdB.Workers {
		shard := codedShard(isB.f, xB, rdB.K, w.Alpha)
		out := make([]field.Elem, 0, rdB.Batch*rdB.BlockRows)
		for c := 0; c < rdB.Batch; c++ {
			out = append(out, fieldmat.MatVec(isB.f, shard, rdB.Inputs[c*xB.Cols:(c+1)*xB.Cols])...)
		}
		rdB.Workers[i].Output = out
		rdB.Workers[i].Commit = OutputRoot(out)
	}
	ra := mustIssue(t, isA, rdA)
	rb := mustIssue(t, isB, rdB)
	folded, err := FoldReceipts([]*Receipt{ra, rb})
	if err != nil {
		t.Fatalf("FoldReceipts: %v", err)
	}
	if len(folded.Groups) != 2 {
		t.Fatalf("folded receipt has %d groups", len(folded.Groups))
	}
	if err := folded.Verify(); err != nil {
		t.Fatalf("folded receipt rejected: %v", err)
	}
	want := FoldDigests([]Digest{ra.Groups[0].Digest, rb.Groups[0].Digest})
	if folded.FoldedDigest() != want {
		t.Fatal("folded digest does not cover both groups")
	}
	rb.Iter = 99
	if _, err := FoldReceipts([]*Receipt{ra, rb}); err == nil {
		t.Fatal("folding receipts of different rounds succeeded")
	}
}

func TestTamperedWorkerIdentified(t *testing.T) {
	for _, gram := range []bool{false, true} {
		var is *Issuer
		var rd Round
		if gram {
			is, rd = honestGram(6, 12, 6, 3, 5)
		} else {
			is, rd = honestMatVec(6, 18, 7, 3, 5, 2)
		}
		// Worker 2 lied: its output is corrupted, but the decode (in the
		// over-budget fallback story) still published these outputs.
		rd.Workers[2].Output[1] = is.f.Add(rd.Workers[2].Output[1], 1)
		rec := mustIssue(t, is, rd)
		err := rec.Verify()
		var bwe *BadWorkersError
		if !errors.As(err, &bwe) {
			t.Fatalf("gram=%v: want BadWorkersError, got %v", gram, err)
		}
		if len(bwe.Workers) != 1 || bwe.Workers[0] != (WorkerRef{Group: 0, Worker: 2}) {
			t.Fatalf("gram=%v: wrong culprits %v", gram, bwe.Workers)
		}
	}
}

func TestTamperedReceiptRejected(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(r *Receipt)
	}{
		{"decoded output", func(r *Receipt) { r.Groups[0].Outputs[0][0]++ }},
		{"input", func(r *Receipt) { r.Inputs[0]++ }},
		{"scheme", func(r *Receipt) { r.Scheme = "other" }},
		{"digest root", func(r *Receipt) { r.Groups[0].Digest.Root[5] ^= 1 }},
		{"worker aggregate", func(r *Receipt) { r.Groups[0].Workers[0].Aggregates[0]++ }},
		{"worker root", func(r *Receipt) { r.Groups[0].Workers[0].Root[0] ^= 1 }},
		{"opened combination", func(r *Receipt) { r.Groups[0].U[0][0]++ }},
		{"column value", func(r *Receipt) { r.Groups[0].Columns[0].Values[0]++ }},
		{"leaf value", func(r *Receipt) { r.Groups[0].Workers[0].Leaves[0].Value++ }},
	}
	for _, m := range mutations {
		is, rd := honestMatVec(7, 18, 7, 3, 5, 2)
		rec := mustIssue(t, is, rd)
		m.mut(rec)
		if err := rec.Verify(); err == nil {
			t.Errorf("mutation %q still verifies", m.name)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, gram := range []bool{false, true} {
		var is *Issuer
		var rd Round
		if gram {
			is, rd = honestGram(8, 12, 6, 3, 5)
		} else {
			is, rd = honestMatVec(8, 18, 7, 3, 5, 2)
		}
		rec := mustIssue(t, is, rd)
		enc := EncodeReceipt(rec)
		dec, err := DecodeReceipt(enc)
		if err != nil {
			t.Fatalf("gram=%v: DecodeReceipt: %v", gram, err)
		}
		if !bytes.Equal(EncodeReceipt(dec), enc) {
			t.Fatalf("gram=%v: re-encoding is not byte-identical", gram)
		}
		if err := dec.Verify(); err != nil {
			t.Fatalf("gram=%v: decoded receipt rejected: %v", gram, err)
		}
		if _, err := DecodeReceipt(enc[:len(enc)-1]); err == nil {
			t.Fatal("truncated encoding decoded")
		}
		if _, err := DecodeReceipt(append(append([]byte(nil), enc...), 0)); err == nil {
			t.Fatal("trailing byte accepted")
		}
	}
	// Non-minimal varint: 0x80 0x00 encodes 0 in two bytes.
	if _, err := DecodeReceipt([]byte{'A', 'V', 'R', '1', 0x80, 0x00}); err == nil {
		t.Fatal("non-minimal varint accepted")
	}
	if _, err := DecodeReceipt([]byte{'X', 'V', 'R', '1'}); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestIssueRejectsMalformedRounds(t *testing.T) {
	is, rd := honestMatVec(9, 18, 7, 3, 5, 2)
	bad := rd
	bad.Key = "never-committed"
	if _, err := is.Issue(bad); err == nil {
		t.Fatal("uncommitted key accepted")
	}
	bad = rd
	bad.Workers = nil
	if _, err := is.Issue(bad); err == nil {
		t.Fatal("workerless round accepted")
	}
	bad = rd
	bad.Workers = append([]RoundWorker(nil), rd.Workers...)
	bad.Workers[1].Alpha = bad.Workers[0].Alpha
	if _, err := is.Issue(bad); err == nil {
		t.Fatal("duplicate evaluation points accepted")
	}
	bad = rd
	bad.Workers = append([]RoundWorker(nil), rd.Workers...)
	bad.Workers[0].Commit = []byte{1, 2, 3}
	if _, err := is.Issue(bad); err == nil {
		t.Fatal("short worker commitment accepted")
	}
}
