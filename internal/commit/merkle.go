// Package commit is the committed-verification plane of the repository: a
// Merkle commitment over the master's data matrix (columns of a rate-1/2
// systematic Reed–Solomon row extension), Merkle commitments over each
// worker's coded output, a deterministic Fiat–Shamir transcript deriving
// challenge scalars from everything absorbed so far, and a serializable
// per-round Receipt a tenant can verify fully offline against nothing but
// the public matrix digest.
//
// The construction follows the DECS/LVCS shape of SNIPPETS.md §1 (SPRUCE):
// commit to an encoding of the data, derive random linear-combination
// challenges by hashing the commitments, open the combinations, and
// spot-check them against Merkle-authenticated leaves. See DESIGN.md §10
// for the exact mapping and the soundness bound.
package commit

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/field"
)

// HashSize is the byte length of every digest in this package (SHA-256).
const HashSize = sha256.Size

// Hash is one SHA-256 digest.
type Hash [HashSize]byte

// Leaf and interior nodes hash under distinct first bytes so an interior
// node can never be reinterpreted as a leaf (second-preimage hardening);
// leaves additionally carry a domain string ("col" for matrix columns,
// "out" for worker output entries) and their index, so no leaf of one tree
// collides with a leaf of another.
const (
	leafTag = 0x00
	nodeTag = 0x01
)

func putUvarint(h interface{ Write([]byte) (int, error) }, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	h.Write(buf[:n])
}

func hashLeaf(domain string, index int, payload []byte) Hash {
	h := sha256.New()
	h.Write([]byte{leafTag})
	putUvarint(h, uint64(len(domain)))
	h.Write([]byte(domain))
	putUvarint(h, uint64(index))
	h.Write(payload)
	var out Hash
	h.Sum(out[:0])
	return out
}

func hashNode(l, r Hash) Hash {
	h := sha256.New()
	h.Write([]byte{nodeTag})
	h.Write(l[:])
	h.Write(r[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// elemBytes serialises field elements as fixed 8-byte little-endian words —
// the canonical byte form used by every leaf and every transcript absorb.
func elemBytes(vs []field.Elem) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

// ColumnLeaf hashes one committed matrix column (domain "col").
func ColumnLeaf(index int, values []field.Elem) Hash {
	return hashLeaf("col", index, elemBytes(values))
}

// OutputLeaf hashes one entry of a worker's coded output (domain "out").
func OutputLeaf(index int, value field.Elem) Hash {
	return hashLeaf("out", index, elemBytes([]field.Elem{value}))
}

// Tree is a Merkle tree over a fixed leaf sequence. An odd node at any
// level is promoted unchanged to the next level (no self-pairing), so path
// verification needs the leaf count — which every consumer in this package
// carries alongside the root.
type Tree struct {
	// levels[0] are the leaf hashes; the last level is the single root.
	levels [][]Hash
}

// NewTree builds the tree; it panics on zero leaves (nothing in this
// package commits to an empty sequence).
func NewTree(leaves []Hash) *Tree {
	if len(leaves) == 0 {
		panic("commit: merkle tree needs at least one leaf")
	}
	levels := [][]Hash{append([]Hash(nil), leaves...)}
	for cur := levels[0]; len(cur) > 1; {
		next := make([]Hash, 0, (len(cur)+1)/2)
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, hashNode(cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		levels = append(levels, next)
		cur = next
	}
	return &Tree{levels: levels}
}

// Root returns the tree root.
func (t *Tree) Root() Hash { return t.levels[len(t.levels)-1][0] }

// Leaves returns the leaf count.
func (t *Tree) Leaves() int { return len(t.levels[0]) }

// Path returns the authentication path for leaf i: the sibling hash at each
// level, bottom up, with levels where the node is an unpaired promotion
// simply skipped.
func (t *Tree) Path(i int) []Hash {
	var path []Hash
	for _, lvl := range t.levels[:len(t.levels)-1] {
		if sib := i ^ 1; sib < len(lvl) {
			path = append(path, lvl[sib])
		}
		i >>= 1
	}
	return path
}

// VerifyPath checks that leaf sits at index within a tree of the given leaf
// count whose root is root. The path must be exactly as long as the number
// of paired levels — extra or missing siblings fail.
func VerifyPath(root Hash, leaves, index int, leaf Hash, path []Hash) bool {
	if leaves < 1 || index < 0 || index >= leaves {
		return false
	}
	cur, pi := leaf, 0
	for cnt := leaves; cnt > 1; cnt = (cnt + 1) / 2 {
		if sib := index ^ 1; sib < cnt {
			if pi >= len(path) {
				return false
			}
			if index&1 == 0 {
				cur = hashNode(cur, path[pi])
			} else {
				cur = hashNode(path[pi], cur)
			}
			pi++
		}
		index >>= 1
	}
	return pi == len(path) && cur == root
}

// outputTree builds the Merkle tree a worker commits its coded output under:
// one "out"-domain leaf per output entry.
func outputTree(out []field.Elem) *Tree {
	leaves := make([]Hash, len(out))
	for i, v := range out {
		leaves[i] = OutputLeaf(i, v)
	}
	return NewTree(leaves)
}

// OutputRoot is the worker-side commitment to a coded output: the root of
// the output tree, as raw bytes ready for a wire message. Executors call
// this before the result leaves the worker.
func OutputRoot(out []field.Elem) []byte {
	if len(out) == 0 {
		return nil
	}
	r := outputTree(out).Root()
	return r[:]
}
