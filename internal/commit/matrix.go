package commit

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/poly"
)

// Digest is the public identity of a committed matrix: everything a
// verifier needs to check openings against it, and nothing else. Masters
// publish it (avccserve exposes it on /statz); tenants pin it the way they
// would pin a TLS certificate.
type Digest struct {
	// Root is the Merkle root over the Ext committed columns.
	Root Hash
	// Rows × Cols are the UNCOMMITTED matrix dimensions — the matrix is
	// committed unpadded, so the digest is stable across AVCC re-codes
	// (which only change the zero padding, never the data).
	Rows, Cols int
	// Ext is the committed column count: each row is extended from Cols to
	// Ext symbols of a systematic Reed–Solomon code (rate 1/2), which is
	// what makes challenge linear combinations spot-checkable.
	Ext int
	// Q is the field modulus the elements live in.
	Q uint64
}

// Points returns the evaluation points of the row code: the committed
// column j holds each row's codeword value at Points()[j], with the first
// Cols points systematic.
func (d Digest) Points(f *field.Field) []field.Elem {
	return f.DistinctPoints(d.Ext, 1)
}

// validate checks internal consistency against a field built from Q.
func (d Digest) validate() error {
	switch {
	case d.Rows < 1 || d.Cols < 1:
		return fmt.Errorf("commit: digest has impossible dimensions %dx%d", d.Rows, d.Cols)
	case d.Ext != 2*d.Cols:
		return fmt.Errorf("commit: digest extension %d is not twice the column count %d", d.Ext, d.Cols)
	}
	return nil
}

// MatrixCommitment is the issuer-side state for one committed matrix: the
// matrix itself, every committed column (systematic + extension), and the
// Merkle tree over them. Built once per round key; rounds only read it.
type MatrixCommitment struct {
	f      *field.Field
	x      *fieldmat.Matrix
	cols   [][]field.Elem // Ext columns, each of length Rows
	tree   *Tree
	digest Digest
}

// CommitMatrix extends each row of x from Cols to 2·Cols Reed–Solomon
// symbols and Merkle-commits the resulting columns. Cost: O(Rows·Cols²)
// field multiplies plus O(Rows·Cols) hashing — a one-time setup cost on the
// order of a single uncoded round, amortised over every receipt issued.
func CommitMatrix(f *field.Field, x *fieldmat.Matrix) *MatrixCommitment {
	r, c := x.Rows, x.Cols
	if r < 1 || c < 1 {
		panic("commit: cannot commit an empty matrix")
	}
	m := 2 * c
	points := f.DistinctPoints(m, 1)
	cols := make([][]field.Elem, m)
	for j := 0; j < c; j++ {
		col := make([]field.Elem, r)
		for i := 0; i < r; i++ {
			col[i] = x.At(i, j)
		}
		cols[j] = col
	}
	// Each extension column e holds, per row, the row interpolant evaluated
	// at points[e]; one weight vector per target, shared by every row.
	weights := poly.InterpWeightsBatch(f, points[:c], points[c:])
	for e := c; e < m; e++ {
		w := weights[e-c]
		col := make([]field.Elem, r)
		for i := 0; i < r; i++ {
			col[i] = f.Dot(w, x.Row(i))
		}
		cols[e] = col
	}
	leaves := make([]Hash, m)
	for e := range cols {
		leaves[e] = ColumnLeaf(e, cols[e])
	}
	tree := NewTree(leaves)
	return &MatrixCommitment{
		f:    f,
		x:    x,
		cols: cols,
		tree: tree,
		digest: Digest{
			Root: tree.Root(),
			Rows: r, Cols: c, Ext: m,
			Q: f.Q(),
		},
	}
}

// Digest returns the public digest.
func (mc *MatrixCommitment) Digest() Digest { return mc.digest }

// Matrix returns the committed matrix (issuer-side; not part of any proof).
func (mc *MatrixCommitment) Matrix() *fieldmat.Matrix { return mc.x }

// OpenColumn produces the Merkle-authenticated opening of column e.
func (mc *MatrixCommitment) OpenColumn(e int) ColumnOpening {
	return ColumnOpening{
		Index:  e,
		Values: field.CopyVec(mc.cols[e]),
		Path:   mc.tree.Path(e),
	}
}

// FoldDigests condenses the per-group digests of a sharded deployment into
// one hex fingerprint — the single value a tenant pins. Order matters (it
// is the shard-plan group order); a single-group deployment folds its one
// digest the same way so the fingerprint format is uniform.
func FoldDigests(digests []Digest) string {
	h := sha256.New()
	h.Write([]byte("avcc/commit/digest-fold/v1"))
	putUvarint(h, uint64(len(digests)))
	for _, d := range digests {
		h.Write(d.Root[:])
		putUvarint(h, uint64(d.Rows))
		putUvarint(h, uint64(d.Cols))
		putUvarint(h, uint64(d.Ext))
		putUvarint(h, d.Q)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DigestProvider is implemented by masters that issue receipts: it exposes
// the public digest of every committed round key, one digest per shard
// group in group order. cmd/avccserve publishes these on /statz, and
// cmd/avccverify compares a receipt against the folded fingerprint.
type DigestProvider interface {
	ReceiptDigests() map[string][]Digest
}
