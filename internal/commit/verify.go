package commit

import (
	"fmt"

	"repro/internal/field"
	"repro/internal/poly"
)

// WorkerRef names one worker inside a (possibly sharded) receipt.
type WorkerRef struct {
	// Group is the index into Receipt.Groups; Worker the group-local ID.
	Group, Worker int
}

// BadWorkersError is the verification outcome that identifies culprits: the
// receipt's committed data does not support these workers' claimed
// contributions. Any other verification failure returns a plain error.
type BadWorkersError struct {
	Workers []WorkerRef
}

// Error implements error.
func (e *BadWorkersError) Error() string {
	return fmt.Sprintf("commit: receipt rejected: %d worker result(s) inconsistent with the committed data: %v",
		len(e.Workers), e.Workers)
}

// Verify checks the whole receipt offline: transcript replay, Merkle
// authentication, digest-binding of the opened linear combinations, the
// full-length Freivalds identity on the decoded outputs, and per-worker
// attribution. It returns nil iff every decoded output in the receipt is
// (up to the soundness bound — see the ColumnSamples comment) exactly what
// the committed matrices and the embedded inputs produce; when specific
// workers' contributions are inconsistent it returns *BadWorkersError
// naming them.
//
// maxSplit and maxBatch bound the split count and coalesced batch a receipt
// may claim — orders of magnitude above any deployment, they exist so a
// hostile receipt cannot make the verifier allocate unbounded challenge
// vectors.
const (
	maxSplit = 1 << 16
	maxBatch = 1 << 16
)

// Verify trusts nothing but the receipt bytes. Callers pin the embedded
// digests by comparing FoldedDigest against a published value.
func (r *Receipt) Verify() error {
	if r.Batch < 1 || r.Batch > maxBatch {
		return fmt.Errorf("commit: receipt batch %d", r.Batch)
	}
	if len(r.Groups) == 0 {
		return fmt.Errorf("commit: receipt has no groups")
	}
	if r.Gram && (r.Batch != 1 || len(r.Inputs) != 0) {
		return fmt.Errorf("commit: gram receipt must have batch 1 and no inputs")
	}
	var bad []WorkerRef
	mismatch := false
	for gi, g := range r.Groups {
		groupBad, groupMismatch, err := g.verify(r)
		if err != nil {
			return fmt.Errorf("commit: group %d: %w", gi, err)
		}
		for _, id := range groupBad {
			bad = append(bad, WorkerRef{Group: gi, Worker: id})
		}
		mismatch = mismatch || groupMismatch
	}
	if len(bad) > 0 {
		return &BadWorkersError{Workers: bad}
	}
	if mismatch {
		return fmt.Errorf("commit: decoded output is inconsistent with the committed data (no single worker identified)")
	}
	return nil
}

// canonical reports whether every element is a reduced residue mod q.
func canonical(q uint64, vs []field.Elem) bool {
	for _, v := range vs {
		if uint64(v) >= q {
			return false
		}
	}
	return true
}

// verify checks one group. Structural or cryptographic failures (bad
// shapes, broken Merkle paths, openings that do not match the transcript's
// derived indices) are returned as err. The two semantic outcomes are
// returned separately: badWorkers lists workers whose claimed aggregates
// disagree with the digest-bound expectation, and outputMismatch reports
// the decoded output failing its Freivalds identity.
func (g *GroupReceipt) verify(r *Receipt) (badWorkers []int, outputMismatch bool, err error) {
	d := g.Digest
	if err := d.validate(); err != nil {
		return nil, false, err
	}
	f, err := field.New(d.Q)
	if err != nil {
		return nil, false, fmt.Errorf("invalid modulus %d: %w", d.Q, err)
	}
	// DistinctPoints needs strictly fewer points than field elements, both
	// for the committed columns and the k interpolation nodes.
	if uint64(d.Ext) >= d.Q {
		return nil, false, fmt.Errorf("extension %d does not fit in field of size %d", d.Ext, d.Q)
	}
	k, b := g.K, g.BlockRows
	if k > maxSplit || uint64(k) >= d.Q {
		return nil, false, fmt.Errorf("split count %d out of range", k)
	}
	if k < 1 || b < 1 || k*b < d.Rows {
		return nil, false, fmt.Errorf("split %dx%d cannot cover %d rows", k, b, d.Rows)
	}
	if b != (d.Rows+k-1)/k {
		return nil, false, fmt.Errorf("block rows %d, want ceil(%d/%d)", b, d.Rows, k)
	}

	// Shape and canonicality of everything that will be absorbed.
	wantOut := r.Batch * b
	wantOutputs, wantLen, wantAggs := r.Batch, d.Rows, r.Batch
	if r.Gram {
		wantOut = b * b
		wantOutputs, wantLen, wantAggs = 1, k*b*b, 1
	}
	if !r.Gram && len(r.Inputs) != r.Batch*d.Cols {
		return nil, false, fmt.Errorf("inputs have %d elems, want %d", len(r.Inputs), r.Batch*d.Cols)
	}
	if !canonical(d.Q, r.Inputs) {
		return nil, false, fmt.Errorf("inputs contain non-canonical elements")
	}
	if len(g.Outputs) != wantOutputs {
		return nil, false, fmt.Errorf("%d outputs, want %d", len(g.Outputs), wantOutputs)
	}
	for c, out := range g.Outputs {
		if len(out) != wantLen || !canonical(d.Q, out) {
			return nil, false, fmt.Errorf("output %d malformed", c)
		}
	}
	if len(g.Workers) == 0 {
		return nil, false, fmt.Errorf("no workers listed")
	}
	seenAlpha := make(map[field.Elem]bool, len(g.Workers))
	for _, w := range g.Workers {
		if uint64(w.Alpha) >= d.Q || seenAlpha[w.Alpha] {
			return nil, false, fmt.Errorf("worker %d has invalid or duplicate evaluation point", w.ID)
		}
		seenAlpha[w.Alpha] = true
		if w.OutLen != wantOut {
			return nil, false, fmt.Errorf("worker %d commits %d outputs, want %d", w.ID, w.OutLen, wantOut)
		}
		if len(w.Aggregates) != wantAggs || !canonical(d.Q, w.Aggregates) {
			return nil, false, fmt.Errorf("worker %d aggregates malformed", w.ID)
		}
	}
	checkCombos := func(name string, vs [][]field.Elem, want int) error {
		if len(vs) != want {
			return fmt.Errorf("%d %s combinations, want %d", len(vs), name, want)
		}
		for _, v := range vs {
			if len(v) != d.Cols || !canonical(d.Q, v) {
				return fmt.Errorf("%s combination malformed", name)
			}
		}
		return nil
	}
	if err := checkCombos("u", g.U, k); err != nil {
		return nil, false, err
	}
	if err := checkCombos("v", g.V, k); err != nil {
		return nil, false, err
	}
	want2 := 0
	if r.Gram {
		want2 = k
	}
	if err := checkCombos("u2", g.U2, want2); err != nil {
		return nil, false, err
	}
	if err := checkCombos("v2", g.V2, want2); err != nil {
		return nil, false, err
	}

	// Replay the transcript: the challenges and the opening indices are
	// recomputed, so every absorbed byte above is load-bearing — any
	// mutation lands the samples on different columns/leaves than the
	// receipt opened.
	t := g.transcriptPrelude(r)
	rT, phi, chi, phi2 := g.drawChallenges(t, f, r.Gram)
	colIdx, leafIdx := g.transcriptOpenings(t)

	// Column openings: exactly the derived indices, Merkle-authenticated,
	// and consistent with the claimed linear combinations.
	if len(g.Columns) != len(colIdx) {
		return nil, false, fmt.Errorf("%d column openings, want %d", len(g.Columns), len(colIdx))
	}
	points := d.Points(f)
	for i, co := range g.Columns {
		e := colIdx[i]
		if co.Index != e {
			return nil, false, fmt.Errorf("column opening %d is for index %d, transcript demands %d", i, co.Index, e)
		}
		if len(co.Values) != d.Rows || !canonical(d.Q, co.Values) {
			return nil, false, fmt.Errorf("column %d opening malformed", e)
		}
		if !VerifyPath(d.Root, d.Ext, e, ColumnLeaf(e, co.Values), co.Path) {
			return nil, false, fmt.Errorf("column %d fails Merkle authentication", e)
		}
		// The opened combinations evaluated at this column's point must
		// equal the same challenge combination of the column itself.
		var weights []field.Elem
		if e >= d.Cols {
			weights = poly.InterpWeights(f, points[:d.Cols], points[e])
		}
		at := func(vec []field.Elem) field.Elem {
			if e < d.Cols {
				return vec[e]
			}
			return f.Dot(weights, vec)
		}
		colAt := func(coeff []field.Elem, perBlock bool, kk int) field.Elem {
			lo, hi := kk*b, (kk+1)*b
			if hi > d.Rows {
				hi = d.Rows
			}
			var acc field.Elem
			for p := lo; p < hi; p++ {
				c := coeff[p-lo]
				if !perBlock {
					c = coeff[p]
				}
				acc = f.MulAdd(acc, c, co.Values[p])
			}
			return acc
		}
		for kk := 0; kk < k; kk++ {
			if at(g.U[kk]) != colAt(rT, false, kk) {
				return nil, false, fmt.Errorf("column %d contradicts the r-combination of block %d", e, kk)
			}
			if at(g.V[kk]) != colAt(phi, true, kk) {
				return nil, false, fmt.Errorf("column %d contradicts the phi-combination of block %d", e, kk)
			}
			if r.Gram {
				if at(g.U2[kk]) != colAt(chi, false, kk) {
					return nil, false, fmt.Errorf("column %d contradicts the chi-combination of block %d", e, kk)
				}
				if at(g.V2[kk]) != colAt(phi2, true, kk) {
					return nil, false, fmt.Errorf("column %d contradicts the phi2-combination of block %d", e, kk)
				}
			}
		}
	}

	// Worker leaf openings: exactly the derived indices, each
	// Merkle-authenticated against the worker's committed root.
	for i, w := range g.Workers {
		if len(w.Leaves) != len(leafIdx[i]) {
			return nil, false, fmt.Errorf("worker %d has %d leaf openings, want %d", w.ID, len(w.Leaves), len(leafIdx[i]))
		}
		for j, lo := range w.Leaves {
			idx := leafIdx[i][j]
			if lo.Index != idx {
				return nil, false, fmt.Errorf("worker %d leaf opening %d is for index %d, transcript demands %d", w.ID, j, lo.Index, idx)
			}
			if uint64(lo.Value) >= d.Q {
				return nil, false, fmt.Errorf("worker %d leaf %d non-canonical", w.ID, idx)
			}
			if !VerifyPath(w.Root, w.OutLen, idx, OutputLeaf(idx, lo.Value), lo.Path) {
				return nil, false, fmt.Errorf("worker %d leaf %d fails Merkle authentication", w.ID, idx)
			}
		}
	}

	// Full-length Freivalds on the decoded output: with independent
	// per-block challenge segments r̃_k, ANY corruption anywhere in the
	// decoded output escapes with probability ≤ 1/q.
	if r.Gram {
		gFlat := g.Outputs[0]
		for kk := 0; kk < k; kk++ {
			ghat := gFlat[kk*b*b : (kk+1)*b*b]
			chiK := chi[kk*b : (kk+1)*b]
			var lhs field.Elem
			for p := 0; p < b; p++ {
				lhs = f.MulAdd(lhs, rT[kk*b+p], f.Dot(ghat[p*b:(p+1)*b], chiK))
			}
			if lhs != f.Dot(g.U[kk], g.U2[kk]) {
				outputMismatch = true
			}
		}
	} else {
		for c := 0; c < r.Batch; c++ {
			y := g.Outputs[c]
			w := r.Inputs[c*d.Cols : (c+1)*d.Cols]
			for kk := 0; kk < k; kk++ {
				lo, hi := kk*b, (kk+1)*b
				if hi > d.Rows {
					hi = d.Rows
				}
				var lhs field.Elem
				for p := lo; p < hi; p++ {
					lhs = f.MulAdd(lhs, rT[p], y[p])
				}
				if lhs != f.Dot(g.U[kk], w) {
					outputMismatch = true
				}
			}
		}
	}

	// Attribution: each listed worker's claimed φ-aggregate must match the
	// digest-bound expectation Σ_k ℓ_k(α_i)·(φᵀX_k)·w — the coded shard's
	// φ-mask, predictable from the commitment alone because Lagrange
	// encoding is linear over the data blocks.
	betas := f.DistinctPoints(k, 1)
	if r.Gram {
		for i, w := range g.Workers {
			wt := poly.InterpWeights(f, betas, w.Alpha)
			sumV := make([]field.Elem, d.Cols)
			sumV2 := make([]field.Elem, d.Cols)
			for kk := 0; kk < k; kk++ {
				f.AXPY(sumV, wt[kk], g.V[kk])
				f.AXPY(sumV2, wt[kk], g.V2[kk])
			}
			if w.Aggregates[0] != f.Dot(sumV, sumV2) {
				badWorkers = append(badWorkers, g.Workers[i].ID)
			}
		}
	} else {
		// dot[kk][c] = (φᵀX_kk)·w_c, shared across workers.
		dot := make([][]field.Elem, k)
		for kk := 0; kk < k; kk++ {
			dot[kk] = make([]field.Elem, r.Batch)
			for c := 0; c < r.Batch; c++ {
				dot[kk][c] = f.Dot(g.V[kk], r.Inputs[c*d.Cols:(c+1)*d.Cols])
			}
		}
		for i, w := range g.Workers {
			wt := poly.InterpWeights(f, betas, w.Alpha)
			ok := true
			for c := 0; c < r.Batch && ok; c++ {
				var want field.Elem
				for kk := 0; kk < k; kk++ {
					want = f.MulAdd(want, wt[kk], dot[kk][c])
				}
				if w.Aggregates[c] != want {
					ok = false
				}
			}
			if !ok {
				badWorkers = append(badWorkers, g.Workers[i].ID)
			}
		}
	}
	return badWorkers, outputMismatch, nil
}
