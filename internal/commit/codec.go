package commit

import (
	"encoding/binary"
	"fmt"

	"repro/internal/field"
)

// Deterministic binary codec for receipts. The encoding is canonical —
// DecodeReceipt rejects non-minimal varints and trailing bytes, so
// decode∘encode is the identity ON BYTES, which is what the fuzz round-trip
// test pins down. HTTP transports carry base64 of this encoding.
//
// Layout (all integers uvarint, all hashes raw 32 bytes):
//
//	magic "AVR1"
//	scheme, roundKey (length-prefixed strings)
//	iter, batch, gram
//	inputs (length-prefixed elem vector)
//	group count, then per group:
//	  digest{root, rows, cols, ext, q}, k, blockRows
//	  outputs, workers{id, alpha, outLen, root, aggregates, leaves},
//	  u, v, u2, v2, columns
var codecMagic = [4]byte{'A', 'V', 'R', '1'}

type encoder struct{ buf []byte }

func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) raw(b []byte) { e.buf = append(e.buf, b...) }

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.raw([]byte(s))
}

func (e *encoder) elems(vs []field.Elem) {
	e.uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.uvarint(uint64(v))
	}
}

func (e *encoder) hashes(hs []Hash) {
	e.uvarint(uint64(len(hs)))
	for _, h := range hs {
		e.raw(h[:])
	}
}

func (e *encoder) elemMat(vs [][]field.Elem) {
	e.uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.elems(v)
	}
}

// EncodeReceipt serialises r into the canonical byte form.
func EncodeReceipt(r *Receipt) []byte {
	e := &encoder{buf: make([]byte, 0, 4096)}
	e.raw(codecMagic[:])
	e.str(r.Scheme)
	e.str(r.RoundKey)
	e.uvarint(uint64(r.Iter))
	e.uvarint(uint64(r.Batch))
	gram := uint64(0)
	if r.Gram {
		gram = 1
	}
	e.uvarint(gram)
	e.elems(r.Inputs)
	e.uvarint(uint64(len(r.Groups)))
	for _, g := range r.Groups {
		e.raw(g.Digest.Root[:])
		e.uvarint(uint64(g.Digest.Rows))
		e.uvarint(uint64(g.Digest.Cols))
		e.uvarint(uint64(g.Digest.Ext))
		e.uvarint(g.Digest.Q)
		e.uvarint(uint64(g.K))
		e.uvarint(uint64(g.BlockRows))
		e.elemMat(g.Outputs)
		e.uvarint(uint64(len(g.Workers)))
		for _, w := range g.Workers {
			e.uvarint(uint64(w.ID))
			e.uvarint(uint64(w.Alpha))
			e.uvarint(uint64(w.OutLen))
			e.raw(w.Root[:])
			e.elems(w.Aggregates)
			e.uvarint(uint64(len(w.Leaves)))
			for _, l := range w.Leaves {
				e.uvarint(uint64(l.Index))
				e.uvarint(uint64(l.Value))
				e.hashes(l.Path)
			}
		}
		e.elemMat(g.U)
		e.elemMat(g.V)
		e.elemMat(g.U2)
		e.elemMat(g.V2)
		e.uvarint(uint64(len(g.Columns)))
		for _, c := range g.Columns {
			e.uvarint(uint64(c.Index))
			e.elems(c.Values)
			e.hashes(c.Path)
		}
	}
	return e.buf
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("commit: truncated or overlong varint at offset %d", d.off)
	}
	// Canonical form only: the most significant group must be non-zero,
	// otherwise re-encoding would shrink the bytes and the round-trip
	// identity breaks.
	if n > 1 && d.buf[d.off+n-1] == 0 {
		return 0, fmt.Errorf("commit: non-minimal varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

// count reads a length that must plausibly fit in the remaining buffer
// (each counted item occupies at least unit bytes) — the guard that keeps
// fuzzed inputs from forcing huge allocations.
func (d *decoder) count(unit int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(d.remaining()/unit) {
		return 0, fmt.Errorf("commit: length %d exceeds remaining input", v)
	}
	return int(v), nil
}

func (d *decoder) intVal() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(int(^uint(0)>>1)) {
		return 0, fmt.Errorf("commit: integer %d overflows int", v)
	}
	return int(v), nil
}

func (d *decoder) raw(n int) ([]byte, error) {
	if d.remaining() < n {
		return nil, fmt.Errorf("commit: truncated input at offset %d", d.off)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) hash() (Hash, error) {
	var h Hash
	b, err := d.raw(HashSize)
	if err != nil {
		return h, err
	}
	copy(h[:], b)
	return h, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.count(1)
	if err != nil {
		return "", err
	}
	b, err := d.raw(n)
	return string(b), err
}

func (d *decoder) elems() ([]field.Elem, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	out := make([]field.Elem, n)
	for i := range out {
		v, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		out[i] = field.Elem(v)
	}
	return out, nil
}

func (d *decoder) hashes() ([]Hash, error) {
	n, err := d.count(HashSize)
	if err != nil {
		return nil, err
	}
	out := make([]Hash, n)
	for i := range out {
		if out[i], err = d.hash(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *decoder) elemMat() ([][]field.Elem, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	out := make([][]field.Elem, n)
	for i := range out {
		if out[i], err = d.elems(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeReceipt parses the canonical byte form, rejecting malformed,
// non-minimal, and trailing-garbage inputs. It checks structure only;
// semantic validity is Verify's job.
func DecodeReceipt(data []byte) (*Receipt, error) {
	d := &decoder{buf: data}
	magic, err := d.raw(len(codecMagic))
	if err != nil || string(magic) != string(codecMagic[:]) {
		return nil, fmt.Errorf("commit: not a receipt (bad magic)")
	}
	r := &Receipt{}
	if r.Scheme, err = d.str(); err != nil {
		return nil, err
	}
	if r.RoundKey, err = d.str(); err != nil {
		return nil, err
	}
	if r.Iter, err = d.intVal(); err != nil {
		return nil, err
	}
	if r.Batch, err = d.intVal(); err != nil {
		return nil, err
	}
	gram, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if gram > 1 {
		return nil, fmt.Errorf("commit: gram flag %d", gram)
	}
	r.Gram = gram == 1
	if r.Inputs, err = d.elems(); err != nil {
		return nil, err
	}
	groups, err := d.count(1)
	if err != nil {
		return nil, err
	}
	r.Groups = make([]*GroupReceipt, groups)
	for gi := range r.Groups {
		g := &GroupReceipt{}
		if g.Digest.Root, err = d.hash(); err != nil {
			return nil, err
		}
		if g.Digest.Rows, err = d.intVal(); err != nil {
			return nil, err
		}
		if g.Digest.Cols, err = d.intVal(); err != nil {
			return nil, err
		}
		if g.Digest.Ext, err = d.intVal(); err != nil {
			return nil, err
		}
		if g.Digest.Q, err = d.uvarint(); err != nil {
			return nil, err
		}
		if g.K, err = d.intVal(); err != nil {
			return nil, err
		}
		if g.BlockRows, err = d.intVal(); err != nil {
			return nil, err
		}
		if g.Outputs, err = d.elemMat(); err != nil {
			return nil, err
		}
		workers, err := d.count(1)
		if err != nil {
			return nil, err
		}
		g.Workers = make([]WorkerOpening, workers)
		for wi := range g.Workers {
			w := &g.Workers[wi]
			if w.ID, err = d.intVal(); err != nil {
				return nil, err
			}
			alpha, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			w.Alpha = field.Elem(alpha)
			if w.OutLen, err = d.intVal(); err != nil {
				return nil, err
			}
			if w.Root, err = d.hash(); err != nil {
				return nil, err
			}
			if w.Aggregates, err = d.elems(); err != nil {
				return nil, err
			}
			leaves, err := d.count(1)
			if err != nil {
				return nil, err
			}
			w.Leaves = make([]LeafOpening, leaves)
			for li := range w.Leaves {
				l := &w.Leaves[li]
				if l.Index, err = d.intVal(); err != nil {
					return nil, err
				}
				value, err := d.uvarint()
				if err != nil {
					return nil, err
				}
				l.Value = field.Elem(value)
				if l.Path, err = d.hashes(); err != nil {
					return nil, err
				}
			}
		}
		if g.U, err = d.elemMat(); err != nil {
			return nil, err
		}
		if g.V, err = d.elemMat(); err != nil {
			return nil, err
		}
		if g.U2, err = d.elemMat(); err != nil {
			return nil, err
		}
		if g.V2, err = d.elemMat(); err != nil {
			return nil, err
		}
		columns, err := d.count(1)
		if err != nil {
			return nil, err
		}
		g.Columns = make([]ColumnOpening, columns)
		for ci := range g.Columns {
			c := &g.Columns[ci]
			if c.Index, err = d.intVal(); err != nil {
				return nil, err
			}
			if c.Values, err = d.elems(); err != nil {
				return nil, err
			}
			if c.Path, err = d.hashes(); err != nil {
				return nil, err
			}
		}
		r.Groups[gi] = g
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("commit: %d trailing bytes after receipt", d.remaining())
	}
	return r, nil
}
