package commit

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/field"
)

// Transcript is a deterministic Fiat–Shamir transcript: a running SHA-256
// state that absorbs labeled data (state ← H(state ‖ label ‖ data), with
// length prefixes so no two absorb sequences collide) and squeezes
// challenges in counter mode (block_i = H(state ‖ "squeeze" ‖ i)). Issuer
// and verifier replay the identical absorb/squeeze sequence, so the
// verifier recomputes every challenge the issuer used — the receipt never
// carries a challenge, only the data that determined it.
//
// Every squeeze call first absorbs its own label and parameters, so the
// state always evolves between calls: two consecutive draws with the same
// label still produce independent values.
type Transcript struct {
	state [HashSize]byte
}

// NewTranscript initialises the state from a domain-separation string.
func NewTranscript(domain string) *Transcript {
	t := &Transcript{}
	t.state = sha256.Sum256([]byte(domain))
	return t
}

func (t *Transcript) absorb(label string, data []byte) {
	h := sha256.New()
	h.Write(t.state[:])
	putUvarint(h, uint64(len(label)))
	h.Write([]byte(label))
	putUvarint(h, uint64(len(data)))
	h.Write(data)
	h.Sum(t.state[:0])
}

// AbsorbBytes mixes raw bytes into the state under a label.
func (t *Transcript) AbsorbBytes(label string, data []byte) { t.absorb(label, data) }

// AbsorbString mixes a string into the state under a label.
func (t *Transcript) AbsorbString(label, s string) { t.absorb(label, []byte(s)) }

// AbsorbInt mixes one unsigned integer into the state under a label.
func (t *Transcript) AbsorbInt(label string, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	t.absorb(label, buf[:n])
}

// AbsorbElems mixes a field-element vector into the state under a label
// (canonical 8-byte little-endian words).
func (t *Transcript) AbsorbElems(label string, vs []field.Elem) {
	t.absorb(label, elemBytes(vs))
}

// AbsorbHash mixes one digest into the state under a label.
func (t *Transcript) AbsorbHash(label string, h Hash) { t.absorb(label, h[:]) }

// block is the counter-mode squeeze: 32 pseudo-random bytes per counter
// value, all derived from the current state without advancing it.
func (t *Transcript) block(ctr uint64) [HashSize]byte {
	h := sha256.New()
	h.Write(t.state[:])
	h.Write([]byte("squeeze"))
	var cb [8]byte
	binary.LittleEndian.PutUint64(cb[:], ctr)
	h.Write(cb[:])
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

// ChallengeElems derives n uniform field elements by rejection-sampling
// 8-byte windows of the squeeze stream (see field.FromUniformBytes).
func (t *Transcript) ChallengeElems(f *field.Field, label string, n int) []field.Elem {
	t.AbsorbInt("challenge-elems/"+label, uint64(n))
	out := make([]field.Elem, 0, n)
	for ctr := uint64(0); len(out) < n; ctr++ {
		b := t.block(ctr)
		for off := 0; off+8 <= HashSize && len(out) < n; off += 8 {
			var w [8]byte
			copy(w[:], b[off:off+8])
			if e, ok := f.FromUniformBytes(w); ok {
				out = append(out, e)
			}
		}
	}
	t.AbsorbInt("drawn/"+label, uint64(n))
	return out
}

// ChallengeIndices derives n uniform indices in [0, bound), duplicates
// allowed, by the same rejection sampling over the integers.
func (t *Transcript) ChallengeIndices(label string, n, bound int) []int {
	if bound < 1 {
		panic("commit: challenge index bound must be positive")
	}
	t.AbsorbInt("challenge-indices/"+label, uint64(n))
	t.AbsorbInt("bound/"+label, uint64(bound))
	limit := ^uint64(0) / uint64(bound) * uint64(bound)
	out := make([]int, 0, n)
	for ctr := uint64(0); len(out) < n; ctr++ {
		b := t.block(ctr)
		for off := 0; off+8 <= HashSize && len(out) < n; off += 8 {
			v := binary.LittleEndian.Uint64(b[off : off+8])
			if v < limit {
				out = append(out, int(v%uint64(bound)))
			}
		}
	}
	t.AbsorbInt("drawn/"+label, uint64(n))
	return out
}
