package commit

import (
	"bytes"
	"testing"
)

// FuzzReceiptRoundTrip pins down the two codec invariants: any input that
// decodes must re-encode to the identical bytes (the encoding is canonical),
// and no mutation of a valid receipt may still verify — every byte is
// load-bearing, because the transcript replay re-derives the opening indices
// from the mutated content. A from-scratch forgery that verifies would
// require inverting SHA-256, so a verifying non-seed input is a bug.
func FuzzReceiptRoundTrip(f *testing.F) {
	var seeds [][]byte
	{
		is, rd := honestMatVec(11, 10, 4, 2, 3, 1)
		rec, err := is.Issue(rd)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, EncodeReceipt(rec))
	}
	{
		is, rd := honestGram(12, 6, 3, 2, 3)
		rec, err := is.Issue(rd)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, EncodeReceipt(rec))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReceipt(data)
		if err != nil {
			return
		}
		if enc := EncodeReceipt(r); !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode round-trip changed %d bytes into %d", len(data), len(enc))
		}
		if r.Verify() == nil {
			pristine := false
			for _, s := range seeds {
				if bytes.Equal(data, s) {
					pristine = true
					break
				}
			}
			if !pristine {
				t.Fatal("a mutated receipt verified")
			}
		}
	})
}
