package lcc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

// setupLinear builds the paper's (N,K,S,M) = (12,9,1,1) LCC baseline
// scenario: encode, compute X̃·w at every worker, return everything needed
// to corrupt and decode.
func setupLinear(t *testing.T, rng *rand.Rand, n, k int) (*Code, [][]field.Elem, []field.Elem) {
	t.Helper()
	code, err := New(f, n, k, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 2*k, 5)
	w := f.RandVec(rng, 5)
	shards, err := code.EncodeMatrix(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := make([][]field.Elem, n)
	for i := range res {
		res[i] = applyLinear(shards[i], w)
	}
	return code, res, fieldmat.MatVec(f, x, w)
}

func allWorkers(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestDecodeWithErrorsNoErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	code, res, want := setupLinear(t, rng, 12, 9)
	// 11 results (one straggler), M=1 budget, nobody actually Byzantine.
	got, bad, err := code.DecodeConcatWithErrors(allWorkers(11), res[:11], 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("flagged %v as Byzantine with none present", bad)
	}
	if !field.EqualVec(got, want) {
		t.Fatal("decode mismatch")
	}
}

func TestDecodeWithErrorsOneByzantine(t *testing.T) {
	// The exact paper baseline: (12,9,S=1,M=1), one straggler drops out,
	// one of the remaining 11 results is corrupted; threshold 9 + 2·1 = 11.
	rng := rand.New(rand.NewSource(91))
	code, res, want := setupLinear(t, rng, 12, 9)
	byz := 4
	for j := range res[byz] {
		res[byz][j] = f.Add(res[byz][j], 7) // arbitrary corruption
	}
	got, bad, err := code.DecodeConcatWithErrors(allWorkers(11), res[:11], 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != byz {
		t.Fatalf("identified Byzantine positions %v, want [%d]", bad, byz)
	}
	if !field.EqualVec(got, want) {
		t.Fatal("decode with 1 error failed")
	}
}

func TestDecodeWithErrorsTwoByzantine(t *testing.T) {
	// M=2 needs K + 2M = 13 results; use N = 14 so one straggler is fine.
	rng := rand.New(rand.NewSource(92))
	code, res, want := setupLinear(t, rng, 14, 9)
	for _, byz := range []int{2, 9} {
		for j := range res[byz] {
			res[byz][j] = f.RandNonZero(rng)
		}
	}
	got, bad, err := code.DecodeConcatWithErrors(allWorkers(13), res[:13], 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 {
		t.Fatalf("identified %v, want 2 positions", bad)
	}
	if !field.EqualVec(got, want) {
		t.Fatal("decode with 2 errors failed")
	}
}

func TestDecodeWithErrorsBudgetExceeded(t *testing.T) {
	// 2 corruptions under an M=1 budget with only 11 results: must error,
	// not return silently wrong output.
	rng := rand.New(rand.NewSource(93))
	code, res, want := setupLinear(t, rng, 12, 9)
	for _, byz := range []int{1, 6} {
		for j := range res[byz] {
			res[byz][j] = f.Rand(rng)
		}
	}
	got, _, err := code.DecodeConcatWithErrors(allWorkers(11), res[:11], 1, rng)
	if err == nil && field.EqualVec(got, want) {
		t.Fatal("decode claimed success beyond its error budget")
	}
}

func TestDecodeWithErrorsTooFewResults(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	code, res, _ := setupLinear(t, rng, 12, 9)
	// 10 results cannot correct 1 error (need 11).
	if _, _, err := code.DecodeConcatWithErrors(allWorkers(10), res[:10], 1, rng); !errors.Is(err, ErrTooManyByzantine) {
		t.Fatalf("expected ErrTooManyByzantine, got %v", err)
	}
}

func TestDecodeWithErrorsZeroBudgetFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	code, res, want := setupLinear(t, rng, 12, 9)
	got, bad, err := code.DecodeConcatWithErrors(allWorkers(9), res[:9], 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatal("zero-budget decode flagged workers")
	}
	if !field.EqualVec(got, want) {
		t.Fatal("zero-budget decode mismatch")
	}
}

func TestDecodeWithErrorsDegreeTwo(t *testing.T) {
	// Error correction over a nonlinear computation: f = elementwise square,
	// K=3, threshold 5, M=1 → need 7 results.
	rng := rand.New(rand.NewSource(96))
	code, err := New(f, 8, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 6, 3)
	blocks := fieldmat.SplitRows(x, 3)
	shards, err := code.EncodeBlocks(blocks, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := make([][]field.Elem, 7)
	for i := 0; i < 7; i++ {
		res[i] = applySquare(shards[i])
	}
	byz := 3
	for j := range res[byz] {
		res[byz][j] = f.Add(res[byz][j], 1)
	}
	got, bad, err := code.DecodeWithErrors(allWorkers(7), res, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != byz {
		t.Fatalf("flagged %v, want [%d]", bad, byz)
	}
	for j, b := range blocks {
		if !field.EqualVec(got[j], applySquare(b)) {
			t.Fatalf("block %d mismatch after error correction", j)
		}
	}
}

func BenchmarkLCCErrorDecode12Workers(b *testing.B) {
	rng := rand.New(rand.NewSource(97))
	code, err := New(f, 12, 9, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 900, 50)
	w := f.RandVec(rng, 50)
	shards, _ := code.EncodeMatrix(x, nil)
	res := make([][]field.Elem, 11)
	for i := 0; i < 11; i++ {
		res[i] = fieldmat.MatVec(f, shards[i], w)
	}
	for j := range res[4] {
		res[4][j] = f.Add(res[4][j], 3)
	}
	idx := allWorkers(11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := code.DecodeConcatWithErrors(idx, res, 1, rng); err != nil {
			b.Fatal(err)
		}
	}
}
