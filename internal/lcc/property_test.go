package lcc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

// Property-based tests over randomly drawn code configurations: the
// encode→compute→decode identity must hold for every valid (N, K, T, degF)
// and every subset of workers of threshold size.

func TestEncodeDecodeIdentityQuickLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(6)
		tt := r.Intn(2)
		threshold := RecoveryThreshold(k, tt, 1)
		n := threshold + 1 + r.Intn(4)
		code, err := New(f, n, k, tt, 1)
		if err != nil {
			return false
		}
		rows, cols := k*(1+r.Intn(3)), 1+r.Intn(5)
		x := fieldmat.Rand(f, r, rows, cols)
		w := f.RandVec(r, cols)
		shards, err := code.EncodeMatrix(x, r)
		if err != nil {
			return false
		}
		// Random threshold-sized subset.
		perm := r.Perm(n)[:threshold]
		res := make([][]field.Elem, threshold)
		for i, wk := range perm {
			res[i] = fieldmat.MatVec(f, shards[wk], w)
		}
		got, err := code.DecodeConcat(perm, res)
		if err != nil {
			return false
		}
		return field.EqualVec(got, fieldmat.MatVec(f, x, w))
	}, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeIdentityQuickQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(4)
		tt := r.Intn(2)
		threshold := RecoveryThreshold(k, tt, 2)
		n := threshold + r.Intn(3)
		code, err := New(f, n, k, tt, 2)
		if err != nil {
			return false
		}
		rows, cols := k*(1+r.Intn(2)), 1+r.Intn(4)
		x := fieldmat.Rand(f, r, rows, cols)
		blocks := fieldmat.SplitRows(x, k)
		shards, err := code.EncodeBlocks(blocks, r)
		if err != nil {
			return false
		}
		perm := r.Perm(n)[:threshold]
		res := make([][]field.Elem, threshold)
		for i, wk := range perm {
			res[i] = applySquare(shards[wk])
		}
		got, err := code.DecodeVectors(perm, res)
		if err != nil {
			return false
		}
		for j, b := range blocks {
			if !field.EqualVec(got[j], applySquare(b)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestErrorDecodeIdentityQuick(t *testing.T) {
	// With up to maxErrors corruptions at random positions, DecodeWithErrors
	// must recover the exact result and identify exactly the corrupted
	// positions.
	rng := rand.New(rand.NewSource(502))
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		maxErr := 1 + r.Intn(2)
		threshold := RecoveryThreshold(k, 0, 1)
		n := threshold + 2*maxErr + r.Intn(2)
		code, err := New(f, n, k, 0, 1)
		if err != nil {
			return false
		}
		x := fieldmat.Rand(f, r, k*2, 3)
		w := f.RandVec(r, 3)
		shards, err := code.EncodeMatrix(x, nil)
		if err != nil {
			return false
		}
		res := make([][]field.Elem, n)
		idx := make([]int, n)
		for i := 0; i < n; i++ {
			idx[i] = i
			res[i] = fieldmat.MatVec(f, shards[i], w)
		}
		nErr := r.Intn(maxErr + 1)
		corruptPos := r.Perm(n)[:nErr]
		for _, p := range corruptPos {
			res[p] = field.CopyVec(res[p])
			res[p][r.Intn(len(res[p]))] = f.Add(res[p][0], f.RandNonZero(r))
		}
		got, bad, err := code.DecodeConcatWithErrors(idx, res, maxErr, r)
		if err != nil {
			return false
		}
		if !field.EqualVec(got, fieldmat.MatVec(f, x, w)) {
			return false
		}
		// Flagged positions must be a subset of the corrupted ones (a
		// corruption can coincidentally leave a valid-looking projection
		// with prob ~1/q, never flagging an honest worker is the invariant).
		corrupted := map[int]bool{}
		for _, p := range corruptPos {
			corrupted[p] = true
		}
		for _, p := range bad {
			if !corrupted[p] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorColumnsSumToOneAtSystematicPoints(t *testing.T) {
	// ℓ_j(β_i) = δ_ij: at T = 0 the first K generator columns form the
	// identity — the algebraic root of systematicity, checked across sizes.
	for _, cfg := range []struct{ n, k int }{{5, 3}, {12, 9}, {7, 1}, {6, 6}} {
		code, err := New(f, cfg.n, cfg.k, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		x := fieldmat.Rand(f, rand.New(rand.NewSource(1)), cfg.k, 2)
		blocks := fieldmat.SplitRows(x, cfg.k)
		shards, err := code.EncodeBlocks(blocks, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cfg.k; i++ {
			if !shards[i].Equal(blocks[i]) {
				t.Fatalf("(%d,%d): shard %d not systematic", cfg.n, cfg.k, i)
			}
		}
	}
}
