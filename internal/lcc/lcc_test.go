package lcc

import (
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

var f = field.Default()

// applyLinear simulates a worker computing f(X̃) = X̃·w (deg 1).
func applyLinear(sh *fieldmat.Matrix, w []field.Elem) []field.Elem {
	return fieldmat.MatVec(f, sh, w)
}

// applySquare simulates a worker computing the element-wise square of its
// shard flattened to a vector — a degree-2 polynomial computation, the
// smallest nonlinear case LCC supports and MDS does not.
func applySquare(sh *fieldmat.Matrix) []field.Elem {
	out := make([]field.Elem, len(sh.Data))
	for i, v := range sh.Data {
		out[i] = f.Mul(v, v)
	}
	return out
}

func TestThresholds(t *testing.T) {
	// Paper eq. (1) vs eq. (2): the whole point of AVCC.
	if got := RequiredWorkersLCC(9, 0, 1, 1, 1); got != 12 {
		t.Fatalf("LCC(K=9,S=1,M=1) needs %d, want 12", got)
	}
	if got := RequiredWorkersAVCC(9, 0, 1, 2, 1); got != 12 {
		t.Fatalf("AVCC(K=9,S=1,M=2) needs %d, want 12", got)
	}
	if got := RequiredWorkersAVCC(9, 0, 2, 1, 1); got != 12 {
		t.Fatalf("AVCC(K=9,S=2,M=1) needs %d, want 12", got)
	}
	// Tolerating 2 Byzantines costs LCC 4 extra workers but AVCC only 2.
	if RequiredWorkersLCC(9, 0, 0, 2, 1)-RequiredWorkersLCC(9, 0, 0, 0, 1) != 4 {
		t.Fatal("LCC Byzantine cost should be 2 workers each")
	}
	if RequiredWorkersAVCC(9, 0, 0, 2, 1)-RequiredWorkersAVCC(9, 0, 0, 0, 1) != 2 {
		t.Fatal("AVCC Byzantine cost should be 1 worker each")
	}
	if got := RecoveryThreshold(9, 0, 1); got != 9 {
		t.Fatalf("threshold(9,0,1) = %d, want 9", got)
	}
	if got := RecoveryThreshold(3, 1, 2); got != 7 {
		t.Fatalf("threshold(3,1,2) = %d, want 7", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(f, 12, 9, 0, 1); err != nil {
		t.Fatalf("paper config rejected: %v", err)
	}
	bad := []struct{ n, k, t, degF int }{
		{8, 9, 0, 1},  // below threshold
		{12, 0, 0, 1}, // k < 1
		{12, 9, -1, 1},
		{12, 9, 0, 0}, // degF < 1
	}
	for _, c := range bad {
		if _, err := New(f, c.n, c.k, c.t, c.degF); err == nil {
			t.Errorf("New(%+v) accepted invalid params", c)
		}
	}
}

func TestLinearDecodeMatchesMDSBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	code, err := New(f, 12, 9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 18, 6)
	w := f.RandVec(rng, 6)
	shards, err := code.EncodeMatrix(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := fieldmat.MatVec(f, x, w)
	idx := []int{11, 0, 7, 3, 5, 2, 9, 1, 4} // any 9 of 12, shuffled
	res := make([][]field.Elem, len(idx))
	for r, i := range idx {
		res[r] = applyLinear(shards[i], w)
	}
	got, err := code.DecodeConcat(idx, res)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(got, want) {
		t.Fatal("linear LCC decode failed")
	}
}

func TestDegreeTwoComputation(t *testing.T) {
	// f(X) = X∘X element-wise, deg f = 2: threshold = 2(K+T-1)+1.
	rng := rand.New(rand.NewSource(81))
	k := 3
	code, err := New(f, 6, k, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.Rand(f, rng, 6, 4)
	blocks := fieldmat.SplitRows(x, k)
	shards, err := code.EncodeBlocks(blocks, nil)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{0, 1, 2, 3, 4} // threshold = 5
	res := make([][]field.Elem, len(idx))
	for r, i := range idx {
		res[r] = applySquare(shards[i])
	}
	got, err := code.DecodeVectors(idx, res)
	if err != nil {
		t.Fatal(err)
	}
	for j, b := range blocks {
		want := applySquare(b)
		if !field.EqualVec(got[j], want) {
			t.Fatalf("block %d: squared decode mismatch", j)
		}
	}
}

func TestPrivacyMasking(t *testing.T) {
	// With T = 1 no shard may equal any raw block, and the α/β point sets
	// must be disjoint.
	rng := rand.New(rand.NewSource(82))
	k, tt := 3, 1
	code, err := New(f, 8, k, tt, 2)
	if err != nil {
		t.Fatal(err)
	}
	betaSet := map[field.Elem]bool{}
	for _, b := range code.betas {
		betaSet[b] = true
	}
	for _, a := range code.alphas {
		if betaSet[a] {
			t.Fatal("alpha/beta sets intersect with T > 0")
		}
	}
	x := fieldmat.Rand(f, rng, 6, 4)
	blocks := fieldmat.SplitRows(x, k)
	shards, err := code.EncodeBlocks(blocks, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shards {
		for j, b := range blocks {
			if sh.Equal(b) {
				t.Fatalf("shard %d equals raw block %d despite masking", i, j)
			}
		}
	}
	// Decoding must still be exact even with the random masks in place.
	idx := []int{0, 1, 2, 3, 4, 5, 6} // threshold = (3+1-1)*2+1 = 7
	res := make([][]field.Elem, len(idx))
	for r, i := range idx {
		res[r] = applySquare(shards[i])
	}
	got, err := code.DecodeVectors(idx, res)
	if err != nil {
		t.Fatal(err)
	}
	for j, b := range blocks {
		if !field.EqualVec(got[j], applySquare(b)) {
			t.Fatalf("masked decode mismatch at block %d", j)
		}
	}
}

func TestPrivacyMaskStatistics(t *testing.T) {
	// A single shard of a fixed dataset, re-encoded with fresh masks, must
	// look uniform: with T=1 each shard = (data part) + c·W for a nonzero
	// coefficient c and uniform W, so across re-encodings each entry is
	// uniform over F_q. We check empirical mean of the first entry over many
	// encodings lands near the field midpoint (a weak but meaningful
	// uniformity smoke test; exact T-privacy is Theorem 1's algebra).
	rng := rand.New(rand.NewSource(83))
	smallF := field.MustNew(97)
	code, err := New(smallF, 5, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := fieldmat.NewMatrix(2, 1)
	x.Set(0, 0, 42)
	x.Set(1, 0, 17)
	blocks := fieldmat.SplitRows(x, 2)
	counts := map[field.Elem]int{}
	const trials = 3000
	for i := 0; i < trials; i++ {
		shards, err := code.EncodeBlocks(blocks, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[shards[0].At(0, 0)]++
	}
	// Chi-square-ish sanity: every residue should appear, none should
	// dominate. Expected count ≈ 31; allow generous bounds.
	for v := uint64(0); v < 97; v++ {
		c := counts[v]
		if c == 0 {
			t.Fatalf("value %d never appeared in %d masked encodings", v, trials)
		}
		if c > 31*4 {
			t.Fatalf("value %d appeared %d times (expected ~31) — mask not uniform", v, c)
		}
	}
}

func TestDecodeBelowThreshold(t *testing.T) {
	code, _ := New(f, 12, 9, 0, 1)
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7} // 8 < 9
	res := make([][]field.Elem, len(idx))
	for r := range res {
		res[r] = []field.Elem{0}
	}
	if _, err := code.DecodeVectors(idx, res); err == nil {
		t.Fatal("decode accepted fewer than threshold results")
	}
}

func TestDecodeInputValidation(t *testing.T) {
	code, _ := New(f, 4, 2, 0, 1)
	good := [][]field.Elem{{1}, {2}}
	for name, c := range map[string]struct {
		idx []int
		res [][]field.Elem
	}{
		"dup":    {[]int{1, 1}, good},
		"range":  {[]int{0, 9}, good},
		"neg":    {[]int{-2, 0}, good},
		"miscnt": {[]int{0, 1, 2}, good},
		"ragged": {[]int{0, 1}, [][]field.Elem{{1}, {2, 3}}},
	} {
		if _, err := code.DecodeVectors(c.idx, c.res); err == nil {
			t.Errorf("%s: accepted bad input", name)
		}
	}
}

func TestEncodeRequiresRNGWithMasks(t *testing.T) {
	code, _ := New(f, 8, 3, 1, 2)
	blocks := fieldmat.SplitRows(fieldmat.NewMatrix(3, 2), 3)
	if _, err := code.EncodeBlocks(blocks, nil); err == nil {
		t.Fatal("T>0 encode accepted nil rng")
	}
}

func TestExtraResultsIgnoredConsistently(t *testing.T) {
	// Supplying more than threshold verified results must not change the
	// output (the decoder uses the first threshold-many).
	rng := rand.New(rand.NewSource(84))
	code, _ := New(f, 12, 9, 0, 1)
	x := fieldmat.Rand(f, rng, 18, 4)
	w := f.RandVec(rng, 4)
	shards, _ := code.EncodeMatrix(x, nil)
	idx := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	res := make([][]field.Elem, len(idx))
	for r, i := range idx {
		res[r] = applyLinear(shards[i], w)
	}
	all, err := code.DecodeConcat(idx, res)
	if err != nil {
		t.Fatal(err)
	}
	nine, err := code.DecodeConcat(idx[:9], res[:9])
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(all, nine) {
		t.Fatal("extra results changed decode output")
	}
}
