package lcc

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/field"
	"repro/internal/poly"
)

// Error-tolerant decoding for the LCC baseline. Unlike AVCC, the baseline
// has no per-worker verification: it must locate and correct up to M
// arbitrary (Byzantine) results inside the decode itself, which is why the
// paper's eq. (1) charges 2M workers. The implementation follows the
// standard two-step approach:
//
//  1. Project the vector-valued results onto a random direction ρ. Each
//     projected result is a scalar evaluation of the scalar polynomial
//     ⟨f(u(z)), ρ⟩; run Berlekamp–Welch on the projection to recover it and
//     identify the workers whose projected value disagrees (the Byzantines,
//     with probability ≥ 1 − n/q over ρ — a Byzantine escapes only if its
//     error vector is orthogonal to ρ).
//  2. Discard the flagged workers and interpolate every component from the
//     remaining clean results.
//
// The random projection keeps the cost at one BW solve total instead of one
// per output component, matching the near-linear decode complexity the
// paper quotes for LCC.

// ErrTooManyByzantine reports that error correction failed — more corrupted
// results than the 2M budget covers.
var ErrTooManyByzantine = errors.New("lcc: error decoding failed, too many Byzantine results")

// DecodeWithErrors recovers the block results from len(workers) results of
// which at most maxErrors are arbitrarily corrupted. It requires
// len(workers) ≥ Threshold() + 2·maxErrors. It also returns the positions
// (indices into workers) that were identified as corrupted.
func (c *Code) DecodeWithErrors(workers []int, results [][]field.Elem, maxErrors int, rng *rand.Rand) ([][]field.Elem, []int, error) {
	th := c.Threshold()
	need := th + 2*maxErrors
	if len(workers) < need {
		return nil, nil, fmt.Errorf("lcc: %d results cannot correct %d errors (need %d): %w",
			len(workers), maxErrors, need, ErrTooManyByzantine)
	}
	if len(workers) != len(results) {
		return nil, nil, fmt.Errorf("lcc: workers/results length mismatch")
	}
	if err := c.checkWorkers(workers); err != nil {
		return nil, nil, err
	}
	if maxErrors == 0 {
		out, err := c.DecodeVectors(workers, results)
		return out, nil, err
	}
	dim := len(results[0])
	for _, r := range results {
		if len(r) != dim {
			return nil, nil, fmt.Errorf("lcc: ragged result vectors")
		}
	}

	xs := make([]field.Elem, len(workers))
	for r, w := range workers {
		xs[r] = c.alphas[w]
	}
	rho := c.f.RandVec(rng, dim)
	projected := make([]field.Elem, len(results))
	for r, res := range results {
		projected[r] = c.f.Dot(res, rho)
	}
	p, err := poly.DecodeBW(c.f, xs, projected, th, maxErrors)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrTooManyByzantine, err)
	}
	var clean []int
	var bad []int
	for r := range xs {
		if p.Eval(c.f, xs[r]) == projected[r] {
			clean = append(clean, r)
		} else {
			bad = append(bad, r)
		}
	}
	if len(clean) < th {
		return nil, nil, ErrTooManyByzantine
	}
	cw := make([]int, len(clean))
	cr := make([][]field.Elem, len(clean))
	for i, r := range clean {
		cw[i] = workers[r]
		cr[i] = results[r]
	}
	out, err := c.DecodeVectors(cw, cr)
	if err != nil {
		return nil, nil, err
	}
	return out, bad, nil
}

// DecodeConcatWithErrors is DecodeWithErrors with concatenated output.
func (c *Code) DecodeConcatWithErrors(workers []int, results [][]field.Elem, maxErrors int, rng *rand.Rand) ([]field.Elem, []int, error) {
	blocks, bad, err := c.DecodeWithErrors(workers, results, maxErrors, rng)
	if err != nil {
		return nil, nil, err
	}
	out := make([]field.Elem, 0, len(blocks)*len(blocks[0]))
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out, bad, nil
}
