// Package lcc implements Lagrange Coded Computing (Yu et al., AISTATS 2019)
// as used by the AVCC paper: the encoder of Section IV-B (eq. 12–13) with T
// random privacy masks, the interpolation decoder, and — for the LCC
// *baseline* that AVCC is compared against — a Reed–Solomon style decoder
// that corrects M Byzantine results at the classic cost of 2M extra workers.
//
// The dataset is split into K blocks X_1..X_K; the encoding polynomial
//
//	u(z) = Σ_{j≤K} X_j·ℓ_j(z) + Σ_{K<j≤K+T} W_j·ℓ_j(z)
//
// passes through the data at points β_1..β_K and through uniformly random
// masks W_j at β_{K+1}..β_{K+T}. Worker i receives X̃_i = u(α_i) and applies
// the target polynomial f, producing one evaluation of f(u(z)), a polynomial
// of degree ≤ (K+T−1)·deg f. The master interpolates it from any
// (K+T−1)·deg f + 1 evaluations and reads f(X_j) = f(u(β_j)).
//
// When T > 0 the worker points A = {α_i} are chosen disjoint from the data
// points B = {β_j} (the paper's A ∩ B = ∅ condition) so no worker holds a
// raw data block; any T shards are jointly uniform (Theorem 1, T-privacy).
package lcc

import (
	"fmt"
	"math/rand"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/poly"
)

// Code is an immutable (N, K, T) Lagrange code for computations of a fixed
// polynomial degree.
type Code struct {
	f    *field.Field
	n    int
	k    int
	t    int
	degF int
	// betas has K+T entries: data points then mask points.
	betas []field.Elem
	// alphas has N entries: worker evaluation points.
	alphas []field.Elem
	// gen is the (K+T)×N matrix gen[j][i] = ℓ_j(α_i).
	gen *fieldmat.Matrix
	// plans memoizes decode weights per surviving-worker point set (targets
	// are the K data points); scenario churn re-decodes the same survivor
	// set every round, so the interpolation weights amortise to a lookup.
	plans *poly.DecodePlans
}

// New constructs an (n, k, t) Lagrange code for degree-degF computations.
// It validates only code-shape constraints; resiliency/security budgets
// (S, M) are properties of how many results the caller waits for, checked by
// RequiredWorkersAVCC / RequiredWorkersLCC.
func New(f *field.Field, n, k, t, degF int) (*Code, error) {
	if k < 1 || t < 0 || degF < 1 {
		return nil, fmt.Errorf("lcc: invalid (K,T,degF) = (%d,%d,%d)", k, t, degF)
	}
	if n < RecoveryThreshold(k, t, degF) {
		return nil, fmt.Errorf("lcc: N = %d below recovery threshold %d", n, RecoveryThreshold(k, t, degF))
	}
	if uint64(n+k+t) >= f.Q() {
		return nil, fmt.Errorf("lcc: N+K+T = %d does not fit in field of size %d", n+k+t, f.Q())
	}
	var betas, alphas []field.Elem
	if t == 0 {
		// Systematic layout: α_j = β_j for j ≤ K (overlap allowed, and
		// desirable — the first K workers hold raw blocks, matching MDS).
		alphas = f.DistinctPoints(n, 1)
		betas = alphas[:k]
	} else {
		// Privacy requires A ∩ B = ∅.
		betas = f.DistinctPoints(k+t, 1)
		alphas = f.DistinctPoints(n, uint64(k+t)+1)
	}
	gen := fieldmat.NewMatrix(k+t, n)
	for i, w := range poly.InterpWeightsBatch(f, betas, alphas) {
		for j := 0; j < k+t; j++ {
			gen.Set(j, i, w[j])
		}
	}
	return &Code{f: f, n: n, k: k, t: t, degF: degF, betas: betas, alphas: alphas, gen: gen,
		plans: poly.NewDecodePlans(f, betas[:k])}, nil
}

// RecoveryThreshold returns the number of correct evaluations needed to
// interpolate f(u(z)): (K+T−1)·deg f + 1.
func RecoveryThreshold(k, t, degF int) int { return (k+t-1)*degF + 1 }

// RequiredWorkersAVCC returns the paper's eq. (2):
// N ≥ (K+T−1)·deg f + S + M + 1. Byzantines cost the same as stragglers
// because verification discards them individually.
func RequiredWorkersAVCC(k, t, s, m, degF int) int {
	return (k+t-1)*degF + s + m + 1
}

// RequiredWorkersLCC returns the paper's eq. (1):
// N ≥ (K+T−1)·deg f + S + 2M + 1. The factor 2 is the Reed–Solomon
// error-correction cost implemented by DecodeWithErrors.
func RequiredWorkersLCC(k, t, s, m, degF int) int {
	return (k+t-1)*degF + s + 2*m + 1
}

// N returns the code length.
func (c *Code) N() int { return c.n }

// K returns the number of data blocks.
func (c *Code) K() int { return c.k }

// T returns the number of privacy masks (colluding workers tolerated).
func (c *Code) T() int { return c.t }

// DegF returns the computation degree the code is configured for.
func (c *Code) DegF() int { return c.degF }

// Field returns the underlying field.
func (c *Code) Field() *field.Field { return c.f }

// Threshold returns this code's recovery threshold.
func (c *Code) Threshold() int { return RecoveryThreshold(c.k, c.t, c.degF) }

// Alphas returns a copy of the worker evaluation points.
func (c *Code) Alphas() []field.Elem { return field.CopyVec(c.alphas) }

// EncodeBlocks encodes K equal-shape data blocks into N coded shards,
// drawing the T privacy masks from rng. rng may be nil when T = 0.
func (c *Code) EncodeBlocks(blocks []*fieldmat.Matrix, rng *rand.Rand) ([]*fieldmat.Matrix, error) {
	if len(blocks) != c.k {
		return nil, fmt.Errorf("lcc: got %d blocks, K = %d", len(blocks), c.k)
	}
	rows, cols := blocks[0].Rows, blocks[0].Cols
	for _, b := range blocks {
		if b.Rows != rows || b.Cols != cols {
			return nil, fmt.Errorf("lcc: blocks have unequal shapes")
		}
	}
	if c.t > 0 && rng == nil {
		return nil, fmt.Errorf("lcc: T = %d requires a random source for the privacy masks", c.t)
	}
	all := make([]*fieldmat.Matrix, c.k+c.t)
	copy(all, blocks)
	for j := c.k; j < c.k+c.t; j++ {
		all[j] = fieldmat.Rand(c.f, rng, rows, cols)
	}
	shards := make([]*fieldmat.Matrix, c.n)
	for i := 0; i < c.n; i++ {
		sh := fieldmat.NewMatrix(rows, cols)
		for j := 0; j < c.k+c.t; j++ {
			coef := c.gen.At(j, i)
			if coef == 0 {
				continue
			}
			sh.AXPY(c.f, coef, all[j])
		}
		shards[i] = sh
	}
	return shards, nil
}

// EncodeMatrix splits x into K row blocks and encodes them.
func (c *Code) EncodeMatrix(x *fieldmat.Matrix, rng *rand.Rand) ([]*fieldmat.Matrix, error) {
	if x.Rows%c.k != 0 {
		return nil, fmt.Errorf("lcc: %d rows not divisible by K = %d", x.Rows, c.k)
	}
	return c.EncodeBlocks(fieldmat.SplitRows(x, c.k), rng)
}

// DecodeVectors recovers f(X_1)..f(X_K) (flattened as vectors) from at least
// Threshold() verified worker results. results[r] = f(u(α_{workers[r]})).
// All supplied results are trusted; AVCC guarantees this by Freivalds
// verification before decode.
func (c *Code) DecodeVectors(workers []int, results [][]field.Elem) ([][]field.Elem, error) {
	th := c.Threshold()
	if len(workers) < th {
		return nil, fmt.Errorf("lcc: %d results below recovery threshold %d", len(workers), th)
	}
	if len(workers) != len(results) {
		return nil, fmt.Errorf("lcc: workers/results length mismatch")
	}
	if err := c.checkWorkers(workers); err != nil {
		return nil, err
	}
	dim := len(results[0])
	for _, r := range results {
		if len(r) != dim {
			return nil, fmt.Errorf("lcc: ragged result vectors")
		}
	}
	// Interpolation uses exactly the threshold count (extra results are
	// redundant once verified).
	workers = workers[:th]
	results = results[:th]
	xs := make([]field.Elem, th)
	for r, w := range workers {
		xs[r] = c.alphas[w]
	}
	weights := c.plans.Weights(xs)
	out := make([][]field.Elem, c.k)
	for j := 0; j < c.k; j++ {
		out[j] = poly.CombineVectors(c.f, weights[j], results)
	}
	return out, nil
}

// DecodeConcat decodes and concatenates block results into one vector.
func (c *Code) DecodeConcat(workers []int, results [][]field.Elem) ([]field.Elem, error) {
	blocks, err := c.DecodeVectors(workers, results)
	if err != nil {
		return nil, err
	}
	out := make([]field.Elem, 0, len(blocks)*len(blocks[0]))
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out, nil
}

func (c *Code) checkWorkers(workers []int) error {
	seen := make(map[int]bool, len(workers))
	for _, w := range workers {
		if w < 0 || w >= c.n {
			return fmt.Errorf("lcc: worker index %d out of range [0,%d)", w, c.n)
		}
		if seen[w] {
			return fmt.Errorf("lcc: duplicate worker index %d", w)
		}
		seen[w] = true
	}
	return nil
}
