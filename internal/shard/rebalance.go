// Elastic shard plane: runtime row rebalancing and group autoscaling.
//
// A static shard plan freezes the row partition at construction, so a group
// that lost workers to quarantine or shrank its K under churn keeps its
// original span forever and becomes the fleet's permanent tail. The elastic
// master closes that gap with two mechanisms driven from one Tick entry
// point, called between rounds (the serving layer calls it after every
// successful FinishIteration with its live load signal):
//
//   - Rebalancing moves rows across the shared boundary of ADJACENT groups,
//     from slow to fast, sized by the per-row cost implied by each group's
//     EWMA round wall. Only the two affected groups are re-encoded; the new
//     Plan is validated before it goes live.
//   - Autoscaling splits a group to add fleet capacity (the new group gets a
//     FRESH seed-stream slot that no live or retired group ever used) and
//     retires groups when load subsides or a group has degenerated to the
//     quantum floor and still trails the fleet.
//
// Drain semantics: Tick holds the master's topology write lock, which an
// in-flight round holds for reading — a topology change therefore waits for
// the round in flight and no round ever observes a half-installed fleet.
// Retired groups are simply dropped once the merge into their neighbour is
// rebuilt; their workers, executor, and scenario state are garbage.
package shard

import (
	"fmt"

	"repro/internal/fieldmat"
)

// RebalanceConfig tunes the elastic policy. The zero value of every field
// selects a default (see DefaultRebalanceConfig); autoscaling is enabled by
// setting MaxGroups > 0, rebalancing is always on for an elastic master.
type RebalanceConfig struct {
	// Alpha is the EWMA smoothing factor applied to observed per-group round
	// walls: est = Alpha*obs + (1-Alpha)*est. 0 means DefaultAlpha.
	Alpha float64
	// Ratio triggers a move when the slowest group's EWMA wall exceeds its
	// faster adjacent neighbour's by this factor. 0 means DefaultRatio.
	Ratio float64
	// CooldownRounds is how many successful rounds must complete after a
	// topology change before the next change — the new walls must be observed
	// before they are acted on. 0 means DefaultCooldown; negative means no
	// cooldown.
	CooldownRounds int
	// MinGroups/MaxGroups bound autoscaling. MaxGroups = 0 disables
	// autoscaling entirely (rebalancing still runs); otherwise
	// 1 <= MinGroups <= initial groups <= MaxGroups must hold.
	MinGroups, MaxGroups int
	// ScaleUpDepth adds a group when the serving queue depth reaches it
	// (0 = queue depth does not trigger scale-up).
	ScaleUpDepth int
	// ScaleUpP99 adds a group when the serving p99 latency (seconds) reaches
	// it (0 = p99 does not trigger scale-up).
	ScaleUpP99 float64
	// ScaleUpWall adds a group when the slowest group's EWMA VIRTUAL wall
	// (seconds) reaches it — the deployment-side signal, independent of host
	// load (0 = wall does not trigger scale-up).
	ScaleUpWall float64
	// ScaleDownDepth retires a group when the queue depth stays at or below
	// it for ScaleDownTicks consecutive ticks. Only consulted when
	// ScaleUpDepth > 0 (the queue signal is in use).
	ScaleDownDepth int
	// ScaleDownWall retires a group when the slowest group's EWMA wall stays
	// at or below it (seconds) for ScaleDownTicks consecutive ticks
	// (0 = wall does not trigger scale-down).
	ScaleDownWall float64
	// ScaleDownTicks is the consecutive-idle-tick threshold above.
	// 0 means DefaultScaleDownTicks.
	ScaleDownTicks int
}

// Defaults for RebalanceConfig's zero values.
const (
	DefaultAlpha          = 0.3
	DefaultRatio          = 1.25
	DefaultCooldown       = 3
	DefaultScaleDownTicks = 3
)

// DefaultRebalanceConfig returns the rebalance-only policy: EWMA alpha 0.3,
// a 1.25x trigger ratio, a 3-round cooldown, and autoscaling off.
func DefaultRebalanceConfig() RebalanceConfig {
	return RebalanceConfig{
		Alpha:          DefaultAlpha,
		Ratio:          DefaultRatio,
		CooldownRounds: DefaultCooldown,
		ScaleDownTicks: DefaultScaleDownTicks,
	}
}

// withDefaults fills zero fields with their defaults.
func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Ratio == 0 {
		c.Ratio = DefaultRatio
	}
	if c.CooldownRounds == 0 {
		c.CooldownRounds = DefaultCooldown
	}
	if c.CooldownRounds < 0 {
		c.CooldownRounds = 0
	}
	if c.ScaleDownTicks == 0 {
		c.ScaleDownTicks = DefaultScaleDownTicks
	}
	return c
}

// Validate rejects a policy no fleet could run. Called on the pre-default
// values, so zeros (= defaults) are always acceptable.
func (c RebalanceConfig) Validate() error {
	switch {
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("Alpha = %v outside (0, 1]", c.Alpha)
	case c.Ratio != 0 && c.Ratio <= 1:
		return fmt.Errorf("Ratio = %v must exceed 1 (a group slower than itself triggers forever)", c.Ratio)
	case c.MinGroups < 0 || c.MaxGroups < 0:
		return fmt.Errorf("MinGroups/MaxGroups = %d/%d cannot be negative", c.MinGroups, c.MaxGroups)
	case c.MaxGroups > 0 && c.MinGroups > c.MaxGroups:
		return fmt.Errorf("MinGroups = %d exceeds MaxGroups = %d", c.MinGroups, c.MaxGroups)
	case c.ScaleUpDepth < 0 || c.ScaleDownDepth < 0:
		return fmt.Errorf("ScaleUpDepth/ScaleDownDepth = %d/%d cannot be negative", c.ScaleUpDepth, c.ScaleDownDepth)
	case c.ScaleUpP99 < 0 || c.ScaleUpWall < 0 || c.ScaleDownWall < 0:
		return fmt.Errorf("scale thresholds cannot be negative")
	case c.ScaleDownTicks < 0:
		return fmt.Errorf("ScaleDownTicks = %d cannot be negative", c.ScaleDownTicks)
	}
	return nil
}

// autoscale reports whether the policy may add/retire groups at runtime.
func (c RebalanceConfig) autoscale() bool { return c.MaxGroups > 0 }

// LoadSignal is the serving-side feedback Tick consumes: the admission queue
// depth and the p99 submit-to-resolve latency at tick time. The virtual-wall
// signals need no plumbing — the master observes its own group walls.
type LoadSignal struct {
	QueueDepth int
	P99Sec     float64
}

// TickResult reports what one Tick changed.
type TickResult struct {
	// Action is "" (no change), "move", "add", or "retire".
	Action string
	// From/To identify the groups involved: move is From→To; add split group
	// From with the new group at index To; retire absorbed group From into To.
	From, To int
	// Rows is how many rows changed hands, summed over round keys.
	Rows int
}

// RebalanceStatus is a point-in-time view of the elastic state, snapshotted
// under the master's locks (safe against concurrent topology changes).
type RebalanceStatus struct {
	// Enabled is false for a statically sharded master (NewMaster): walls are
	// still tracked for observability, but Tick never changes the topology.
	Enabled bool `json:"enabled"`
	Groups  int  `json:"groups"`
	// Quantum is the row granularity every span start/length is kept aligned
	// to (the coded-block row count for block-structured schemes, 1 otherwise).
	Quantum int `json:"quantum"`
	// EWMAWall is the per-group smoothed round wall (virtual seconds); 0 for
	// a group that has not completed a round since it was (re)built.
	EWMAWall []float64 `json:"ewma_wall_sec"`
	// NextSlot is the seed-stream slot the next added group would take; slots
	// are never reused, so it also counts every group ever built.
	NextSlot      int    `json:"next_slot"`
	Ticks         uint64 `json:"ticks"`
	Moves         uint64 `json:"moves"`
	RowsMoved     uint64 `json:"rows_moved"`
	GroupsAdded   uint64 `json:"groups_added"`
	GroupsRetired uint64 `json:"groups_retired"`
	// LastError records the most recent failed topology change (the change
	// was rolled back; the fleet kept its previous plan).
	LastError string `json:"last_error,omitempty"`
}

// GroupStatus is one group's entry in Master.Snapshot — the locked
// replacement for reading Group(g)/Plan(key) field by field while the
// topology may move underneath.
type GroupStatus struct {
	Group   int    `json:"group"`
	Slot    int    `json:"slot"`
	Scheme  string `json:"scheme"`
	Workers int    `json:"workers"`
	// Spans maps each round key to this group's row range of that key.
	Spans map[string]Span `json:"spans"`
	// Coding and Active report the group's live adaptation state (adaptive
	// schemes only).
	Coding *[2]int `json:"coding,omitempty"`
	Active *int    `json:"active,omitempty"`
	// EWMAWall is the group's smoothed observed round wall (virtual seconds).
	EWMAWall float64 `json:"ewma_wall_sec"`
}

// adaptive mirrors scheme.Adaptive structurally (this package sits below the
// registry layer and cannot import it).
type adaptive interface {
	Coding() (n, k int)
	ActiveWorkers() []int
}

// Rebuilder constructs the group master for a seed-stream slot over the
// given row slices (one per round key). Slots identify randomness streams,
// not positions: a group keeps its slot across rebuilds (same keys, same
// scenario timeline, same jitter stream over its new rows), and a group
// added at runtime gets a slot no group ever used, so its streams collide
// with nothing live or retired.
type Rebuilder func(slot int, data map[string]*fieldmat.Matrix) (GroupMaster, error)

// NewElasticMaster builds a sharded master that can change its own topology
// at runtime. data holds the FULL matrix per round key (the master re-slices
// it when rows change hands); plans is the initial partition (every span
// aligned to quantum); rebuild is called for slots 0..groups-1 now and for
// affected slots on every topology change.
func NewElasticMaster(data map[string]*fieldmat.Matrix, plans map[string]*Plan,
	quantum int, rcfg RebalanceConfig, rebuild Rebuilder) (*Master, error) {
	if rebuild == nil {
		return nil, fmt.Errorf("shard: elastic master needs a rebuilder")
	}
	if quantum < 1 {
		return nil, fmt.Errorf("shard: quantum = %d, need at least 1", quantum)
	}
	if err := rcfg.Validate(); err != nil {
		return nil, fmt.Errorf("shard: rebalance config: %w", err)
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("shard: no plans")
	}
	groups := -1
	for _, key := range planKeys(plans) {
		p := plans[key]
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("shard: key %q: %w", key, err)
		}
		if groups == -1 {
			groups = p.Groups()
		} else if p.Groups() != groups {
			return nil, fmt.Errorf("shard: key %q plans %d groups, other keys plan %d", key, p.Groups(), groups)
		}
		x, ok := data[key]
		if !ok {
			return nil, fmt.Errorf("shard: plan key %q has no data matrix", key)
		}
		if x.Rows != p.Rows {
			return nil, fmt.Errorf("shard: key %q plans %d rows but the matrix has %d", key, p.Rows, x.Rows)
		}
		for g, s := range p.Spans {
			if s.Start%quantum != 0 || s.Rows%quantum != 0 {
				return nil, fmt.Errorf("shard: key %q group %d span [%d, %d) not aligned to quantum %d",
					key, g, s.Start, s.End(), quantum)
			}
		}
	}
	if len(data) != len(plans) {
		return nil, fmt.Errorf("shard: %d data keys but %d plan keys", len(data), len(plans))
	}
	rcfg = rcfg.withDefaults()
	if rcfg.autoscale() {
		if rcfg.MinGroups < 1 {
			rcfg.MinGroups = 1
		}
		if groups < rcfg.MinGroups || groups > rcfg.MaxGroups {
			return nil, fmt.Errorf("shard: %d initial groups outside autoscale bounds [%d, %d]",
				groups, rcfg.MinGroups, rcfg.MaxGroups)
		}
	}
	m := &Master{
		plans:    plans,
		groups:   make([]GroupMaster, groups),
		offsets:  make([]int, groups),
		slots:    make([]int, groups),
		data:     data,
		quantum:  quantum,
		rcfg:     rcfg,
		rebuild:  rebuild,
		nextSlot: groups,
		ewma:     make([]float64, groups),
		// A fresh fleet may act as soon as it has walls to act on.
		sinceChange: rcfg.CooldownRounds,
		failedIter:  noFailedIter,
	}
	for g := range m.groups {
		m.slots[g] = g
		gm, err := m.buildGroupLocked(g, g, plans)
		if err != nil {
			return nil, fmt.Errorf("shard: building group %d: %w", g, err)
		}
		m.groups[g] = gm
	}
	m.recomputeOffsetsLocked()
	return m, nil
}

// buildGroupLocked slices every key's span for position pos out of the full
// data and invokes the rebuilder under the given slot. Callers hold m.mu (or
// are constructing m).
func (m *Master) buildGroupLocked(slot, pos int, plans map[string]*Plan) (GroupMaster, error) {
	slices := make(map[string]*fieldmat.Matrix, len(plans))
	for _, key := range planKeys(plans) {
		sub, err := SliceSpan(m.data[key], plans[key].Spans[pos])
		if err != nil {
			return nil, fmt.Errorf("key %q: %w", key, err)
		}
		slices[key] = sub
	}
	return m.rebuild(slot, slices)
}

// recomputeOffsetsLocked refreshes the global worker-ID offsets after any
// topology change. Callers hold m.mu.
func (m *Master) recomputeOffsetsLocked() {
	m.offsets = make([]int, len(m.groups))
	offset := 0
	for g, gm := range m.groups {
		m.offsets[g] = offset
		offset += len(gm.Workers())
	}
}

// Tick runs one step of the elastic policy against the current load signal:
// at most ONE topology change per tick (retire a degenerate tail group, then
// scale up, then scale down, then move rows — first match wins), gated by
// the cooldown so every change is judged on walls it produced. The
// serving layer calls it after each successful round; any caller driving the
// master directly may do the same. Errors are also recorded in
// RebalanceStatus().LastError; the topology is unchanged on error.
func (m *Master) Tick(load LoadSignal) (TickResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.statsMu.Lock()
	m.ticks++
	ewma := append([]float64(nil), m.ewma...)
	since := m.sinceChange
	m.statsMu.Unlock()
	if m.rebuild == nil {
		return TickResult{}, nil // statically sharded: walls tracked, topology frozen
	}
	if since < m.rcfg.CooldownRounds {
		return TickResult{}, nil
	}

	slow, slowWall := argmaxWall(ewma)
	res, err := m.tickLocked(load, ewma, slow, slowWall)
	if err != nil {
		m.statsMu.Lock()
		m.lastErr = err.Error()
		m.statsMu.Unlock()
		return TickResult{}, err
	}
	return res, nil
}

// tickLocked is the policy body; m.mu held.
func (m *Master) tickLocked(load LoadSignal, ewma []float64, slow int, slowWall float64) (TickResult, error) {
	// Retire a drained laggard: wall-equalising moves stall once a degraded
	// group's span is small enough that its wall matches the fleet's — it then
	// holds token rows at a terrible per-row cost forever, and (at MaxGroups)
	// blocks a fresh group from taking its place. A group that rebalancing has
	// already drained to the quantum floor or below a quarter of its fair
	// share, and that STILL pays Ratio-times its best neighbour's per-row
	// cost, has demonstrated it cannot earn its keep: retire it and let the
	// scale-up rule mint a fresh group (fresh seed slot, clean scenario).
	if m.rcfg.autoscale() && len(m.groups) > m.rcfg.MinGroups {
		if g, nbr, ok := m.drainedLaggardLocked(ewma); ok {
			return m.retireLocked(g, nbr)
		}
	}

	if m.rcfg.autoscale() && m.wantScaleUp(load, slowWall) {
		if len(m.groups) < m.rcfg.MaxGroups {
			res, err := m.addGroupLocked(ewma)
			if err != nil || res.Action != "" {
				return res, err
			}
			// No splittable group: fall through to plain rebalancing.
		} else if len(m.groups) > m.rcfg.MinGroups {
			// Growth is wanted but the fleet is full: replace the worst
			// capacity. A group paying Ratio-times the fleet's BEST per-row
			// cost is retired so the next tick can mint a fresh group in the
			// freed slot — degraded capacity out, clean capacity in.
			if g, nbr, ok := m.costLaggardLocked(ewma); ok {
				return m.retireLocked(g, nbr)
			}
		}
	}

	if m.rcfg.autoscale() && len(m.groups) > m.rcfg.MinGroups && m.wantScaleDown(load, slowWall) {
		if nbr, ok := anyNeighbour(ewma, slow); ok {
			return m.retireLocked(slow, nbr)
		}
	}

	// Rebalance the worst adjacent imbalance anywhere in the chain — not
	// just around the globally slowest group, whose own neighbours may
	// already be loaded while a gradient remains further along.
	if from, to, ok := movePair(ewma, m.rcfg.Ratio); ok {
		return m.moveLocked(ewma, from, to)
	}
	return TickResult{}, nil
}

// wantScaleUp checks the configured scale-up signals (any one suffices).
func (m *Master) wantScaleUp(load LoadSignal, slowWall float64) bool {
	switch {
	case m.rcfg.ScaleUpDepth > 0 && load.QueueDepth >= m.rcfg.ScaleUpDepth:
		return true
	case m.rcfg.ScaleUpP99 > 0 && load.P99Sec >= m.rcfg.ScaleUpP99:
		return true
	case m.rcfg.ScaleUpWall > 0 && slowWall >= m.rcfg.ScaleUpWall:
		return true
	}
	return false
}

// wantScaleDown accumulates consecutive idle ticks and fires when enough
// have passed. Callers hold m.mu; the idle counter lives under statsMu.
func (m *Master) wantScaleDown(load LoadSignal, slowWall float64) bool {
	idle := false
	switch {
	case m.rcfg.ScaleUpDepth > 0 && load.QueueDepth <= m.rcfg.ScaleDownDepth:
		idle = true
	case m.rcfg.ScaleDownWall > 0 && slowWall > 0 && slowWall <= m.rcfg.ScaleDownWall:
		idle = true
	}
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	if !idle {
		m.lowTicks = 0
		return false
	}
	m.lowTicks++
	return m.lowTicks >= m.rcfg.ScaleDownTicks
}

// argmaxWall returns the slowest group (lowest index wins ties) and its wall.
func argmaxWall(ewma []float64) (int, float64) {
	best, bestWall := 0, ewma[0]
	for g, w := range ewma {
		if w > bestWall {
			best, bestWall = g, w
		}
	}
	return best, bestWall
}

// movePair scans every adjacent pair and returns the one with the worst
// wall imbalance that clears the trigger ratio, oriented slow→fast. Pairs
// where either side has no wall observed yet (0) are skipped — a move must
// be justified by data. Scanning all pairs (not just the globally slowest
// group's neighbourhood) lets absorbed load ripple along the chain: the
// slowest group's own neighbours may already be loaded while a gradient
// remains between groups further along.
func movePair(ewma []float64, ratio float64) (from, to int, ok bool) {
	bestR := 0.0
	for i := 0; i+1 < len(ewma); i++ {
		hi, lo := ewma[i], ewma[i+1]
		f, t := i, i+1
		if lo > hi {
			f, t, hi, lo = t, f, lo, hi
		}
		if lo <= 0 {
			continue
		}
		if r := hi / lo; r >= ratio && r > bestR {
			from, to, bestR, ok = f, t, r, true
		}
	}
	return from, to, ok
}

// anyNeighbour picks the adjacent group with the lowest observed wall
// (either neighbour if neither has data) — the absorber for a retire.
func anyNeighbour(ewma []float64, g int) (int, bool) {
	nbr, wall := -1, 0.0
	for _, c := range []int{g - 1, g + 1} {
		if c < 0 || c >= len(ewma) {
			continue
		}
		if nbr == -1 || ewma[c] < wall {
			nbr, wall = c, ewma[c]
		}
	}
	return nbr, nbr != -1
}

// drainedLaggardLocked finds a group whose span has been drained to the
// quantum floor or below a quarter of its fair share on every key, yet whose
// per-row cost still exceeds Ratio times its cheapest observed neighbour's —
// the stalled end state of rebalancing against a persistently degraded
// group. Returns the group and the neighbour that should absorb its rows.
func (m *Master) drainedLaggardLocked(ewma []float64) (g, nbr int, ok bool) {
	keys := planKeys(m.plans)
	for g := range m.groups {
		if ewma[g] <= 0 {
			continue // no wall observed since (re)build: judged on data only
		}
		drained := true
		for _, key := range keys {
			rows := m.plans[key].Spans[g].Rows
			fair := m.plans[key].Rows / len(m.groups)
			if rows >= 2*m.quantum && 4*rows > fair {
				drained = false // still holds a real share: let moves keep draining
				break
			}
		}
		if !drained {
			continue
		}
		rowsG := m.plans[keys[0]].Spans[g].Rows
		costG := ewma[g] / float64(rowsG)
		best, bestCost := -1, 0.0
		for _, c := range []int{g - 1, g + 1} {
			if c < 0 || c >= len(ewma) || ewma[c] <= 0 {
				continue
			}
			cost := ewma[c] / float64(m.plans[keys[0]].Spans[c].Rows)
			if best == -1 || cost < bestCost {
				best, bestCost = c, cost
			}
		}
		if best == -1 || costG < m.rcfg.Ratio*bestCost {
			continue
		}
		return g, best, true
	}
	return 0, 0, false
}

// costLaggardLocked finds the below-fair-share group with the fleet's worst
// observed per-row cost when it exceeds Ratio times the fleet's BEST — the
// replace-at-capacity signal. Moves alone equalise WALLS, so a persistently
// degraded group settles into a small span at a terrible per-row cost and
// pins the whole fleet's equilibrium below what fresh capacity would deliver;
// when growth pressure exists and MaxGroups blocks an add, swapping that
// group for a fresh one is the only remaining lever. Requiring the candidate
// to already hold LESS than its fair row share means rebalancing has drained
// it first — a transient wall spike on a full-share group never retires it.
// Returns the group and its absorbing neighbour.
func (m *Master) costLaggardLocked(ewma []float64) (g, nbr int, ok bool) {
	key0 := planKeys(m.plans)[0]
	worst, best := -1, -1
	var worstCost, bestCost float64
	for i, w := range ewma {
		if w <= 0 {
			continue // no wall observed since (re)build: not judged
		}
		rows := m.plans[key0].Spans[i].Rows
		cost := w / float64(rows)
		if rows*len(m.groups) < m.plans[key0].Rows && (worst == -1 || cost > worstCost) {
			worst, worstCost = i, cost
		}
		if best == -1 || cost < bestCost {
			best, bestCost = i, cost
		}
	}
	if worst == -1 || worst == best || worstCost < m.rcfg.Ratio*bestCost {
		return 0, 0, false
	}
	if nbr, ok = anyNeighbour(ewma, worst); !ok {
		return 0, 0, false
	}
	return worst, nbr, true
}

// quantize rounds delta down to a multiple of the quantum.
func (m *Master) quantize(delta int) int { return delta - delta%m.quantum }

// moveLocked moves rows from slow to its faster adjacent neighbour nbr,
// sized so the pair's walls would equalise under their observed per-row
// costs, quantized, and clamped to leave the donor one quantum. m.mu held.
func (m *Master) moveLocked(ewma []float64, slow, nbr int) (TickResult, error) {
	// Per-row costs on the first key's row counts (all keys shrink by the
	// same fraction, so any key gives the same fraction).
	key0 := planKeys(m.plans)[0]
	rowsS := m.plans[key0].Spans[slow].Rows
	rowsN := m.plans[key0].Spans[nbr].Rows
	cS := ewma[slow] / float64(rowsS)
	cN := ewma[nbr] / float64(rowsN)
	target := float64(rowsS+rowsN) * cN / (cS + cN) // slow group's equalising row count
	frac := 1 - target/float64(rowsS)
	if frac <= 0 {
		return TickResult{}, nil
	}

	newPlans := make(map[string]*Plan, len(m.plans))
	moved := 0
	for _, key := range planKeys(m.plans) {
		p := m.plans[key]
		delta := m.quantize(int(frac * float64(p.Spans[slow].Rows)))
		if maxGive := p.Spans[slow].Rows - m.quantum; delta > maxGive {
			delta = m.quantize(maxGive)
		}
		if delta < 1 {
			newPlans[key] = p // this key has nothing to give at quantum granularity
			continue
		}
		np, err := p.MoveRows(slow, nbr, delta)
		if err != nil {
			return TickResult{}, fmt.Errorf("shard: rebalance key %q: %w", key, err)
		}
		newPlans[key] = np
		moved += delta
	}
	if moved == 0 {
		return TickResult{}, nil
	}
	gmS, err := m.buildGroupLocked(m.slots[slow], slow, newPlans)
	if err != nil {
		return TickResult{}, fmt.Errorf("shard: rebuilding donor group %d: %w", slow, err)
	}
	gmN, err := m.buildGroupLocked(m.slots[nbr], nbr, newPlans)
	if err != nil {
		return TickResult{}, fmt.Errorf("shard: rebuilding receiver group %d: %w", nbr, err)
	}
	m.plans = newPlans
	m.groups[slow], m.groups[nbr] = gmS, gmN
	m.recomputeOffsetsLocked()

	m.statsMu.Lock()
	// Scale the pair's estimates by their new row shares so the next trigger
	// decision does not re-fire on stale walls; observed rounds refine them.
	m.ewma[slow] *= float64(newPlans[key0].Spans[slow].Rows) / float64(rowsS)
	m.ewma[nbr] *= float64(newPlans[key0].Spans[nbr].Rows) / float64(rowsN)
	m.moves++
	m.rowsMoved += uint64(moved)
	m.sinceChange = 0
	m.lowTicks = 0
	m.statsMu.Unlock()
	return TickResult{Action: "move", From: slow, To: nbr, Rows: moved}, nil
}

// addGroupLocked splits the slowest splittable group: the donor keeps the
// head half of each span, the new group (fresh slot) takes the tail half and
// is inserted right after it — adjacent to the group most in need of a fast
// neighbour to drain into. m.mu held.
func (m *Master) addGroupLocked(ewma []float64) (TickResult, error) {
	src, found := -1, false
	for g := range m.groups {
		if m.splittableLocked(g) && (!found || ewma[g] > ewma[src]) {
			src, found = g, true
		}
	}
	if !found {
		return TickResult{}, nil // every group is at the floor; nothing to split
	}

	newPlans := make(map[string]*Plan, len(m.plans))
	moved := 0
	for _, key := range planKeys(m.plans) {
		p := m.plans[key]
		delta := m.quantize(p.Spans[src].Rows / 2)
		if delta < m.quantum {
			delta = m.quantum
		}
		if delta > p.Spans[src].Rows-m.quantum {
			return TickResult{}, fmt.Errorf("shard: scale-up: key %q group %d has %d rows, cannot split at quantum %d",
				key, src, p.Spans[src].Rows, m.quantum)
		}
		np, err := p.SplitSpan(src, delta)
		if err != nil {
			return TickResult{}, fmt.Errorf("shard: scale-up key %q: %w", key, err)
		}
		newPlans[key] = np
		moved += delta
	}
	slot := m.nextSlot
	gmSrc, err := m.buildGroupLocked(m.slots[src], src, newPlans)
	if err != nil {
		return TickResult{}, fmt.Errorf("shard: scale-up: rebuilding donor group %d: %w", src, err)
	}
	gmNew, err := m.buildGroupLocked(slot, src+1, newPlans)
	if err != nil {
		return TickResult{}, fmt.Errorf("shard: scale-up: building new group (slot %d): %w", slot, err)
	}
	m.plans = newPlans
	m.groups[src] = gmSrc
	m.groups = append(m.groups[:src+1], append([]GroupMaster{gmNew}, m.groups[src+1:]...)...)
	m.slots = append(m.slots[:src+1], append([]int{slot}, m.slots[src+1:]...)...)
	m.nextSlot++
	m.recomputeOffsetsLocked()

	m.statsMu.Lock()
	key0 := planKeys(newPlans)[0]
	oldRows := newPlans[key0].Spans[src].Rows + newPlans[key0].Spans[src+1].Rows
	srcEwma := m.ewma[src] * float64(newPlans[key0].Spans[src].Rows) / float64(oldRows)
	// The new group starts with no wall estimate (0): its first observed
	// round seeds it — a fresh deployment's speed is not the donor's.
	m.ewma[src] = srcEwma
	m.ewma = append(m.ewma[:src+1], append([]float64{0}, m.ewma[src+1:]...)...)
	m.added++
	m.sinceChange = 0
	m.lowTicks = 0
	m.statsMu.Unlock()
	return TickResult{Action: "add", From: src, To: src + 1, Rows: moved}, nil
}

// splittableLocked reports whether group g can donate a quantum to a new
// group while keeping one itself, on every key.
func (m *Master) splittableLocked(g int) bool {
	for _, key := range planKeys(m.plans) {
		if m.plans[key].Spans[g].Rows < 2*m.quantum {
			return false
		}
	}
	return true
}

// retireLocked merges group g's span into adjacent group nbr and drops g.
// The absorbed rows are re-encoded into nbr's rebuilt master; g's master is
// simply released (Tick holds the topology lock, so no round is in flight —
// that is the drain). m.mu held.
func (m *Master) retireLocked(g, nbr int) (TickResult, error) {
	newPlans := make(map[string]*Plan, len(m.plans))
	moved := 0
	for _, key := range planKeys(m.plans) {
		np, err := m.plans[key].MergeSpan(g, nbr)
		if err != nil {
			return TickResult{}, fmt.Errorf("shard: retire key %q: %w", key, err)
		}
		newPlans[key] = np
		moved += m.plans[key].Spans[g].Rows
	}
	newNbr := nbr
	if nbr > g {
		newNbr = nbr - 1
	}
	gmNbr, err := m.buildGroupLocked(m.slots[nbr], newNbr, newPlans)
	if err != nil {
		return TickResult{}, fmt.Errorf("shard: retire: rebuilding absorber group %d: %w", nbr, err)
	}
	m.plans = newPlans
	m.groups[nbr] = gmNbr
	m.groups = append(m.groups[:g], m.groups[g+1:]...)
	m.slots = append(m.slots[:g], m.slots[g+1:]...)
	m.recomputeOffsetsLocked()

	m.statsMu.Lock()
	// The absorber now carries both groups' work: fold the retired estimate in.
	m.ewma[nbr] += m.ewma[g]
	m.ewma = append(m.ewma[:g], m.ewma[g+1:]...)
	m.retired++
	m.sinceChange = 0
	m.lowTicks = 0
	m.statsMu.Unlock()
	return TickResult{Action: "retire", From: g, To: newNbr, Rows: moved}, nil
}

// Snapshot returns every group's identity, spans, worker count, and live
// coding state, read under the topology lock — the /statz path. The returned
// slices are copies; Span values are immutable snapshots.
func (m *Master) Snapshot() []GroupStatus {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.statsMu.Lock()
	ewma := append([]float64(nil), m.ewma...)
	m.statsMu.Unlock()
	out := make([]GroupStatus, len(m.groups))
	for g, gm := range m.groups {
		st := GroupStatus{
			Group:   g,
			Slot:    m.slotLocked(g),
			Scheme:  gm.Name(),
			Workers: len(gm.Workers()),
			Spans:   make(map[string]Span, len(m.plans)),
		}
		if g < len(ewma) {
			st.EWMAWall = ewma[g]
		}
		for _, key := range planKeys(m.plans) {
			st.Spans[key] = m.plans[key].Spans[g]
		}
		if ad, ok := gm.(adaptive); ok {
			n, k := ad.Coding()
			coding := [2]int{n, k}
			active := len(ad.ActiveWorkers())
			st.Coding, st.Active = &coding, &active
		}
		out[g] = st
	}
	return out
}

// slotLocked returns group g's seed slot (position for static masters built
// before elasticity, where slots were implicitly identity).
func (m *Master) slotLocked(g int) int {
	if g < len(m.slots) {
		return m.slots[g]
	}
	return g
}

// RebalanceStatus snapshots the elastic policy state under the master's
// locks.
func (m *Master) RebalanceStatus() RebalanceStatus {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	return RebalanceStatus{
		Enabled:       m.rebuild != nil,
		Groups:        len(m.groups),
		Quantum:       m.quantum,
		EWMAWall:      append([]float64(nil), m.ewma...),
		NextSlot:      m.nextSlot,
		Ticks:         m.ticks,
		Moves:         m.moves,
		RowsMoved:     m.rowsMoved,
		GroupsAdded:   m.added,
		GroupsRetired: m.retired,
		LastError:     m.lastErr,
	}
}
