package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/avcc"
	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// timedGroup is a scriptable GroupMaster whose round wall scales with the
// rows it was built over — the stand-in for a real group whose compute cost
// tracks its row span. Its decoded output is rows elements of value slot, so
// concatenation length and group order stay checkable across rebalances.
type timedGroup struct {
	slot    int
	rows    int
	perRow  float64
	workers []*cluster.Worker
}

func (g *timedGroup) Name() string                 { return "timed" }
func (g *timedGroup) SetExecutor(cluster.Executor) {}
func (g *timedGroup) Workers() []*cluster.Worker   { return g.workers }
func (g *timedGroup) FinishIteration(int) (float64, bool) {
	return 0, false
}

func (g *timedGroup) RunRound(ctx context.Context, key string, input []field.Elem, iter int) (*cluster.RoundOutput, error) {
	b, err := g.RunRoundBatch(ctx, key, [][]field.Elem{input}, iter)
	if err != nil {
		return nil, err
	}
	return b.Round(0), nil
}

func (g *timedGroup) RunRoundBatch(_ context.Context, _ string, inputs [][]field.Elem, _ int) (*cluster.BatchOutput, error) {
	wall := g.perRow * float64(g.rows)
	out := &cluster.BatchOutput{
		Outputs: make([][]field.Elem, len(inputs)),
		// A coherent breakdown: components sum to exactly the wall.
		Breakdown: metrics.Breakdown{
			Compute: 0.7 * wall, Comm: 0.1 * wall, Verify: 0.1 * wall, Decode: 0.1 * wall, Wall: wall,
		},
	}
	for i := range inputs {
		row := make([]field.Elem, g.rows)
		for r := range row {
			row[r] = field.Elem(g.slot)
		}
		out.Outputs[i] = row
	}
	return out, nil
}

// timedRebuilder builds timedGroups whose per-row cost depends on the seed
// slot — slot identity (not position) carries the degradation, exactly as a
// slot-keyed scenario does in the scheme layer.
func timedRebuilder(perRowOf func(slot int) float64) Rebuilder {
	return func(slot int, data map[string]*fieldmat.Matrix) (GroupMaster, error) {
		rows := 0
		for _, x := range data {
			rows = x.Rows
		}
		g := &timedGroup{slot: slot, rows: rows, perRow: perRowOf(slot)}
		for w := 0; w < 2; w++ {
			g.workers = append(g.workers, cluster.NewWorker(w))
		}
		return g, nil
	}
}

func elasticFixture(t *testing.T, rows, groups, quantum int, rcfg RebalanceConfig, rb Rebuilder) *Master {
	t.Helper()
	x := fieldmat.NewMatrix(rows, 2)
	for i := range x.Data {
		x.Data[i] = field.Elem(i % 97)
	}
	plan, err := EvenPlan(rows, groups)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewElasticMaster(map[string]*fieldmat.Matrix{"fwd": x},
		map[string]*Plan{"fwd": plan}, quantum, rcfg, rb)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// runRound drives one successful round + FinishIteration and fails the test
// on any error; it returns the merged output.
func runRound(t *testing.T, m *Master, iter int) *cluster.BatchOutput {
	t.Helper()
	out, err := m.RunRoundBatch(context.Background(), "fwd", [][]field.Elem{{1, 2}}, iter)
	if err != nil {
		t.Fatalf("round %d: %v", iter, err)
	}
	m.FinishIteration(iter)
	return out
}

func spanRows(t *testing.T, m *Master, key string) []int {
	t.Helper()
	p := m.Plan(key)
	if err := p.Validate(); err != nil {
		t.Fatalf("live plan invalid: %v", err)
	}
	rows := make([]int, len(p.Spans))
	for g, s := range p.Spans {
		rows[g] = s.Rows
	}
	return rows
}

// TestElasticMoveShiftsRowsToFastGroup: a group 4x slower per row must give
// rows to its fast neighbour until the walls roughly equalise, with every
// intermediate plan valid and every merged output still covering all rows.
func TestElasticMoveShiftsRowsToFastGroup(t *testing.T) {
	rcfg := RebalanceConfig{Alpha: 0.5, Ratio: 1.2, CooldownRounds: 1}
	m := elasticFixture(t, 64, 2, 1, rcfg, timedRebuilder(func(slot int) float64 {
		if slot == 0 {
			return 4.0
		}
		return 1.0
	}))
	for i := 0; i < 12; i++ {
		out := runRound(t, m, i)
		if got := len(out.Outputs[0]); got != 64 {
			t.Fatalf("round %d merged output has %d rows, want 64", i, got)
		}
		if _, err := m.Tick(LoadSignal{}); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	rows := spanRows(t, m, "fwd")
	// Equal walls at 4x per-row asymmetry put the slow group near
	// 64/(1+4) ≈ 13 rows; allow slack for EWMA lag and quantization.
	if rows[0] > 20 || rows[0] < 1 {
		t.Errorf("slow group holds %d rows after rebalancing, want it drained toward ~13", rows[0])
	}
	st := m.RebalanceStatus()
	if st.Moves < 1 || st.RowsMoved < 10 {
		t.Errorf("status reports %d moves / %d rows moved, want an actual rebalance", st.Moves, st.RowsMoved)
	}
	if !st.Enabled {
		t.Error("elastic master reports Enabled = false")
	}
}

// TestElasticQuantumAlignment: with a 4-row quantum (the gavcc coded-block
// constraint) every span boundary must stay a multiple of 4 through moves.
func TestElasticQuantumAlignment(t *testing.T) {
	rcfg := RebalanceConfig{Alpha: 0.5, Ratio: 1.2, CooldownRounds: 1}
	m := elasticFixture(t, 32, 2, 4, rcfg, timedRebuilder(func(slot int) float64 {
		if slot == 0 {
			return 5.0
		}
		return 1.0
	}))
	for i := 0; i < 10; i++ {
		runRound(t, m, i)
		if _, err := m.Tick(LoadSignal{}); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		p := m.Plan("fwd")
		for g, s := range p.Spans {
			if s.Start%4 != 0 || s.Rows%4 != 0 {
				t.Fatalf("after tick %d group %d span [%d, %d) breaks the 4-row quantum", i, g, s.Start, s.End())
			}
		}
	}
	if rows := spanRows(t, m, "fwd"); rows[0] < 4 {
		t.Errorf("slow group shrank to %d rows, below the one-quantum floor", rows[0])
	}
	if st := m.RebalanceStatus(); st.Moves < 1 {
		t.Errorf("no moves happened at quantum 4 (status %+v)", st)
	}
}

// TestElasticAutoscaleUpAndDown walks the fleet through queue-driven scale
// up to MaxGroups, idle-driven scale down, and a re-add — checking that
// seed-stream slots are never reused.
func TestElasticAutoscaleUpAndDown(t *testing.T) {
	rcfg := RebalanceConfig{
		Alpha: 0.5, Ratio: 1.2, CooldownRounds: -1, // no cooldown: each tick may act
		MinGroups: 2, MaxGroups: 4,
		ScaleUpDepth: 4, ScaleDownDepth: 0, ScaleDownTicks: 2,
	}
	m := elasticFixture(t, 32, 2, 1, rcfg, timedRebuilder(func(int) float64 { return 1.0 }))

	// Ticks interleave moves with adds/retires (after a split the halves are
	// uneven, so a rebalancing move is a legitimate response), so the
	// assertions are about where the fleet CONVERGES, not per-tick actions.
	iter := 0
	tickUntil := func(depth int, wantGroups int, label string) {
		t.Helper()
		for attempt := 0; attempt < 20; attempt++ {
			runRound(t, m, iter)
			iter++
			res, err := m.Tick(LoadSignal{QueueDepth: depth})
			if err != nil {
				t.Fatalf("%s: tick: %v", label, err)
			}
			if depth >= rcfg.ScaleUpDepth && res.Action == "retire" {
				t.Fatalf("%s: fleet retired a group under load", label)
			}
			if depth <= rcfg.ScaleDownDepth && res.Action == "add" {
				t.Fatalf("%s: fleet added a group while idle", label)
			}
			if m.Groups() == wantGroups {
				return
			}
		}
		t.Fatalf("%s: groups = %d after 20 ticks, want %d", label, m.Groups(), wantGroups)
	}
	holdAt := func(depth, wantGroups int, label string) {
		t.Helper()
		for i := 0; i < 4; i++ {
			runRound(t, m, iter)
			iter++
			if _, err := m.Tick(LoadSignal{QueueDepth: depth}); err != nil {
				t.Fatalf("%s: tick: %v", label, err)
			}
			if m.Groups() != wantGroups {
				t.Fatalf("%s: groups moved to %d, want pinned at %d", label, m.Groups(), wantGroups)
			}
		}
	}

	tickUntil(10, 4, "scale up")
	holdAt(10, 4, "at MaxGroups") // saturated: no growth past the bound
	tickUntil(0, 2, "scale down")
	holdAt(0, 2, "at MinGroups") // idle: never drops below the floor
	tickUntil(10, 3, "re-add")   // grows again — and must take a FRESH slot

	seen := map[int]bool{}
	maxSlot := -1
	for _, gs := range m.Snapshot() {
		if seen[gs.Slot] {
			t.Fatalf("slot %d appears twice in the live fleet", gs.Slot)
		}
		seen[gs.Slot] = true
		if gs.Slot > maxSlot {
			maxSlot = gs.Slot
		}
	}
	st := m.RebalanceStatus()
	if st.GroupsAdded < 3 || st.GroupsRetired < 2 {
		t.Errorf("added/retired = %d/%d, want at least 3/2 across the cycle", st.GroupsAdded, st.GroupsRetired)
	}
	// Every add mints a fresh seed-stream slot; none may recycle a retired
	// group's randomness stream.
	if want := 2 + int(st.GroupsAdded); st.NextSlot != want {
		t.Errorf("NextSlot = %d, want %d (2 initial groups + %d adds, no reuse)", st.NextSlot, want, st.GroupsAdded)
	}
	if maxSlot != st.NextSlot-1 {
		t.Errorf("newest live slot = %d, want the most recently minted %d", maxSlot, st.NextSlot-1)
	}
	if rows := spanRows(t, m, "fwd"); len(rows) != 3 {
		t.Fatalf("plan has %d spans, want 3", len(rows))
	}
}

// TestElasticRetiresDrainedLaggard: a group 8x slower per row first gets
// drained by wall-equalising moves — which stall once its tiny span's wall
// matches the fleet — and must then be RETIRED outright: token rows at a
// terrible per-row cost do not earn a seed slot.
func TestElasticRetiresDrainedLaggard(t *testing.T) {
	rcfg := RebalanceConfig{
		Alpha: 0.5, Ratio: 1.2, CooldownRounds: -1,
		MinGroups: 2, MaxGroups: 3, // no scale-up signals: the fleet may only shrink
	}
	m := elasticFixture(t, 96, 3, 1, rcfg, timedRebuilder(func(slot int) float64 {
		if slot == 1 {
			return 8.0
		}
		return 1.0
	}))
	for i := 0; i < 20 && m.Groups() == 3; i++ {
		runRound(t, m, i)
		if _, err := m.Tick(LoadSignal{}); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	if m.Groups() != 2 {
		t.Fatalf("the 8x laggard was never retired: %d groups, status %+v", m.Groups(), m.RebalanceStatus())
	}
	st := m.RebalanceStatus()
	if st.Moves < 1 || st.GroupsRetired != 1 {
		t.Fatalf("want drain-then-retire (moves >= 1, retired == 1), got status %+v", st)
	}
	for _, gs := range m.Snapshot() {
		if gs.Slot == 1 {
			t.Fatalf("slot 1 still lives after its retirement: %+v", gs)
		}
	}
	if rows := spanRows(t, m, "fwd"); rows[0]+rows[1] != 96 {
		t.Fatalf("retire lost rows: %v", rows)
	}
}

// TestElasticRebuildFailureRollsBack: when the rebuilder rejects a new
// topology (a real scheme constructor can: infeasible K, exhausted hosts),
// the fleet must keep serving under the previous plan and record the error.
func TestElasticRebuildFailureRollsBack(t *testing.T) {
	fail := false
	inner := timedRebuilder(func(int) float64 { return 1.0 })
	rb := func(slot int, data map[string]*fieldmat.Matrix) (GroupMaster, error) {
		if fail {
			return nil, errors.New("no machines left")
		}
		return inner(slot, data)
	}
	rcfg := RebalanceConfig{CooldownRounds: -1, MinGroups: 1, MaxGroups: 3, ScaleUpDepth: 1}
	m := elasticFixture(t, 16, 2, 1, rcfg, rb)

	before := fmt.Sprint(spanRows(t, m, "fwd"), m.Groups())
	runRound(t, m, 0)
	fail = true
	if _, err := m.Tick(LoadSignal{QueueDepth: 5}); err == nil || !strings.Contains(err.Error(), "no machines left") {
		t.Fatalf("tick error = %v, want the rebuilder's failure", err)
	}
	if after := fmt.Sprint(spanRows(t, m, "fwd"), m.Groups()); after != before {
		t.Fatalf("failed scale-up changed the topology: %s -> %s", before, after)
	}
	if st := m.RebalanceStatus(); !strings.Contains(st.LastError, "no machines left") {
		t.Fatalf("LastError = %q, want the rebuild failure recorded", st.LastError)
	}
	runRound(t, m, 1) // the fleet still serves

	fail = false
	if res, err := m.Tick(LoadSignal{QueueDepth: 5}); err != nil || res.Action != "add" {
		t.Fatalf("tick after recovery = (%+v, %v), want a successful add", res, err)
	}
}

// TestMergedBreakdownStaysCoherent is the satellite-2 reconciliation check:
// when every group reports a coherent breakdown (components sum to its
// wall), the merged breakdown must also be coherent — components never sum
// past the merged wall — because it is one group's breakdown, not a
// per-component max across groups.
func TestMergedBreakdownStaysCoherent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		groups := 2 + rng.Intn(4)
		fakes := make([]*fakeGroup, groups)
		plan := &Plan{Rows: groups, Spans: make([]Span, groups)}
		for g := range fakes {
			fakes[g] = newFakeGroup(g, 1)
			comp := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			wall := comp[0] + comp[1] + comp[2] + comp[3]
			fakes[g].out = &cluster.BatchOutput{Breakdown: metrics.Breakdown{
				Compute: comp[0], Comm: comp[1], Verify: comp[2], Decode: comp[3], Wall: wall,
			}}
			plan.Spans[g] = Span{Start: g, Rows: 1}
		}
		m, err := NewMaster(map[string]*Plan{"fwd": plan}, func(g int) (GroupMaster, error) {
			return fakes[g], nil
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := m.RunRoundBatch(context.Background(), "fwd", [][]field.Elem{{1}}, trial)
		if err != nil {
			t.Fatal(err)
		}
		bd := out.Breakdown
		sum := bd.Compute + bd.Comm + bd.Verify + bd.Decode
		if sum > bd.Wall*(1+1e-12) {
			t.Fatalf("trial %d: merged components sum %.6f past the merged wall %.6f: %+v", trial, sum, bd.Wall, bd)
		}
		matches := false
		for _, fg := range fakes {
			if fg.out.Breakdown == bd {
				matches = true
			}
		}
		if !matches {
			t.Fatalf("trial %d: merged breakdown %+v is not any single group's", trial, bd)
		}
	}
}

// TestSiblingCancelSuppressesFinishIteration is the satellite-1 guard at the
// fake level: after a round where one group failed and cancelled its
// sibling, FinishIteration for that iteration must not fan in at all — and
// the suppression must be per-iteration, not permanent.
func TestSiblingCancelSuppressesFinishIteration(t *testing.T) {
	g0, g1 := newFakeGroup(0, 2), newFakeGroup(1, 2)
	g0.block = true // will observe the sibling-induced cancellation
	g1.err = errors.New("decode exploded")
	m, err := NewMaster(twoGroupPlans(t), func(g int) (GroupMaster, error) {
		return []GroupMaster{g0, g1}[g], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunRound(context.Background(), "fwd", []field.Elem{1}, 7); err == nil {
		t.Fatal("round with a failing group succeeded")
	}
	if cost, recoded := m.FinishIteration(7); cost != 0 || recoded {
		t.Fatalf("FinishIteration(failed iter) = (%v, %v), want (0, false)", cost, recoded)
	}
	if g0.finished != 0 || g1.finished != 0 {
		t.Fatalf("FinishIteration fanned into (%d, %d) groups after a failed round, want none", g0.finished, g1.finished)
	}

	// A later iteration that completes cleanly adapts as usual.
	g0.block, g1.err = false, nil
	g0.out = &cluster.BatchOutput{}
	g1.out = &cluster.BatchOutput{}
	if _, err := m.RunRound(context.Background(), "fwd", []field.Elem{1}, 8); err != nil {
		t.Fatal(err)
	}
	m.FinishIteration(8)
	if g0.finished != 1 || g1.finished != 1 {
		t.Fatalf("FinishIteration after a clean round fanned into (%d, %d) groups, want one each", g0.finished, g1.finished)
	}
}

// TestSiblingCancelLeavesAvccAdaptationUntouched is the satellite-1
// regression with a REAL adaptive group: group 0 is a live AVCC master,
// group 1 a fake that fails the round. The cancelled AVCC group must keep
// its (n, k) coding and full active set — before this guard, the
// ctx-cancel erasures read as mass straggling and FinishIteration shrank K
// and quarantined healthy workers.
func TestSiblingCancelLeavesAvccAdaptationUntouched(t *testing.T) {
	f := field.Default()
	rows, cols := 36, 8
	x := fieldmat.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = f.Reduce(uint64(i) * 2654435761)
	}
	plan, err := EvenPlan(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	x0, err := SliceSpan(x, plan.Spans[0])
	if err != nil {
		t.Fatal(err)
	}
	real, err := avcc.NewMaster(f, avcc.Options{
		Params:            avcc.Params{N: 12, K: 9, S: 1, M: 1, DegF: 1},
		Sim:               simnet.DefaultConfig(),
		Seed:              7,
		Dynamic:           true,
		DeterministicKeys: true,
	}, map[string]*fieldmat.Matrix{"fwd": x0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	failer := newFakeGroup(1, 2)
	failer.err = errors.New("transport collapsed")
	m, err := NewMaster(map[string]*Plan{"fwd": plan}, func(g int) (GroupMaster, error) {
		if g == 0 {
			return real, nil
		}
		return failer, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	input := make([]field.Elem, cols)
	for i := range input {
		input[i] = field.Elem(i + 1)
	}
	if _, err := m.RunRound(context.Background(), "fwd", input, 0); err == nil {
		t.Fatal("round with a failing sibling succeeded")
	}
	m.FinishIteration(0)
	if n, k := real.Coding(); n != 12 || k != 9 {
		t.Fatalf("cancelled AVCC group re-coded to (%d, %d) after a sibling failure, want (12, 9) untouched", n, k)
	}
	if active := len(real.ActiveWorkers()); active != 12 {
		t.Fatalf("cancelled AVCC group quarantined down to %d active workers, want all 12", active)
	}
}

// TestSnapshotDuringRebalance hammers Snapshot/RebalanceStatus/Plan from a
// poller goroutine while rounds run and the topology moves — the shard-level
// half of the satellite-3 race fix (run under -race in CI).
func TestSnapshotDuringRebalance(t *testing.T) {
	rcfg := RebalanceConfig{Alpha: 0.5, Ratio: 1.2, CooldownRounds: 1,
		MinGroups: 1, MaxGroups: 4, ScaleUpDepth: 2, ScaleDownTicks: 2}
	m := elasticFixture(t, 64, 2, 1, rcfg, timedRebuilder(func(slot int) float64 {
		if slot == 0 {
			return 4.0
		}
		return 1.0
	}))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, gs := range m.Snapshot() {
				if gs.Workers < 1 || gs.Spans["fwd"].Rows < 1 {
					t.Errorf("snapshot saw a degenerate group: %+v", gs)
					return
				}
			}
			m.RebalanceStatus()
			if err := m.Plan("fwd").Validate(); err != nil {
				t.Errorf("snapshotted plan invalid: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 30; i++ {
		runRound(t, m, i)
		depth := 5
		if i > 20 {
			depth = 0
		}
		if _, err := m.Tick(LoadSignal{QueueDepth: depth}); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
	close(stop)
	<-done
	if st := m.RebalanceStatus(); st.Moves+st.GroupsAdded == 0 {
		t.Error("the topology never moved; the race coverage is vacuous")
	}
}
