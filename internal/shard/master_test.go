package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/metrics"
)

// fakeGroup is a scriptable GroupMaster for fan-out/fan-in tests.
type fakeGroup struct {
	id      int
	workers []*cluster.Worker
	out     *cluster.BatchOutput
	err     error
	// block, when set, makes the round wait for ctx cancellation and
	// return ctx's error; sawCancel is closed once that happens.
	block     bool
	sawCancel chan struct{}
	// finished records FinishIteration calls; cost/recoded are returned.
	finished int
	cost     float64
	recoded  bool
}

func newFakeGroup(id, workers int) *fakeGroup {
	g := &fakeGroup{id: id, sawCancel: make(chan struct{})}
	for w := 0; w < workers; w++ {
		g.workers = append(g.workers, cluster.NewWorker(w))
	}
	return g
}

func (g *fakeGroup) Name() string                 { return "fake" }
func (g *fakeGroup) SetExecutor(cluster.Executor) {}
func (g *fakeGroup) Workers() []*cluster.Worker   { return g.workers }
func (g *fakeGroup) FinishIteration(int) (float64, bool) {
	g.finished++
	return g.cost, g.recoded
}

func (g *fakeGroup) RunRound(ctx context.Context, key string, input []field.Elem, iter int) (*cluster.RoundOutput, error) {
	b, err := g.RunRoundBatch(ctx, key, [][]field.Elem{input}, iter)
	if err != nil {
		return nil, err
	}
	return b.Round(0), nil
}

func (g *fakeGroup) RunRoundBatch(ctx context.Context, _ string, inputs [][]field.Elem, _ int) (*cluster.BatchOutput, error) {
	if g.block {
		<-ctx.Done()
		close(g.sawCancel)
		return nil, ctx.Err()
	}
	if g.err != nil {
		return nil, g.err
	}
	out := &cluster.BatchOutput{
		Outputs:            make([][]field.Elem, len(inputs)),
		Used:               append([]int(nil), g.out.Used...),
		Byzantine:          append([]int(nil), g.out.Byzantine...),
		StragglersObserved: g.out.StragglersObserved,
		Breakdown:          g.out.Breakdown,
	}
	// Each batch entry decodes to [group-id, entry-index] so the test can
	// check both concatenation order and per-entry routing.
	for i := range inputs {
		out.Outputs[i] = []field.Elem{field.Elem(g.id), field.Elem(i)}
	}
	return out, nil
}

func twoGroupPlans(t *testing.T) map[string]*Plan {
	t.Helper()
	p, err := EvenPlan(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Plan{"fwd": p}
}

func TestMasterFanOutMergesGroups(t *testing.T) {
	g0, g1 := newFakeGroup(0, 3), newFakeGroup(1, 5)
	g0.out = &cluster.BatchOutput{
		Used: []int{0, 2}, Byzantine: []int{1}, StragglersObserved: 1,
		Breakdown: metrics.Breakdown{Compute: 2, Comm: 1, Verify: 5, Decode: 1, Wall: 9},
	}
	g1.out = &cluster.BatchOutput{
		Used: []int{1, 4}, Byzantine: nil, StragglersObserved: 2,
		Breakdown: metrics.Breakdown{Compute: 3, Comm: 0.5, Verify: 2, Decode: 4, Wall: 7},
	}
	m, err := NewMaster(twoGroupPlans(t), func(g int) (GroupMaster, error) {
		return []GroupMaster{g0, g1}[g], nil
	})
	if err != nil {
		t.Fatal(err)
	}

	out, err := m.RunRoundBatch(context.Background(), "fwd", [][]field.Elem{{1}, {2}, {3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range [][]field.Elem{{0, 0, 1, 0}, {0, 1, 1, 1}, {0, 2, 1, 2}} {
		if !field.EqualVec(out.Outputs[i], want) {
			t.Errorf("batch entry %d = %v, want group-0-then-group-1 concat %v", i, out.Outputs[i], want)
		}
	}
	// Group 1's local worker IDs are offset by group 0's worker count (3).
	if want := []int{0, 2, 3 + 1, 3 + 4}; fmt.Sprint(out.Used) != fmt.Sprint(want) {
		t.Errorf("Used = %v, want globalised %v", out.Used, want)
	}
	if want := []int{1}; fmt.Sprint(out.Byzantine) != fmt.Sprint(want) {
		t.Errorf("Byzantine = %v, want %v", out.Byzantine, want)
	}
	if out.StragglersObserved != 3 {
		t.Errorf("StragglersObserved = %d, want summed 3", out.StragglersObserved)
	}
	// Parallel groups: the merged breakdown is the SLOWEST group's, verbatim
	// (group 0, wall 9). Taking per-component maxes across groups would mix
	// components from different groups and could sum past the reported wall.
	want := metrics.Breakdown{Compute: 2, Comm: 1, Verify: 5, Decode: 1, Wall: 9}
	if out.Breakdown != want {
		t.Errorf("Breakdown = %+v, want the slowest group's coherent breakdown %+v", out.Breakdown, want)
	}
	if got := len(m.Workers()); got != 8 {
		t.Errorf("Workers() = %d, want 3+5", got)
	}
}

func TestMasterGroupFailureCancelsTheRest(t *testing.T) {
	g0, g1 := newFakeGroup(0, 2), newFakeGroup(1, 2)
	g0.err = errors.New("decode exploded")
	g1.block = true
	m, err := NewMaster(twoGroupPlans(t), func(g int) (GroupMaster, error) {
		return []GroupMaster{g0, g1}[g], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.RunRound(context.Background(), "fwd", []field.Elem{1}, 0)
	if err == nil || !strings.Contains(err.Error(), "group 0") || !strings.Contains(err.Error(), "decode exploded") {
		t.Fatalf("error = %v, want group-0-tagged decode failure", err)
	}
	select {
	case <-g1.sawCancel:
	case <-time.After(5 * time.Second):
		t.Fatal("group 1 never saw the cancellation after group 0 failed")
	}
}

// TestMasterGroupFailureSurfacesRootCause pins the error-selection rule:
// when a HIGHER-index group fails with a real error, the lower-index
// sibling's cancellation abort (context.Canceled, a mere consequence) must
// not mask it.
func TestMasterGroupFailureSurfacesRootCause(t *testing.T) {
	g0, g1 := newFakeGroup(0, 2), newFakeGroup(1, 2)
	g0.block = true // aborts with ctx.Err() once group 1's failure cancels
	g1.err = errors.New("decode exploded")
	m, err := NewMaster(twoGroupPlans(t), func(g int) (GroupMaster, error) {
		return []GroupMaster{g0, g1}[g], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.RunRound(context.Background(), "fwd", []field.Elem{1}, 0)
	if err == nil || !strings.Contains(err.Error(), "group 1") || !strings.Contains(err.Error(), "decode exploded") {
		t.Fatalf("error = %v, want group 1's root-cause failure, not group 0's cancellation", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v wraps context.Canceled: a real group failure must not read as a caller cancellation", err)
	}
}

func TestMasterHonoursCallerContext(t *testing.T) {
	g0 := newFakeGroup(0, 2)
	g0.block = true
	m, err := NewMaster(map[string]*Plan{"fwd": {Rows: 4, Spans: []Span{{0, 4}}}},
		func(int) (GroupMaster, error) { return g0, nil })
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	if _, err := m.RunRound(ctx, "fwd", []field.Elem{1}, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled round returned %v, want context.Canceled", err)
	}
}

func TestMasterFinishIterationFansIn(t *testing.T) {
	g0, g1 := newFakeGroup(0, 2), newFakeGroup(1, 2)
	g0.cost, g0.recoded = 3.5, false
	g1.cost, g1.recoded = 1.0, true
	m, err := NewMaster(twoGroupPlans(t), func(g int) (GroupMaster, error) {
		return []GroupMaster{g0, g1}[g], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cost, recoded := m.FinishIteration(4)
	if g0.finished != 1 || g1.finished != 1 {
		t.Fatalf("FinishIteration calls = (%d, %d), want one per group", g0.finished, g1.finished)
	}
	if cost != 3.5 {
		t.Errorf("recode cost = %v, want the slowest group's 3.5 (groups re-code in parallel)", cost)
	}
	if !recoded {
		t.Error("recoded = false although group 1 re-coded")
	}
}

func TestNewMasterRejectsInconsistentPlans(t *testing.T) {
	p2, _ := EvenPlan(8, 2)
	p3, _ := EvenPlan(9, 3)
	_, err := NewMaster(map[string]*Plan{"fwd": p2, "bwd": p3},
		func(int) (GroupMaster, error) { return newFakeGroup(0, 1), nil })
	if err == nil {
		t.Fatal("plans with differing group counts accepted")
	}
	if _, err := NewMaster(nil, func(int) (GroupMaster, error) { return newFakeGroup(0, 1), nil }); err == nil {
		t.Fatal("empty plan map accepted")
	}
	_, err = NewMaster(map[string]*Plan{"fwd": p2}, func(g int) (GroupMaster, error) {
		if g == 1 {
			return nil, errors.New("no machines left")
		}
		return newFakeGroup(g, 1), nil
	})
	if err == nil || !strings.Contains(err.Error(), "group 1") {
		t.Fatalf("builder failure surfaced as %v, want a group-1-tagged error", err)
	}
}
