package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

func TestEvenPlan(t *testing.T) {
	cases := []struct {
		rows, groups int
		want         []Span
	}{
		{10, 1, []Span{{0, 10}}},
		{10, 2, []Span{{0, 5}, {5, 5}}},
		{11, 2, []Span{{0, 6}, {6, 5}}},
		{7, 3, []Span{{0, 3}, {3, 2}, {5, 2}}},
		{4, 4, []Span{{0, 1}, {1, 1}, {2, 1}, {3, 1}}},
	}
	for _, tc := range cases {
		p, err := EvenPlan(tc.rows, tc.groups)
		if err != nil {
			t.Fatalf("EvenPlan(%d, %d): %v", tc.rows, tc.groups, err)
		}
		if len(p.Spans) != len(tc.want) {
			t.Fatalf("EvenPlan(%d, %d): %d spans, want %d", tc.rows, tc.groups, len(p.Spans), len(tc.want))
		}
		for g, s := range p.Spans {
			if s != tc.want[g] {
				t.Errorf("EvenPlan(%d, %d) span %d = %+v, want %+v", tc.rows, tc.groups, g, s, tc.want[g])
			}
		}
		if err := p.Validate(); err != nil {
			t.Errorf("EvenPlan(%d, %d) does not validate: %v", tc.rows, tc.groups, err)
		}
	}
}

func TestEvenPlanRejectsImpossibleSplits(t *testing.T) {
	for _, tc := range []struct{ rows, groups int }{{3, 4}, {0, 1}, {10, 0}, {10, -1}} {
		if _, err := EvenPlan(tc.rows, tc.groups); err == nil {
			t.Errorf("EvenPlan(%d, %d) accepted an impossible split", tc.rows, tc.groups)
		}
	}
}

func TestWeightedPlanProportions(t *testing.T) {
	p, err := WeightedPlan(100, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Spans[0].Rows != 75 || p.Spans[1].Rows != 25 {
		t.Fatalf("WeightedPlan(100, 3:1) = %d/%d rows, want 75/25", p.Spans[0].Rows, p.Spans[1].Rows)
	}
	// Every group keeps at least one row even under extreme skew.
	p, err = WeightedPlan(10, []float64{1000, 1e-9, 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for g, s := range p.Spans {
		if s.Rows < 1 {
			t.Fatalf("WeightedPlan skew left group %d with %d rows", g, s.Rows)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedPlanRejectsBadWeights(t *testing.T) {
	if _, err := WeightedPlan(10, []float64{1, 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := WeightedPlan(10, []float64{1, -2}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := WeightedPlan(1, []float64{1, 1}); err == nil {
		t.Error("more groups than rows accepted")
	}
	if _, err := WeightedPlan(10, nil); err == nil {
		t.Error("empty weights accepted")
	}
}

func TestPlanValidateCatchesCorruptPlans(t *testing.T) {
	bad := []Plan{
		{Rows: 10, Spans: nil},
		{Rows: 10, Spans: []Span{{0, 5}}},           // under-covers
		{Rows: 10, Spans: []Span{{0, 5}, {5, 6}}},   // over-covers
		{Rows: 10, Spans: []Span{{0, 5}, {6, 4}}},   // gap
		{Rows: 10, Spans: []Span{{0, 6}, {4, 6}}},   // overlap
		{Rows: 10, Spans: []Span{{0, 10}, {10, 0}}}, // empty span
		{Rows: 10, Spans: []Span{{5, 5}, {0, 5}}},   // out of order
		{Rows: 0, Spans: []Span{}},                  // nothing to cover
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated: %+v", i, p)
		}
	}
}

func TestSplitRoundTrip(t *testing.T) {
	f := field.Default()
	rng := rand.New(rand.NewSource(3))
	m := fieldmat.Rand(f, rng, 23, 7)
	p, err := EvenPlan(m.Rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := p.Split(m)
	if err != nil {
		t.Fatal(err)
	}
	var back []field.Elem
	for g, part := range parts {
		if part.Rows != p.Spans[g].Rows || part.Cols != m.Cols {
			t.Fatalf("group %d slice is %dx%d, want %dx%d", g, part.Rows, part.Cols, p.Spans[g].Rows, m.Cols)
		}
		back = append(back, part.Data...)
	}
	if !field.EqualVec(back, m.Data) {
		t.Fatal("concatenating the split slices does not reproduce the matrix")
	}
	// Slices must be copies: mutating one must not alias the original.
	parts[0].Data[0]++
	if parts[0].Data[0] == m.Data[0] {
		t.Fatal("split slice aliases the source matrix")
	}
}

func TestPlanMoveRows(t *testing.T) {
	base := func() *Plan { p, _ := EvenPlan(12, 3); return p } // [0,4) [4,8) [8,12)

	q, err := base().MoveRows(1, 2, 2) // tail of 1 becomes head of 2
	if err != nil {
		t.Fatal(err)
	}
	if want := []Span{{0, 4}, {4, 2}, {6, 6}}; fmt.Sprint(q.Spans) != fmt.Sprint(want) {
		t.Errorf("MoveRows(1->2, 2) = %+v, want %+v", q.Spans, want)
	}
	q, err = base().MoveRows(1, 0, 3) // head of 1 becomes tail of 0
	if err != nil {
		t.Fatal(err)
	}
	if want := []Span{{0, 7}, {7, 1}, {8, 4}}; fmt.Sprint(q.Spans) != fmt.Sprint(want) {
		t.Errorf("MoveRows(1->0, 3) = %+v, want %+v", q.Spans, want)
	}

	for name, run := range map[string]func() (*Plan, error){
		"non-adjacent":   func() (*Plan, error) { return base().MoveRows(0, 2, 1) },
		"out of range":   func() (*Plan, error) { return base().MoveRows(2, 3, 1) },
		"zero delta":     func() (*Plan, error) { return base().MoveRows(0, 1, 0) },
		"empties donor":  func() (*Plan, error) { return base().MoveRows(0, 1, 4) },
		"self move":      func() (*Plan, error) { return base().MoveRows(1, 1, 1) },
		"negative delta": func() (*Plan, error) { return base().MoveRows(0, 1, -2) },
	} {
		if _, err := run(); err == nil {
			t.Errorf("MoveRows accepted a %s move", name)
		}
	}

	// Mutation helpers return fresh plans; the input is never edited.
	p := base()
	if _, err := p.MoveRows(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(p.Spans) != fmt.Sprint(base().Spans) {
		t.Errorf("MoveRows mutated its receiver: %+v", p.Spans)
	}
}

func TestPlanSplitAndMergeSpan(t *testing.T) {
	p, _ := EvenPlan(12, 2) // [0,6) [6,12)

	q, err := p.SplitSpan(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := []Span{{0, 4}, {4, 2}, {6, 6}}; fmt.Sprint(q.Spans) != fmt.Sprint(want) {
		t.Errorf("SplitSpan(0, 2) = %+v, want %+v", q.Spans, want)
	}
	if _, err := p.SplitSpan(0, 6); err == nil {
		t.Error("SplitSpan took the donor's whole span")
	}
	if _, err := p.SplitSpan(2, 1); err == nil {
		t.Error("SplitSpan accepted an out-of-range group")
	}

	r, err := q.MergeSpan(1, 2) // undo the split the other way: 1 absorbed down into 2
	if err != nil {
		t.Fatal(err)
	}
	if want := []Span{{0, 4}, {4, 8}}; fmt.Sprint(r.Spans) != fmt.Sprint(want) {
		t.Errorf("MergeSpan(1->2) = %+v, want %+v", r.Spans, want)
	}
	r, err = q.MergeSpan(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := []Span{{0, 6}, {6, 6}}; fmt.Sprint(r.Spans) != fmt.Sprint(want) {
		t.Errorf("MergeSpan(1->0) = %+v, want %+v", r.Spans, want)
	}
	if _, err := q.MergeSpan(0, 2); err == nil {
		t.Error("MergeSpan accepted non-adjacent groups")
	}
	single := &Plan{Rows: 4, Spans: []Span{{0, 4}}}
	if _, err := single.MergeSpan(0, 0); err == nil {
		t.Error("MergeSpan removed the last group")
	}
}

// TestPlanMutationSequencesKeepTiling is the satellite property test: any
// sequence of accepted mutations leaves the plan a perfect tiling of
// [0, rows) — validated, gap-free, with the total row count conserved.
func TestPlanMutationSequencesKeepTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(96)
		groups := 1 + rng.Intn(6)
		if groups > rows {
			groups = rows
		}
		p, err := EvenPlan(rows, groups)
		if err != nil {
			t.Fatal(err)
		}
		accepted := 0
		for step := 0; step < 40; step++ {
			g := rng.Intn(p.Groups())
			var q *Plan
			switch rng.Intn(3) {
			case 0:
				q, err = p.MoveRows(g, g+1-2*rng.Intn(2), 1+rng.Intn(5))
			case 1:
				q, err = p.SplitSpan(g, 1+rng.Intn(5))
			default:
				q, err = p.MergeSpan(g, g+1-2*rng.Intn(2))
			}
			if err != nil {
				continue
			}
			accepted++
			if err := q.Validate(); err != nil {
				t.Fatalf("trial %d step %d: accepted mutation broke the plan: %v (%+v)", trial, step, err, q.Spans)
			}
			if q.Rows != rows {
				t.Fatalf("trial %d step %d: mutation changed the row total to %d, want %d", trial, step, q.Rows, rows)
			}
			p = q
		}
		if rows > 8 && accepted == 0 {
			t.Fatalf("trial %d: no mutation was ever accepted on a %d-row plan; the property is vacuous", trial, rows)
		}
	}
}

func TestSplitRejectsMismatchedRows(t *testing.T) {
	f := field.Default()
	m := fieldmat.Rand(f, rand.New(rand.NewSource(1)), 9, 3)
	p, _ := EvenPlan(12, 3)
	if _, err := p.Split(m); err == nil {
		t.Fatal("plan for 12 rows split a 9-row matrix")
	}
}
