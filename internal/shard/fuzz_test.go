package shard

import (
	"fmt"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

// FuzzShardPlan pins the plan constructors and the split/concat round trip
// across ragged sizes: whatever (rows, groups, weights) the fuzzer throws,
// an accepted plan must tile the rows exactly, give every group at least
// one row, keep even spans within one row of each other, and split a matrix
// into slices whose concatenation is bit-identical to the source.
func FuzzShardPlan(fz *testing.F) {
	fz.Add(10, 3, 5, byte(7))
	fz.Add(1, 1, 1, byte(0))
	fz.Add(23, 4, 2, byte(255))
	fz.Add(64, 16, 1, byte(3))
	fz.Add(7, 8, 3, byte(9)) // more groups than rows: must be rejected
	fz.Fuzz(func(t *testing.T, rows, groups, cols int, wseed byte) {
		if rows < 0 || rows > 512 || groups < -4 || groups > 64 || cols < 1 || cols > 8 {
			t.Skip()
		}
		even, err := EvenPlan(rows, groups)
		if groups < 1 || rows < groups {
			if err == nil {
				t.Fatalf("EvenPlan(%d, %d) accepted an impossible split", rows, groups)
			}
			return
		}
		if err != nil {
			t.Fatalf("EvenPlan(%d, %d): %v", rows, groups, err)
		}
		checkPlan(t, even, rows, groups)
		for _, s := range even.Spans {
			if d := s.Rows - even.Spans[groups-1].Rows; d < 0 || d > 1 {
				t.Fatalf("EvenPlan(%d, %d) spans are not within one row: %+v", rows, groups, even.Spans)
			}
		}

		weights := make([]float64, groups)
		for g := range weights {
			weights[g] = 1 + float64((int(wseed)+3*g)%7)
		}
		weighted, err := WeightedPlan(rows, weights)
		if err != nil {
			t.Fatalf("WeightedPlan(%d, %v): %v", rows, weights, err)
		}
		checkPlan(t, weighted, rows, groups)

		f := field.Default()
		m := fieldmat.NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = f.Reduce(uint64(i)*2654435761 + uint64(wseed))
		}
		for _, p := range []*Plan{even, weighted} {
			parts, err := p.Split(m)
			if err != nil {
				t.Fatalf("Split: %v", err)
			}
			var back []field.Elem
			for _, part := range parts {
				back = append(back, part.Data...)
			}
			if !field.EqualVec(back, m.Data) {
				t.Fatalf("split/concat round trip lost rows for plan %+v", p.Spans)
			}
		}

		// Mutation sequences: drive the rebalancer's plan operations
		// (MoveRows / SplitSpan / MergeSpan) from an LCG and check that every
		// ACCEPTED mutation yields a plan that still validates, still covers
		// [0, rows), and still round-trips split/concat — while REJECTED ops
		// leave the input untouched (the helpers clone, never edit in place).
		p := even
		lcg := uint64(wseed)*6364136223846793005 + uint64(rows)*1442695040888963407 + uint64(groups) + 1
		next := func(n int) int {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			return int((lcg >> 33) % uint64(n))
		}
		for step := 0; step < 24; step++ {
			beforeSpans := fmt.Sprint(p.Spans)
			var q *Plan
			var err error
			switch g := next(p.Groups()); next(3) {
			case 0:
				to := g + 1 - 2*next(2) // either neighbour, possibly out of range
				q, err = p.MoveRows(g, to, 1+next(4))
			case 1:
				q, err = p.SplitSpan(g, 1+next(4))
			default:
				q, err = p.MergeSpan(g, g+1-2*next(2))
			}
			if fmt.Sprint(p.Spans) != beforeSpans {
				t.Fatalf("step %d mutated the input plan in place: %s -> %+v", step, beforeSpans, p.Spans)
			}
			if err != nil {
				continue // rejected op: plan unchanged, try the next one
			}
			checkPlan(t, q, rows, q.Groups())
			parts, err := q.Split(m)
			if err != nil {
				t.Fatalf("step %d: Split of mutated plan %+v: %v", step, q.Spans, err)
			}
			var back []field.Elem
			for _, part := range parts {
				back = append(back, part.Data...)
			}
			if !field.EqualVec(back, m.Data) {
				t.Fatalf("step %d: split/concat round trip lost rows for mutated plan %+v", step, q.Spans)
			}
			p = q
		}
	})
}

func checkPlan(t *testing.T, p *Plan, rows, groups int) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("constructor returned an invalid plan: %v", err)
	}
	if p.Groups() != groups {
		t.Fatalf("plan has %d groups, want %d", p.Groups(), groups)
	}
	covered := 0
	for g, s := range p.Spans {
		if s.Rows < 1 {
			t.Fatalf("group %d got %d rows", g, s.Rows)
		}
		covered += s.Rows
	}
	if covered != rows {
		t.Fatalf("spans cover %d rows, want %d", covered, rows)
	}
}
