package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/fieldmat"
)

// GroupMaster is what each shard group must provide: the protocol-side
// cluster.Master plus the deployment hooks (structurally identical to
// scheme.Master, redeclared here so this package does not depend on the
// registry layer that wraps it).
type GroupMaster interface {
	cluster.Master
	SetExecutor(e cluster.Executor)
	Workers() []*cluster.Worker
}

// Builder constructs the master for group g. Each call must return an
// independent deployment — its own workers, executor, scenario dynamics,
// and adaptation state — already holding group g's row shard of every round
// key. The scheme layer passes a registry-backed builder; tests may build
// groups with entirely different scenarios to prove fault isolation.
type Builder func(g int) (GroupMaster, error)

// noFailedIter marks "no round has failed" in Master.failedIter.
const noFailedIter = math.MinInt

// Master presents a fleet of independently coded worker groups as one
// cluster.Master. RunRound/RunRoundBatch fan the (batched) input out to all
// groups concurrently and concatenate the per-group decodes in plan order;
// FinishIteration fans in so each group adapts on its own observed
// stragglers and Byzantines. Worker IDs in Used/Byzantine are globalised by
// offsetting each group's local IDs with the worker counts of the groups
// before it.
//
// Failure semantics: a round fails if ANY group's round fails — the decoded
// output is a concatenation, so a missing slice is not a partial success.
// The first failing group's error (lowest group index) is returned, tagged
// with the group, and the shared round context is cancelled so the other
// groups stop promptly instead of computing output that will be discarded.
//
// Elasticity: a master built with NewElasticMaster additionally tracks an
// EWMA of every group's observed round wall and can change its own topology
// between rounds (Tick, in rebalance.go) — moving rows from slow groups to
// fast ones and adding/retiring whole groups. Topology state (plans, groups,
// offsets, slots) is guarded by mu: rounds hold it for reading, so a
// topology change drains the round in flight before taking effect and no
// round ever observes a half-installed fleet. The wall estimates and policy
// counters are guarded by the narrower statsMu so concurrent rounds (which
// share mu's read side) can record observations.
type Master struct {
	// mu is the topology lock: plans, groups, offsets, slots, nextSlot.
	mu     sync.RWMutex
	plans  map[string]*Plan
	groups []GroupMaster
	// offsets[g] is the global worker-ID offset of group g (sum of the
	// worker counts of groups 0..g-1).
	offsets []int
	// slots[g] is group g's seed-stream slot (see Rebuilder); identity for
	// statically built masters.
	slots    []int
	nextSlot int

	// Elastic wiring; nil/zero for NewMaster-built (static) fleets.
	data    map[string]*fieldmat.Matrix
	quantum int
	rcfg    RebalanceConfig
	rebuild Rebuilder

	// statsMu guards the observation and policy state below.
	statsMu sync.Mutex
	// ewma[g] is group g's smoothed round wall (virtual seconds; 0 = no
	// round observed since the group was (re)built).
	ewma []float64
	// failedIter is the iteration whose most recent round failed —
	// FinishIteration for it is suppressed (see there). noFailedIter = none.
	failedIter int
	// sinceChange counts successful rounds since the last topology change
	// (the rebalance cooldown unit).
	sinceChange int
	lowTicks    int
	ticks       uint64
	moves       uint64
	rowsMoved   uint64
	added       uint64
	retired     uint64
	lastErr     string
}

// NewMaster builds a statically sharded master: plans maps each round key to
// the row plan its matrix was split under (metadata for introspection — the
// fan-out itself only needs the groups), and build is called once per group.
// All plans must agree on the group count. The topology is frozen for the
// master's lifetime (Tick is a no-op); use NewElasticMaster for a fleet that
// rebalances itself.
func NewMaster(plans map[string]*Plan, build Builder) (*Master, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("shard: no plans")
	}
	groups := -1
	for _, key := range planKeys(plans) {
		p := plans[key]
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("shard: key %q: %w", key, err)
		}
		if groups == -1 {
			groups = p.Groups()
		} else if p.Groups() != groups {
			return nil, fmt.Errorf("shard: key %q plans %d groups, other keys plan %d", key, p.Groups(), groups)
		}
	}
	m := &Master{
		plans:      plans,
		groups:     make([]GroupMaster, groups),
		offsets:    make([]int, groups),
		slots:      make([]int, groups),
		nextSlot:   groups,
		quantum:    1,
		rcfg:       DefaultRebalanceConfig().withDefaults(),
		ewma:       make([]float64, groups),
		failedIter: noFailedIter,
	}
	offset := 0
	for g := range m.groups {
		gm, err := build(g)
		if err != nil {
			return nil, fmt.Errorf("shard: building group %d: %w", g, err)
		}
		m.groups[g] = gm
		m.offsets[g] = offset
		m.slots[g] = g
		offset += len(gm.Workers())
	}
	return m, nil
}

// planKeys returns the plan keys in sorted order (deterministic iteration).
func planKeys(plans map[string]*Plan) []string {
	keys := make([]string, 0, len(plans))
	for k := range plans {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Groups returns the number of shard groups.
func (m *Master) Groups() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.groups)
}

// Group returns group g's master — the hook for per-group introspection
// (type-assert to scheme.Adaptive to watch one group's re-coding) and for
// per-group deployment wiring. On an elastic master the binding of index to
// deployment only holds until the next topology change; use Snapshot for a
// consistent fleet view.
func (m *Master) Group(g int) GroupMaster {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.groups[g]
}

// Plan returns the row plan the given round key is currently sharded under
// (nil if the key is unknown). The returned plan is an immutable snapshot:
// rebalancing installs fresh Plan values, it never edits one in place.
func (m *Master) Plan(key string) *Plan {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.plans[key]
}

// Keys returns the sharded round keys in sorted order.
func (m *Master) Keys() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return planKeys(m.plans)
}

// Name implements cluster.Master: a sharded deployment carries its groups'
// scheme identity (all groups run the same scheme).
func (m *Master) Name() string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.groups[0].Name()
}

// SetExecutor implements the deployment hook by forwarding the executor to
// every group. Groups have disjoint worker sets, so a shared executor only
// makes sense for executors that resolve workers per call; per-group
// executors should be installed through Group(g).SetExecutor instead.
func (m *Master) SetExecutor(e cluster.Executor) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, gm := range m.groups {
		gm.SetExecutor(e)
	}
}

// Workers implements the deployment hook: the concatenation of every
// group's workers, in group order (matching the global ID offsets used in
// Used/Byzantine).
func (m *Master) Workers() []*cluster.Worker {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var all []*cluster.Worker
	for _, gm := range m.groups {
		all = append(all, gm.Workers()...)
	}
	return all
}

// RunRound implements cluster.Master as the batch-of-one projection of
// RunRoundBatch, like every other master.
func (m *Master) RunRound(ctx context.Context, key string, input []field.Elem, iter int) (*cluster.RoundOutput, error) {
	b, err := m.RunRoundBatch(ctx, key, [][]field.Elem{input}, iter)
	if err != nil {
		return nil, err
	}
	return b.Round(0), nil
}

// RunRoundBatch implements cluster.Master: the batch is broadcast to every
// group concurrently (each group runs its own full coded round over its row
// shard — encode-side packing, verification, and decoding all happen
// per-group), and Outputs[i] is the concatenation of the groups' decoded
// outputs for batch entry i, in plan order. The merged Breakdown is the
// SLOWEST group's breakdown verbatim (groups run in parallel, so the
// fleet's wall is the max — and taking the whole breakdown from that one
// group keeps it coherent: components reported by one group can never sum
// past the wall the same group reported). StragglersObserved sums across
// groups. The round holds the topology read lock, so an elastic rebalance
// waits for it rather than swapping groups mid-flight.
func (m *Master) RunRoundBatch(ctx context.Context, key string, inputs [][]field.Elem, iter int) (*cluster.BatchOutput, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	outs := make([]*cluster.BatchOutput, len(m.groups))
	errs := make([]error, len(m.groups))
	var wg sync.WaitGroup
	for g, gm := range m.groups {
		wg.Add(1)
		go func(g int, gm GroupMaster) {
			defer wg.Done()
			out, err := gm.RunRoundBatch(ctx, key, inputs, iter)
			if err != nil {
				errs[g] = err
				cancel() // one missing slice fails the round; stop the rest
				return
			}
			outs[g] = out
		}(g, gm)
	}
	wg.Wait()
	// Surface the ROOT CAUSE: a group that aborted with a context error did
	// so because a sibling failed first (the cancel above) or because the
	// caller cancelled — either way it is not the interesting error. Only
	// when every failing group reports a context error (pure caller
	// cancellation) is that error itself returned.
	var ctxErrIdx = -1
	for g, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if ctxErrIdx == -1 {
				ctxErrIdx = g
			}
			continue
		}
		m.noteFailedRound(iter)
		return nil, fmt.Errorf("shard: group %d: %w", g, err)
	}
	if ctxErrIdx != -1 {
		m.noteFailedRound(iter)
		return nil, fmt.Errorf("shard: group %d: %w", ctxErrIdx, errs[ctxErrIdx])
	}

	batch := len(inputs)
	merged := &cluster.BatchOutput{Outputs: make([][]field.Elem, batch)}
	for i := range merged.Outputs {
		var total int
		for _, out := range outs {
			total += len(out.Outputs[i])
		}
		full := make([]field.Elem, 0, total)
		for _, out := range outs {
			full = append(full, out.Outputs[i]...)
		}
		merged.Outputs[i] = full
	}
	walls := make([]float64, len(outs))
	slowest := 0
	for g, out := range outs {
		off := m.offsets[g]
		for _, id := range out.Used {
			merged.Used = append(merged.Used, off+id)
		}
		for _, id := range out.Byzantine {
			merged.Byzantine = append(merged.Byzantine, off+id)
		}
		merged.StragglersObserved += out.StragglersObserved
		walls[g] = out.Breakdown.Wall
		if out.Breakdown.Wall > outs[slowest].Breakdown.Wall {
			slowest = g
		}
	}
	merged.Breakdown = outs[slowest].Breakdown
	m.noteWalls(walls)

	// Fold the per-group receipts into one fleet receipt (group order matches
	// the output concatenation, so a verifier replays the exact round). Only
	// when every group issued one: a mixed fleet has no sound fleet receipt.
	receipts := make([]*commit.Receipt, 0, len(outs))
	for _, out := range outs {
		if out.Receipt == nil {
			receipts = nil
			break
		}
		receipts = append(receipts, out.Receipt)
	}
	if len(receipts) == len(outs) && len(receipts) > 0 {
		folded, err := commit.FoldReceipts(receipts)
		if err != nil {
			return nil, fmt.Errorf("shard: folding receipts: %w", err)
		}
		merged.Receipt = folded
	}
	return merged, nil
}

// noteFailedRound marks iter as failed so FinishIteration(iter) is
// suppressed. Sticky for the iteration: even if a retried round for the same
// iter later succeeds, observations from the failed attempt may still be
// stranded inside the group masters, so adaptation stays off until a fresh
// iteration completes.
func (m *Master) noteFailedRound(iter int) {
	m.statsMu.Lock()
	m.failedIter = iter
	m.statsMu.Unlock()
}

// noteWalls feeds one successful round's per-group walls into the EWMA
// estimates (Breakdown.Wall per group) and advances the rebalance cooldown.
func (m *Master) noteWalls(walls []float64) {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	alpha := m.rcfg.Alpha
	for g, w := range walls {
		if g >= len(m.ewma) {
			break // topology changed between scheduling and recording; drop
		}
		if m.ewma[g] == 0 {
			m.ewma[g] = w
		} else {
			m.ewma[g] = alpha*w + (1-alpha)*m.ewma[g]
		}
	}
	m.sinceChange++
}

// ReceiptDigests implements commit.DigestProvider by concatenating every
// group's digests per round key, in group order — the same order the folded
// receipt carries its groups and the decoded outputs concatenate. Returns
// nil when the groups do not issue receipts. On an elastic fleet the digests
// change whenever the topology does (moved rows are re-encoded and
// re-committed); a receipt issued earlier still verifies against the digests
// that were live when its round ran.
func (m *Master) ReceiptDigests() map[string][]commit.Digest {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string][]commit.Digest)
	for _, gm := range m.groups {
		dp, ok := gm.(commit.DigestProvider)
		if !ok {
			return nil
		}
		ds := dp.ReceiptDigests()
		if ds == nil {
			return nil
		}
		for key, d := range ds {
			out[key] = append(out[key], d...)
		}
	}
	return out
}

// FinishIteration implements cluster.Master by fanning in: every group
// adapts on its own observations, so churn in one group re-codes that group
// alone. The reported cost is the slowest group's (re-codes run in
// parallel); recoded is true if ANY group re-coded.
//
// Iterations whose most recent round FAILED are suppressed entirely
// ((0, false) without fanning in): when one group fails and cancels its
// siblings, the cancelled groups observed ctx-cancel erasures that look like
// "every worker straggled" — letting them adapt on that evidence would
// shrink K and quarantine healthy workers on a fault that never happened.
// This mirrors the serving layer's failed-round guard, but enforced here so
// every caller of the shard plane gets it, not just scheme.Service.
func (m *Master) FinishIteration(iter int) (recodeCost float64, recoded bool) {
	m.statsMu.Lock()
	failed := m.failedIter == iter
	m.statsMu.Unlock()
	if failed {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, gm := range m.groups {
		cost, r := gm.FinishIteration(iter)
		recodeCost = max(recodeCost, cost)
		recoded = recoded || r
	}
	return recodeCost, recoded
}
