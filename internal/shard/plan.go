// Package shard is the multi-group execution plane: it partitions a data
// matrix into contiguous row shards (a Plan), hands each shard to an
// independently coded worker group, and presents the whole fleet as ONE
// cluster.Master whose rounds fan out to every group concurrently and whose
// outputs are the concatenation of the per-group decodes.
//
// This is how the serving layer scales past a single coded group's
// throughput: each group has its own executor, its own scenario dynamics,
// and its own AVCC adaptation state, so a slowdown wave or Byzantine churn
// in one group triggers re-coding in that group alone while the others keep
// serving at full speed. The construction mirrors how LCC-style deployments
// scale by partitioning the data matrix across independent worker pools;
// within each partition the per-group code handles stragglers, Byzantines,
// and privacy exactly as before.
package shard

import (
	"fmt"

	"repro/internal/fieldmat"
)

// Span is one group's contiguous row range [Start, Start+Rows) of the
// sharded matrix.
type Span struct {
	Start int `json:"start"`
	Rows  int `json:"rows"`
}

// End returns the exclusive end row of the span.
func (s Span) End() int { return s.Start + s.Rows }

// Plan partitions Rows matrix rows into contiguous, non-empty, gap-free
// spans — one per worker group. Build one with EvenPlan or WeightedPlan (or
// by hand, then Validate).
type Plan struct {
	// Rows is the total row count being partitioned.
	Rows int `json:"rows"`
	// Spans lists each group's row range, in row order.
	Spans []Span `json:"spans"`
}

// Groups returns the number of shard groups in the plan.
func (p *Plan) Groups() int { return len(p.Spans) }

// Validate checks the plan invariants every consumer relies on: at least
// one span, every span non-empty, and the spans tiling [0, Rows) exactly —
// no gaps, no overlaps, no reordering. A plan that drops or duplicates a
// row would silently corrupt the concatenated output, so this is enforced
// before any matrix is split.
func (p *Plan) Validate() error {
	if p.Rows < 1 {
		return fmt.Errorf("shard: plan covers %d rows, need at least 1", p.Rows)
	}
	if len(p.Spans) == 0 {
		return fmt.Errorf("shard: plan has no spans")
	}
	at := 0
	for g, s := range p.Spans {
		if s.Rows < 1 {
			return fmt.Errorf("shard: group %d span has %d rows, need at least 1", g, s.Rows)
		}
		if s.Start != at {
			return fmt.Errorf("shard: group %d span starts at row %d, want %d (spans must tile the rows contiguously)", g, s.Start, at)
		}
		at = s.End()
	}
	if at != p.Rows {
		return fmt.Errorf("shard: spans cover %d rows, plan declares %d", at, p.Rows)
	}
	return nil
}

// EvenPlan splits rows into groups near-equal contiguous spans: the first
// rows%groups spans get one extra row. Every group must receive at least one
// row, so rows >= groups is required.
func EvenPlan(rows, groups int) (*Plan, error) {
	if groups < 1 {
		return nil, fmt.Errorf("shard: need at least 1 group, got %d", groups)
	}
	if rows < groups {
		return nil, fmt.Errorf("shard: cannot split %d rows across %d groups (every group needs at least one row)", rows, groups)
	}
	p := &Plan{Rows: rows, Spans: make([]Span, groups)}
	base, extra := rows/groups, rows%groups
	at := 0
	for g := range p.Spans {
		n := base
		if g < extra {
			n++
		}
		p.Spans[g] = Span{Start: at, Rows: n}
		at += n
	}
	return p, nil
}

// WeightedPlan splits rows into len(weights) contiguous spans proportional
// to the (positive) weights — the knob for heterogeneous groups, where a
// pool of faster workers should hold a larger row slice. Rounding uses
// largest-remainder apportionment and every group is guaranteed at least one
// row, so rows >= len(weights) is required.
func WeightedPlan(rows int, weights []float64) (*Plan, error) {
	groups := len(weights)
	if groups < 1 {
		return nil, fmt.Errorf("shard: need at least 1 weight")
	}
	if rows < groups {
		return nil, fmt.Errorf("shard: cannot split %d rows across %d groups (every group needs at least one row)", rows, groups)
	}
	var total float64
	for g, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("shard: weight %d is %v, weights must be positive", g, w)
		}
		total += w
	}
	// Largest-remainder apportionment with a floor of one row per group:
	// start every group at 1, apportion the remaining rows by weight floors,
	// then hand out the leftover rows to the largest fractional remainders.
	counts := make([]int, groups)
	fracs := make([]float64, groups)
	spare := rows - groups
	assigned := 0
	for g, w := range weights {
		exact := float64(spare) * (w / total)
		counts[g] = 1 + int(exact)
		fracs[g] = exact - float64(int(exact))
		assigned += counts[g]
	}
	for assigned < rows {
		best := 0
		for g := 1; g < groups; g++ {
			if fracs[g] > fracs[best] {
				best = g
			}
		}
		counts[best]++
		fracs[best] = -1 // consumed
		assigned++
	}
	p := &Plan{Rows: rows, Spans: make([]Span, groups)}
	at := 0
	for g, n := range counts {
		p.Spans[g] = Span{Start: at, Rows: n}
		at += n
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// clone returns a deep copy of the plan. The mutation helpers below operate
// on clones so a live plan (read concurrently by /statz snapshots and
// in-flight rounds) is never modified in place: rebalancing installs a fresh
// validated Plan pointer, and any pointer handed out earlier stays a
// consistent snapshot of the topology it described.
func (p *Plan) clone() *Plan {
	return &Plan{Rows: p.Rows, Spans: append([]Span(nil), p.Spans...)}
}

// MoveRows returns a new validated plan with delta rows moved from the tail
// (head) of group from to the ADJACENT group to. Only adjacent moves are
// defined: spans are contiguous, so rows can only change hands across the
// shared boundary — that is what keeps a rebalance re-encoding exactly two
// groups instead of shifting every span after them.
func (p *Plan) MoveRows(from, to, delta int) (*Plan, error) {
	if from < 0 || from >= len(p.Spans) || to < 0 || to >= len(p.Spans) {
		return nil, fmt.Errorf("shard: move %d->%d outside the plan's %d groups", from, to, len(p.Spans))
	}
	if to != from-1 && to != from+1 {
		return nil, fmt.Errorf("shard: move %d->%d is not between adjacent groups", from, to)
	}
	if delta < 1 {
		return nil, fmt.Errorf("shard: move of %d rows, need at least 1", delta)
	}
	if remain := p.Spans[from].Rows - delta; remain < 1 {
		return nil, fmt.Errorf("shard: moving %d rows would leave group %d with %d (one-row floor)", delta, from, remain)
	}
	q := p.clone()
	if to == from+1 {
		// from's tail becomes to's head.
		q.Spans[from].Rows -= delta
		q.Spans[to].Start -= delta
		q.Spans[to].Rows += delta
	} else {
		// from's head becomes to's tail.
		q.Spans[from].Start += delta
		q.Spans[from].Rows -= delta
		q.Spans[to].Rows += delta
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// SplitSpan returns a new validated plan where group g keeps the head of its
// span and a NEW group, inserted at index g+1, takes the final delta rows —
// the plan-side half of scaling a fleet up. Later groups shift up by one
// index but keep their row ranges.
func (p *Plan) SplitSpan(g, delta int) (*Plan, error) {
	if g < 0 || g >= len(p.Spans) {
		return nil, fmt.Errorf("shard: split of group %d outside the plan's %d groups", g, len(p.Spans))
	}
	if delta < 1 || delta >= p.Spans[g].Rows {
		return nil, fmt.Errorf("shard: split of %d rows from group %d's %d must leave both sides at least one row",
			delta, g, p.Spans[g].Rows)
	}
	q := p.clone()
	s := q.Spans[g]
	q.Spans[g] = Span{Start: s.Start, Rows: s.Rows - delta}
	newSpan := Span{Start: s.Start + s.Rows - delta, Rows: delta}
	q.Spans = append(q.Spans[:g+1], append([]Span{newSpan}, q.Spans[g+1:]...)...)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MergeSpan returns a new validated plan with group g's span absorbed into
// the ADJACENT group into and group g removed — the plan-side half of
// retiring a group. Groups after g shift down by one index but keep their
// row ranges.
func (p *Plan) MergeSpan(g, into int) (*Plan, error) {
	if g < 0 || g >= len(p.Spans) || into < 0 || into >= len(p.Spans) {
		return nil, fmt.Errorf("shard: merge %d->%d outside the plan's %d groups", g, into, len(p.Spans))
	}
	if into != g-1 && into != g+1 {
		return nil, fmt.Errorf("shard: merge %d->%d is not between adjacent groups", g, into)
	}
	if len(p.Spans) < 2 {
		return nil, fmt.Errorf("shard: cannot merge away the last group")
	}
	q := p.clone()
	if into == g-1 {
		q.Spans[into].Rows += q.Spans[g].Rows
	} else {
		q.Spans[into].Start -= q.Spans[g].Rows
		q.Spans[into].Rows += q.Spans[g].Rows
	}
	q.Spans = append(q.Spans[:g], q.Spans[g+1:]...)
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// SliceSpan copies span s of m — the moved-rows re-encode path slices just
// the two affected groups instead of re-splitting the whole matrix.
func SliceSpan(m *fieldmat.Matrix, s Span) (*fieldmat.Matrix, error) {
	if s.Start < 0 || s.Rows < 1 || s.End() > m.Rows {
		return nil, fmt.Errorf("shard: span [%d, %d) outside the matrix's %d rows", s.Start, s.End(), m.Rows)
	}
	sub := fieldmat.NewMatrix(s.Rows, m.Cols)
	copy(sub.Data, m.Data[s.Start*m.Cols:s.End()*m.Cols])
	return sub, nil
}

// Split slices m into one sub-matrix per span (copies, not views — each
// group's master re-encodes its slice independently and must not alias the
// others). m must have exactly p.Rows rows.
func (p *Plan) Split(m *fieldmat.Matrix) ([]*fieldmat.Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m.Rows != p.Rows {
		return nil, fmt.Errorf("shard: plan covers %d rows but the matrix has %d", p.Rows, m.Rows)
	}
	out := make([]*fieldmat.Matrix, len(p.Spans))
	for g, s := range p.Spans {
		sub := fieldmat.NewMatrix(s.Rows, m.Cols)
		copy(sub.Data, m.Data[s.Start*m.Cols:s.End()*m.Cols])
		out[g] = sub
	}
	return out, nil
}
