// Package shard is the multi-group execution plane: it partitions a data
// matrix into contiguous row shards (a Plan), hands each shard to an
// independently coded worker group, and presents the whole fleet as ONE
// cluster.Master whose rounds fan out to every group concurrently and whose
// outputs are the concatenation of the per-group decodes.
//
// This is how the serving layer scales past a single coded group's
// throughput: each group has its own executor, its own scenario dynamics,
// and its own AVCC adaptation state, so a slowdown wave or Byzantine churn
// in one group triggers re-coding in that group alone while the others keep
// serving at full speed. The construction mirrors how LCC-style deployments
// scale by partitioning the data matrix across independent worker pools;
// within each partition the per-group code handles stragglers, Byzantines,
// and privacy exactly as before.
package shard

import (
	"fmt"

	"repro/internal/fieldmat"
)

// Span is one group's contiguous row range [Start, Start+Rows) of the
// sharded matrix.
type Span struct {
	Start int `json:"start"`
	Rows  int `json:"rows"`
}

// End returns the exclusive end row of the span.
func (s Span) End() int { return s.Start + s.Rows }

// Plan partitions Rows matrix rows into contiguous, non-empty, gap-free
// spans — one per worker group. Build one with EvenPlan or WeightedPlan (or
// by hand, then Validate).
type Plan struct {
	// Rows is the total row count being partitioned.
	Rows int `json:"rows"`
	// Spans lists each group's row range, in row order.
	Spans []Span `json:"spans"`
}

// Groups returns the number of shard groups in the plan.
func (p *Plan) Groups() int { return len(p.Spans) }

// Validate checks the plan invariants every consumer relies on: at least
// one span, every span non-empty, and the spans tiling [0, Rows) exactly —
// no gaps, no overlaps, no reordering. A plan that drops or duplicates a
// row would silently corrupt the concatenated output, so this is enforced
// before any matrix is split.
func (p *Plan) Validate() error {
	if p.Rows < 1 {
		return fmt.Errorf("shard: plan covers %d rows, need at least 1", p.Rows)
	}
	if len(p.Spans) == 0 {
		return fmt.Errorf("shard: plan has no spans")
	}
	at := 0
	for g, s := range p.Spans {
		if s.Rows < 1 {
			return fmt.Errorf("shard: group %d span has %d rows, need at least 1", g, s.Rows)
		}
		if s.Start != at {
			return fmt.Errorf("shard: group %d span starts at row %d, want %d (spans must tile the rows contiguously)", g, s.Start, at)
		}
		at = s.End()
	}
	if at != p.Rows {
		return fmt.Errorf("shard: spans cover %d rows, plan declares %d", at, p.Rows)
	}
	return nil
}

// EvenPlan splits rows into groups near-equal contiguous spans: the first
// rows%groups spans get one extra row. Every group must receive at least one
// row, so rows >= groups is required.
func EvenPlan(rows, groups int) (*Plan, error) {
	if groups < 1 {
		return nil, fmt.Errorf("shard: need at least 1 group, got %d", groups)
	}
	if rows < groups {
		return nil, fmt.Errorf("shard: cannot split %d rows across %d groups (every group needs at least one row)", rows, groups)
	}
	p := &Plan{Rows: rows, Spans: make([]Span, groups)}
	base, extra := rows/groups, rows%groups
	at := 0
	for g := range p.Spans {
		n := base
		if g < extra {
			n++
		}
		p.Spans[g] = Span{Start: at, Rows: n}
		at += n
	}
	return p, nil
}

// WeightedPlan splits rows into len(weights) contiguous spans proportional
// to the (positive) weights — the knob for heterogeneous groups, where a
// pool of faster workers should hold a larger row slice. Rounding uses
// largest-remainder apportionment and every group is guaranteed at least one
// row, so rows >= len(weights) is required.
func WeightedPlan(rows int, weights []float64) (*Plan, error) {
	groups := len(weights)
	if groups < 1 {
		return nil, fmt.Errorf("shard: need at least 1 weight")
	}
	if rows < groups {
		return nil, fmt.Errorf("shard: cannot split %d rows across %d groups (every group needs at least one row)", rows, groups)
	}
	var total float64
	for g, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("shard: weight %d is %v, weights must be positive", g, w)
		}
		total += w
	}
	// Largest-remainder apportionment with a floor of one row per group:
	// start every group at 1, apportion the remaining rows by weight floors,
	// then hand out the leftover rows to the largest fractional remainders.
	counts := make([]int, groups)
	fracs := make([]float64, groups)
	spare := rows - groups
	assigned := 0
	for g, w := range weights {
		exact := float64(spare) * (w / total)
		counts[g] = 1 + int(exact)
		fracs[g] = exact - float64(int(exact))
		assigned += counts[g]
	}
	for assigned < rows {
		best := 0
		for g := 1; g < groups; g++ {
			if fracs[g] > fracs[best] {
				best = g
			}
		}
		counts[best]++
		fracs[best] = -1 // consumed
		assigned++
	}
	p := &Plan{Rows: rows, Spans: make([]Span, groups)}
	at := 0
	for g, n := range counts {
		p.Spans[g] = Span{Start: at, Rows: n}
		at += n
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Split slices m into one sub-matrix per span (copies, not views — each
// group's master re-encodes its slice independently and must not alias the
// others). m must have exactly p.Rows rows.
func (p *Plan) Split(m *fieldmat.Matrix) ([]*fieldmat.Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m.Rows != p.Rows {
		return nil, fmt.Errorf("shard: plan covers %d rows but the matrix has %d", p.Rows, m.Rows)
	}
	out := make([]*fieldmat.Matrix, len(p.Spans))
	for g, s := range p.Spans {
		sub := fieldmat.NewMatrix(s.Rows, m.Cols)
		copy(sub.Data, m.Data[s.Start*m.Cols:s.End()*m.Cols])
		out[g] = sub
	}
	return out, nil
}
