// Package linreg implements the second application the paper names as a
// natural fit for AVCC (Section II-D, IV): distributed linear regression.
//
// Training minimises ½‖Xw − y‖² (optionally + ½λ‖w‖²) by full-batch
// gradient descent using exactly the same two coded rounds as logistic
// regression — round 1 computes z = X·w, the master forms the residual
// e = z − y locally, round 2 computes g = Xᵀ·e — so any cluster.Master
// (AVCC, LCC, uncoded) runs it unchanged. The only protocol difference is
// quantization: the residual is unbounded (unlike the sigmoid error), so it
// is clamped to a data-derived cap before quantization and the cap enters
// the no-wrap-around budget.
package linreg

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/quant"
)

// Model is a linear predictor (bias folded into the last weight).
type Model struct {
	W []float64
}

// Predict returns x·w.
func (m *Model) Predict(x []float64) float64 {
	var dot float64
	for i, v := range x {
		dot += v * m.W[i]
	}
	return dot
}

// MSE returns the mean squared error over a row-major feature block.
func (m *Model) MSE(x, y []float64, rows, cols int) float64 {
	if rows == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < rows; i++ {
		d := m.Predict(x[i*cols:(i+1)*cols]) - y[i]
		sum += d * d
	}
	return sum / float64(rows)
}

// TrainConfig controls a run.
type TrainConfig struct {
	// Iterations is the gradient step count.
	Iterations int
	// LearningRate is the step size.
	LearningRate float64
	// Ridge is the L2 regularisation strength λ (0 disables).
	Ridge float64
	// WeightBits / ErrorBits are the quantization parameters, as in logreg.
	WeightBits, ErrorBits uint
	// ResidualCap clamps |e| before quantization; it must be chosen so
	// maxColL1 · 2^ErrorBits · ResidualCap fits the field window. 0 means 4.
	ResidualCap float64
}

// DefaultTrainConfig matches the CI-scale dataset geometry.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Iterations:   20,
		LearningRate: 1e-5,
		WeightBits:   15,
		ErrorBits:    7,
		ResidualCap:  2,
	}
}

func (c TrainConfig) residualCap() float64 {
	if c.ResidualCap <= 0 {
		return 4
	}
	return c.ResidualCap
}

// TrainDistributed runs coded linear regression against any master built
// over {"fwd": X, "bwd": Xᵀ}, regressing onto the dataset's labels. ctx
// bounds the run exactly as in logreg.TrainDistributed.
func TrainDistributed(ctx context.Context, f *field.Field, master cluster.Master, ds *dataset.Data, cfg TrainConfig) (*metrics.Series, *Model, error) {
	if cfg.Iterations < 1 {
		return nil, nil, fmt.Errorf("linreg: need at least one iteration")
	}
	qw := quant.New(f, cfg.WeightBits)
	qe := quant.New(f, cfg.ErrorBits)
	window := float64((f.Q() - 1) / 2)
	weightCap := window / (ds.MaxRowL1() * qw.Scale())
	if worst := ds.MaxColL1() * qe.Scale() * cfg.residualCap(); worst > window {
		return nil, nil, fmt.Errorf("linreg: residual cap %.3g overflows the field window", cfg.residualCap())
	}

	model := &Model{W: make([]float64, ds.Cols)}
	series := &metrics.Series{Name: master.Name()}
	var clock float64
	cap := cfg.residualCap()

	for iter := 0; iter < cfg.Iterations; iter++ {
		for i, w := range model.W {
			if w > weightCap {
				model.W[i] = weightCap
			} else if w < -weightCap {
				model.W[i] = -weightCap
			}
		}
		wq := qw.QuantizeVec(model.W)
		zOut, err := master.RunRound(ctx, "fwd", wq, iter)
		if err != nil {
			return nil, nil, fmt.Errorf("linreg: iter %d round 1: %w", iter, err)
		}
		if len(zOut.Decoded) != ds.Rows {
			return nil, nil, fmt.Errorf("linreg: round 1 returned %d values, want %d", len(zOut.Decoded), ds.Rows)
		}
		e := make([]float64, ds.Rows)
		for i, zq := range zOut.Decoded {
			r := qw.Dequantize(zq) - ds.TrainY[i]
			if r > cap {
				r = cap
			} else if r < -cap {
				r = -cap
			}
			e[i] = r
		}
		eq := qe.QuantizeVec(e)

		gOut, err := master.RunRound(ctx, "bwd", eq, iter)
		if err != nil {
			return nil, nil, fmt.Errorf("linreg: iter %d round 2: %w", iter, err)
		}
		if len(gOut.Decoded) != ds.Cols {
			return nil, nil, fmt.Errorf("linreg: round 2 returned %d values, want %d", len(gOut.Decoded), ds.Cols)
		}
		step := cfg.LearningRate / float64(ds.Rows)
		for i, gq := range gOut.Decoded {
			model.W[i] -= step * (qe.Dequantize(gq) + cfg.Ridge*model.W[i]*float64(ds.Rows))
		}

		recodeCost, recoded := master.FinishIteration(iter)
		var b metrics.Breakdown
		b.Add(zOut.Breakdown)
		b.Add(gOut.Breakdown)
		clock += b.Wall + recodeCost

		series.Records = append(series.Records, metrics.IterationRecord{
			Iter:       iter,
			Time:       clock,
			TrainLoss:  model.MSE(ds.TrainX, ds.TrainY, ds.Rows, ds.Cols),
			Breakdown:  b,
			Recode:     recoded,
			RecodeCost: recodeCost,
		})
	}
	return series, model, nil
}

// TrainLocal is the floating-point single-node reference.
func TrainLocal(ds *dataset.Data, cfg TrainConfig) (*Model, error) {
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("linreg: need at least one iteration")
	}
	model := &Model{W: make([]float64, ds.Cols)}
	g := make([]float64, ds.Cols)
	cap := cfg.residualCap()
	for iter := 0; iter < cfg.Iterations; iter++ {
		for i := range g {
			g[i] = 0
		}
		for i := 0; i < ds.Rows; i++ {
			row := ds.TrainRow(i)
			r := model.Predict(row) - ds.TrainY[i]
			if r > cap {
				r = cap
			} else if r < -cap {
				r = -cap
			}
			for j, v := range row {
				g[j] += v * r
			}
		}
		step := cfg.LearningRate / float64(ds.Rows)
		for j := range model.W {
			model.W[j] -= step * (g[j] + cfg.Ridge*model.W[j]*float64(ds.Rows))
		}
	}
	return model, nil
}
