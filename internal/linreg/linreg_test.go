package linreg

import (
	"context"
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
	"repro/internal/simnet"
)

var f = field.Default()

func quietSim() simnet.Config {
	c := simnet.DefaultConfig()
	c.JitterFrac = 0
	c.LinkLatency = 1e-5
	return c
}

func smallData(t *testing.T) *dataset.Data {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.TrainN, cfg.TestN, cfg.Features, cfg.Informative = 180, 60, 40, 16
	cfg.Separation = 1.2
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func mkMaster(t *testing.T, ds *dataset.Data, behaviors []attack.Behavior) scheme.Master {
	t.Helper()
	x := ds.FieldMatrix(f)
	m, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(1, 1, 0),
		scheme.WithSim(quietSim()),
		scheme.WithSeed(13),
	), map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelBasics(t *testing.T) {
	m := &Model{W: []float64{2, 1}}
	if m.Predict([]float64{3, 1}) != 7 {
		t.Fatal("Predict wrong")
	}
	x := []float64{1, 1, 2, 1}
	y := []float64{3, 5}
	if got := m.MSE(x, y, 2, 2); got != 0 {
		t.Fatalf("exact fit MSE = %v", got)
	}
	if m.MSE(nil, nil, 0, 2) != 0 {
		t.Fatal("empty MSE should be 0")
	}
}

func TestLocalTrainingReducesLoss(t *testing.T) {
	ds := smallData(t)
	cfg := DefaultTrainConfig()
	model, err := TrainLocal(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := (&Model{W: make([]float64, ds.Cols)}).MSE(ds.TrainX, ds.TrainY, ds.Rows, ds.Cols)
	final := model.MSE(ds.TrainX, ds.TrainY, ds.Rows, ds.Cols)
	if final >= initial {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", initial, final)
	}
	if final > 0.2 {
		t.Fatalf("final MSE %.4f too high for a 0/1-label regression", final)
	}
}

func TestDistributedMatchesLocal(t *testing.T) {
	ds := smallData(t)
	cfg := DefaultTrainConfig()
	cfg.Iterations = 8
	master := mkMaster(t, ds, nil)
	series, dist, err := TrainDistributed(context.Background(), f, master, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, err := TrainLocal(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff float64
	for i := range dist.W {
		if d := math.Abs(dist.W[i] - local.W[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.02 {
		t.Fatalf("distributed weights diverge by %.4f", maxDiff)
	}
	if len(series.Records) != 8 {
		t.Fatalf("%d records", len(series.Records))
	}
	// Loss must be monotone-ish: final below initial.
	if series.Records[7].TrainLoss >= series.Records[0].TrainLoss {
		t.Fatal("distributed training loss did not decrease")
	}
}

func TestDistributedUnderByzantine(t *testing.T) {
	ds := smallData(t)
	behaviors := make([]attack.Behavior, 12)
	for i := range behaviors {
		behaviors[i] = attack.Honest{}
	}
	behaviors[5] = attack.Constant{V: 9999999}
	master := mkMaster(t, ds, behaviors)
	cfg := DefaultTrainConfig()
	cfg.Iterations = 8
	_, dist, err := TrainDistributed(context.Background(), f, master, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	local, err := TrainLocal(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Verification keeps training on track despite the Byzantine.
	distLoss := dist.MSE(ds.TrainX, ds.TrainY, ds.Rows, ds.Cols)
	localLoss := local.MSE(ds.TrainX, ds.TrainY, ds.Rows, ds.Cols)
	if distLoss > localLoss*1.2+0.01 {
		t.Fatalf("Byzantine degraded protected training: %.4f vs local %.4f", distLoss, localLoss)
	}
}

func TestRidgeShrinksWeights(t *testing.T) {
	ds := smallData(t)
	plain := DefaultTrainConfig()
	ridge := DefaultTrainConfig()
	ridge.Ridge = 0.5
	mp, err := TrainLocal(ds, plain)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := TrainLocal(ds, ridge)
	if err != nil {
		t.Fatal(err)
	}
	var np, nr float64
	for i := range mp.W {
		np += mp.W[i] * mp.W[i]
		nr += mr.W[i] * mr.W[i]
	}
	if nr >= np {
		t.Fatalf("ridge did not shrink weights: %g vs %g", nr, np)
	}
}

func TestResidualCapValidation(t *testing.T) {
	ds := smallData(t)
	master := mkMaster(t, ds, nil)
	cfg := DefaultTrainConfig()
	cfg.ResidualCap = 1e12 // blows the field window
	if _, _, err := TrainDistributed(context.Background(), f, master, ds, cfg); err == nil {
		t.Fatal("overflowing residual cap accepted")
	}
	cfg = DefaultTrainConfig()
	cfg.Iterations = 0
	if _, _, err := TrainDistributed(context.Background(), f, master, ds, cfg); err == nil {
		t.Fatal("0 iterations accepted")
	}
	if _, err := TrainLocal(ds, cfg); err == nil {
		t.Fatal("local 0 iterations accepted")
	}
}
