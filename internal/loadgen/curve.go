package loadgen

import (
	"fmt"

	"repro/internal/scenario"
)

// RateCurve shapes the arrival rate over a run: the instantaneous rate at
// normalised time frac ∈ [0, 1) is Rate x At(frac). Mult holds equal-width
// segments; the zero value is a flat curve.
type RateCurve struct {
	// Name identifies the curve in reports ("flat", "flash-crowd", ...).
	Name string
	// Mult is the per-segment rate multiplier.
	Mult []float64
}

// At returns the multiplier at normalised time frac, clamped into the
// curve's domain.
func (c RateCurve) At(frac float64) float64 {
	if len(c.Mult) == 0 {
		return 1
	}
	i := int(frac * float64(len(c.Mult)))
	if i < 0 {
		i = 0
	}
	if i >= len(c.Mult) {
		i = len(c.Mult) - 1
	}
	return c.Mult[i]
}

// Peak returns the curve's largest multiplier.
func (c RateCurve) Peak() float64 {
	peak := 1.0
	for _, m := range c.Mult {
		if m > peak {
			peak = m
		}
	}
	return peak
}

// curveHorizon is the minimum number of segments a compiled curve spans, so
// even an eventless preset (steady) produces a well-formed timeline.
const curveHorizon = 12

// CompileProfile compiles a scenario preset (internal/scenario) into an
// arrival-rate curve: the same declarative timelines that disturb the
// WORKER fleet in simulation here disturb the CLIENT population. Each
// preset iteration becomes one curve segment whose multiplier is one plus
// the mean per-worker disturbance — a slowdown hitting the whole fleet at
// 3x (the flash-crowd spike) becomes a 3x arrival burst, a link-degradation
// ramp over half the fleet becomes a demand ramp, and steady stays flat.
// Deterministic in (name, n, k, seed), like the presets themselves.
func CompileProfile(name string, n, k int, seed int64) (RateCurve, error) {
	sc, err := scenario.Profile(name, n, k, seed)
	if err != nil {
		return RateCurve{}, err
	}
	horizon := curveHorizon
	for _, ev := range sc.Events {
		if ev.To > horizon {
			horizon = ev.To
		}
	}
	curve := RateCurve{Name: name, Mult: make([]float64, horizon)}
	for iter := 0; iter < horizon; iter++ {
		load := 1.0
		for _, ev := range sc.Events {
			if ev.Kind != scenario.Slowdown && ev.Kind != scenario.LinkDegrade {
				continue
			}
			if iter < ev.From || (ev.To > 0 && iter >= ev.To) {
				continue
			}
			load += (ev.Factor - 1) / float64(sc.N)
		}
		curve.Mult[iter] = load
	}
	return curve, nil
}

// Profiles returns the compilable preset names, for flag help text.
func Profiles() []string { return scenario.Profiles() }

// MustCompileProfile is CompileProfile for known-good inputs (presets named
// by constants); it panics on error.
func MustCompileProfile(name string, n, k int, seed int64) RateCurve {
	c, err := CompileProfile(name, n, k, seed)
	if err != nil {
		panic(fmt.Sprintf("loadgen: %v", err))
	}
	return c
}
