package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scenario"
	"repro/internal/scheme"
	"repro/internal/shard"
	"repro/internal/simnet"
)

var f = field.Default()

func TestScheduleIsDeterministicAndPoisson(t *testing.T) {
	cfg := Config{Rate: 500, Duration: 2 * time.Second, Cols: 8, Seed: 7}
	a, b := schedule(cfg), schedule(cfg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d", i)
		}
	}
	cfg.Seed = 8
	if c := schedule(cfg); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
	// Poisson with mean 1000 arrivals: 4 sigma is ~±127.
	if len(a) < 800 || len(a) > 1200 {
		t.Fatalf("%d arrivals for a 2s x 500rps window", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("schedule not monotonic")
		}
	}
}

func TestFlashCrowdCurveOffersMoreLoad(t *testing.T) {
	curve := MustCompileProfile(scenario.FlashCrowd, 12, 9, 3)
	if curve.Peak() < 2.5 {
		t.Fatalf("flash-crowd peak multiplier %.2f, want the ~3x burst", curve.Peak())
	}
	flat := Config{Rate: 400, Duration: 2 * time.Second, Cols: 8, Seed: 11}
	burst := flat
	burst.Curve = curve
	nFlat, nBurst := len(schedule(flat)), len(schedule(burst))
	if nBurst <= nFlat {
		t.Fatalf("flash-crowd offered %d arrivals, flat offered %d", nBurst, nFlat)
	}
}

func TestCompileProfileCurves(t *testing.T) {
	steady := MustCompileProfile(scenario.Steady, 12, 9, 1)
	for i, m := range steady.Mult {
		if m != 1 {
			t.Fatalf("steady segment %d has multiplier %g", i, m)
		}
	}
	for _, name := range Profiles() {
		c, err := CompileProfile(name, 12, 9, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(c.Mult) < curveHorizon {
			t.Fatalf("%s: curve spans %d segments", name, len(c.Mult))
		}
		for i, m := range c.Mult {
			if m < 1 {
				t.Fatalf("%s: segment %d multiplier %g < 1", name, i, m)
			}
		}
		// Determinism: preset compilation is a pure function of its inputs.
		c2, _ := CompileProfile(name, 12, 9, 5)
		for i := range c.Mult {
			if c.Mult[i] != c2.Mult[i] {
				t.Fatalf("%s: recompilation diverged at segment %d", name, i)
			}
		}
	}
	if _, err := CompileProfile("no-such-profile", 12, 9, 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestRunClassifiesOutcomes(t *testing.T) {
	var mu sync.Mutex
	n := 0
	target := TargetFunc(func(context.Context, []field.Elem) error {
		mu.Lock()
		n++
		k := n
		mu.Unlock()
		switch k % 3 {
		case 0:
			return fmt.Errorf("%w: queue full", ErrOverload)
		case 1:
			return nil
		default:
			return errors.New("boom")
		}
	})
	rep, err := Run(context.Background(), target, Config{
		Rate: 2000, Duration: 300 * time.Millisecond, Cols: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Completed == 0 || rep.Overloaded == 0 || rep.Failed == 0 {
		t.Fatalf("classification missing a class: %+v", rep)
	}
	if rep.Completed+rep.Overloaded+rep.Failed+rep.Dropped != rep.Offered {
		t.Fatalf("outcome classes do not partition offered load: %+v", rep)
	}
	if rep.OverloadRate <= 0 || rep.OverloadRate >= 1 {
		t.Fatalf("overload rate %g", rep.OverloadRate)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
}

// TestRunAgainstRealService drives the open loop end to end through
// scheme.Service over a real AVCC master: everything completes, latency
// quantiles are populated, and the goodput matches the completion count.
func TestRunAgainstRealService(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := fieldmat.Rand(f, rng, 36, 10)
	m, err := scheme.New("avcc", f, scheme.NewConfig(scheme.WithSeed(21)),
		map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := scheme.NewService(m, scheme.ServiceConfig{MaxBatch: 16, MaxLinger: time.Millisecond})
	defer svc.Close(context.Background())

	rep, err := Run(context.Background(), ServiceTarget{Svc: svc}, Config{
		Rate:     400,
		Duration: 300 * time.Millisecond,
		Curve:    MustCompileProfile(scenario.FlashCrowd, 12, 9, 21),
		Cols:     10,
		Seed:     21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile != scenario.FlashCrowd {
		t.Fatalf("report profile %q", rep.Profile)
	}
	if rep.Completed == 0 || rep.Completed != rep.Offered {
		t.Fatalf("healthy service dropped load: %+v", rep)
	}
	if rep.Failed != 0 || rep.Overloaded != 0 {
		t.Fatalf("healthy service reported failures: %+v", rep)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("latency quantiles implausible: p50=%.3f p99=%.3f", rep.P50Ms, rep.P99Ms)
	}
	if rep.GoodputRPS <= 0 {
		t.Fatalf("goodput %.1f", rep.GoodputRPS)
	}
}

// TestRunCountersReconcileAcrossElasticCycle drives the open loop through an
// ELASTIC deployment that retires and adds groups mid-run (seed slot 0 is
// virtually degraded; autoscaling replaces it with a fresh group). The shed
// and goodput accounting must survive the topology churn exactly: the outcome
// classes partition offered load, nothing fails, and every completed request
// is one the service's own round counter carried — no request lost or
// double-counted across a retire/add cycle.
func TestRunCountersReconcileAcrossElasticCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := fieldmat.Rand(f, rng, 240, 16)
	slow := &scenario.Scenario{Name: "degrade", N: 12}
	for w := 0; w < 12; w++ {
		slow.Events = append(slow.Events, scenario.Event{
			Kind: scenario.Slowdown, Worker: w, From: 0, Factor: 6,
		})
	}
	sim := simnet.DefaultConfig()
	sim.LinkLatency = 1e-5
	m, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithSeed(31),
		scheme.WithShards(2),
		scheme.WithSim(sim),
		scheme.WithGroupScenarios(slow), // slot 0 runs 6x slow from the start
		scheme.WithRebalance(shard.RebalanceConfig{
			Alpha: 0.5, Ratio: 1.2, CooldownRounds: 1,
			MinGroups: 1, MaxGroups: 3,
			ScaleUpWall: 1e-9, // constant growth pressure: add, then replace the laggard
		}),
	), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := scheme.NewService(m, scheme.ServiceConfig{MaxBatch: 4, MaxLinger: time.Millisecond})

	rep, err := Run(context.Background(), ServiceTarget{Svc: svc}, Config{
		Rate: 400, Duration: 400 * time.Millisecond, Cols: 16, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	st := m.(scheme.Elastic).RebalanceStatus()
	if st.GroupsRetired < 1 || st.GroupsAdded < 1 {
		t.Fatalf("no retire/add cycle happened under load (status %+v); the reconciliation is vacuous", st)
	}
	if rep.Completed+rep.Overloaded+rep.Failed+rep.Dropped != rep.Offered {
		t.Fatalf("outcome classes do not partition offered load across the cycle: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("topology churn surfaced as request failures: %+v", rep)
	}
	if rep.Completed == 0 || rep.GoodputRPS <= 0 {
		t.Fatalf("no goodput through the elastic fleet: %+v", rep)
	}
	// The service-side ledger must agree with the harness-side one: every
	// completed request rode exactly one coded round; shed requests rode none.
	if stats := svc.Stats(); int(stats.Requests) != rep.Completed {
		t.Fatalf("service carried %d requests in rounds, harness completed %d (report %+v)",
			stats.Requests, rep.Completed, rep)
	}
}

// stuckMaster blocks every round until released: the serving queue fills,
// and the open loop must observe 503-class shedding (not failures).
type stuckMaster struct {
	release chan struct{}
}

func (m *stuckMaster) Name() string { return "stuck" }
func (m *stuckMaster) RunRound(ctx context.Context, key string, input []field.Elem, iter int) (*cluster.RoundOutput, error) {
	b, err := m.RunRoundBatch(ctx, key, [][]field.Elem{input}, iter)
	if err != nil {
		return nil, err
	}
	return b.Round(0), nil
}
func (m *stuckMaster) RunRoundBatch(_ context.Context, _ string, inputs [][]field.Elem, _ int) (*cluster.BatchOutput, error) {
	<-m.release
	out := &cluster.BatchOutput{Outputs: make([][]field.Elem, len(inputs))}
	copy(out.Outputs, inputs)
	return out, nil
}
func (m *stuckMaster) FinishIteration(int) (float64, bool) { return 0, false }
func (m *stuckMaster) SetExecutor(cluster.Executor)        {}
func (m *stuckMaster) Workers() []*cluster.Worker          { return nil }

func TestRunObservesShedLoadUnderOverload(t *testing.T) {
	sm := &stuckMaster{release: make(chan struct{})}
	svc := scheme.NewService(sm, scheme.ServiceConfig{MaxBatch: 1, MaxPending: 2})
	// The master stays wedged for the whole offered-load window, then
	// unsticks so the few admitted requests complete rather than time out.
	go func() {
		time.Sleep(250 * time.Millisecond)
		close(sm.release)
	}()
	rep, err := Run(context.Background(), ServiceTarget{Svc: svc}, Config{
		Rate: 300, Duration: 200 * time.Millisecond, Cols: 4, Seed: 5,
		Timeout: 5 * time.Second,
	})
	svc.Close(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overloaded == 0 {
		t.Fatalf("wedged service shed nothing across %d arrivals", rep.Offered)
	}
	if rep.Failed != 0 {
		t.Fatalf("shed load misclassified as failure: %+v", rep)
	}
}
