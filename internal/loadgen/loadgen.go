// Package loadgen is the open-loop load harness for the serving plane: a
// Poisson arrival process whose rate follows a scenario-derived curve
// (steady load, flash-crowd bursts, degradation ramps), fired at a serving
// target regardless of how fast the target answers.
//
// Open-loop is the load model that exposes overload behaviour. A
// closed-loop client pool (like the serving benchmark's 32 clients)
// self-throttles: when the service slows down, the clients slow down with
// it, and queues never grow beyond the pool size. Real traffic does not do
// that — users arrive when they arrive — so capacity questions ("what does
// p99 look like at 3x the steady rate?", "how many requests get shed during
// a flash crowd?") need arrivals that are independent of completions. The
// harness reports goodput, latency quantiles over the completed requests,
// and the overload (503-class) rate separately from hard failures.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/scheme"
)

// ErrOverload classifies load-shedding rejections — the service saying "not
// now" (HTTP 503, a full admission queue, a draining server) rather than
// failing. Targets wrap such rejections with this sentinel so the runner
// counts them as shed load, not as errors.
var ErrOverload = errors.New("loadgen: target overloaded")

// Target is anything the harness can aim at: one Do call is one matvec
// solve. Implementations must be safe for concurrent use — the open loop
// fires requests from many goroutines at once.
type Target interface {
	Do(ctx context.Context, input []field.Elem) error
}

// TargetFunc adapts a function to the Target interface.
type TargetFunc func(ctx context.Context, input []field.Elem) error

// Do implements Target.
func (fn TargetFunc) Do(ctx context.Context, input []field.Elem) error { return fn(ctx, input) }

// ServiceTarget drives an in-process scheme.Service — the loopback mode CI
// uses, with no HTTP stack between the harness and the serving layer.
type ServiceTarget struct {
	Svc *scheme.Service
	// Key is the round key to solve against; empty means "fwd".
	Key string
}

// Do implements Target.
func (t ServiceTarget) Do(ctx context.Context, input []field.Elem) error {
	key := t.Key
	if key == "" {
		key = "fwd"
	}
	_, err := t.Svc.Submit(ctx, key, input).Wait(ctx)
	if errors.Is(err, scheme.ErrQueueFull) || errors.Is(err, scheme.ErrServiceClosed) {
		return fmt.Errorf("%w: %v", ErrOverload, err)
	}
	return err
}

// Config parameterises one load run.
type Config struct {
	// Rate is the base arrival rate in requests/second, scaled through the
	// Curve over the run.
	Rate float64
	// Duration is the offered-load window. Requests in flight when it ends
	// are still awaited and reported.
	Duration time.Duration
	// Curve shapes Rate over the run; the zero value is a flat curve.
	Curve RateCurve
	// Cols is the solve input width (the served matrix's column count).
	Cols int
	// Seed drives the arrival schedule and the request vectors; one seed is
	// one byte-identical offered-load timeline.
	Seed int64
	// Timeout bounds each request; 0 means 10s. A request that outlives it
	// counts as failed.
	Timeout time.Duration
	// MaxInFlight caps concurrent requests to protect the harness host
	// itself; 0 means 4096. Arrivals past the cap are dropped and counted —
	// a drop means the TARGET was so far behind that the harness refused to
	// model the queue for it.
	MaxInFlight int
}

// Report is the outcome of one run. All counters partition Offered.
type Report struct {
	// Profile names the rate curve the run followed.
	Profile string `json:"profile"`
	// Offered is how many arrivals the open loop fired.
	Offered int `json:"offered"`
	// Completed requests solved inside their timeout.
	Completed int `json:"completed"`
	// Overloaded requests were shed by the target (503-class).
	Overloaded int `json:"overloaded"`
	// Failed requests errored or timed out.
	Failed int `json:"failed"`
	// Dropped arrivals exceeded MaxInFlight and were never sent.
	Dropped     int     `json:"dropped"`
	DurationSec float64 `json:"duration_sec"`
	OfferedRPS  float64 `json:"offered_rps"`
	// GoodputRPS is completed requests per second of wall clock.
	GoodputRPS float64 `json:"goodput_rps"`
	// OverloadRate is Overloaded/Offered — the shed fraction.
	OverloadRate float64 `json:"overload_rate"`
	// Latency quantiles are over completed requests only.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// String renders the report as a human-readable block.
func (r *Report) String() string {
	return fmt.Sprintf(
		"profile=%s offered=%d (%.1f rps) completed=%d (%.1f rps goodput) overloaded=%d (%.2f%%) failed=%d dropped=%d\n"+
			"latency: p50=%.3fms p99=%.3fms mean=%.3fms over %.2fs",
		r.Profile, r.Offered, r.OfferedRPS, r.Completed, r.GoodputRPS,
		r.Overloaded, 100*r.OverloadRate, r.Failed, r.Dropped,
		r.P50Ms, r.P99Ms, r.MeanMs, r.DurationSec)
}

// schedule precomputes the run's Poisson arrival offsets: exponential gaps
// drawn at the instantaneous rate Rate x Curve(t/Duration). The schedule is
// a pure function of the config, so one seed is one reproducible timeline.
func schedule(cfg Config) []time.Duration {
	rng := rand.New(rand.NewSource(cfg.Seed))
	durSec := cfg.Duration.Seconds()
	var offs []time.Duration
	t := 0.0
	for {
		rate := cfg.Rate * cfg.Curve.At(t/durSec)
		if rate <= 0 {
			rate = cfg.Rate
		}
		t += rng.ExpFloat64() / rate
		if t >= durSec {
			return offs
		}
		offs = append(offs, time.Duration(t*float64(time.Second)))
	}
}

// Run fires the configured open-loop arrival process at the target and
// reports what came back. Cancelling ctx stops offering new arrivals;
// everything already in flight is still awaited.
func Run(ctx context.Context, target Target, cfg Config) (*Report, error) {
	if target == nil {
		return nil, fmt.Errorf("loadgen: nil target")
	}
	if cfg.Rate <= 0 || cfg.Duration <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("loadgen: need positive rate, duration and cols (got %g, %v, %d)",
			cfg.Rate, cfg.Duration, cfg.Cols)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}

	// A small pool of pregenerated request vectors: the inputs' values do
	// not affect serving cost, and generating them off the hot loop keeps
	// the arrival timing honest.
	f := field.Default()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	pool := make([][]field.Elem, 64)
	for i := range pool {
		pool[i] = f.RandVec(rng, cfg.Cols)
	}

	offs := schedule(cfg)
	hist := metrics.NewHistogram()
	var mu sync.Mutex
	var completed, overloaded, failed, dropped, offered int
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
arrivals:
	for i, off := range offs {
		if wait := time.Until(start.Add(off)); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break arrivals
			}
		}
		offered++
		select {
		case sem <- struct{}{}:
		default:
			dropped++
			continue
		}
		wg.Add(1)
		go func(in []field.Elem) {
			defer wg.Done()
			defer func() { <-sem }()
			rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
			t0 := time.Now()
			err := target.Do(rctx, in)
			lat := time.Since(t0).Seconds()
			mu.Lock()
			switch {
			case err == nil:
				completed++
				hist.Observe(lat)
			case errors.Is(err, ErrOverload):
				overloaded++
			default:
				failed++
			}
			mu.Unlock()
		}(pool[i%len(pool)])
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	snap := hist.Snapshot()
	rep := &Report{
		Profile:     cfg.Curve.Name,
		Offered:     offered,
		Completed:   completed,
		Overloaded:  overloaded,
		Failed:      failed,
		Dropped:     dropped,
		DurationSec: elapsed,
		P50Ms:       snap.P50 * 1e3,
		P99Ms:       snap.P99 * 1e3,
	}
	if rep.Profile == "" {
		rep.Profile = "flat"
	}
	if elapsed > 0 {
		rep.OfferedRPS = float64(offered) / elapsed
		rep.GoodputRPS = float64(completed) / elapsed
	}
	if offered > 0 {
		rep.OverloadRate = float64(overloaded) / float64(offered)
	}
	if snap.Count > 0 {
		rep.MeanMs = snap.Sum / float64(snap.Count) * 1e3
	}
	return rep, nil
}
