package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/field"
)

func TestHTTPTargetClassifiesResponses(t *testing.T) {
	var calls atomic.Int64
	var sawTenant atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/matvec" {
			http.NotFound(w, r)
			return
		}
		if r.Header.Get("X-Tenant") == "lt" {
			sawTenant.Store(true)
		}
		var req struct {
			Input []field.Elem `json:"input"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Input) == 0 {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		switch calls.Add(1) % 3 {
		case 0:
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case 1:
			http.Error(w, "boom", http.StatusInternalServerError)
		default:
			json.NewEncoder(w).Encode(map[string]any{"output": req.Input})
		}
	}))
	defer srv.Close()

	target := HTTPTarget{URL: srv.URL, Tenant: "lt"}
	in := []field.Elem{1, 2, 3}
	var ok, overload, failed int
	for i := 0; i < 9; i++ {
		switch err := target.Do(context.Background(), in); {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverload):
			overload++
		default:
			failed++
		}
	}
	if ok != 3 || overload != 3 || failed != 3 {
		t.Fatalf("classified (ok, overload, failed) = (%d, %d, %d), want (3, 3, 3)", ok, overload, failed)
	}
	if !sawTenant.Load() {
		t.Fatal("X-Tenant header not sent")
	}
}
