package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/field"
)

// HTTPTarget drives a running avccserve instance over its public API
// (POST /v1/matvec), so the harness measures the full serving stack —
// HTTP framing included — exactly as a tenant would see it.
type HTTPTarget struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Tenant is sent as the X-Tenant header when non-empty, so the run
	// shows up in the server's per-tenant accounting.
	Tenant string
}

// Do implements Target: one POST /v1/matvec. A 503 is an ErrOverload
// (shed load); any other non-200 is a failure.
func (t HTTPTarget) Do(ctx context.Context, input []field.Elem) error {
	body, err := json.Marshal(map[string]any{"input": input})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.URL+"/v1/matvec", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if t.Tenant != "" {
		req.Header.Set("X-Tenant", t.Tenant)
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%w: HTTP 503", ErrOverload)
	case resp.StatusCode != http.StatusOK:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("loadgen: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	var out struct {
		Output []field.Elem `json:"output"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("loadgen: bad response body: %w", err)
	}
	if len(out.Output) == 0 {
		return fmt.Errorf("loadgen: response carried no output")
	}
	return nil
}
