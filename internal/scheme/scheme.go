// Package scheme is the unified entry point to every coded-computing
// backend in this repository.
//
// The paper's core claim is that straggler tolerance, Byzantine robustness,
// and privacy are orthogonal, swappable concerns. This package makes that
// swappability a first-class API: all masters — AVCC and Static VCC
// (internal/avcc), Generalized AVCC (internal/gavcc), and the LCC and
// uncoded baselines (internal/baseline) — implement one Master interface,
// are configured through one Config built from functional options, and are
// constructed through one registry lookup:
//
//	cfg := scheme.NewConfig(
//		scheme.WithCoding(12, 9),
//		scheme.WithBudgets(1, 2, 0),
//		scheme.WithSeed(42),
//	)
//	master, err := scheme.New("avcc", f, cfg, data, behaviors, stragglers)
//
// Applications (internal/logreg, internal/linreg), the experiment drivers
// (internal/experiments), the CLIs, and the examples all construct masters
// exclusively through this package, so adding a backend — an RPC-distributed
// master over internal/rpccluster, a sharded or batched master — is one
// Register call, after which every driver and experiment can run it.
package scheme

import (
	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/simnet"
)

// Master is the interface every coded-computing backend implements. It
// extends the protocol-side cluster.Master (Name, context-aware RunRound /
// RunRoundBatch, FinishIteration) with the deployment hooks real-transport
// runs need: swapping the executor and reaching the worker objects that
// hold the encoded shards.
type Master interface {
	cluster.Master
	// SetExecutor swaps the round executor (virtual-time simulation by
	// default; an rpccluster client for real-transport deployments).
	SetExecutor(e cluster.Executor)
	// Workers exposes the master's worker objects so deployments can ship
	// each worker's encoded shards to the matching remote endpoint.
	Workers() []*cluster.Worker
}

// Adaptive is the optional interface of masters that re-code at runtime
// (currently the AVCC master). Callers that want to display or assert the
// evolving code state type-assert a Master to it.
type Adaptive interface {
	// Coding returns the current code parameters (N_t, K_t).
	Coding() (n, k int)
	// ActiveWorkers returns the non-quarantined worker IDs.
	ActiveWorkers() []int
}

// Elastic is the optional interface of masters whose shard topology can
// change at runtime (the shard-plane master when built WithRebalance). The
// serving layer feeds it load signals between rounds; /statz renders its
// snapshot. Every shard-plane master implements it — Tick is a no-op when
// the fleet was built without WithRebalance, so callers only need the type
// assertion, never a second capability check.
type Elastic interface {
	// Tick runs one rebalance/autoscale policy step between rounds.
	Tick(load shard.LoadSignal) (shard.TickResult, error)
	// RebalanceStatus reports the elastic plane's counters and EWMA state.
	RebalanceStatus() shard.RebalanceStatus
	// Snapshot reports every live group's topology under the master's lock.
	Snapshot() []shard.GroupStatus
}

// Blocked is the optional interface of masters whose round output is a
// sequence of equal-sized square blocks flattened into RoundOutput.Decoded
// (currently the Generalized-AVCC Gram master). BlockRows is the side
// length b of each block.
type Blocked interface {
	BlockRows() int
}

// Config is the scheme-independent configuration every backend draws from.
// Build it with NewConfig and the With* options; each backend consumes the
// fields that apply to it (the uncoded baseline, for example, has no coding
// or budgets beyond K, and only the AVCC master re-codes dynamically).
type Config struct {
	// N is the total worker count; K is the code dimension (data split
	// count). The uncoded baseline runs exactly K workers.
	N, K int
	// S, M, T are the straggler, Byzantine, and privacy/collusion budgets.
	S, M, T int
	// DegF is the degree of the computed polynomial (1 for matvec rounds;
	// the gavcc backend fixes its own degree of 2).
	DegF int
	// VerifyTrials amplifies Freivalds soundness to (1/q)^trials; 0 means
	// the paper's single trial.
	VerifyTrials int
	// Sim is the latency model used for virtual-time accounting.
	Sim simnet.Config
	// Seed drives all master-side randomness (verification keys, privacy
	// masks, jitter) for reproducible runs.
	Seed int64
	// Dynamic enables AVCC's dynamic re-coding (Section IV step 5). The
	// "static-vcc" scheme name forces it off.
	Dynamic bool
	// PregeneratedCodings models offline-generated alternative codings: a
	// re-code charges only shard redistribution, not re-encoding.
	PregeneratedCodings bool
	// Scenario overlays a time-varying fault timeline (internal/scenario)
	// on the deployment: per-worker rate curves, crashes, message drops,
	// link degradation, and scenario-driven Byzantine flips. nil means the
	// static world.
	Scenario *scenario.Scenario
	// Shards partitions the data matrix into that many row shards, each
	// served by its own independently coded group of N workers (its own
	// executor, scenario dynamics, and adaptation state), behind one
	// fan-out master (internal/shard). 0 or 1 means a single group.
	Shards int
	// Rebalance makes the shard plane elastic: the fan-out master tracks
	// per-group round walls, moves row spans from slow groups to fast
	// neighbours between rounds (re-encoding only the moved rows), and —
	// when the config's autoscale bounds are set — adds and retires whole
	// groups driven by serving-load signals. Setting it implies a sharded
	// deployment even when Shards is 0 or 1 (a one-group fleet that can grow).
	Rebalance *shard.RebalanceConfig
	// GroupScenarios overlays a DIFFERENT fault timeline on each shard
	// group, keyed by the group's seed-stream slot: slot g < len gets
	// GroupScenarios[g] (nil entries mean the static world), and slots
	// beyond the list — including groups added at runtime by the elastic
	// plane — fall back to Scenario. Requires a sharded deployment.
	GroupScenarios []*scenario.Scenario
	// Receipts turns on the committed-verification plane (internal/commit):
	// workers ship Merkle commitments to their outputs and every round's
	// BatchOutput carries a tenant-verifiable receipt bound to the public
	// matrix digest. Requires T == 0 — masked shards cannot be opened
	// against the digest of the unmasked matrix.
	Receipts bool
	// DeterministicKeys derives the secret Freivalds verification keys from
	// Seed instead of crypto/rand. FOR TESTS ONLY: a predictable key lets an
	// adversary craft outputs that pass verification.
	DeterministicKeys bool
	// Modulus pins the configuration to a specific prime field: FieldFor
	// resolves it to the field the deployment should run on, and New rejects
	// a master construction whose field disagrees — a config tuned for the
	// NTT-friendly modulus silently running on the paper's modulus (or vice
	// versa) would invalidate any benchmark comparison. 0 means the caller's
	// field is authoritative (the paper's default modulus via FieldFor).
	Modulus uint64
}

// Option mutates a Config under construction.
type Option func(*Config)

// NewConfig returns the default configuration — the paper's (12, 9)
// topology with budgets S = M = 1, T = 0, a degree-1 computation, the
// calibrated latency model, and dynamic re-coding on — overridden by the
// given options.
func NewConfig(opts ...Option) Config {
	cfg := Config{
		N:       12,
		K:       9,
		S:       1,
		M:       1,
		T:       0,
		DegF:    1,
		Sim:     simnet.DefaultConfig(),
		Seed:    1,
		Dynamic: true,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithCoding sets the (N, K) code parameters.
func WithCoding(n, k int) Option {
	return func(c *Config) { c.N, c.K = n, k }
}

// WithBudgets sets the straggler (S), Byzantine (M), and privacy (T) budgets.
func WithBudgets(s, m, t int) Option {
	return func(c *Config) { c.S, c.M, c.T = s, m, t }
}

// WithDegF sets the computed polynomial's degree.
func WithDegF(degF int) Option {
	return func(c *Config) { c.DegF = degF }
}

// WithSim sets the latency model.
func WithSim(sim simnet.Config) Option {
	return func(c *Config) { c.Sim = sim }
}

// WithSeed sets the master-side randomness seed.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithDynamic toggles AVCC's dynamic re-coding.
func WithDynamic(dynamic bool) Option {
	return func(c *Config) { c.Dynamic = dynamic }
}

// WithVerifyTrials sets the Freivalds amplification factor.
func WithVerifyTrials(trials int) Option {
	return func(c *Config) { c.VerifyTrials = trials }
}

// WithPregeneratedCodings toggles the offline-coding-generation model under
// which a re-code charges only redistribution.
func WithPregeneratedCodings(pregenerated bool) Option {
	return func(c *Config) { c.PregeneratedCodings = pregenerated }
}

// WithScenario overlays a fault-injection scenario on the deployment. New
// wires the scenario's engine into the executor (time-varying rates, link
// degradation, crashes, drops) and layers its Byzantine flips over each
// worker's configured behaviour, for every backend uniformly:
//
//	scn, _ := scenario.Profile(scenario.Churn, 12, 9, seed)
//	master, _ := scheme.New("avcc", f, scheme.NewConfig(
//		scheme.WithCoding(12, 9),
//		scheme.WithScenario(scn),
//	), data, nil, nil)
func WithScenario(s *scenario.Scenario) Option {
	return func(c *Config) { c.Scenario = s }
}

// WithShards partitions the deployment into g independently coded worker
// groups, each holding a contiguous row shard of every data matrix and
// running its own full protocol (executor, scenario, verification,
// AVCC adaptation). New returns a shard-plane master whose rounds fan out
// to all groups concurrently and concatenate the per-group decodes, so
// throughput scales with worker count instead of capping at one group's N.
//
// behaviors and stragglers passed to New apply to every group identically
// (each group has its own workers numbered from 0; WorkerCount reports the
// per-group length a behaviours slice must have). Block-structured schemes
// (gavcc) additionally require g to divide K, so every group holds whole
// coded blocks and the concatenated output stays bit-exact with the
// unsharded deployment.
func WithShards(g int) Option {
	return func(c *Config) { c.Shards = g }
}

// WithRebalance makes the shard plane elastic under the given policy: the
// fan-out master EWMA-tracks each group's round wall, shifts row spans from
// slow groups to fast neighbours between rounds, and (when rc sets
// MaxGroups) adds/retires whole groups from serving-load signals. Rounds
// in flight always run against a consistent topology — changes install
// under the master's write lock, which a change waits out. Combine with
// WithShards for the initial group count; WithRebalance alone starts one
// group that can grow.
//
//	master, _ := scheme.New("avcc", f, scheme.NewConfig(
//		scheme.WithShards(2),
//		scheme.WithRebalance(shard.DefaultRebalanceConfig()),
//	), data, nil, nil)
//	elastic := master.(scheme.Elastic)
func WithRebalance(rc shard.RebalanceConfig) Option {
	return func(c *Config) { c.Rebalance = &rc }
}

// WithGroupScenarios overlays per-group fault timelines on a sharded
// deployment, keyed by seed-stream slot (nil entries and slots past the
// list fall back to WithScenario's timeline). This is how tests degrade
// half the fleet: the slots of the initial groups carry the fault, and any
// group the elastic plane adds later — which takes a fresh slot — comes up
// on the healthy default.
func WithGroupScenarios(scns ...*scenario.Scenario) Option {
	return func(c *Config) { c.GroupScenarios = scns }
}

// WithReceipts toggles the committed-verification plane: every round's
// output carries a compact receipt (internal/commit) any tenant can verify
// offline against the public matrix digest. Incompatible with T > 0.
func WithReceipts(receipts bool) Option {
	return func(c *Config) { c.Receipts = receipts }
}

// WithDeterministicKeys derives Freivalds verification keys from Seed
// instead of crypto/rand — reproducible rounds for tests and conformance
// suites, NOT for deployments (a predictable key forfeits soundness).
func WithDeterministicKeys(deterministic bool) Option {
	return func(c *Config) { c.DeterministicKeys = deterministic }
}

// WithModulus pins the config to the prime field of modulus q (resolve it
// with FieldFor). 0 — the default — leaves the field to the caller. The two
// shipped moduli are field.QDefault (the paper's q = 2²⁵−39, Lagrange
// codecs) and field.QNTT (11·2²¹+1, which unlocks the NTT fast path in
// internal/mds); any other prime ≥ 5 works too.
func WithModulus(q uint64) Option {
	return func(c *Config) { c.Modulus = q }
}

// FieldFor resolves cfg.Modulus to its field: the process-wide shared
// instance for the two shipped moduli (their NTT plan and decode caches are
// per-Field, so sharing matters), a freshly validated field.New otherwise,
// and the paper's default field when Modulus is 0.
func FieldFor(cfg Config) (*field.Field, error) {
	switch cfg.Modulus {
	case 0, field.QDefault:
		return field.Default(), nil
	case field.QNTT:
		return field.NTTFriendly(), nil
	default:
		return field.New(cfg.Modulus)
	}
}
