// Service: the multi-tenant serving layer over any registered scheme.
//
// The round API (Master.RunRound) is one caller, one vector, one coded
// round. Serving heavy traffic needs the opposite shape: many concurrent
// callers issuing small solves against ONE shared coded deployment. Service
// bridges the two with a coalescing queue — concurrent Submits for the same
// round key are packed into one batched round (Master.RunRoundBatch: one
// broadcast, one compute pass per worker, one stacked verification, one
// decode), which PR 3's blocked kernels make nearly as cheap as a
// single-vector round. Callers get a Future; tenants get isolated metrics;
// the process gets graceful drain.
package scheme

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/metrics"
	"repro/internal/shard"
)

// ErrServiceClosed rejects Submits after Close began; in-flight and queued
// requests still complete (graceful drain).
var ErrServiceClosed = errors.New("scheme: service closed")

// ErrQueueFull rejects Submits while MaxPending requests are already
// queued: fail fast at admission instead of letting latency grow unbounded.
var ErrQueueFull = errors.New("scheme: service queue full")

// ErrInputLength rejects a request whose input length disagrees with the
// rest of its batch. Only the offending request fails — one client sending
// wrong-sized inputs must not fail the round its neighbours are riding.
var ErrInputLength = errors.New("scheme: input length differs from the round's batch")

// DefaultTenant is the tenant requests are accounted under when their
// context carries no WithTenant annotation.
const DefaultTenant = "default"

type tenantCtxKey struct{}

// WithTenant annotates ctx with the tenant a Submit should be accounted
// under. The serving layer is multi-tenant only in its accounting — all
// tenants share the one coded deployment; per-tenant quotas belong in a
// gateway above this API.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// TenantFrom extracts the WithTenant annotation, or DefaultTenant.
func TenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantCtxKey{}).(string); ok && t != "" {
		return t
	}
	return DefaultTenant
}

// ServiceConfig tunes the coalescing queue.
type ServiceConfig struct {
	// MaxBatch caps how many requests one coded round carries. <= 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// MaxLinger is how long a round is held open waiting to fill up once
	// its first request arrives. A full batch dispatches immediately;
	// 0 means DefaultMaxLinger; negative disables lingering (every
	// dispatch takes whatever is queued right now).
	MaxLinger time.Duration
	// MaxPending bounds the admission queue; Submit fails fast with
	// ErrQueueFull beyond it. <= 0 means DefaultMaxPending.
	MaxPending int
	// AuditReceipts makes the dispatcher verify every round receipt the
	// master issues (one Verify per round, shared by the batch) and record
	// the verdict in the per-tenant receipt counters. Auditing is
	// observability only: a failing receipt is counted, not withheld — the
	// receipt itself is the tenant's evidence.
	AuditReceipts bool
}

// Defaults for ServiceConfig's zero values.
const (
	DefaultMaxBatch   = 32
	DefaultMaxLinger  = 500 * time.Microsecond
	DefaultMaxPending = 4096
)

func (c ServiceConfig) maxBatch() int {
	if c.MaxBatch <= 0 {
		return DefaultMaxBatch
	}
	return c.MaxBatch
}

func (c ServiceConfig) maxLinger() time.Duration {
	if c.MaxLinger == 0 {
		return DefaultMaxLinger
	}
	if c.MaxLinger < 0 {
		return 0
	}
	return c.MaxLinger
}

func (c ServiceConfig) maxPending() int {
	if c.MaxPending <= 0 {
		return DefaultMaxPending
	}
	return c.MaxPending
}

// Future is the handle Submit returns. Wait blocks until the request's
// round decoded (or failed), or until ctx ends — the computation itself is
// not cancelled by abandoning the Future; its result is simply discarded.
type Future struct {
	done chan struct{}
	out  *cluster.RoundOutput
	err  error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

func (fu *Future) resolve(out *cluster.RoundOutput, err error) {
	fu.out, fu.err = out, err
	close(fu.done)
}

// Done is closed when the result is available.
func (fu *Future) Done() <-chan struct{} { return fu.done }

// Wait returns the decoded round output for this request. The output's
// accounting slices (Used, Byzantine) are shared with the whole batch:
// treat them as read-only.
func (fu *Future) Wait(ctx context.Context) (*cluster.RoundOutput, error) {
	select {
	case <-fu.done:
		return fu.out, fu.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// request is one queued Submit.
type request struct {
	ctx      context.Context
	tenant   string
	key      string
	input    []field.Elem
	fu       *Future
	enqueued time.Time
}

// tenantCounters is the mutable per-tenant accounting (guarded by
// Service.mu except the histogram, which locks itself).
type tenantCounters struct {
	submitted uint64
	completed uint64
	failed    uint64
	rejected  uint64
	receipts  metrics.ReceiptCounters
	latency   *metrics.Histogram
}

// TenantStats is a point-in-time view of one tenant's traffic.
type TenantStats struct {
	Tenant    string
	Submitted uint64
	Completed uint64
	Failed    uint64
	Rejected  uint64
	// Receipts counts the tenant's committed-verification receipts (issued
	// with its outputs; verified/failed when the service audits them).
	Receipts metrics.ReceiptCounters
	// Latency is the Submit→resolve wall latency distribution.
	Latency metrics.HistogramSnapshot
}

// ServiceStats is a point-in-time view of the whole service.
type ServiceStats struct {
	// Rounds is how many coded rounds the dispatcher ran; Requests how
	// many submits they carried. Requests/Rounds is the realised batching
	// factor.
	Rounds   uint64
	Requests uint64
	// Recodes counts dynamic re-codings the underlying master performed
	// between rounds (AVCC adapting to serving-time churn).
	Recodes uint64
	// Tenants is sorted by tenant name.
	Tenants []TenantStats
}

// Service coalesces concurrent Submits into batched rounds on one master.
// Create with NewService, submit with Submit, retire with Close.
type Service struct {
	master Master
	cfg    ServiceConfig
	// elastic is non-nil when master is a shard-plane fleet: after every
	// successful round the dispatcher feeds it the live load signal (queue
	// depth, service-wide p99) so the fleet can rebalance or autoscale.
	elastic Elastic
	// latency aggregates Submit→resolve wall latency across ALL tenants —
	// the p99 the elastic policy scales on is the service's, not any one
	// tenant's.
	latency *metrics.Histogram

	mu    sync.Mutex
	queue []*request
	// pending counts queued requests per round key so the linger loop can
	// poll batch fullness in O(1) instead of rescanning the queue.
	pending map[string]int
	closed  bool
	iter    int
	rounds  uint64
	served  uint64
	recodes uint64
	tenants map[string]*tenantCounters

	wake chan struct{}
	done chan struct{}
}

// NewService starts the dispatcher over master. The master must not be
// driven concurrently by anyone else while the service owns it (rounds and
// FinishIteration are serialised by the dispatcher).
func NewService(master Master, cfg ServiceConfig) *Service {
	s := &Service{
		master:  master,
		cfg:     cfg,
		latency: metrics.NewHistogram(),
		pending: make(map[string]int),
		tenants: make(map[string]*tenantCounters),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	s.elastic, _ = master.(Elastic)
	go s.dispatch()
	return s
}

// Submit enqueues one solve for the given round key. The returned Future
// never blocks the caller: admission errors (ErrServiceClosed,
// ErrQueueFull) surface through Wait. The request is accounted to
// TenantFrom(ctx); a ctx cancelled while the request is still queued drops
// it at dispatch time with ctx's error.
func (s *Service) Submit(ctx context.Context, key string, input []field.Elem) *Future {
	fu := newFuture()
	tenant := TenantFrom(ctx)
	s.mu.Lock()
	tc := s.tenant(tenant)
	tc.submitted++
	switch {
	case s.closed:
		tc.rejected++
		s.mu.Unlock()
		fu.resolve(nil, ErrServiceClosed)
		return fu
	case len(s.queue) >= s.cfg.maxPending():
		tc.rejected++
		s.mu.Unlock()
		fu.resolve(nil, ErrQueueFull)
		return fu
	}
	s.queue = append(s.queue, &request{
		ctx: ctx, tenant: tenant, key: key, input: input,
		fu: fu, enqueued: time.Now(),
	})
	s.pending[key]++
	s.mu.Unlock()
	s.signal()
	return fu
}

// tenant returns the counters for name; callers hold s.mu.
func (s *Service) tenant(name string) *tenantCounters {
	tc, ok := s.tenants[name]
	if !ok {
		tc = &tenantCounters{latency: metrics.NewHistogram()}
		s.tenants[name] = tc
	}
	return tc
}

func (s *Service) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Close stops admission and drains: queued requests still run (in batched
// rounds, without lingering), then the dispatcher exits. ctx bounds the
// wait; on expiry the dispatcher keeps draining in the background and
// ctx's error is returned.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.signal()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Pending reports how many requests currently sit in the admission queue
// (excluding any batch already handed to the dispatcher). Load shedders and
// tests use it to observe queue pressure without racing the dispatcher.
func (s *Service) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Stats snapshots the service-wide and per-tenant accounting.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	stats := ServiceStats{Rounds: s.rounds, Requests: s.served, Recodes: s.recodes}
	type pair struct {
		name string
		tc   *tenantCounters
	}
	pairs := make([]pair, 0, len(s.tenants))
	for name, tc := range s.tenants {
		pairs = append(pairs, pair{name, tc})
	}
	counters := make([]TenantStats, len(pairs))
	for i, p := range pairs {
		counters[i] = TenantStats{
			Tenant:    p.name,
			Submitted: p.tc.submitted,
			Completed: p.tc.completed,
			Failed:    p.tc.failed,
			Rejected:  p.tc.rejected,
			Receipts:  p.tc.receipts,
		}
	}
	s.mu.Unlock()
	// Histogram snapshots take the histogram's own lock; do it outside mu.
	for i, p := range pairs {
		counters[i].Latency = p.tc.latency.Snapshot()
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].Tenant < counters[j].Tenant })
	stats.Tenants = counters
	return stats
}

// dispatch is the single dispatcher goroutine: it lingers until the oldest
// request's round fills (or times out), packs the longest same-key run of
// the queue into one batched round, and resolves the futures.
func (s *Service) dispatch() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 {
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			<-s.wake
			s.mu.Lock()
		}
		head := s.queue[0]
		s.mu.Unlock()

		s.linger(head)
		batch := s.take(head.key)
		if len(batch) == 0 {
			continue
		}
		s.runBatch(batch)
	}
}

// linger waits until head's round is full, the linger deadline passed, or
// the service is draining.
func (s *Service) linger(head *request) {
	maxLinger := s.cfg.maxLinger()
	deadline := head.enqueued.Add(maxLinger)
	for {
		s.mu.Lock()
		n := s.pending[head.key]
		closed := s.closed
		s.mu.Unlock()
		if n >= s.cfg.maxBatch() || closed || maxLinger <= 0 {
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return
		}
		t := time.NewTimer(remain)
		select {
		case <-s.wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// take removes up to MaxBatch requests with the given key from the queue
// (in arrival order), dropping any whose context already ended and evicting
// any whose input length disagrees with the batch head's — a batched round
// needs equal-length inputs, and one client's wrong-sized request must fail
// alone, not take down the round its neighbours are riding.
func (s *Service) take(key string) []*request {
	max := s.cfg.maxBatch()
	s.mu.Lock()
	taken := make([]*request, 0, max)
	rest := s.queue[:0]
	for _, r := range s.queue {
		if r.key == key && len(taken) < max {
			taken = append(taken, r)
		} else {
			rest = append(rest, r)
		}
	}
	for i := len(rest); i < len(s.queue); i++ {
		s.queue[i] = nil // let dropped entries collect
	}
	s.queue = rest
	if n := s.pending[key] - len(taken); n > 0 {
		s.pending[key] = n
	} else {
		delete(s.pending, key)
	}
	s.mu.Unlock()

	live := taken[:0]
	for _, r := range taken {
		if err := r.ctx.Err(); err != nil {
			s.finish(r, nil, fmt.Errorf("scheme: request cancelled while queued: %w", err))
			continue
		}
		if len(live) > 0 && len(r.input) != len(live[0].input) {
			s.finish(r, nil, fmt.Errorf("%w: got %d elements, the round's batch has %d",
				ErrInputLength, len(r.input), len(live[0].input)))
			continue
		}
		live = append(live, r)
	}
	return live
}

// runBatch executes one coded round over the batch and resolves every
// future. The round runs under the service's own (background) context:
// a single caller abandoning its request must not cancel the shared round.
func (s *Service) runBatch(batch []*request) {
	inputs := make([][]field.Elem, len(batch))
	for i, r := range batch {
		inputs[i] = r.input
	}
	s.mu.Lock()
	iter := s.iter
	s.iter++
	s.mu.Unlock()

	out, err := s.master.RunRoundBatch(context.Background(), batch[0].key, inputs, iter)
	var recoded bool
	if err == nil {
		// Adapt only on rounds that actually completed. A failed round's
		// observations are partial — a cancellation or transport collapse
		// looks like "every worker straggled" — and feeding them to the
		// adaptive controller used to shrink K (or quarantine workers) on
		// evidence the round never produced. The failure is reported to the
		// callers; the coding geometry stays as it was.
		_, recoded = s.master.FinishIteration(iter)
		if s.elastic != nil {
			s.mu.Lock()
			depth := len(s.queue)
			s.mu.Unlock()
			// A failed topology change rolls back and is recorded in the
			// master's RebalanceStatus().LastError; serving continues on the
			// previous plan, so there is nothing for the dispatcher to do
			// with the error here.
			_, _ = s.elastic.Tick(shard.LoadSignal{
				QueueDepth: depth,
				P99Sec:     s.latency.Quantile(0.99),
			})
		}
	}

	s.mu.Lock()
	s.rounds++
	s.served += uint64(len(batch))
	if recoded {
		s.recodes++
	}
	s.mu.Unlock()

	if err != nil {
		for _, r := range batch {
			s.finish(r, nil, err)
		}
		return
	}
	if out.Receipt != nil {
		var auditErr error
		if s.cfg.AuditReceipts {
			// One Verify covers the whole batch — the receipt is per-round.
			auditErr = out.Receipt.Verify()
		}
		s.mu.Lock()
		for _, r := range batch {
			rc := &s.tenant(r.tenant).receipts
			rc.Issued++
			if s.cfg.AuditReceipts {
				if auditErr == nil {
					rc.Verified++
				} else {
					rc.Failed++
				}
			}
		}
		s.mu.Unlock()
	}
	for i, r := range batch {
		s.finish(r, out.Round(i), nil)
	}
}

// finish resolves one request and records its accounting.
func (s *Service) finish(r *request, out *cluster.RoundOutput, err error) {
	elapsed := time.Since(r.enqueued).Seconds()
	s.mu.Lock()
	tc := s.tenant(r.tenant)
	if err != nil {
		tc.failed++
	} else {
		tc.completed++
	}
	latency := tc.latency
	s.mu.Unlock()
	latency.Observe(elapsed)
	s.latency.Observe(elapsed)
	r.fu.resolve(out, err)
}
