package scheme

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fieldmat"
	"repro/internal/simnet"
)

func TestValidateAcceptsTheDefaults(t *testing.T) {
	if err := NewConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestValidateRejectsImpossibleConfigs(t *testing.T) {
	badSim := simnet.Config{}
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"zero workers", NewConfig(WithCoding(0, 1)), "N"},
		{"negative workers", NewConfig(WithCoding(-3, 1)), "N"},
		{"zero blocks", NewConfig(WithCoding(12, 0)), "K"},
		{"K exceeds N", NewConfig(WithCoding(9, 12)), "K"},
		{"negative straggler budget", NewConfig(WithBudgets(-1, 1, 0)), "S"},
		{"negative Byzantine budget", NewConfig(WithBudgets(1, -1, 0)), "M"},
		{"negative privacy budget", NewConfig(WithBudgets(1, 1, -1)), "T"},
		{"budgets exceed redundancy", NewConfig(WithCoding(12, 9), WithBudgets(2, 2, 0)), "S+M"},
		{"zero degree", NewConfig(WithDegF(0)), "DegF"},
		{"negative trials", NewConfig(WithVerifyTrials(-1)), "VerifyTrials"},
		{"broken latency model", NewConfig(WithSim(badSim)), "Sim"},
		{"negative shard groups", NewConfig(WithShards(-2)), "Shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
			var cfgErr *InvalidConfigError
			if !errors.As(err, &cfgErr) {
				t.Fatalf("error %v is not an *InvalidConfigError", err)
			}
			if cfgErr.Field != tc.field {
				t.Fatalf("error names field %q, want %q (%v)", cfgErr.Field, tc.field, err)
			}
		})
	}
}

// TestNewRejectsInvalidConfigForEveryScheme pins the contract that
// validation happens centrally in scheme.New — no backend constructor runs
// on an impossible Config, and callers can errors.As the rejection
// regardless of the scheme name.
func TestNewRejectsInvalidConfigForEveryScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := fieldmat.Rand(f, rng, 36, 10)
	bad := NewConfig(WithCoding(9, 12)) // K > N
	for _, name := range Names() {
		if _, err := New(name, f, bad, map[string]*fieldmat.Matrix{"fwd": x}, nil, nil); err == nil {
			t.Fatalf("%s accepted K > N", name)
		} else {
			var cfgErr *InvalidConfigError
			if !errors.As(err, &cfgErr) {
				t.Fatalf("%s returned %v, want a typed *InvalidConfigError", name, err)
			}
		}
	}
}

// TestNewRejectsInfeasibleShardPlans pins the shard-specific rejections New
// adds on top of Validate: a block-structured scheme whose K the group
// count does not divide, and a group count larger than the matrix has rows.
// Both are admission-time caller errors, so both must be typed.
func TestNewRejectsInfeasibleShardPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(13))

	gram := fieldmat.Rand(f, rng, 64, 16)
	_, err := New("gavcc", f, NewConfig(WithCoding(10, 4), WithShards(3)),
		map[string]*fieldmat.Matrix{"gram": gram}, nil, nil)
	var cfgErr *InvalidConfigError
	if !errors.As(err, &cfgErr) || cfgErr.Field != "Shards" {
		t.Fatalf("gavcc with 3 shards over K = 4 returned %v, want a Shards-typed rejection", err)
	}

	tiny := fieldmat.Rand(f, rng, 3, 10)
	_, err = New("avcc", f, NewConfig(WithShards(4)),
		map[string]*fieldmat.Matrix{"fwd": tiny}, nil, nil)
	if !errors.As(err, &cfgErr) || cfgErr.Field != "Shards" {
		t.Fatalf("4 shards over a 3-row matrix returned %v, want a Shards-typed rejection", err)
	}
}
