package scheme

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/attack"
	"repro/internal/avcc"
	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/gavcc"
	"repro/internal/scenario"
)

// Constructor builds a backend's master. data maps round keys to the full
// (unencoded) input matrices — {"fwd": X, "bwd": Xᵀ} for the two-round
// training protocols, {"gram": X} for the Gram backend. behaviors may be nil
// (all honest) or exactly WorkerCount long; stragglers may be nil.
type Constructor func(f *field.Field, cfg Config, data map[string]*fieldmat.Matrix,
	behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (Master, error)

type entry struct {
	build Constructor
	// workerCount reports how many workers the backend deploys under cfg,
	// so callers can size behaviour slices before construction.
	workerCount func(Config) int
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]entry)
)

// Register adds a backend under name. workerCount reports the deployment's
// worker count for a given Config (nil means cfg.N). Registering a name
// twice panics: scheme names are experiment-table identities, and silently
// rebinding one would corrupt cross-run comparisons.
func Register(name string, workerCount func(Config) int, build Constructor) {
	if build == nil {
		panic(fmt.Sprintf("scheme: nil constructor for %q", name))
	}
	if workerCount == nil {
		workerCount = func(cfg Config) int { return cfg.N }
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scheme: %q registered twice", name))
	}
	registry[name] = entry{build: build, workerCount: workerCount}
}

// Names returns the registered scheme names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func lookup(name string) (entry, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return entry{}, fmt.Errorf("scheme: unknown scheme %q (registered: %v)", name, Names())
	}
	return e, nil
}

// WorkerCount reports how many workers the named scheme deploys under cfg —
// the length a non-nil behaviors slice must have.
func WorkerCount(name string, cfg Config) (int, error) {
	e, err := lookup(name)
	if err != nil {
		return 0, err
	}
	return e.workerCount(cfg), nil
}

// New constructs the named scheme's master. It is the single construction
// path for every backend; callers never touch the per-package constructors.
// cfg is validated first (typed *InvalidConfigError on rejection), so no
// backend ever sees an impossible configuration. When cfg.Scenario is set,
// the scenario is attached after construction — uniformly, so a backend
// registered tomorrow is scenario-capable today. When cfg.Shards > 1 the
// same applies per shard group: New splits the data row-wise, builds one
// registry-backed master per group (each with its own seed stream and
// scenario engine), and returns the fan-out master from internal/shard.
func New(name string, f *field.Field, cfg Config, data map[string]*fieldmat.Matrix,
	behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (Master, error) {
	e, err := lookup(name)
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Modulus != 0 && cfg.Modulus != f.Q() {
		return nil, &InvalidConfigError{"Modulus",
			fmt.Sprintf("= %d but the supplied field has q = %d: resolve the field with scheme.FieldFor", cfg.Modulus, f.Q())}
	}
	if cfg.Shards > 1 || cfg.Rebalance != nil || len(cfg.GroupScenarios) > 0 {
		return newSharded(e, name, f, cfg, data, behaviors, stragglers)
	}
	m, err := e.build(f, cfg, data, behaviors, stragglers)
	if err != nil {
		return nil, err
	}
	if cfg.Scenario != nil {
		if err := attachScenario(m, f, cfg, stragglers); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// attachScenario compiles cfg.Scenario and threads it through a freshly
// built master: every worker's behaviour is wrapped so scenario Byzantine
// flips corrupt its output, and the executor is replaced with a virtual
// executor carrying the engine as its Dynamics. The replacement executor is
// built exactly as every backend builds its own (same workers, same
// straggler schedule, seed+1 jitter stream), so a scenario-free run and a
// Steady-scenario run produce identical timings.
func attachScenario(m Master, f *field.Field, cfg Config, stragglers attack.StragglerSchedule) error {
	eng, err := scenario.NewEngine(cfg.Scenario)
	if err != nil {
		return fmt.Errorf("scheme: %w", err)
	}
	workers := m.Workers()
	for _, w := range workers {
		w.Behavior = eng.WrapBehavior(w.ID, w.Behavior)
	}
	exec := cluster.NewVirtualExecutor(f, cfg.Sim, workers, stragglers, cfg.Seed+1)
	exec.Dynamics = eng
	exec.CommitOutputs = cfg.Receipts
	m.SetExecutor(exec)
	return nil
}

func init() {
	avccOptions := func(cfg Config, dynamic bool) avcc.Options {
		return avcc.Options{
			Params: avcc.Params{
				N: cfg.N, K: cfg.K, S: cfg.S, M: cfg.M, T: cfg.T,
				DegF: cfg.DegF, VerifyTrials: cfg.VerifyTrials,
			},
			Sim:                 cfg.Sim,
			Seed:                cfg.Seed,
			Dynamic:             dynamic,
			PregeneratedCodings: cfg.PregeneratedCodings,
			Receipts:            cfg.Receipts,
			DeterministicKeys:   cfg.DeterministicKeys,
		}
	}
	Register("avcc", nil, func(f *field.Field, cfg Config, data map[string]*fieldmat.Matrix,
		behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (Master, error) {
		return avcc.NewMaster(f, avccOptions(cfg, cfg.Dynamic), data, behaviors, stragglers)
	})
	// static-vcc is the paper's non-adaptive comparison point: the same
	// verified master with re-coding forced off, whatever cfg.Dynamic says.
	Register("static-vcc", nil, func(f *field.Field, cfg Config, data map[string]*fieldmat.Matrix,
		behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (Master, error) {
		return avcc.NewMaster(f, avccOptions(cfg, false), data, behaviors, stragglers)
	})
	Register("gavcc", nil, func(f *field.Field, cfg Config, data map[string]*fieldmat.Matrix,
		behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (Master, error) {
		x, ok := data[gavcc.GramKey]
		if !ok || len(data) != 1 {
			return nil, fmt.Errorf("scheme: gavcc wants exactly one data matrix under %q, got keys %v",
				gavcc.GramKey, dataKeys(data))
		}
		return gavcc.NewMaster(f, gavcc.Options{
			N: cfg.N, K: cfg.K, S: cfg.S, M: cfg.M, T: cfg.T,
			Sim: cfg.Sim, Seed: cfg.Seed,
			Receipts: cfg.Receipts, DeterministicKeys: cfg.DeterministicKeys,
		}, x, behaviors, stragglers)
	})
	Register("lcc", nil, func(f *field.Field, cfg Config, data map[string]*fieldmat.Matrix,
		behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (Master, error) {
		return baseline.NewLCCMaster(f, baseline.LCCOptions{
			N: cfg.N, K: cfg.K, S: cfg.S, M: cfg.M, T: cfg.T,
			DegF: cfg.DegF, Sim: cfg.Sim, Seed: cfg.Seed,
			Receipts: cfg.Receipts,
		}, data, behaviors, stragglers)
	})
	// The uncoded baseline deploys exactly K workers (no redundancy).
	Register("uncoded", func(cfg Config) int { return cfg.K },
		func(f *field.Field, cfg Config, data map[string]*fieldmat.Matrix,
			behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (Master, error) {
			return baseline.NewUncodedMaster(f, baseline.UncodedOptions{
				K: cfg.K, Sim: cfg.Sim, Seed: cfg.Seed,
				Receipts: cfg.Receipts,
			}, data, behaviors, stragglers)
		})
}

func dataKeys(data map[string]*fieldmat.Matrix) []string {
	keys := make([]string, 0, len(data))
	for k := range data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
