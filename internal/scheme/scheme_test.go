package scheme

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/gavcc"
	"repro/internal/simnet"
)

var f = field.Default()

func TestRegistryNames(t *testing.T) {
	got := Names()
	for _, want := range []string{"avcc", "static-vcc", "gavcc", "lcc", "uncoded"} {
		found := false
		for _, name := range got {
			if name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry %v is missing %q", got, want)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Names() not sorted: %v", got)
		}
	}
}

func TestUnknownSchemeErrors(t *testing.T) {
	x := fieldmat.Rand(f, rand.New(rand.NewSource(1)), 18, 6)
	data := map[string]*fieldmat.Matrix{"fwd": x}
	_, err := New("no-such-scheme", f, NewConfig(), data, nil, nil)
	if err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if !strings.Contains(err.Error(), "no-such-scheme") {
		t.Fatalf("error %q does not name the unknown scheme", err)
	}
	if !strings.Contains(err.Error(), "avcc") {
		t.Fatalf("error %q does not list the registered schemes", err)
	}
	if _, err := WorkerCount("no-such-scheme", NewConfig()); err == nil {
		t.Fatal("WorkerCount accepted an unknown scheme")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := NewConfig()
	if cfg.N != 12 || cfg.K != 9 {
		t.Fatalf("default coding (%d,%d), want the paper's (12,9)", cfg.N, cfg.K)
	}
	if cfg.S != 1 || cfg.M != 1 || cfg.T != 0 {
		t.Fatalf("default budgets (S=%d,M=%d,T=%d), want (1,1,0)", cfg.S, cfg.M, cfg.T)
	}
	if cfg.DegF != 1 {
		t.Fatalf("default DegF %d, want 1", cfg.DegF)
	}
	if cfg.VerifyTrials != 0 {
		t.Fatalf("default VerifyTrials %d, want 0 (single trial)", cfg.VerifyTrials)
	}
	if !cfg.Dynamic {
		t.Fatal("dynamic re-coding should default on")
	}
	if cfg.PregeneratedCodings {
		t.Fatal("pregenerated codings should default off")
	}
	if cfg.Sim != simnet.DefaultConfig() {
		t.Fatal("default Sim should be the calibrated latency model")
	}
}

func TestConfigOptions(t *testing.T) {
	sim := simnet.DefaultConfig()
	sim.LinkLatency = 1e-4
	cfg := NewConfig(
		WithCoding(10, 4),
		WithBudgets(2, 3, 1),
		WithDegF(2),
		WithSim(sim),
		WithSeed(99),
		WithDynamic(false),
		WithVerifyTrials(4),
		WithPregeneratedCodings(true),
	)
	want := Config{
		N: 10, K: 4, S: 2, M: 3, T: 1, DegF: 2, VerifyTrials: 4,
		Sim: sim, Seed: 99, Dynamic: false, PregeneratedCodings: true,
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("options applied wrong:\n got %+v\nwant %+v", cfg, want)
	}
}

func TestWorkerCount(t *testing.T) {
	cfg := NewConfig(WithCoding(12, 9))
	for name, want := range map[string]int{
		"avcc": 12, "static-vcc": 12, "gavcc": 12, "lcc": 12, "uncoded": 9,
	} {
		got, err := WorkerCount(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Fatalf("WorkerCount(%s) = %d, want %d", name, got, want)
		}
	}
}

// TestSchemesAgreeOnHonestMatvec is the cross-backend consistency check: on
// an all-honest cluster every registered matvec-capable scheme must decode
// the exact product X·w — any encode/verify/decode discrepancy in any
// backend breaks it.
func TestSchemesAgreeOnHonestMatvec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := fieldmat.Rand(f, rng, 36, 10)
	w := f.RandVec(rng, 10)
	want := fieldmat.MatVec(f, x, w)

	for _, name := range []string{"avcc", "static-vcc", "lcc", "uncoded"} {
		t.Run(name, func(t *testing.T) {
			m, err := New(name, f, NewConfig(WithSeed(7)),
				map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if m.Name() == "" {
				t.Fatal("empty scheme name")
			}
			out, err := m.RunRound(context.Background(), "fwd", w, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !field.EqualVec(out.Decoded, want) {
				t.Fatalf("%s decoded a different matvec result", name)
			}
			if got := len(m.Workers()); got == 0 {
				t.Fatal("master exposes no workers")
			}
		})
	}
}

// TestGavccThroughRegistry drives the degree-2 Gram backend through the
// same unified API and checks the flattened blocks against the direct
// computation.
func TestGavccThroughRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := fieldmat.Rand(f, rng, 8, 6)
	cfg := NewConfig(WithCoding(10, 4), WithSeed(8))

	// Wrong data keys must be rejected up front.
	if _, err := New("gavcc", f, cfg, map[string]*fieldmat.Matrix{"fwd": x}, nil, nil); err == nil {
		t.Fatal("gavcc accepted data without the gram key")
	}

	m, err := New("gavcc", f, cfg, map[string]*fieldmat.Matrix{gavcc.GramKey: x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.RunRound(context.Background(), gavcc.GramKey, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocked, ok := m.(Blocked)
	if !ok {
		t.Fatal("gavcc master should implement scheme.Blocked")
	}
	b := blocked.BlockRows()
	blocks := fieldmat.SplitRows(x, 4)
	if len(out.Decoded) != len(blocks)*b*b {
		t.Fatalf("decoded %d elems, want %d blocks of %dx%d", len(out.Decoded), len(blocks), b, b)
	}
	for j, blk := range blocks {
		want := fieldmat.MatMul(f, blk, blk.Transpose())
		if !field.EqualVec(out.Decoded[j*b*b:(j+1)*b*b], want.Data) {
			t.Fatalf("Gram block %d decoded wrong", j)
		}
	}
}

// TestAdaptiveInterface: only the dynamic AVCC master adapts, and it is
// reachable through the optional Adaptive interface.
func TestAdaptiveInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := fieldmat.Rand(f, rng, 36, 10)
	data := map[string]*fieldmat.Matrix{"fwd": x}

	m, err := New("avcc", f, NewConfig(WithSeed(9)), data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ad, ok := m.(Adaptive)
	if !ok {
		t.Fatal("avcc master should implement scheme.Adaptive")
	}
	if n, k := ad.Coding(); n != 12 || k != 9 {
		t.Fatalf("initial coding (%d,%d), want (12,9)", n, k)
	}
	if got := len(ad.ActiveWorkers()); got != 12 {
		t.Fatalf("%d active workers, want 12", got)
	}

	// static-vcc is the same master type with adaptation off; its Name must
	// reflect that so experiment tables stay distinguishable.
	s, err := New("static-vcc", f, NewConfig(WithSeed(9), WithDynamic(true)), data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "static-vcc" {
		t.Fatalf("static-vcc master reports name %q", s.Name())
	}
	if _, recoded := s.FinishIteration(0); recoded {
		t.Fatal("static-vcc must never re-code")
	}
}

func TestRegisterPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	noop := func(*field.Field, Config, map[string]*fieldmat.Matrix,
		[]attack.Behavior, attack.StragglerSchedule) (Master, error) {
		return nil, nil
	}
	assertPanics("duplicate name", func() { Register("avcc", nil, noop) })
	assertPanics("nil constructor", func() { Register("fresh-name", nil, nil) })
}
