// Sharded construction: scheme.New with Config.Shards > 1 builds one
// registry-backed master per shard group and wraps them in the fan-out
// master from internal/shard. Everything above the Master interface — the
// serving layer, the experiment drivers, the CLIs — works unchanged on the
// result; everything below it (encoding, verification, adaptation) runs
// per group, on that group's row shard alone.
package scheme

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/shard"
)

// shardSeedStride separates the per-group randomness streams: group g runs
// at cfg.Seed + g*shardSeedStride, so groups make independent (but still
// seed-reproducible) key, mask, and jitter draws.
const shardSeedStride = 1_000_003

// blockSharded names the registered schemes whose round output is a
// sequence of per-block results over the K-padded matrix (the Blocked
// interface) rather than a row-for-row decode. Sharding such a scheme must
// hand each group whole coded blocks — the plan splits the padded matrix at
// block boundaries and each group's K scales to the blocks it holds — or
// the concatenated output would change block geometry and stop being
// bit-exact with the unsharded deployment. Schemes not named here shard by
// plain rows, which is exact for any decode that trims to original rows.
var blockSharded = map[string]bool{"gavcc": true}

// newSharded builds cfg.Shards independent group masters via the registry
// and wraps them in a shard.Master. Each group receives its row shard of
// every data key, the shared behaviours/straggler schedule, a per-group
// seed, and (when cfg.Scenario is set) its own compiled scenario engine —
// so fault timelines play out independently in every group.
func newSharded(e entry, name string, f *field.Field, cfg Config, data map[string]*fieldmat.Matrix,
	behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (Master, error) {
	groups := cfg.Shards
	gcfg := cfg
	gcfg.Shards = 0
	if blockSharded[name] {
		if cfg.K%groups != 0 {
			return nil, &InvalidConfigError{"Shards", fmt.Sprintf(
				"= %d must divide K = %d for the block-structured scheme %q (each group holds whole coded blocks)",
				groups, cfg.K, name)}
		}
		gcfg.K = cfg.K / groups
	}

	plans := make(map[string]*shard.Plan, len(data))
	perGroup := make([]map[string]*fieldmat.Matrix, groups)
	for g := range perGroup {
		perGroup[g] = make(map[string]*fieldmat.Matrix, len(data))
	}
	for _, key := range dataKeys(data) {
		x := data[key]
		if blockSharded[name] {
			// Pad to K blocks first so the even split lands exactly on
			// block boundaries (K % groups == 0 guarantees divisibility).
			x = fieldmat.PadRows(x, cfg.K)
		}
		plan, err := shard.EvenPlan(x.Rows, groups)
		if err != nil {
			return nil, &InvalidConfigError{"Shards", fmt.Sprintf("= %d: key %q: %v", groups, key, err)}
		}
		slices, err := plan.Split(x)
		if err != nil {
			return nil, fmt.Errorf("scheme: sharding key %q: %w", key, err)
		}
		plans[key] = plan
		for g, sl := range slices {
			perGroup[g][key] = sl
		}
	}

	return shard.NewMaster(plans, func(g int) (shard.GroupMaster, error) {
		c := gcfg
		c.Seed = cfg.Seed + int64(g)*shardSeedStride
		m, err := e.build(f, c, perGroup[g], behaviors, stragglers)
		if err != nil {
			return nil, err
		}
		if c.Scenario != nil {
			if err := attachScenario(m, f, c, stragglers); err != nil {
				return nil, err
			}
		}
		return m, nil
	})
}
