// Sharded construction: scheme.New with Config.Shards > 1 (or a Rebalance
// policy, or per-group scenarios) builds one registry-backed master per
// shard group and wraps them in the fan-out master from internal/shard.
// Everything above the Master interface — the serving layer, the experiment
// drivers, the CLIs — works unchanged on the result; everything below it
// (encoding, verification, adaptation) runs per group, on that group's row
// shard alone. With Config.Rebalance set the wrapper is ELASTIC: it keeps
// the full matrices and a rebuild closure, so it can re-slice and re-encode
// affected groups whenever rows change hands or groups are added/retired at
// runtime.
package scheme

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scenario"
	"repro/internal/shard"
)

// shardSeedStride separates the per-group randomness streams: the group at
// seed-stream slot g runs at cfg.Seed + g*shardSeedStride, so groups make
// independent (but still seed-reproducible) key, mask, and jitter draws.
// Slots are never reused across the fleet's lifetime — a group added at
// runtime draws a stream no live or retired group ever touched.
const shardSeedStride = 1_000_003

// blockSharded names the registered schemes whose round output is a
// sequence of per-block results over the K-padded matrix (the Blocked
// interface) rather than a row-for-row decode. Sharding such a scheme must
// hand each group whole coded blocks — the plan splits the padded matrix at
// block boundaries and each group's K scales to the blocks it holds — or
// the concatenated output would change block geometry and stop being
// bit-exact with the unsharded deployment. For these schemes the elastic
// quantum is the block row count, so rebalancing moves whole blocks too.
// Schemes not named here shard by plain rows, which is exact for any decode
// that trims to original rows.
var blockSharded = map[string]bool{"gavcc": true}

// newSharded builds the initial groups via the registry and wraps them in a
// shard.Master. Each group receives its row shard of every data key, the
// shared behaviours/straggler schedule, a per-slot seed, and its slot's
// scenario — so fault timelines play out independently in every group.
func newSharded(e entry, name string, f *field.Field, cfg Config, data map[string]*fieldmat.Matrix,
	behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (Master, error) {
	groups := cfg.Shards
	if groups < 1 {
		groups = 1 // WithRebalance/WithGroupScenarios alone: one group to start
	}
	gcfg := cfg
	gcfg.Shards = 0
	gcfg.Rebalance = nil
	gcfg.GroupScenarios = nil
	quantum := 1
	if blockSharded[name] {
		if cfg.K%groups != 0 {
			return nil, &InvalidConfigError{"Shards", fmt.Sprintf(
				"= %d must divide K = %d for the block-structured scheme %q (each group holds whole coded blocks)",
				groups, cfg.K, name)}
		}
		gcfg.K = cfg.K / groups
	}

	// Keep the FULL (padded, for block schemes) matrices: the elastic master
	// re-slices them whenever rows change hands.
	full := make(map[string]*fieldmat.Matrix, len(data))
	plans := make(map[string]*shard.Plan, len(data))
	for _, key := range dataKeys(data) {
		x := data[key]
		if blockSharded[name] {
			// Pad to K blocks first so every split lands exactly on block
			// boundaries (K % groups == 0 guarantees initial divisibility).
			x = fieldmat.PadRows(x, cfg.K)
			quantum = x.Rows / cfg.K
		}
		plan, err := shard.EvenPlan(x.Rows, groups)
		if err != nil {
			return nil, &InvalidConfigError{"Shards", fmt.Sprintf("= %d: key %q: %v", groups, key, err)}
		}
		full[key] = x
		plans[key] = plan
	}

	// scnFor resolves a seed-stream slot's fault timeline: per-group
	// overrides for the initial slots, the shared Scenario otherwise —
	// including for every group the elastic plane adds later.
	scnFor := func(slot int) *scenario.Scenario {
		if slot < len(cfg.GroupScenarios) && cfg.GroupScenarios[slot] != nil {
			return cfg.GroupScenarios[slot]
		}
		return cfg.Scenario
	}
	rebuild := func(slot int, slices map[string]*fieldmat.Matrix) (shard.GroupMaster, error) {
		c := gcfg
		c.Seed = cfg.Seed + int64(slot)*shardSeedStride
		c.Scenario = scnFor(slot)
		if blockSharded[name] {
			// The group's K tracks the whole blocks it holds, so its output
			// block geometry matches the unsharded deployment's.
			for _, sl := range slices {
				c.K = sl.Rows / quantum
			}
		}
		m, err := e.build(f, c, slices, behaviors, stragglers)
		if err != nil {
			return nil, err
		}
		if c.Scenario != nil {
			if err := attachScenario(m, f, c, stragglers); err != nil {
				return nil, err
			}
		}
		return m, nil
	}

	if cfg.Rebalance != nil {
		return shard.NewElasticMaster(full, plans, quantum, *cfg.Rebalance, rebuild)
	}
	// Statically sharded: same construction, topology frozen after this.
	perGroup := make([]map[string]*fieldmat.Matrix, groups)
	for g := range perGroup {
		perGroup[g] = make(map[string]*fieldmat.Matrix, len(full))
	}
	for _, key := range dataKeys(full) {
		slices, err := plans[key].Split(full[key])
		if err != nil {
			return nil, fmt.Errorf("scheme: sharding key %q: %w", key, err)
		}
		for g, sl := range slices {
			perGroup[g][key] = sl
		}
	}
	return shard.NewMaster(plans, func(g int) (shard.GroupMaster, error) {
		return rebuild(g, perGroup[g])
	})
}
