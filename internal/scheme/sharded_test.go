package scheme

// The sharded axis of the conformance suite: every registered scheme runs
// under {1, 2, 4} shard groups through the steady, churn, and adversarial-
// wave presets, and the sharded fan-out master must decode bit-exact with
// the unsharded master on the same seed and input sequence. Sharding moves
// WHERE the protocol runs (one coded group per row shard, each with its own
// executor, scenario engine, and adaptation state) but may never move WHAT
// is computed. The isolation test then proves the per-group adaptation
// claim directly: churn confined to one group re-codes that group alone.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/gavcc"
	"repro/internal/scenario"
	"repro/internal/shard"
)

// shardedPresets is the sharded axis of the suite: the control arm, the
// re-coding regime, and the quarantine regime.
func shardedPresets() []string {
	return []string{scenario.Steady, scenario.Churn, scenario.AdversarialWave}
}

// runShardedCell drives one (scheme, profile, shards) cell for rounds
// iterations, asserting every decode against the uncoded reference, and
// returns the per-iteration decodes plus the master for post-run
// introspection. shards == 1 is the unsharded control the other cells are
// compared against.
func runShardedCell(t *testing.T, tc conformanceCase, profile string, shards, rounds int) ([][]field.Elem, Master) {
	t.Helper()
	f := field.Default()
	rng := rand.New(rand.NewSource(conformanceSeed))
	var x *fieldmat.Matrix
	if tc.key == gavcc.GramKey {
		x = fieldmat.Rand(f, rng, 64, 48)
	} else {
		x = fieldmat.Rand(f, rng, 720, 120)
	}
	scn, err := scenario.Profile(profile, tc.n, tc.k, conformanceSeed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tc.scheme, f, NewConfig(
		WithCoding(tc.n, tc.k),
		WithBudgets(1, 1, 0),
		WithSim(conformanceSim()),
		WithSeed(conformanceSeed),
		WithScenario(scn),
		WithShards(shards),
	), tc.data(x), nil, nil)
	if err != nil {
		t.Fatalf("%s under %s at %d shards: %v", tc.scheme, profile, shards, err)
	}
	outs := make([][]field.Elem, 0, rounds)
	for iter := 0; iter < rounds; iter++ {
		in := tc.input(f, rng, x)
		out, err := m.RunRound(context.Background(), tc.key, in, iter)
		if err != nil {
			t.Fatalf("%s under %s at %d shards, iter %d: %v", tc.scheme, profile, shards, iter, err)
		}
		if want := tc.want(f, x, in, tc.k); !field.EqualVec(out.Decoded, want) {
			t.Fatalf("%s under %s at %d shards, iter %d: decode not bit-exact against the uncoded reference",
				tc.scheme, profile, shards, iter)
		}
		outs = append(outs, out.Decoded)
		m.FinishIteration(iter)
	}
	return outs, m
}

func TestShardedConformanceBitExactWithUnsharded(t *testing.T) {
	const rounds = 8
	for _, tc := range conformanceCases() {
		for _, profile := range shardedPresets() {
			tc, profile := tc, profile
			t.Run(tc.scheme+"/"+profile, func(t *testing.T) {
				base, _ := runShardedCell(t, tc, profile, 1, rounds)
				for _, shards := range []int{2, 4} {
					outs, m := runShardedCell(t, tc, profile, shards, rounds)
					for iter := range outs {
						if !field.EqualVec(outs[iter], base[iter]) {
							t.Fatalf("%d shards, iter %d: sharded decode differs from the unsharded master",
								shards, iter)
						}
					}
					sm, ok := m.(*shard.Master)
					if !ok {
						t.Fatalf("%d shards: New returned %T, want *shard.Master", shards, m)
					}
					if sm.Groups() != shards {
						t.Fatalf("New built %d groups, want %d", sm.Groups(), shards)
					}
					// The whole-fleet churn arm: every group sees the same
					// timeline, so the adaptive scheme must have re-coded in
					// every group independently.
					if profile == scenario.Churn && tc.scheme == "avcc" {
						for g := 0; g < sm.Groups(); g++ {
							ad, ok := sm.Group(g).(Adaptive)
							if !ok {
								t.Fatalf("group %d does not expose the Adaptive interface", g)
							}
							if _, k := ad.Coding(); k >= tc.k {
								t.Errorf("group %d still at K = %d after whole-fleet churn, want a re-code", g, k)
							}
						}
					}
				}
			})
		}
	}
}

// TestShardChurnIsolatedToOneGroup is the fault-isolation contract of the
// shard plane: churn confined to group 0 must push ONLY group 0 through
// AVCC's re-coding rule, while group 1 keeps its original coding and full
// active set — and the fleet keeps decoding exactly throughout.
func TestShardChurnIsolatedToOneGroup(t *testing.T) {
	const rounds = 8
	f := field.Default()
	rng := rand.New(rand.NewSource(conformanceSeed))
	x := fieldmat.Rand(f, rng, 720, 120)
	plan, err := shard.EvenPlan(x.Rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	slices, err := plan.Split(x)
	if err != nil {
		t.Fatal(err)
	}
	churn, err := scenario.Profile(scenario.Churn, 12, 9, conformanceSeed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.NewMaster(map[string]*shard.Plan{"fwd": plan}, func(g int) (shard.GroupMaster, error) {
		opts := []Option{
			WithCoding(12, 9),
			WithBudgets(1, 1, 0),
			WithSim(conformanceSim()),
			WithSeed(conformanceSeed + int64(g)),
		}
		if g == 0 {
			opts = append(opts, WithScenario(churn))
		}
		return New("avcc", f, NewConfig(opts...), map[string]*fieldmat.Matrix{"fwd": slices[g]}, nil, nil)
	})
	if err != nil {
		t.Fatal(err)
	}

	recoded := false
	for iter := 0; iter < rounds; iter++ {
		in := f.RandVec(rng, x.Cols)
		out, err := m.RunRound(context.Background(), "fwd", in, iter)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, in)) {
			t.Fatalf("iter %d: decode not exact while group 0 churns", iter)
		}
		if _, r := m.FinishIteration(iter); r {
			recoded = true
		}
	}
	if !recoded {
		t.Fatal("the sharded master never reported the churning group's re-code")
	}
	g0, ok := m.Group(0).(Adaptive)
	if !ok {
		t.Fatal("group 0 does not expose the Adaptive interface")
	}
	if _, k := g0.Coding(); k >= 9 {
		t.Errorf("group 0 still at K = %d after churn, want a re-code", k)
	}
	g1 := m.Group(1).(Adaptive)
	if n, k := g1.Coding(); n != 12 || k != 9 {
		t.Errorf("group 1 moved to (%d, %d) although its world was steady, want (12, 9)", n, k)
	}
	if active := g1.ActiveWorkers(); len(active) != 12 {
		t.Errorf("group 1 has %d active workers although its world was steady, want 12", len(active))
	}
}

// TestShardedServiceServesExactly threads a sharded master through the
// serving layer: Submit/coalescing/tenant metrics must work unchanged when
// the master underneath is a fan-out over shard groups.
func TestShardedServiceServesExactly(t *testing.T) {
	f := field.Default()
	rng := rand.New(rand.NewSource(11))
	x := fieldmat.Rand(f, rng, 240, 40)
	m, err := New("avcc", f, NewConfig(WithSeed(11), WithShards(2)),
		map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(m, ServiceConfig{MaxBatch: 8})
	defer svc.Close(context.Background())

	const reqs = 24
	futures := make([]*Future, reqs)
	inputs := make([][]field.Elem, reqs)
	ctx := WithTenant(context.Background(), "sharded")
	for i := range futures {
		inputs[i] = f.RandVec(rng, x.Cols)
		futures[i] = svc.Submit(ctx, "fwd", inputs[i])
	}
	for i, fu := range futures {
		out, err := fu.Wait(context.Background())
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, inputs[i])) {
			t.Fatalf("request %d: served decode is not the exact product", i)
		}
	}
	stats := svc.Stats()
	if stats.Requests != reqs {
		t.Fatalf("service accounted %d requests, want %d", stats.Requests, reqs)
	}
	if len(stats.Tenants) != 1 || stats.Tenants[0].Tenant != "sharded" || stats.Tenants[0].Completed != reqs {
		t.Fatalf("tenant accounting off: %+v", stats.Tenants)
	}
}
