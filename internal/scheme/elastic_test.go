package scheme

// The elastic shard plane at the scheme layer: construction through the
// registry (WithRebalance / WithGroupScenarios), bit-exact serving across
// mid-run topology changes, the Service→master feedback loop, and the
// degraded-fleet soak behind the "recovers without restart" claim.

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scenario"
	"repro/internal/shard"
)

// degradeAll slows every worker of an n-worker group by factor from
// iteration `from` on, permanently — the "half the fleet degrades mid-run"
// fault. A uniform within-group slowdown leaves relative arrivals alone, so
// the group's own straggler detector stays quiet; only the BETWEEN-group
// imbalance grows, which is exactly the elastic plane's job to fix.
func degradeAll(n int, factor float64, from int) *scenario.Scenario {
	s := &scenario.Scenario{Name: "degrade", N: n}
	for w := 0; w < n; w++ {
		s.Events = append(s.Events, scenario.Event{
			Kind: scenario.Slowdown, Worker: w, From: from, Factor: factor,
		})
	}
	return s
}

func TestElasticConfigValidation(t *testing.T) {
	f := field.Default()
	x := fieldmat.NewMatrix(64, 8)
	data := map[string]*fieldmat.Matrix{"fwd": x}

	_, err := New("avcc", f, NewConfig(
		WithRebalance(shard.RebalanceConfig{Ratio: 0.5}), // a ratio <= 1 re-triggers forever
	), data, nil, nil)
	var cfgErr *InvalidConfigError
	if !errors.As(err, &cfgErr) || cfgErr.Field != "Rebalance" {
		t.Fatalf("Ratio 0.5 accepted: err = %v, want an InvalidConfigError on Rebalance", err)
	}

	// Autoscale bounds must contain the initial group count.
	if _, err := New("avcc", f, NewConfig(
		WithShards(4),
		WithRebalance(shard.RebalanceConfig{MinGroups: 1, MaxGroups: 2}),
	), data, nil, nil); err == nil {
		t.Fatal("4 initial groups accepted under MaxGroups = 2")
	}

	// WithRebalance alone routes to the shard plane with one starting group.
	m, err := New("avcc", f, NewConfig(
		WithRebalance(shard.DefaultRebalanceConfig()),
	), data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	el, ok := m.(Elastic)
	if !ok {
		t.Fatalf("New returned %T, which is not Elastic", m)
	}
	if st := el.RebalanceStatus(); !st.Enabled || st.Groups != 1 {
		t.Fatalf("status = %+v, want an enabled single-group fleet", st)
	}
}

// TestElasticDecodeBitExactAcrossRebalance is the correctness half of the
// tentpole: with group 0 degraded from the start, the elastic fleet moves
// rows mid-run — and every decode before, during, and after those moves must
// stay the exact product, identical to the rebalance-off fleet on the same
// seed.
func TestElasticDecodeBitExactAcrossRebalance(t *testing.T) {
	const rounds = 16
	f := field.Default()
	run := func(rebalance bool) ([][]field.Elem, Master) {
		rng := rand.New(rand.NewSource(5))
		x := fieldmat.Rand(f, rng, 240, 48)
		opts := []Option{
			WithSeed(5),
			WithShards(2),
			WithSim(conformanceSim()),
			WithGroupScenarios(degradeAll(12, 4, 0)), // slot 0 slow, slot 1 clean
		}
		if rebalance {
			opts = append(opts, WithRebalance(shard.RebalanceConfig{
				Alpha: 0.5, Ratio: 1.2, CooldownRounds: 1,
			}))
		}
		m, err := New("avcc", f, NewConfig(opts...), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		outs := make([][]field.Elem, rounds)
		for iter := 0; iter < rounds; iter++ {
			in := f.RandVec(rng, x.Cols)
			out, err := m.RunRound(context.Background(), "fwd", in, iter)
			if err != nil {
				t.Fatalf("rebalance=%v iter %d: %v", rebalance, iter, err)
			}
			if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, in)) {
				t.Fatalf("rebalance=%v iter %d: decode is not the exact product", rebalance, iter)
			}
			outs[iter] = out.Decoded
			m.FinishIteration(iter)
			if el, ok := m.(Elastic); ok && rebalance {
				if _, err := el.Tick(shard.LoadSignal{}); err != nil {
					t.Fatalf("rebalance=%v iter %d: tick: %v", rebalance, iter, err)
				}
			}
		}
		return outs, m
	}

	off, _ := run(false)
	on, m := run(true)
	for iter := range on {
		if !field.EqualVec(on[iter], off[iter]) {
			t.Fatalf("iter %d: rebalance-on decode differs from rebalance-off on the same seed", iter)
		}
	}
	st := m.(Elastic).RebalanceStatus()
	if st.Moves < 1 {
		t.Fatalf("the degraded fleet never rebalanced (status %+v); the bit-exactness claim is vacuous", st)
	}
	// The slow group must have shed rows to its clean neighbour.
	snap := m.(Elastic).Snapshot()
	if slow, fast := snap[0].Spans["fwd"].Rows, snap[1].Spans["fwd"].Rows; slow >= fast {
		t.Errorf("group 0 (degraded 4x) still holds %d rows vs the clean group's %d", slow, fast)
	}
}

// TestServiceTicksElasticMaster pins the feedback plumbing: the dispatcher
// must call the elastic master's Tick after every successful round, with the
// live queue depth and service p99.
func TestServiceTicksElasticMaster(t *testing.T) {
	f := field.Default()
	rng := rand.New(rand.NewSource(13))
	x := fieldmat.Rand(f, rng, 96, 16)
	m, err := New("avcc", f, NewConfig(
		WithSeed(13),
		WithShards(2),
		WithRebalance(shard.DefaultRebalanceConfig()),
	), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(m, ServiceConfig{MaxBatch: 4})
	defer svc.Close(context.Background())

	const reqs = 6
	for i := 0; i < reqs; i++ {
		in := f.RandVec(rng, x.Cols)
		out, err := svc.Submit(context.Background(), "fwd", in).Wait(context.Background())
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, in)) {
			t.Fatalf("request %d: served decode is not the exact product", i)
		}
	}
	st := m.(Elastic).RebalanceStatus()
	if st.Ticks < 1 {
		t.Fatalf("the service ran %d requests but never ticked the elastic master (status %+v)", reqs, st)
	}
	if st.LastError != "" {
		t.Fatalf("ticking recorded an error: %s", st.LastError)
	}
}

// TestElasticServingSoakRecoversFromDegradedFleet is the headline soak: a
// four-group fleet serves batched rounds; at iteration 12 HALF the fleet
// (seed slots 0 and 1) degrades 6x, permanently. The elastic plane must
// recover virtual throughput to >= 80% of the pre-fault steady state with no
// restart — by draining the slow groups, retiring them at the floor, and
// growing fresh (healthy-slot) groups in their place. A poller goroutine
// hammers the /statz surfaces throughout, so -race covers the snapshot path
// against live topology changes.
func TestElasticServingSoakRecoversFromDegradedFleet(t *testing.T) {
	const (
		rounds  = 64
		faultAt = 12
		batch   = 4
	)
	f := field.Default()
	rng := rand.New(rand.NewSource(21))
	x := fieldmat.Rand(f, rng, 480, 64)
	m, err := New("avcc", f, NewConfig(
		WithSeed(21),
		WithShards(4),
		WithSim(conformanceSim()),
		// Slots 0 and 1 carry the fault; every other slot — including the
		// fresh slots autoscaling mints mid-run — is the clean default.
		WithGroupScenarios(degradeAll(12, 6, faultAt), degradeAll(12, 6, faultAt)),
		WithRebalance(shard.RebalanceConfig{
			Alpha: 0.5, Ratio: 1.2, CooldownRounds: 1,
			MinGroups: 2, MaxGroups: 8,
			// The virtual-wall trigger: host-side queue depth cannot sense a
			// VIRTUAL slowdown (the simulated rounds cost the same host time),
			// so capacity scaling keys off the walls the fleet observes. A
			// threshold below any real wall keeps growth pressure on whenever
			// head-room exists.
			ScaleUpWall: 1e-9,
		}),
	), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	el := m.(Elastic)

	stop := make(chan struct{})
	pollerDone := make(chan struct{})
	go func() {
		defer close(pollerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, gs := range el.Snapshot() {
				if gs.Workers < 1 || gs.Spans["fwd"].Rows < 1 {
					t.Errorf("poller saw a degenerate group: %+v", gs)
					return
				}
			}
			el.RebalanceStatus()
		}
	}()

	reqsPerSec := make([]float64, rounds)
	for iter := 0; iter < rounds; iter++ {
		inputs := make([][]field.Elem, batch)
		for i := range inputs {
			inputs[i] = f.RandVec(rng, x.Cols)
		}
		out, err := m.RunRoundBatch(context.Background(), "fwd", inputs, iter)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i := range inputs {
			if !field.EqualVec(out.Round(i).Decoded, fieldmat.MatVec(f, x, inputs[i])) {
				t.Fatalf("iter %d request %d: decode is not the exact product", iter, i)
			}
		}
		if out.Breakdown.Wall <= 0 {
			t.Fatalf("iter %d: round reported wall %v", iter, out.Breakdown.Wall)
		}
		reqsPerSec[iter] = batch / out.Breakdown.Wall
		m.FinishIteration(iter)
		if _, err := el.Tick(shard.LoadSignal{}); err != nil {
			t.Fatalf("iter %d: tick: %v", iter, err)
		}
	}
	close(stop)
	<-pollerDone

	mean := func(lo, hi int) float64 {
		sum := 0.0
		for _, v := range reqsPerSec[lo:hi] {
			sum += v
		}
		return sum / float64(hi-lo)
	}
	pre := mean(faultAt-4, faultAt)      // steady state just before the fault
	trough := mean(faultAt+1, faultAt+5) // right after half the fleet degraded
	recovered := mean(rounds-8, rounds)  // late steady state, no restart
	if trough >= pre {
		t.Fatalf("the fault never bit: pre-fault %.1f req/s, post-fault %.1f", pre, trough)
	}
	if recovered < 0.8*pre {
		t.Fatalf("recovered to %.1f virtual req/s, want >= 80%% of the pre-fault %.1f (trough %.1f)",
			recovered, pre, trough)
	}

	st := el.RebalanceStatus()
	if st.Moves < 1 || st.GroupsRetired < 1 {
		t.Fatalf("recovery without rebalancing? status %+v", st)
	}
	// Recovery must have come partly from growth: at least one live group
	// sits on a fresh slot (>= 4) — a clean scenario timeline and a seed
	// stream no initial (and no degraded) group ever used.
	fresh := false
	for _, gs := range el.Snapshot() {
		if gs.Slot >= 4 {
			fresh = true
		}
	}
	if !fresh {
		t.Errorf("no runtime-added group survives in the recovered fleet (status %+v)", st)
	}
}
