package scheme

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
)

// echoMaster is a scriptable Master for queue-behaviour tests: every batch
// entry resolves to its own input, rounds can be made to block, and batch
// sizes are recorded.
type echoMaster struct {
	mu       sync.Mutex
	batches  []int
	finishes int           // FinishIteration calls observed
	gate     chan struct{} // non-nil: every round waits for one receive
	started  chan struct{} // non-nil: signalled when a round begins
}

func (m *echoMaster) Name() string { return "echo" }

func (m *echoMaster) RunRound(ctx context.Context, key string, input []field.Elem, iter int) (*cluster.RoundOutput, error) {
	b, err := m.RunRoundBatch(ctx, key, [][]field.Elem{input}, iter)
	if err != nil {
		return nil, err
	}
	return b.Round(0), nil
}

func (m *echoMaster) RunRoundBatch(_ context.Context, key string, inputs [][]field.Elem, _ int) (*cluster.BatchOutput, error) {
	if m.started != nil {
		m.started <- struct{}{}
	}
	if m.gate != nil {
		<-m.gate
	}
	if key == "fail" {
		return nil, fmt.Errorf("echo: round failed")
	}
	m.mu.Lock()
	m.batches = append(m.batches, len(inputs))
	m.mu.Unlock()
	out := &cluster.BatchOutput{Outputs: make([][]field.Elem, len(inputs))}
	copy(out.Outputs, inputs)
	return out, nil
}

func (m *echoMaster) FinishIteration(int) (float64, bool) {
	m.mu.Lock()
	m.finishes++
	m.mu.Unlock()
	return 0, false
}
func (m *echoMaster) SetExecutor(cluster.Executor) {}
func (m *echoMaster) Workers() []*cluster.Worker   { return nil }

func (m *echoMaster) batchSizes() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int(nil), m.batches...)
}

func (m *echoMaster) finishCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.finishes
}

// TestServiceServesCorrectDecodes drives a real AVCC master through the
// service from many goroutines and checks every future decodes the exact
// product — the serving layer must be invisible to correctness.
func TestServiceServesCorrectDecodes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := fieldmat.Rand(f, rng, 36, 10)
	m, err := New("avcc", f, NewConfig(WithSeed(31)), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(m, ServiceConfig{MaxBatch: 8, MaxLinger: 20 * time.Millisecond})
	defer svc.Close(context.Background())

	const requests = 24
	type job struct {
		in []field.Elem
		fu *Future
	}
	jobs := make([]job, requests)
	for i := range jobs {
		jobs[i].in = f.RandVec(rng, 10)
	}
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i].fu = svc.Submit(context.Background(), "fwd", jobs[i].in)
		}(i)
	}
	wg.Wait()
	for i, j := range jobs {
		out, err := j.fu.Wait(context.Background())
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, j.in)) {
			t.Fatalf("request %d decoded the wrong product", i)
		}
	}
	stats := svc.Stats()
	if stats.Requests != requests {
		t.Fatalf("stats counted %d requests, want %d", stats.Requests, requests)
	}
	if stats.Rounds >= requests {
		t.Fatalf("no coalescing: %d rounds for %d requests", stats.Rounds, requests)
	}
}

func TestServiceRespectsMaxBatch(t *testing.T) {
	em := &echoMaster{}
	svc := NewService(em, ServiceConfig{MaxBatch: 4, MaxLinger: 20 * time.Millisecond})
	defer svc.Close(context.Background())

	futures := make([]*Future, 10)
	for i := range futures {
		futures[i] = svc.Submit(context.Background(), "k", []field.Elem{field.Elem(i)})
	}
	for _, fu := range futures {
		if _, err := fu.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range em.batchSizes() {
		if b > 4 {
			t.Fatalf("round carried %d requests, MaxBatch is 4", b)
		}
	}
}

func TestServicePerTenantAccounting(t *testing.T) {
	em := &echoMaster{}
	svc := NewService(em, ServiceConfig{MaxBatch: 8, MaxLinger: time.Millisecond})
	defer svc.Close(context.Background())

	alice := WithTenant(context.Background(), "alice")
	bob := WithTenant(context.Background(), "bob")
	var fus []*Future
	for i := 0; i < 6; i++ {
		fus = append(fus, svc.Submit(alice, "k", []field.Elem{1}))
	}
	for i := 0; i < 3; i++ {
		fus = append(fus, svc.Submit(bob, "k", []field.Elem{2}))
	}
	for _, fu := range fus {
		if _, err := fu.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	byName := map[string]TenantStats{}
	for _, ts := range svc.Stats().Tenants {
		byName[ts.Tenant] = ts
	}
	a, b := byName["alice"], byName["bob"]
	if a.Submitted != 6 || a.Completed != 6 || a.Failed != 0 {
		t.Fatalf("alice stats %+v", a)
	}
	if b.Submitted != 3 || b.Completed != 3 {
		t.Fatalf("bob stats %+v", b)
	}
	if a.Latency.Count != 6 || b.Latency.Count != 3 {
		t.Fatalf("latency sample counts (%d, %d), want (6, 3)", a.Latency.Count, b.Latency.Count)
	}
	if a.Latency.P50 <= 0 || a.Latency.P99 < a.Latency.P50 {
		t.Fatalf("alice latency quantiles implausible: %+v", a.Latency)
	}
}

func TestServiceRoundErrorFailsTheWholeBatch(t *testing.T) {
	em := &echoMaster{}
	svc := NewService(em, ServiceConfig{MaxBatch: 4, MaxLinger: time.Millisecond})
	defer svc.Close(context.Background())

	fu1 := svc.Submit(context.Background(), "fail", []field.Elem{1})
	fu2 := svc.Submit(context.Background(), "fail", []field.Elem{2})
	for _, fu := range []*Future{fu1, fu2} {
		if _, err := fu.Wait(context.Background()); err == nil {
			t.Fatal("failed round resolved a future without error")
		}
	}
	for _, ts := range svc.Stats().Tenants {
		if ts.Tenant == DefaultTenant && ts.Failed != 2 {
			t.Fatalf("failed count %d, want 2", ts.Failed)
		}
	}
}

func TestServiceGracefulDrain(t *testing.T) {
	em := &echoMaster{gate: make(chan struct{}, 64), started: make(chan struct{}, 64)}
	svc := NewService(em, ServiceConfig{MaxBatch: 2, MaxLinger: time.Hour})

	// Queue three requests; the first round blocks on the gate.
	fus := []*Future{
		svc.Submit(context.Background(), "k", []field.Elem{1}),
		svc.Submit(context.Background(), "k", []field.Elem{2}),
		svc.Submit(context.Background(), "k", []field.Elem{3}),
	}
	<-em.started // round 1 dispatched (full batch of 2 beat the linger)

	// Close begins the drain: admission stops immediately...
	closeDone := make(chan error, 1)
	go func() { closeDone <- svc.Close(context.Background()) }()
	for { // wait for Close to flip admission off before probing it
		svc.mu.Lock()
		closed := svc.closed
		svc.mu.Unlock()
		if closed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	rejected := svc.Submit(context.Background(), "k", []field.Elem{4})
	if _, err := rejected.Wait(context.Background()); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("post-Close submit got %v, want ErrServiceClosed", err)
	}
	// ... but queued work still completes (round 1, then the drained round
	// for request 3 — which must NOT wait out the 1h linger).
	em.gate <- struct{}{}
	<-em.started
	em.gate <- struct{}{}
	for i, fu := range fus {
		if _, err := fu.Wait(context.Background()); err != nil {
			t.Fatalf("queued request %d failed during drain: %v", i, err)
		}
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestServiceCloseHonoursContext(t *testing.T) {
	em := &echoMaster{gate: make(chan struct{}), started: make(chan struct{}, 1)}
	svc := NewService(em, ServiceConfig{MaxBatch: 1})
	svc.Submit(context.Background(), "k", []field.Elem{1})
	<-em.started // the round is now blocked on the gate

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close under a stuck round returned %v, want the context error", err)
	}
	close(em.gate) // release the round so the dispatcher exits
}

func TestServiceQueueFullRejectsFast(t *testing.T) {
	em := &echoMaster{gate: make(chan struct{}), started: make(chan struct{}, 1)}
	svc := NewService(em, ServiceConfig{MaxBatch: 1, MaxPending: 1})

	first := svc.Submit(context.Background(), "k", []field.Elem{1})
	<-em.started // dispatched (queue empty again), round blocked
	queued := svc.Submit(context.Background(), "k", []field.Elem{2})
	overflow := svc.Submit(context.Background(), "k", []field.Elem{3})
	if _, err := overflow.Wait(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit got %v, want ErrQueueFull", err)
	}
	close(em.gate)
	for _, fu := range []*Future{first, queued} {
		if _, err := fu.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	svc.Close(context.Background())
}

func TestServiceDropsRequestsCancelledWhileQueued(t *testing.T) {
	em := &echoMaster{gate: make(chan struct{}), started: make(chan struct{}, 2)}
	svc := NewService(em, ServiceConfig{MaxBatch: 1})

	first := svc.Submit(context.Background(), "k", []field.Elem{1})
	<-em.started // round 1 blocked; anything submitted now queues behind it

	ctx, cancel := context.WithCancel(context.Background())
	doomed := svc.Submit(ctx, "k", []field.Elem{2})
	cancel()
	em.gate <- struct{}{} // release round 1

	if _, err := doomed.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled-while-queued request got %v, want context.Canceled", err)
	}
	if _, err := first.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(em.gate)
	svc.Close(context.Background())
}

// TestServiceDrivesAdaptation: the serving loop calls FinishIteration per
// round, so AVCC's dynamic re-coding keeps working under serving traffic.
type adaptingMaster struct {
	echoMaster
	recodes int
}

func (m *adaptingMaster) FinishIteration(int) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recodes++
	return 0, true
}

func TestServiceCountsRecodes(t *testing.T) {
	am := &adaptingMaster{}
	svc := NewService(am, ServiceConfig{MaxBatch: 1})
	fu := svc.Submit(context.Background(), "k", []field.Elem{1})
	if _, err := fu.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc.Close(context.Background())
	if got := svc.Stats().Recodes; got != 1 {
		t.Fatalf("stats recorded %d recodes, want 1", got)
	}
}

// TestServiceFailedRoundSkipsAdaptation is the regression for the serving
// loop feeding failed rounds to the adaptive controller: FinishIteration
// used to run unconditionally after every batch, failure included, so a
// transport collapse adapted the coding on observations the round never
// produced. A failed round must leave the controller untouched; a
// successful one still drives it.
func TestServiceFailedRoundSkipsAdaptation(t *testing.T) {
	em := &echoMaster{}
	svc := NewService(em, ServiceConfig{MaxBatch: 4, MaxLinger: time.Millisecond})
	defer svc.Close(context.Background())

	fu := svc.Submit(context.Background(), "fail", []field.Elem{1})
	if _, err := fu.Wait(context.Background()); err == nil {
		t.Fatal("failed round resolved without error")
	}
	if n := em.finishCount(); n != 0 {
		t.Fatalf("FinishIteration ran %d times for a failed round", n)
	}
	ok := svc.Submit(context.Background(), "k", []field.Elem{2})
	if _, err := ok.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := em.finishCount(); n != 1 {
		t.Fatalf("FinishIteration ran %d times after one successful round, want 1", n)
	}
}

// TestServiceFailedRoundDoesNotShrinkCoding drives the same regression
// through a real AVCC master: a round that fails because Byzantines exceed
// the verification budget must not shrink K or quarantine anyone — the
// round produced no decode, so there is nothing to adapt on — and the
// stranded observations must not poison the NEXT iteration's adaptation
// either.
func TestServiceFailedRoundDoesNotShrinkCoding(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := fieldmat.Rand(f, rng, 36, 10)
	m, err := New("avcc", f, NewConfig(WithCoding(12, 9), WithBudgets(1, 2, 0), WithSeed(33)),
		map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ad := m.(Adaptive)
	n0, k0 := ad.Coding()
	active0 := len(ad.ActiveWorkers())

	// Half the fleet lies: far beyond the M=2 budget, so verification finds
	// fewer than threshold-many honest results and the round errors out.
	lying := m.Workers()[:6]
	for _, w := range lying {
		w.Behavior = attack.Constant{V: 3}
	}
	svc := NewService(m, ServiceConfig{MaxBatch: 1})
	defer svc.Close(context.Background())

	in := f.RandVec(rng, 10)
	if _, err := svc.Submit(context.Background(), "fwd", in).Wait(context.Background()); err == nil {
		t.Fatal("a round with 6 Byzantines under an M=2 budget must fail")
	}
	if n, k := ad.Coding(); n != n0 || k != k0 {
		t.Fatalf("failed round re-coded (%d,%d) → (%d,%d)", n0, k0, n, k)
	}
	if got := len(ad.ActiveWorkers()); got != active0 {
		t.Fatalf("failed round quarantined workers: %d active, want %d", got, active0)
	}

	// The fleet heals; the next round must decode exactly — and the failed
	// round's stranded Byzantine observations must not get the now-honest
	// workers quarantined retroactively.
	for _, w := range lying {
		w.Behavior = attack.Honest{}
	}
	out, err := svc.Submit(context.Background(), "fwd", in).Wait(context.Background())
	if err != nil {
		t.Fatalf("healed round failed: %v", err)
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, in)) {
		t.Fatal("healed round decoded the wrong product")
	}
	if n, k := ad.Coding(); n != n0 || k != k0 {
		t.Fatalf("stale observations re-coded (%d,%d) → (%d,%d)", n0, k0, n, k)
	}
	if got := len(ad.ActiveWorkers()); got != active0 {
		t.Fatalf("stale observations quarantined workers: %d active, want %d", got, active0)
	}
}

func TestServiceEvictsWrongLengthRequestAlone(t *testing.T) {
	// One client's wrong-sized input must fail alone: the neighbours riding
	// the same coalesced round still decode.
	em := &echoMaster{}
	svc := NewService(em, ServiceConfig{MaxBatch: 4, MaxLinger: 5 * time.Millisecond})
	defer svc.Close(context.Background())

	good1 := svc.Submit(context.Background(), "k", []field.Elem{1, 2})
	bad := svc.Submit(context.Background(), "k", []field.Elem{7})
	good2 := svc.Submit(context.Background(), "k", []field.Elem{3, 4})
	if _, err := bad.Wait(context.Background()); !errors.Is(err, ErrInputLength) {
		t.Fatalf("wrong-length request got %v, want ErrInputLength", err)
	}
	for i, fu := range []*Future{good1, good2} {
		if _, err := fu.Wait(context.Background()); err != nil {
			t.Fatalf("well-formed request %d failed alongside the bad one: %v", i, err)
		}
	}
}
