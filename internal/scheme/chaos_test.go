package scheme

// The seeded chaos/soak test: 200 concurrent Submits across 4 tenants
// against a SHARDED service whose groups live under the adversarial-wave
// scenario, with mid-run context cancellations and an admission queue small
// enough to force rejections. The assertions are the serving layer's
// liveness and accounting invariants — every Future resolves (no leaks),
// and the per-tenant counters and latency histograms reconcile exactly with
// what was submitted — under precisely the concurrency the race detector
// needs to see (the CI race job runs this test).

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scenario"
)

func TestChaosShardedServiceSoak(t *testing.T) {
	const (
		chaosSeed = 99
		submits   = 200
	)
	tenants := []string{"alpha", "beta", "gamma", "delta"}

	f := field.Default()
	rng := rand.New(rand.NewSource(chaosSeed))
	x := fieldmat.Rand(f, rng, 240, 48)
	scn, err := scenario.Profile(scenario.AdversarialWave, 12, 9, chaosSeed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New("avcc", f, NewConfig(
		WithSeed(chaosSeed),
		WithShards(2),
		WithSim(conformanceSim()),
		WithScenario(scn),
	), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(m, ServiceConfig{
		MaxBatch:   16,
		MaxLinger:  100 * time.Microsecond,
		MaxPending: 64, // small enough that the burst can overflow admission
	})

	// Seeded chaos script: which submits carry a mid-run cancellation, and
	// each submit's input, are decided up front so the run is replayable.
	inputs := make([][]field.Elem, submits)
	cancelled := make([]bool, submits)
	for i := range inputs {
		inputs[i] = f.RandVec(rng, x.Cols)
		cancelled[i] = rng.Intn(5) == 0 // ~20% of requests abandon mid-run
	}

	guard, stopGuard := context.WithTimeout(context.Background(), 2*time.Minute)
	defer stopGuard()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		resolved  int
		completed int
		failed    int
	)
	for i := 0; i < submits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := WithTenant(context.Background(), tenants[i%len(tenants)])
			if cancelled[i] {
				var cancel context.CancelFunc
				ctx, cancel = context.WithCancel(ctx)
				go func() {
					time.Sleep(time.Duration(i%7) * 50 * time.Microsecond)
					cancel()
				}()
			}
			fu := svc.Submit(ctx, "fwd", inputs[i])
			// Wait on the guard, not the request ctx: a cancelled request
			// must STILL resolve its future (with an error) — that is the
			// no-leak contract under test.
			out, err := fu.Wait(guard)
			mu.Lock()
			defer mu.Unlock()
			if guard.Err() != nil {
				return // the counting below flags the leak
			}
			resolved++
			if err != nil {
				failed++
				return
			}
			completed++
			if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, inputs[i])) {
				t.Errorf("request %d: served decode under chaos is not the exact product", i)
			}
		}(i)
	}
	wg.Wait()
	if resolved != submits {
		t.Fatalf("only %d of %d futures resolved within the guard window: futures leaked", resolved, submits)
	}

	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Accounting must reconcile exactly with what was submitted: nothing
	// lost, nothing double-counted, across every tenant.
	stats := svc.Stats()
	var totSubmitted, totCompleted, totFailed, totRejected, totObserved uint64
	for _, ts := range stats.Tenants {
		if ts.Submitted != ts.Completed+ts.Failed+ts.Rejected {
			t.Errorf("tenant %s: submitted %d != completed %d + failed %d + rejected %d",
				ts.Tenant, ts.Submitted, ts.Completed, ts.Failed, ts.Rejected)
		}
		// Every completed or failed request passed through finish() exactly
		// once, observing one latency sample; rejected requests never do.
		if ts.Latency.Count != ts.Completed+ts.Failed {
			t.Errorf("tenant %s: histogram holds %d samples, want completed %d + failed %d",
				ts.Tenant, ts.Latency.Count, ts.Completed, ts.Failed)
		}
		totSubmitted += ts.Submitted
		totCompleted += ts.Completed
		totFailed += ts.Failed
		totRejected += ts.Rejected
		totObserved += ts.Latency.Count
	}
	if totSubmitted != submits {
		t.Errorf("tenants account %d submits, want %d", totSubmitted, submits)
	}
	if int(totCompleted) != completed || int(totCompleted+totFailed+totRejected) != submits {
		t.Errorf("counter reconciliation failed: completed %d (callers saw %d), failed %d, rejected %d, submits %d",
			totCompleted, completed, totFailed, totRejected, submits)
	}
	// Stats.Requests counts only round-carried requests: every completed
	// request rode a round; rejected requests and requests cancelled while
	// queued never do. Hence the sandwich rather than an equality.
	if stats.Requests < totCompleted || stats.Requests > totSubmitted-totRejected {
		t.Errorf("rounds carried %d requests, want between completed %d and admitted %d",
			stats.Requests, totCompleted, totSubmitted-totRejected)
	}
	if totObserved != totCompleted+totFailed {
		t.Errorf("histograms hold %d samples, want %d", totObserved, totCompleted+totFailed)
	}
}
